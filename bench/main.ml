(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one target per table/figure; see DESIGN.md §4) and runs a
   Bechamel micro-suite over the core kernels.

   Usage:
     dune exec bench/main.exe              # all experiment targets
     dune exec bench/main.exe -- table1 fig13 ...   # selected targets
     dune exec bench/main.exe -- micro     # Bechamel micro-benchmarks only

   Knobs: WACO_SCALE (corpus multiplier), WACO_EPOCHS, WACO_SEED. *)

open Sptensor
open Schedule

let experiment_targets : (string * string * (unit -> unit)) list =
  [
    ("table1", "Motivation: format/schedule/co-opt tuning spaces", Experiments.Motivation.run);
    ("fig13", "Per-matrix speedup distribution on SpMM", Experiments.Perf.run_fig13);
    ("table4", "Geomean speedup vs auto-tuners", Experiments.Perf.run_table4);
    ("table5", "Geomean speedup vs fixed implementations", Experiments.Perf.run_table5);
    ("table6", "Speedup-factor attribution", Experiments.Attribution.run);
    ("fig14", "SIMD heuristic vs block size", Experiments.Simd.run);
    ("fig15", "Cost-model feature extractor comparison", Experiments.Costmodel_exp.run);
    ("fig16", "Search strategies + search-time breakdown", Experiments.Searchcmp.run);
    ("table7", "Cross-hardware generalization", Experiments.Crosshw.run);
    ("fig17", "Tuning overhead vs speedup", Experiments.Overhead.run_fig17);
    ("table8", "End-to-end scenarios", Experiments.Overhead.run_table8);
    ("ablation", "Reproduction design-choice ablations", Experiments.Ablation.run);
  ]

(* table1 also prints table2; keep aliases so those names work as targets. *)
let aliases = [ ("table2", "table1"); ("fig16a", "fig16"); ("fig16b", "fig16") ]

(* --- Bechamel micro-benchmarks over the substrate kernels --- *)

let micro () =
  let open Bechamel in
  let rng = Rng.create 1234 in
  let m = Gen.uniform rng ~nrows:1024 ~ncols:1024 ~nnz:10000 in
  let csr = Csr.of_coo m in
  let x = Dense.vec_random rng 1024 in
  let b = Dense.mat_random rng 1024 16 in
  let algo = Algorithm.Spmm 16 in
  let sched = Superschedule.fixed_default algo in
  let spec = Superschedule.to_spec sched ~dims:[| 1024; 1024 |] in
  let packed =
    match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> failwith e
  in
  let wl = Machine_model.Workload.of_coo ~id:"bench" m in
  let machine = Machine_model.Machine.intel_like in
  let model_rng = Rng.create 5 in
  let model = Waco.Costmodel.create model_rng algo in
  let input = Waco.Extractor.input_of_coo ~id:"bench" m in
  let schedules =
    Array.of_list (Space.sample_distinct model_rng algo ~dims:[| 1024; 1024 |] ~count:64)
  in
  let hnsw = Anns.Hnsw.create ~dim:8 model_rng in
  for i = 0 to 499 do
    Anns.Hnsw.insert hnsw (Array.init 8 (fun _ -> Rng.float model_rng)) i
  done;
  let query = Array.init 8 (fun _ -> Rng.float model_rng) in
  let tests =
    [
      Test.make ~name:"pack-csr" (Staged.stage (fun () ->
          ignore (Format_abs.Packed.of_coo spec m)));
      Test.make ~name:"spmv-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmv packed x)));
      Test.make ~name:"spmv-csr-ref" (Staged.stage (fun () -> ignore (Csr.spmv csr x)));
      Test.make ~name:"spmm-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmm packed b)));
      Test.make ~name:"costsim-estimate" (Staged.stage (fun () ->
          ignore (Machine_model.Costsim.runtime machine wl sched)));
      Test.make ~name:"waconet-forward" (Staged.stage (fun () ->
          ignore (Waco.Extractor.forward model.Waco.Costmodel.extractor input)));
      Test.make ~name:"embedder-batch64" (Staged.stage (fun () ->
          ignore (Waco.Costmodel.embed model schedules)));
      Test.make ~name:"hnsw-query" (Staged.stage (fun () ->
          ignore (Anns.Hnsw.search hnsw ~query ~k:10 ())));
    ]
  in
  Printf.printf "\n=== Bechamel micro-benchmarks ===\n%!";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"waco" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name stats ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
    results

(* --- Parallel scaling sweep over the lib/parallel adoption sites ---

   For each domain count the three parallel phases run end to end: dataset
   collection (per-tuple cost-simulator measurements), index build (batched
   embedding forwards) and validation eval (per-sample forwards).  The d = 1
   run is the reference: every wider run must reproduce its results exactly
   (the pool's determinism contract), and its times are the speedup
   denominators.  Results land in BENCH_parallel.json; to protect the
   recorded numbers, a run whose 4-domain speedup regresses more than 20%
   against the recorded one refuses to overwrite without --force. *)

let bench_parallel_file = "BENCH_parallel.json"

(* Minimal extraction from our own hand-rolled JSON: find ["key": <float>].
   Good enough because we only ever read files this bench wrote. *)
let json_float_field text key =
  let needle = "\"" ^ key ^ "\":" in
  let tlen = String.length text and nlen = String.length needle in
  let rec find i =
    if i + nlen > tlen then None
    else if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < tlen && text.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < tlen
        && (match text.[!k] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub text !j (!k - !j))
    end
    else find (i + 1)
  in
  find 0

let scaling ~force () =
  let seed = Waco.Config.seed () in
  let machine = Machine_model.Machine.intel_like in
  let algo = Algorithm.Spmm 16 in
  let sweep = [ 1; 2; 4; 8 ] in
  Printf.printf "domain sweep %s (recommended_domain_count=%d)\n%!"
    (String.concat "," (List.map string_of_int sweep))
    (Domain.recommended_domain_count ());
  (* Work sizes chosen so each phase has enough independent items to keep
     8 domains busy: 16 matrices x 48 schedules = 768 measurements, a
     3072-schedule embedding corpus = 12 batches of 256. *)
  let nmats = Waco.Config.scaled 16 in
  let spm = 48 in
  let corpus_n = 3072 in
  let mats =
    let rng = Rng.create seed in
    let corpus = Gen.suite rng ~count:nmats ~max_dim:512 ~max_nnz:30000 in
    List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus
  in
  let collect pool =
    (* Fresh RNG per run: every domain count replays the same draw stream. *)
    let rng = Rng.create (seed + 1) in
    Waco.Dataset.of_matrices ?pool rng machine algo mats ~schedules_per_matrix:spm
      ~valid_fraction:0.2
  in
  let model = Waco.Costmodel.create (Rng.create (seed + 2)) algo in
  let emb_corpus =
    let rng = Rng.create (seed + 3) in
    Array.init corpus_n (fun _ -> Space.sample rng algo ~dims:[| 512; 512 |])
  in
  let build pool =
    Waco.Tuner.build_index ?pool ~lint:false (Rng.create (seed + 4)) model
      emb_corpus
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let runtimes_of (d : Waco.Dataset.t) =
    Array.concat
      (List.map
         (fun (s : Waco.Dataset.sample) -> s.Waco.Dataset.log_runtimes)
         (Array.to_list (Array.append d.Waco.Dataset.train d.Waco.Dataset.valid)))
  in
  let results =
    List.map
      (fun d ->
        let pool = if d = 1 then None else Some (Parallel.Pool.create ~domains:d) in
        let data, collect_s = timed (fun () -> collect pool) in
        let index, index_s = timed (fun () -> build pool) in
        let eval, eval_s =
          timed (fun () ->
              Waco.Trainer.eval_set ?pool model data.Waco.Dataset.train)
        in
        Option.iter Parallel.Pool.shutdown pool;
        Printf.printf
          "  domains=%d  collect %6.2fs  index %6.2fs  eval %6.2fs\n%!" d
          collect_s index_s eval_s;
        (d, collect_s, index_s, eval_s, runtimes_of data,
         Anns.Hnsw.dump index.Waco.Tuner.hnsw ~payload:Sched_io.serialize, eval))
      sweep
  in
  let _, base_c, base_i, base_e, base_runtimes, base_dump, base_eval =
    List.hd results
  in
  let identical =
    List.for_all
      (fun (_, _, _, _, rts, dump, eval) ->
        rts = base_runtimes && dump = base_dump && eval = base_eval)
      (List.tl results)
  in
  Printf.printf "  byte-identical across domain counts: %b\n%!" identical;
  if not identical then
    failwith "scaling: parallel run diverged from the sequential reference";
  let speedup_at d =
    match List.find_opt (fun (d', _, _, _, _, _, _) -> d' = d) results with
    | Some (_, c, i, e, _, _, _) -> (base_c /. c, base_i /. i, base_e /. e)
    | None -> (1.0, 1.0, 1.0)
  in
  let s4c, s4i, s4e = speedup_at 4 in
  Printf.printf "  speedup at 4 domains: collect %.2fx  index %.2fx  eval %.2fx\n%!"
    s4c s4i s4e;
  (* Regression guard: don't silently clobber a better recorded sweep. *)
  (match
     if Sys.file_exists bench_parallel_file && not force then begin
       let ic = open_in_bin bench_parallel_file in
       let len = in_channel_length ic in
       let old = really_input_string ic len in
       close_in ic;
       match
         ( json_float_field old "speedup4_collect",
           json_float_field old "speedup4_index" )
       with
       | Some oc, Some oi when s4c < 0.8 *. oc || s4i < 0.8 *. oi ->
           Some (oc, oi)
       | _ -> None
     end
     else None
   with
  | Some (oc, oi) ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (collect %.2fx -> %.2fx, index \
         %.2fx -> %.2fx); keeping the old file (rerun with --force to \
         overwrite)\n%!"
        bench_parallel_file oc s4c oi s4i
  | None ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"domains\": [%s],\n"
        (String.concat ", " (List.map string_of_int sweep));
      List.iter
        (fun (key, pick) ->
          Printf.bprintf buf "  \"%s\": [%s],\n" key
            (String.concat ", "
               (List.map
                  (fun (_, c, i, e, _, _, _) ->
                    Printf.sprintf "%.4f" (pick (c, i, e)))
                  results)))
        [
          ("collect_s", fun (c, _, _) -> c);
          ("index_s", fun (_, i, _) -> i);
          ("eval_s", fun (_, _, e) -> e);
        ];
      Printf.bprintf buf "  \"speedup4_collect\": %.4f,\n" s4c;
      Printf.bprintf buf "  \"speedup4_index\": %.4f,\n" s4i;
      Printf.bprintf buf "  \"speedup4_eval\": %.4f,\n" s4e;
      Printf.bprintf buf "  \"baseline_s\": [%.4f, %.4f, %.4f],\n" base_c base_i
        base_e;
      Printf.bprintf buf "  \"identical\": %b\n" identical;
      Buffer.add_string buf "}\n";
      let oc = open_out_bin bench_parallel_file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "  wrote %s\n%!" bench_parallel_file)

let canonical_order selected =
  let ordered =
    List.filter_map
      (fun (n, _, _) -> if List.mem n selected then Some n else None)
      experiment_targets
  in
  ordered
  @ (if List.mem "micro" selected then [ "micro" ] else [])
  @ (if List.mem "scaling" selected then [ "scaling" ] else [])

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let force = List.mem "--force" args in
  let args = List.filter (fun a -> a <> "--force") args in
  let args =
    List.map (fun a -> match List.assoc_opt a aliases with Some t -> t | None -> a) args
  in
  let selected =
    match args with
    | [] -> List.map (fun (n, _, _) -> n) experiment_targets @ [ "micro" ]
    | _ -> args
  in
  List.iter
    (fun a ->
      if a <> "micro" && a <> "scaling"
         && not (List.exists (fun (n, _, _) -> n = a) experiment_targets)
      then Printf.eprintf "unknown target: %s (ignored)\n%!" a)
    selected;
  let t0 = Unix.gettimeofday () in
  Printf.printf "WACO reproduction bench (seed=%d scale=%.1f epochs=%d)\n%!"
    (Waco.Config.seed ()) (Waco.Config.scale ()) (Waco.Config.epochs ());
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else if name = "scaling" then begin
        Printf.printf "\n>>> scaling — domain-parallel speedup sweep\n%!";
        let t = Unix.gettimeofday () in
        scaling ~force ();
        Printf.printf "<<< scaling done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiment_targets with
        | Some (_, desc, run) ->
            Printf.printf "\n>>> %s — %s\n%!" name desc;
            let t = Unix.gettimeofday () in
            run ();
            Printf.printf "<<< %s done in %.1fs\n%!" name (Unix.gettimeofday () -. t)
        | None -> ())
    (canonical_order (List.sort_uniq compare selected));
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
