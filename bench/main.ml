(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one target per table/figure; see DESIGN.md §4) and runs a
   Bechamel micro-suite over the core kernels.

   Usage:
     dune exec bench/main.exe              # all experiment targets
     dune exec bench/main.exe -- table1 fig13 ...   # selected targets
     dune exec bench/main.exe -- micro     # Bechamel micro-benchmarks only

   Knobs: WACO_SCALE (corpus multiplier), WACO_EPOCHS, WACO_SEED. *)

open Sptensor
open Schedule

let experiment_targets : (string * string * (unit -> unit)) list =
  [
    ("table1", "Motivation: format/schedule/co-opt tuning spaces", Experiments.Motivation.run);
    ("fig13", "Per-matrix speedup distribution on SpMM", Experiments.Perf.run_fig13);
    ("table4", "Geomean speedup vs auto-tuners", Experiments.Perf.run_table4);
    ("table5", "Geomean speedup vs fixed implementations", Experiments.Perf.run_table5);
    ("table6", "Speedup-factor attribution", Experiments.Attribution.run);
    ("fig14", "SIMD heuristic vs block size", Experiments.Simd.run);
    ("fig15", "Cost-model feature extractor comparison", Experiments.Costmodel_exp.run);
    ("fig16", "Search strategies + search-time breakdown", Experiments.Searchcmp.run);
    ("table7", "Cross-hardware generalization", Experiments.Crosshw.run);
    ("fig17", "Tuning overhead vs speedup", Experiments.Overhead.run_fig17);
    ("table8", "End-to-end scenarios", Experiments.Overhead.run_table8);
    ("ablation", "Reproduction design-choice ablations", Experiments.Ablation.run);
  ]

(* table1 also prints table2; keep aliases so those names work as targets. *)
let aliases = [ ("table2", "table1"); ("fig16a", "fig16"); ("fig16b", "fig16") ]

(* --- Bechamel micro-benchmarks over the substrate kernels --- *)

let micro () =
  let open Bechamel in
  let rng = Rng.create 1234 in
  let m = Gen.uniform rng ~nrows:1024 ~ncols:1024 ~nnz:10000 in
  let csr = Csr.of_coo m in
  let x = Dense.vec_random rng 1024 in
  let b = Dense.mat_random rng 1024 16 in
  let algo = Algorithm.Spmm 16 in
  let sched = Superschedule.fixed_default algo in
  let spec = Superschedule.to_spec sched ~dims:[| 1024; 1024 |] in
  let packed =
    match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> failwith e
  in
  let wl = Machine_model.Workload.of_coo ~id:"bench" m in
  let machine = Machine_model.Machine.intel_like in
  let model_rng = Rng.create 5 in
  let model = Waco.Costmodel.create model_rng algo in
  let input = Waco.Extractor.input_of_coo ~id:"bench" m in
  let schedules =
    Array.of_list (Space.sample_distinct model_rng algo ~dims:[| 1024; 1024 |] ~count:64)
  in
  let hnsw = Anns.Hnsw.create ~dim:8 model_rng in
  for i = 0 to 499 do
    Anns.Hnsw.insert hnsw (Array.init 8 (fun _ -> Rng.float model_rng)) i
  done;
  let query = Array.init 8 (fun _ -> Rng.float model_rng) in
  let tests =
    [
      Test.make ~name:"pack-csr" (Staged.stage (fun () ->
          ignore (Format_abs.Packed.of_coo spec m)));
      Test.make ~name:"spmv-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmv packed x)));
      Test.make ~name:"spmv-csr-ref" (Staged.stage (fun () -> ignore (Csr.spmv csr x)));
      Test.make ~name:"spmm-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmm packed b)));
      Test.make ~name:"costsim-estimate" (Staged.stage (fun () ->
          ignore (Machine_model.Costsim.runtime machine wl sched)));
      Test.make ~name:"waconet-forward" (Staged.stage (fun () ->
          ignore (Waco.Extractor.forward model.Waco.Costmodel.extractor input)));
      Test.make ~name:"embedder-batch64" (Staged.stage (fun () ->
          ignore (Waco.Costmodel.embed model schedules)));
      Test.make ~name:"hnsw-query" (Staged.stage (fun () ->
          ignore (Anns.Hnsw.search hnsw ~query ~k:10 ())));
    ]
  in
  Printf.printf "\n=== Bechamel micro-benchmarks ===\n%!";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"waco" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name stats ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
    results

(* --- Parallel scaling sweep over the lib/parallel adoption sites ---

   For each domain count the three parallel phases run end to end: dataset
   collection (per-tuple cost-simulator measurements), index build (batched
   embedding forwards) and validation eval (per-sample forwards).  The d = 1
   run is the reference: every wider run must reproduce its results exactly
   (the pool's determinism contract), and its times are the speedup
   denominators.  Results land in BENCH_parallel.json; to protect the
   recorded numbers, a run whose 4-domain speedup regresses more than 20%
   against the recorded one refuses to overwrite without --force. *)

let bench_parallel_file = "BENCH_parallel.json"

(* Minimal extraction from our own hand-rolled JSON: find ["key": <float>].
   Good enough because we only ever read files this bench wrote. *)
let json_float_field text key =
  let needle = "\"" ^ key ^ "\":" in
  let tlen = String.length text and nlen = String.length needle in
  let rec find i =
    if i + nlen > tlen then None
    else if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < tlen && text.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < tlen
        && (match text.[!k] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub text !j (!k - !j))
    end
    else find (i + 1)
  in
  find 0

let scaling ~force () =
  let seed = Waco.Config.seed () in
  let machine = Machine_model.Machine.intel_like in
  let algo = Algorithm.Spmm 16 in
  let sweep = [ 1; 2; 4; 8 ] in
  Printf.printf "domain sweep %s (recommended_domain_count=%d)\n%!"
    (String.concat "," (List.map string_of_int sweep))
    (Domain.recommended_domain_count ());
  (* Work sizes chosen so each phase has enough independent items to keep
     8 domains busy: 16 matrices x 48 schedules = 768 measurements, a
     3072-schedule embedding corpus = 12 batches of 256. *)
  let nmats = Waco.Config.scaled 16 in
  let spm = 48 in
  let corpus_n = 3072 in
  let mats =
    let rng = Rng.create seed in
    let corpus = Gen.suite rng ~count:nmats ~max_dim:512 ~max_nnz:30000 in
    List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus
  in
  let collect pool =
    (* Fresh RNG per run: every domain count replays the same draw stream. *)
    let rng = Rng.create (seed + 1) in
    Waco.Dataset.of_matrices ?pool rng machine algo mats ~schedules_per_matrix:spm
      ~valid_fraction:0.2
  in
  let model = Waco.Costmodel.create (Rng.create (seed + 2)) algo in
  let emb_corpus =
    let rng = Rng.create (seed + 3) in
    Array.init corpus_n (fun _ -> Space.sample rng algo ~dims:[| 512; 512 |])
  in
  let build pool =
    Waco.Tuner.build_index ?pool ~lint:false (Rng.create (seed + 4)) model
      emb_corpus
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let runtimes_of (d : Waco.Dataset.t) =
    Array.concat
      (List.map
         (fun (s : Waco.Dataset.sample) -> s.Waco.Dataset.log_runtimes)
         (Array.to_list (Array.append d.Waco.Dataset.train d.Waco.Dataset.valid)))
  in
  let results =
    List.map
      (fun d ->
        let pool = if d = 1 then None else Some (Parallel.Pool.create ~domains:d) in
        let data, collect_s = timed (fun () -> collect pool) in
        let index, index_s = timed (fun () -> build pool) in
        let eval, eval_s =
          timed (fun () ->
              Waco.Trainer.eval_set ?pool model data.Waco.Dataset.train)
        in
        Option.iter Parallel.Pool.shutdown pool;
        Printf.printf
          "  domains=%d  collect %6.2fs  index %6.2fs  eval %6.2fs\n%!" d
          collect_s index_s eval_s;
        (d, collect_s, index_s, eval_s, runtimes_of data,
         Anns.Hnsw.dump index.Waco.Tuner.hnsw ~payload:Sched_io.serialize, eval))
      sweep
  in
  let _, base_c, base_i, base_e, base_runtimes, base_dump, base_eval =
    List.hd results
  in
  let identical =
    List.for_all
      (fun (_, _, _, _, rts, dump, eval) ->
        rts = base_runtimes && dump = base_dump && eval = base_eval)
      (List.tl results)
  in
  Printf.printf "  byte-identical across domain counts: %b\n%!" identical;
  if not identical then
    failwith "scaling: parallel run diverged from the sequential reference";
  let speedup_at d =
    match List.find_opt (fun (d', _, _, _, _, _, _) -> d' = d) results with
    | Some (_, c, i, e, _, _, _) -> (base_c /. c, base_i /. i, base_e /. e)
    | None -> (1.0, 1.0, 1.0)
  in
  let s4c, s4i, s4e = speedup_at 4 in
  Printf.printf "  speedup at 4 domains: collect %.2fx  index %.2fx  eval %.2fx\n%!"
    s4c s4i s4e;
  (* Regression guard: don't silently clobber a better recorded sweep. *)
  (match
     if Sys.file_exists bench_parallel_file && not force then begin
       let ic = open_in_bin bench_parallel_file in
       let len = in_channel_length ic in
       let old = really_input_string ic len in
       close_in ic;
       match
         ( json_float_field old "speedup4_collect",
           json_float_field old "speedup4_index" )
       with
       | Some oc, Some oi when s4c < 0.8 *. oc || s4i < 0.8 *. oi ->
           Some (oc, oi)
       | _ -> None
     end
     else None
   with
  | Some (oc, oi) ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (collect %.2fx -> %.2fx, index \
         %.2fx -> %.2fx); keeping the old file (rerun with --force to \
         overwrite)\n%!"
        bench_parallel_file oc s4c oi s4i
  | None ->
      (* Keep the previous sweep's gated speedups as prev_* so a chunking
         retune carries its own before/after evidence in the file. *)
      let prev =
        if Sys.file_exists bench_parallel_file then begin
          let ic = open_in_bin bench_parallel_file in
          let len = in_channel_length ic in
          let old = really_input_string ic len in
          close_in ic;
          match
            ( json_float_field old "speedup4_collect",
              json_float_field old "speedup4_index",
              json_float_field old "speedup4_eval" )
          with
          | Some c, Some i, Some e -> Some (c, i, e)
          | _ -> None
        end
        else None
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"domains\": [%s],\n"
        (String.concat ", " (List.map string_of_int sweep));
      List.iter
        (fun (key, pick) ->
          Printf.bprintf buf "  \"%s\": [%s],\n" key
            (String.concat ", "
               (List.map
                  (fun (_, c, i, e, _, _, _) ->
                    Printf.sprintf "%.4f" (pick (c, i, e)))
                  results)))
        [
          ("collect_s", fun (c, _, _) -> c);
          ("index_s", fun (_, i, _) -> i);
          ("eval_s", fun (_, _, e) -> e);
        ];
      Printf.bprintf buf "  \"speedup4_collect\": %.4f,\n" s4c;
      Printf.bprintf buf "  \"speedup4_index\": %.4f,\n" s4i;
      Printf.bprintf buf "  \"speedup4_eval\": %.4f,\n" s4e;
      (match prev with
      | Some (c, i, e) ->
          Printf.bprintf buf "  \"prev_speedup4_collect\": %.4f,\n" c;
          Printf.bprintf buf "  \"prev_speedup4_index\": %.4f,\n" i;
          Printf.bprintf buf "  \"prev_speedup4_eval\": %.4f,\n" e
      | None -> ());
      Printf.bprintf buf "  \"baseline_s\": [%.4f, %.4f, %.4f],\n" base_c base_i
        base_e;
      Printf.bprintf buf "  \"identical\": %b\n" identical;
      Buffer.add_string buf "}\n";
      let oc = open_out_bin bench_parallel_file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "  wrote %s\n%!" bench_parallel_file)

(* --- kernelmix: the four paper kernels swept over one shared corpus ------
   Untrained (but deterministic) models: the sweep exercises what the
   multi-kernel path added — the kernel-conditioned head, per-kernel Costsim
   work distributions, per-kernel index construction — not training quality.
   The matrices are shared across the 2-D kernels (MTTKRP runs the 3-D
   tensor suite at the same count), so differences between rows are the
   kernels, not the inputs.  The gated metric is each kernel's geomean
   speedup over the fixed-CSR baseline, which is fully deterministic; a
   >20% regression on any kernel refuses to overwrite without --force. *)

let bench_kernelmix_file = "BENCH_kernelmix.json"

let kernelmix ~force () =
  let seed = Waco.Config.seed () in
  let machine = Machine_model.Machine.intel_like in
  let nmats = Waco.Config.scaled 8 in
  let mats2d =
    let rng = Rng.create (seed + 11) in
    List.map
      (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix))
      (Gen.suite rng ~count:nmats ~max_dim:512 ~max_nnz:20000)
  in
  let tensors3d =
    let rng = Rng.create (seed + 12) in
    List.map
      (fun (g : Gen.named3) -> (g.Gen.name3, g.Gen.tensor))
      (Gen.tensor3_suite rng ~count:nmats ~max_dim:128 ~max_nnz:4000)
  in
  let per_kernel =
    List.map
      (fun algo ->
        let kname = Waco.Kernel.name (Waco.Kernel.of_algo algo) in
        let model = Waco.Costmodel.create (Rng.create (seed + 21)) algo in
        let cases =
          match algo with
          | Algorithm.Mttkrp _ ->
              List.map
                (fun (n, t) -> Experiments.Lab.case_of_tensor n t)
                tensors3d
          | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
              List.map (fun (n, m) -> Experiments.Lab.case_of_matrix n m) mats2d
        in
        let corpus =
          let rng = Rng.create (seed + 22) in
          let dims = Array.make (Algorithm.sparse_rank algo) 256 in
          Array.init 256 (fun _ -> Space.sample rng algo ~dims)
        in
        let index =
          Waco.Tuner.build_index ~lint:false (Rng.create (seed + 23)) model
            corpus
        in
        let t0 = Unix.gettimeofday () in
        let speedups =
          List.map
            (fun (wl, input) ->
              let r = Waco.Tuner.tune model machine wl input index in
              let csr = Baselines.fixed_csr machine wl algo in
              csr.Baselines.kernel_time
              /. Float.max 1e-12 r.Waco.Tuner.best_measured)
            cases
        in
        let tune_s = Unix.gettimeofday () -. t0 in
        let geo = Experiments.Lab.geomean speedups in
        Printf.printf
          "  %-7s geomean speedup vs fixed CSR %6.3fx  (%d cases, %.2fs)\n%!"
          kname geo (List.length cases) tune_s;
        (kname, geo, tune_s))
      Experiments.Lab.algorithms
  in
  (* Regression guard: any kernel's recorded speedup shrinking >20% refuses
     the overwrite. *)
  let regressed =
    if Sys.file_exists bench_kernelmix_file && not force then begin
      let ic = open_in_bin bench_kernelmix_file in
      let old = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.filter_map
        (fun (kname, geo, _) ->
          match json_float_field old ("speedup_" ^ kname) with
          | Some o when geo < 0.8 *. o -> Some (kname, o, geo)
          | _ -> None)
        per_kernel
    end
    else []
  in
  match regressed with
  | (kname, o, geo) :: _ ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (%s %.3fx -> %.3fx); keeping the \
         old file (rerun with --force to overwrite)\n%!"
        bench_kernelmix_file kname o geo
  | [] ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"matrices\": %d,\n" nmats;
      List.iter
        (fun (kname, geo, tune_s) ->
          Printf.bprintf buf "  \"speedup_%s\": %.4f,\n" kname geo;
          Printf.bprintf buf "  \"tune_s_%s\": %.4f,\n" kname tune_s)
        per_kernel;
      Printf.bprintf buf "  \"kernels\": %d\n" (List.length per_kernel);
      Buffer.add_string buf "}\n";
      let oc = open_out_bin bench_kernelmix_file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "  wrote %s\n%!" bench_kernelmix_file

(* --- NN hot-path microbenchmarks: flat kernel maps + scratch buffers vs the
   retained pre-flat reference implementations (Nn.Sparse_conv_ref and local
   allocating closures).  Each op reports wall time AND GC allocation per
   iteration — the point of the flat layout is the allocation column.
   Results land in BENCH_kernels.json with the same >20%-regression refusal
   as the scaling sweep. *)

let bench_kernels_file = "BENCH_kernels.json"

(* (ns/iter, bytes allocated/iter) of [f], after warmup. *)
let measure ?(warmup = 3) ~iters f =
  for _ = 1 to warmup do f () done;
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do f () done;
  let dt = Unix.gettimeofday () -. t0 in
  let da = Gc.allocated_bytes () -. a0 in
  (dt /. float_of_int iters *. 1e9, da /. float_of_int iters)

(* The pre-scratch Linear forward/backward: fresh arrays every call. *)
let ref_linear_forward (l : Nn.Linear.t) ~batch (input : float array) =
  let out = Array.make (batch * l.Nn.Linear.out_dim) 0.0 in
  for n = 0 to batch - 1 do
    let ib = n * l.Nn.Linear.in_dim and ob = n * l.Nn.Linear.out_dim in
    for o = 0 to l.Nn.Linear.out_dim - 1 do
      let acc = ref l.Nn.Linear.b.Nn.Param.data.(o) in
      let wb = o * l.Nn.Linear.in_dim in
      for i = 0 to l.Nn.Linear.in_dim - 1 do
        acc := !acc +. (l.Nn.Linear.w.Nn.Param.data.(wb + i) *. input.(ib + i))
      done;
      out.(ob + o) <- !acc
    done
  done;
  out

let ref_linear_backward (l : Nn.Linear.t) ~batch ~(input : float array)
    (dout : float array) =
  let din = Array.make (batch * l.Nn.Linear.in_dim) 0.0 in
  for n = 0 to batch - 1 do
    let ib = n * l.Nn.Linear.in_dim and ob = n * l.Nn.Linear.out_dim in
    for o = 0 to l.Nn.Linear.out_dim - 1 do
      let g = dout.(ob + o) in
      if g <> 0.0 then begin
        let wb = o * l.Nn.Linear.in_dim in
        l.Nn.Linear.b.Nn.Param.grad.(o) <- l.Nn.Linear.b.Nn.Param.grad.(o) +. g;
        for i = 0 to l.Nn.Linear.in_dim - 1 do
          l.Nn.Linear.w.Nn.Param.grad.(wb + i) <-
            l.Nn.Linear.w.Nn.Param.grad.(wb + i) +. (g *. input.(ib + i));
          din.(ib + i) <- din.(ib + i) +. (g *. l.Nn.Linear.w.Nn.Param.data.(wb + i))
        done
      end
    done
  done;
  din

(* The pre-scratch ReLU and pool: fresh arrays every call. *)
let ref_relu (x : float array) = Array.map (fun v -> if v > 0.0 then v else 0.0) x

let ref_pool ~nsites ~channels (feats : float array) =
  let out = Array.make channels 0.0 in
  if nsites > 0 then begin
    for s = 0 to nsites - 1 do
      for ch = 0 to channels - 1 do
        out.(ch) <- out.(ch) +. feats.((s * channels) + ch)
      done
    done;
    let scale = 1.0 /. float_of_int nsites in
    Array.iteri (fun ch v -> out.(ch) <- v *. scale) out
  end;
  out

let kernels ~force () =
  let rng = Rng.create 20230325 in
  let m = Gen.uniform rng ~nrows:512 ~ncols:512 ~nnz:6000 in
  let smap = Nn.Smap.of_coo m in
  let nsites = Nn.Smap.nsites smap in
  let pairs = Nn.Smap.coords_pairs smap in
  let h = smap.Nn.Smap.h and w = smap.Nn.Smap.w in
  let ch = Waco.Config.channels in
  Printf.printf "  pattern: %dx%d, %d sites; channels=%d\n%!" h w nsites ch;

  (* -- kernel-map construction, stride-2 3x3 (the pyramid's dominant op) -- *)
  let flat_map = Nn.Sparse_conv.build_map ~ksize:3 ~stride:2 smap.Nn.Smap.coords ~h ~w in
  let ref_map = Nn.Sparse_conv_ref.build_map ~ksize:3 ~stride:2 pairs ~h ~w in
  (* Parity guard: the comparison below is only meaningful if both builders
     produce the same map. *)
  assert (
    Array.map (fun (r, c) -> (r * flat_map.Nn.Sparse_conv.out_w) + c)
      ref_map.Nn.Sparse_conv_ref.out_coords
    = flat_map.Nn.Sparse_conv.out_coords);
  let map_build_ns, map_build_bytes =
    measure ~iters:200 (fun () ->
        ignore (Nn.Sparse_conv.build_map ~ksize:3 ~stride:2 smap.Nn.Smap.coords ~h ~w))
  in
  let map_build_ref_ns, map_build_ref_bytes =
    measure ~iters:200 (fun () ->
        ignore (Nn.Sparse_conv_ref.build_map ~ksize:3 ~stride:2 pairs ~h ~w))
  in

  (* -- conv forward+backward over a prebuilt map (the per-epoch hot loop) -- *)
  let conv = Nn.Sparse_conv.create rng ~name:"bench.conv" ~in_ch:ch ~out_ch:ch ~ksize:3 ~stride:1 in
  let feats = Array.init (nsites * ch) (fun i -> Float.of_int (i mod 7) /. 7.0 -. 0.4) in
  let input = { smap with Nn.Smap.channels = ch; feats } in
  let conv_map = Nn.Sparse_conv.build_map ~ksize:3 ~stride:1 smap.Nn.Smap.coords ~h ~w in
  let ref_conv_map = Nn.Sparse_conv_ref.build_map ~ksize:3 ~stride:1 pairs ~h ~w in
  let dout = Array.init (nsites * ch) (fun i -> Float.of_int (i mod 5) /. 5.0 -. 0.3) in
  let conv_ns, conv_bytes =
    measure ~iters:100 (fun () ->
        ignore (Nn.Sparse_conv.forward_with_map conv conv_map input);
        ignore (Nn.Sparse_conv.backward conv dout))
  in
  let wgrad = Array.make (Array.length conv.Nn.Sparse_conv.w.Nn.Param.grad) 0.0 in
  let bgrad = Array.make ch 0.0 in
  let conv_ref_ns, conv_ref_bytes =
    measure ~iters:100 (fun () ->
        let out =
          Nn.Sparse_conv_ref.forward_feats ref_conv_map ~in_ch:ch ~out_ch:ch
            ~w:conv.Nn.Sparse_conv.w.Nn.Param.data
            ~b:conv.Nn.Sparse_conv.b.Nn.Param.data feats
        in
        ignore out;
        ignore
          (Nn.Sparse_conv_ref.backward_feats ref_conv_map ~in_ch:ch ~out_ch:ch
             ~w:conv.Nn.Sparse_conv.w.Nn.Param.data ~wgrad ~bgrad
             ~input_feats:(Array.copy feats) (* the old by-copy input cache *)
             ~nsites_in:nsites dout))
  in
  let conv_alloc_reduction = conv_ref_bytes /. Float.max 1.0 conv_bytes in

  (* -- linear forward+backward (predictor/embedder shape) -- *)
  let batch = 64 in
  let lin = Nn.Linear.create rng ~name:"bench.lin" ~in_dim:96 ~out_dim:64 in
  let lin_in = Array.init (batch * 96) (fun i -> Float.of_int (i mod 11) /. 11.0 -. 0.5) in
  let lin_dout = Array.init (batch * 64) (fun i -> Float.of_int (i mod 13) /. 13.0 -. 0.5) in
  let linear_ns, linear_bytes =
    measure ~iters:300 (fun () ->
        ignore (Nn.Linear.forward lin ~batch lin_in);
        ignore (Nn.Linear.backward lin lin_dout))
  in
  let linear_ref_ns, linear_ref_bytes =
    measure ~iters:300 (fun () ->
        ignore (ref_linear_forward lin ~batch lin_in);
        ignore (ref_linear_backward lin ~batch ~input:lin_in lin_dout))
  in

  (* -- end-to-end WACONet feature extraction --

     Cold = pyramid (kernel-map chain) rebuilt per call, the cost a fresh
     matrix pays during tuning; warm = maps cached, the per-epoch cost.  The
     reference path is the same arch through Sparse_conv_ref + allocating
     relu/pool/linear — the pre-PR op sequence. *)
  let arch = (5, 1) :: List.init Waco.Config.waconet_strided_layers (fun _ -> (3, 2)) in
  let nconv = List.length arch in
  let convs =
    Array.of_list
      (List.mapi
         (fun i (ksize, stride) ->
           Nn.Sparse_conv.create rng
             ~name:(Printf.sprintf "bench.e2e%d" i)
             ~in_ch:(if i = 0 then 1 else ch)
             ~out_ch:ch ~ksize ~stride)
         arch)
  in
  let relus = Array.init nconv (fun _ -> Nn.Act.relu_create ()) in
  let pools = Array.init nconv (fun _ -> Nn.Pool.create ()) in
  let head = Nn.Linear.create rng ~name:"bench.head" ~in_dim:(nconv * ch) ~out_dim:Waco.Config.feature_dim in
  let flat_layers pyr =
    let cur = ref pyr.Nn.Pyramid.base in
    let pooled = ref [] in
    for i = 0 to nconv - 1 do
      let o = Nn.Sparse_conv.forward_with_map convs.(i) pyr.Nn.Pyramid.maps.(i) !cur in
      let activated =
        {
          o with
          Nn.Smap.feats =
            Nn.Act.relu_forward
              ~n:(Nn.Smap.nsites o * ch)
              relus.(i) o.Nn.Smap.feats;
        }
      in
      pooled := Nn.Pool.forward pools.(i) activated :: !pooled;
      cur := activated
    done;
    let concat = Array.concat (List.rev !pooled) in
    Array.sub (Nn.Linear.forward head ~batch:1 concat) 0 Waco.Config.feature_dim
  in
  let warm_pyr = Nn.Pyramid.build smap ~layers:arch in
  let extractor_cold_ns, extractor_cold_bytes =
    measure ~iters:30 (fun () ->
        ignore (flat_layers (Nn.Pyramid.build smap ~layers:arch)))
  in
  let extractor_warm_ns, extractor_warm_bytes =
    measure ~iters:30 (fun () -> ignore (flat_layers warm_pyr))
  in
  let ref_maps_of () =
    let maps = Array.make nconv ref_map in
    let coords = ref pairs and rh = ref h and rw = ref w in
    List.iteri
      (fun i (ksize, stride) ->
        let m = Nn.Sparse_conv_ref.build_map ~ksize ~stride !coords ~h:!rh ~w:!rw in
        maps.(i) <- m;
        coords := m.Nn.Sparse_conv_ref.out_coords;
        rh := m.Nn.Sparse_conv_ref.out_h;
        rw := m.Nn.Sparse_conv_ref.out_w)
      arch;
    maps
  in
  let ref_layers maps =
    let cur = ref (Array.make nsites 1.0) in
    let cur_ch = ref 1 in
    let pooled = ref [] in
    for i = 0 to nconv - 1 do
      let mp : Nn.Sparse_conv_ref.kernel_map = maps.(i) in
      let out =
        Nn.Sparse_conv_ref.forward_feats mp ~in_ch:!cur_ch ~out_ch:ch
          ~w:convs.(i).Nn.Sparse_conv.w.Nn.Param.data
          ~b:convs.(i).Nn.Sparse_conv.b.Nn.Param.data
          (Array.copy !cur) (* the old by-copy input cache *)
      in
      let activated = ref_relu out in
      let n_out = Array.length mp.Nn.Sparse_conv_ref.out_coords in
      pooled := ref_pool ~nsites:n_out ~channels:ch activated :: !pooled;
      cur := activated;
      cur_ch := ch
    done;
    let concat = Array.concat (List.rev !pooled) in
    Array.sub (ref_linear_forward head ~batch:1 concat) 0 Waco.Config.feature_dim
  in
  let warm_ref_maps = ref_maps_of () in
  let extractor_cold_ref_ns, extractor_cold_ref_bytes =
    measure ~iters:30 (fun () -> ignore (ref_layers (ref_maps_of ())))
  in
  let extractor_warm_ref_ns, extractor_warm_ref_bytes =
    measure ~iters:30 (fun () -> ignore (ref_layers warm_ref_maps))
  in
  (* Parity guard for the e2e comparison. *)
  let d_flat = flat_layers warm_pyr and d_ref = ref_layers warm_ref_maps in
  let max_dev = ref 0.0 in
  Array.iteri
    (fun i v -> max_dev := Float.max !max_dev (Float.abs (v -. d_ref.(i))))
    d_flat;
  if !max_dev > 1e-9 then
    failwith (Printf.sprintf "kernels: flat/ref extractor outputs diverge (%g)" !max_dev);
  let extractor_speedup = extractor_cold_ref_ns /. extractor_cold_ns in

  (* -- batched inference VM vs eager per-input extractor forwards --

     The compile-once/execute-many plan (DESIGN.md §14) against a loop of
     eager [Waco.Extractor.forward] calls over the same warm inputs (pyramids
     cached on both paths — this is the extractor-warm shape).  One row per
     batch depth; the gated ratio is the batch-32 speedup. *)
  let vm_rng = Rng.create 424242 in
  let ext = Waco.Extractor.create vm_rng Waco.Extractor.Waconet in
  let vm_inputs =
    Array.init 32 (fun i ->
        Waco.Extractor.input_of_coo
          ~id:(Printf.sprintf "vmb%d" i)
          (Gen.uniform vm_rng ~nrows:256 ~ncols:256 ~nnz:3000))
  in
  let compiled = Waco.Extractor.compile ext in
  (* Parity guard: the batched plan must reproduce the eager features
     bitwise (the test suite's contract; re-checked here because the bench
     compares their timings). *)
  let eager_ref =
    Array.map (fun inp -> Array.copy (Waco.Extractor.forward ext inp)) vm_inputs
  in
  let batched_ref = Waco.Extractor.forward_batch compiled vm_inputs in
  Array.iteri
    (fun n expect ->
      Array.iteri
        (fun i v ->
          let got = batched_ref.((n * Waco.Config.feature_dim) + i) in
          if Int64.bits_of_float v <> Int64.bits_of_float got then
            failwith
              (Printf.sprintf "kernels: vm/eager features diverge at %d.%d" n i))
        expect)
    eager_ref;
  let vm_row n ~iters =
    let inputs = Array.sub vm_inputs 0 n in
    let eager_ns, eager_bytes =
      measure ~iters (fun () ->
          Array.iter (fun inp -> ignore (Waco.Extractor.forward ext inp)) inputs)
    in
    let vm_ns, vm_bytes =
      measure ~iters (fun () ->
          ignore (Waco.Extractor.forward_batch compiled inputs))
    in
    (eager_ns, eager_bytes, vm_ns, vm_bytes, eager_ns /. vm_ns)
  in
  let e1_ns, e1_b, v1_ns, v1_b, vm_batch1_speedup = vm_row 1 ~iters:60 in
  let e8_ns, e8_b, v8_ns, v8_b, vm_batch8_speedup = vm_row 8 ~iters:20 in
  let e32_ns, e32_b, v32_ns, v32_b, vm_batch32_speedup = vm_row 32 ~iters:8 in

  let row name ns bytes ref_ns ref_bytes =
    Printf.printf
      "  %-18s %12.0f ns %10.0f B   | ref %12.0f ns %10.0f B   (%.2fx time, %.1fx alloc)\n%!"
      name ns bytes ref_ns ref_bytes (ref_ns /. ns)
      (ref_bytes /. Float.max 1.0 bytes)
  in
  row "map-build" map_build_ns map_build_bytes map_build_ref_ns map_build_ref_bytes;
  row "conv-fwd+bwd" conv_ns conv_bytes conv_ref_ns conv_ref_bytes;
  row "linear-fwd+bwd" linear_ns linear_bytes linear_ref_ns linear_ref_bytes;
  row "extractor-cold" extractor_cold_ns extractor_cold_bytes extractor_cold_ref_ns
    extractor_cold_ref_bytes;
  row "extractor-warm" extractor_warm_ns extractor_warm_bytes extractor_warm_ref_ns
    extractor_warm_ref_bytes;
  row "vm-batch1" v1_ns v1_b e1_ns e1_b;
  row "vm-batch8" v8_ns v8_b e8_ns e8_b;
  row "vm-batch32" v32_ns v32_b e32_ns e32_b;
  Printf.printf
    "  conv alloc reduction %.1fx, extractor speedup %.2fx, vm batch32 \
     speedup %.2fx\n%!"
    conv_alloc_reduction extractor_speedup vm_batch32_speedup;

  (* Regression guard: don't silently clobber better recorded ratios. *)
  let regressions =
    if Sys.file_exists bench_kernels_file && not force then begin
      let ic = open_in_bin bench_kernels_file in
      let len = in_channel_length ic in
      let old = really_input_string ic len in
      close_in ic;
      List.filter_map
        (fun (key, now) ->
          match json_float_field old key with
          | Some o when now < 0.8 *. o -> Some (key, o, now)
          | _ -> None)
        [
          ("conv_alloc_reduction", conv_alloc_reduction);
          ("extractor_speedup", extractor_speedup);
          ("vm_batch32_speedup", vm_batch32_speedup);
        ]
    end
    else []
  in
  match regressions with
  | (_ :: _) as rs ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (%s); keeping the old file (rerun \
         with --force to overwrite)\n%!"
        bench_kernels_file
        (String.concat ", "
           (List.map
              (fun (k, o, now) -> Printf.sprintf "%s %.2fx -> %.2fx" k o now)
              rs))
  | [] ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"nsites\": %d,\n" nsites;
      List.iter
        (fun (key, v) -> Printf.bprintf buf "  \"%s\": %.1f,\n" key v)
        [
          ("map_build_ns", map_build_ns);
          ("map_build_bytes", map_build_bytes);
          ("map_build_ref_ns", map_build_ref_ns);
          ("map_build_ref_bytes", map_build_ref_bytes);
          ("conv_fwdbwd_ns", conv_ns);
          ("conv_fwdbwd_bytes", conv_bytes);
          ("conv_fwdbwd_ref_ns", conv_ref_ns);
          ("conv_fwdbwd_ref_bytes", conv_ref_bytes);
          ("linear_fwdbwd_ns", linear_ns);
          ("linear_fwdbwd_bytes", linear_bytes);
          ("linear_fwdbwd_ref_ns", linear_ref_ns);
          ("linear_fwdbwd_ref_bytes", linear_ref_bytes);
          ("extractor_cold_ns", extractor_cold_ns);
          ("extractor_cold_bytes", extractor_cold_bytes);
          ("extractor_cold_ref_ns", extractor_cold_ref_ns);
          ("extractor_cold_ref_bytes", extractor_cold_ref_bytes);
          ("extractor_warm_ns", extractor_warm_ns);
          ("extractor_warm_bytes", extractor_warm_bytes);
          ("extractor_warm_ref_ns", extractor_warm_ref_ns);
          ("extractor_warm_ref_bytes", extractor_warm_ref_bytes);
        ];
      List.iter
        (fun (key, v) -> Printf.bprintf buf "  \"%s\": %.1f,\n" key v)
        [
          ("vm_batch1_ns", v1_ns);
          ("vm_batch1_bytes", v1_b);
          ("vm_batch1_eager_ns", e1_ns);
          ("vm_batch1_eager_bytes", e1_b);
          ("vm_batch8_ns", v8_ns);
          ("vm_batch8_bytes", v8_b);
          ("vm_batch8_eager_ns", e8_ns);
          ("vm_batch8_eager_bytes", e8_b);
          ("vm_batch32_ns", v32_ns);
          ("vm_batch32_bytes", v32_b);
          ("vm_batch32_eager_ns", e32_ns);
          ("vm_batch32_eager_bytes", e32_b);
        ];
      Printf.bprintf buf "  \"vm_batch1_speedup\": %.2f,\n" vm_batch1_speedup;
      Printf.bprintf buf "  \"vm_batch8_speedup\": %.2f,\n" vm_batch8_speedup;
      Printf.bprintf buf "  \"vm_batch32_speedup\": %.2f,\n" vm_batch32_speedup;
      Printf.bprintf buf "  \"conv_alloc_reduction\": %.2f,\n" conv_alloc_reduction;
      Printf.bprintf buf "  \"extractor_speedup\": %.2f\n" extractor_speedup;
      Buffer.add_string buf "}\n";
      let oc = open_out_bin bench_kernels_file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "  wrote %s\n%!" bench_kernels_file

(* --- serve: daemon latency and throughput ------------------------------

   The serving daemon runs in its own domain; this (client) domain drives
   it over the Unix socket exactly like external clients would.  Reported:
   cold latency (first sight of a pattern: extractor forward + traversal +
   top-k measurement), warm latency (schedule-cache hit), and pipelined
   throughput at 1/4/16 concurrent client connections over a pre-warmed
   working set.  Results land in BENCH_serve.json; a run whose warm latency
   or 16-client throughput regresses more than 20% against the recorded
   numbers refuses to overwrite without --force. *)

let bench_serve_file = "BENCH_serve.json"

(* BENCH_serve.json is shared by `serve` and `loadgen`: each target owns a
   disjoint set of keys (loadgen's all carry the "loadgen_" prefix) and
   rewrites the file preserving the other's.  The format stays the
   hand-rolled one-pair-per-line JSON the rest of the bench writes. *)
let read_json_pairs file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.length line < 4 || line.[0] <> '"' then None
        else
          match String.index_from_opt line 1 '"' with
          | None -> None
          | Some close -> (
              let key = String.sub line 1 (close - 1) in
              match String.index_from_opt line close ':' with
              | None -> None
              | Some colon ->
                  let v =
                    String.trim
                      (String.sub line (colon + 1)
                         (String.length line - colon - 1))
                  in
                  let v =
                    if v <> "" && v.[String.length v - 1] = ',' then
                      String.sub v 0 (String.length v - 1)
                    else v
                  in
                  Some (key, v)))
      (String.split_on_char '\n' s)
  end

let write_json_pairs file pairs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf "  %S: %s" k v)
    pairs;
  Buffer.add_string buf "\n}\n";
  let oc = open_out_bin file in
  output_string oc (Buffer.contents buf);
  close_out oc

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let serve_bench ~force () =
  let algo = Algorithm.Spmm 256 in
  let machine = Machine_model.Machine.intel_like in
  let seed = Waco.Config.seed () in
  let model = Waco.Costmodel.create (Rng.create seed) algo in
  let srng = Rng.create (seed + 1) in
  let corpus =
    Array.init 128 (fun _ -> Space.sample srng algo ~dims:[| 64; 64 |])
  in
  let index = Waco.Tuner.build_index (Rng.create (seed + 2)) model corpus in
  let dir = Filename.temp_file "waco-bench-serve" "" in
  Sys.remove dir;
  Robust.mkdir_p dir;
  let socket = Filename.concat dir "waco.sock" in
  let server =
    Serve.Server.create ~k:4 ~ef:16 ~max_batch:32 ~model ~index
      ~index_file:"<bench>" ~machine ~socket ()
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run server) in
  let rec connect attempts =
    match Serve.Client.connect socket with
    | c -> c
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.sleepf 0.02;
        connect (attempts - 1)
  in
  (* A working set of distinct sparsity patterns, shipped inline so the
     bench has no disk dependency. *)
  let mrng = Rng.create (seed + 3) in
  let matrices =
    Array.init 32 (fun _ -> Gen.uniform mrng ~nrows:64 ~ncols:64 ~nnz:400)
  in
  let source_of (m : Coo.t) =
    Serve.Protocol.Inline
      {
        nrows = m.Coo.nrows;
        ncols = m.Coo.ncols;
        entries =
          Array.init (Coo.nnz m) (fun k ->
              (m.Coo.rows.(k), m.Coo.cols.(k), m.Coo.vals.(k)));
      }
  in
  let sources = Array.map source_of matrices in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let c0 = connect 250 in
  (* Cold: every pattern is new to the daemon. *)
  let cold_ms =
    Array.map
      (fun src ->
        let t = Unix.gettimeofday () in
        (match Serve.Client.query c0 src with
        | Ok _ -> ()
        | Error e -> failwith ("serve bench: cold query: " ^ e));
        (Unix.gettimeofday () -. t) *. 1e3)
      sources
  in
  (* Warm: the same patterns again, answered from the schedule cache. *)
  let warm_ms =
    Array.map
      (fun src ->
        let t = Unix.gettimeofday () in
        (match Serve.Client.query c0 src with
        | Ok a when a.Serve.Protocol.cache_hit -> ()
        | Ok _ -> failwith "serve bench: warm query missed the cache"
        | Error e -> failwith ("serve bench: warm query: " ^ e));
        (Unix.gettimeofday () -. t) *. 1e3)
      sources
  in
  let cold = median cold_ms and warm = median warm_ms in
  Printf.printf "  latency: cold %.2f ms, warm %.2f ms (median of %d)\n%!" cold
    warm (Array.length sources);
  (* Pipelined throughput over the warmed set at 1/4/16 connections: every
     client writes its whole request train, then all responses are drained.
     Deeper client fan-in gives the daemon bigger micro-batches. *)
  let per_client = 64 in
  let throughput nclients =
    let clients = Array.init nclients (fun _ -> connect 250) in
    let t = Unix.gettimeofday () in
    Array.iteri
      (fun ci c ->
        for q = 0 to per_client - 1 do
          Serve.Client.send c
            (Serve.Protocol.Query
               {
                 qid = Printf.sprintf "b%d.%d" ci q;
                 source = sources.((ci + q) mod Array.length sources);
                 measure = true;
                 deadline_ms = 0;
                 kernel = None;
               })
        done)
      clients;
    Array.iter
      (fun c ->
        for _ = 1 to per_client do
          match Serve.Client.recv c with
          | Serve.Protocol.Answer _ -> ()
          | _ -> failwith "serve bench: non-answer under load"
        done)
      clients;
    let dt = Unix.gettimeofday () -. t in
    Array.iter Serve.Client.close clients;
    float_of_int (nclients * per_client) /. dt
  in
  let tp = List.map (fun c -> (c, throughput c)) [ 1; 4; 16 ] in
  List.iter
    (fun (c, qps) -> Printf.printf "  throughput: %2d client(s) %8.0f req/s\n%!" c qps)
    tp;
  let qps c = try List.assoc c tp with Not_found -> 0.0 in
  ignore (Serve.Client.shutdown c0);
  Serve.Client.close c0;
  Domain.join daemon;
  (* Overload: a second daemon with a low high-water mark, hammered with
     pipelined deadline-bearing queries on cold patterns.  Reported: how
     much was shed ([Busy]), how many answers blew their deadline (degraded,
     never cached), and the p99 time-to-answer from the start of the burst —
     the tail a client actually experiences when the daemon is saturated. *)
  let ov_socket = Filename.concat dir "waco-ov.sock" in
  let ov_server =
    Serve.Server.create ~k:4 ~ef:16 ~max_batch:8 ~max_pending:8 ~model ~index
      ~index_file:"<bench>" ~machine ~socket:ov_socket ()
  in
  let ov_daemon = Domain.spawn (fun () -> Serve.Server.run ov_server) in
  let rec ov_connect attempts =
    match Serve.Client.connect ov_socket with
    | c -> c
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.sleepf 0.02;
        ov_connect (attempts - 1)
  in
  let ov_clients = 8 and ov_per = 32 in
  let clients = Array.init ov_clients (fun _ -> ov_connect 250) in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun ci c ->
      for q = 0 to ov_per - 1 do
        Serve.Client.send c
          (Serve.Protocol.Query
             {
               qid = Printf.sprintf "ov%d.%d" ci q;
               source = sources.((ci + q) mod Array.length sources);
               measure = true;
               deadline_ms = 50;
               kernel = None;
             })
      done)
    clients;
  let lat = ref [] in
  Array.iter
    (fun c ->
      for _ = 1 to ov_per do
        (match Serve.Client.recv c with
        | Serve.Protocol.Answer _ | Serve.Protocol.Busy _ -> ()
        | _ -> failwith "serve bench: unexpected response under overload");
        lat := ((Unix.gettimeofday () -. t0) *. 1e3) :: !lat
      done)
    clients;
  Array.iter Serve.Client.close clients;
  let ov_stats = Serve.Server.stats_json ov_server in
  let ov_counter name =
    Option.value ~default:0 (Serve.Metrics.json_counter ov_stats name)
  in
  let shed = ov_counter "shed" and misses = ov_counter "deadline_misses" in
  let p99 =
    let a = Array.of_list !lat in
    Array.sort compare a;
    a.(min (Array.length a - 1) (Array.length a * 99 / 100))
  in
  Printf.printf
    "  overload: %d requests -> shed %d, deadline misses %d, p99 %.2f ms\n%!"
    (ov_clients * ov_per) shed misses p99;
  let stop = ov_connect 250 in
  ignore (Serve.Client.shutdown stop);
  Serve.Client.close stop;
  Domain.join ov_daemon;
  (try Sys.remove socket with Sys_error _ -> ());
  (try Sys.remove ov_socket with Sys_error _ -> ());
  (try Sys.rmdir dir with Sys_error _ -> ());
  (* Regression guard: don't silently clobber better recorded numbers. *)
  match
    if Sys.file_exists bench_serve_file && not force then begin
      let ic = open_in_bin bench_serve_file in
      let old = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match
        (json_float_field old "warm_ms", json_float_field old "throughput_16")
      with
      | Some ow, Some ot when warm > 1.2 *. ow || qps 16 < 0.8 *. ot ->
          Some (ow, ot)
      | _ -> None
    end
    else None
  with
  | Some (ow, ot) ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (warm %.2fms -> %.2fms, 16-client \
         %.0f -> %.0f req/s); keeping the old file (rerun with --force to \
         overwrite)\n%!"
        bench_serve_file ow warm ot (qps 16)
  | None ->
      let preserved =
        List.filter (fun (k, _) -> has_prefix "loadgen_" k)
          (read_json_pairs bench_serve_file)
      in
      write_json_pairs bench_serve_file
        ([
           ("cold_ms", Printf.sprintf "%.4f" cold);
           ("warm_ms", Printf.sprintf "%.4f" warm);
         ]
        @ List.map
            (fun (c, v) ->
              (Printf.sprintf "throughput_%d" c, Printf.sprintf "%.1f" v))
            tp
        @ [
            ("working_set", string_of_int (Array.length sources));
            ("requests_per_client", string_of_int per_client);
            ("overload_shed", string_of_int shed);
            ("overload_deadline_misses", string_of_int misses);
            ("overload_p99_ms", Printf.sprintf "%.4f" p99);
          ]
        @ preserved);
      Printf.printf "  wrote %s\n%!" bench_serve_file

(* --- loadgen: scale-out serving load harness ---------------------------

   Replays a configurable stream of synthetic tuning queries — generated
   sparsity patterns with zipf-skewed popularity, a mixed kernel
   assignment, and a configurable measured fraction — against two
   topologies built from the same artifacts and the same per-daemon cache
   capacity: one daemon alone, and a `waco route` consistent-hash router
   over four shard daemons.  Per-daemon capacity is the fixed resource;
   the working set is sized past one cache, so the single daemon pays
   capacity misses at steady state while the shard tier's aggregate
   capacity covers the whole set (the fingerprint hash pins each pattern
   to one shard, so per-shard hit rates stay high).  Closed-loop
   concurrent clients measure what serving systems measure: per-query
   latency percentiles and sustained throughput, plus shed/hit/miss
   counters and per-shard routing balance from the aggregated stats.

   Defaults keep the bench seconds-scale; every axis is an env knob —
   WACO_LOADGEN_QUERIES (raise to millions for a soak), _CLIENTS,
   _DISTINCT, _ZIPF, _MEASURE_PCT, _CACHE, and _TCP=1 to run the whole
   topology over tcp:127.0.0.1 instead of Unix sockets.  Results land in
   BENCH_serve.json under loadgen_* keys (the serve target's keys are
   preserved); a run whose router throughput or scale-out speedup
   regresses more than 20% against the recorded numbers refuses to
   overwrite without --force. *)

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0.0 -> v
  | _ -> default

let loadgen_bench ~force () =
  let total = env_int "WACO_LOADGEN_QUERIES" 4000 in
  let nclients = env_int "WACO_LOADGEN_CLIENTS" 16 in
  let distinct = env_int "WACO_LOADGEN_DISTINCT" 192 in
  let zipf_s = env_float "WACO_LOADGEN_ZIPF" 0.7 in
  let measure_pct = min 100 (env_int "WACO_LOADGEN_MEASURE_PCT" 35) in
  let cache_capacity = env_int "WACO_LOADGEN_CACHE" 48 in
  let nshards = 4 in
  let tcp = Sys.getenv_opt "WACO_LOADGEN_TCP" <> None in
  let seed = Waco.Config.seed () in
  let machine = Machine_model.Machine.intel_like in
  let spmm = Algorithm.Spmm 256 in
  let spmv = Waco.Kernel.to_algo Waco.Kernel.Spmv in
  Printf.printf
    "  %d queries, %d clients, %d distinct patterns (zipf %.2f), %d%% \
     measured, cache %d/daemon, %s\n%!"
    total nclients distinct zipf_s measure_pct cache_capacity
    (if tcp then "tcp" else "unix");
  (* One model/index pair per kernel slot, shared by every daemon in both
     topologies: the comparison isolates topology, nothing else. *)
  let model = Waco.Costmodel.create (Rng.create seed) spmm in
  let crng = Rng.create (seed + 1) in
  let corpus = Array.init 128 (fun _ -> Space.sample crng spmm ~dims:[| 64; 64 |]) in
  let index = Waco.Tuner.build_index (Rng.create (seed + 2)) model corpus in
  let vmodel = Waco.Costmodel.create (Rng.create (seed + 3)) spmv in
  let vrng = Rng.create (seed + 4) in
  let vcorpus = Array.init 128 (fun _ -> Space.sample vrng spmv ~dims:[| 64; 64 |]) in
  let vindex = Waco.Tuner.build_index (Rng.create (seed + 5)) vmodel vcorpus in
  (* The working set: [distinct] patterns over the generator families, all
     with distinct fingerprints, so cache keys = patterns and the capacity
     accounting is exact.  Pattern index doubles as zipf rank. *)
  let families =
    [| Gen.Uniform; Gen.Power_law 1.5; Gen.Banded 8; Gen.Block_dense 4;
       Gen.Rmat; Gen.Clustered 4 |]
  in
  let prng = Rng.create (seed + 6) in
  let seen = Hashtbl.create distinct in
  let patterns =
    Array.init distinct (fun i ->
        let rec draw () =
          let m =
            Gen.generate prng families.(i mod Array.length families)
              ~nrows:64 ~ncols:64 ~nnz:400
          in
          let key = Serve.Fingerprint.key (Serve.Fingerprint.of_coo m) in
          if Hashtbl.mem seen key then draw ()
          else begin
            Hashtbl.add seen key ();
            m
          end
        in
        draw ())
  in
  let sources =
    Array.map
      (fun (m : Coo.t) ->
        Serve.Protocol.Inline
          {
            nrows = m.Coo.nrows;
            ncols = m.Coo.ncols;
            entries =
              Array.init (Coo.nnz m) (fun k ->
                  (m.Coo.rows.(k), m.Coo.cols.(k), m.Coo.vals.(k)));
          })
      patterns
  in
  let kernels =
    Array.init distinct (fun i ->
        if i mod 4 = 0 then Waco.Kernel.Spmv else Waco.Kernel.Spmm)
  in
  (* The measured fraction, spread across ranks (31 is coprime to 100, so
     measured patterns land on hot and cold ranks alike). *)
  let measures = Array.init distinct (fun i -> i * 31 mod 100 < measure_pct) in
  let cdf =
    let acc = ref 0.0 in
    let c =
      Array.init distinct (fun i ->
          acc := !acc +. (float_of_int (i + 1) ** -.zipf_s);
          !acc)
    in
    Array.map (fun x -> x /. !acc) c
  in
  let pick rng =
    let u = Rng.float rng in
    let lo = ref 0 and hi = ref (distinct - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let dir = Filename.temp_file "waco-bench-loadgen" "" in
  Sys.remove dir;
  Robust.mkdir_p dir;
  let mk_server name =
    let socket =
      if tcp then "tcp:127.0.0.1:0" else Filename.concat dir (name ^ ".sock")
    in
    Serve.Server.create ~cache_capacity ~max_batch:32
      ~extra:[ (vmodel, vindex, "<bench-spmv>") ]
      ~model ~index ~index_file:"<bench>" ~machine ~socket ()
  in
  let spawn_server server =
    let d = Domain.spawn (fun () -> Serve.Server.run server) in
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match Serve.Server.bound_endpoint server with
      | Some e -> e
      | None ->
          if Unix.gettimeofday () > deadline then
            failwith "loadgen: daemon never bound";
          Unix.sleepf 0.01;
          wait ()
    in
    (d, wait ())
  in
  let connect_retry endpoint =
    let rec go attempts =
      match Serve.Client.connect endpoint with
      | c -> c
      | exception _ when attempts > 0 ->
          Unix.sleepf 0.02;
          go (attempts - 1)
    in
    go 250
  in
  let percentile a q =
    a.(min (Array.length a - 1)
         (int_of_float (float_of_int (Array.length a) *. q)))
  in
  (* One topology under load: a pipelined warmup sweep over every pattern
     (both topologies pay the same compulsory misses, outside the timed
     window), then [nclients] closed-loop client domains drawing from the
     zipf popularity until [total] queries have been answered. *)
  let run_load ~label ~endpoint =
    let c0 = connect_retry endpoint in
    (* Pipeline the sweep one micro-batch at a time: a client that ships
       the whole working set before draining a byte trips the daemon's
       write-stall protection (correctly — that's PR-7's backpressure). *)
    let step = 32 in
    let i = ref 0 in
    while !i < distinct do
      let stop = min distinct (!i + step) in
      for q = !i to stop - 1 do
        Serve.Client.send c0
          (Serve.Protocol.Query
             {
               qid = Printf.sprintf "warm%d" q;
               source = sources.(q);
               measure = measures.(q);
               deadline_ms = 0;
               kernel = Some kernels.(q);
             })
      done;
      for _ = !i to stop - 1 do
        match Serve.Client.recv ~timeout_s:120.0 c0 with
        | Serve.Protocol.Answer _ -> ()
        | _ -> failwith "loadgen: non-answer during warmup"
      done;
      i := stop
    done;
    let per_client = max 1 (total / nclients) in
    let t0 = Unix.gettimeofday () in
    let workers =
      Array.init nclients (fun ci ->
          Domain.spawn (fun () ->
              let rng = Rng.create (seed + 100 + ci) in
              let c = connect_retry endpoint in
              let lats = Array.make per_client 0.0 in
              let errors = ref 0 in
              for q = 0 to per_client - 1 do
                let i = pick rng in
                let t = Unix.gettimeofday () in
                (match
                   Serve.Client.query ~measure:measures.(i)
                     ~kernel:kernels.(i)
                     ~qid:(Printf.sprintf "c%d.%d" ci q)
                     c sources.(i)
                 with
                | Ok _ -> ()
                | Error _ -> incr errors);
                lats.(q) <- (Unix.gettimeofday () -. t) *. 1e3
              done;
              Serve.Client.close c;
              (lats, !errors)))
    in
    let results = Array.map Domain.join workers in
    let wall = Unix.gettimeofday () -. t0 in
    let lats = Array.concat (Array.to_list (Array.map fst results)) in
    let errors = Array.fold_left (fun a (_, e) -> a + e) 0 results in
    Array.sort compare lats;
    let qps = float_of_int (Array.length lats) /. wall in
    let stats =
      match Serve.Client.request c0 Serve.Protocol.Stats with
      | Serve.Protocol.Stats_json j -> j
      | _ -> "{}"
    in
    Serve.Client.close c0;
    let p50 = percentile lats 0.50
    and p95 = percentile lats 0.95
    and p99 = percentile lats 0.99 in
    Printf.printf
      "  %-6s %8.0f q/s   p50 %6.2f  p95 %6.2f  p99 %6.2f ms   errors %d\n%!"
      label qps p50 p95 p99 errors;
    (qps, p50, p95, p99, errors, stats)
  in
  let shutdown_at endpoint =
    let c = connect_retry endpoint in
    ignore (Serve.Client.shutdown c);
    Serve.Client.close c
  in
  (* Counter out of a JSON slice: [from_key] narrows multi-section
     aggregates (the same counter name appears in every shard's embedded
     stats) to the section of interest before scanning. *)
  let counter_in ?from_key json name =
    let slice =
      match from_key with
      | None -> json
      | Some k -> (
          let pat = Printf.sprintf "%S" k in
          let rec find i =
            if i + String.length pat > String.length json then json
            else if String.sub json i (String.length pat) = pat then
              String.sub json i (String.length json - i)
            else find (i + 1)
          in
          find 0)
    in
    Option.value ~default:0 (Serve.Metrics.json_counter slice name)
  in
  (* Topology 1: one daemon, [nclients] clients straight at it. *)
  let single = mk_server "single" in
  let sd, sep = spawn_server single in
  let sq, sp50, sp95, sp99, serr, sstats = run_load ~label:"single" ~endpoint:sep in
  shutdown_at sep;
  Domain.join sd;
  let s_hits = counter_in sstats "cache_hits"
  and s_misses = counter_in sstats "cache_misses" in
  (* Topology 2: the same daemon config x4 behind the router. *)
  let shard_servers =
    Array.init nshards (fun i -> mk_server (Printf.sprintf "shard%d" i))
  in
  let shard_handles = Array.map spawn_server shard_servers in
  let shard_eps = Array.map snd shard_handles in
  let router_listen =
    if tcp then "tcp:127.0.0.1:0" else Filename.concat dir "router.sock"
  in
  let router =
    Serve.Router.create ~listen:router_listen
      ~shards:(Array.to_list shard_eps) ()
  in
  let rd = Domain.spawn (fun () -> Serve.Router.run router) in
  let rep =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match Serve.Router.bound_endpoint router with
      | Some e -> e
      | None ->
          if Unix.gettimeofday () > deadline then
            failwith "loadgen: router never bound";
          Unix.sleepf 0.01;
          wait ()
    in
    wait ()
  in
  (* Don't start the clock until every shard is on the ring. *)
  let () =
    let c = connect_retry rep in
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      let up =
        match Serve.Client.request c Serve.Protocol.Stats with
        | Serve.Protocol.Stats_json j -> counter_in j "shards_up"
        | _ -> 0
      in
      if up < nshards then begin
        if Unix.gettimeofday () > deadline then
          failwith "loadgen: shards never joined the ring";
        Unix.sleepf 0.02;
        wait ()
      end
    in
    wait ();
    Serve.Client.close c
  in
  let rq, rp50, rp95, rp99, rerr, rstats = run_load ~label:"router" ~endpoint:rep in
  let r_hits = counter_in ~from_key:"totals" rstats "cache_hits"
  and r_misses = counter_in ~from_key:"totals" rstats "cache_misses"
  and r_shed =
    counter_in rstats "shed" + counter_in ~from_key:"totals" rstats "shed"
  in
  (* Per-shard balance straight from the shards' routed counters in the
     aggregated stats answer. *)
  let routed =
    let pat = "\"routed\": " in
    let from =
      match String.index_opt rstats '[' with Some i -> i | None -> 0
    in
    let out = ref [] in
    let i = ref from in
    while !i + String.length pat <= String.length rstats do
      if String.sub rstats !i (String.length pat) = pat then begin
        let j = ref (!i + String.length pat) in
        let v = ref 0 in
        while
          !j < String.length rstats
          && rstats.[!j] >= '0'
          && rstats.[!j] <= '9'
        do
          v := (!v * 10) + (Char.code rstats.[!j] - Char.code '0');
          incr j
        done;
        out := !v :: !out;
        i := !j
      end
      else incr i
    done;
    Array.of_list (List.rev !out)
  in
  let balance =
    if Array.length routed = 0 then 0.0
    else
      let total_r = Array.fold_left ( + ) 0 routed in
      let mean = float_of_int total_r /. float_of_int (Array.length routed) in
      if mean <= 0.0 then 0.0
      else float_of_int (Array.fold_left max 0 routed) /. mean
  in
  (* Key spread: how the consistent hash partitions the working set's
     fingerprints, unweighted by popularity — the number the ±25%
     uniformity property is about (routed counts above are zipf-weighted
     query traffic, naturally skewed by whoever owns the hot ranks). *)
  let key_spread =
    let ring = Serve.Router.Ring.create (Array.to_list shard_eps) in
    let counts = Hashtbl.create nshards in
    Array.iter
      (fun m ->
        let owner =
          Serve.Router.Ring.lookup ring
            (Serve.Router.Ring.routing_key
               (Serve.Fingerprint.key (Serve.Fingerprint.of_coo m)))
        in
        Hashtbl.replace counts owner
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner)))
      patterns;
    Array.map
      (fun ep -> Option.value ~default:0 (Hashtbl.find_opt counts ep))
      shard_eps
  in
  let key_balance =
    let mean = float_of_int distinct /. float_of_int nshards in
    float_of_int (Array.fold_left max 0 key_spread) /. mean
  in
  shutdown_at rep;
  Array.iter shutdown_at shard_eps;
  Domain.join rd;
  Array.iter (fun (d, _) -> Domain.join d) shard_handles;
  (try Array.iter Sys.remove (Sys.readdir dir |> Array.map (Filename.concat dir))
   with Sys_error _ -> ());
  (try Sys.rmdir dir with Sys_error _ -> ());
  let speedup = if sq > 0.0 then rq /. sq else 0.0 in
  Printf.printf
    "  scale-out: %.2fx throughput vs single at %d clients (hit rate %.2f \
     -> %.2f)\n  balance: keys max/mean %.2f [%s], query traffic max/mean \
     %.2f [%s]\n%!"
    speedup nclients
    (float_of_int s_hits /. float_of_int (max 1 (s_hits + s_misses)))
    (float_of_int r_hits /. float_of_int (max 1 (r_hits + r_misses)))
    key_balance
    (String.concat "," (Array.to_list (Array.map string_of_int key_spread)))
    balance
    (String.concat "," (Array.to_list (Array.map string_of_int routed)));
  (* Regression guard on the two headline numbers. *)
  let old = read_json_pairs bench_serve_file in
  let old_f key =
    Option.bind (List.assoc_opt key old) float_of_string_opt
  in
  match (old_f "loadgen_router_qps", old_f "loadgen_speedup") with
  | (Some oq, _) when (not force) && rq < 0.8 *. oq ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded router throughput (%.0f -> %.0f \
         q/s); keeping the old file (rerun with --force to overwrite)\n%!"
        oq rq
  | (_, Some os) when (not force) && speedup < 0.8 *. os ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded scale-out speedup (%.2fx -> \
         %.2fx); keeping the old file (rerun with --force to overwrite)\n%!"
        os speedup
  | _ ->
      let preserved =
        List.filter (fun (k, _) -> not (has_prefix "loadgen_" k)) old
      in
      write_json_pairs bench_serve_file
        (preserved
        @ [
            ("loadgen_queries", string_of_int total);
            ("loadgen_clients", string_of_int nclients);
            ("loadgen_distinct", string_of_int distinct);
            ("loadgen_zipf", Printf.sprintf "%.2f" zipf_s);
            ("loadgen_measure_pct", string_of_int measure_pct);
            ("loadgen_cache_capacity", string_of_int cache_capacity);
            ("loadgen_shards", string_of_int nshards);
            ("loadgen_single_qps", Printf.sprintf "%.1f" sq);
            ("loadgen_single_p50_ms", Printf.sprintf "%.4f" sp50);
            ("loadgen_single_p95_ms", Printf.sprintf "%.4f" sp95);
            ("loadgen_single_p99_ms", Printf.sprintf "%.4f" sp99);
            ( "loadgen_single_hit_rate",
              Printf.sprintf "%.4f"
                (float_of_int s_hits
                /. float_of_int (max 1 (s_hits + s_misses))) );
            ("loadgen_router_qps", Printf.sprintf "%.1f" rq);
            ("loadgen_router_p50_ms", Printf.sprintf "%.4f" rp50);
            ("loadgen_router_p95_ms", Printf.sprintf "%.4f" rp95);
            ("loadgen_router_p99_ms", Printf.sprintf "%.4f" rp99);
            ( "loadgen_router_hit_rate",
              Printf.sprintf "%.4f"
                (float_of_int r_hits
                /. float_of_int (max 1 (r_hits + r_misses))) );
            ("loadgen_speedup", Printf.sprintf "%.4f" speedup);
            ( "loadgen_shard_routed",
              Printf.sprintf "[%s]"
                (String.concat ", "
                   (Array.to_list (Array.map string_of_int routed))) );
            ("loadgen_balance", Printf.sprintf "%.4f" balance);
            ( "loadgen_key_spread",
              Printf.sprintf "[%s]"
                (String.concat ", "
                   (Array.to_list (Array.map string_of_int key_spread))) );
            ("loadgen_key_balance", Printf.sprintf "%.4f" key_balance);
            ("loadgen_shed", string_of_int r_shed);
            ("loadgen_errors", string_of_int (serr + rerr));
          ]);
      Printf.printf "  wrote %s\n%!" bench_serve_file

(* --- asym: static pre-filter effect on the search ----------------------

   The symbolic pre-filter prunes the schedule space before the expensive
   stages; this bench measures what that buys: index-build latency with the
   corpus filter on vs off (rejected points skip the NN embedding forward),
   cold-query latency with the top-k filter on vs off (pruned candidates
   skip the simulator), the fraction of random candidates the analyzer
   prunes, and — the safety property — that the final chosen schedule on
   the seed corpus is identical either way (both tunes run on the shared
   unfiltered index; the filter only drops ranked candidates it proves can
   never win).  Results land in BENCH_asym.json; a run whose prune rate or
   filtered query latency regresses more than 20% against the recorded
   numbers refuses to overwrite without --force. *)

let bench_asym_file = "BENCH_asym.json"

let asym_bench ~force () =
  let algo = Algorithm.Spmm 256 in
  let machine = Machine_model.Machine.intel_like in
  let seed = Waco.Config.seed () in
  let model = Waco.Costmodel.create (Rng.create seed) algo in
  let srng = Rng.create (seed + 1) in
  let dims = [| 512; 512 |] in
  let corpus = Array.init 256 (fun _ -> Space.sample srng algo ~dims) in
  (* Seed matrices the queries run against: one per structure family, all in
     the hypersparse regime the pre-filter targets — the dense-product / nnz
     gap (>= 512^2 / 4096 = 64x) clears the analyzer's pruning margin with
     room to spare.  (Near-dense workloads legitimately switch the filter
     off: no schedule is asymptotically worse there.) *)
  let mats =
    let grng = Rng.create (seed + 2) in
    List.map
      (fun (family, nnz) ->
        {
          Gen.name = Printf.sprintf "%s_%d" (Gen.family_name family) nnz;
          Gen.matrix =
            Gen.generate grng family ~nrows:512 ~ncols:512 ~nnz;
        })
      [
        (Gen.Uniform, 4096);
        (Gen.Power_law 1.6, 2048);
        (Gen.Banded 64, 4096);
        (Gen.Block_dense 8, 2048);
        (Gen.Rmat, 4096);
        (Gen.Clustered 16, 1024);
      ]
  in
  (* Prune rate: workload-aware analyzers over fresh random candidates. *)
  let prune_rate =
    let total = ref 0 and pruned = ref 0 in
    List.iter
      (fun (g : Gen.named) ->
        let m = g.Gen.matrix in
        let wl = Machine_model.Workload.of_coo ~id:g.Gen.name m in
        let az = Asym.Analyzer.of_workload ~algo wl in
        let cdims = [| m.Coo.nrows; m.Coo.ncols |] in
        let crng = Rng.create (seed + 3) in
        for _ = 1 to 128 do
          incr total;
          if Asym.Analyzer.prunes az (Space.sample crng algo ~dims:cdims) then
            incr pruned
        done)
      mats;
    float_of_int !pruned /. float_of_int !total
  in
  (* Index build latency, filter off vs on. *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let az_default =
    Asym.Analyzer.create ~algo (Asym.Analyzer.default_stats ~algo ~dims ())
  in
  let index_off, build_off =
    time (fun () -> Waco.Tuner.build_index (Rng.create (seed + 4)) model corpus)
  in
  let index_on, build_on =
    time (fun () ->
        Waco.Tuner.build_index ~asym:az_default (Rng.create (seed + 4)) model
          corpus)
  in
  (* Cold queries against the shared unfiltered index, top-k pre-filter off
     vs on; the chosen schedule must be identical (the zero-change check). *)
  let query_off = ref 0.0 and query_on = ref 0.0 in
  let pruned_total = ref 0 and changed = ref 0 in
  List.iter
    (fun (g : Gen.named) ->
      let m = g.Gen.matrix in
      let wl = Machine_model.Workload.of_coo ~id:g.Gen.name m in
      let input = Waco.Extractor.input_of_coo ~id:g.Gen.name m in
      Waco.Costmodel.clear_feature_cache model;
      let off, t_off =
        time (fun () ->
            Waco.Tuner.tune ~k:10 ~asym:false model machine wl input index_off)
      in
      Waco.Costmodel.clear_feature_cache model;
      let on, t_on =
        time (fun () ->
            Waco.Tuner.tune ~k:10 model machine wl input index_off)
      in
      query_off := !query_off +. t_off;
      query_on := !query_on +. t_on;
      pruned_total := !pruned_total + on.Waco.Tuner.asym_pruned;
      if
        Superschedule.key on.Waco.Tuner.best
        <> Superschedule.key off.Waco.Tuner.best
      then begin
        incr changed;
        Printf.printf "  CHANGED answer on %s: %s vs %s\n%!" g.Gen.name
          (Superschedule.key on.Waco.Tuner.best)
          (Superschedule.key off.Waco.Tuner.best)
      end)
    mats;
  let n = float_of_int (List.length mats) in
  let q_off = 1000.0 *. !query_off /. n and q_on = 1000.0 *. !query_on /. n in
  Printf.printf "  index build : %.2fs off, %.2fs on (%d dropped: %d lint + %d asym)\n"
    build_off build_on
    (index_on.Waco.Tuner.lint_rejected + index_on.Waco.Tuner.asym_rejected)
    index_on.Waco.Tuner.lint_rejected index_on.Waco.Tuner.asym_rejected;
  Printf.printf "  cold query  : %.2fms off, %.2fms on (avg over %.0f matrices)\n"
    q_off q_on n;
  Printf.printf "  prune rate  : %.0f%% of random candidates (%d top-k prunes)\n"
    (100.0 *. prune_rate) !pruned_total;
  Printf.printf "  chosen schedule changed on %d/%.0f matrices%s\n" !changed n
    (if !changed = 0 then " (zero-change holds)" else " — FILTER IS UNSAFE");
  if prune_rate < 0.3 then
    Printf.printf "  WARNING: prune rate %.0f%% below the 30%% target\n%!"
      (100.0 *. prune_rate);
  (* Regression guard: don't silently clobber better recorded numbers. *)
  match
    if Sys.file_exists bench_asym_file && not force then begin
      let ic = open_in_bin bench_asym_file in
      let old = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match
        (json_float_field old "prune_rate", json_float_field old "query_on_ms")
      with
      | Some op, Some oq when prune_rate < 0.8 *. op || q_on > 1.2 *. oq ->
          Some (op, oq)
      | _ -> None
    end
    else None
  with
  | Some (op, oq) ->
      Printf.printf
        "  REGRESSION > 20%% vs recorded %s (prune rate %.2f -> %.2f, query \
         %.2fms -> %.2fms); keeping the old file (rerun with --force to \
         overwrite)\n%!"
        bench_asym_file op prune_rate oq q_on
  | None ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf "  \"build_off_s\": %.4f,\n" build_off;
      Printf.bprintf buf "  \"build_on_s\": %.4f,\n" build_on;
      Printf.bprintf buf "  \"query_off_ms\": %.4f,\n" q_off;
      Printf.bprintf buf "  \"query_on_ms\": %.4f,\n" q_on;
      Printf.bprintf buf "  \"prune_rate\": %.4f,\n" prune_rate;
      Printf.bprintf buf "  \"index_lint_rejected\": %d,\n"
        index_on.Waco.Tuner.lint_rejected;
      Printf.bprintf buf "  \"index_asym_rejected\": %d,\n"
        index_on.Waco.Tuner.asym_rejected;
      Printf.bprintf buf "  \"topk_pruned\": %d,\n" !pruned_total;
      Printf.bprintf buf "  \"chosen_changed\": %d\n" !changed;
      Buffer.add_string buf "}\n";
      let oc = open_out_bin bench_asym_file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "  wrote %s\n%!" bench_asym_file

let canonical_order selected =
  let ordered =
    List.filter_map
      (fun (n, _, _) -> if List.mem n selected then Some n else None)
      experiment_targets
  in
  ordered
  @ (if List.mem "micro" selected then [ "micro" ] else [])
  @ (if List.mem "kernels" selected then [ "kernels" ] else [])
  @ (if List.mem "scaling" selected then [ "scaling" ] else [])
  @ (if List.mem "kernelmix" selected then [ "kernelmix" ] else [])
  @ (if List.mem "serve" selected then [ "serve" ] else [])
  @ (if List.mem "loadgen" selected then [ "loadgen" ] else [])
  @ (if List.mem "asym" selected then [ "asym" ] else [])

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let force = List.mem "--force" args in
  let args = List.filter (fun a -> a <> "--force") args in
  let args =
    List.map (fun a -> match List.assoc_opt a aliases with Some t -> t | None -> a) args
  in
  let selected =
    match args with
    | [] -> List.map (fun (n, _, _) -> n) experiment_targets @ [ "micro" ]
    | _ -> args
  in
  List.iter
    (fun a ->
      if a <> "micro" && a <> "scaling" && a <> "kernels" && a <> "kernelmix"
         && a <> "serve" && a <> "loadgen" && a <> "asym"
         && not (List.exists (fun (n, _, _) -> n = a) experiment_targets)
      then Printf.eprintf "unknown target: %s (ignored)\n%!" a)
    selected;
  let t0 = Unix.gettimeofday () in
  Printf.printf "WACO reproduction bench (seed=%d scale=%.1f epochs=%d)\n%!"
    (Waco.Config.seed ()) (Waco.Config.scale ()) (Waco.Config.epochs ());
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else if name = "kernels" then begin
        Printf.printf "\n>>> kernels — NN hot-path time/allocation microbench\n%!";
        let t = Unix.gettimeofday () in
        kernels ~force ();
        Printf.printf "<<< kernels done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else if name = "scaling" then begin
        Printf.printf "\n>>> scaling — domain-parallel speedup sweep\n%!";
        let t = Unix.gettimeofday () in
        scaling ~force ();
        Printf.printf "<<< scaling done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else if name = "kernelmix" then begin
        Printf.printf "\n>>> kernelmix — four-kernel sweep on a shared corpus\n%!";
        let t = Unix.gettimeofday () in
        kernelmix ~force ();
        Printf.printf "<<< kernelmix done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else if name = "serve" then begin
        Printf.printf "\n>>> serve — daemon latency/throughput bench\n%!";
        let t = Unix.gettimeofday () in
        serve_bench ~force ();
        Printf.printf "<<< serve done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else if name = "loadgen" then begin
        Printf.printf
          "\n>>> loadgen — scale-out serving load harness (router vs single)\n%!";
        let t = Unix.gettimeofday () in
        loadgen_bench ~force ();
        Printf.printf "<<< loadgen done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else if name = "asym" then begin
        Printf.printf "\n>>> asym — static pre-filter prune rate and latency\n%!";
        let t = Unix.gettimeofday () in
        asym_bench ~force ();
        Printf.printf "<<< asym done in %.1fs\n%!" (Unix.gettimeofday () -. t)
      end
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiment_targets with
        | Some (_, desc, run) ->
            Printf.printf "\n>>> %s — %s\n%!" name desc;
            let t = Unix.gettimeofday () in
            run ();
            Printf.printf "<<< %s done in %.1fs\n%!" name (Unix.gettimeofday () -. t)
        | None -> ())
    (canonical_order (List.sort_uniq compare selected));
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
