(* waco — command-line driver.

     waco gen --out m.mtx --family rmat --rows 2048 --nnz 60000
     waco inspect m.mtx
     waco tune m.mtx --algo SpMM --machine intel
     waco train --algo SpMM --out model.txt
     waco bench table1 fig14 ...   (same targets as bench/main.exe)
*)

open Cmdliner
open Sptensor
open Schedule

let machine_of = function
  | "intel" -> Machine_model.Machine.intel_like
  | "amd" -> Machine_model.Machine.amd_like
  | s -> invalid_arg ("unknown machine: " ^ s ^ " (use intel|amd)")

let machine_arg =
  Arg.(value & opt string "intel" & info [ "machine" ] ~docv:"MACHINE"
         ~doc:"Machine model: intel|amd")

let algo_arg =
  Arg.(value & opt string "SpMM" & info [ "algo" ] ~docv:"ALGO"
         ~doc:"Algorithm: SpMV|SpMM|SDDMM|MTTKRP")

(* Kernel-first spelling of --algo: the lowercase names the serve protocol
   and cache namespaces use, at the paper's canonical dense sizes.  When
   given it wins over --algo. *)
let kernel_arg =
  Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"KERNEL"
         ~doc:"Kernel to target, by its wire name (spmv|spmm|sddmm|mttkrp); \
               shorthand for --algo at the paper's canonical dense sizes")

let kernel_of_cli kname =
  match Waco.Kernel.of_name kname with
  | Some k -> k
  | None ->
      invalid_arg
        (Printf.sprintf "unknown kernel: %s (expected one of %s)" kname
           (String.concat "|" (List.map Waco.Kernel.name Waco.Kernel.all)))

let resolve_algo ~algo_name = function
  | Some kname -> Waco.Kernel.to_algo (kernel_of_cli kname)
  | None -> Experiments.Lab.algo_of_name algo_name

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed")

(* Parallel phases stay sequential unless asked for: results are
   byte-identical either way (see lib/parallel), so the flag only trades
   wall-clock for cores. *)
let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel phases (measurement, index \
               build, validation eval): 1 runs sequentially (default), 0 \
               uses the shared pool sized from WACO_DOMAINS or the machine, \
               N>1 creates a pool of exactly $(docv) domains")

let pool_of = function
  | 0 -> Some (Parallel.Pool.default ())
  | 1 -> None
  | n when n > 1 -> Some (Parallel.Pool.create ~domains:n)
  | n -> invalid_arg (Printf.sprintf "--domains %d: must be >= 0" n)

(* --- gen --- *)

let gen_cmd =
  let run out family rows cols nnz seed =
    let rng = Rng.create seed in
    let fam =
      match family with
      | "uniform" -> Gen.Uniform
      | "powerlaw" -> Gen.Power_law 1.4
      | "banded" -> Gen.Banded 16
      | "block" -> Gen.Block_dense 8
      | "rmat" -> Gen.Rmat
      | "stencil" -> Gen.Stencil2d
      | "clustered" -> Gen.Clustered 16
      | s -> invalid_arg ("unknown family: " ^ s)
    in
    let m = Gen.generate rng fam ~nrows:rows ~ncols:cols ~nnz in
    Mmio.write_coo out m;
    Printf.printf "wrote %s: %d x %d, %d nonzeros (%s)\n" out m.Coo.nrows m.Coo.ncols
      (Coo.nnz m) family
  in
  let out = Arg.(value & opt string "matrix.mtx" & info [ "out" ] ~doc:"Output path") in
  let family =
    Arg.(value & opt string "rmat" & info [ "family" ]
           ~doc:"uniform|powerlaw|banded|block|rmat|stencil|clustered")
  in
  let rows = Arg.(value & opt int 2048 & info [ "rows" ] ~doc:"Rows") in
  let cols = Arg.(value & opt int 0 & info [ "cols" ] ~doc:"Cols (default: rows)") in
  let nnz = Arg.(value & opt int 60000 & info [ "nnz" ] ~doc:"Nonzeros") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic sparse matrix (MatrixMarket)")
    Term.(
      const (fun out family rows cols nnz seed ->
          run out family rows (if cols = 0 then rows else cols) nnz seed)
      $ out $ family $ rows $ cols $ nnz $ seed_arg)

(* --- inspect --- *)

let inspect_cmd =
  let run path =
    let m = Mmio.read_coo path in
    let s = Stats.compute m in
    Format.printf "%a@." Stats.pp s;
    Printf.printf "row nnz: mean %.1f std %.1f max %d; empty rows %d\n"
      s.Stats.row_nnz_mean s.Stats.row_nnz_std s.Stats.row_nnz_max s.Stats.empty_rows;
    List.iter
      (fun b ->
        let bs = Stats.block_stats m ~bi:b ~bk:b in
        Printf.printf "%dx%d blocks: %d nonempty, fill %.2f\n" b b
          bs.Stats.nonempty_blocks bs.Stats.avg_fill)
      [ 2; 4; 8; 16 ]
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MATRIX") in
  Cmd.v (Cmd.info "inspect" ~doc:"Print sparsity-pattern statistics")
    Term.(const run $ path)

(* --- tune --- *)

let tune_cmd =
  let run path algo_name kernel_name machine_name model_file index_file
      save_index_file seed domains =
    let machine = machine_of machine_name in
    let algo = resolve_algo ~algo_name kernel_name in
    let m = Mmio.read_coo path in
    let rng = Rng.create seed in
    let pool = pool_of domains in
    let wl = Machine_model.Workload.of_coo ~id:path m in
    let input = Waco.Extractor.input_of_coo ~id:path m in
    (* Where the search index came from — a reloaded snapshot skips the
       rebuild, and the user should be able to tell which path they got. *)
    let provenance = ref "built fresh" in
    (* Per-reason pre-filter tallies for the summary line: what the index
       build dropped, per Asym.Prefilter reason. *)
    let idx_lint = ref 0 and idx_asym = ref 0 in
    let note_counts (index : Waco.Tuner.index) =
      idx_lint := index.Waco.Tuner.lint_rejected;
      idx_asym := index.Waco.Tuner.asym_rejected;
      index
    in
    let r =
      match
        let model, corpus =
          match model_file with
          | Some file ->
              let model = Waco.Costmodel.create rng algo in
              Waco.Costmodel.load model file;
              (* No dataset on hand: sample an index corpus from the
                 SuperSchedule space sized to this matrix. *)
              let rank = Algorithm.sparse_rank algo in
              let dims =
                Array.init rank (fun i -> if i = 0 then m.Coo.nrows else m.Coo.ncols)
              in
              (model, Array.init 256 (fun _ -> Space.sample rng algo ~dims))
          | None ->
              Printf.eprintf
                "training a fresh %s cost model (pass --model to reuse one)...\n%!"
                algo_name;
              let corpus = Gen.suite rng ~count:16 ~max_dim:1024 ~max_nnz:60000 in
              let mats =
                List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus
              in
              let data =
                Waco.Dataset.of_matrices ?pool rng machine algo mats
                  ~schedules_per_matrix:24 ~valid_fraction:0.2
              in
              let model = Waco.Costmodel.create rng algo in
              ignore
                (Waco.Trainer.train ?pool ~lr:2e-3 rng model data
                   ~epochs:(Waco.Config.epochs ()));
              (model, Waco.Dataset.all_schedules data)
        in
        let index =
          match index_file with
          | Some file ->
              let index = Waco.Tuner.load_index rng ~algo file in
              provenance :=
                Printf.sprintf "snapshot %s (%d schedules)" file
                  index.Waco.Tuner.corpus_size;
              note_counts index
          | None ->
              let az = Asym.Analyzer.of_workload ~algo wl in
              let index =
                Waco.Tuner.build_index ?pool ~asym:az rng model corpus
              in
              provenance :=
                Printf.sprintf "built fresh (%d schedules, %.2fs)"
                  index.Waco.Tuner.corpus_size index.Waco.Tuner.build_seconds;
              note_counts index
        in
        (match save_index_file with
        | Some file ->
            Waco.Tuner.save_index index file;
            Printf.eprintf "saved index snapshot to %s\n%!" file
        | None -> ());
        (model, index)
      with
      | exception Robust.Load_error err ->
          (* A damaged model or index must not abort the run: fall back to
             the fixed-CSR baseline and say so. *)
          let reason = Robust.load_error_to_string err in
          Printf.eprintf "waco tune: %s; degrading to the fixed-CSR baseline\n%!"
            reason;
          Waco.Tuner.degraded machine wl algo ~reason
      | model, index -> Waco.Tuner.tune ?pool model machine wl input index
    in
    let csr = Baselines.fixed_csr machine wl algo in
    Printf.printf "chosen   : %s\n" (Superschedule.describe r.Waco.Tuner.best);
    Printf.printf "kernel   : %.3e s (model)\n" r.Waco.Tuner.best_measured;
    Printf.printf "fixed CSR: %.3e s -> speedup %.2fx\n" csr.Baselines.kernel_time
      (csr.Baselines.kernel_time /. r.Waco.Tuner.best_measured);
    Printf.printf "overhead : feature %.3fs, search %.4fs (%d cost-model evals)\n"
      r.Waco.Tuner.feature_seconds r.Waco.Tuner.search_seconds r.Waco.Tuner.cost_evals;
    Printf.printf "index    : %s\n"
      (if r.Waco.Tuner.degraded then "unused (degraded run)" else !provenance);
    Printf.printf "prefilter: index dropped %d (lint) + %d (asym); query pruned \
                   %d candidates (asym)\n"
      !idx_lint !idx_asym r.Waco.Tuner.asym_pruned;
    Printf.printf "degraded : %s\n"
      (match r.Waco.Tuner.degraded_reason with
      | Some why -> "yes (" ^ why ^ ")"
      | None -> "no")
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MATRIX") in
  let model_file =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Reuse a cost model saved by `waco train` instead of training")
  in
  let index_file =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"FILE"
           ~doc:"Reuse an index snapshot saved with --save-index")
  in
  let save_index_file =
    Arg.(value & opt (some string) None & info [ "save-index" ] ~docv:"FILE"
           ~doc:"Snapshot the built search index for later runs")
  in
  Cmd.v (Cmd.info "tune" ~doc:"Co-optimize format+schedule for a matrix")
    Term.(
      const run $ path $ algo_arg $ kernel_arg $ machine_arg $ model_file
      $ index_file $ save_index_file $ seed_arg $ domains_arg)

(* --- collect --- *)

let collect_cmd =
  let run algo_name kernel_name machine_name out count spm append seed domains =
    let machine = machine_of machine_name in
    let algo = resolve_algo ~algo_name kernel_name in
    let rng = Rng.create seed in
    let pool = pool_of domains in
    let corpus = Gen.suite rng ~count ~max_dim:1024 ~max_nnz:80000 in
    let mats = List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus in
    let data =
      Waco.Dataset.of_matrices ?pool rng machine algo mats
        ~schedules_per_matrix:spm ~valid_fraction:0.2
    in
    if append then Waco.Dataset_io.append data ~dir:out
    else Waco.Dataset_io.save data ~dir:out;
    Printf.printf "%s %d tuples over %d matrices %s %s\n"
      (if append then "appended" else "collected")
      (Waco.Dataset.total_tuples data) count
      (if append then "onto" else "into")
      out
  in
  let out = Arg.(value & opt string "waco-data" & info [ "out" ] ~doc:"Output directory") in
  let count = Arg.(value & opt int 32 & info [ "matrices" ] ~doc:"Corpus size") in
  let spm = Arg.(value & opt int 30 & info [ "schedules" ] ~doc:"Schedules per matrix") in
  let append =
    Arg.(value & flag & info [ "append" ]
           ~doc:"Journal records onto an existing corpus (flushed per record) \
                 instead of rewriting it")
  in
  Cmd.v (Cmd.info "collect" ~doc:"Collect (matrix, schedule, runtime) tuples to disk")
    Term.(
      const run $ algo_arg $ kernel_arg $ machine_arg $ out $ count $ spm
      $ append $ seed_arg $ domains_arg)

(* --- train --- *)

let train_cmd =
  let run algo_name kernel_name machine_name out data_dir ckpt_dir ckpt_every
      resume seed domains =
    let machine = machine_of machine_name in
    let algo = resolve_algo ~algo_name kernel_name in
    if resume && ckpt_dir = None then
      invalid_arg "--resume needs --checkpoint-dir";
    let rng = Rng.create seed in
    let pool = pool_of domains in
    let data =
      match data_dir with
      | Some dir ->
          Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.2
            ~report:(fun msg -> Printf.eprintf "waco train: %s\n%!" msg)
            rng
      | None ->
          let corpus =
            Gen.suite rng ~count:(Waco.Config.scaled 32) ~max_dim:1024 ~max_nnz:80000
          in
          let mats = List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus in
          Waco.Dataset.of_matrices ?pool rng machine algo mats
            ~schedules_per_matrix:30 ~valid_fraction:0.2
    in
    let model = Waco.Costmodel.create rng algo in
    let checkpoint =
      Option.map (fun dir -> { Waco.Trainer.dir; every = ckpt_every }) ckpt_dir
    in
    let curve =
      Waco.Trainer.train ?pool ~lr:2e-3 ~log:print_endline ?checkpoint ~resume
        rng model data ~epochs:(Waco.Config.epochs ())
    in
    Waco.Costmodel.save model out;
    Printf.printf "saved model to %s (val acc %.3f)\n" out
      curve.Waco.Trainer.valid_acc.(Array.length curve.Waco.Trainer.valid_acc - 1)
  in
  let out = Arg.(value & opt string "waco.model" & info [ "out" ] ~doc:"Model path") in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data" ]
           ~doc:"Train from tuples collected with `waco collect` instead of generating")
  in
  let ckpt_dir =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Write atomic epoch checkpoints into $(docv)")
  in
  let ckpt_every =
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint every $(docv) epochs (with --checkpoint-dir)")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from the newest valid checkpoint in --checkpoint-dir \
                 (damaged checkpoints are skipped with a warning)")
  in
  Cmd.v (Cmd.info "train" ~doc:"Train and save a cost model")
    Term.(
      const run $ algo_arg $ kernel_arg $ machine_arg $ out $ data_dir
      $ ckpt_dir $ ckpt_every $ resume $ seed_arg $ domains_arg)

(* --- serve / query --- *)

let socket_arg =
  Arg.(value & opt string "waco.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path the daemon listens on")

(* `--listen`/`--connect` take the full endpoint syntax (a bare Unix-socket
   path, unix:PATH, or tcp:HOST:PORT) and override `--socket` when given,
   so every pre-TCP invocation keeps working unchanged. *)
let listen_arg =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ENDPOINT"
         ~doc:"Listen endpoint: a Unix-socket path, unix:PATH, or \
               tcp:HOST:PORT (port 0 = kernel-chosen).  Overrides --socket")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ENDPOINT"
         ~doc:"Daemon endpoint to connect to: a Unix-socket path, unix:PATH, \
               or tcp:HOST:PORT.  Overrides --socket")

let endpoint_of ~socket ~override =
  let spec = match override with Some e -> e | None -> socket in
  match Serve.Addr.parse spec with
  | Ok _ -> spec
  | Error e ->
      Printf.eprintf "waco: bad endpoint: %s\n%!" e;
      exit 2

let serve_cmd =
  let run socket listen algo_name kernel_name extra_kernels machine_name
      model_file index_file cache_file cache_capacity max_batch k ef
      max_pending supervise max_restarts pidfile seed domains =
    let socket = endpoint_of ~socket ~override:listen in
    let log msg = Printf.eprintf "waco serve: %s\n%!" msg in
    (* Everything heavy — training, index build, the worker pool's domains —
       happens inside [worker], so under --supervise it runs in the forked
       child.  The supervisor parent stays domain-free (OCaml 5 forbids
       fork after any domain spawn) and owns nothing the worker could
       corrupt. *)
    let worker () =
    let machine = machine_of machine_name in
    let algo = resolve_algo ~algo_name kernel_name in
    let rng = Rng.create seed in
    let pool = pool_of domains in
    (* Train a cost model for [algo] from a fresh synthetic corpus — the
       no---model path for the primary slot, and the only path for
       --extra-kernel slots. *)
    let fresh_model kalgo =
      let corpus = Gen.suite rng ~count:16 ~max_dim:1024 ~max_nnz:60000 in
      let mats =
        List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus
      in
      let data =
        Waco.Dataset.of_matrices ?pool rng machine kalgo mats
          ~schedules_per_matrix:24 ~valid_fraction:0.2
      in
      let model = Waco.Costmodel.create rng kalgo in
      ignore
        (Waco.Trainer.train ?pool ~lr:2e-3 rng model data
           ~epochs:(Waco.Config.epochs ()));
      (model, Waco.Dataset.all_schedules data)
    in
    match
      let model, corpus =
        match model_file with
        | Some file ->
            let model = Waco.Costmodel.create rng algo in
            Waco.Costmodel.load model file;
            (* No dataset on hand: sample an index corpus from the
               SuperSchedule space at the default dimensions. *)
            let dims = Array.make (Algorithm.sparse_rank algo) 1024 in
            (model, Array.init 256 (fun _ -> Space.sample rng algo ~dims))
        | None ->
            log ("training a fresh " ^ Algorithm.name algo
                 ^ " cost model (pass --model to reuse one)...");
            fresh_model algo
      in
      let index, index_src =
        match index_file with
        | Some file -> (Waco.Tuner.load_index rng ~algo file, file)
        | None ->
            (Waco.Tuner.build_index ?pool rng model corpus, "<built fresh>")
      in
      log (Printf.sprintf "index: %s (%d schedules)" index_src
             index.Waco.Tuner.corpus_size);
      (* Each --extra-kernel gets its own freshly trained model and index;
         reusing snapshots across kernels would defeat the conditioned head. *)
      let extra =
        List.map
          (fun kname ->
            let kalgo = Waco.Kernel.to_algo (kernel_of_cli kname) in
            log ("training a fresh " ^ Algorithm.name kalgo
                 ^ " cost model for --extra-kernel " ^ kname ^ "...");
            let emodel, ecorpus = fresh_model kalgo in
            let eindex = Waco.Tuner.build_index ?pool rng emodel ecorpus in
            (emodel, eindex, "<built fresh>"))
          extra_kernels
      in
      Serve.Server.create ?pool ~cache_capacity ?cache_file ~max_batch ~k ~ef
        ~max_pending ~log ~extra ~model ~index ~index_file:index_src ~machine
        ~socket ()
    with
    | exception Robust.Load_error err ->
        (* Unlike `waco tune`, a daemon has nothing to degrade to: without a
           usable model/index pair there is no service to run. *)
        Printf.eprintf "waco serve: %s\n%!" (Robust.load_error_to_string err);
        exit 1
    | server -> Serve.Server.run server
    in
    if supervise then begin
      let on_spawn pid =
        match pidfile with
        | Some file -> (
            try Robust.write_atomic_string file (string_of_int pid ^ "\n")
            with _ -> log "could not write pidfile")
        | None -> ()
      in
      match
        Serve.Supervisor.run ~max_restarts ~seed ~on_spawn
          ~log:(fun m -> Printf.eprintf "waco serve[supervisor]: %s\n%!" m)
          worker
      with
      | Serve.Supervisor.Clean | Serve.Supervisor.Stopped -> ()
      | Serve.Supervisor.Gave_up n ->
          Printf.eprintf
            "waco serve: worker crashed %d times in a row; giving up\n%!" n;
          exit 1
    end
    else worker ()
  in
  let model_file =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Serve a cost model saved by `waco train` instead of training")
  in
  let index_file =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"FILE"
           ~doc:"Serve an index snapshot saved with `waco tune --save-index`")
  in
  let cache_file =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
           ~doc:"Persist the schedule cache to $(docv) (write-through) and \
                 reload it on restart when its model/index/machine stamp \
                 still matches")
  in
  let cache_capacity =
    Arg.(value & opt int 512 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Entries kept in the LRU schedule cache")
  in
  let max_batch =
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Most queries answered in one micro-batch")
  in
  let k =
    Arg.(value & opt int 10 & info [ "k" ] ~doc:"Top-k candidates measured per query")
  in
  let ef =
    Arg.(value & opt int 40 & info [ "ef" ] ~doc:"HNSW traversal beam width")
  in
  let max_pending =
    Arg.(value & opt int 256 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Queued-query high-water mark; past it new queries answer \
                 busy with a retry hint instead of queueing")
  in
  let supervise =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Fork the daemon as a supervised worker and restart it on \
                 crash with exponential backoff (the persistent --cache \
                 makes restarts warm)")
  in
  let max_restarts =
    Arg.(value & opt int 10 & info [ "max-restarts" ] ~docv:"N"
           ~doc:"With --supervise: give up after $(docv) consecutive crashes")
  in
  let pidfile =
    Arg.(value & opt (some string) None & info [ "pidfile" ] ~docv:"FILE"
           ~doc:"With --supervise: write the current worker's pid to $(docv) \
                 after every (re)start")
  in
  let extra_kernels =
    Arg.(value & opt_all string [] & info [ "extra-kernel" ] ~docv:"KERNEL"
           ~doc:"Also serve $(docv) (spmv|spmm|sddmm) from its own slot: a \
                 fresh cost model and index are trained at startup and the \
                 schedule cache is namespaced per kernel.  Repeatable; \
                 queries pick a slot with kernel=, and ones naming no kernel \
                 go to the spmv slot when present")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the autotuning daemon (model + index loaded once, requests \
             over a Unix or TCP socket)")
    Term.(
      const run $ socket_arg $ listen_arg $ algo_arg $ kernel_arg
      $ extra_kernels $ machine_arg $ model_file $ index_file $ cache_file
      $ cache_capacity $ max_batch $ k $ ef $ max_pending $ supervise
      $ max_restarts $ pidfile $ seed_arg $ domains_arg)

let query_cmd =
  let run socket connect matrix kernel_name no_measure qid deadline_ms
      timeout_s retries stats ping shutdown =
    let socket = endpoint_of ~socket ~override:connect in
    (* Validate before connecting: a typo'd kernel should not cost a round
       trip (the daemon would reject it too, satellite 3). *)
    let kernel = Option.map kernel_of_cli kernel_name in
    if matrix = None && not (stats || ping || shutdown) then begin
      prerr_endline
        "waco query: nothing to do (pass MATRIX, --stats, --ping or --shutdown)";
      exit 2
    end;
    let c =
      try Serve.Client.connect socket
      with
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "waco query: cannot reach daemon at %s: %s\n%!" socket
            (Unix.error_message e);
          exit 1
      | Failure e ->
          Printf.eprintf "waco query: %s\n%!" e;
          exit 1
    in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        let failed = ref false in
        (match matrix with
        | None -> ()
        | Some path -> (
            match
              if retries > 1 then
                (* Fresh connections per attempt, qid-seeded backoff, busy
                   sheds honored — the resilient path. *)
                Serve.Client.query_with_retry ~attempts:retries ?timeout_s
                  ~measure:(not no_measure) ~deadline_ms ?kernel ~qid ~socket
                  (Serve.Protocol.Path path)
              else
                Serve.Client.query ~measure:(not no_measure) ~deadline_ms
                  ?kernel ~qid ?timeout_s c (Serve.Protocol.Path path)
            with
            | Ok (a : Serve.Protocol.answer) ->
                Printf.printf "schedule : %s\n" a.Serve.Protocol.schedule;
                Printf.printf "predicted: %.3e (log-scale model output)\n"
                  a.Serve.Protocol.predicted;
                if Float.is_finite a.Serve.Protocol.measured then
                  Printf.printf "measured : %.3e s\n" a.Serve.Protocol.measured;
                Printf.printf "cache    : %s\n"
                  (if a.Serve.Protocol.cache_hit then "hit" else "miss");
                (match a.Serve.Protocol.degraded_reason with
                | Some why -> Printf.printf "degraded : yes (%s)\n" why
                | None ->
                    if a.Serve.Protocol.degraded then
                      Printf.printf "degraded : yes\n");
                List.iter
                  (fun (name, secs) ->
                    Printf.printf "span     : %-8s %.4fs\n" name secs)
                  a.Serve.Protocol.spans
            | Error e ->
                Printf.eprintf "waco query: %s\n%!" e;
                failed := true
            | exception Failure e ->
                Printf.eprintf "waco query: %s\n%!" e;
                failed := true));
        (if stats then
           match Serve.Client.stats c with
           | Ok json -> print_endline json
           | Error e ->
               Printf.eprintf "waco query: stats: %s\n%!" e;
               failed := true);
        (if ping then
           if Serve.Client.ping c then print_endline "pong"
           else begin
             Printf.eprintf "waco query: no pong\n%!";
             failed := true
           end);
        (if shutdown then
           if Serve.Client.shutdown c then print_endline "daemon stopping"
           else begin
             Printf.eprintf "waco query: daemon refused shutdown\n%!";
             failed := true
           end);
        if !failed then exit 1)
  in
  let matrix =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"MATRIX"
           ~doc:"MatrixMarket file to tune (a path the daemon can read)")
  in
  let query_kernel =
    Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"KERNEL"
           ~doc:"Ask for a specific kernel's schedule (spmv|spmm|sddmm); the \
                 daemon must serve that kernel (--extra-kernel) or the query \
                 errors.  Omitted, the daemon answers from its spmv slot \
                 when it has one (old-client compatibility)")
  in
  let no_measure =
    Arg.(value & flag & info [ "no-measure" ]
           ~doc:"Skip the top-k simulator measurements (fast, predict-only \
                 answer)")
  in
  let qid =
    Arg.(value & opt string "cli" & info [ "qid" ] ~docv:"ID"
           ~doc:"Request label echoed in daemon traces")
  in
  let deadline_ms =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Answer budget in milliseconds; on expiry the daemon answers \
                 from its cache or the asymptotic fallback, marked degraded \
                 (0 = no deadline)")
  in
  let timeout_s =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Give up waiting for a response after $(docv) seconds")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Attempt the query up to $(docv) times with capped \
                 exponential backoff on transport failure or a busy shed \
                 (fresh connection per attempt)")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the daemon's metrics as JSON")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check") in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to persist its cache and exit")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running `waco serve` daemon or `waco \
             route` router")
    Term.(
      const run $ socket_arg $ connect_arg $ matrix $ query_kernel
      $ no_measure $ qid $ deadline_ms $ timeout_s $ retries $ stats $ ping
      $ shutdown)

(* --- route --- *)

let route_cmd =
  let run socket listen shards max_pending failover_hops =
    let listen = endpoint_of ~socket ~override:listen in
    if shards = [] then begin
      prerr_endline "waco route: pass at least one --shard ENDPOINT";
      exit 2
    end;
    List.iter
      (fun s ->
        match Serve.Addr.parse s with
        | Ok _ -> ()
        | Error e ->
            Printf.eprintf "waco route: bad shard endpoint: %s\n%!" e;
            exit 2)
      shards;
    let log msg = Printf.eprintf "waco route: %s\n%!" msg in
    match
      Serve.Router.create ~max_pending ~failover_hops ~log ~listen ~shards ()
    with
    | exception Invalid_argument e ->
        Printf.eprintf "waco route: %s\n%!" e;
        exit 2
    | router -> Serve.Router.run router
  in
  let shards =
    Arg.(value & opt_all string [] & info [ "shard" ] ~docv:"ENDPOINT"
           ~doc:"A shard daemon's endpoint (Unix-socket path, unix:PATH, or \
                 tcp:HOST:PORT).  Repeatable; each shard owns ~64 virtual \
                 points on the consistent-hash ring.  A shard down at start \
                 is redialed with backoff and joins the ring when it answers")
  in
  let max_pending =
    Arg.(value & opt int 1024 & info [ "max-pending" ] ~docv:"N"
           ~doc:"Queries awaiting a shard answer before the router sheds new \
                 ones with its own queue-depth retry hint (a shard's busy is \
                 always relayed with the shard's hint)")
  in
  let failover_hops =
    Arg.(value & opt int 1 & info [ "failover-hops" ] ~docv:"N"
           ~doc:"Additional shards a predict-only query may be retried on \
                 after a shard dies mid-query (measured queries answer an \
                 honest error instead)")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Run the consistent-hash router over N `waco serve` shard \
             daemons: queries spread by sparsity fingerprint, stats \
             aggregate across shards, dead shards fail over within bounds")
    Term.(
      const run $ socket_arg $ listen_arg $ shards $ max_pending
      $ failover_hops)

(* --- lint / explain --- *)

let algo_of_cli algo_name =
  match Algorithm.of_name algo_name with
  | Some a -> a
  | None -> invalid_arg ("unknown algorithm: " ^ algo_name)

(* "RxC"-style operand dimensions; empty means 1024 per sparse dim. *)
let dims_of_cli ~algo ~algo_name dims_text =
  let rank = Algorithm.sparse_rank algo in
  if dims_text = "" then Array.make rank 1024
  else begin
    let parts = String.split_on_char 'x' dims_text in
    let parsed =
      List.map
        (fun p ->
          match int_of_string_opt p with
          | Some v when v >= 1 -> v
          | _ -> invalid_arg ("bad --dims: " ^ dims_text))
        parts
    in
    if List.length parsed <> rank then
      invalid_arg
        (Printf.sprintf "--dims has %d components, %s needs %d"
           (List.length parsed) algo_name rank);
    Array.of_list parsed
  end

(* The asymptotic analyzer for a lint/explain invocation: workload-aware
   when a matrix is on hand, synthetic default statistics otherwise. *)
let analyzer_of_cli ~algo ~dims matrix =
  match matrix with
  | Some path ->
      let m = Mmio.read_coo path in
      Asym.Analyzer.of_workload ~algo (Machine_model.Workload.of_coo ~id:path m)
  | None -> Asym.Analyzer.create ~algo (Asym.Analyzer.default_stats ~algo ~dims ())

let lint_cmd =
  let run sched_text random_n matrix data_dir model index algo_name dims_text
      asymptotic json seed =
    let algo = algo_of_cli algo_name in
    let dims = dims_of_cli ~algo ~algo_name dims_text in
    let acc = ref [] in
    let emit ds = acc := !acc @ ds in
    (* The asymptotic pass rides along on schedule lints when requested;
       built lazily so `waco lint --matrix` alone doesn't pay for it. *)
    let analyzer = lazy (analyzer_of_cli ~algo ~dims matrix) in
    let check_schedule s =
      Analysis.Lint.check_schedule ~dims s
      @ if asymptotic then Asym.Analyzer.check (Lazy.force analyzer) s else []
    in
    (* One explicit schedule, parsed leniently so structural problems surface
       as diagnostics rather than aborting the whole run. *)
    (match sched_text with
    | None -> ()
    | Some text -> (
        match Sched_io.parse ~algo text with
        | Error e ->
            emit [ Diag.error ~code:"WACO-D006" ~loc:"--schedule" "unparseable schedule: %s" e ]
        | Ok s -> emit (check_schedule s)));
    (* Random samples from the SuperSchedule space (a smoke test of the
       sampler: legality findings here are generator bugs). *)
    (if random_n > 0 then begin
       let rng = Rng.create seed in
       for i = 0 to random_n - 1 do
         let s = Space.sample rng algo ~dims in
         emit
           (List.map
              (Diag.relocate ~prefix:(Printf.sprintf "sample[%d]" i))
              (check_schedule s))
       done
     end);
    (* Pack a matrix into the canonical formats and verify the physical
       storage invariants plus a COO round-trip. *)
    (match matrix with
    | None -> ()
    | Some path ->
        let m = Mmio.read_coo path in
        let mdims = [| m.Coo.nrows; m.Coo.ncols |] in
        let entries =
          Array.init (Coo.nnz m) (fun k ->
              ([| m.Coo.rows.(k); m.Coo.cols.(k) |], m.Coo.vals.(k)))
        in
        List.iter
          (fun (label, spec) ->
            let prefix = Printf.sprintf "%s[%s]" path label in
            match Analysis.Packed_check.pack_and_check spec entries with
            | Error ds -> emit (List.map (Diag.relocate ~prefix) ds)
            | Ok packed ->
                emit
                  (List.map (Diag.relocate ~prefix)
                     (Analysis.Packed_check.check ~reference:m packed)))
          [
            ("csr", Format_abs.Spec.csr_like ~dims:mdims);
            ("csc", Format_abs.Spec.csc ~dims:mdims);
            ("bcsr8", Format_abs.Spec.bcsr ~dims:mdims ~bi:8 ~bk:8);
            ("ucc256", Format_abs.Spec.sparse_block ~dims:mdims ~bk:256);
          ]);
    (match data_dir with None -> () | Some dir -> emit (Analysis.Dataset_check.check dir));
    (match model with None -> () | Some path -> emit (Analysis.Model_check.check path));
    (match index with
    | None -> ()
    | Some path -> emit (Analysis.Model_check.check_index path));
    (* With both artifacts on hand, also vet them as a pair (WACO-A008). *)
    (match (model, index) with
    | Some m, Some i -> emit (Analysis.Model_check.check_index_compat ~model:m ~index:i)
    | _ -> ());
    if sched_text = None && random_n = 0 && matrix = None && data_dir = None
       && model = None && index = None
    then begin
      prerr_endline
        "waco lint: nothing to lint (pass --schedule, --random, --matrix, \
         --data, --model or --index)";
      exit 2
    end;
    let ds = Diag.sort !acc in
    print_string (if json then Diag.render_json ds else Diag.render_text ds);
    exit (Diag.exit_code ds)
  in
  let sched =
    Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"Lint one schedule in the dataset encoding \
                 (algo=..;splits=..;order=..;par=..;threads=..;chunk=..;aorder=..;afmt=..)")
  in
  let random_n =
    Arg.(value & opt int 0 & info [ "random" ] ~docv:"N"
           ~doc:"Lint $(docv) random samples from the schedule space")
  in
  let matrix =
    Arg.(value & opt (some string) None & info [ "matrix" ] ~docv:"FILE"
           ~doc:"Pack a MatrixMarket file into canonical formats and verify the storage")
  in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR"
           ~doc:"Lint a dataset directory collected with `waco collect`")
  in
  let model =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Lint a trained cost model saved with `waco train`")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"FILE"
           ~doc:"Lint an index snapshot saved with `waco tune --save-index` \
                 (with --model, also checks the pair's embedding-dimension \
                 compatibility, WACO-A008)")
  in
  let dims =
    Arg.(value & opt string "" & info [ "dims" ] ~docv:"RxC"
           ~doc:"Sparse operand dimensions for schedule linting (default 1024 per dim)")
  in
  let asymptotic =
    Arg.(value & flag & info [ "asymptotic" ]
           ~doc:"Also run the symbolic asymptotic-cost pass on the linted \
                 schedules (WACO-S02x smells); workload-aware when --matrix \
                 is given, synthetic statistics otherwise")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static legality/performance analysis of schedules, formats and artifacts"
       ~man:
         [
           `S Manpage.s_description;
           `P "Runs the WACO-* diagnostic passes and prints every finding.";
           `P "Diagnostic code ranges:";
           `Pre
             "  WACO-S00x  format-spec structural legality\n\
             \  WACO-S01x  schedule legality (split bounds, order, threads)\n\
             \  WACO-S02x  asymptotic smells (with --asymptotic)\n\
             \  WACO-P00x  performance smells (heuristic, never errors)\n\
             \  WACO-F0xx  packed-storage invariants and round-trips\n\
             \  WACO-D00x  dataset directories and encodings\n\
             \  WACO-A00x  saved artifacts (model, index, compatibility)";
           `P "Exit status: 0 when clean (hints allowed), 1 with warnings \
               (WACO-P00x and warning-level WACO-S02x included), 2 with \
               errors.";
         ])
    Term.(
      const run $ sched $ random_n $ matrix $ data_dir $ model $ index
      $ algo_arg $ dims $ asymptotic $ json $ seed_arg)

(* --- explain --- *)

let explain_cmd =
  let run algo_name kernel_name sched_text matrix dims_text =
    let algo =
      match kernel_name with
      | Some kname -> Waco.Kernel.to_algo (kernel_of_cli kname)
      | None -> algo_of_cli algo_name
    in
    let dims = dims_of_cli ~algo ~algo_name dims_text in
    let az = analyzer_of_cli ~algo ~dims matrix in
    let s =
      match sched_text with
      | None -> Superschedule.fixed_default algo
      | Some text -> (
          match Sched_io.parse ~algo text with
          | Ok s -> s
          | Error e -> invalid_arg ("unparseable --schedule: " ^ e))
    in
    Printf.printf "kernel   : %s (%s)\n"
      (Waco.Kernel.name (Waco.Kernel.of_algo algo))
      (Algorithm.name algo);
    Printf.printf "schedule : %s\n" (Superschedule.describe s);
    Printf.printf "stats    : %s\n"
      (if matrix = None then "synthetic (pass --matrix for workload-aware)"
       else "workload of " ^ Option.get matrix);
    match Asym.Analyzer.explain az s with
    | exception Invalid_argument e ->
        Printf.printf "cost     : (structurally illegal: %s)\n" e;
        exit 2
    | cost_text ->
        Printf.printf "cost     : %s\n" cost_text;
        Printf.printf "baseline : %s (fixed CSR)\n"
          (Asym.Analyzer.explain az (Superschedule.fixed_default algo));
        let reading =
          match Asym.Analyzer.verdict az s with
          | Asym.Expr.Equal -> "same asymptotic class as the baseline"
          | Asym.Expr.Dominates -> "asymptotically worse than the baseline"
          | Asym.Expr.Dominated -> "asymptotically better than the baseline"
          | Asym.Expr.Incomparable -> "incomparable with the baseline"
        in
        Printf.printf "verdict  : %s (%s)\n"
          (Asym.Expr.verdict_name (Asym.Analyzer.verdict az s))
          reading;
        Printf.printf "prefilter: %s\n"
          (if Asym.Analyzer.prunes az s then
             "would prune this schedule before any model forward"
           else "keeps this schedule in the search");
        match Asym.Analyzer.check az s with
        | [] -> ()
        | smells -> print_string (Diag.render_text (Diag.sort smells))
  in
  let sched =
    Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"Schedule to explain, in the dataset encoding (default: the \
                 fixed-CSR baseline schedule)")
  in
  let matrix =
    Arg.(value & opt (some string) None & info [ "matrix" ] ~docv:"FILE"
           ~doc:"Derive the workload statistics (dimension sizes, nnz, fill \
                 fractions) from this MatrixMarket file")
  in
  let dims =
    Arg.(value & opt string "" & info [ "dims" ] ~docv:"RxC"
           ~doc:"Operand dimensions for the synthetic statistics (default \
                 1024 per dim; ignored with --matrix)")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Print a schedule's symbolic asymptotic cost and its verdict \
             against the fixed-CSR baseline"
       ~man:
         [
           `S Manpage.s_description;
           `P "Renders the normalized asymptotic cost expression the static \
               pre-filter assigns to a schedule — e.g. $(b,nnz*J + Ni) for \
               the CSR SpMM baseline — compares it with the fixed-CSR \
               baseline under the dominance order, and lists any WACO-S02x \
               asymptotic smells.";
           `P "Exit status: 0 on success, 2 for a structurally illegal \
               schedule (lint it first).";
         ])
    Term.(const run $ algo_arg $ kernel_arg $ sched $ matrix $ dims)

let main =
  Cmd.group (Cmd.info "waco" ~version:"1.0" ~doc:"WACO reproduction toolkit")
    [
      gen_cmd; inspect_cmd; tune_cmd; collect_cmd; train_cmd; serve_cmd;
      query_cmd; route_cmd; lint_cmd; explain_cmd;
    ]

let () = exit (Cmd.eval main)
