(* Inference-VM safety net (the @vm alias): compiled plans must be bitwise
   equal to the eager layers on every served kernel, allocate nothing in
   steady state, and leave the training path untouched (DESIGN.md §14). *)

open Sptensor

let rng () = Rng.create 20230325

(* Every kernel the serving daemon conditions on, with sampling dims of the
   matching sparse rank. *)
let kernels =
  [
    ("spmv", Schedule.Algorithm.Spmv, [| 96; 96 |]);
    ("spmm", Schedule.Algorithm.Spmm 8, [| 96; 96 |]);
    ("sddmm", Schedule.Algorithm.Sddmm 8, [| 96; 96 |]);
    ("mttkrp", Schedule.Algorithm.Mttkrp 8, [| 48; 48; 48 |]);
  ]

let batches = [ 1; 7; 32 ]

let check_bits what (want : float array) (got : float array) =
  if Array.length want <> Array.length got then
    Alcotest.failf "%s: length %d vs %d" what (Array.length want)
      (Array.length got);
  Array.iteri
    (fun i w ->
      if Int64.bits_of_float w <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: element %d: eager %h vs vm %h" what i w got.(i))
    want

(* --- extractor: forward_batch vs one eager forward per input --- *)

let extractor_inputs r ~count ~tag =
  Array.init count (fun i ->
      let m =
        if i mod 2 = 0 then
          Gen.uniform r ~nrows:96 ~ncols:96 ~nnz:(300 + (i * 13))
        else Gen.rmat r ~nnz:(250 + (i * 11)) ~nrows:128 ~ncols:128
      in
      Waco.Extractor.input_of_coo ~id:(Printf.sprintf "%s%d" tag i) m)

let check_extractor_kind kind =
  let r = rng () in
  let e = Waco.Extractor.create r kind in
  let cp = Waco.Extractor.compile e in
  let name = Waco.Extractor.kind_name kind in
  let inputs = extractor_inputs r ~count:32 ~tag:name in
  let fd = e.Waco.Extractor.out_dim in
  let eager = Array.map (fun i -> Array.copy (Waco.Extractor.forward e i)) inputs in
  List.iter
    (fun batch ->
      let out = Waco.Extractor.forward_batch cp (Array.sub inputs 0 batch) in
      for n = 0 to batch - 1 do
        check_bits
          (Printf.sprintf "%s batch=%d row %d" name batch n)
          eager.(n)
          (Array.sub out (n * fd) fd)
      done)
    batches

let test_extractor_batch_parity () =
  List.iter check_extractor_kind
    [
      Waco.Extractor.Waconet;
      Waco.Extractor.Human;
      Waco.Extractor.Minkowski;
      Waco.Extractor.Dense_conv;
    ]

(* --- embedder: forward_compiled vs eager forward, per kernel --- *)

let test_embedder_parity () =
  List.iter
    (fun (name, algo, dims) ->
      let r = rng () in
      let model = Waco.Costmodel.create (Rng.create 77) algo in
      let emb = model.Waco.Costmodel.embedder in
      let cp = Waco.Embedder.compile emb in
      let ed = Waco.Embedder.out_dim emb in
      let scheds = Array.init 32 (fun _ -> Schedule.Space.sample r algo ~dims) in
      List.iter
        (fun batch ->
          let sub = Array.sub scheds 0 batch in
          let eager = Array.sub (Waco.Embedder.forward emb sub) 0 (batch * ed) in
          let vm = Array.sub (Waco.Embedder.forward_compiled cp sub) 0 (batch * ed) in
          check_bits (Printf.sprintf "embedder %s batch=%d" name batch) eager vm)
        batches)
    kernels

(* --- full predict path vs hand-built eager layers, per kernel --- *)

let check_predict_parity ~what model input scheds =
  let kernel = Waco.Costmodel.kernel_of model in
  let ext = model.Waco.Costmodel.extractor in
  let emb = model.Waco.Costmodel.embedder in
  let ed = Waco.Embedder.out_dim emb in
  List.iter
    (fun batch ->
      let sub = Array.sub scheds 0 batch in
      let feature = Array.copy (Waco.Extractor.forward ext input) in
      let embs = Array.sub (Waco.Embedder.forward emb sub) 0 (batch * ed) in
      let rows = Waco.Costmodel.rows_of ~kernel ~feature ~embs ~batch in
      let eager =
        Array.sub
          (Nn.Mlp.forward model.Waco.Costmodel.predictor ~batch rows)
          0 batch
      in
      let vm = Waco.Costmodel.predict model input sub in
      check_bits (Printf.sprintf "%s batch=%d" what batch) eager vm)
    batches

let test_predict_parity () =
  List.iter
    (fun (name, algo, dims) ->
      let r = rng () in
      let model = Waco.Costmodel.create (Rng.create 77) algo in
      let m = Gen.uniform r ~nrows:96 ~ncols:96 ~nnz:600 in
      let input = Waco.Extractor.input_of_coo ~id:("p_" ^ name) m in
      let scheds = Array.init 32 (fun _ -> Schedule.Space.sample r algo ~dims) in
      check_predict_parity ~what:("predict " ^ name) model input scheds)
    kernels

(* Trained weights: the plan shares parameter arrays with the eager layers,
   so in-place optimizer updates must stay visible.  Recipe mirrors
   test_perf's golden run. *)
let test_trained_predict_parity () =
  let machine = Machine_model.Machine.intel_like in
  let algo = Schedule.Algorithm.Spmm 8 in
  let trng = Rng.create 4242 in
  let mats =
    Gen.suite trng ~count:4 ~max_dim:96 ~max_nnz:2000
    |> List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix))
  in
  let data =
    Waco.Dataset.of_matrices trng machine algo mats ~schedules_per_matrix:6
      ~valid_fraction:0.25
  in
  let model = Waco.Costmodel.create (Rng.create 77) algo in
  let _curve = Waco.Trainer.train trng model data ~epochs:2 in
  Waco.Costmodel.clear_feature_cache model;
  let r = rng () in
  let m = Gen.uniform r ~nrows:96 ~ncols:96 ~nnz:600 in
  let input = Waco.Extractor.input_of_coo ~id:"trained" m in
  let scheds =
    Array.init 32 (fun _ -> Schedule.Space.sample r algo ~dims:[| 96; 96 |])
  in
  check_predict_parity ~what:"trained predict" model input scheds

(* --- steady-state allocation budgets --- *)

(* A pure-GEMM plan (the predictor-tail shape) must allocate nothing at all
   once warm: the tape, views and arena are fixed, and forward_into writes
   in place. *)
let test_run_batch_zero_alloc () =
  let r = rng () in
  let m = Nn.Mlp.create r ~name:"vmz" ~dims:[| 24; 32; 16 |] ~final_relu:false in
  let b = Vm.Plan.builder () in
  let ib = Vm.Plan.fresh b in
  let ob = Vm.Plan.fresh b in
  let dst = { Vm.Plan.buf = ob; off = 0; stride = 16 } in
  Vm.Plan.mlp b m ~src:{ Vm.Plan.buf = ib; off = 0; stride = 24 } ~dst;
  let plan = Vm.Plan.finish b ~nlayers:0 ~out:dst in
  let batch = 32 in
  let buf = Vm.Plan.buffer plan ib ~len:(batch * 24) in
  for i = 0 to (batch * 24) - 1 do
    buf.(i) <- Rng.float_in r (-1.0) 1.0
  done;
  for _ = 1 to 3 do
    ignore (Vm.Plan.run_batch plan ~batch)
  done;
  let iters = 20 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (Vm.Plan.run_batch plan ~batch)
  done;
  let per_iter = (Gc.allocated_bytes () -. a0) /. float_of_int iters in
  if per_iter > 64.0 then
    Alcotest.failf "run_batch allocates %.0f B/call (budget 64)" per_iter

(* A warm extractor batch (pyramids cached per id) may pay only small
   per-item lookup costs — nothing proportional to sites or pairs.  The old
   per-forward path allocated hundreds of KB on this shape. *)
let test_forward_batch_alloc_budget () =
  let r = rng () in
  let e = Waco.Extractor.create r Waco.Extractor.Waconet in
  let cp = Waco.Extractor.compile e in
  let inputs = extractor_inputs r ~count:32 ~tag:"ab" in
  for _ = 1 to 3 do
    ignore (Waco.Extractor.forward_batch cp inputs)
  done;
  let iters = 20 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (Waco.Extractor.forward_batch cp inputs)
  done;
  let per_iter = (Gc.allocated_bytes () -. a0) /. float_of_int iters in
  if per_iter > 4096.0 then
    Alcotest.failf "forward_batch allocates %.0f B/call (budget 4096)" per_iter

(* --- training untouched: gradcheck with compiled forwards interleaved ---

   Plan execution borrows arena buffers, never the eager layers' scratch, so
   running the compiled predict path between a training forward and its
   backward must not disturb gradients. *)

let gradcheck ~loss_of ~params ~entries_per_param ~tolerance =
  let eps = 1e-6 in
  let bad = ref [] in
  List.iter
    (fun (p : Nn.Param.t) ->
      let n = Nn.Param.size p in
      for t = 0 to min (entries_per_param - 1) (n - 1) do
        let idx = t * 7919 mod n in
        let orig = p.Nn.Param.data.(idx) in
        p.Nn.Param.data.(idx) <- orig +. eps;
        let lp = loss_of () in
        p.Nn.Param.data.(idx) <- orig -. eps;
        let lm = loss_of () in
        p.Nn.Param.data.(idx) <- orig;
        let fd = (lp -. lm) /. (2.0 *. eps) in
        let an = p.Nn.Param.grad.(idx) in
        let rel =
          Float.abs (fd -. an)
          /. Float.max 1e-4 (Float.max (Float.abs fd) (Float.abs an))
        in
        if rel > tolerance then bad := (p.Nn.Param.name, idx, fd, an) :: !bad
      done)
    params;
  !bad

let test_gradcheck_with_vm_interleaved () =
  let r = rng () in
  let algo = Schedule.Algorithm.Spmm 8 in
  let model = Waco.Costmodel.create (Rng.create 77) algo in
  let m = Gen.uniform r ~nrows:32 ~ncols:32 ~nnz:80 in
  let input = Waco.Extractor.input_of_coo ~id:"g" m in
  let scheds =
    Array.init 3 (fun _ -> Schedule.Space.sample r algo ~dims:[| 32; 32 |])
  in
  let params = Waco.Costmodel.params model in
  let loss_of () =
    ignore (Waco.Costmodel.predict model input scheds);
    let preds, _bw = Waco.Costmodel.forward_train model input scheds in
    Array.fold_left (fun a p -> a +. (0.5 *. p *. p)) 0.0 preds
  in
  List.iter
    (fun (p : Nn.Param.t) ->
      Array.fill p.Nn.Param.grad 0 (Nn.Param.size p) 0.0)
    params;
  let preds, bw = Waco.Costmodel.forward_train model input scheds in
  let dpreds = Array.copy preds in
  ignore (Waco.Costmodel.predict model input scheds);
  bw dpreds;
  ignore (Waco.Costmodel.predict model input scheds);
  let bad = gradcheck ~loss_of ~params ~entries_per_param:2 ~tolerance:1e-3 in
  List.iter
    (fun (name, idx, fd, an) ->
      Printf.printf "bad grad %s[%d]: fd %.8g vs an %.8g\n" name idx fd an)
    bad;
  Alcotest.(check int) "no bad grads with vm interleaved" 0 (List.length bad)

let () =
  Alcotest.run "vm"
    [
      ( "bitwise parity",
        [
          Alcotest.test_case "extractor forward_batch" `Quick
            test_extractor_batch_parity;
          Alcotest.test_case "embedder forward_compiled" `Quick
            test_embedder_parity;
          Alcotest.test_case "costmodel predict" `Quick test_predict_parity;
          Alcotest.test_case "trained costmodel predict" `Slow
            test_trained_predict_parity;
        ] );
      ( "allocation budget",
        [
          Alcotest.test_case "run_batch pure gemm" `Quick
            test_run_batch_zero_alloc;
          Alcotest.test_case "extractor forward_batch warm" `Quick
            test_forward_batch_alloc_budget;
        ] );
      ( "training untouched",
        [
          Alcotest.test_case "gradcheck with compiled forwards" `Slow
            test_gradcheck_with_vm_interleaved;
        ] );
    ]
