(* Prints the MD5 digest of the model artifact produced by a short, fully
   seeded training run.  The value is pinned as [golden_digest] in
   test/test_perf.ml: any change to the float-op order anywhere in the
   extractor/embedder/predictor stack (layouts, scratch buffers, kernel-map
   iteration order) shows up as a digest change there.  Rerun this program to
   recompute the constant after an *intentional* numerics change. *)

open Sptensor

let () =
  let machine = Machine_model.Machine.intel_like in
  let algo = Schedule.Algorithm.Spmm 8 in
  let rng = Rng.create 4242 in
  let mats =
    Gen.suite rng ~count:4 ~max_dim:96 ~max_nnz:2000
    |> List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix))
  in
  let data =
    Waco.Dataset.of_matrices rng machine algo mats ~schedules_per_matrix:6
      ~valid_fraction:0.25
  in
  let model = Waco.Costmodel.create (Rng.create 77) algo in
  let _curve = Waco.Trainer.train rng model data ~epochs:2 in
  print_endline (Digest.to_hex (Digest.string (Waco.Costmodel.dump_params model)))
