(* Tests for the diagnostics engine and the static analysis passes: one
   known-good and known-bad case per diagnostic code, a randomized packed
   round-trip over the generator families, and the search pre-filter
   contracts. *)

open Sptensor
open Format_abs
open Schedule

let u = Levelfmt.U and c = Levelfmt.C

let codes ds = List.sort compare (List.map Diag.code ds)

let check_codes what expected ds =
  Alcotest.(check (list string)) what (List.sort compare expected) (codes ds)

let spmm = Algorithm.Spmm 256

let good () = Superschedule.fixed_default spmm

let dims = [| 64; 64 |]

(* --- engine --- *)

let test_diag_engine () =
  let e = Diag.error ~code:"WACO-X001" ~loc:"a" "boom %d" 7 in
  let w = Diag.warning ~code:"WACO-X002" ~loc:"b" "meh" in
  let h = Diag.hint ~code:"WACO-X003" ~loc:"c" "fyi" in
  Alcotest.(check string) "message formatted" "boom 7" (Diag.message e);
  Alcotest.(check bool) "is_error" true (Diag.is_error e);
  Alcotest.(check int) "exit clean" 0 (Diag.exit_code []);
  Alcotest.(check int) "exit hints" 0 (Diag.exit_code [ h ]);
  Alcotest.(check int) "exit warnings" 1 (Diag.exit_code [ h; w ]);
  Alcotest.(check int) "exit errors" 2 (Diag.exit_code [ h; w; e ]);
  (match Diag.first_error [ h; w; e ] with
  | Some d -> Alcotest.(check string) "first_error" "WACO-X001" (Diag.code d)
  | None -> Alcotest.fail "expected an error");
  (* sort puts errors first *)
  (match Diag.sort [ h; w; e ] with
  | first :: _ -> Alcotest.(check bool) "errors sort first" true (Diag.is_error first)
  | [] -> Alcotest.fail "sort dropped diagnostics");
  let r = Diag.relocate ~prefix:"file:3" w in
  Alcotest.(check string) "relocate prefixes loc" "file:3:b" (Diag.loc r)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_diag_render () =
  let ds =
    [
      Diag.error ~code:"WACO-X001" ~loc:"spot" "it \"broke\"";
      Diag.warning ~code:"WACO-X002" ~loc:"spot" "meh";
    ]
  in
  let text = Diag.render_text ds in
  Alcotest.(check bool) "text has code" true (contains text "WACO-X001");
  Alcotest.(check bool) "text has summary" true (contains text "1 error(s), 1 warning(s)");
  let json = Diag.render_json ds in
  Alcotest.(check bool) "json has exit code" true (contains json "\"exit_code\":2");
  Alcotest.(check bool) "json has code" true (contains json "\"code\":\"WACO-X002\"");
  Alcotest.(check bool) "json escapes quotes" true (contains json "it \\\"broke\\\"");
  Alcotest.(check string) "empty render" "no diagnostics\n" (Diag.render_text [])

(* --- Spec legality (WACO-S00x) --- *)

let test_spec_codes () =
  let base = Spec.csr_like ~dims:[| 8; 8 |] in
  check_codes "clean spec" [] (Spec.check base);
  check_codes "splits length" [ "WACO-S001" ]
    (Spec.check { base with Spec.splits = [| 1 |] });
  check_codes "split < 1" [ "WACO-S002" ]
    (Spec.check { base with Spec.splits = [| 1; 0 |] });
  check_codes "dim < 1" [ "WACO-S003" ] (Spec.check { base with Spec.dims = [| 8; 0 |] });
  check_codes "bad order" [ "WACO-S004" ]
    (Spec.check { base with Spec.order = [| 0; 0; 2; 3 |] });
  check_codes "formats length" [ "WACO-S005" ]
    (Spec.check { base with Spec.formats = [| u; c |] })

let test_spec_validate_delegates () =
  Alcotest.check_raises "legacy exception text"
    (Invalid_argument "Spec: order is not a permutation of the derived variables")
    (fun () ->
      ignore
        (Spec.make ~dims:[| 4; 4 |] ~splits:[| 1; 1 |] ~order:[| 0; 1; 2; 2 |]
           ~formats:[| u; c; u; u |]))

let test_permutation_error_detail () =
  (match Spec.permutation_error ~n:4 [| 0; 1; 2 |] with
  | Some why -> Alcotest.(check bool) "length detail" true (contains why "length 3")
  | None -> Alcotest.fail "short array accepted");
  (match Spec.permutation_error ~n:4 [| 0; 1; 2; 9 |] with
  | Some _ -> ()
  | None -> Alcotest.fail "out-of-range accepted");
  Alcotest.(check (option string)) "identity ok" None
    (Spec.permutation_error ~n:4 [| 3; 2; 1; 0 |])

(* --- Superschedule legality (WACO-S01x) --- *)

let test_superschedule_codes () =
  let g = good () in
  check_codes "clean schedule" [] (Superschedule.check g);
  check_codes "splits rank" [ "WACO-S010" ]
    (Superschedule.check { g with Superschedule.splits = [| 1 |] });
  check_codes "split < 1" [ "WACO-S011" ]
    (Superschedule.check { g with Superschedule.splits = [| 1; 0 |] });
  check_codes "compute_order" [ "WACO-S012" ]
    (Superschedule.check { g with Superschedule.compute_order = [| 0; 0; 2; 3 |] });
  check_codes "a_order" [ "WACO-S013" ]
    (Superschedule.check { g with Superschedule.a_order = [| 1; 2; 3; 4 |] });
  check_codes "a_formats" [ "WACO-S014" ]
    (Superschedule.check { g with Superschedule.a_formats = [| u; c |] });
  check_codes "par out of range" [ "WACO-S015" ]
    (Superschedule.check { g with Superschedule.par_var = 9 });
  check_codes "par not parallelizable" [ "WACO-S016" ]
    (Superschedule.check { g with Superschedule.par_var = 2 });
  check_codes "chunk" [ "WACO-S017" ]
    (Superschedule.check { g with Superschedule.chunk = 0 });
  (* several problems accumulate in one pass *)
  check_codes "accumulation" [ "WACO-S011"; "WACO-S012"; "WACO-S017" ]
    (Superschedule.check
       {
         g with
         Superschedule.splits = [| 0; 1 |];
         compute_order = [| 3; 3; 3; 3 |];
         chunk = -1;
       })

let test_superschedule_validate_legacy () =
  Alcotest.check_raises "legacy par message"
    (Invalid_argument "Superschedule: par_var not parallelizable for this algorithm")
    (fun () -> Superschedule.validate { (good ()) with Superschedule.par_var = 2 })

(* --- performance smells (WACO-P00x) --- *)

let perf s = Analysis.Perf_check.check ~dims s

let test_perf_discordant () =
  (* swap the two significant loops: the compressed k1 level is iterated
     discordantly *)
  let s = { (good ()) with Superschedule.compute_order = [| 2; 0; 1; 3 |] } in
  let ds = perf s in
  Alcotest.(check bool) "P001 fires" true (List.mem "WACO-P001" (codes ds));
  Alcotest.(check bool) "P006 fires (par under compressed)" true
    (List.mem "WACO-P006" (codes ds));
  check_codes "concordant default clean" [] (perf (good ()))

let test_perf_split_exceeds_dim () =
  let s = { (good ()) with Superschedule.splits = [| 128; 1 |] } in
  let cs = codes (perf s) in
  Alcotest.(check bool) "P002 fires" true (List.mem "WACO-P002" cs);
  Alcotest.(check bool) "P003 clamp hint fires" true (List.mem "WACO-P003" cs)

let test_perf_dead_level () =
  (* i0 has extent 1 (no split) but is ordered outermost *)
  let s =
    { (good ()) with Superschedule.a_order = [| 1; 0; 2; 3 |];
                     compute_order = [| 1; 0; 2; 3 |] }
  in
  Alcotest.(check bool) "P004 fires" true (List.mem "WACO-P004" (codes (perf s)))

let test_perf_compressed_singleton () =
  let s = { (good ()) with Superschedule.a_formats = [| u; c; c; u |] } in
  Alcotest.(check bool) "P005 fires" true (List.mem "WACO-P005" (codes (perf s)))

let test_perf_chunk_oversized () =
  let s = { (good ()) with Superschedule.chunk = 1024 } in
  Alcotest.(check bool) "P007 fires" true (List.mem "WACO-P007" (codes (perf s)))

let test_perf_survives_illegal_fields () =
  (* the acceptance scenario: broken compute_order AND chunk AND a
     discordance must all surface in a single run *)
  let s =
    {
      (good ()) with
      Superschedule.compute_order = [| 0; 0; 2; 3 |];
      chunk = 0;
    }
  in
  let ds = Analysis.Lint.check_schedule ~dims s in
  let cs = codes ds in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " reported") true (List.mem code cs))
    [ "WACO-S012"; "WACO-S017"; "WACO-P001" ];
  Alcotest.(check int) "exit code 2" 2 (Diag.exit_code ds)

(* --- packed verifier (WACO-F0xx) --- *)

let small_matrix () =
  Coo.of_triplets ~nrows:4 ~ncols:6
    [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 5, 4.0); (3, 0, 5.0); (3, 3, 6.0) ]

let pack_ok spec m =
  match Packed.of_coo spec m with Ok p -> p | Error e -> Alcotest.fail e

let test_packed_clean () =
  let m = small_matrix () in
  List.iter
    (fun spec ->
      check_codes (Spec.name spec ^ " clean") []
        (Analysis.Packed_check.check ~reference:m (pack_ok spec m)))
    [
      Spec.csr_like ~dims:[| 4; 6 |];
      Spec.csc ~dims:[| 4; 6 |];
      Spec.bcsr ~dims:[| 4; 6 |] ~bi:2 ~bk:2;
    ]

let test_packed_corruptions () =
  let m = small_matrix () in
  let fresh () = pack_ok (Spec.csr_like ~dims:[| 4; 6 |]) m in
  let expect code mutate =
    let p = mutate (fresh ()) in
    let cs = codes (Analysis.Packed_check.check ~reference:m p) in
    Alcotest.(check bool) (code ^ " detected") true (List.mem code cs)
  in
  expect "WACO-F001" (fun p ->
      { p with Packed.levels = [| Packed.Dense 4; Packed.Dense 6 |] });
  expect "WACO-F002" (fun p ->
      { p with Packed.levels = (let l = Array.copy p.Packed.levels in
                                l.(0) <- Packed.Dense 3; l) });
  let mutate_c f p =
    let l = Array.copy p.Packed.levels in
    (match l.(1) with
    | Packed.Compressed { pos; crd } ->
        l.(1) <- f (Array.copy pos) (Array.copy crd)
    | Packed.Dense _ -> Alcotest.fail "csr level 1 should be compressed");
    { p with Packed.levels = l }
  in
  expect "WACO-F003" (mutate_c (fun pos crd ->
      Packed.Compressed { pos = Array.sub pos 0 (Array.length pos - 1); crd }));
  expect "WACO-F004" (mutate_c (fun pos crd -> pos.(0) <- 1;
      Packed.Compressed { pos; crd }));
  expect "WACO-F005" (mutate_c (fun pos crd -> pos.(2) <- pos.(1) - 1;
      Packed.Compressed { pos; crd }));
  expect "WACO-F006" (mutate_c (fun pos crd ->
      Packed.Compressed { pos; crd = Array.append crd [| 0 |] }));
  expect "WACO-F007" (mutate_c (fun pos crd -> crd.(0) <- 6;
      Packed.Compressed { pos; crd }));
  expect "WACO-F008" (mutate_c (fun pos crd -> crd.(1) <- crd.(0);
      Packed.Compressed { pos; crd }));
  expect "WACO-F009" (fun p ->
      { p with Packed.vals = Array.append p.Packed.vals [| 0.0 |] });
  expect "WACO-F010" (fun p ->
      let v = Array.copy p.Packed.vals in
      v.(0) <- Float.nan;
      { p with Packed.vals = v });
  (* a silently flipped value survives the structural checks but fails the
     reference round-trip *)
  expect "WACO-F011" (fun p ->
      let v = Array.copy p.Packed.vals in
      v.(0) <- v.(0) +. 1.0;
      { p with Packed.vals = v })

let test_pack_and_check_codes () =
  let spec = Spec.csr_like ~dims:[| 4; 6 |] in
  (match
     Analysis.Packed_check.pack_and_check spec
       [| ([| 0; 0 |], 1.0); ([| 0; 0 |], 2.0) |]
   with
  | Ok _ -> Alcotest.fail "duplicates accepted"
  | Error ds -> check_codes "duplicates -> F013" [ "WACO-F013" ] ds);
  (match
     Analysis.Packed_check.pack_and_check ~budget:2 spec [| ([| 0; 0 |], 1.0) |]
   with
  | Ok _ -> Alcotest.fail "budget ignored"
  | Error ds ->
      check_codes "budget -> F014" [ "WACO-F014" ] ds;
      Alcotest.(check int) "budget overflow is only a warning" 1 (Diag.exit_code ds))

let test_packed_random_roundtrip () =
  let rng = Rng.create 2024 in
  List.iter
    (fun fam ->
      let m = Gen.generate rng fam ~nrows:48 ~ncols:40 ~nnz:300 in
      let mdims = [| m.Coo.nrows; m.Coo.ncols |] in
      List.iter
        (fun spec ->
          match Packed.of_coo spec m with
          | Error e -> Alcotest.fail e
          | Ok p ->
              let ds =
                List.filter Diag.is_error (Analysis.Packed_check.check ~reference:m p)
              in
              check_codes "random family round-trips" [] ds)
        [
          Spec.csr_like ~dims:mdims;
          Spec.csc ~dims:mdims;
          Spec.bcsr ~dims:mdims ~bi:4 ~bk:8;
          Spec.sparse_block ~dims:mdims ~bk:16;
        ])
    [ Gen.Uniform; Gen.Power_law 1.4; Gen.Banded 6; Gen.Block_dense 4; Gen.Rmat;
      Gen.Stencil2d; Gen.Clustered 8 ]

(* --- artifact passes (WACO-A00x / WACO-D00x) --- *)

let write_file path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_model_check () =
  let path = Filename.temp_file "waco_model" ".txt" in
  write_file path [ "w 2"; "0.5"; "-1.25"; "b 1"; "0.0" ];
  check_codes "clean model (all-zero bias warns)" [ "WACO-A004" ]
    (Analysis.Model_check.check path);
  write_file path
    [ "w 2"; "0.5"; "inf"; "w 1"; "1.0"; "zeros 2"; "0"; "0"; "trunc 5"; "1.0" ];
  check_codes "bad model"
    [ "WACO-A002"; "WACO-A003"; "WACO-A004"; "WACO-A005" ]
    (Analysis.Model_check.check path);
  write_file path [ "not a header at all" ];
  check_codes "malformed header" [ "WACO-A001" ] (Analysis.Model_check.check path);
  Sys.remove path;
  (match Analysis.Model_check.check path with
  | [ d ] -> Alcotest.(check string) "missing file" "WACO-A001" (Diag.code d)
  | _ -> Alcotest.fail "missing file should be one diagnostic")

let good_tuple = "algo=SpMM;splits=1,1;order=0,2,1,3;par=0;threads=full;chunk=4;aorder=0,2,1,3;afmt=UCUU"

let test_dataset_check () =
  let dir = Filename.temp_file "waco_ds" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let m = small_matrix () in
  Mmio.write_coo (Filename.concat dir "m0.mtx") m;
  write_file (Filename.concat dir "tuples.txt")
    [
      "# WACO dataset: algo=SpMM machine=intel";
      "MATRIX m0 m0.mtx";
      "TUPLE m0 -3.5 " ^ good_tuple;
      "TUPLE m0 -3.5 " ^ good_tuple;
      "TUPLE m0 nan " ^ good_tuple;
      "TUPLE m0 -2.0 algo=SpMM;splits=1,1";
      "TUPLE m1 -2.0 " ^ good_tuple;
      "TUPLE m0 -2.0 algo=SpMM;splits=1,1;order=0,2,1,3;par=0;threads=full;chunk=0;aorder=0,2,1,3;afmt=UCUU";
      "MATRIX m2 missing.mtx";
      "junk";
    ];
  let ds = Analysis.Dataset_check.check dir in
  let cs = codes ds in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " reported") true (List.mem code cs))
    [
      "WACO-D003"; "WACO-D005"; "WACO-D006"; "WACO-D007"; "WACO-D008";
      "WACO-D009"; "WACO-S017";
    ];
  (* the relocated legality finding is anchored to its line *)
  (match List.find_opt (fun d -> Diag.code d = "WACO-S017") ds with
  | Some d -> Alcotest.(check bool) "anchored to tuples.txt line" true
                (contains (Diag.loc d) "tuples.txt:8")
  | None -> Alcotest.fail "S017 missing");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_dataset_check_missing_dir () =
  match Analysis.Dataset_check.check "/nonexistent/nowhere" with
  | [ d ] -> Alcotest.(check string) "missing dataset" "WACO-D001" (Diag.code d)
  | _ -> Alcotest.fail "missing dataset should be one diagnostic"

(* --- search pre-filter --- *)

let test_prefilter_blackbox () =
  let evals = ref 0 in
  let be =
    Blackbox.Blackbox_common.make_eval ~prefilter:Analysis.Lint.accepts (fun _ ->
        incr evals;
        1.0)
  in
  let bad = { (good ()) with Superschedule.chunk = 0 } in
  let cost = Blackbox.Blackbox_common.run_eval be bad in
  Alcotest.(check bool) "rejected scores infinity" true (cost = infinity);
  Alcotest.(check int) "cost model never called" 0 !evals;
  Alcotest.(check int) "rejection counted" 1 be.Blackbox.Blackbox_common.rejected;
  let ok_cost = Blackbox.Blackbox_common.run_eval be (good ()) in
  Alcotest.(check (float 0.0)) "legal point evaluated" 1.0 ok_cost;
  Alcotest.(check int) "one real eval" 1 !evals

let test_prefilter_strategies () =
  (* with the pre-filter on by default, a strategy never feeds an illegal
     schedule to the evaluation *)
  let rng = Rng.create 11 in
  let eval s =
    Superschedule.validate s;
    float_of_int s.Superschedule.chunk
  in
  let r = Blackbox.Strategies.random_search rng spmm ~dims ~eval ~budget:50 in
  Alcotest.(check int) "sampler emits only legal points" 0
    r.Blackbox.Blackbox_common.rejected

let test_prefilter_tuner () =
  let rng = Rng.create 5 in
  let model = Waco.Costmodel.create rng spmm in
  let corpus =
    [|
      good ();
      { (good ()) with Superschedule.chunk = 0 };
      { (good ()) with Superschedule.splits = [| 2; 2 |] };
      { (good ()) with Superschedule.par_var = 2 };
    |]
  in
  let index = Waco.Tuner.build_index rng model corpus in
  Alcotest.(check int) "illegal corpus points dropped" 2
    index.Waco.Tuner.lint_rejected;
  Alcotest.(check int) "index holds the survivors" 2 index.Waco.Tuner.corpus_size;
  let off = Waco.Tuner.build_index ~lint:false rng model corpus in
  Alcotest.(check int) "opt-out keeps everything" 4 off.Waco.Tuner.corpus_size

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "engine" `Quick test_diag_engine;
          Alcotest.test_case "render" `Quick test_diag_render;
        ] );
      ( "legality",
        [
          Alcotest.test_case "spec codes" `Quick test_spec_codes;
          Alcotest.test_case "spec validate delegates" `Quick
            test_spec_validate_delegates;
          Alcotest.test_case "permutation detail" `Quick test_permutation_error_detail;
          Alcotest.test_case "superschedule codes" `Quick test_superschedule_codes;
          Alcotest.test_case "legacy exception text" `Quick
            test_superschedule_validate_legacy;
        ] );
      ( "perf",
        [
          Alcotest.test_case "discordant" `Quick test_perf_discordant;
          Alcotest.test_case "split exceeds dim" `Quick test_perf_split_exceeds_dim;
          Alcotest.test_case "dead level" `Quick test_perf_dead_level;
          Alcotest.test_case "compressed singleton" `Quick
            test_perf_compressed_singleton;
          Alcotest.test_case "oversized chunk" `Quick test_perf_chunk_oversized;
          Alcotest.test_case "one run reports everything" `Quick
            test_perf_survives_illegal_fields;
        ] );
      ( "packed",
        [
          Alcotest.test_case "clean formats" `Quick test_packed_clean;
          Alcotest.test_case "corruptions" `Quick test_packed_corruptions;
          Alcotest.test_case "pack_and_check" `Quick test_pack_and_check_codes;
          Alcotest.test_case "random round-trip" `Quick test_packed_random_roundtrip;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "model" `Quick test_model_check;
          Alcotest.test_case "dataset" `Quick test_dataset_check;
          Alcotest.test_case "missing dataset" `Quick test_dataset_check_missing_dir;
        ] );
      ( "prefilter",
        [
          Alcotest.test_case "budgeted eval" `Quick test_prefilter_blackbox;
          Alcotest.test_case "strategies" `Quick test_prefilter_strategies;
          Alcotest.test_case "tuner index" `Quick test_prefilter_tuner;
        ] );
    ]
