(* Tests for the symbolic asymptotic-cost analyzer: order-theoretic
   properties of the dominance relation on randomized expressions, numeric
   soundness of the monomial order, golden cost expressions for the four
   kernels, agreement between the pre-filter and the cost simulator, and
   the tuner wiring (prune counters, snapshot compatibility, unchanged
   answers). *)

open Sptensor
open Schedule
open Machine_model

let algo_named name =
  match Algorithm.of_name name with
  | Some a -> a
  | None -> Alcotest.failf "unknown algorithm %s" name

let spmm = algo_named "SpMM"

(* --- randomized expressions ------------------------------------------- *)

let rank = 2

let rand_mono rng =
  {
    Asym.Expr.coeff = float_of_int (1 + Rng.int rng 8);
    ns = Array.init rank (fun _ -> Rng.int rng 3);
    fs = Array.init rank (fun _ -> Rng.int rng 2);
    nnz = Rng.int rng 3;
    j = Rng.int rng 2;
    logn = Rng.int rng 2;
  }

let rand_expr rng =
  let n = 1 + Rng.int rng 3 in
  Asym.Expr.normalize
    { Asym.Expr.rank; terms = List.init n (fun _ -> rand_mono rng) }

(* An evaluation environment consistent with the order's soundness
   relations at scale [s]: nnz grows linearly with the dimension sizes
   (nnz <= prod N_d), fills fixed in (0, 1], J and log >= 1. *)
let env_at s =
  {
    Asym.Expr.sizes = [| s; s |];
    fills = [| 0.5; 0.25 |];
    nnz_v = 4.0 *. s;
    j_v = 4.0;
    logn_v = 3.0;
  }

let test_order_properties () =
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let a = rand_expr rng and b = rand_expr rng and c = rand_expr rng in
    Alcotest.(check bool) "le reflexive" true (Asym.Expr.le a a);
    (* the verdict is antisymmetric by construction *)
    let v_ab = Asym.Expr.compare a b and v_ba = Asym.Expr.compare b a in
    let expected =
      match v_ab with
      | Asym.Expr.Equal -> Asym.Expr.Equal
      | Asym.Expr.Dominates -> Asym.Expr.Dominated
      | Asym.Expr.Dominated -> Asym.Expr.Dominates
      | Asym.Expr.Incomparable -> Asym.Expr.Incomparable
    in
    Alcotest.(check string) "verdict antisymmetric"
      (Asym.Expr.verdict_name expected)
      (Asym.Expr.verdict_name v_ba);
    (* transitivity *)
    if Asym.Expr.le a b && Asym.Expr.le b c then
      Alcotest.(check bool) "le transitive" true (Asym.Expr.le a c);
    (* normalize is idempotent: the public constructors already normalize *)
    Alcotest.(check string) "normalize idempotent"
      (Asym.Expr.to_string a)
      (Asym.Expr.to_string (Asym.Expr.normalize a))
  done

(* mono_le a b claims a is O(b): evaluating both at growing scales, the
   ratio a/b must not grow (the constraints nnz <= prod N, F <= 1, J >= 1
   hold in [env_at], so a sound verdict means a bounded ratio). *)
let test_mono_le_sound () =
  let rng = Rng.create 11 in
  let checked = ref 0 in
  for _ = 1 to 2000 do
    let a = rand_mono rng and b = rand_mono rng in
    if Asym.Expr.mono_le rank a b then begin
      incr checked;
      let r_small =
        Asym.Expr.eval_mono (env_at 256.0) a
        /. Asym.Expr.eval_mono (env_at 256.0) b
      and r_large =
        Asym.Expr.eval_mono (env_at 65536.0) a
        /. Asym.Expr.eval_mono (env_at 65536.0) b
      in
      if r_large > r_small *. (1.0 +. 1e-9) then
        Alcotest.failf "unsound mono_le: ratio grew %.3g -> %.3g" r_small
          r_large
    end
  done;
  Alcotest.(check bool) "exercised some pairs" true (!checked > 100)

let test_expr_algebra () =
  let n0 = Asym.Expr.dim rank 0 in
  let nnz = Asym.Expr.nnz_sym rank in
  let prod = Asym.Expr.mul n0 (Asym.Expr.dim rank 1) in
  (* nnz <= prod N_d: nnz is dominated by the dense product *)
  Alcotest.(check string) "nnz O(N0*N1)" "dominated"
    (Asym.Expr.verdict_name (Asym.Expr.compare nnz prod));
  (* ... but not by a single dimension *)
  Alcotest.(check string) "nnz vs N0" "incomparable"
    (Asym.Expr.verdict_name (Asym.Expr.compare nnz n0));
  (* fill factors only shrink: F0*N0 is dominated by N0 *)
  Alcotest.(check string) "F0*N0 O(N0)" "dominated"
    (Asym.Expr.verdict_name (Asym.Expr.compare (Asym.Expr.fill_dim rank 0) n0));
  (* coefficients are asymptotically invisible *)
  Alcotest.(check string) "coeff ignored" "equal"
    (Asym.Expr.verdict_name (Asym.Expr.compare (Asym.Expr.scale 64.0 n0) n0));
  (* absorption: N0*N1 + nnz normalizes to the dominating term alone *)
  Alcotest.(check string) "absorbed" "N0*N1"
    (Asym.Expr.to_string (Asym.Expr.add prod nnz))

(* --- analyzer: golden expressions ------------------------------------- *)

let default_analyzer name =
  let algo = algo_named name in
  Asym.Analyzer.create ~algo (Asym.Analyzer.default_stats ~algo ())

let test_golden_costs () =
  List.iter
    (fun (name, expected) ->
      let az = default_analyzer name in
      let s = Superschedule.fixed_default (algo_named name) in
      Alcotest.(check string) (name ^ " baseline cost") expected
        (Asym.Analyzer.explain az s))
    [
      ("SpMV", "Ni + 4*nnz");
      ("SpMM", "nnz*J + Ni");
      ("SDDMM", "nnz*J + Ni");
      ("MTTKRP", "nnz*J + Ni");
    ]

let test_baseline_verdicts () =
  List.iter
    (fun name ->
      let az = default_analyzer name in
      let s = Superschedule.fixed_default (algo_named name) in
      Alcotest.(check string) (name ^ " baseline equal") "equal"
        (Asym.Expr.verdict_name (Asym.Analyzer.verdict az s));
      Alcotest.(check bool) (name ^ " baseline kept") false
        (Asym.Analyzer.prunes az s);
      Alcotest.(check bool) (name ^ " baseline clean") true
        (Asym.Analyzer.check az s = []))
    [ "SpMV"; "SpMM"; "SDDMM"; "MTTKRP" ]

let test_illegal_schedules () =
  let az = default_analyzer "SpMM" in
  let s = Superschedule.fixed_default spmm in
  let bad = { s with Superschedule.compute_order = [| 0; 0; 2; 3 |] } in
  (match Asym.Analyzer.cost az bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on an illegal schedule");
  Alcotest.(check bool) "never pruned" false (Asym.Analyzer.prunes az bad);
  Alcotest.(check bool) "no smells (lint's job)" true
    (Asym.Analyzer.check az bad = [])

(* --- analyzer vs the cost simulator ----------------------------------- *)

let test_prunes_vs_costsim () =
  let rng = Rng.create 23 in
  let machine = Machine.intel_like in
  let m = Gen.uniform rng ~nrows:512 ~ncols:512 ~nnz:4096 in
  let wl = Workload.of_coo ~id:"asym-sim" m in
  let az = Asym.Analyzer.of_workload ~algo:spmm wl in
  let base = Costsim.runtime machine wl (Superschedule.fixed_default spmm) in
  let dims = [| m.Coo.nrows; m.Coo.ncols |] in
  let pruned = ref 0 and total = 200 in
  for _ = 1 to total do
    let s = Space.sample rng spmm ~dims in
    if Asym.Analyzer.prunes az s then begin
      incr pruned;
      (* A pruned schedule can never be the search's answer: the simulator
         must agree it is no better than the baseline (generous slack for
         the simulator's constant factors the symbolic model ignores). *)
      let t = Costsim.runtime machine wl s in
      if t < base *. 0.5 then
        Alcotest.failf "pruned schedule simulates faster than baseline: %s"
          (Superschedule.describe s)
    end
  done;
  let rate = float_of_int !pruned /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "prunes >= 30%% of random candidates (got %.0f%%)"
       (100.0 *. rate))
    true (rate >= 0.3)

let test_fallback () =
  List.iter
    (fun name ->
      let az = default_analyzer name in
      let algo = algo_named name in
      let fb = Asym.Analyzer.fallback az in
      (* with the synthetic full-fill statistics nothing beats fixed CSR *)
      Alcotest.(check string) (name ^ " fallback = fixed default")
        (Superschedule.key (Superschedule.fixed_default algo))
        (Superschedule.key fb);
      Alcotest.(check bool) (name ^ " fallback legal") true
        (Diag.first_error (Superschedule.check fb) = None))
    [ "SpMV"; "SpMM"; "SDDMM"; "MTTKRP" ]

(* --- unified pre-filter plumbing --------------------------------------- *)

let test_prefilter_counts () =
  let az = default_analyzer "SpMM" in
  let filters = [ Asym.Prefilter.lint; Asym.Prefilter.asym az ] in
  let counts = Asym.Prefilter.zero_counts () in
  let good = Superschedule.fixed_default spmm in
  let illegal = { good with Superschedule.chunk = 0 } in
  (* asymptotically terrible but structurally legal: all-uncompressed *)
  let dense =
    {
      good with
      Superschedule.a_formats =
        Array.map (fun _ -> Format_abs.Levelfmt.U) good.Superschedule.a_formats;
    }
  in
  Alcotest.(check bool) "good accepted" true
    (Asym.Prefilter.reject filters counts good = None);
  Alcotest.(check bool) "illegal -> lint" true
    (Asym.Prefilter.reject filters counts illegal = Some Asym.Prefilter.Lint);
  Alcotest.(check bool) "dense -> asym" true
    (Asym.Prefilter.reject filters counts dense = Some Asym.Prefilter.Asym);
  Alcotest.(check int) "lint tally" 1 counts.Asym.Prefilter.lint;
  Alcotest.(check int) "asym tally" 1 counts.Asym.Prefilter.asym;
  Alcotest.(check int) "total" 2 (Asym.Prefilter.total counts)

(* --- tuner wiring ------------------------------------------------------ *)

let tiny_model_and_corpus rng =
  let model = Waco.Costmodel.create rng spmm in
  let dims = [| 256; 256 |] in
  let corpus = Array.init 64 (fun _ -> Space.sample rng spmm ~dims) in
  (model, corpus)

let test_build_index_counts () =
  let rng = Rng.create 31 in
  let model, corpus = tiny_model_and_corpus rng in
  let az = default_analyzer "SpMM" in
  let plain = Waco.Tuner.build_index (Rng.create 5) model corpus in
  let filtered = Waco.Tuner.build_index ~asym:az (Rng.create 5) model corpus in
  Alcotest.(check int) "no asym drops without the filter" 0
    plain.Waco.Tuner.asym_rejected;
  Alcotest.(check bool) "asym filter drops corpus points" true
    (filtered.Waco.Tuner.asym_rejected > 0);
  Alcotest.(check int) "every point accounted for"
    (Array.length corpus)
    (filtered.Waco.Tuner.corpus_size + filtered.Waco.Tuner.lint_rejected
   + filtered.Waco.Tuner.asym_rejected)

let test_index_snapshot_compat () =
  let rng = Rng.create 37 in
  let model, corpus = tiny_model_and_corpus rng in
  let az = default_analyzer "SpMM" in
  let index = Waco.Tuner.build_index ~asym:az (Rng.create 5) model corpus in
  let dir = Filename.temp_file "waco_asym" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* round trip preserves both per-reason counts *)
      let path = Filename.concat dir "index.bin" in
      Waco.Tuner.save_index index path;
      let back = Waco.Tuner.load_index (Rng.create 9) ~algo:spmm path in
      Alcotest.(check int) "corpus_size" index.Waco.Tuner.corpus_size
        back.Waco.Tuner.corpus_size;
      Alcotest.(check int) "lint_rejected" index.Waco.Tuner.lint_rejected
        back.Waco.Tuner.lint_rejected;
      Alcotest.(check int) "asym_rejected" index.Waco.Tuner.asym_rejected
        back.Waco.Tuner.asym_rejected;
      (* a pre-asym two-field INDEX line still loads, with a zero count *)
      let legacy = Filename.concat dir "legacy.bin" in
      let buf = Buffer.create 4096 in
      Printf.bprintf buf "INDEX %d %d\n" index.Waco.Tuner.corpus_size
        index.Waco.Tuner.lint_rejected;
      Buffer.add_string buf
        (Anns.Hnsw.dump index.Waco.Tuner.hnsw ~payload:Sched_io.serialize);
      Robust.write_artifact ~kind:Robust.Kind.index legacy (Buffer.contents buf);
      let old = Waco.Tuner.load_index (Rng.create 9) ~algo:spmm legacy in
      Alcotest.(check int) "legacy corpus_size" index.Waco.Tuner.corpus_size
        old.Waco.Tuner.corpus_size;
      Alcotest.(check int) "legacy asym_rejected" 0 old.Waco.Tuner.asym_rejected)

let test_tune_prune_counter () =
  let rng = Rng.create 41 in
  let model, corpus = tiny_model_and_corpus rng in
  let index = Waco.Tuner.build_index (Rng.create 5) model corpus in
  let machine = Machine.intel_like in
  (* Sparse enough that the dense-product gap (256^2 / 1024 = 64x) clears
     the analyzer's pruning margin. *)
  let m = Gen.uniform rng ~nrows:256 ~ncols:256 ~nnz:1024 in
  let wl = Workload.of_coo ~id:"asym-tune" m in
  let input = Waco.Extractor.input_of_coo ~id:"asym-tune" m in
  (* k covers the whole corpus so the ranked candidate list — and with it
     the pruned count — is independent of the untrained model's ordering. *)
  let k = Array.length corpus in
  let off =
    Waco.Tuner.tune ~k ~ef:k ~asym:false model machine wl input index
  in
  let on = Waco.Tuner.tune ~k ~ef:k model machine wl input index in
  Alcotest.(check int) "no pruning when off" 0 off.Waco.Tuner.asym_pruned;
  Alcotest.(check bool) "top-k candidates pruned" true
    (on.Waco.Tuner.asym_pruned > 0);
  Alcotest.(check int) "pruned candidates skip measurement"
    off.Waco.Tuner.measured_runs
    (on.Waco.Tuner.measured_runs + on.Waco.Tuner.asym_pruned);
  (* the filter runs after the graph walk and only drops points it proves
     can never win, so the chosen schedule is identical either way *)
  Alcotest.(check string) "zero change to the chosen schedule"
    (Superschedule.key off.Waco.Tuner.best)
    (Superschedule.key on.Waco.Tuner.best);
  Alcotest.(check (float 1e-9)) "identical measured optimum"
    off.Waco.Tuner.best_measured on.Waco.Tuner.best_measured

let () =
  Alcotest.run "asym"
    [
      ( "expr",
        [
          Alcotest.test_case "order properties" `Quick test_order_properties;
          Alcotest.test_case "mono_le sound" `Quick test_mono_le_sound;
          Alcotest.test_case "algebra" `Quick test_expr_algebra;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "golden costs" `Quick test_golden_costs;
          Alcotest.test_case "baseline verdicts" `Quick test_baseline_verdicts;
          Alcotest.test_case "illegal schedules" `Quick test_illegal_schedules;
          Alcotest.test_case "prunes vs costsim" `Quick test_prunes_vs_costsim;
          Alcotest.test_case "fallback" `Quick test_fallback;
        ] );
      ( "prefilter",
        [
          Alcotest.test_case "reason counts" `Quick test_prefilter_counts;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "index counts" `Quick test_build_index_counts;
          Alcotest.test_case "snapshot compat" `Quick test_index_snapshot_compat;
          Alcotest.test_case "prune counter" `Quick test_tune_prune_counter;
        ] );
    ]
