(* Scale-out serving tests: the consistent-hash ring's balance and minimal-
   remap properties (QCheck over generated fp1 fingerprints), the TCP
   transport end to end (tcp:127.0.0.1:0 with kernel-port readback), and the
   router daemon itself — verbatim relay with per-client FIFO across shards,
   aggregated stats fan-out, Busy-hint propagation through query_with_retry,
   router/shard lifecycle independence, and a SIGKILLed shard mid-load:
   in-flight predict-only queries fail over to the surviving shard, in-flight
   measured queries answer an honest error, and a restarted shard rejoins the
   ring warm from its persisted cache. *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256
let machine = Machine.intel_like

(* --- tmp-dir helpers (same idiom as test_serve) ----------------------- *)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Robust.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* --- shared fixture: identical seeds to test_serve, so shard trampolines
   rebuild the same model/index identity stamps in every process ---------- *)

let fixture =
  lazy
    (let model = Waco.Costmodel.create (Rng.create 11) algo in
     let rng = Rng.create 3 in
     let corpus =
       Array.init 64 (fun _ -> Space.sample rng algo ~dims:[| 48; 48 |])
     in
     let index = Waco.Tuner.build_index (Rng.create 7) model corpus in
     (model, index))

let small_matrix seed = Gen.uniform (Rng.create seed) ~nrows:48 ~ncols:48 ~nnz:220

let mk_server ?pool ?cache_capacity ?cache_file ?max_pending
    ?(socket = "unused.sock") () =
  let model, index = Lazy.force fixture in
  Serve.Server.create ?pool ?cache_capacity ?cache_file ?max_pending ~k:4
    ~ef:16 ~model ~index ~index_file:"<fixture>" ~machine ~socket ()

(* Shard trampoline: OCaml 5 forbids [Unix.fork] once any domain has been
   spawned (the in-process router below spawns one), so SIGKILL-able shard
   daemons are fresh processes of this executable, selected by env var
   before Alcotest takes over.  WACO_TEST_ROUTER_STALL="SECONDS:N" arms the
   stuck-measurement fault in the shard, pinning measured queries in flight
   so the kill lands mid-measurement deterministically. *)
let () =
  match Sys.getenv_opt "WACO_TEST_ROUTER_SHARD" with
  | None -> ()
  | Some socket ->
      (try
         let cache_file = Sys.getenv_opt "WACO_TEST_ROUTER_CACHE" in
         (match Sys.getenv_opt "WACO_TEST_ROUTER_STALL" with
         | Some spec -> (
             match String.split_on_char ':' spec with
             | [ secs; n ] ->
                 Robust.Faults.arm_stuck_measures ~seconds:(float_of_string secs)
                   (int_of_string n)
             | _ -> failwith "bad WACO_TEST_ROUTER_STALL")
         | None -> ());
         let server = mk_server ?cache_file ~socket () in
         Serve.Server.run server
       with _ -> exit 1);
      exit 0

let inline_source m =
  let entries =
    Array.init (Coo.nnz m) (fun k ->
        (m.Coo.rows.(k), m.Coo.cols.(k), m.Coo.vals.(k)))
  in
  Serve.Protocol.Inline { nrows = m.Coo.nrows; ncols = m.Coo.ncols; entries }

let query_of ?(measure = true) ?(qid = "q") ?(deadline_ms = 0) ?kernel m =
  { Serve.Protocol.qid; source = inline_source m; measure; deadline_ms; kernel }

let json_has json fragment =
  let n = String.length json and m = String.length fragment in
  let rec go i = i + m <= n && (String.sub json i m = fragment || go (i + 1)) in
  go 0

(* ====================================================================== *)
(* Ring properties                                                        *)
(* ====================================================================== *)

let shard_names =
  [
    "unix:/srv/waco/shard0.sock";
    "unix:/srv/waco/shard1.sock";
    "unix:/srv/waco/shard2.sock";
    "unix:/srv/waco/shard3.sock";
  ]

(* A generated fp1 fingerprint key: random density sketch, plausible shape.
   Exactly the population the router hashes — [Ring.routing_key] strips it
   back to the sketch hex. *)
let fp_key rng =
  let cells = Serve.Fingerprint.cells * Serve.Fingerprint.cells in
  let sketch = Array.init cells (fun _ -> Rng.int rng 256) in
  Serve.Fingerprint.key
    {
      Serve.Fingerprint.nrows = 16 + Rng.int rng 4096;
      ncols = 16 + Rng.int rng 4096;
      nnz = 1 + Rng.int rng 100000;
      sketch;
    }

(* Generated fingerprints spread across 4 shards within +-25% of even. *)
let qcheck_ring_balance =
  QCheck.Test.make ~name:"ring balance within 25% of even (prop)" ~count:16
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1) in
      let ring = Serve.Router.Ring.create shard_names in
      let nkeys = 1024 in
      let counts = Hashtbl.create 4 in
      for _ = 1 to nkeys do
        let owner =
          Serve.Router.Ring.lookup ring
            (Serve.Router.Ring.routing_key (fp_key rng))
        in
        Hashtbl.replace counts owner
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner))
      done;
      let mean = float_of_int nkeys /. float_of_int (List.length shard_names) in
      List.for_all
        (fun name ->
          let c = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) in
          c >= 0.75 *. mean && c <= 1.25 *. mean)
        shard_names)

(* Removing one member remaps only the keys it owned; everyone else's keys
   keep their owner.  (Read in reverse, the same check covers a join: the
   new member only steals keys, never reshuffles third parties.) *)
let qcheck_ring_minimal_remap =
  QCheck.Test.make ~name:"membership change remaps only departed keys (prop)"
    ~count:16
    QCheck.(pair small_nat (int_range 0 3))
    (fun (seed, departed) ->
      let rng = Rng.create (seed + 101) in
      let full = Serve.Router.Ring.create shard_names in
      let dname = List.nth shard_names departed in
      let survivors = List.filter (fun n -> n <> dname) shard_names in
      let reduced = Serve.Router.Ring.create survivors in
      let ok = ref true in
      for _ = 1 to 256 do
        let key = Serve.Router.Ring.routing_key (fp_key rng) in
        let before = Serve.Router.Ring.lookup full key in
        let after = Serve.Router.Ring.lookup reduced key in
        if before = dname then begin
          (* Departed keys must land on some survivor. *)
          if not (List.mem after survivors) then ok := false
        end
        else if after <> before then ok := false
      done;
      !ok)

let test_routing_key () =
  let m = small_matrix 5 in
  let key = Serve.Fingerprint.key (Serve.Fingerprint.of_coo m) in
  let rk = Serve.Router.Ring.routing_key key in
  (* The routing key is the sketch hex: the part after the last colon. *)
  let last = String.rindex key ':' in
  Alcotest.(check string) "fp1 key routes by sketch hex"
    (String.sub key (last + 1) (String.length key - last - 1))
    rk;
  Alcotest.(check bool) "sketch hex is non-empty" true (String.length rk > 0);
  (* Shape and nnz are invisible to routing: same sketch, different shape
     and count route identically. *)
  let fp = Serve.Fingerprint.of_coo m in
  let fp' = { fp with Serve.Fingerprint.nrows = fp.nrows * 2; nnz = fp.nnz + 7 } in
  Alcotest.(check string) "routing sees only the density layout" rk
    (Serve.Router.Ring.routing_key (Serve.Fingerprint.key fp'));
  (* Anything that isn't an fp1 key routes as itself. *)
  Alcotest.(check string) "non-fp key routes as itself" "ping"
    (Serve.Router.Ring.routing_key "ping")

let test_ring_validation () =
  (match Serve.Router.Ring.create [] with
  | _ -> Alcotest.fail "empty ring accepted"
  | exception Invalid_argument _ -> ());
  let ring = Serve.Router.Ring.create shard_names in
  Alcotest.(check (list string)) "members preserved" shard_names
    (Serve.Router.Ring.members ring);
  (* Deterministic: the same key always lands on the same member. *)
  let k = Serve.Router.Ring.routing_key (fp_key (Rng.create 9)) in
  Alcotest.(check string) "lookup is deterministic"
    (Serve.Router.Ring.lookup ring k)
    (Serve.Router.Ring.lookup ring k)

(* ====================================================================== *)
(* Addr specs + the TCP transport end to end                              *)
(* ====================================================================== *)

let test_addr_specs () =
  List.iter
    (fun (spec, expect) ->
      Alcotest.(check string) spec expect
        (Serve.Addr.to_string (Serve.Addr.of_string spec)))
    [
      ("/tmp/waco.sock", "/tmp/waco.sock");
      ("unix:/tmp/waco.sock", "/tmp/waco.sock");
      ("tcp:127.0.0.1:7070", "tcp:127.0.0.1:7070");
      ("tcp:localhost:0", "tcp:localhost:0");
    ];
  List.iter
    (fun bad ->
      match Serve.Addr.of_string bad with
      | _ -> Alcotest.failf "bad spec accepted: %s" bad
      | exception Invalid_argument _ -> ())
    [ "tcp:127.0.0.1"; "tcp:127.0.0.1:notaport"; "tcp:127.0.0.1:-1"; "tcp::"; "" ]

(* An in-process daemon listening on tcp:127.0.0.1:0: the kernel picks the
   port, [bound_endpoint] reports it, and the whole PR-5 contract (batch,
   cache hit on re-ask, stats, clean shutdown) holds over TCP exactly as
   over a Unix socket. *)
let test_tcp_end_to_end () =
  let dir = tmpdir "waco-router-tcp" in
  let server = mk_server ~cache_file:(Filename.concat dir "c.waco")
      ~socket:"tcp:127.0.0.1:0" () in
  let daemon = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Domain.join daemon;
      rm_rf dir)
    (fun () ->
      let rec wait_bound n =
        match Serve.Server.bound_endpoint server with
        | Some ep -> ep
        | None when n > 0 ->
            Unix.sleepf 0.05;
            wait_bound (n - 1)
        | None -> Alcotest.fail "daemon never bound its TCP endpoint"
      in
      let ep = wait_bound 200 in
      Alcotest.(check bool) "bound endpoint resolved the port" true
        (String.length ep > String.length "tcp:127.0.0.1:"
        && String.sub ep 0 14 = "tcp:127.0.0.1:"
        && not (json_has ep ":0"));
      let c = Serve.Client.connect ep in
      Alcotest.(check bool) "ping over tcp" true (Serve.Client.ping c);
      let m = small_matrix 21 in
      let sched =
        match Serve.Client.query ~qid:"t1" c (inline_source m) with
        | Ok a ->
            Alcotest.(check bool) "first answer is fresh" false
              a.Serve.Protocol.cache_hit;
            a.Serve.Protocol.schedule
        | Error e -> Alcotest.failf "tcp query: %s" e
      in
      Alcotest.(check bool) "schedule is non-empty" true (String.length sched > 0);
      (match Serve.Client.query ~qid:"t2" c (inline_source m) with
      | Ok a ->
          Alcotest.(check bool) "re-ask hits the cache over tcp" true
            a.Serve.Protocol.cache_hit;
          Alcotest.(check string) "schedule unchanged" sched
            a.Serve.Protocol.schedule
      | Error e -> Alcotest.failf "tcp re-ask: %s" e);
      (match Serve.Client.stats c with
      | Ok j ->
          Alcotest.(check bool) "stats report the tcp listen endpoint" true
            (json_has j ep)
      | Error e -> Alcotest.failf "stats: %s" e);
      Alcotest.(check bool) "clean shutdown over tcp" true
        (Serve.Client.shutdown c);
      Serve.Client.close c)

(* ====================================================================== *)
(* Router end to end                                                      *)
(* ====================================================================== *)

let wait_connect ?(attempts = 200) path =
  let rec go attempts =
    match Serve.Client.connect path with
    | c -> c
    | exception (Unix.Unix_error _ | Failure _) when attempts > 0 ->
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go attempts

let spawn_shard ?stall ~socket ~cache_file () =
  let extra =
    [|
      "WACO_TEST_ROUTER_SHARD=" ^ socket; "WACO_TEST_ROUTER_CACHE=" ^ cache_file;
    |]
  in
  let extra =
    match stall with
    | Some (seconds, n) ->
        Array.append extra
          [| Printf.sprintf "WACO_TEST_ROUTER_STALL=%g:%d" seconds n |]
    | None -> extra
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    (Array.append (Unix.environment ()) extra)
    Unix.stdin Unix.stdout Unix.stderr

let kill_quietly pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* Spin up a router in its own domain and wait for its endpoint. *)
let spawn_router ?max_pending ?failover_hops ~listen ~shards () =
  let router = Serve.Router.create ?max_pending ?failover_hops ~listen ~shards () in
  let domain = Domain.spawn (fun () -> Serve.Router.run router) in
  let rec wait_bound n =
    match Serve.Router.bound_endpoint router with
    | Some ep -> ep
    | None when n > 0 ->
        Unix.sleepf 0.05;
        wait_bound (n - 1)
    | None -> Alcotest.fail "router never bound its endpoint"
  in
  (router, domain, wait_bound 200)

(* Narrow an aggregated stats JSON to the text after [from], so counter
   names that repeat per section (router / per_shard / totals) can be read
   out of the intended one. *)
let counter_after json from name =
  let n = String.length json and m = String.length from in
  let rec find i =
    if i + m > n then None
    else if String.sub json i m = from then
      Serve.Metrics.json_counter (String.sub json i (n - i)) name
    else find (i + 1)
  in
  find 0

let router_stats c =
  match Serve.Client.stats c with
  | Ok j -> j
  | Error e -> Alcotest.failf "router stats: %s" e

(* The router accepts clients as soon as it binds, while its shard dials
   are still in flight — a query racing the dials would route over a
   partial ring.  Tests wait until every shard is admitted. *)
let wait_shards_up ?(attempts = 200) c n =
  let rec go attempts =
    let j = router_stats c in
    if counter_after j "\"router\"" "shards_up" = Some n then ()
    else if attempts = 0 then
      Alcotest.failf "router never saw %d shards up" n
    else begin
      Unix.sleepf 0.05;
      go (attempts - 1)
    end
  in
  go attempts

(* Two subprocess shards behind an in-process router on a TCP listen:
   pipelined queries keep per-client FIFO order across shards, re-asks hit
   the owning shard's cache, stats aggregate per-shard and total counters,
   and shutting the router down leaves the shards alive. *)
let test_router_end_to_end () =
  let dir = tmpdir "waco-router-e2e" in
  let s0 = Filename.concat dir "s0.sock" and s1 = Filename.concat dir "s1.sock" in
  let pid0 = spawn_shard ~socket:s0 ~cache_file:(Filename.concat dir "c0.waco") () in
  let pid1 = spawn_shard ~socket:s1 ~cache_file:(Filename.concat dir "c1.waco") () in
  Fun.protect
    ~finally:(fun () ->
      kill_quietly pid0;
      kill_quietly pid1;
      rm_rf dir)
    (fun () ->
      (* Don't start routing until both shards accept connections. *)
      List.iter
        (fun s ->
          let probe = wait_connect s in
          ignore (Serve.Client.ping probe);
          Serve.Client.close probe)
        [ s0; s1 ];
      let _router, domain, ep =
        spawn_router ~listen:"tcp:127.0.0.1:0" ~shards:[ s0; s1 ] ()
      in
      let c = wait_connect ep in
      Alcotest.(check bool) "ping answers locally at the router" true
        (Serve.Client.ping c);
      wait_shards_up c 2;
      (* Pipeline A,B on one connection: distinct matrices may route to
         different shards, yet responses come back in request order.  A
         drained second round must then hit the owning shards' caches, and
         the predicted costs tie each answer to its query. *)
      let ma = small_matrix 41 and mb = small_matrix 42 in
      let round tag =
        List.iteri
          (fun i m ->
            Serve.Client.send c
              (Serve.Protocol.Query
                 (query_of ~qid:(Printf.sprintf "%s%d" tag i) m)))
          [ ma; mb ];
        List.init 2 (fun _ ->
            match Serve.Client.recv ~timeout_s:60.0 c with
            | Serve.Protocol.Answer a -> a
            | Serve.Protocol.Error_msg e -> Alcotest.failf "routed query: %s" e
            | _ -> Alcotest.fail "non-answer via router")
      in
      (match (round "f", round "g") with
      | [ a1; b1 ], [ a2; b2 ] ->
          Alcotest.(check bool) "fifo: first round is fresh" false
            (a1.Serve.Protocol.cache_hit || b1.Serve.Protocol.cache_hit);
          Alcotest.(check bool) "fifo: second round hits the shard caches"
            true
            (a2.Serve.Protocol.cache_hit && b2.Serve.Protocol.cache_hit);
          Alcotest.(check (float 1e-9)) "fifo: A's answers line up"
            a1.Serve.Protocol.predicted a2.Serve.Protocol.predicted;
          Alcotest.(check (float 1e-9)) "fifo: B's answers line up"
            b1.Serve.Protocol.predicted b2.Serve.Protocol.predicted;
          Alcotest.(check string) "fifo: A's schedule is stable"
            a1.Serve.Protocol.schedule a2.Serve.Protocol.schedule
      | _ -> assert false);
      (* Aggregated stats: router section, one entry per shard, totals
         summed across shards. *)
      let j = router_stats c in
      Alcotest.(check bool) "stats has router/per_shard/totals sections" true
        (json_has j "\"router\"" && json_has j "\"per_shard\""
        && json_has j "\"totals\"");
      Alcotest.(check (option int)) "both shards are up" (Some 2)
        (counter_after j "\"router\"" "shards_up");
      (match counter_after j "\"router\"" "routed" with
      | Some r -> Alcotest.(check int) "all four queries were routed" 4 r
      | None -> Alcotest.fail "no routed counter");
      (match counter_after j "\"totals\"" "cache_hits" with
      | Some h -> Alcotest.(check bool) "totals sum shard cache hits" true (h >= 2)
      | None -> Alcotest.fail "no totals cache_hits");
      Alcotest.(check bool) "per-shard stats carry each shard's name" true
        (json_has j s0 && json_has j s1);
      (* Router shutdown is the router's own lifecycle: the shards stay up
         and keep answering direct clients. *)
      Alcotest.(check bool) "router shuts down cleanly" true
        (Serve.Client.shutdown c);
      Serve.Client.close c;
      Domain.join domain;
      (* The shard owning A (mirroring the router's hash) must still hold
         A's answer — routed traffic landed in that shard's own cache. *)
      let ring = Serve.Router.Ring.create [ s0; s1 ] in
      let owner_a =
        Serve.Router.Ring.lookup ring
          (Serve.Router.Ring.routing_key
             (Serve.Fingerprint.key (Serve.Fingerprint.of_coo ma)))
      in
      let direct = wait_connect owner_a in
      Alcotest.(check bool) "shard survives its router" true
        (Serve.Client.ping direct);
      (match Serve.Client.query ~qid:"direct" direct (inline_source ma) with
      | Ok a ->
          Alcotest.(check bool) "shard cache warm from routed traffic" true
            a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "direct query after router exit: %s" e);
      ignore (Serve.Client.shutdown direct);
      Serve.Client.close direct;
      let other = if owner_a = s0 then s1 else s0 in
      let direct1 = wait_connect other in
      ignore (Serve.Client.shutdown direct1);
      Serve.Client.close direct1;
      ignore (Unix.waitpid [] pid0);
      ignore (Unix.waitpid [] pid1))

(* A shard's [Busy] shed is relayed verbatim — the router counts the relay
   but never synthesizes its own hint — and [query_with_retry] pointed at
   the router honors the shard's retry_after_ms exactly as it would
   directly. *)
let test_busy_propagation () =
  let dir = tmpdir "waco-router-busy" in
  let shard_sock = Filename.concat dir "shard.sock" in
  let server = mk_server ~max_pending:1 ~socket:shard_sock () in
  let sdomain = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Robust.Faults.reset ();
      Domain.join sdomain;
      rm_rf dir)
    (fun () ->
      let probe = wait_connect shard_sock in
      ignore (Serve.Client.ping probe);
      Serve.Client.close probe;
      let router, rdomain, ep =
        spawn_router ~listen:(Filename.concat dir "router.sock")
          ~shards:[ shard_sock ] ()
      in
      let m = small_matrix 61 in
      (* Stall the only uncached computation, then pipeline a burst through
         the router against the shard's full queue. *)
      let c = wait_connect ep in
      wait_shards_up c 1;
      Robust.Faults.arm_stuck_measures ~seconds:0.4 1;
      Serve.Client.send c (Serve.Protocol.Query (query_of ~qid:"b0" m));
      Unix.sleepf 0.1;
      for i = 1 to 5 do
        Serve.Client.send c
          (Serve.Protocol.Query (query_of ~qid:(Printf.sprintf "b%d" i) m))
      done;
      let answers = ref 0 and busy = ref 0 in
      for _ = 0 to 5 do
        match Serve.Client.recv ~timeout_s:30.0 c with
        | Serve.Protocol.Answer _ -> incr answers
        | Serve.Protocol.Busy { retry_after_ms } ->
            Alcotest.(check bool) "relayed busy carries a positive hint" true
              (retry_after_ms > 0);
            incr busy
        | Serve.Protocol.Error_msg e -> Alcotest.failf "unexpected error: %s" e
        | _ -> Alcotest.fail "unexpected response via router under overload"
      done;
      Robust.Faults.reset ();
      Alcotest.(check int) "every burst request resolved" 6 (!answers + !busy);
      Alcotest.(check bool) "at least one shed relayed" true (!busy >= 1);
      (* The sheds were the shard's, relayed — not router-synthesized. *)
      let rj = Serve.Router.stats_json router in
      Alcotest.(check (option int)) "router counted the relayed sheds"
        (Some !busy)
        (Serve.Metrics.json_counter rj "relayed_busy");
      Alcotest.(check (option int)) "router shed nothing itself" (Some 0)
        (Serve.Metrics.json_counter rj "shed");
      (* The resilient client through the router: backs off on the relayed
         hint, then answers from the shard's (by now warm) cache. *)
      (match
         Serve.Client.query_with_retry ~attempts:5 ~base_s:0.02 ~qid:"retry"
           ~socket:ep (inline_source m)
       with
      | Ok a ->
          Alcotest.(check bool) "retry through the router lands in cache" true
            a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "retry through router: %s" e);
      Serve.Client.close c;
      let stop = wait_connect ep in
      Alcotest.(check bool) "router shutdown" true (Serve.Client.shutdown stop);
      Serve.Client.close stop;
      Domain.join rdomain;
      let sd = wait_connect shard_sock in
      ignore (Serve.Client.shutdown sd);
      Serve.Client.close sd)

(* The chaos clause: SIGKILL one of two subprocess shards while it holds
   in-flight queries.  Predict-only queries fail over to the survivor and
   every one is answered; the in-flight measured query gets an honest
   error (it may have half-run, so re-running it silently elsewhere would
   lie); a restarted shard is redialed and rejoins the ring warm from its
   write-through cache. *)
let test_shard_sigkill_failover () =
  let dir = tmpdir "waco-router-kill" in
  let s0 = Filename.concat dir "s0.sock" and s1 = Filename.concat dir "s1.sock" in
  let c0 = Filename.concat dir "c0.waco" and c1 = Filename.concat dir "c1.waco" in
  let pid0 = spawn_shard ~socket:s0 ~cache_file:c0 () in
  (* Shard 1's measured queries stall for 30 s: whatever measured work is
     in flight there is still in flight when the SIGKILL lands. *)
  let pid1 = ref (spawn_shard ~stall:(30.0, 1000) ~socket:s1 ~cache_file:c1 ()) in
  Fun.protect
    ~finally:(fun () ->
      kill_quietly pid0;
      kill_quietly !pid1;
      rm_rf dir)
    (fun () ->
      List.iter
        (fun s ->
          let probe = wait_connect s in
          ignore (Serve.Client.ping probe);
          Serve.Client.close probe)
        [ s0; s1 ];
      let _router, rdomain, ep =
        spawn_router ~failover_hops:1 ~listen:(Filename.concat dir "router.sock")
          ~shards:[ s0; s1 ] ()
      in
      (* Pick matrices by ring owner, mirroring the router's own hash. *)
      let ring = Serve.Router.Ring.create [ s0; s1 ] in
      let owner m =
        Serve.Router.Ring.lookup ring
          (Serve.Router.Ring.routing_key
             (Serve.Fingerprint.key (Serve.Fingerprint.of_coo m)))
      in
      let owned_by shard seed0 =
        let rec go seed =
          let m = small_matrix seed in
          if owner m = shard then m else go (seed + 1)
        in
        go seed0
      in
      let warm1 = owned_by s1 300 in
      let stuck1 = owned_by s1 400 in
      let c = wait_connect ep in
      wait_shards_up c 2;
      (* Warm shard 1's cache through the router (predict-only: the stall
         only bites measured ticks) — write-through persists it. *)
      (match Serve.Client.query ~measure:false ~qid:"warm" c (inline_source warm1) with
      | Ok a ->
          Alcotest.(check bool) "warm-up answered fresh" false
            a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "warm-up via router: %s" e);
      (* In-flight load: one measured query pinned mid-measurement on shard
         1, then a spread of predict-only queries across both shards. *)
      Serve.Client.send c
        (Serve.Protocol.Query (query_of ~measure:true ~qid:"stuck" stuck1));
      let npredict = 4 in
      for i = 0 to npredict - 1 do
        Serve.Client.send c
          (Serve.Protocol.Query
             (query_of ~measure:false ~qid:(Printf.sprintf "p%d" i)
                (small_matrix (500 + i))))
      done;
      (* Let the relays reach the shards, then kill the stalled one. *)
      Unix.sleepf 0.5;
      Unix.kill !pid1 Sys.sigkill;
      ignore (Unix.waitpid [] !pid1);
      (* FIFO: the measured query's honest error first, then every
         predict-only answer — the ones shard 1 held fail over to shard 0
         within the hop budget. *)
      (match Serve.Client.recv ~timeout_s:60.0 c with
      | Serve.Protocol.Error_msg e ->
          Alcotest.(check bool) "measured error names the shard death" true
            (String.length e > 0)
      | Serve.Protocol.Answer _ ->
          Alcotest.fail "measured query silently re-ran after a shard death"
      | _ -> Alcotest.fail "unexpected response for the stuck query");
      for i = 0 to npredict - 1 do
        match Serve.Client.recv ~timeout_s:60.0 c with
        | Serve.Protocol.Answer _ -> ()
        | Serve.Protocol.Error_msg e ->
            Alcotest.failf "predict-only p%d lost to the shard death: %s" i e
        | _ -> Alcotest.failf "unexpected response for p%d" i
      done;
      (* Restart the shard (what `waco serve --supervise` would do) on the
         same socket and cache: the router's redial loop re-admits it. *)
      pid1 := spawn_shard ~socket:s1 ~cache_file:c1 ();
      let rec wait_rejoin n =
        if n = 0 then Alcotest.fail "restarted shard never rejoined the ring";
        let j = router_stats c in
        if counter_after j "\"router\"" "shards_up" <> Some 2 then begin
          Unix.sleepf 0.1;
          wait_rejoin (n - 1)
        end
        else j
      in
      ignore (wait_rejoin 100);
      (* The stats fan-out snapshots its shard set when the request arrives,
         so the response that first shows [shards_up = 2] was composed from
         a fan created before the reconnect — ask once more now that the
         rejoin is visible to get the restarted shard's embedded stats. *)
      let j = router_stats c in
      Alcotest.(check bool) "the death and the reconnect were counted" true
        (match
           ( counter_after j "\"router\"" "shard_deaths",
             counter_after j "\"router\"" "reconnects" )
         with
        | Some d, Some r -> d >= 1 && r >= 1
        | _ -> false);
      (* Warm rejoin: the restarted shard reports a warm cache, and the
         pre-kill answer is served from it as a hit. *)
      Alcotest.(check bool) "restarted shard came up warm" true
        (json_has j "\"cache_status\": \"warm(");
      (match Serve.Client.query ~measure:false ~qid:"rewarm" c (inline_source warm1) with
      | Ok a ->
          Alcotest.(check bool) "pre-kill answer survives on the rejoined shard"
            true a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "re-ask after rejoin: %s" e);
      Alcotest.(check bool) "router shutdown" true (Serve.Client.shutdown c);
      Serve.Client.close c;
      Domain.join rdomain;
      List.iter
        (fun s ->
          let d = wait_connect s in
          ignore (Serve.Client.shutdown d);
          Serve.Client.close d)
        [ s0; s1 ];
      ignore (Unix.waitpid [] pid0);
      ignore (Unix.waitpid [] !pid1))

let () =
  Alcotest.run "router"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest qcheck_ring_balance;
          QCheck_alcotest.to_alcotest qcheck_ring_minimal_remap;
          Alcotest.test_case "routing key" `Quick test_routing_key;
          Alcotest.test_case "validation + determinism" `Quick
            test_ring_validation;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "addr specs" `Quick test_addr_specs;
          Alcotest.test_case "daemon end to end over tcp" `Slow
            test_tcp_end_to_end;
        ] );
      ( "router",
        [
          Alcotest.test_case "relay, fifo, stats, lifecycles" `Slow
            test_router_end_to_end;
          Alcotest.test_case "busy hint propagated verbatim" `Slow
            test_busy_propagation;
          Alcotest.test_case "shard sigkill: failover + warm rejoin" `Slow
            test_shard_sigkill_failover;
        ] );
    ]
