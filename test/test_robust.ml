(* Durability and fault-injection tests: the [Robust] layer's contract is
   that after a crash at ANY write point, loading an artifact yields either
   the previous complete artifact or a clean typed error — never garbage.
   The crash sweeps below prove it per artifact kind (model dump, dataset
   directory, training checkpoint, HNSW index snapshot) by arming a
   deterministic fail-at-nth-write fault at every point in turn. *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256
let machine = Machine.intel_like

(* --- tmp-dir helpers -------------------------------------------------- *)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Robust.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- primitives ------------------------------------------------------- *)

let test_crc32 () =
  (* The IEEE/zlib check value. *)
  Alcotest.(check int) "crc32 check vector" 0xCBF43926 (Robust.crc32 "123456789");
  Alcotest.(check string) "hex" "cbf43926" (Robust.crc32_hex "123456789");
  Alcotest.(check int) "empty" 0 (Robust.crc32 "")

let test_mkdir_p () =
  let root = tmpdir "waco-mkdirp" in
  let deep = Filename.concat (Filename.concat root "a/b") "c" in
  Robust.mkdir_p deep;
  Alcotest.(check bool) "created" true (Sys.is_directory deep);
  (* idempotent *)
  Robust.mkdir_p deep;
  rm_rf root

let test_atomic_write () =
  let dir = tmpdir "waco-atomic" in
  let path = Filename.concat dir "f.txt" in
  Robust.write_atomic_string path "hello";
  Alcotest.(check string) "content" "hello" (read_raw path);
  Robust.write_atomic_string path "world";
  Alcotest.(check string) "replaced" "world" (read_raw path);
  (* no temp litter *)
  Alcotest.(check int) "only the target remains" 1 (Array.length (Sys.readdir dir));
  rm_rf dir

let test_with_retry () =
  (* two transient failures are absorbed within three attempts *)
  let n = ref 0 in
  let r =
    Robust.with_retry ~backoff_s:1e-4 ~label:"t" (fun () ->
        incr n;
        if !n < 3 then raise (Robust.Faults.Transient "hiccup") else !n)
  in
  Alcotest.(check (result int string)) "absorbed" (Ok 3) r;
  (* persistent failure exhausts the attempts *)
  let r2 =
    Robust.with_retry ~attempts:2 ~backoff_s:1e-4 ~label:"t" (fun () ->
        failwith "down")
  in
  Alcotest.(check bool) "exhausted" true (Result.is_error r2);
  (* an injected crash is never retried *)
  let calls = ref 0 in
  (match
     Robust.with_retry ~backoff_s:1e-4 ~label:"t" (fun () ->
         incr calls;
         raise (Robust.Faults.Injected "crash"))
   with
  | _ -> Alcotest.fail "Injected must escape with_retry"
  | exception Robust.Faults.Injected _ -> ());
  Alcotest.(check int) "crash not retried" 1 !calls

(* --- the envelope ----------------------------------------------------- *)

let err_name = function
  | Robust.Missing _ -> "missing"
  | Robust.Not_an_artifact _ -> "not_an_artifact"
  | Robust.Truncated _ -> "truncated"
  | Robust.Bad_checksum _ -> "bad_checksum"
  | Robust.Version_mismatch _ -> "version_mismatch"
  | Robust.Wrong_kind _ -> "wrong_kind"
  | Robust.Malformed _ -> "malformed"

let test_envelope_roundtrip () =
  let dir = tmpdir "waco-env" in
  let path = Filename.concat dir "a" in
  let payload = "line one\nline two\n\x00binary-ish\n" in
  Robust.write_artifact ~kind:Robust.Kind.model path payload;
  (match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok p -> Alcotest.(check string) "payload" payload p
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Robust.load_error_to_string e));
  rm_rf dir

(* Table-driven tamper matrix: each row mangles a fresh valid artifact and
   names the exact typed error the reader must produce. *)
let test_tamper_table () =
  let dir = tmpdir "waco-tamper" in
  let payload = "some payload content, long enough to damage\n" in
  let fresh name = Filename.concat dir name in
  let cases =
    [
      ( "corrupt payload byte",
        (fun path ->
          Robust.write_artifact ~kind:Robust.Kind.model path payload;
          let raw = read_raw path in
          let b = Bytes.of_string raw in
          Bytes.set b (Bytes.length b - 2)
            (Char.chr (Char.code (Bytes.get b (Bytes.length b - 2)) lxor 0xFF));
          write_raw path (Bytes.to_string b)),
        "bad_checksum" );
      ( "truncated payload",
        (fun path ->
          Robust.write_artifact ~kind:Robust.Kind.model path payload;
          let raw = read_raw path in
          write_raw path (String.sub raw 0 (String.length raw - 7))),
        "truncated" );
      ( "wrong kind",
        (fun path -> Robust.write_artifact ~kind:Robust.Kind.index path payload),
        "wrong_kind" );
      ( "future version",
        (fun path ->
          Robust.write_artifact ~kind:Robust.Kind.model ~version:99 path payload),
        "version_mismatch" );
      ( "garbage file",
        (fun path -> write_raw path "this was never an artifact\n"),
        "not_an_artifact" );
      ("missing file", (fun _path -> ()), "missing");
    ]
  in
  List.iter
    (fun (label, prepare, expected) ->
      let path = fresh (String.map (fun c -> if c = ' ' then '_' else c) label) in
      prepare path;
      match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
      | Ok _ -> Alcotest.failf "%s: tampered artifact verified" label
      | Error e -> Alcotest.(check string) label expected (err_name e))
    cases;
  rm_rf dir

let test_injected_corruption_detected () =
  (* The one-shot mangle hooks damage the blob on its way to disk; the
     reader must catch it through the checksum/byte-count. *)
  let dir = tmpdir "waco-mangle" in
  let path = Filename.concat dir "a" in
  let payload = String.concat "" (List.init 20 (fun i -> Printf.sprintf "row %d\n" i)) in
  Robust.write_artifact ~kind:Robust.Kind.model path payload;
  let blob_len = String.length (read_raw path) in
  Robust.Faults.reset ();
  Robust.Faults.arm_corrupt_byte (blob_len - 3);
  Robust.write_artifact ~kind:Robust.Kind.model path payload;
  Robust.Faults.reset ();
  (match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok _ -> Alcotest.fail "corrupted write verified"
  | Error e -> Alcotest.(check string) "corrupt" "bad_checksum" (err_name e));
  Robust.Faults.arm_truncate_at (blob_len - 9);
  Robust.write_artifact ~kind:Robust.Kind.model path payload;
  Robust.Faults.reset ();
  (match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok _ -> Alcotest.fail "truncated write verified"
  | Error e -> Alcotest.(check string) "truncated" "truncated" (err_name e));
  rm_rf dir

(* --- the crash sweep -------------------------------------------------- *)

(* Arm fail-at-nth-write for n = 1, 2, ... until [save] completes without
   the fault firing; after every injected crash, [check] must hold.  Returns
   the number of write points swept. *)
let crash_sweep ~max_points ~save ~check =
  Robust.Faults.reset ();
  let n = ref 1 in
  let finished = ref false in
  while not !finished do
    Robust.Faults.arm_fail_nth_write !n;
    (match save () with
    | () -> finished := true
    | exception Robust.Faults.Injected _ -> ());
    Robust.Faults.reset ();
    if not !finished then begin
      check !n;
      incr n;
      if !n > max_points then
        Alcotest.failf "crash sweep did not terminate within %d points" max_points
    end
  done;
  !n - 1

let small_matrix seed = Gen.uniform (Rng.create seed) ~nrows:48 ~ncols:48 ~nnz:220

let test_crash_sweep_model () =
  let model = Waco.Costmodel.create (Rng.create 11) algo in
  let m = small_matrix 1 in
  let input = Waco.Extractor.input_of_coo ~id:"sweep" m in
  let s = Space.sample (Rng.create 2) algo ~dims:[| 48; 48 |] in
  let dir = tmpdir "waco-model-sweep" in
  let path = Filename.concat dir "model.bin" in
  let fresh seed = Waco.Costmodel.create (Rng.create seed) algo in
  (* Phase 1: no previous artifact — a crash at any point must leave a typed
     error, never a half-written loadable file. *)
  let points =
    crash_sweep ~max_points:16
      ~save:(fun () -> Waco.Costmodel.save model path)
      ~check:(fun n ->
        let probe = fresh 99 in
        match Waco.Costmodel.load probe path with
        | () -> Alcotest.failf "crash %d left a loadable partial model" n
        | exception Robust.Load_error _ -> ())
  in
  Alcotest.(check int) "three write points per atomic save" 3 points;
  (* Phase 2: model A is on disk; crashes while saving model B must preserve
     A exactly. *)
  let expect_a = (Waco.Costmodel.predict model input [| s |]).(0) in
  let model_b = fresh 22 in
  let expect_b = (Waco.Costmodel.predict model_b input [| s |]).(0) in
  ignore
    (crash_sweep ~max_points:16
       ~save:(fun () -> Waco.Costmodel.save model_b path)
       ~check:(fun n ->
         let probe = fresh 99 in
         Waco.Costmodel.load probe path;
         Alcotest.(check (float 0.0))
           (Printf.sprintf "crash %d preserved the previous model" n)
           expect_a
           ((Waco.Costmodel.predict probe input [| s |]).(0))));
  (* The sweep's final iteration completed cleanly: B is now on disk. *)
  let probe = fresh 99 in
  Waco.Costmodel.load probe path;
  Alcotest.(check (float 0.0)) "clean save replaced the model" expect_b
    ((Waco.Costmodel.predict probe input [| s |]).(0));
  rm_rf dir

let mk_dataset seed names =
  let r = Rng.create seed in
  let mats =
    List.map (fun nm -> (nm, Gen.uniform r ~nrows:40 ~ncols:40 ~nnz:200)) names
  in
  Waco.Dataset.of_matrices r machine algo mats ~schedules_per_matrix:4
    ~valid_fraction:0.25

let test_crash_sweep_dataset () =
  let data_a = mk_dataset 1 [ "a0"; "a1" ] in
  let data_b = mk_dataset 2 [ "b0"; "b1" ] in
  let dir = tmpdir "waco-ds-sweep" in
  Waco.Dataset_io.save data_a ~dir;
  let count_a = Waco.Dataset.total_tuples data_a in
  ignore
    (crash_sweep ~max_points:32
       ~save:(fun () -> Waco.Dataset_io.save data_b ~dir)
       ~check:(fun n ->
         match
           Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25
             (Rng.create 7)
         with
         | d ->
             Alcotest.(check int)
               (Printf.sprintf "crash %d preserved the previous corpus" n)
               count_a
               (Waco.Dataset.total_tuples d)
         | exception Robust.Load_error _ -> ()
         | exception Waco.Dataset_io.Corrupt _ ->
             Alcotest.failf "crash %d corrupted the corpus in place" n));
  let d =
    Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25 (Rng.create 7)
  in
  Alcotest.(check int) "clean save replaced the corpus"
    (Waco.Dataset.total_tuples data_b)
    (Waco.Dataset.total_tuples d);
  rm_rf dir

let mk_train_model () = Waco.Costmodel.create (Rng.create 31) algo

let test_crash_sweep_checkpoint () =
  let data = mk_dataset 3 [ "c0"; "c1" ] in
  let dir = tmpdir "waco-ckpt-sweep" in
  let points =
    crash_sweep ~max_points:32
      ~save:(fun () ->
        let m = mk_train_model () in
        ignore
          (Waco.Trainer.train ~lr:1e-3
             ~checkpoint:{ Waco.Trainer.dir; every = 1 }
             (Rng.create 7) m data ~epochs:2))
      ~check:(fun n ->
        (* Whatever files a crash left behind must each either validate or
           raise the typed error — the resume scan depends on it. *)
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".ckpt" then begin
              let m = mk_train_model () in
              let adam = Nn.Adam.create ~lr:1e-3 (Waco.Costmodel.params m) in
              match
                Waco.Trainer.load_checkpoint (Filename.concat dir f) m adam
                  (Rng.create 1)
              with
              | _ -> ()
              | exception Robust.Load_error _ -> ()
              | exception e ->
                  Alcotest.failf "crash %d: checkpoint %s raised %s" n f
                    (Printexc.to_string e)
            end)
          (Sys.readdir dir))
  in
  Alcotest.(check int) "two epoch checkpoints, three points each" 6 points;
  rm_rf dir

(* --- checkpoint/resume ------------------------------------------------ *)

(* The acceptance test: kill training mid-run with an injected crash, resume
   from the newest valid checkpoint, and land on the same epoch count with
   the exact curve the uninterrupted run produces (the checkpoint restores
   the RNG state, so the resumed run IS the interrupted run). *)
let test_checkpoint_resume_determinism () =
  let data = mk_dataset 4 [ "d0"; "d1"; "d2" ] in
  let epochs = 3 in
  (* reference: uninterrupted *)
  let m_ref = mk_train_model () in
  let c_ref = Waco.Trainer.train ~lr:1e-3 (Rng.create 7) m_ref data ~epochs in
  (* interrupted: crash inside the epoch-2 checkpoint write (points 1-3 are
     epoch 1's checkpoint, 4-6 epoch 2's) *)
  let dir = tmpdir "waco-resume" in
  let m_int = mk_train_model () in
  Robust.Faults.reset ();
  Robust.Faults.arm_fail_nth_write 5;
  (match
     Waco.Trainer.train ~lr:1e-3
       ~checkpoint:{ Waco.Trainer.dir; every = 1 }
       (Rng.create 7) m_int data ~epochs
   with
  | _ -> Alcotest.fail "expected the injected crash to abort training"
  | exception Robust.Faults.Injected _ -> ());
  Robust.Faults.reset ();
  (* resume with a fresh model and a DIFFERENT rng seed: everything must
     come from the checkpoint *)
  let logs = ref [] in
  let m_res = mk_train_model () in
  let c_res =
    Waco.Trainer.train ~lr:1e-3
      ~log:(fun s -> logs := s :: !logs)
      ~checkpoint:{ Waco.Trainer.dir; every = 1 }
      ~resume:true (Rng.create 999) m_res data ~epochs
  in
  Alcotest.(check bool) "resume announced" true
    (List.exists
       (fun s ->
         String.length s >= 7 && String.sub s 0 7 = "resumed")
       !logs);
  Alcotest.(check (array int)) "same epoch count" c_ref.Waco.Trainer.epochs
    c_res.Waco.Trainer.epochs;
  Alcotest.(check (array (float 0.0))) "train loss curve identical"
    c_ref.Waco.Trainer.train_loss c_res.Waco.Trainer.train_loss;
  Alcotest.(check (array (float 0.0))) "valid loss curve identical"
    c_ref.Waco.Trainer.valid_loss c_res.Waco.Trainer.valid_loss;
  Alcotest.(check (array (float 0.0))) "valid acc curve identical"
    c_ref.Waco.Trainer.valid_acc c_res.Waco.Trainer.valid_acc;
  (* final parameters match the uninterrupted run bit for bit *)
  List.iter2
    (fun p q ->
      Alcotest.(check (array (float 0.0)))
        ("param " ^ p.Nn.Param.name)
        p.Nn.Param.data q.Nn.Param.data)
    (Waco.Costmodel.params m_ref)
    (Waco.Costmodel.params m_res);
  rm_rf dir

let test_resume_skips_corrupt_checkpoint () =
  let data = mk_dataset 5 [ "e0"; "e1" ] in
  let epochs = 2 in
  let dir = tmpdir "waco-skip" in
  let m1 = mk_train_model () in
  let c1 =
    Waco.Trainer.train ~lr:1e-3
      ~checkpoint:{ Waco.Trainer.dir; every = 1 }
      (Rng.create 7) m1 data ~epochs
  in
  (* a corrupt checkpoint that sorts newest *)
  write_raw (Filename.concat dir "ckpt-9999.ckpt") "total garbage\n";
  let logs = ref [] in
  let m2 = mk_train_model () in
  let c2 =
    Waco.Trainer.train ~lr:1e-3
      ~log:(fun s -> logs := s :: !logs)
      ~checkpoint:{ Waco.Trainer.dir; every = 1 }
      ~resume:true (Rng.create 999) m2 data ~epochs
  in
  Alcotest.(check bool) "warned about the corrupt checkpoint" true
    (List.exists
       (fun s ->
         List.exists
           (fun sub ->
             let ls = String.length s and lsub = String.length sub in
             let rec scan i = i + lsub <= ls && (String.sub s i lsub = sub || scan (i + 1)) in
             scan 0)
           [ "skipping invalid checkpoint" ])
       !logs);
  Alcotest.(check (array (float 0.0))) "resumed from the valid one"
    c1.Waco.Trainer.train_loss c2.Waco.Trainer.train_loss;
  rm_rf dir

(* Checkpoint recency must follow the parsed epoch number, not the file-name
   string: zero-padded "%04d" names widen at epoch 10000, and a descending
   string sort then ranks "ckpt-9999" above "ckpt-10000".  Re-label a real
   two-epoch run's checkpoints across that boundary and check the resume
   picks the numerically newest. *)
let test_resume_numeric_sort () =
  let data = mk_dataset 8 [ "g0"; "g1" ] in
  let dir = tmpdir "waco-numsort" in
  let m1 = mk_train_model () in
  ignore
    (Waco.Trainer.train ~lr:1e-3
       ~checkpoint:{ Waco.Trainer.dir; every = 1 }
       (Rng.create 7) m1 data ~epochs:2);
  let rename_ckpt e name =
    let src = Waco.Trainer.checkpoint_file dir e in
    write_raw (Filename.concat dir name) (read_raw src);
    Sys.remove src
  in
  rename_ckpt 1 "ckpt-9999.ckpt";
  rename_ckpt 2 "ckpt-10000.ckpt";
  let logs = ref [] in
  let m2 = mk_train_model () in
  ignore
    (Waco.Trainer.train ~lr:1e-3
       ~log:(fun s -> logs := s :: !logs)
       ~checkpoint:{ Waco.Trainer.dir; every = 1 }
       ~resume:true (Rng.create 999) m2 data ~epochs:2);
  Alcotest.(check bool) "resumed from the numerically newest checkpoint" true
    (List.exists
       (fun s ->
         String.starts_with ~prefix:"resumed" s
         &&
         let sub = "ckpt-10000.ckpt" in
         let ls = String.length s and lsub = String.length sub in
         let rec scan i = i + lsub <= ls && (String.sub s i lsub = sub || scan (i + 1)) in
         scan 0)
       !logs);
  rm_rf dir

let test_resume_empty_dir_starts_fresh () =
  let data = mk_dataset 6 [ "f0" ] in
  let dir = tmpdir "waco-fresh" in
  let logs = ref [] in
  let m = mk_train_model () in
  let c =
    Waco.Trainer.train ~lr:1e-3
      ~log:(fun s -> logs := s :: !logs)
      ~checkpoint:{ Waco.Trainer.dir; every = 1 }
      ~resume:true (Rng.create 7) m data ~epochs:1
  in
  Alcotest.(check int) "trained" 1 (Array.length c.Waco.Trainer.epochs);
  Alcotest.(check bool) "said so" true
    (List.exists
       (fun s -> String.length s >= 2 && String.sub s 0 2 = "no")
       !logs);
  rm_rf dir

(* --- corrupt-corpus recovery ------------------------------------------ *)

let test_dataset_truncated_tail_recovered () =
  let data = mk_dataset 7 [ "g0"; "g1" ] in
  let dir = tmpdir "waco-tail" in
  Waco.Dataset_io.save data ~dir;
  let count = Waco.Dataset.total_tuples data in
  let path = Filename.concat dir "tuples.txt" in
  let raw = read_raw path in
  (* cut the file mid-final-record: drop the trailing newline plus a chunk
     of the last TUPLE line *)
  write_raw path (String.sub raw 0 (String.length raw - 9));
  let reports = ref [] in
  let d =
    Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25
      ~report:(fun s -> reports := s :: !reports)
      (Rng.create 7)
  in
  Alcotest.(check int) "kept every complete record" (count - 1)
    (Waco.Dataset.total_tuples d);
  Alcotest.(check int) "reported the cut" 1 (List.length !reports);
  rm_rf dir

let test_dataset_missing_matrix_skipped () =
  let data = mk_dataset 8 [ "h0"; "h1" ] in
  let dir = tmpdir "waco-miss" in
  Waco.Dataset_io.save data ~dir;
  Sys.remove (Filename.concat dir "h0.mtx");
  let reports = ref [] in
  let d =
    Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25
      ~report:(fun s -> reports := s :: !reports)
      (Rng.create 7)
  in
  (* h0's 4 tuples ride on the missing matrix *)
  Alcotest.(check int) "surviving matrix kept"
    (Waco.Dataset.total_tuples data - 4)
    (Waco.Dataset.total_tuples d);
  Alcotest.(check bool) "reported the skip" true (!reports <> []);
  rm_rf dir

let test_dataset_missing_dir_is_typed () =
  match
    Waco.Dataset_io.load ~dir:"/nonexistent/waco-nowhere" ~algo ~machine
      ~valid_fraction:0.25 (Rng.create 7)
  with
  | _ -> Alcotest.fail "loaded a dataset from nowhere"
  | exception Robust.Load_error (Robust.Missing _) -> ()

let test_dataset_append_doubles () =
  let data = mk_dataset 9 [ "i0"; "i1" ] in
  let dir = tmpdir "waco-append" in
  Waco.Dataset_io.save data ~dir;
  Waco.Dataset_io.append data ~dir;
  let reports = ref [] in
  let d =
    Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25
      ~report:(fun s -> reports := s :: !reports)
      (Rng.create 7)
  in
  Alcotest.(check int) "appended journal doubles the tuples"
    (2 * Waco.Dataset.total_tuples data)
    (Waco.Dataset.total_tuples d);
  Alcotest.(check (list string)) "clean journal" [] !reports;
  (* append onto a fresh directory creates the journal (the --out a/b/c fix) *)
  let dir2 = Filename.concat (tmpdir "waco-append2") "nested/deeper" in
  Waco.Dataset_io.append data ~dir:dir2;
  let d2 =
    Waco.Dataset_io.load ~dir:dir2 ~algo ~machine ~valid_fraction:0.25
      (Rng.create 7)
  in
  Alcotest.(check int) "fresh journal complete"
    (Waco.Dataset.total_tuples data)
    (Waco.Dataset.total_tuples d2);
  rm_rf dir

(* --- model artifacts: typed errors and lint codes --------------------- *)

let test_model_corrupt_load_and_lint () =
  let model = Waco.Costmodel.create (Rng.create 41) algo in
  let dir = tmpdir "waco-modelcorrupt" in
  let path = Filename.concat dir "model.bin" in
  Waco.Costmodel.save model path;
  (* lint: a clean dump has no errors *)
  Alcotest.(check bool) "clean dump lints clean" true
    (List.for_all (fun d -> not (Diag.is_error d)) (Analysis.Model_check.check path));
  (* flip one payload byte *)
  let raw = read_raw path in
  let b = Bytes.of_string raw in
  let off = Bytes.length b - 2 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  write_raw path (Bytes.to_string b);
  (match Waco.Costmodel.load model path with
  | () -> Alcotest.fail "loaded a checksum-mismatched model"
  | exception Robust.Load_error (Robust.Bad_checksum _) -> ());
  (match Analysis.Model_check.check path with
  | [ d ] -> Alcotest.(check string) "lint code" "WACO-A006" (Diag.code d)
  | ds -> Alcotest.failf "expected one A006, got %d diagnostics" (List.length ds));
  (* wrong kind maps to A007 *)
  Robust.write_artifact ~kind:Robust.Kind.index path "whatever\n";
  (match Analysis.Model_check.check path with
  | [ d ] -> Alcotest.(check string) "kind code" "WACO-A007" (Diag.code d)
  | ds -> Alcotest.failf "expected one A007, got %d diagnostics" (List.length ds));
  rm_rf dir

let test_model_legacy_dump_still_loads () =
  let model = Waco.Costmodel.create (Rng.create 43) algo in
  let m = small_matrix 5 in
  let input = Waco.Extractor.input_of_coo ~id:"legacy" m in
  let s = Space.sample (Rng.create 6) algo ~dims:[| 48; 48 |] in
  let before = (Waco.Costmodel.predict model input [| s |]).(0) in
  let dir = tmpdir "waco-legacy" in
  let enveloped = Filename.concat dir "model.bin" in
  let legacy = Filename.concat dir "legacy.bin" in
  Waco.Costmodel.save model enveloped;
  (* strip the envelope: the payload alone is the pre-envelope format *)
  write_raw legacy (Robust.read_artifact_exn ~expected_kind:Robust.Kind.model enveloped);
  let probe = Waco.Costmodel.create (Rng.create 99) algo in
  Waco.Costmodel.load probe legacy;
  Alcotest.(check (float 0.0)) "legacy dump restored" before
    ((Waco.Costmodel.predict probe input [| s |]).(0));
  (* and the lint pass still reads it *)
  Alcotest.(check bool) "legacy dump lints clean" true
    (List.for_all (fun d -> not (Diag.is_error d)) (Analysis.Model_check.check legacy));
  rm_rf dir

(* --- tuner: degradation, retries, index snapshots --------------------- *)

let tuner_fixture () =
  let rng = Rng.create 51 in
  let model = Waco.Costmodel.create rng algo in
  let m = small_matrix 52 in
  let wl = Workload.of_coo ~id:"tunefix" m in
  let input = Waco.Extractor.input_of_coo ~id:"tunefix" m in
  let corpus = Array.init 24 (fun _ -> Space.sample rng algo ~dims:[| 48; 48 |]) in
  let index = Waco.Tuner.build_index rng model corpus in
  (rng, model, wl, input, index)

let test_tune_empty_index_degrades () =
  let rng, model, wl, input, _ = tuner_fixture () in
  let empty = Waco.Tuner.build_index rng model [||] in
  let r = Waco.Tuner.tune model machine wl input empty in
  Alcotest.(check bool) "degraded" true r.Waco.Tuner.degraded;
  Alcotest.(check string) "fixed-CSR fallback"
    (Superschedule.key (Superschedule.fixed_default algo))
    (Superschedule.key r.Waco.Tuner.best);
  Alcotest.(check bool) "carries a reason" true
    (r.Waco.Tuner.degraded_reason <> None)

let test_tune_transient_retry () =
  let _, model, wl, input, index = tuner_fixture () in
  (* two transient hiccups: absorbed by the per-run retries *)
  Robust.Faults.reset ();
  Robust.Faults.arm_transient_measures 2;
  let r =
    Waco.Tuner.tune ~k:4 ~measure_backoff_s:1e-4 model machine wl input index
  in
  Robust.Faults.reset ();
  Alcotest.(check bool) "not degraded" false r.Waco.Tuner.degraded;
  Alcotest.(check int) "no candidate dropped" 0 r.Waco.Tuner.measure_failures;
  Alcotest.(check int) "all candidates measured" 4 r.Waco.Tuner.measured_runs;
  (* a persistently failing measurement rig: every candidate drops, the
     tuner degrades to fixed CSR instead of raising *)
  Robust.Faults.arm_transient_measures max_int;
  let r2 =
    Waco.Tuner.tune ~k:4 ~measure_backoff_s:1e-4 model machine wl input index
  in
  Robust.Faults.reset ();
  Alcotest.(check bool) "degraded" true r2.Waco.Tuner.degraded;
  Alcotest.(check int) "all drops counted" 4 r2.Waco.Tuner.measure_failures;
  Alcotest.(check string) "fixed-CSR fallback"
    (Superschedule.key (Superschedule.fixed_default algo))
    (Superschedule.key r2.Waco.Tuner.best)

let test_index_snapshot_roundtrip () =
  let _, model, wl, input, index = tuner_fixture () in
  let dir = tmpdir "waco-index" in
  let path = Filename.concat dir "hnsw.idx" in
  Waco.Tuner.save_index index path;
  let index' = Waco.Tuner.load_index (Rng.create 77) ~algo path in
  Alcotest.(check int) "corpus size" index.Waco.Tuner.corpus_size
    index'.Waco.Tuner.corpus_size;
  Alcotest.(check int) "lint rejections" index.Waco.Tuner.lint_rejected
    index'.Waco.Tuner.lint_rejected;
  let r = Waco.Tuner.tune model machine wl input index in
  let r' = Waco.Tuner.tune model machine wl input index' in
  Alcotest.(check string) "same winner" (Superschedule.key r.Waco.Tuner.best)
    (Superschedule.key r'.Waco.Tuner.best);
  Alcotest.(check (float 0.0)) "same measured runtime" r.Waco.Tuner.best_measured
    r'.Waco.Tuner.best_measured;
  (* crash sweep over re-snapshotting: the previous snapshot must survive *)
  ignore
    (crash_sweep ~max_points:16
       ~save:(fun () -> Waco.Tuner.save_index index path)
       ~check:(fun n ->
         match Waco.Tuner.load_index (Rng.create 77) ~algo path with
         | i ->
             Alcotest.(check int)
               (Printf.sprintf "crash %d preserved the snapshot" n)
               index.Waco.Tuner.corpus_size i.Waco.Tuner.corpus_size
         | exception Robust.Load_error _ ->
             Alcotest.failf "crash %d destroyed the previous snapshot" n));
  (* a tampered snapshot is a typed error *)
  let raw = read_raw path in
  let b = Bytes.of_string raw in
  Bytes.set b (Bytes.length b / 2) '\xff';
  write_raw path (Bytes.to_string b);
  (match Waco.Tuner.load_index (Rng.create 77) ~algo path with
  | _ -> Alcotest.fail "loaded a tampered index snapshot"
  | exception Robust.Load_error _ -> ());
  rm_rf dir

(* --- HNSW snapshot structural invariants ------------------------------ *)

(* [Hnsw.restore] must reject snapshots whose header disagrees with the node
   table: a wrong [max_level] or an entry point below the top level makes
   every later search silently start mid-graph. *)
let test_hnsw_snapshot_invariants () =
  let rng = Rng.create 11 in
  let h = Anns.Hnsw.create ~dim:4 rng in
  for i = 0 to 63 do
    Anns.Hnsw.insert h (Array.init 4 (fun _ -> Rng.float rng)) i
  done;
  let dump = Anns.Hnsw.dump h ~payload:string_of_int in
  let h' = Anns.Hnsw.restore (Rng.create 12) ~payload:int_of_string dump in
  Alcotest.(check int) "untampered snapshot restores" (Anns.Hnsw.size h)
    (Anns.Hnsw.size h');
  let lines = String.split_on_char '\n' dump in
  let header = List.hd lines in
  let fields = String.split_on_char ' ' header in
  (* "HNSW dim m efc count entry max_level" *)
  let nth n = int_of_string (List.nth fields n) in
  let entry = nth 5 and max_level = nth 6 in
  Alcotest.(check bool) "fixture graph has levels" true (max_level > 0);
  let with_header f =
    String.concat "\n"
      (String.concat " " (f fields) :: List.tl lines)
  in
  let expect_reject label text =
    match Anns.Hnsw.restore (Rng.create 12) ~payload:int_of_string text with
    | _ -> Alcotest.failf "%s: tampered snapshot restored" label
    | exception Anns.Hnsw.Restore_error _ -> ()
  in
  (* header max_level no longer matches the node table's maximum *)
  expect_reject "inflated max_level"
    (with_header
       (List.mapi (fun i f -> if i = 6 then string_of_int (max_level + 1) else f)));
  (* entry redirected to a node below the top level *)
  let level0 =
    let found = ref (-1) and id = ref 0 in
    List.iter
      (fun l ->
        if String.starts_with ~prefix:"N " l then begin
          (match String.split_on_char ' ' l with
          | _ :: lvl :: _ when !found < 0 && lvl = "0" && !id <> entry ->
              found := !id
          | _ -> ());
          incr id
        end)
      lines;
    !found
  in
  Alcotest.(check bool) "fixture has a level-0 node" true (level0 >= 0);
  expect_reject "entry below max_level"
    (with_header
       (List.mapi (fun i f -> if i = 5 then string_of_int level0 else f)))

let () =
  Alcotest.run "robust"
    [
      ( "primitives",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32;
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "atomic write" `Quick test_atomic_write;
          Alcotest.test_case "with_retry" `Quick test_with_retry;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "tamper table" `Quick test_tamper_table;
          Alcotest.test_case "injected corruption" `Quick
            test_injected_corruption_detected;
        ] );
      ( "crash sweeps",
        [
          Alcotest.test_case "model dump" `Slow test_crash_sweep_model;
          Alcotest.test_case "dataset dir" `Slow test_crash_sweep_dataset;
          Alcotest.test_case "checkpoints" `Slow test_crash_sweep_checkpoint;
        ] );
      ( "checkpoint/resume",
        [
          Alcotest.test_case "kill and resume deterministically" `Slow
            test_checkpoint_resume_determinism;
          Alcotest.test_case "corrupt checkpoint skipped" `Slow
            test_resume_skips_corrupt_checkpoint;
          Alcotest.test_case "empty dir starts fresh" `Quick
            test_resume_empty_dir_starts_fresh;
          Alcotest.test_case "numeric checkpoint ordering" `Slow
            test_resume_numeric_sort;
        ] );
      ( "corrupt corpus",
        [
          Alcotest.test_case "truncated tail recovered" `Quick
            test_dataset_truncated_tail_recovered;
          Alcotest.test_case "missing matrix skipped" `Quick
            test_dataset_missing_matrix_skipped;
          Alcotest.test_case "missing dir is typed" `Quick
            test_dataset_missing_dir_is_typed;
          Alcotest.test_case "append journals" `Quick test_dataset_append_doubles;
        ] );
      ( "model artifacts",
        [
          Alcotest.test_case "corrupt dump: typed error + A006" `Quick
            test_model_corrupt_load_and_lint;
          Alcotest.test_case "legacy raw dump accepted" `Quick
            test_model_legacy_dump_still_loads;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "empty index degrades" `Slow
            test_tune_empty_index_degrades;
          Alcotest.test_case "transient retries + degradation" `Slow
            test_tune_transient_retry;
          Alcotest.test_case "index snapshot" `Slow test_index_snapshot_roundtrip;
          Alcotest.test_case "hnsw snapshot invariants" `Quick
            test_hnsw_snapshot_invariants;
        ] );
    ]
