(* Perf-refactor safety net (the @perf alias): the flat kernel-map builder and
   the scratch-buffer layers must be *exactly* the old allocating
   implementations — same pair order, same float-op order, same bytes in a
   trained artifact — while allocating (almost) nothing in steady state. *)

open Sptensor

(* MD5 of the model artifact from the seeded run below, captured on the
   pre-flat-layout implementation.  Recompute with test/print_golden.exe
   after an *intentional* numerics change. *)
let golden_digest = "8cd3ca970730f9836a98a945d7c01d8e"

let rng () = Rng.create 20230325

(* --- kernel-map parity: flat builder vs the retained reference builder --- *)

let encode_pairs ~out_w pairs =
  Array.map (fun (r, c) -> (r * out_w) + c) pairs

(* Flatten a reference map into the CSR shape and compare field by field. *)
let check_map_parity ~what ~ksize ~stride (pairs : (int * int) array) ~h ~w =
  let coords = Array.map (fun (r, c) -> Nn.Smap.encode ~w r c) pairs in
  let flat = Nn.Sparse_conv.build_map ~ksize ~stride coords ~h ~w in
  let refm = Nn.Sparse_conv_ref.build_map ~ksize ~stride pairs ~h ~w in
  Alcotest.(check int) (what ^ ": out_h") refm.Nn.Sparse_conv_ref.out_h flat.Nn.Sparse_conv.out_h;
  Alcotest.(check int) (what ^ ": out_w") refm.Nn.Sparse_conv_ref.out_w flat.Nn.Sparse_conv.out_w;
  Alcotest.(check (array int))
    (what ^ ": out_coords (incl. order)")
    (encode_pairs ~out_w:refm.Nn.Sparse_conv_ref.out_w refm.Nn.Sparse_conv_ref.out_coords)
    flat.Nn.Sparse_conv.out_coords;
  let nk = ksize * ksize in
  Alcotest.(check int)
    (what ^ ": total pairs")
    (Array.fold_left (fun a b -> a + Array.length b) 0 refm.Nn.Sparse_conv_ref.pairs)
    (Nn.Sparse_conv.map_npairs flat);
  for off = 0 to nk - 1 do
    let seg_start = flat.Nn.Sparse_conv.off_start.(off) in
    let seg_len = flat.Nn.Sparse_conv.off_start.(off + 1) - seg_start in
    let ref_seg = refm.Nn.Sparse_conv_ref.pairs.(off) in
    Alcotest.(check int)
      (Printf.sprintf "%s: offset %d segment length" what off)
      (Array.length ref_seg) seg_len;
    for p = 0 to seg_len - 1 do
      let ri, ro = ref_seg.(p) in
      if
        ri <> flat.Nn.Sparse_conv.pairs_in.(seg_start + p)
        || ro <> flat.Nn.Sparse_conv.pairs_out.(seg_start + p)
      then
        Alcotest.failf "%s: offset %d pair %d: ref (%d,%d) vs flat (%d,%d)" what
          off p ri ro
          flat.Nn.Sparse_conv.pairs_in.(seg_start + p)
          flat.Nn.Sparse_conv.pairs_out.(seg_start + p)
    done
  done

let random_pattern r ~h ~w ~n =
  (* Distinct random coordinates, insertion order preserved (the builder is
     order-sensitive, so parity must hold for arbitrary site orderings). *)
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] and count = ref 0 in
  let attempts = ref 0 in
  while !count < n && !attempts < 50 * n do
    incr attempts;
    let p = (Rng.int r h, Rng.int r w) in
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      out := p :: !out;
      incr count
    end
  done;
  Array.of_list (List.rev !out)

let test_map_parity_random () =
  let r = rng () in
  List.iter
    (fun (h, w, n) ->
      let pairs = random_pattern r ~h ~w ~n in
      List.iter
        (fun (ksize, stride) ->
          check_map_parity
            ~what:(Printf.sprintf "%dx%d n=%d k=%d s=%d" h w n ksize stride)
            ~ksize ~stride pairs ~h ~w)
        [ (3, 1); (3, 2); (5, 1); (5, 2) ])
    [ (16, 16, 40); (64, 64, 300); (37, 53, 200); (128, 8, 150) ]

let test_map_parity_edges () =
  (* Edge rows/columns and odd widths under stride 2: window cells just past
     the grid can halve onto in-grid output columns — the case that forces
     the widened probe-key stride in the flat builder. *)
  let full h w = Array.concat (List.init h (fun r -> Array.init w (fun c -> (r, c)))) in
  check_map_parity ~what:"full 5x5 s2" ~ksize:3 ~stride:2 (full 5 5) ~h:5 ~w:5;
  check_map_parity ~what:"full 5x5 k5 s2" ~ksize:5 ~stride:2 (full 5 5) ~h:5 ~w:5;
  check_map_parity ~what:"full 7x3 s2" ~ksize:3 ~stride:2 (full 7 3) ~h:7 ~w:3;
  check_map_parity ~what:"last col only" ~ksize:3 ~stride:2
    (Array.init 6 (fun r -> (r, 4))) ~h:6 ~w:5;
  check_map_parity ~what:"last row only" ~ksize:5 ~stride:2
    (Array.init 5 (fun c -> (5, c))) ~h:6 ~w:5;
  check_map_parity ~what:"single site" ~ksize:3 ~stride:2 [| (4, 4) |] ~h:5 ~w:5;
  check_map_parity ~what:"1x1 grid" ~ksize:3 ~stride:1 [| (0, 0) |] ~h:1 ~w:1;
  check_map_parity ~what:"empty" ~ksize:3 ~stride:2 [||] ~h:8 ~w:8

(* --- forward/backward parity: scratch implementation vs reference --- *)

let test_conv_numeric_parity () =
  let r = rng () in
  let h = 32 and w = 32 in
  let pairs = random_pattern r ~h ~w ~n:120 in
  let n = Array.length pairs in
  let ch = 4 in
  let conv = Nn.Sparse_conv.create r ~name:"p" ~in_ch:ch ~out_ch:ch ~ksize:3 ~stride:2 in
  let feats = Array.init (n * ch) (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let input = Nn.Smap.of_pairs ~h ~w ~channels:ch pairs feats in
  let out = Nn.Sparse_conv.forward conv input in
  let refm = Nn.Sparse_conv_ref.build_map ~ksize:3 ~stride:2 pairs ~h ~w in
  let ref_out =
    Nn.Sparse_conv_ref.forward_feats refm ~in_ch:ch ~out_ch:ch
      ~w:conv.Nn.Sparse_conv.w.Nn.Param.data ~b:conv.Nn.Sparse_conv.b.Nn.Param.data
      feats
  in
  let n_out = Nn.Smap.nsites out in
  Alcotest.(check int) "site count" (Array.length refm.Nn.Sparse_conv_ref.out_coords) n_out;
  for i = 0 to (n_out * ch) - 1 do
    if out.Nn.Smap.feats.(i) <> ref_out.(i) then
      Alcotest.failf "forward feat %d: flat %.17g vs ref %.17g" i
        out.Nn.Smap.feats.(i) ref_out.(i)
  done;
  (* backward: same dW/db/din bit for bit *)
  let dout = Array.init (n_out * ch) (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let din = Nn.Sparse_conv.backward conv dout in
  let wgrad = Array.make (Array.length conv.Nn.Sparse_conv.w.Nn.Param.data) 0.0 in
  let bgrad = Array.make ch 0.0 in
  let ref_din =
    Nn.Sparse_conv_ref.backward_feats refm ~in_ch:ch ~out_ch:ch
      ~w:conv.Nn.Sparse_conv.w.Nn.Param.data ~wgrad ~bgrad ~input_feats:feats
      ~nsites_in:n dout
  in
  for i = 0 to (n * ch) - 1 do
    if din.(i) <> ref_din.(i) then
      Alcotest.failf "din %d: flat %.17g vs ref %.17g" i din.(i) ref_din.(i)
  done;
  Array.iteri
    (fun i g ->
      if g <> conv.Nn.Sparse_conv.w.Nn.Param.grad.(i) then
        Alcotest.failf "wgrad %d diverges" i)
    wgrad;
  Array.iteri
    (fun i g ->
      if g <> conv.Nn.Sparse_conv.b.Nn.Param.grad.(i) then
        Alcotest.failf "bgrad %d diverges" i)
    bgrad

(* --- gradchecks through reused scratch buffers --- *)

let gradcheck ~loss_of ~params ~entries_per_param ~tolerance =
  let eps = 1e-6 in
  let bad = ref [] in
  List.iter
    (fun (p : Nn.Param.t) ->
      let n = Nn.Param.size p in
      for t = 0 to min (entries_per_param - 1) (n - 1) do
        let idx = t * 7919 mod n in
        let orig = p.Nn.Param.data.(idx) in
        p.Nn.Param.data.(idx) <- orig +. eps;
        let lp = loss_of () in
        p.Nn.Param.data.(idx) <- orig -. eps;
        let lm = loss_of () in
        p.Nn.Param.data.(idx) <- orig;
        let fd = (lp -. lm) /. (2.0 *. eps) in
        let an = p.Nn.Param.grad.(idx) in
        let rel =
          Float.abs (fd -. an)
          /. Float.max 1e-4 (Float.max (Float.abs fd) (Float.abs an))
        in
        if rel > tolerance then bad := (p.Nn.Param.name, idx, fd, an) :: !bad
      done)
    params;
  !bad

(* The scratch-shrink case: run a BIG input through the layer (growing its
   buffers), then gradcheck on a SMALL input.  Stale slack beyond the valid
   prefix must not leak into outputs or gradients. *)
let test_conv_gradcheck_after_shrink () =
  let r = rng () in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:1 ~out_ch:3 ~ksize:3 ~stride:1 in
  let big_pairs = random_pattern r ~h:24 ~w:24 ~n:200 in
  let big =
    Nn.Smap.of_pairs ~h:24 ~w:24 ~channels:1 big_pairs
      (Array.init 200 (fun _ -> Rng.float_in r 0.5 2.0))
  in
  ignore (Nn.Sparse_conv.forward conv big);
  ignore (Nn.Sparse_conv.backward conv (Array.make (200 * 3) 1.0));
  Array.fill conv.Nn.Sparse_conv.w.Nn.Param.grad 0
    (Array.length conv.Nn.Sparse_conv.w.Nn.Param.grad) 0.0;
  Array.fill conv.Nn.Sparse_conv.b.Nn.Param.grad 0 3 0.0;
  let small =
    Nn.Smap.of_pairs ~h:4 ~w:4 ~channels:1
      [| (0, 0); (1, 1); (2, 3); (3, 2) |]
      [| 1.0; -0.5; 0.3; 0.8 |]
  in
  let loss_of () =
    let out = Nn.Sparse_conv.forward conv small in
    let acc = ref 0.0 in
    for i = 0 to (Nn.Smap.nsites out * 3) - 1 do
      acc := !acc +. (0.5 *. out.Nn.Smap.feats.(i) *. out.Nn.Smap.feats.(i))
    done;
    !acc
  in
  let out = Nn.Sparse_conv.forward conv small in
  let dout = Array.sub out.Nn.Smap.feats 0 (Nn.Smap.nsites out * 3) in
  ignore (Nn.Sparse_conv.backward conv dout);
  let bad =
    gradcheck ~loss_of ~params:(Nn.Sparse_conv.params conv) ~entries_per_param:8
      ~tolerance:1e-3
  in
  Alcotest.(check int) "no bad grads after buffer shrink" 0 (List.length bad)

let test_linear_gradcheck_after_shrink () =
  let r = rng () in
  let l = Nn.Linear.create r ~name:"l" ~in_dim:5 ~out_dim:4 in
  let big = Array.init (12 * 5) (fun _ -> Rng.float_in r (-1.0) 1.0) in
  ignore (Nn.Linear.forward l ~batch:12 big);
  ignore (Nn.Linear.backward l (Array.make (12 * 4) 1.0));
  Array.fill l.Nn.Linear.w.Nn.Param.grad 0 20 0.0;
  Array.fill l.Nn.Linear.b.Nn.Param.grad 0 4 0.0;
  let input = Array.init 15 (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let loss_of () =
    let out = Nn.Linear.forward l ~batch:3 input in
    let acc = ref 0.0 in
    for i = 0 to (3 * 4) - 1 do
      acc := !acc +. (0.5 *. out.(i) *. out.(i))
    done;
    !acc
  in
  let out = Nn.Linear.forward l ~batch:3 input in
  ignore (Nn.Linear.backward l (Array.sub out 0 12));
  let bad =
    gradcheck ~loss_of ~params:(Nn.Linear.params l) ~entries_per_param:8
      ~tolerance:1e-3
  in
  Alcotest.(check int) "no bad grads after buffer shrink" 0 (List.length bad)

(* --- extractor determinism across alternating inputs ---

   Scratch reuse must be invisible: interleaving forwards of two different
   patterns on one extractor must reproduce each pattern's feature bit for
   bit. *)
let test_extractor_scratch_isolation () =
  let r = rng () in
  let e = Waco.Extractor.create r Waco.Extractor.Waconet in
  let m1 = Gen.uniform r ~nrows:80 ~ncols:80 ~nnz:400 in
  let m2 = Gen.rmat r ~nnz:700 ~nrows:128 ~ncols:128 in
  let i1 = Waco.Extractor.input_of_coo ~id:"a" m1 in
  let i2 = Waco.Extractor.input_of_coo ~id:"b" m2 in
  let f1 = Waco.Extractor.forward e i1 in
  let f2 = Waco.Extractor.forward e i2 in
  let f1' = Waco.Extractor.forward e i1 in
  let f2' = Waco.Extractor.forward e i2 in
  Alcotest.(check bool) "pattern 1 reproducible" true (f1 = f1');
  Alcotest.(check bool) "pattern 2 reproducible" true (f2 = f2');
  Alcotest.(check bool) "patterns distinct" true (f1 <> f2)

(* --- steady-state allocation budget ---

   A conv forward over a cached kernel map must allocate only the result's
   Smap record — no per-site or per-pair garbage.  The budget is generous
   (the record itself is ~6 words); the old implementation allocated
   ~850 KB on this shape. *)
let alloc_budget_bytes = 2048.0

let test_conv_forward_alloc_budget () =
  let r = rng () in
  let h = 64 and w = 64 in
  let pairs = random_pattern r ~h ~w ~n:600 in
  let ch = Waco.Config.channels in
  let conv = Nn.Sparse_conv.create r ~name:"a" ~in_ch:ch ~out_ch:ch ~ksize:3 ~stride:1 in
  let coords = Array.map (fun (rr, cc) -> Nn.Smap.encode ~w rr cc) pairs in
  let map = Nn.Sparse_conv.build_map ~ksize:3 ~stride:1 coords ~h ~w in
  let feats = Array.init (Array.length pairs * ch) (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let input = Nn.Smap.of_pairs ~h ~w ~channels:ch pairs feats in
  for _ = 1 to 3 do
    ignore (Nn.Sparse_conv.forward_with_map conv map input)
  done;
  let iters = 20 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (Nn.Sparse_conv.forward_with_map conv map input)
  done;
  let per_iter = (Gc.allocated_bytes () -. a0) /. float_of_int iters in
  if per_iter > alloc_budget_bytes then
    Alcotest.failf "conv forward allocates %.0f B/call (budget %.0f)" per_iter
      alloc_budget_bytes

let test_conv_backward_alloc_budget () =
  let r = rng () in
  let h = 64 and w = 64 in
  let pairs = random_pattern r ~h ~w ~n:600 in
  let ch = Waco.Config.channels in
  let conv = Nn.Sparse_conv.create r ~name:"a" ~in_ch:ch ~out_ch:ch ~ksize:3 ~stride:1 in
  let coords = Array.map (fun (rr, cc) -> Nn.Smap.encode ~w rr cc) pairs in
  let map = Nn.Sparse_conv.build_map ~ksize:3 ~stride:1 coords ~h ~w in
  let feats = Array.init (Array.length pairs * ch) (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let input = Nn.Smap.of_pairs ~h ~w ~channels:ch pairs feats in
  let dout = Array.make (Array.length pairs * ch) 0.5 in
  let step () =
    ignore (Nn.Sparse_conv.forward_with_map conv map input);
    ignore (Nn.Sparse_conv.backward conv dout)
  in
  for _ = 1 to 3 do step () done;
  let iters = 20 in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do step () done;
  let per_iter = (Gc.allocated_bytes () -. a0) /. float_of_int iters in
  if per_iter > alloc_budget_bytes then
    Alcotest.failf "conv forward+backward allocates %.0f B/call (budget %.0f)"
      per_iter alloc_budget_bytes

(* --- golden artifact byte-identity ---

   A short fully-seeded training run must save exactly the same bytes as the
   pre-refactor implementation: float accumulation order through flat maps,
   scratch layers, Int/Float.compare sorts and the HNSW descent cache is
   unchanged.  Recipe mirrors test/print_golden.ml. *)
let test_golden_artifact_digest () =
  let machine = Machine_model.Machine.intel_like in
  let algo = Schedule.Algorithm.Spmm 8 in
  let trng = Rng.create 4242 in
  let mats =
    Gen.suite trng ~count:4 ~max_dim:96 ~max_nnz:2000
    |> List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix))
  in
  let data =
    Waco.Dataset.of_matrices trng machine algo mats ~schedules_per_matrix:6
      ~valid_fraction:0.25
  in
  let model = Waco.Costmodel.create (Rng.create 77) algo in
  let _curve = Waco.Trainer.train trng model data ~epochs:2 in
  let digest = Digest.to_hex (Digest.string (Waco.Costmodel.dump_params model)) in
  Alcotest.(check string) "seeded artifact digest" golden_digest digest

let () =
  Alcotest.run "perf"
    [
      ( "kernel-map parity",
        [
          Alcotest.test_case "random patterns" `Quick test_map_parity_random;
          Alcotest.test_case "edge cases" `Quick test_map_parity_edges;
          Alcotest.test_case "conv numeric parity" `Quick test_conv_numeric_parity;
        ] );
      ( "scratch buffers",
        [
          Alcotest.test_case "conv gradcheck after shrink" `Quick
            test_conv_gradcheck_after_shrink;
          Alcotest.test_case "linear gradcheck after shrink" `Quick
            test_linear_gradcheck_after_shrink;
          Alcotest.test_case "extractor scratch isolation" `Quick
            test_extractor_scratch_isolation;
        ] );
      ( "allocation budget",
        [
          Alcotest.test_case "conv forward" `Quick test_conv_forward_alloc_budget;
          Alcotest.test_case "conv forward+backward" `Quick
            test_conv_backward_alloc_budget;
        ] );
      ( "byte identity",
        [ Alcotest.test_case "golden artifact" `Slow test_golden_artifact_digest ] );
    ]
