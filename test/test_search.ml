(* Black-box optimizer tests: budget obedience, improvement over time, and
   superiority over pure random on a structured objective. *)

open Sptensor
open Schedule

let rng () = Rng.create 55

let algo = Algorithm.Spmm 8

let dims = [| 256; 256 |]

(* A synthetic, structured objective: rewards CSR-like concordance and a
   specific chunk — cheap, deterministic, and informative. *)
let objective (s : Superschedule.t) =
  let fixed = Superschedule.fixed_default algo in
  let dist = ref 0.0 in
  if s.Superschedule.compute_order <> fixed.Superschedule.compute_order then
    dist := !dist +. 1.0;
  if s.Superschedule.a_order <> fixed.Superschedule.a_order then dist := !dist +. 1.0;
  if s.Superschedule.a_formats <> fixed.Superschedule.a_formats then dist := !dist +. 0.5;
  dist := !dist +. Float.abs (log (float_of_int s.Superschedule.chunk /. 16.0));
  !dist

let run_strategy f =
  let r = rng () in
  f r algo ~dims ~eval:objective ~budget:300

let test_budget_respected () =
  List.iter
    (fun (r : Blackbox.Blackbox_common.result) ->
      Alcotest.(check int) "trials = budget" 300 r.Blackbox.Blackbox_common.trials;
      Alcotest.(check int) "history length" 300
        (Array.length r.Blackbox.Blackbox_common.history))
    [
      run_strategy (fun r -> Blackbox.Strategies.random_search r);
      run_strategy (fun r -> Blackbox.Strategies.tpe r);
      run_strategy (fun r -> Blackbox.Strategies.bandit r);
    ]

let test_history_monotone () =
  List.iter
    (fun (r : Blackbox.Blackbox_common.result) ->
      let prev = ref infinity in
      Array.iter
        (fun (_, best) ->
          Alcotest.(check bool) "best-so-far non-increasing" true (best <= !prev);
          prev := best)
        r.Blackbox.Blackbox_common.history;
      Alcotest.(check (float 1e-12)) "final best matches" r.Blackbox.Blackbox_common.best_cost !prev)
    [
      run_strategy (fun r -> Blackbox.Strategies.random_search r);
      run_strategy (fun r -> Blackbox.Strategies.tpe r);
      run_strategy (fun r -> Blackbox.Strategies.bandit r);
    ]

let test_adaptive_beats_random () =
  (* Average over several seeds to damp noise. *)
  let avg f =
    let acc = ref 0.0 in
    for seed = 1 to 5 do
      let r = Rng.create seed in
      let res = f r algo ~dims ~eval:objective ~budget:250 in
      acc := !acc +. res.Blackbox.Blackbox_common.best_cost
    done;
    !acc /. 5.0
  in
  let rand = avg (fun r -> Blackbox.Strategies.random_search r) in
  let tpe = avg (fun r -> Blackbox.Strategies.tpe r) in
  let bandit = avg (fun r -> Blackbox.Strategies.bandit r) in
  Alcotest.(check bool)
    (Printf.sprintf "tpe (%.3f) <= random (%.3f)" tpe rand)
    true (tpe <= rand +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "bandit (%.3f) <= random (%.3f)" bandit rand)
    true (bandit <= rand +. 1e-9)

let test_eval_caching () =
  let calls = ref 0 in
  let be =
    Blackbox.Blackbox_common.make_eval (fun _ ->
        incr calls;
        1.0)
  in
  let s = Superschedule.fixed_default algo in
  ignore (Blackbox.Blackbox_common.run_eval be s);
  ignore (Blackbox.Blackbox_common.run_eval be s);
  Alcotest.(check int) "second eval cached" 1 !calls

let test_proposals_valid () =
  let r = rng () in
  let res = Blackbox.Strategies.tpe r algo ~dims ~eval:objective ~budget:100 in
  Superschedule.validate res.Blackbox.Blackbox_common.best;
  let res2 = Blackbox.Strategies.bandit r algo ~dims ~eval:objective ~budget:100 in
  Superschedule.validate res2.Blackbox.Blackbox_common.best

let () =
  Alcotest.run "search"
    [
      ( "strategies",
        [
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "adaptive beats random" `Slow test_adaptive_beats_random;
          Alcotest.test_case "eval caching" `Quick test_eval_caching;
          Alcotest.test_case "proposals valid" `Quick test_proposals_valid;
        ] );
    ]
