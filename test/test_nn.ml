(* NN substrate tests: shapes, gradient checks against finite differences,
   optimizer behaviour, sparse-conv semantics. *)

open Sptensor

let rng () = Rng.create 1717

(* Finite-difference gradient check over a loss closure; analytic grads must
   already be accumulated in [params].  Uses a smooth loss (sum of squares)
   to avoid ReLU-kink false positives. *)
let gradcheck ~loss_of ~params ~entries_per_param ~tolerance =
  let eps = 1e-6 in
  let bad = ref [] in
  List.iter
    (fun (p : Nn.Param.t) ->
      let n = Nn.Param.size p in
      for t = 0 to min (entries_per_param - 1) (n - 1) do
        let idx = t * 7919 mod n in
        let orig = p.Nn.Param.data.(idx) in
        p.Nn.Param.data.(idx) <- orig +. eps;
        let lp = loss_of () in
        p.Nn.Param.data.(idx) <- orig -. eps;
        let lm = loss_of () in
        p.Nn.Param.data.(idx) <- orig;
        let fd = (lp -. lm) /. (2.0 *. eps) in
        let an = p.Nn.Param.grad.(idx) in
        let rel =
          Float.abs (fd -. an) /. Float.max 1e-4 (Float.max (Float.abs fd) (Float.abs an))
        in
        if rel > tolerance then bad := (p.Nn.Param.name, idx, fd, an) :: !bad
      done)
    params;
  !bad

let test_linear_forward_known () =
  let r = rng () in
  let l = Nn.Linear.create r ~name:"l" ~in_dim:2 ~out_dim:1 in
  l.Nn.Linear.w.Nn.Param.data.(0) <- 2.0;
  l.Nn.Linear.w.Nn.Param.data.(1) <- -1.0;
  l.Nn.Linear.b.Nn.Param.data.(0) <- 0.5;
  let out = Nn.Linear.forward l ~batch:2 [| 1.0; 1.0; 3.0; 0.0 |] in
  Alcotest.(check (float 1e-12)) "row 0" 1.5 out.(0);
  Alcotest.(check (float 1e-12)) "row 1" 6.5 out.(1)

let test_linear_gradcheck () =
  let r = rng () in
  let l = Nn.Linear.create r ~name:"l" ~in_dim:5 ~out_dim:4 in
  let input = Array.init 15 (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let loss_of () =
    let out = Nn.Linear.forward l ~batch:3 input in
    Array.fold_left (fun a v -> a +. (0.5 *. v *. v)) 0.0 out
  in
  let out = Nn.Linear.forward l ~batch:3 input in
  ignore (Nn.Linear.backward l (Array.copy out));
  let bad =
    gradcheck ~loss_of ~params:(Nn.Linear.params l) ~entries_per_param:8
      ~tolerance:1e-3
  in
  Alcotest.(check int) "no bad grads" 0 (List.length bad)

let test_linear_input_grad () =
  let r = rng () in
  let l = Nn.Linear.create r ~name:"l" ~in_dim:3 ~out_dim:2 in
  let input = [| 0.3; -0.2; 0.9 |] in
  let out = Nn.Linear.forward l ~batch:1 input in
  let din = Nn.Linear.backward l (Array.copy out) in
  (* finite differences on the input *)
  let eps = 1e-6 in
  Array.iteri
    (fun i _ ->
      let x = Array.copy input in
      x.(i) <- x.(i) +. eps;
      let lp = Array.fold_left (fun a v -> a +. (0.5 *. v *. v)) 0.0 (Nn.Linear.forward l ~batch:1 x) in
      x.(i) <- x.(i) -. (2.0 *. eps);
      let lm = Array.fold_left (fun a v -> a +. (0.5 *. v *. v)) 0.0 (Nn.Linear.forward l ~batch:1 x) in
      let fd = (lp -. lm) /. (2.0 *. eps) in
      Alcotest.(check (float 1e-3)) "din matches fd" fd din.(i))
    input

let test_mlp_gradcheck () =
  let r = rng () in
  let m = Nn.Mlp.create r ~name:"m" ~dims:[| 6; 8; 3 |] ~final_relu:false in
  let input = Array.init 12 (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let loss_of () =
    let out = Nn.Mlp.forward m ~batch:2 input in
    Array.fold_left (fun a v -> a +. (0.5 *. v *. v)) 0.0 out
  in
  let out = Nn.Mlp.forward m ~batch:2 input in
  ignore (Nn.Mlp.backward m (Array.copy out));
  (* ReLU kinks can fire: allow a couple of bad entries but not systematic. *)
  let bad = gradcheck ~loss_of ~params:(Nn.Mlp.params m) ~entries_per_param:6 ~tolerance:1e-2 in
  Alcotest.(check bool) "almost no bad grads" true (List.length bad <= 1)

let test_relu_mask () =
  let act = Nn.Act.relu_create () in
  let out = Nn.Act.relu_forward act [| -1.0; 2.0; 0.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "relu fwd" [| 0.0; 2.0; 0.0; 3.0 |] out;
  let din = Nn.Act.relu_backward act [| 1.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "relu bwd" [| 0.0; 1.0; 0.0; 1.0 |] din

let test_adam_decreases_loss () =
  let r = rng () in
  let m = Nn.Mlp.create r ~name:"m" ~dims:[| 4; 16; 1 |] ~final_relu:false in
  let adam = Nn.Adam.create ~lr:1e-2 (Nn.Mlp.params m) in
  let input = Array.init 40 (fun _ -> Rng.float_in r (-1.0) 1.0) in
  let target = Array.init 10 (fun i -> input.(i * 4) *. 2.0) in
  let loss_and_step () =
    let out = Nn.Mlp.forward m ~batch:10 input in
    let dout = Array.mapi (fun i v -> v -. target.(i)) out in
    let loss = Array.fold_left (fun a d -> a +. (0.5 *. d *. d)) 0.0 dout in
    ignore (Nn.Mlp.backward m dout);
    Nn.Adam.step adam;
    loss
  in
  let first = loss_and_step () in
  let last = ref first in
  for _ = 1 to 200 do
    last := loss_and_step ()
  done;
  Alcotest.(check bool) "loss decreased 5x" true (!last < first /. 5.0)

(* --- Sparse conv --- *)

let smap_of coords h w channels feats = Nn.Smap.of_pairs ~h ~w ~channels coords feats

let test_sparse_conv_identity_kernel () =
  let r = rng () in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:1 ~out_ch:1 ~ksize:3 ~stride:1 in
  (* Zero all weights except the center, set to 1: identity convolution. *)
  Array.fill conv.Nn.Sparse_conv.w.Nn.Param.data 0
    (Array.length conv.Nn.Sparse_conv.w.Nn.Param.data) 0.0;
  conv.Nn.Sparse_conv.w.Nn.Param.data.(4) <- 1.0;
  Array.fill conv.Nn.Sparse_conv.b.Nn.Param.data 0 1 0.0;
  let input = smap_of [| (0, 0); (2, 3); (5, 5) |] 6 6 1 [| 1.0; 2.0; 3.0 |] in
  let out = Nn.Sparse_conv.forward conv input in
  Alcotest.(check int) "submanifold: same sites" 3 (Nn.Smap.nsites out);
  Alcotest.(check (array (float 1e-12))) "identity" [| 1.0; 2.0; 3.0 |] out.Nn.Smap.feats

let test_sparse_conv_neighbors () =
  let r = rng () in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:1 ~out_ch:1 ~ksize:3 ~stride:1 in
  (* All-ones kernel, zero bias: each output = sum of 3x3 neighbourhood. *)
  Array.fill conv.Nn.Sparse_conv.w.Nn.Param.data 0 9 1.0;
  Array.fill conv.Nn.Sparse_conv.b.Nn.Param.data 0 1 0.0;
  let input = smap_of [| (1, 1); (1, 2); (2, 1) |] 4 4 1 [| 1.0; 1.0; 1.0 |] in
  let out = Nn.Sparse_conv.forward conv input in
  (* site (1,1) sees all three; sites (1,2) and (2,1) see (1,1) and themselves
     and each other (diagonal adjacency of (1,2)-(2,1)) *)
  Alcotest.(check (array (float 1e-12))) "neighbour sums" [| 3.0; 3.0; 3.0 |]
    out.Nn.Smap.feats

let test_sparse_conv_stride2_sites () =
  let r = rng () in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:2 ~out_ch:2 ~ksize:3 ~stride:2 in
  let input =
    smap_of [| (0, 0); (0, 1); (1, 0); (7, 7) |] 8 8 2 (Array.make 8 1.0)
  in
  let out = Nn.Sparse_conv.forward conv input in
  (* halved coords: (0,0) x3 -> (0,0); (7,7) -> (3,3) *)
  Alcotest.(check int) "stride-2 site count" 2 (Nn.Smap.nsites out);
  Alcotest.(check int) "grid halved" 4 out.Nn.Smap.h

let test_sparse_conv_gradcheck_deep () =
  let r = rng () in
  let conv1 = Nn.Sparse_conv.create r ~name:"c1" ~in_ch:1 ~out_ch:3 ~ksize:3 ~stride:1 in
  let conv2 = Nn.Sparse_conv.create r ~name:"c2" ~in_ch:3 ~out_ch:3 ~ksize:3 ~stride:2 in
  let input = smap_of [| (0, 0); (1, 1); (2, 3); (3, 2) |] 4 4 1 [| 1.0; -0.5; 0.3; 0.8 |] in
  let loss_of () =
    let a = Nn.Sparse_conv.forward conv1 input in
    let b = Nn.Sparse_conv.forward conv2 a in
    Array.fold_left (fun acc v -> acc +. (0.5 *. v *. v)) 0.0 b.Nn.Smap.feats
  in
  let a = Nn.Sparse_conv.forward conv1 input in
  let b = Nn.Sparse_conv.forward conv2 a in
  let db = Nn.Sparse_conv.backward conv2 (Array.copy b.Nn.Smap.feats) in
  ignore (Nn.Sparse_conv.backward conv1 db);
  let bad =
    gradcheck ~loss_of
      ~params:(Nn.Sparse_conv.params conv1 @ Nn.Sparse_conv.params conv2)
      ~entries_per_param:6 ~tolerance:1e-3
  in
  Alcotest.(check int) "no bad grads in conv stack" 0 (List.length bad)

(* Regression: [forward] must snapshot the input features it will need for
   dW.  A caller that reuses (and overwrites) its feature buffer between
   forward and backward must not corrupt the weight gradient — with the old
   by-reference cache, the scribbled values below would leak into dW and the
   finite-difference check would explode. *)
let test_sparse_conv_caller_mutates_input () =
  let r = rng () in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:1 ~out_ch:2 ~ksize:3 ~stride:1 in
  let coords = [| (0, 0); (1, 1); (2, 3); (3, 2) |] in
  let fresh_input () = smap_of coords 4 4 1 [| 0.7; -0.3; 1.1; 0.4 |] in
  let loss_of () =
    let out = Nn.Sparse_conv.forward conv (fresh_input ()) in
    Array.fold_left (fun a v -> a +. (0.5 *. v *. v)) 0.0 out.Nn.Smap.feats
  in
  let input = fresh_input () in
  let out = Nn.Sparse_conv.forward conv input in
  (* the caller scribbles over its buffer after the forward... *)
  Array.fill input.Nn.Smap.feats 0 (Array.length input.Nn.Smap.feats) 1e9;
  ignore (Nn.Sparse_conv.backward conv (Array.copy out.Nn.Smap.feats));
  (* ...and the analytic gradients still match finite differences *)
  let bad =
    gradcheck ~loss_of ~params:(Nn.Sparse_conv.params conv) ~entries_per_param:6
      ~tolerance:1e-3
  in
  Alcotest.(check int) "grads immune to input mutation" 0 (List.length bad)

let test_pool_mean_and_backward () =
  let pool = Nn.Pool.create () in
  let m = smap_of [| (0, 0); (1, 1) |] 2 2 2 [| 1.0; 2.0; 3.0; 4.0 |] in
  let out = Nn.Pool.forward pool m in
  Alcotest.(check (array (float 1e-12))) "mean per channel" [| 2.0; 3.0 |] out;
  let din = Nn.Pool.backward pool [| 1.0; 2.0 |] in
  Alcotest.(check (array (float 1e-12))) "spread" [| 0.5; 1.0; 0.5; 1.0 |] din

let test_smap_site_cap () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:300 ~ncols:300 ~nnz:20000 in
  let s = Nn.Smap.of_coo ~max_sites:1000 m in
  Alcotest.(check int) "capped" 1000 (Nn.Smap.nsites s);
  let s2 = Nn.Smap.of_coo ~max_sites:1000 m in
  Alcotest.(check bool) "cap deterministic" true (s.Nn.Smap.coords = s2.Nn.Smap.coords)

let test_smap_downsample_dense () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:500 ~ncols:500 ~nnz:3000 in
  let d = Nn.Smap.downsample m ~target:16 in
  Alcotest.(check int) "all grid cells are sites" 256 (Nn.Smap.nsites d)

(* --- Loss --- *)

let test_hinge_pairwise () =
  (* pair 0: truth slower-first, predictions wrong order -> loss fires *)
  let truth = [| 1.0; 0.0 |] in
  let loss, dpred = Nn.Loss.pairwise ~truth ~pred:[| 0.0; 0.5 |] () in
  Alcotest.(check (float 1e-12)) "hinge value" 1.5 loss;
  Alcotest.(check bool) "gradient pushes apart" true (dpred.(0) < 0.0 && dpred.(1) > 0.0);
  (* satisfied margin: no loss *)
  let loss2, _ = Nn.Loss.pairwise ~truth ~pred:[| 2.0; 0.5 |] () in
  Alcotest.(check (float 1e-12)) "margin satisfied" 0.0 loss2

let test_hinge_min_gap () =
  let truth = [| 0.01; 0.0 |] in
  let loss, _ = Nn.Loss.pairwise ~min_gap:0.05 ~truth ~pred:[| -1.0; 1.0 |] () in
  Alcotest.(check (float 1e-12)) "tiny gap ignored" 0.0 loss

let test_pair_accuracy () =
  let truth = [| 1.0; 0.0; 1.0; 0.0 |] in
  let acc = Nn.Loss.pair_accuracy ~truth ~pred:[| 2.0; 0.0; 0.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "half right" 0.5 acc

let () =
  Alcotest.run "nn"
    [
      ( "linear",
        [
          Alcotest.test_case "forward known" `Quick test_linear_forward_known;
          Alcotest.test_case "gradcheck" `Quick test_linear_gradcheck;
          Alcotest.test_case "input grad" `Quick test_linear_input_grad;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "gradcheck" `Quick test_mlp_gradcheck;
          Alcotest.test_case "relu" `Quick test_relu_mask;
          Alcotest.test_case "adam learns" `Quick test_adam_decreases_loss;
        ] );
      ( "sparse_conv",
        [
          Alcotest.test_case "identity kernel" `Quick test_sparse_conv_identity_kernel;
          Alcotest.test_case "neighbour sums" `Quick test_sparse_conv_neighbors;
          Alcotest.test_case "stride-2 sites" `Quick test_sparse_conv_stride2_sites;
          Alcotest.test_case "deep gradcheck" `Quick test_sparse_conv_gradcheck_deep;
          Alcotest.test_case "caller mutates input" `Quick
            test_sparse_conv_caller_mutates_input;
          Alcotest.test_case "pooling" `Quick test_pool_mean_and_backward;
          Alcotest.test_case "site cap" `Quick test_smap_site_cap;
          Alcotest.test_case "downsample dense" `Quick test_smap_downsample_dense;
        ] );
      ( "loss",
        [
          Alcotest.test_case "hinge pairwise" `Quick test_hinge_pairwise;
          Alcotest.test_case "min gap" `Quick test_hinge_min_gap;
          Alcotest.test_case "pair accuracy" `Quick test_pair_accuracy;
        ] );
    ]
