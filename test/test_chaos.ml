(* Serving-layer chaos harness: a supervised daemon is killed under load,
   over and over, and every run must end the same way — zero cache
   corruption (the write-through snapshot always re-verifies), zero hung
   clients (every wait is bounded), every in-flight request resolved as an
   answer, a [Busy] shed, an error, or a clean connection drop, and a
   restarted worker comes up warm, answering from the persisted cache
   without a single index traversal.  Alongside the kill loop: unit tests
   for the supervisor's restart/backoff/give-up policy, and deterministic
   serving fault points ([Robust.Faults]) driven in-process — partial
   socket IO, a connection dropped mid-frame, a stuck measurement racing a
   deadline. *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256
let machine = Machine.intel_like

(* --- tmp-dir helpers -------------------------------------------------- *)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Robust.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_file path = In_channel.with_open_text path In_channel.input_all

(* Transport parametrization, mirroring test_serve: WACO_TEST_TRANSPORT=tcp
   (the @tcp alias) reruns the chaos sweeps with every daemon on
   127.0.0.1, the port derived from the would-be socket path's hash —
   subprocess daemons cannot report a kernel-chosen port back. *)
let tcp_transport = Sys.getenv_opt "WACO_TEST_TRANSPORT" = Some "tcp"

let endpoint_in dir name =
  let path = Filename.concat dir name in
  if tcp_transport then
    Printf.sprintf "tcp:127.0.0.1:%d" (20000 + (Hashtbl.hash path mod 20000))
  else path

let endpoint_unbound ep =
  if tcp_transport then
    match Serve.Client.connect ~timeout_s:0.5 ep with
    | c ->
        Serve.Client.close c;
        false
    | exception (Unix.Unix_error _ | Failure _) -> true
  else not (Sys.file_exists ep)

(* --- shared fixture: an untrained (but deterministic) model + index ---- *)

let fixture =
  lazy
    (let model = Waco.Costmodel.create (Rng.create 11) algo in
     let rng = Rng.create 3 in
     let corpus =
       Array.init 32 (fun _ -> Space.sample rng algo ~dims:[| 48; 48 |])
     in
     let index = Waco.Tuner.build_index (Rng.create 7) model corpus in
     (model, index))

let small_matrix seed = Gen.uniform (Rng.create seed) ~nrows:48 ~ncols:48 ~nnz:220

let inline_source m =
  let entries =
    Array.init (Coo.nnz m) (fun k ->
        (m.Coo.rows.(k), m.Coo.cols.(k), m.Coo.vals.(k)))
  in
  Serve.Protocol.Inline { nrows = m.Coo.nrows; ncols = m.Coo.ncols; entries }

(* --- trampolines ------------------------------------------------------ *)
(* OCaml 5 forbids [Unix.fork] once any domain has been spawned, and the
   in-process fault tests below spawn one for their server — so everything
   that forks (the supervisor) runs in a fresh copy of this executable,
   selected by env var before Alcotest takes over. *)

(* Mode 1: a supervised serving daemon.  The supervisor writes each new
   worker's pid to a file; the chaos loop aims its SIGKILLs there. *)
let () =
  match Sys.getenv_opt "WACO_TEST_CHAOS_SOCKET" with
  | None -> ()
  | Some socket ->
      let cache_file = Sys.getenv "WACO_TEST_CHAOS_CACHE" in
      let pidfile = Sys.getenv "WACO_TEST_CHAOS_PIDFILE" in
      let worker () =
        let model, index = Lazy.force fixture in
        let server =
          Serve.Server.create ~cache_file ~k:4 ~ef:16 ~model ~index
            ~index_file:"<fixture>" ~machine ~socket ()
        in
        Serve.Server.run server
      in
      let code =
        match
          Serve.Supervisor.run ~max_restarts:64 ~base_s:0.01 ~max_s:0.05
            ~healthy_s:0.25 ~seed:42
            ~on_spawn:(fun pid ->
              Robust.write_atomic_string pidfile (string_of_int pid))
            worker
        with
        | Serve.Supervisor.Clean | Serve.Supervisor.Stopped -> 0
        | Serve.Supervisor.Gave_up _ -> 3
      in
      exit code

(* Mode 2: supervisor policy unit — a worker that crashes [crashes] times
   (counted in a file across incarnations) before exiting cleanly, under a
   [max_restarts] budget.  Prints the supervisor's verdict. *)
let () =
  match Sys.getenv_opt "WACO_TEST_CHAOS_CRASHER" with
  | None -> ()
  | Some spec ->
      let crashes, max_restarts, counter =
        Scanf.sscanf spec "%d:%d:%s" (fun a b c -> (a, b, c))
      in
      let worker () =
        let n =
          try int_of_string (String.trim (read_file counter)) with _ -> 0
        in
        Robust.write_atomic_string counter (string_of_int (n + 1));
        if n < crashes then failwith "injected crash"
      in
      (match
         Serve.Supervisor.run ~max_restarts ~base_s:0.005 ~max_s:0.02
           ~healthy_s:60.0 ~seed:7 worker
       with
      | Serve.Supervisor.Clean ->
          print_string "clean";
          exit 0
      | Serve.Supervisor.Stopped ->
          print_string "stopped";
          exit 0
      | Serve.Supervisor.Gave_up n ->
          Printf.printf "gave_up %d" n;
          exit 3)

(* --- subprocess plumbing ---------------------------------------------- *)

let spawn_with_env extra =
  let env = Array.append (Unix.environment ()) extra in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let wait_connect path =
  let rec go attempts =
    match Serve.Client.connect ~timeout_s:1.0 path with
    | c -> c
    | exception (Unix.Unix_error _ | Failure _) when attempts > 0 ->
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go 200

(* ====================================================================== *)
(* Supervisor policy                                                      *)
(* ====================================================================== *)

(* A worker that crashes three times is restarted three times (with
   backoff) and then runs to a clean exit: four incarnations total. *)
let test_supervisor_restarts () =
  let dir = tmpdir "waco-chaos-sup" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let counter = Filename.concat dir "count" in
      let out = Filename.concat dir "out" in
      let out_fd =
        Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
      in
      let env =
        Array.append (Unix.environment ())
          [| Printf.sprintf "WACO_TEST_CHAOS_CRASHER=3:10:%s" counter |]
      in
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin out_fd Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      Unix.close out_fd;
      Alcotest.(check bool) "supervisor exits 0 after recovery" true
        (status = Unix.WEXITED 0);
      Alcotest.(check string) "verdict is clean" "clean" (read_file out);
      Alcotest.(check string) "3 crashes + 1 clean run" "4"
        (String.trim (read_file counter)))

(* A worker that never stops crashing exhausts the consecutive-crash budget
   and the supervisor gives up instead of flapping forever. *)
let test_supervisor_gives_up () =
  let dir = tmpdir "waco-chaos-sup" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let counter = Filename.concat dir "count" in
      let out = Filename.concat dir "out" in
      let out_fd =
        Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
      in
      let env =
        Array.append (Unix.environment ())
          [| Printf.sprintf "WACO_TEST_CHAOS_CRASHER=1000:2:%s" counter |]
      in
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin out_fd Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      Unix.close out_fd;
      Alcotest.(check bool) "supervisor exits nonzero" true
        (status = Unix.WEXITED 3);
      Alcotest.(check string) "verdict carries the crash count" "gave_up 3"
        (read_file out);
      Alcotest.(check string) "budget bounds the incarnations" "3"
        (String.trim (read_file counter)))

(* ====================================================================== *)
(* Kill-under-load: the main chaos loop                                   *)
(* ====================================================================== *)

let kill_iterations = 22

let test_kill_under_load () =
  let dir = tmpdir "waco-chaos-kill" in
  let socket = endpoint_in dir "waco.sock" in
  let cache_file = Filename.concat dir "cache.waco" in
  let pidfile = Filename.concat dir "worker.pid" in
  let read_pid () =
    match int_of_string_opt (String.trim (read_file pidfile)) with
    | Some pid when pid > 0 -> Some pid
    | _ -> None
    | exception Sys_error _ -> None
  in
  let sup =
    spawn_with_env
      [|
        "WACO_TEST_CHAOS_SOCKET=" ^ socket;
        "WACO_TEST_CHAOS_CACHE=" ^ cache_file;
        "WACO_TEST_CHAOS_PIDFILE=" ^ pidfile;
      |]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] sup) with Unix.Unix_error _ -> ());
      (* A SIGKILLed supervisor cannot reap its worker; do it here. *)
      (match read_pid () with
      | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ());
      rm_rf dir)
    (fun () ->
      let m = small_matrix 5 in
      let src = inline_source m in
      (* Seed: one measured answer lands in the write-through cache. *)
      (match
         Serve.Client.query_with_retry ~attempts:10 ~base_s:0.05 ~qid:"seed"
           ~socket src
       with
      | Ok a ->
          Alcotest.(check bool) "seed is a full answer" false
            a.Serve.Protocol.degraded
      | Error e -> Alcotest.failf "seeding the cache failed: %s" e);
      Alcotest.(check bool) "write-through snapshot exists" true
        (Sys.file_exists cache_file);
      for i = 1 to kill_iterations do
        (* The pid on file is the worker that just answered (the
           supervisor writes it before the worker starts serving). *)
        let pid =
          match read_pid () with
          | Some pid -> pid
          | None -> Alcotest.failf "iteration %d: no worker pid on file" i
        in
        (* Fire a request and kill the worker while it is in flight.  The
           client must resolve either way — an answer if the response beat
           the kill, or a bounded connection drop — never a hang. *)
        (match Serve.Client.connect ~timeout_s:5.0 socket with
        | c ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                Serve.Client.send c
                  (Serve.Protocol.Query
                     { qid = Printf.sprintf "inflight%d" i; source = src;
                       measure = true; deadline_ms = 0; kernel = None });
                Unix.kill pid Sys.sigkill;
                match Serve.Client.recv ~timeout_s:10.0 c with
                | Serve.Protocol.Answer _ | Serve.Protocol.Busy _
                | Serve.Protocol.Error_msg _ ->
                    ()
                | _ -> Alcotest.failf "iteration %d: unexpected response" i
                | exception (Failure _ | Unix.Unix_error (_, _, _) | End_of_file)
                  ->
                    (* Dropped mid-request: resolved, not hung. *)
                    ())
        | exception (Unix.Unix_error (_, _, _) | Failure _) ->
            (* Lost the connect race against the kill; the worker is (or
               will be) dead either way. *)
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
        (* The supervisor must bring a worker back, and the retrying client
           must get its answer from it — bounded attempts, no hang. *)
        (match
           Serve.Client.query_with_retry ~attempts:10 ~base_s:0.02 ~max_s:0.2
             ~qid:(Printf.sprintf "after%d" i) ~socket src
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "iteration %d: no answer after kill: %s" i e);
        (* Zero corruption, every time: the snapshot on disk re-verifies
           (checksummed envelope) no matter where the kill landed. *)
        match Robust.read_artifact ~expected_kind:Robust.Kind.cache cache_file with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "iteration %d: cache snapshot damaged: %s" i
              (Robust.load_error_to_string e)
      done;
      (* The surviving worker restarted warm: the seeded answer comes from
         its persisted cache, with zero traversals and zero forwards. *)
      let c = wait_connect socket in
      (match Serve.Client.query ~qid:"warm" c src with
      | Ok a ->
          Alcotest.(check bool) "post-restart answer is a cache hit" true
            a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "post-restart query: %s" e);
      (match Serve.Client.stats c with
      | Ok json ->
          Alcotest.(check (option int)) "0 traversals after restart" (Some 0)
            (Serve.Metrics.json_counter json "traversals");
          Alcotest.(check (option int)) "0 forwards after restart" (Some 0)
            (Serve.Metrics.json_counter json "extractor_forwards")
      | Error e -> Alcotest.failf "post-restart stats: %s" e);
      (* Clean shutdown rides through the supervisor: worker exit 0 is not
         a crash, so the whole tree exits 0. *)
      Alcotest.(check bool) "shutdown" true (Serve.Client.shutdown c);
      Serve.Client.close c;
      let _, status = Unix.waitpid [] sup in
      Alcotest.(check bool) "supervisor exits 0 on clean shutdown" true
        (status = Unix.WEXITED 0))

(* ====================================================================== *)
(* Serving fault points, in-process                                       *)
(* ====================================================================== *)

(* An in-process daemon (its own domain) so the armed [Robust.Faults]
   globals are shared with the server loop under test. *)
let with_inproc_server f =
  let dir = tmpdir "waco-chaos-inproc" in
  let socket = endpoint_in dir "waco.sock" in
  let model, index = Lazy.force fixture in
  let server =
    Serve.Server.create ~k:4 ~ef:16 ~model ~index ~index_file:"<fixture>"
      ~machine ~socket ()
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Robust.Faults.reset ();
      let rec stop attempts =
        let ok =
          try
            let c = Serve.Client.connect ~timeout_s:1.0 socket in
            ignore (Serve.Client.shutdown c);
            Serve.Client.close c;
            true
          with _ -> endpoint_unbound socket
        in
        if (not ok) && attempts > 0 then begin
          Unix.sleepf 0.05;
          stop (attempts - 1)
        end
      in
      stop 100;
      Domain.join daemon;
      rm_rf dir)
    (fun () ->
      let probe = wait_connect socket in
      ignore (Serve.Client.ping probe);
      Serve.Client.close probe;
      f ~socket ~server)

(* Partial socket IO: with every daemon-side read and write capped at a few
   bytes, requests still decode and answers still arrive — byte-for-byte
   correct, just slower. *)
let test_fault_partial_io () =
  with_inproc_server (fun ~socket ~server:_ ->
      let m = small_matrix 41 in
      let c = wait_connect socket in
      Robust.Faults.arm_partial_net ~cap:7 1_000_000;
      (match Serve.Client.query ~measure:false ~qid:"partial" c (inline_source m) with
      | Ok a ->
          Alcotest.(check bool) "answer survives 7-byte IO" true
            (String.length a.Serve.Protocol.schedule > 0)
      | Error e -> Alcotest.failf "query under partial IO: %s" e);
      Robust.Faults.reset ();
      Serve.Client.close c)

(* A connection dropped mid-frame kills that client's connection, and
   nothing else: the daemon keeps serving. *)
let test_fault_mid_frame_drop () =
  with_inproc_server (fun ~socket ~server:_ ->
      let m = small_matrix 42 in
      let victim = wait_connect socket in
      (* Settle the loop first (the probe's EOF must not eat the armed
         drop): after this ping the victim's next frame is the first socket
         op the daemon sees. *)
      ignore (Serve.Client.ping victim);
      Robust.Faults.arm_net_drop_at 1;
      (match
         Serve.Client.query ~measure:false ~qid:"victim" ~timeout_s:5.0 victim
           (inline_source m)
       with
      | Ok _ -> Alcotest.fail "dropped connection still answered"
      | Error _ -> ()
      | exception (Failure _ | Unix.Unix_error (_, _, _) | End_of_file) -> ());
      Robust.Faults.reset ();
      Serve.Client.close victim;
      let c = wait_connect socket in
      Alcotest.(check bool) "daemon survives the drop" true
        (Serve.Client.ping c);
      Serve.Client.close c)

(* A stuck measurement racing a deadline: the watchdog truncates the
   measurement phase, the answer comes back degraded with reason
   "deadline", and the round trip stays bounded. *)
let test_fault_stuck_measurement () =
  with_inproc_server (fun ~socket ~server:_ ->
      let m = small_matrix 43 in
      let c = wait_connect socket in
      Robust.Faults.arm_stuck_measures ~seconds:0.25 8;
      let t0 = Unix.gettimeofday () in
      (match
         Serve.Client.query ~deadline_ms:60 ~qid:"stuck" ~timeout_s:30.0 c
           (inline_source m)
       with
      | Ok a ->
          Alcotest.(check bool) "stuck measurement: degraded" true
            a.Serve.Protocol.degraded;
          Alcotest.(check (option string)) "reason is the deadline"
            (Some "deadline") a.Serve.Protocol.degraded_reason
      | Error e -> Alcotest.failf "query under stuck measurement: %s" e);
      Robust.Faults.reset ();
      Alcotest.(check bool) "watchdog bounded the round trip" true
        (Unix.gettimeofday () -. t0 < 10.0);
      Serve.Client.close c)

(* An NTP-style wall-clock step landing mid-request must not blow the
   deadline: every deadline/elapsed path runs on the monotonic clock
   (DESIGN.md §12), which a stepping wall clock never moves.  The request is
   pinned in flight by stalled measurements, the wall clock jumps an hour
   forward underneath it, and the answer still comes back full-fat. *)
let test_fault_clock_step () =
  with_inproc_server (fun ~socket ~server ->
      let m = small_matrix 44 in
      let c = wait_connect socket in
      (* Keep the request computing long enough for the step to land while
         its deadline budget is live. *)
      Robust.Faults.arm_stuck_measures ~seconds:0.1 4;
      Serve.Client.send c
        (Serve.Protocol.Query
           {
             qid = "ntp";
             source = inline_source m;
             measure = true;
             deadline_ms = 30_000;
             kernel = None;
           });
      (* Let the daemon stamp the arrival on the pre-step clock... *)
      Unix.sleepf 0.05;
      (* ...then step the wall clock an hour forward, mid-request. *)
      Robust.Faults.arm_clock_skew ~seconds:3600.0;
      (match Serve.Client.recv ~timeout_s:30.0 c with
      | Serve.Protocol.Answer a ->
          Alcotest.(check bool) "clock step: not degraded" false
            a.Serve.Protocol.degraded;
          Alcotest.(check bool) "clock step: fully measured" true
            (Float.is_finite a.Serve.Protocol.measured)
      | Serve.Protocol.Error_msg e ->
          Alcotest.failf "query under clock step: %s" e
      | _ -> Alcotest.fail "unexpected response under clock step");
      Robust.Faults.reset ();
      Alcotest.(check (option int)) "no spurious deadline miss" (Some 0)
        (Serve.Metrics.counter (Serve.Server.metrics server) "deadline_misses");
      Serve.Client.close c)

let () =
  Alcotest.run "chaos"
    [
      ( "supervisor",
        [
          Alcotest.test_case "crash, restart, recover" `Quick
            test_supervisor_restarts;
          Alcotest.test_case "crash loop gives up" `Quick
            test_supervisor_gives_up;
        ] );
      ( "kill-under-load",
        [ Alcotest.test_case "SIGKILL x22 under load" `Slow test_kill_under_load ] );
      ( "fault-points",
        [
          Alcotest.test_case "partial socket IO" `Slow test_fault_partial_io;
          Alcotest.test_case "mid-frame drop" `Slow test_fault_mid_frame_drop;
          Alcotest.test_case "stuck measurement vs deadline" `Slow
            test_fault_stuck_measurement;
          Alcotest.test_case "wall-clock step vs monotonic deadline" `Slow
            test_fault_clock_step;
        ] );
    ]
