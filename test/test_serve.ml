(* Serving-daemon tests: the wire protocol's total decoder (fuzzed), the
   sparsity fingerprint, the LRU schedule cache and its crash-safe
   persistence, the request scheduler's dedup/batching, model/index
   compatibility validation (load-time and lint-time, WACO-A008), and a
   forked end-to-end daemon: concurrent clients get identical schedules, a
   second round answers from cache, and a SIGKILLed daemon restarts warm
   from the persisted snapshot without a single index traversal. *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256
let machine = Machine.intel_like

(* --- tmp-dir helpers -------------------------------------------------- *)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Robust.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Transport parametrization: WACO_TEST_TRANSPORT=tcp (the @tcp alias)
   reruns this whole suite with every daemon listening on 127.0.0.1
   instead of a Unix socket — the two transports must satisfy the same
   contract.  The port is derived from the would-be socket path's hash:
   subprocess daemons cannot report a kernel-chosen port back to the
   test, and the path already carries a per-test random tmpdir. *)
let tcp_transport = Sys.getenv_opt "WACO_TEST_TRANSPORT" = Some "tcp"

let endpoint_of_path path =
  if tcp_transport then
    Printf.sprintf "tcp:127.0.0.1:%d" (20000 + (Hashtbl.hash path mod 20000))
  else path

let endpoint_in dir name = endpoint_of_path (Filename.concat dir name)

(* Transport-blind "nothing is listening there anymore": the Unix socket
   file is gone, or the TCP connect is refused. *)
let endpoint_unbound ep =
  if tcp_transport then
    match Serve.Client.connect ~timeout_s:0.5 ep with
    | c ->
        Serve.Client.close c;
        false
    | exception (Unix.Unix_error _ | Failure _) -> true
  else not (Sys.file_exists ep)

(* A raw connected fd on either transport, for the hostile-bytes tests. *)
let raw_connect ep = Serve.Addr.connect (Serve.Addr.of_string ep)

(* --- shared fixture: an untrained (but deterministic) model + index ---- *)

let fixture =
  lazy
    (let model = Waco.Costmodel.create (Rng.create 11) algo in
     let rng = Rng.create 3 in
     let corpus =
       Array.init 64 (fun _ -> Space.sample rng algo ~dims:[| 48; 48 |])
     in
     let index = Waco.Tuner.build_index (Rng.create 7) model corpus in
     (model, index))

let small_matrix seed = Gen.uniform (Rng.create seed) ~nrows:48 ~ncols:48 ~nnz:220

let mk_server ?pool ?cache_capacity ?cache_file ?(socket = "unused.sock") () =
  let model, index = Lazy.force fixture in
  Serve.Server.create ?pool ?cache_capacity ?cache_file ~k:4 ~ef:16 ~model
    ~index ~index_file:"<fixture>" ~machine ~socket ()

(* Daemon trampoline: OCaml 5 forbids [Unix.fork] once any domain has ever
   been spawned (and the pool tests spawn some), so the e2e daemons are
   fresh processes of this same executable, selected by env var before
   Alcotest takes over.  The fixture is rebuilt from fixed seeds, so every
   incarnation carries identical model/index identity stamps. *)
let () =
  match Sys.getenv_opt "WACO_TEST_SERVE_SOCKET" with
  | None -> ()
  | Some socket ->
      (try
         let cache_file = Sys.getenv_opt "WACO_TEST_SERVE_CACHE" in
         let server = mk_server ?cache_file ~socket () in
         Serve.Server.run server
       with _ -> exit 1);
      exit 0

(* ====================================================================== *)
(* Protocol                                                               *)
(* ====================================================================== *)

let decode_request frame =
  match Serve.Protocol.decode_frame frame with
  | `Frame (msg, body, consumed) ->
      Alcotest.(check int) "whole frame consumed" (String.length frame) consumed;
      Serve.Protocol.request_of_frame ~msg body
  | `Need _ | `Bad _ -> Alcotest.fail "complete frame did not decode"

let test_request_roundtrip () =
  let reqs =
    [
      Serve.Protocol.Query
        {
          qid = "q1";
          source = Serve.Protocol.Path "/tmp/m.mtx";
          measure = true;
          deadline_ms = 0;
          kernel = None;
        };
      Serve.Protocol.Query
        {
          qid = "";
          source =
            Serve.Protocol.Inline
              {
                nrows = 3;
                ncols = 4;
                entries = [| (0, 0, 1.5); (2, 3, -2.25); (1, 1, 1e-30) |];
              };
          measure = false;
          deadline_ms = 250;
          kernel = None;
        };
      Serve.Protocol.Stats;
      Serve.Protocol.Ping;
      Serve.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match decode_request (Serve.Protocol.request_to_frame req) with
      | Ok req' ->
          Alcotest.(check bool) "request roundtrips" true (req = req')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    reqs

let test_response_roundtrip () =
  let a =
    {
      Serve.Protocol.schedule = "algo=SpMM;splits=1,8";
      predicted = -1.25;
      measured = 3.5e-5;
      cache_hit = true;
      degraded = true;
      degraded_reason = Some "index was empty";
      spans = [ ("parse", 0.25); ("extract", 0.5) ];
    }
  in
  (match
     Serve.Protocol.decode_frame
       (Serve.Protocol.response_to_frame (Serve.Protocol.Answer a))
   with
  | `Frame (msg, body, _) -> (
      match Serve.Protocol.response_of_frame ~msg body with
      | Ok (Serve.Protocol.Answer a') ->
          Alcotest.(check bool) "answer roundtrips" true (a = a')
      | _ -> Alcotest.fail "answer did not decode")
  | _ -> Alcotest.fail "answer frame did not decode");
  (* NaN measured (the predict-only path) survives the wire. *)
  let a_nan = { a with Serve.Protocol.measured = Float.nan } in
  (match
     Serve.Protocol.decode_frame
       (Serve.Protocol.response_to_frame (Serve.Protocol.Answer a_nan))
   with
  | `Frame (msg, body, _) -> (
      match Serve.Protocol.response_of_frame ~msg body with
      | Ok (Serve.Protocol.Answer a') ->
          Alcotest.(check bool) "NaN measured" true
            (Float.is_nan a'.Serve.Protocol.measured)
      | _ -> Alcotest.fail "NaN answer did not decode")
  | _ -> Alcotest.fail "NaN answer frame did not decode");
  List.iter
    (fun resp ->
      match
        Serve.Protocol.decode_frame (Serve.Protocol.response_to_frame resp)
      with
      | `Frame (msg, body, _) -> (
          match Serve.Protocol.response_of_frame ~msg body with
          | Ok resp' ->
              Alcotest.(check bool) "response roundtrips" true (resp = resp')
          | Error e -> Alcotest.failf "response decode: %s" e)
      | _ -> Alcotest.fail "response frame did not decode")
    [
      Serve.Protocol.Stats_json "{}";
      Serve.Protocol.Pong;
      Serve.Protocol.Bye;
      Serve.Protocol.Busy { retry_after_ms = 120 };
      Serve.Protocol.Error_msg "nope";
    ]

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.to_string b

let raw_header ?(magic = "WSRV") ?(version = Serve.Protocol.version) ~msg len =
  magic ^ String.make 1 (Char.chr version) ^ String.make 1 (Char.chr msg) ^ be32 len

let test_framing_damage () =
  let frame =
    Serve.Protocol.request_to_frame
      (Serve.Protocol.Query
         {
           qid = "t";
           source = Serve.Protocol.Path "m.mtx";
           measure = true;
           deadline_ms = 0;
           kernel = None;
         })
  in
  (* Every strict prefix of a valid frame is [`Need], never [`Bad] or a
     bogus [`Frame]. *)
  for i = 0 to String.length frame - 1 do
    match Serve.Protocol.decode_frame (String.sub frame 0 i) with
    | `Need n -> Alcotest.(check bool) "positive need" true (n > 0)
    | `Bad e -> Alcotest.failf "prefix %d rejected: %s" i e
    | `Frame _ -> Alcotest.failf "prefix %d produced a frame" i
  done;
  (* Wrong magic dies on the very first byte. *)
  (match Serve.Protocol.decode_frame "X" with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "bad magic byte 0 not rejected");
  (match Serve.Protocol.decode_frame (raw_header ~magic:"WSRX" ~msg:1 0) with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "bad magic not rejected");
  (* Wrong version. *)
  (match
     Serve.Protocol.decode_frame
       (raw_header ~version:(Serve.Protocol.version + 1) ~msg:1 0)
   with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "wrong version not rejected");
  (* A hostile length field is rejected before any allocation. *)
  (match
     Serve.Protocol.decode_frame
       (raw_header ~msg:1 (Serve.Protocol.max_payload + 1))
   with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "oversized payload not rejected");
  (* Unknown message type in a well-formed frame: a body-level error, not a
     crash. *)
  (match Serve.Protocol.request_of_frame ~msg:99 "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown request type accepted");
  (* The encoder refuses to build an over-limit frame. *)
  match
    Serve.Protocol.encode_frame ~msg:1
      (String.make (Serve.Protocol.max_payload + 1) 'x')
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted"

let test_inline_validation () =
  let decode_body body = Serve.Protocol.request_of_frame ~msg:Serve.Protocol.msg_query body in
  let expect_error label body =
    match decode_body body with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  expect_error "out-of-range coordinate"
    "source=inline\ndims=2 2\nnnz=1\n5 0 1.0\n";
  expect_error "non-finite value" "source=inline\ndims=2 2\nnnz=1\n0 0 nan\n";
  expect_error "entry count mismatch"
    "source=inline\ndims=2 2\nnnz=2\n0 0 1.0\n";
  expect_error "nonsense dims" "source=inline\ndims=0 2\nnnz=0\n";
  expect_error "huge nnz declaration"
    (Printf.sprintf "source=inline\ndims=2 2\nnnz=%d\n"
       (Serve.Protocol.max_inline_nnz + 1));
  expect_error "missing source" "id=x\n";
  expect_error "negative deadline"
    "source=path\npath=m.mtx\ndeadline_ms=-5\n";
  expect_error "non-numeric deadline"
    "source=path\npath=m.mtx\ndeadline_ms=soon\n";
  expect_error "over-limit deadline"
    (Printf.sprintf "source=path\npath=m.mtx\ndeadline_ms=%d\n"
       (Serve.Protocol.max_deadline_ms + 1));
  (match decode_body "source=path\npath=m.mtx\ndeadline_ms=250\n" with
  | Ok (Serve.Protocol.Query q) ->
      Alcotest.(check int) "deadline parsed" 250 q.Serve.Protocol.deadline_ms
  | _ -> Alcotest.fail "valid deadline rejected");
  match decode_body "source=inline\ndims=2 2\nnnz=1\n1 1 2.5\n" with
  | Ok (Serve.Protocol.Query { source = Serve.Protocol.Inline { entries; _ }; _ })
    ->
      Alcotest.(check int) "entries parsed" 1 (Array.length entries)
  | _ -> Alcotest.fail "valid inline body rejected"

(* The kernel= field: parsed into the typed option, round-tripped on the
   wire, and an unrecognized value is a decode error — never a silent
   default (a typo'd kernel must not be served an SpMV schedule). *)
let test_kernel_field () =
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let decode_body body =
    Serve.Protocol.request_of_frame ~msg:Serve.Protocol.msg_query body
  in
  (match decode_body "source=path\npath=m.mtx\nkernel=sddmm\n" with
  | Ok (Serve.Protocol.Query q) ->
      Alcotest.(check bool) "kernel parsed" true
        (q.Serve.Protocol.kernel = Some Waco.Kernel.Sddmm)
  | _ -> Alcotest.fail "valid kernel= rejected");
  (* Absent kernel= decodes to None — the old-client path. *)
  (match decode_body "source=path\npath=m.mtx\n" with
  | Ok (Serve.Protocol.Query q) ->
      Alcotest.(check bool) "absent kernel is None" true
        (q.Serve.Protocol.kernel = None)
  | _ -> Alcotest.fail "kernel-free query rejected");
  (* Unknown kernel name: an error naming the valid spellings. *)
  (match decode_body "source=path\npath=m.mtx\nkernel=conv2d\n" with
  | Error e ->
      Alcotest.(check bool) "error names the bad value" true (has e "conv2d");
      Alcotest.(check bool) "error lists valid kernels" true (has e "sddmm")
  | Ok _ -> Alcotest.fail "unknown kernel= silently accepted");
  (* Full wire roundtrip with a kernel set. *)
  let q =
    Serve.Protocol.Query
      {
        qid = "k";
        source = Serve.Protocol.Path "m.mtx";
        measure = true;
        deadline_ms = 0;
        kernel = Some Waco.Kernel.Spmv;
      }
  in
  match decode_request (Serve.Protocol.request_to_frame q) with
  | Ok q' -> Alcotest.(check bool) "kernel roundtrips" true (q = q')
  | Error e -> Alcotest.failf "kernel roundtrip failed: %s" e

(* The decoder and body parsers must be total: random bytes can produce any
   verdict but never an exception. *)
let test_fuzz_total () =
  let rng = Rng.create 1234 in
  for _ = 1 to 4000 do
    let len = Rng.int rng 80 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (match Serve.Protocol.decode_frame s with
    | `Frame _ | `Need _ | `Bad _ -> ());
    ignore (Serve.Protocol.request_of_frame ~msg:(Rng.int rng 256) s);
    ignore (Serve.Protocol.response_of_frame ~msg:(Rng.int rng 256) s)
  done;
  (* Mutated valid frames, too: flip one byte anywhere in a real frame. *)
  let frame =
    Serve.Protocol.request_to_frame
      (Serve.Protocol.Query
         {
           qid = "fuzz";
           source =
             Serve.Protocol.Inline
               { nrows = 4; ncols = 4; entries = [| (1, 2, 0.5) |] };
           measure = true;
           deadline_ms = 0;
           kernel = None;
         })
  in
  for _ = 1 to 2000 do
    let b = Bytes.of_string frame in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Rng.int rng 256));
    match Serve.Protocol.decode_frame (Bytes.to_string b) with
    | `Frame (msg, body, _) -> ignore (Serve.Protocol.request_of_frame ~msg body)
    | `Need _ | `Bad _ -> ()
  done

(* ====================================================================== *)
(* Fingerprint                                                            *)
(* ====================================================================== *)

let test_fingerprint () =
  let m = small_matrix 1 in
  let fp = Serve.Fingerprint.of_coo m in
  let fp2 = Serve.Fingerprint.of_coo m in
  Alcotest.(check bool) "deterministic" true (Serve.Fingerprint.equal fp fp2);
  Alcotest.(check string) "key deterministic" (Serve.Fingerprint.key fp)
    (Serve.Fingerprint.key fp2);
  let key = Serve.Fingerprint.key fp in
  Alcotest.(check bool) "single line, no spaces" false
    (String.contains key '\n' || String.contains key ' ');
  (* key <-> fingerprint roundtrip *)
  (match Serve.Fingerprint.of_key key with
  | Some fp' -> Alcotest.(check bool) "of_key inverts key" true (fp = fp')
  | None -> Alcotest.fail "of_key rejected its own key");
  Alcotest.(check (option reject)) "damaged key rejected" None
    (Serve.Fingerprint.of_key (key ^ "zz"));
  Alcotest.(check (option reject)) "garbage key rejected" None
    (Serve.Fingerprint.of_key "fp1:whatever");
  (* Different patterns at identical shape/nnz must separate via the
     sketch: a band matrix vs a uniform one. *)
  let banded =
    Coo.of_triplets ~nrows:48 ~ncols:48
      (List.init 220 (fun i -> (i mod 48, (i * 7) mod 3, 1.0)))
  in
  let uniform = small_matrix 9 in
  Alcotest.(check bool) "distinct patterns -> distinct keys" false
    (Serve.Fingerprint.key (Serve.Fingerprint.of_coo banded)
    = Serve.Fingerprint.key (Serve.Fingerprint.of_coo uniform))

(* ====================================================================== *)
(* Cache                                                                  *)
(* ====================================================================== *)

let entry i =
  {
    Serve.Cache.schedule = Printf.sprintf "sched-%d" i;
    predicted = float_of_int i;
    measured = float_of_int i *. 1e-6;
    degraded = false;
  }

let mk_cache ?(capacity = 3) () =
  Serve.Cache.create ~capacity ~model_digest:"mdig" ~index_digest:"idig"
    ~machine:"intel-like" ()

let test_cache_lru () =
  let c = mk_cache () in
  Serve.Cache.add c "a" (entry 1);
  Serve.Cache.add c "b" (entry 2);
  Serve.Cache.add c "c" (entry 3);
  (* Touch "a" so "b" is now the least recently used... *)
  ignore (Serve.Cache.find c "a");
  Serve.Cache.add c "d" (entry 4);
  Alcotest.(check int) "bounded" 3 (Serve.Cache.size c);
  Alcotest.(check int) "one eviction" 1 (Serve.Cache.evictions c);
  Alcotest.(check bool) "LRU victim evicted" true (Serve.Cache.find c "b" = None);
  Alcotest.(check bool) "recently-used survivor" true
    (Serve.Cache.find c "a" <> None);
  (* Replacement of an existing key does not evict. *)
  Serve.Cache.add c "a" (entry 9);
  Alcotest.(check int) "replace keeps size" 3 (Serve.Cache.size c);
  match Serve.Cache.find c "a" with
  | Some e -> Alcotest.(check string) "replaced" "sched-9" e.Serve.Cache.schedule
  | None -> Alcotest.fail "replaced entry missing"

let test_cache_persistence () =
  let dir = tmpdir "waco-serve-cache" in
  let path = Filename.concat dir "cache.waco" in
  let c = mk_cache ~capacity:8 () in
  Serve.Cache.add c "k1" (entry 1);
  Serve.Cache.add c "k2" (entry 2);
  Serve.Cache.add c "k3" (entry 3);
  ignore (Serve.Cache.find c "k1");
  Serve.Cache.save c path;
  (* Warm reload with matching identity, recency order intact: adding one
     entry to a full cache must evict k2 (the LRU after k1's touch). *)
  (match
     Serve.Cache.load ~capacity:3 ~model_digest:"mdig" ~index_digest:"idig"
       ~machine:"intel-like" path
   with
  | Ok { cache; status = `Warm n } ->
      Alcotest.(check int) "entries restored" 3 n;
      (* This probe bumps k2, so the LRU entry is now k3 (restored order
         was k2 < k3 < k1 after k1's pre-save touch). *)
      (match Serve.Cache.find cache "k2" with
      | Some e -> Alcotest.(check string) "payload" "sched-2" e.Serve.Cache.schedule
      | None -> Alcotest.fail "restored entry missing");
      Serve.Cache.add cache "k4" (entry 4);
      (* Had the load come back in plain insertion order (k1 < k2 < k3),
         the victim here would be k1, not k3. *)
      Alcotest.(check bool) "recency survived the roundtrip" true
        (Serve.Cache.find cache "k3" = None && Serve.Cache.find cache "k1" <> None)
  | Ok { status = `Invalidated why; _ } -> Alcotest.failf "invalidated: %s" why
  | Error e -> Alcotest.failf "load: %s" (Robust.load_error_to_string e));
  (* A different model digest invalidates wholesale. *)
  (match
     Serve.Cache.load ~model_digest:"OTHER" ~index_digest:"idig"
       ~machine:"intel-like" path
   with
  | Ok { cache; status = `Invalidated _ } ->
      Alcotest.(check int) "invalidated cache is empty" 0 (Serve.Cache.size cache)
  | Ok { status = `Warm _; _ } -> Alcotest.fail "stale snapshot reused"
  | Error e -> Alcotest.failf "load: %s" (Robust.load_error_to_string e));
  (* Flipping a payload byte is a typed checksum error. *)
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let pos = String.length raw - 3 in
  let mangled =
    String.mapi (fun i c -> if i = pos then (if c = 'x' then 'y' else 'x') else c) raw
  in
  let oc = open_out_bin path in
  output_string oc mangled;
  close_out oc;
  (match
     Serve.Cache.load ~model_digest:"mdig" ~index_digest:"idig"
       ~machine:"intel-like" path
   with
  | Error (Robust.Bad_checksum _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Robust.load_error_to_string e)
  | Ok _ -> Alcotest.fail "corrupt snapshot loaded");
  rm_rf dir

(* Crash at every write point during a cache save: loading must yield the
   previous complete snapshot or a clean typed error — never garbage. *)
let test_cache_crash_sweep () =
  let dir = tmpdir "waco-serve-sweep" in
  let path = Filename.concat dir "cache.waco" in
  let load () =
    Serve.Cache.load ~model_digest:"mdig" ~index_digest:"idig"
      ~machine:"intel-like" path
  in
  let crash_sweep ~save ~check =
    Robust.Faults.reset ();
    let n = ref 1 in
    let finished = ref false in
    while not !finished do
      Robust.Faults.arm_fail_nth_write !n;
      (match save () with
      | () -> finished := true
      | exception Robust.Faults.Injected _ -> ());
      Robust.Faults.reset ();
      if not !finished then begin
        check !n;
        incr n;
        if !n > 16 then Alcotest.fail "sweep did not terminate"
      end
    done;
    !n - 1
  in
  let c1 = mk_cache ~capacity:8 () in
  Serve.Cache.add c1 "k1" (entry 1);
  (* Phase 1: no previous snapshot — a crash must never leave a loadable
     partial file. *)
  let points =
    crash_sweep
      ~save:(fun () -> Serve.Cache.save c1 path)
      ~check:(fun n ->
        match load () with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "crash %d left a loadable partial cache" n)
  in
  Alcotest.(check int) "three write points per atomic save" 3 points;
  (* Phase 2: snapshot with 1 entry on disk; crashes while saving 2 entries
     must preserve the 1-entry snapshot exactly. *)
  Serve.Cache.add c1 "k2" (entry 2);
  ignore
    (crash_sweep
       ~save:(fun () -> Serve.Cache.save c1 path)
       ~check:(fun n ->
         match load () with
         | Ok { status = `Warm 1; _ } -> ()
         | Ok { status = `Warm k; _ } ->
             Alcotest.failf "crash %d: %d entries (want previous snapshot's 1)" n k
         | Ok { status = `Invalidated why; _ } ->
             Alcotest.failf "crash %d invalidated: %s" n why
         | Error e ->
             Alcotest.failf "crash %d lost the previous snapshot: %s" n
               (Robust.load_error_to_string e)));
  (* The sweep's final iteration completed cleanly. *)
  (match load () with
  | Ok { status = `Warm 2; _ } -> ()
  | _ -> Alcotest.fail "clean save did not land");
  rm_rf dir

(* Kernel namespaces: a namespaced load accepts only keys under the served
   kernels' prefixes; a persisted entry with no namespace (a pre-kernel
   snapshot) invalidates the whole snapshot — the digest-stamp policy, so a
   legacy SpMV entry can never answer an SDDMM query. *)
let test_cache_namespaces () =
  let dir = tmpdir "waco-serve-ns" in
  let path = Filename.concat dir "cache.waco" in
  let load ?namespaces () =
    Serve.Cache.load ?namespaces ~model_digest:"mdig" ~index_digest:"idig"
      ~machine:"intel-like" path
  in
  let c = mk_cache ~capacity:8 () in
  Serve.Cache.add c "spmm/fp1:aaaa" (entry 1);
  Serve.Cache.add c "sddmm/fp1:aaaa" (entry 2);
  Serve.Cache.save c path;
  (* Every key namespaced under a served kernel: warm. *)
  (match load ~namespaces:[ "spmm"; "sddmm" ] () with
  | Ok { cache; status = `Warm 2 } ->
      Alcotest.(check bool) "namespaced entries restored" true
        (Serve.Cache.find cache "spmm/fp1:aaaa" <> None
        && Serve.Cache.find cache "sddmm/fp1:aaaa" <> None)
  | Ok { status = `Warm n; _ } -> Alcotest.failf "restored %d of 2" n
  | Ok { status = `Invalidated why; _ } -> Alcotest.failf "invalidated: %s" why
  | Error e -> Alcotest.failf "load: %s" (Robust.load_error_to_string e));
  (* A namespace the daemon no longer serves: wholesale invalidation. *)
  (match load ~namespaces:[ "spmm" ] () with
  | Ok { cache; status = `Invalidated _ } ->
      Alcotest.(check int) "foreign namespace empties the cache" 0
        (Serve.Cache.size cache)
  | Ok { status = `Warm _; _ } -> Alcotest.fail "foreign-namespace entry reused"
  | Error e -> Alcotest.failf "load: %s" (Robust.load_error_to_string e));
  (* No namespace check requested: the raw snapshot loads as before. *)
  (match load () with
  | Ok { status = `Warm 2; _ } -> ()
  | _ -> Alcotest.fail "namespace-free load changed behavior");
  (* A legacy un-namespaced entry among namespaced ones: wholesale
     invalidation, empty cache. *)
  let legacy = mk_cache ~capacity:8 () in
  Serve.Cache.add legacy "spmm/fp1:bbbb" (entry 3);
  Serve.Cache.add legacy "fp1:cccc" (entry 4);
  Serve.Cache.save legacy path;
  (match load ~namespaces:[ "spmm"; "sddmm" ] () with
  | Ok { cache; status = `Invalidated why } ->
      Alcotest.(check int) "pre-kernel snapshot starts cold" 0
        (Serve.Cache.size cache);
      Alcotest.(check bool) "reason cites the orphan key" true
        (let n = String.length why in
         let rec go i =
           i + 8 <= n && (String.sub why i 8 = "fp1:cccc" || go (i + 1))
         in
         go 0)
  | Ok { status = `Warm _; _ } -> Alcotest.fail "pre-kernel snapshot reused"
  | Error e -> Alcotest.failf "load: %s" (Robust.load_error_to_string e));
  rm_rf dir

(* ====================================================================== *)
(* Request scheduler (batch level, no socket)                             *)
(* ====================================================================== *)

let inline_source m =
  let entries =
    Array.init (Coo.nnz m) (fun k ->
        (m.Coo.rows.(k), m.Coo.cols.(k), m.Coo.vals.(k)))
  in
  Serve.Protocol.Inline { nrows = m.Coo.nrows; ncols = m.Coo.ncols; entries }

let query_of ?(measure = true) ?(qid = "q") ?(deadline_ms = 0) ?kernel m =
  { Serve.Protocol.qid; source = inline_source m; measure; deadline_ms; kernel }

let schedule_of = function
  | Serve.Protocol.Answer a -> a.Serve.Protocol.schedule
  | Serve.Protocol.Error_msg e -> Alcotest.failf "query failed: %s" e
  | _ -> Alcotest.fail "non-answer response"

let test_batch_dedup_and_hits () =
  let server = mk_server () in
  let m = small_matrix 1 in
  let metrics = Serve.Server.metrics server in
  (* Four identical queries in one micro-batch: one extractor forward, one
     traversal, four identical answers. *)
  let responses =
    Serve.Server.process_batch server (List.init 4 (fun i -> query_of ~qid:(string_of_int i) m))
  in
  Alcotest.(check int) "four answers" 4 (List.length responses);
  let scheds = List.map schedule_of responses in
  List.iter
    (fun s -> Alcotest.(check string) "identical schedules" (List.hd scheds) s)
    scheds;
  Alcotest.(check (option int)) "one forward for four queries" (Some 1)
    (Serve.Metrics.counter metrics "extractor_forwards");
  Alcotest.(check (option int)) "one traversal" (Some 1)
    (Serve.Metrics.counter metrics "traversals");
  Alcotest.(check (option int)) "four misses" (Some 4)
    (Serve.Metrics.counter metrics "cache_misses");
  List.iter
    (function
      | Serve.Protocol.Answer a ->
          Alcotest.(check bool) "first round: miss" false a.Serve.Protocol.cache_hit
      | _ -> Alcotest.fail "non-answer")
    responses;
  (* Second round: all hits, no new forwards. *)
  let responses2 = Serve.Server.process_batch server [ query_of m; query_of m ] in
  List.iter
    (function
      | Serve.Protocol.Answer a ->
          Alcotest.(check bool) "second round: hit" true a.Serve.Protocol.cache_hit;
          Alcotest.(check string) "same schedule from cache" (List.hd scheds)
            a.Serve.Protocol.schedule
      | _ -> Alcotest.fail "non-answer")
    responses2;
  Alcotest.(check (option int)) "still one forward" (Some 1)
    (Serve.Metrics.counter metrics "extractor_forwards");
  Alcotest.(check (option int)) "two hits" (Some 2)
    (Serve.Metrics.counter metrics "cache_hits");
  (* Distinct matrices in one batch compute separately. *)
  let m2 = small_matrix 2 in
  ignore (Serve.Server.process_batch server [ query_of m; query_of m2 ]);
  Alcotest.(check (option int)) "new pattern -> one more forward" (Some 2)
    (Serve.Metrics.counter metrics "extractor_forwards")

let test_batch_measure_modes_and_errors () =
  let server = mk_server () in
  let m = small_matrix 1 in
  (* measure=false returns NaN measured and caches under a separate key. *)
  (match Serve.Server.process_batch server [ query_of ~measure:false m ] with
  | [ Serve.Protocol.Answer a ] ->
      Alcotest.(check bool) "predict-only: NaN measured" true
        (Float.is_nan a.Serve.Protocol.measured);
      Alcotest.(check bool) "predict-only: miss" false a.Serve.Protocol.cache_hit
  | _ -> Alcotest.fail "predict-only query failed");
  (match Serve.Server.process_batch server [ query_of ~measure:true m ] with
  | [ Serve.Protocol.Answer a ] ->
      Alcotest.(check bool) "measured run is a separate cache key" false
        a.Serve.Protocol.cache_hit;
      Alcotest.(check bool) "measured is finite" true
        (Float.is_finite a.Serve.Protocol.measured)
  | _ -> Alcotest.fail "measured query failed");
  (* A request with an unreadable path errors on its own; the rest of the
     batch still answers. *)
  let bad =
    {
      Serve.Protocol.qid = "bad";
      source = Serve.Protocol.Path "/nonexistent/missing.mtx";
      measure = true;
      deadline_ms = 0;
      kernel = None;
    }
  in
  (match Serve.Server.process_batch server [ bad; query_of m ] with
  | [ Serve.Protocol.Error_msg _; Serve.Protocol.Answer a ] ->
      Alcotest.(check bool) "good request unaffected" true
        a.Serve.Protocol.cache_hit
  | _ -> Alcotest.fail "mixed batch misbehaved");
  Alcotest.(check (option int)) "request error counted" (Some 1)
    (Serve.Metrics.counter (Serve.Server.metrics server) "request_errors")

(* Deadline semantics, bottom-up: a pre-expired deadline at the tuner gives
   the unmeasured fallback with reason "deadline"; a lax one changes
   nothing; at the scheduler a blown [deadline_ms] answers degraded and is
   never cached, and the same pattern without a deadline then computes and
   caches normally. *)
let test_deadlines () =
  let model, index = Lazy.force fixture in
  let m = small_matrix 21 in
  (* Already expired before phase 1: unmeasured asymptotic fallback. *)
  let r =
    Waco.Tuner.query model machine ~k:4 ~ef:16 ~measure:true
      ~deadline_at:(Robust.mono_now () -. 1.0) ~id:"dl-past" m index
  in
  Alcotest.(check bool) "expired: degraded" true r.Waco.Tuner.degraded;
  Alcotest.(check (option string)) "expired: reason" (Some "deadline")
    r.Waco.Tuner.degraded_reason;
  Alcotest.(check int) "expired: nothing measured" 0 r.Waco.Tuner.measured_runs;
  Alcotest.(check bool) "expired: NaN measured" true
    (Float.is_nan r.Waco.Tuner.best_measured);
  (* A lax deadline leaves the full pipeline untouched. *)
  let r2 =
    Waco.Tuner.query model machine ~k:4 ~ef:16 ~measure:true
      ~deadline_at:(Robust.mono_now () +. 3600.0) ~id:"dl-lax" m index
  in
  Alcotest.(check bool) "lax: not degraded" false r2.Waco.Tuner.degraded;
  Alcotest.(check bool) "lax: measured" true (r2.Waco.Tuner.measured_runs > 0);
  (* Scheduler level: a 1 ms budget cannot survive the pipeline (stalled
     measurements make sure of it), so the answer is degraded, counted as a
     deadline miss, and never cached. *)
  let server = mk_server () in
  Robust.Faults.reset ();
  Robust.Faults.arm_stuck_measures ~seconds:0.05 8;
  let responses =
    Serve.Server.process_batch server [ query_of ~deadline_ms:1 ~qid:"dl" m ]
  in
  Robust.Faults.reset ();
  (match responses with
  | [ Serve.Protocol.Answer a ] ->
      Alcotest.(check bool) "blown deadline: degraded" true
        a.Serve.Protocol.degraded;
      Alcotest.(check (option string)) "blown deadline: reason"
        (Some "deadline") a.Serve.Protocol.degraded_reason
  | _ -> Alcotest.fail "deadline query did not answer");
  Alcotest.(check (option int)) "deadline miss counted" (Some 1)
    (Serve.Metrics.counter (Serve.Server.metrics server) "deadline_misses");
  Alcotest.(check int) "degraded answer never cached" 0
    (Serve.Cache.size (Serve.Server.cache server));
  (* The same pattern without a deadline computes and caches normally. *)
  (match Serve.Server.process_batch server [ query_of ~qid:"free" m ] with
  | [ Serve.Protocol.Answer a ] ->
      Alcotest.(check bool) "no deadline: full answer" false
        a.Serve.Protocol.degraded;
      Alcotest.(check bool) "no deadline: measured" true
        (Float.is_finite a.Serve.Protocol.measured)
  | _ -> Alcotest.fail "deadline-free query failed");
  Alcotest.(check int) "full answer cached" 1
    (Serve.Cache.size (Serve.Server.cache server))

(* Worker-pool answers must be byte-identical to the sequential ones. *)
let test_batch_pool_determinism () =
  let seq = mk_server () in
  let pool = Parallel.Pool.create ~domains:2 in
  let par = mk_server ~pool () in
  let batch = List.init 3 (fun i -> query_of (small_matrix (40 + i))) in
  let s1 = List.map schedule_of (Serve.Server.process_batch seq batch) in
  let s2 = List.map schedule_of (Serve.Server.process_batch par batch) in
  Parallel.Pool.shutdown pool;
  List.iter2 (Alcotest.(check string) "pool-invariant schedule") s1 s2

(* ====================================================================== *)
(* Multi-kernel serving: slot routing, cache isolation, checkpoints       *)
(* ====================================================================== *)

let sddmm_algo = Algorithm.Sddmm 256

let sddmm_fixture =
  lazy
    (let model = Waco.Costmodel.create (Rng.create 13) sddmm_algo in
     let rng = Rng.create 5 in
     let corpus =
       Array.init 64 (fun _ -> Space.sample rng sddmm_algo ~dims:[| 48; 48 |])
     in
     let index = Waco.Tuner.build_index (Rng.create 9) model corpus in
     (model, index))

(* Same matrix, two kernels: each answer computes on its own slot, lands in
   its own cache namespace, and the schedules are distinct — an SpMM entry
   can never be handed to an SDDMM query.  A kernel the daemon doesn't
   serve errors instead of silently defaulting. *)
let test_cross_kernel_isolation () =
  let model, index = Lazy.force fixture in
  let smodel, sindex = Lazy.force sddmm_fixture in
  let server =
    Serve.Server.create ~k:4 ~ef:16
      ~extra:[ (smodel, sindex, "<sddmm-fixture>") ]
      ~model ~index ~index_file:"<fixture>" ~machine ~socket:"unused.sock" ()
  in
  let m = small_matrix 51 in
  let sched_for ?kernel qid =
    match Serve.Server.process_batch server [ query_of ?kernel ~qid m ] with
    | [ r ] -> schedule_of r
    | _ -> Alcotest.failf "%s: wrong response count" qid
  in
  let spmm_sched = sched_for "spmm-q" in
  let sddmm_sched = sched_for ~kernel:Waco.Kernel.Sddmm "sddmm-q" in
  Alcotest.(check bool) "distinct schedules across kernels" false
    (spmm_sched = sddmm_sched);
  (* Both landed in the shared cache, each under its kernel's namespace. *)
  let fpk = Serve.Fingerprint.key (Serve.Fingerprint.of_coo m) in
  let cache = Serve.Server.cache server in
  Alcotest.(check int) "two distinct cache entries" 2 (Serve.Cache.size cache);
  (match Serve.Cache.find cache ("spmm/" ^ fpk) with
  | Some e ->
      Alcotest.(check string) "spmm namespace holds the spmm answer"
        spmm_sched e.Serve.Cache.schedule
  | None -> Alcotest.fail "spmm/ entry missing");
  (match Serve.Cache.find cache ("sddmm/" ^ fpk) with
  | Some e ->
      Alcotest.(check string) "sddmm namespace holds the sddmm answer"
        sddmm_sched e.Serve.Cache.schedule
  | None -> Alcotest.fail "sddmm/ entry missing");
  (* Round 2: per-kernel hits, unchanged payloads. *)
  (match
     Serve.Server.process_batch server
       [ query_of ~qid:"spmm-2" m; query_of ~kernel:Waco.Kernel.Sddmm ~qid:"sddmm-2" m ]
   with
  | [ Serve.Protocol.Answer a1; Serve.Protocol.Answer a2 ] ->
      Alcotest.(check bool) "both hit" true
        (a1.Serve.Protocol.cache_hit && a2.Serve.Protocol.cache_hit);
      Alcotest.(check string) "spmm hit unchanged" spmm_sched
        a1.Serve.Protocol.schedule;
      Alcotest.(check string) "sddmm hit unchanged" sddmm_sched
        a2.Serve.Protocol.schedule
  | _ -> Alcotest.fail "round 2 misbehaved");
  (* A kernel with no slot: a per-query error naming what is served. *)
  (match
     Serve.Server.process_batch server
       [ query_of ~kernel:Waco.Kernel.Spmv ~qid:"spmv-q" m ]
   with
  | [ Serve.Protocol.Error_msg e ] ->
      let has s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error names the unserved kernel" true
        (has e "spmv")
  | _ -> Alcotest.fail "unserved kernel did not error");
  (* Serving the same kernel twice is a configuration error. *)
  match
    Serve.Server.create ~k:4 ~ef:16
      ~extra:[ (model, index, "<dup>") ]
      ~model ~index ~index_file:"<fixture>" ~machine ~socket:"unused.sock" ()
  with
  | _ -> Alcotest.fail "duplicate kernel slots accepted"
  | exception Invalid_argument _ -> ()

(* A kernel-conditioned checkpoint round-trips bit-identically: predictions
   from the restored model match the originals exactly, and the one-hot
   really conditions the head (a different kernel moves the output). *)
let test_kernel_checkpoint_roundtrip () =
  let dir = tmpdir "waco-kernel-ckpt" in
  let path = Filename.concat dir "model.waco" in
  let model = Waco.Costmodel.create (Rng.create 21) sddmm_algo in
  let m = small_matrix 61 in
  let input = Waco.Extractor.input_of_coo ~id:"ckpt" m in
  let rng = Rng.create 22 in
  let scheds =
    Array.init 8 (fun _ -> Space.sample rng sddmm_algo ~dims:[| 48; 48 |])
  in
  let before = Waco.Costmodel.predict model input scheds in
  (* The head is genuinely conditioned: swapping the one-hot changes the
     prediction on the same weights. *)
  let cross = Waco.Costmodel.predict ~kernel:Waco.Kernel.Spmv model input scheds in
  Alcotest.(check bool) "one-hot conditions the head" false (before = cross);
  Waco.Costmodel.save model path;
  let fresh = Waco.Costmodel.create (Rng.create 99) sddmm_algo in
  Waco.Costmodel.load fresh path;
  Alcotest.(check string) "weight digest survives the roundtrip"
    (Waco.Costmodel.digest model) (Waco.Costmodel.digest fresh);
  let after = Waco.Costmodel.predict fresh input scheds in
  Alcotest.(check bool) "bit-identical predictions after reload" true
    (before = after);
  (* The restored model conditions identically too. *)
  let cross' = Waco.Costmodel.predict ~kernel:Waco.Kernel.Spmv fresh input scheds in
  Alcotest.(check bool) "conditioned predictions survive" true (cross = cross');
  rm_rf dir

(* ====================================================================== *)
(* Model/index compatibility (load-time + lint A008)                      *)
(* ====================================================================== *)

let test_validate_compat () =
  let model, index = Lazy.force fixture in
  (* The matched pair passes. *)
  Waco.Tuner.validate_compat model ~index_file:"<fixture>" index;
  (* A mismatched index raises a clear typed error at load time. *)
  let wrong_dim = Waco.Costmodel.embed_dim model + 1 in
  let hnsw = Anns.Hnsw.create ~dim:wrong_dim (Rng.create 5) in
  Anns.Hnsw.insert hnsw (Array.make wrong_dim 0.0)
    (Space.sample (Rng.create 6) algo ~dims:[| 48; 48 |]);
  let bad =
    { index with Waco.Tuner.hnsw; corpus_size = 1; lint_rejected = 0 }
  in
  (match Waco.Tuner.validate_compat model ~index_file:"pair.idx" bad with
  | () -> Alcotest.fail "mismatched pair accepted"
  | exception Robust.Load_error (Robust.Malformed { file; reason }) ->
      Alcotest.(check string) "cites the index file" "pair.idx" file;
      Alcotest.(check bool) "names both dimensions" true
        (let has s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has reason (string_of_int wrong_dim)
         && has reason (string_of_int (Waco.Costmodel.embed_dim model))));
  (* Server.create runs the same validation before binding anything. *)
  match
    Serve.Server.create ~model ~index:bad ~index_file:"pair.idx" ~machine
      ~socket:"unused.sock" ()
  with
  | _ -> Alcotest.fail "server accepted a mismatched pair"
  | exception Robust.Load_error _ -> ()

let test_lint_a008 () =
  let model, index = Lazy.force fixture in
  let dir = tmpdir "waco-a008" in
  let mpath = Filename.concat dir "model.waco" in
  let ipath = Filename.concat dir "index.waco" in
  Waco.Costmodel.save model mpath;
  Waco.Tuner.save_index index ipath;
  (* The matched pair lints clean. *)
  Alcotest.(check int) "A008 silent on a matched pair" 0
    (List.length (Analysis.Model_check.check_index_compat ~model:mpath ~index:ipath));
  Alcotest.(check int) "index artifact lints clean" 0
    (List.length (Analysis.Model_check.check_index ipath));
  (* A doctored index dimension trips A008. *)
  let wrong = Waco.Costmodel.embed_dim model + 3 in
  Robust.write_artifact ~kind:Robust.Kind.index ipath
    (Printf.sprintf "INDEX 1 0\nHNSW %d 8 32 0 -1 0\n" wrong);
  (match Analysis.Model_check.check_index_compat ~model:mpath ~index:ipath with
  | [ d ] ->
      Alcotest.(check string) "code" "WACO-A008" (Diag.code d);
      Alcotest.(check bool) "severity error" true (Diag.severity d = Diag.Error)
  | ds -> Alcotest.failf "expected one A008, got %d diagnostics" (List.length ds));
  (* An unreadable artifact stays silent here (per-artifact passes own it). *)
  Sys.remove mpath;
  Alcotest.(check int) "silent when the model is missing" 0
    (List.length (Analysis.Model_check.check_index_compat ~model:mpath ~index:ipath));
  (* check_index maps envelope damage to the artifact codes. *)
  Robust.write_artifact ~kind:Robust.Kind.model ipath "not an index\n";
  (match Analysis.Model_check.check_index ipath with
  | [ d ] -> Alcotest.(check string) "wrong kind -> A007" "WACO-A007" (Diag.code d)
  | _ -> Alcotest.fail "wrong-kind index artifact not flagged");
  rm_rf dir

(* ====================================================================== *)
(* End-to-end: forked daemon, concurrent clients, kill + warm restart     *)
(* ====================================================================== *)

let wait_connect path =
  let rec go attempts =
    match Serve.Client.connect path with
    | c -> c
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go 200

let spawn_daemon ~socket ~cache_file () =
  let env =
    Array.append (Unix.environment ())
      [|
        "WACO_TEST_SERVE_SOCKET=" ^ socket; "WACO_TEST_SERVE_CACHE=" ^ cache_file;
      |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let json_has json fragment =
  let n = String.length json and m = String.length fragment in
  let rec go i = i + m <= n && (String.sub json i m = fragment || go (i + 1)) in
  go 0

let test_e2e_daemon () =
  let dir = tmpdir "waco-serve-e2e" in
  let socket = endpoint_in dir "waco.sock" in
  let cache_file = Filename.concat dir "cache.waco" in
  let mtx = Filename.concat dir "m.mtx" in
  Mmio.write_coo mtx (small_matrix 1);
  let pid1 = spawn_daemon ~socket ~cache_file () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid1) with Unix.Unix_error _ -> ());
      rm_rf dir)
    (fun () ->
      (* Round 1: four concurrent clients, all asking about the same
         matrix, must get identical schedules. *)
      let clients = Array.init 4 (fun _ -> wait_connect socket) in
      Array.iteri
        (fun i c ->
          Serve.Client.send c
            (Serve.Protocol.Query
               {
                 qid = Printf.sprintf "c%d" i;
                 source = Serve.Protocol.Path mtx;
                 measure = true;
                 deadline_ms = 0;
                 kernel = None;
               }))
        clients;
      let answers =
        Array.map
          (fun c ->
            match Serve.Client.recv c with
            | Serve.Protocol.Answer a -> a
            | Serve.Protocol.Error_msg e -> Alcotest.failf "query failed: %s" e
            | _ -> Alcotest.fail "non-answer response")
          clients
      in
      let sched = answers.(0).Serve.Protocol.schedule in
      Array.iter
        (fun (a : Serve.Protocol.answer) ->
          Alcotest.(check string) "identical schedules across clients" sched
            a.Serve.Protocol.schedule)
        answers;
      Alcotest.(check bool) "schedule is non-empty" true (String.length sched > 0);
      let stats1 =
        match Serve.Client.stats clients.(0) with
        | Ok j -> j
        | Error e -> Alcotest.failf "stats: %s" e
      in
      let forwards1 =
        Option.value ~default:(-1)
          (Serve.Metrics.json_counter stats1 "extractor_forwards")
      in
      Alcotest.(check bool) "at least one forward, at most one per client" true
        (forwards1 >= 1 && forwards1 <= 4);
      (* Round 2: same queries again — all cache hits, not one new
         extractor forward. *)
      Array.iter
        (fun c ->
          match
            Serve.Client.query ~qid:"round2" c (Serve.Protocol.Path mtx)
          with
          | Ok a ->
              Alcotest.(check bool) "round 2 hits the cache" true
                a.Serve.Protocol.cache_hit;
              Alcotest.(check string) "round 2 schedule unchanged" sched
                a.Serve.Protocol.schedule
          | Error e -> Alcotest.failf "round 2: %s" e)
        clients;
      let stats2 =
        match Serve.Client.stats clients.(0) with
        | Ok j -> j
        | Error e -> Alcotest.failf "stats: %s" e
      in
      Alcotest.(check (option int)) "no new forwards in round 2"
        (Some forwards1)
        (Serve.Metrics.json_counter stats2 "extractor_forwards");
      Alcotest.(check bool) "hits counted" true
        (match Serve.Metrics.json_counter stats2 "cache_hits" with
        | Some h -> h >= 4
        | None -> false);
      Array.iter Serve.Client.close clients;
      (* Kill the daemon outright: no graceful persist — the write-through
         cache file on disk is all the next incarnation gets. *)
      Unix.kill pid1 Sys.sigkill;
      ignore (Unix.waitpid [] pid1);
      Alcotest.(check bool) "write-through snapshot exists" true
        (Sys.file_exists cache_file);
      (* Restart: answers must come from the persisted cache without a
         single extractor forward or index traversal. *)
      let pid2 = spawn_daemon ~socket ~cache_file () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ())
        (fun () ->
          let c = wait_connect socket in
          (match Serve.Client.query ~qid:"warm" c (Serve.Protocol.Path mtx) with
          | Ok a ->
              Alcotest.(check bool) "warm restart answers from cache" true
                a.Serve.Protocol.cache_hit;
              Alcotest.(check string) "schedule survived the restart" sched
                a.Serve.Protocol.schedule
          | Error e -> Alcotest.failf "warm query: %s" e);
          let stats3 =
            match Serve.Client.stats c with
            | Ok j -> j
            | Error e -> Alcotest.failf "stats: %s" e
          in
          Alcotest.(check (option int)) "zero forwards after restart" (Some 0)
            (Serve.Metrics.json_counter stats3 "extractor_forwards");
          Alcotest.(check (option int)) "zero traversals after restart" (Some 0)
            (Serve.Metrics.json_counter stats3 "traversals");
          Alcotest.(check bool) "stats report a warm cache" true
            (json_has stats3 "\"cache_status\": \"warm(");
          (* Graceful shutdown persists and unbinds. *)
          Alcotest.(check bool) "clean shutdown" true (Serve.Client.shutdown c);
          Serve.Client.close c;
          ignore (Unix.waitpid [] pid2);
          Alcotest.(check bool) "endpoint unbound on shutdown" true
            (endpoint_unbound socket)))

(* A client speaking garbage gets an error (or a dropped connection) while
   the daemon keeps serving everyone else. *)
let test_e2e_hostile_client () =
  let dir = tmpdir "waco-serve-hostile" in
  let socket = endpoint_in dir "waco.sock" in
  let pid = spawn_daemon ~socket ~cache_file:(Filename.concat dir "c.waco") () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      rm_rf dir)
    (fun () ->
      let good = wait_connect socket in
      (* Damaged framing: the daemon answers with an error frame and drops
         the connection. *)
      let hostile = wait_connect socket in
      Serve.Client.send hostile Serve.Protocol.Ping;
      (match Serve.Client.recv hostile with
      | Serve.Protocol.Pong -> ()
      | _ -> Alcotest.fail "hostile client's ping failed");
      let fd_writer = raw_connect socket in
      let garbage = Bytes.of_string "XXXXGARBAGEGARBAGE" in
      ignore (Unix.write fd_writer garbage 0 (Bytes.length garbage));
      (* Undecodable body in a valid frame: error response, connection
         stays up. *)
      Serve.Client.send hostile
        (Serve.Protocol.Query
           {
             qid = "x";
             source = Serve.Protocol.Path "";
             measure = true;
             deadline_ms = 0;
             kernel = None;
           });
      (* An empty path field is a body-level decode error. *)
      (match Serve.Client.recv hostile with
      | Serve.Protocol.Error_msg _ -> ()
      | _ -> Alcotest.fail "undecodable body not answered with an error");
      Alcotest.(check bool) "connection survives a body error" true
        (Serve.Client.ping hostile);
      (* The well-behaved client is unaffected throughout. *)
      Alcotest.(check bool) "good client still served" true
        (Serve.Client.ping good);
      (match Serve.Client.stats good with
      | Ok json ->
          Alcotest.(check bool) "protocol errors counted" true
            (match Serve.Metrics.json_counter json "protocol_errors" with
            | Some n -> n >= 1
            | None -> false)
      | Error e -> Alcotest.failf "stats: %s" e);
      Unix.close fd_writer;
      Serve.Client.close hostile;
      Alcotest.(check bool) "shutdown" true (Serve.Client.shutdown good);
      Serve.Client.close good;
      ignore (Unix.waitpid [] pid))

(* ====================================================================== *)
(* Overload, hostile-connection reaping, client-side bounds (in-process)  *)
(* ====================================================================== *)

(* An in-process daemon: the server runs in its own domain, so the test
   holds both ends — real sockets on one side, the live metrics record on
   the other (the forked trampoline can only export stats JSON). *)
let with_inproc_server ?max_pending ?idle_timeout_s ?frame_timeout_s f =
  let dir = tmpdir "waco-serve-inproc" in
  let socket = endpoint_in dir "waco.sock" in
  let model, index = Lazy.force fixture in
  let server =
    Serve.Server.create ?max_pending ?idle_timeout_s ?frame_timeout_s ~k:4
      ~ef:16 ~model ~index ~index_file:"<fixture>" ~machine ~socket ()
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Robust.Faults.reset ();
      (* The daemon must die even when the test body raised before its own
         shutdown (or before the daemon finished binding) — otherwise the
         Domain.join below hangs the whole suite.  Retry briefly: shutting
         down an already-shut daemon just fails to connect. *)
      let rec stop attempts =
        let ok =
          try
            let c = Serve.Client.connect ~timeout_s:1.0 socket in
            ignore (Serve.Client.shutdown c);
            Serve.Client.close c;
            true
          with _ -> endpoint_unbound socket
        in
        if (not ok) && attempts > 0 then begin
          Unix.sleepf 0.05;
          stop (attempts - 1)
        end
      in
      stop 100;
      Domain.join daemon;
      rm_rf dir)
    (fun () ->
      (* Don't hand the socket to the test until the daemon is serving. *)
      let probe = wait_connect socket in
      ignore (Serve.Client.ping probe);
      Serve.Client.close probe;
      f ~socket ~server)

(* Past the pending high-water mark, new queries answer [Busy] immediately
   instead of queueing without bound; every shed is counted; a shed client
   that retries with backoff gets its answer. *)
let test_overload_sheds () =
  with_inproc_server ~max_pending:1 (fun ~socket ~server ->
      let m = small_matrix 31 in
      (* Stall the first (only uncached) computation so the pipelined burst
         arrives while the daemon is busy: the whole burst is then decoded
         in one read round against a full queue. *)
      Robust.Faults.arm_stuck_measures ~seconds:0.4 1;
      let c = wait_connect socket in
      Serve.Client.send c (Serve.Protocol.Query (query_of ~qid:"q0" m));
      Unix.sleepf 0.1 (* let the daemon pick q0 up and hit the stall *);
      for i = 1 to 5 do
        Serve.Client.send c
          (Serve.Protocol.Query (query_of ~qid:(Printf.sprintf "q%d" i) m))
      done;
      let answers = ref 0 and busy = ref 0 in
      for _ = 0 to 5 do
        match Serve.Client.recv ~timeout_s:30.0 c with
        | Serve.Protocol.Answer _ -> incr answers
        | Serve.Protocol.Busy { retry_after_ms } ->
            Alcotest.(check bool) "busy carries a positive hint" true
              (retry_after_ms > 0);
            incr busy
        | Serve.Protocol.Error_msg e -> Alcotest.failf "unexpected error: %s" e
        | _ -> Alcotest.fail "unexpected response under overload"
      done;
      Robust.Faults.reset ();
      Alcotest.(check int) "every request resolved" 6 (!answers + !busy);
      Alcotest.(check bool) "at least one answered" true (!answers >= 1);
      Alcotest.(check bool) "at least one shed" true (!busy >= 1);
      Alcotest.(check (option int)) "every shed counted" (Some !busy)
        (Serve.Metrics.counter (Serve.Server.metrics server) "shed");
      (* The shed client's move: back off and retry.  q0's answer is cached
         by now, so the retry resolves from the cache. *)
      (match
         Serve.Client.query_with_retry ~attempts:5 ~base_s:0.02 ~qid:"retry"
           ~socket (inline_source m)
       with
      | Ok a ->
          Alcotest.(check bool) "retry after shed answers from cache" true
            a.Serve.Protocol.cache_hit
      | Error e -> Alcotest.failf "retry after shed failed: %s" e);
      Serve.Client.close c)

(* Wait until the daemon hangs up on [fd] (reaped -> EOF / reset). *)
let wait_eof ?(timeout_s = 5.0) fd =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 64 in
  let rec go () =
    if Unix.gettimeofday () > deadline then false
    else
      match Unix.select [ fd ] [] [] 0.1 with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read fd buf 0 64 with
          | 0 -> true
          | _ -> go ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* A trickler stalled mid-frame and a connection that never says anything
   are both reaped on their timeouts — each closed and counted — while a
   well-behaved client keeps getting served. *)
let test_hostile_connections_reaped () =
  with_inproc_server ~frame_timeout_s:0.3 ~idle_timeout_s:0.8
    (fun ~socket ~server ->
      let raw () = raw_connect socket in
      let trickler = raw () in
      let silent = raw () in
      (* Two bytes of magic, then nothing: a frame that never completes. *)
      ignore (Unix.write_substring trickler "WS" 0 2);
      Alcotest.(check bool) "trickler reaped" true (wait_eof trickler);
      Alcotest.(check bool) "silent connection reaped" true (wait_eof silent);
      Unix.close trickler;
      Unix.close silent;
      let metric name =
        Serve.Metrics.counter (Serve.Server.metrics server) name
      in
      Alcotest.(check (option int)) "mid-frame stall counted" (Some 1)
        (metric "reaped_trickle");
      Alcotest.(check (option int)) "idle reap counted" (Some 1)
        (metric "reaped_idle");
      (* The daemon is unharmed: a fresh, polite client is served. *)
      let c = wait_connect socket in
      Alcotest.(check bool) "daemon survives its hostile guests" true
        (Serve.Client.ping c);
      Serve.Client.close c)

(* Client-side failure is bounded: recv against a mute peer times out,
   connect to a dead path fails fast, and query_with_retry gives up with an
   error after its attempts instead of hanging. *)
let test_client_bounded_failure () =
  let dir = tmpdir "waco-serve-client" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* A listener that accepts (via backlog) and never answers. *)
      let mute_path = endpoint_in dir "mute.sock" in
      let mute = Serve.Addr.listen ~backlog:8 (Serve.Addr.of_string mute_path) in
      let c = Serve.Client.connect ~timeout_s:2.0 mute_path in
      let t0 = Unix.gettimeofday () in
      (match Serve.Client.request ~timeout_s:0.3 c Serve.Protocol.Ping with
      | _ -> Alcotest.fail "recv from a mute daemon returned"
      | exception Failure _ -> ());
      Alcotest.(check bool) "recv timeout is honored" true
        (Unix.gettimeofday () -. t0 < 3.0);
      Serve.Client.close c;
      Unix.close mute;
      (* No socket at all: connect raises instead of hanging... *)
      (* Nobody listening: a never-created socket path, or (tcp) a closed
         low port — both must refuse fast, not hang. *)
      let dead_path =
        if tcp_transport then "tcp:127.0.0.1:9"
        else Filename.concat dir "nobody.sock"
      in
      (match Serve.Client.connect ~timeout_s:0.5 dead_path with
      | _ -> Alcotest.fail "connect to a dead path succeeded"
      | exception (Unix.Unix_error _ | Failure _) -> ());
      (* ...and the retrying client converges to an error, quickly. *)
      let t1 = Unix.gettimeofday () in
      (match
         Serve.Client.query_with_retry ~attempts:3 ~base_s:0.02 ~max_s:0.1
           ~connect_timeout_s:0.5 ~qid:"gone" ~socket:dead_path
           (Serve.Protocol.Path "m.mtx")
       with
      | Ok _ -> Alcotest.fail "query_with_retry to a dead path succeeded"
      | Error _ -> ());
      Alcotest.(check bool) "retry budget is bounded" true
        (Unix.gettimeofday () -. t1 < 5.0))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "framing damage" `Quick test_framing_damage;
          Alcotest.test_case "inline validation" `Quick test_inline_validation;
          Alcotest.test_case "kernel field" `Quick test_kernel_field;
          Alcotest.test_case "fuzz: decoder is total" `Quick test_fuzz_total;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "sketch + key" `Quick test_fingerprint ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
          Alcotest.test_case "persistence + invalidation" `Quick
            test_cache_persistence;
          Alcotest.test_case "crash sweep" `Slow test_cache_crash_sweep;
          Alcotest.test_case "kernel namespaces" `Quick test_cache_namespaces;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "dedup + cache hits" `Slow test_batch_dedup_and_hits;
          Alcotest.test_case "measure modes + request errors" `Slow
            test_batch_measure_modes_and_errors;
          Alcotest.test_case "pool determinism" `Slow test_batch_pool_determinism;
          Alcotest.test_case "deadline budgets" `Slow test_deadlines;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "overload sheds + retry" `Slow test_overload_sheds;
          Alcotest.test_case "trickle + silent connections reaped" `Slow
            test_hostile_connections_reaped;
          Alcotest.test_case "client failure is bounded" `Quick
            test_client_bounded_failure;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "cross-kernel cache isolation" `Slow
            test_cross_kernel_isolation;
          Alcotest.test_case "conditioned checkpoint roundtrip" `Slow
            test_kernel_checkpoint_roundtrip;
        ] );
      ( "compat",
        [
          Alcotest.test_case "validate_compat" `Slow test_validate_compat;
          Alcotest.test_case "lint A008" `Slow test_lint_a008;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "daemon: batch, cache, kill, warm restart" `Slow
            test_e2e_daemon;
          Alcotest.test_case "hostile client" `Slow test_e2e_hostile_client;
        ] );
    ]
