(* lib/parallel tests: pool semantics (ordering, exceptions, reuse) and the
   determinism contract of every adoption site — a run on d domains must
   produce byte-identical artifacts to the sequential run, including under
   injected measurement faults. *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256
let machine = Machine.intel_like

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Robust.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_pool domains f =
  let p = Parallel.Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown p) (fun () -> f p)

(* --- pool combinators -------------------------------------------------- *)

let test_parallel_for () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let n = 1000 in
          let hits = Array.make n 0 in
          Parallel.Pool.parallel_for p ~n (fun i -> hits.(i) <- hits.(i) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "every index once (domains=%d)" domains)
            (Array.make n 1) hits))
    [ 1; 2; 4 ]

let test_map_ordering () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let input = Array.init 777 (fun i -> i) in
          let out = Parallel.Pool.parallel_map_array p (fun x -> x * x) input in
          Alcotest.(check (array int))
            (Printf.sprintf "slot i holds f(i) (domains=%d)" domains)
            (Array.map (fun x -> x * x) input)
            out))
    [ 1; 3 ]

let test_reduce_ordered_matches_sequential () =
  (* Catastrophic-cancellation-prone values: any reassociation of the fold
     changes the result, so bit-equality proves sequential fold order. *)
  let n = 4096 in
  let v i = if i mod 2 = 0 then 1e16 +. float_of_int i else -1e16 +. float_of_int i in
  let seq = ref 0.0 in
  for i = 0 to n - 1 do
    seq := !seq +. v i
  done;
  with_pool 4 (fun p ->
      let par =
        Parallel.Pool.reduce_ordered p ~n ~map:v ~fold:( +. ) ~init:0.0 ()
      in
      Alcotest.(check (float 0.0)) "bit-identical float fold" !seq par)

let test_exception_propagates () =
  with_pool 4 (fun p ->
      match
        Parallel.Pool.parallel_for p ~n:100 (fun i ->
            if i = 63 then failwith "boom-63")
      with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure m ->
          Alcotest.(check string) "the worker's exception" "boom-63" m);
  (* the pool survives a failed job *)
  with_pool 2 (fun p ->
      match
        Parallel.Pool.parallel_for p ~n:10 (fun i ->
            if i = 3 then failwith "first")
      with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure _ ->
          let out = Parallel.Pool.parallel_map_array p (fun x -> x + 1) [| 1; 2 |] in
          Alcotest.(check (array int)) "pool reusable after failure" [| 2; 3 |] out)

let test_env_domains () =
  Unix.putenv "WACO_DOMAINS" "3";
  Alcotest.(check int) "WACO_DOMAINS honoured" 3 (Parallel.Pool.env_domains ());
  Unix.putenv "WACO_DOMAINS" "0";
  Alcotest.(check bool) "nonsense ignored" true (Parallel.Pool.env_domains () >= 1);
  Unix.putenv "WACO_DOMAINS" ""

(* --- adoption sites: byte-identical artifacts -------------------------- *)

let mats seed =
  let r = Rng.create seed in
  List.map
    (fun nm -> (nm, Gen.uniform r ~nrows:40 ~ncols:40 ~nnz:200))
    [ "p0"; "p1"; "p2" ]

let collect pool seed =
  Waco.Dataset.of_matrices ?pool (Rng.create (seed + 1)) machine algo (mats seed)
    ~schedules_per_matrix:6 ~valid_fraction:0.25

let test_collection_bytes_identical () =
  let tuples_of data =
    let dir = tmpdir "waco-par-ds" in
    Waco.Dataset_io.save data ~dir;
    let bytes = read_raw (Filename.concat dir "tuples.txt") in
    rm_rf dir;
    bytes
  in
  let reference = tuples_of (collect None 7) in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          Alcotest.(check string)
            (Printf.sprintf "tuples.txt bytes (domains=%d)" domains)
            reference
            (tuples_of (collect (Some p) 7))))
    [ 2; 4 ]

let test_index_build_identical () =
  let model = Waco.Costmodel.create (Rng.create 31) algo in
  let corpus =
    let r = Rng.create 8 in
    Array.init 600 (fun _ -> Space.sample r algo ~dims:[| 48; 48 |])
  in
  let dump_with pool =
    let index = Waco.Tuner.build_index ?pool (Rng.create 9) model corpus in
    Anns.Hnsw.dump index.Waco.Tuner.hnsw ~payload:Sched_io.serialize
  in
  let reference = dump_with None in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          Alcotest.(check string)
            (Printf.sprintf "HNSW dump (domains=%d)" domains)
            reference
            (dump_with (Some p))))
    [ 2; 4 ]

let test_eval_set_identical () =
  let data = collect None 12 in
  let model = Waco.Costmodel.create (Rng.create 31) algo in
  let l0, a0 = Waco.Trainer.eval_set model data.Waco.Dataset.train in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let l, a = Waco.Trainer.eval_set ~pool:p model data.Waco.Dataset.train in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "eval loss (domains=%d)" domains) l0 l;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "eval acc (domains=%d)" domains) a0 a))
    [ 2; 4 ]

(* --- parallel measurement under injected faults ------------------------ *)

let test_tune_parallel_faults () =
  let rng = Rng.create 51 in
  let model = Waco.Costmodel.create rng algo in
  let m = Gen.uniform (Rng.create 52) ~nrows:48 ~ncols:48 ~nnz:300 in
  let wl = Workload.of_coo ~id:"parfault" m in
  let input = Waco.Extractor.input_of_coo ~id:"parfault" m in
  let corpus = Array.init 24 (fun _ -> Space.sample rng algo ~dims:[| 48; 48 |]) in
  let index = Waco.Tuner.build_index rng model corpus in
  with_pool 4 (fun p ->
      (* transient hiccups: the mutex-serialized fault counters hand out
         exactly two injections whatever the domain interleaving, and the
         per-run retries absorb them *)
      Robust.Faults.reset ();
      Robust.Faults.arm_transient_measures 2;
      let r =
        Waco.Tuner.tune ~pool:p ~k:4 ~measure_backoff_s:1e-4 model machine wl
          input index
      in
      Robust.Faults.reset ();
      Alcotest.(check bool) "not degraded" false r.Waco.Tuner.degraded;
      Alcotest.(check int) "no candidate dropped" 0 r.Waco.Tuner.measure_failures;
      Alcotest.(check int) "all candidates measured" 4 r.Waco.Tuner.measured_runs;
      (* the sequential run agrees on the winner *)
      let r_seq = Waco.Tuner.tune ~k:4 model machine wl input index in
      Alcotest.(check string) "same winner as sequential"
        (Superschedule.key r_seq.Waco.Tuner.best)
        (Superschedule.key r.Waco.Tuner.best);
      Alcotest.(check (float 0.0)) "same measured runtime"
        r_seq.Waco.Tuner.best_measured r.Waco.Tuner.best_measured;
      (* a persistently failing rig degrades identically to sequential *)
      Robust.Faults.arm_transient_measures max_int;
      let r2 =
        Waco.Tuner.tune ~pool:p ~k:4 ~measure_backoff_s:1e-4 model machine wl
          input index
      in
      Robust.Faults.reset ();
      Alcotest.(check bool) "degraded" true r2.Waco.Tuner.degraded;
      Alcotest.(check int) "all drops counted" 4 r2.Waco.Tuner.measure_failures)

(* --- satellite regressions --------------------------------------------- *)

let degenerate_sample nschedules =
  let m = Gen.uniform (Rng.create 3) ~nrows:16 ~ncols:16 ~nnz:40 in
  let wl = Workload.of_coo ~id:"degenerate" m in
  let input = Waco.Extractor.input_of_coo ~id:"degenerate" m in
  let schedules =
    Array.init nschedules (fun _ ->
        Space.sample (Rng.create 4) algo ~dims:[| 16; 16 |])
  in
  {
    Waco.Dataset.name = "degenerate";
    wl;
    input;
    schedules;
    log_runtimes = Array.make nschedules 0.0;
    valid_pairs = [||];
  }

let test_random_pairs_guards () =
  let rng = Rng.create 5 in
  (* zero schedules: no crash ([Rng.int _ 0] used to raise), no pairs *)
  Alcotest.(check int) "no pairs from an empty sample" 0
    (Array.length (Waco.Trainer.random_pairs rng (degenerate_sample 0) ~count:8));
  (* one schedule: the old fallback emitted useless (a, a) self-pairs *)
  Alcotest.(check int) "no pairs from a single schedule" 0
    (Array.length (Waco.Trainer.random_pairs rng (degenerate_sample 1) ~count:8));
  (* two or more: pairs always have distinct members *)
  let pairs = Waco.Trainer.random_pairs rng (degenerate_sample 3) ~count:64 in
  Alcotest.(check int) "requested count" 64 (Array.length pairs);
  Array.iter
    (fun (a, b) ->
      if a = b then Alcotest.failf "self-pair (%d, %d)" a b;
      if a < 0 || a > 2 || b < 0 || b > 2 then
        Alcotest.failf "pair out of range (%d, %d)" a b)
    pairs

let test_batch_of_pairs_empty () =
  let schedules, truth =
    Waco.Trainer.batch_of_pairs (degenerate_sample 0) [||]
  in
  Alcotest.(check int) "no schedules" 0 (Array.length schedules);
  Alcotest.(check int) "no truths" 0 (Array.length truth)

let test_train_skips_degenerate_sample () =
  (* A hand-built dataset whose only training sample has one schedule: the
     epoch must complete (skipping it with a log line) instead of crashing. *)
  let data =
    {
      Waco.Dataset.algo;
      kernel = Waco.Kernel.of_algo algo;
      machine;
      train = [| degenerate_sample 1 |];
      valid = [| degenerate_sample 2 |];
    }
  in
  let model = Waco.Costmodel.create (Rng.create 31) algo in
  let logs = ref [] in
  let curve =
    Waco.Trainer.train
      ~log:(fun s -> logs := s :: !logs)
      (Rng.create 7) model data ~epochs:1
  in
  Alcotest.(check int) "epoch completed" 1 (Array.length curve.Waco.Trainer.epochs);
  Alcotest.(check bool) "skip was logged" true
    (List.exists (fun s -> String.starts_with ~prefix:"skipping sample" s) !logs)

let test_heap_floats () =
  (* The backing array used to be seeded with [Obj.magic 0] — undefined
     behaviour for float-ish element types.  Push/pop a float-keyed heap
     through several growth cycles and check exact heap order. *)
  let h = Anns.Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Anns.Heap.is_empty h);
  Alcotest.(check bool) "pop on empty" true (Anns.Heap.pop h = None);
  let r = Rng.create 13 in
  let keys = Array.init 100 (fun _ -> Rng.float r) in
  Array.iteri (fun i k -> Anns.Heap.push h k (float_of_int i)) keys;
  Alcotest.(check int) "size" 100 (Anns.Heap.size h);
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iteri
    (fun rank expect ->
      match Anns.Heap.pop h with
      | Some (k, v) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "pop %d priority" rank) expect k;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "pop %d payload" rank)
            keys.(int_of_float v) k
      | None -> Alcotest.fail "heap ran dry early")
    sorted

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "ordered reduce" `Quick
            test_reduce_ordered_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "WACO_DOMAINS knob" `Quick test_env_domains;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "collection bytes" `Slow
            test_collection_bytes_identical;
          Alcotest.test_case "index build" `Slow test_index_build_identical;
          Alcotest.test_case "eval set" `Slow test_eval_set_identical;
          Alcotest.test_case "tune under faults" `Slow test_tune_parallel_faults;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "random_pairs guards" `Quick test_random_pairs_guards;
          Alcotest.test_case "batch_of_pairs empty" `Quick
            test_batch_of_pairs_empty;
          Alcotest.test_case "train skips degenerate sample" `Quick
            test_train_skips_degenerate_sample;
          Alcotest.test_case "heap float soundness" `Quick test_heap_floats;
        ] );
    ]
