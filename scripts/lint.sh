#!/bin/sh
# Repository lint: formatting checks plus the `waco lint` diagnostic passes.
#
# ocamlformat is optional (it is not part of the minimal toolchain); without
# it only dune files are format-checked, using dune's built-in formatter.
set -e
cd "$(dirname "$0")/.."

status=0

if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt || status=1
else
  echo "lint.sh: ocamlformat not found; checking dune files only" >&2
  for f in $(git ls-files '*dune'); do
    if ! dune format-dune-file <"$f" | cmp -s - "$f"; then
      echo "lint.sh: $f is not dune-fmt clean (run: dune fmt)" >&2
      status=1
    fi
  done
fi

# Monotonic-clock rule (DESIGN.md §12): deadline and elapsed-time paths in
# the serve layer and the tuner must never read the wall clock directly —
# Robust.mono_now / Robust.wall_now are the only entry points (both live in
# lib/robust, the one place allowed to call Unix.gettimeofday).  lib/serve
# includes the scale-out router (lib/serve/router.ml), whose redial backoff
# and reaper clocks are deadline paths like any other.
if grep -rn "Unix.gettimeofday" lib/serve lib/core/tuner.ml 2>/dev/null; then
  echo "lint.sh: Unix.gettimeofday on a deadline/elapsed path (use Robust.mono_now)" >&2
  status=1
fi

# Compiled-plan rule (DESIGN.md §14): the serve layer must reach the model
# through the batched VM entry points (Costmodel.feature_batch, the tuner's
# query_batch) — never the eager per-item forwards, which would silently
# give up the batching the phase-B throughput numbers rest on.
if grep -rn "Extractor\.forward\|Costmodel\.predict " lib/serve 2>/dev/null; then
  echo "lint.sh: eager forward/predict in lib/serve (use the batched VM entry points)" >&2
  status=1
fi

# The @lint alias packs a generated matrix cleanly and checks that a broken
# schedule exits 2 with its diagnostics.
dune build @lint || status=1

# The @faults alias runs the durability/fault-injection sweeps: crash at
# every artifact write point, assert previous-artifact-or-typed-error.
dune build @faults || status=1

# The @perf alias runs the perf-refactor safety net: flat kernel-map parity
# against the reference builder, scratch-buffer gradchecks, the per-call
# allocation budget on the conv hot path, and the golden-artifact
# byte-identity check.
dune build @perf || status=1

# The @vm alias runs the inference-VM suite: compiled-plan/eager bitwise
# parity on every served kernel, steady-state allocation budgets for
# run_batch and the batched extractor, and the training-untouched gradcheck.
dune build @vm || status=1

# Exercise the multi-domain pool paths once per run: the parallel suite
# (pool semantics, byte-identical artifacts, faults under parallel
# measurement) with the shared pool forced to two worker domains.
WACO_DOMAINS=2 dune exec -- test/test_parallel.exe || status=1

# The @serve alias runs the serving-daemon suite (protocol fuzz, cache
# crash sweeps, scheduler dedup, forked end-to-end daemon with kill and
# warm restart) with a bounded two-domain pool.
dune build @serve || status=1

# The @chaos alias runs the serving-layer chaos harness: a supervised
# daemon SIGKILLed under load 20+ times (zero cache corruption, zero hung
# clients, warm restarts), the supervisor's restart/give-up policy, and
# the deterministic serving fault points (partial IO, mid-frame drop,
# stuck measurement vs deadline).
dune build @chaos || status=1

# The @asym alias runs the asymptotic-analyzer suite: dominance-order
# properties, golden cost expressions, pre-filter/Costsim agreement and the
# tuner prune counters.
dune build @asym || status=1

# The @router alias runs the scale-out tier: consistent-hash ring balance
# and minimal-remap properties, the TCP transport end to end, the router
# daemon (verbatim relay, FIFO, stats fan-out, Busy propagation), and a
# shard SIGKILLed mid-load (predict-only failover, honest measured errors,
# warm ring rejoin).
dune build @router || status=1

# The @tcp alias reruns the full serving + chaos suites with every daemon
# on the TCP transport (WACO_TEST_TRANSPORT=tcp): both transports must
# satisfy the same robustness contract.
dune build @tcp || status=1

exit $status
