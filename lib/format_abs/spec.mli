(** A complete format specification for one sparse tensor, in the paper's
    SuperSchedule style: every logical index is split exactly once (split
    size 1 = no split), the derived levels are ordered by an arbitrary
    permutation, and each level is Uncompressed or Compressed.

    Derived-variable numbering: for logical dimension [d], the top (outer)
    variable is [2*d], the bottom (inner) one [2*d + 1]; the logical
    coordinate decomposes as [logical = top * split + bottom]. *)

type t = {
  dims : int array;  (** logical dimension sizes *)
  splits : int array;  (** inner split size per logical dim, >= 1 *)
  order : int array;  (** permutation of all [2*rank] derived vars, root->leaf *)
  formats : Levelfmt.t array;  (** one per level, aligned with [order] *)
}

val rank : t -> int

val nlevels : t -> int

val var_dim : int -> int
(** Logical dimension of a derived variable. *)

val var_is_top : int -> bool

val top_var : int -> int
(** [top_var d = 2*d]. *)

val bottom_var : int -> int
(** [bottom_var d = 2*d + 1]. *)

val var_size : t -> int -> int
(** Index-interval size of a derived variable: bottoms have the split size,
    tops cover [ceil (dim / split)] blocks. *)

val level_var : t -> int -> int

val level_size : t -> int -> int

val level_format : t -> int -> Levelfmt.t

val permutation_error : n:int -> int array -> string option
(** [None] when the array is a permutation of [0..n-1]; otherwise an
    explanation (wrong length, out-of-range entry, repeated entry).  The
    single helper every permutation-validation site routes through. *)

val is_permutation : int -> int array -> bool

val check : t -> Diag.t list
(** Non-throwing legality pass: every inconsistency as a [WACO-S00x]
    diagnostic ([]) when the spec is well-formed).  Single source of truth
    for the invariants; [validate] delegates here. *)

val validate : t -> unit
(** Raises [Invalid_argument] on the first error-level diagnostic of
    [check]. *)

val make :
  dims:int array -> splits:int array -> order:int array ->
  formats:Levelfmt.t array -> t
(** Validating constructor. *)

(** {2 Canonical constructions} *)

val csr_like : dims:int array -> t
(** Unsplit, row-major, compressed second level: CSR at rank 2 and its
    generalization at other ranks. *)

val csc : dims:int array -> t
(** Column-major CSC (rank 2 only). *)

val bcsr : dims:int array -> bi:int -> bk:int -> t
(** Block-CSR: the UCUU layout of the paper's Fig. 3(b). *)

val ucu : dims:int array -> bi:int -> t
(** One-dimensional row blocking (Fig. 14's subject). *)

val sparse_block : dims:int array -> bk:int -> t
(** The UUC sparse-block flavour of §5.2.1: large column split, inner level
    Compressed. *)

val csf : dims:int array -> t
(** Compressed sparse fiber for 3-D tensors. *)

(** {2 Naming and concordance} *)

val default_dim_names : string array

val var_name : ?dim_names:string array -> int -> string
(** e.g. ["i1"], ["k0"]. *)

val name : t -> string
(** Compact name over levels with extent > 1, e.g. ["UC"], ["UCUU"]. *)

val describe : ?dim_names:string array -> t -> string
(** Full per-level description, e.g. ["i1(U,512)->k1(C,640)->..."]. *)

val discordant_levels : t -> compute_order:int array -> int
(** Number of positions where the storage order disagrees with the compute
    loop order restricted to this tensor's non-degenerate variables;
    discordant traversal forces searching within Compressed levels (§3.1). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
