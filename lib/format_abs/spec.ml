(* A complete format specification for one sparse tensor, in the paper's
   SuperSchedule style: every logical index is split exactly once (split size 1
   degenerates to "no split"), the resulting derived levels are ordered by an
   arbitrary permutation, and each level is stored Uncompressed or Compressed.

   Derived-variable numbering: for logical dimension [d], the *top* (outer)
   variable is [2*d] and the *bottom* (inner) variable is [2*d + 1].  The
   logical coordinate decomposes as [logical = top * split + bottom]. *)

type t = {
  dims : int array; (* logical dimension sizes *)
  splits : int array; (* inner split size per logical dim, >= 1 *)
  order : int array; (* permutation of all 2*rank derived vars, root -> leaf *)
  formats : Levelfmt.t array; (* one per level, aligned with [order] *)
}

let rank t = Array.length t.dims

let nlevels t = 2 * rank t

let var_dim v = v / 2

let var_is_top v = v mod 2 = 0

let top_var d = 2 * d

let bottom_var d = (2 * d) + 1

(* Size of the index interval of derived var [v]: splits define the bottom
   size; the top covers ceil(dim / split) blocks. *)
let var_size t v =
  let d = var_dim v in
  if var_is_top v then (t.dims.(d) + t.splits.(d) - 1) / t.splits.(d)
  else t.splits.(d)

let level_var t lvl = t.order.(lvl)

let level_size t lvl = var_size t (level_var t lvl)

let level_format t lvl = t.formats.(lvl)

(* The one permutation checker every validation site routes through
   (Spec.order, Superschedule.compute_order / a_order, Encode.perm_matrix). *)
let permutation_error ~n order =
  if Array.length order <> n then
    Some (Printf.sprintf "length %d, expected %d" (Array.length order) n)
  else begin
    let seen = Array.make (max n 1) false in
    let err = ref None in
    Array.iter
      (fun v ->
        if !err = None then
          if v < 0 || v >= n then
            err := Some (Printf.sprintf "entry %d out of range [0,%d)" v n)
          else if seen.(v) then err := Some (Printf.sprintf "entry %d repeated" v)
          else seen.(v) <- true)
      order;
    !err
  end

let is_permutation n order = permutation_error ~n order = None

(* Legality pass: every invariant as an accumulated diagnostic.  The messages
   are the historical [invalid_arg] payloads (sans the "Spec: " prefix) so
   [validate] can keep its exact exception contract by delegating here. *)
let check t =
  let r = rank t in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if Array.length t.splits <> r then
    add (Diag.error ~code:"WACO-S001" ~loc:"spec.splits" "splits/dims length mismatch");
  for d = 0 to min r (Array.length t.splits) - 1 do
    if t.splits.(d) < 1 then
      add
        (Diag.error ~code:"WACO-S002"
           ~loc:(Printf.sprintf "spec.splits[%d]" d)
           "split size must be >= 1");
    if t.dims.(d) < 1 then
      add
        (Diag.error ~code:"WACO-S003"
           ~loc:(Printf.sprintf "spec.dims[%d]" d)
           "dims must be >= 1")
  done;
  if not (is_permutation (2 * r) t.order) then
    add
      (Diag.error ~code:"WACO-S004" ~loc:"spec.order"
         "order is not a permutation of the derived variables");
  if Array.length t.formats <> 2 * r then
    add (Diag.error ~code:"WACO-S005" ~loc:"spec.formats" "formats length mismatch");
  List.rev !ds

let validate t =
  match Diag.first_error (check t) with
  | Some d -> invalid_arg ("Spec: " ^ Diag.message d)
  | None -> ()

let make ~dims ~splits ~order ~formats =
  let t = { dims; splits; order; formats } in
  validate t;
  t

(* --- Canonical constructions --- *)

(* Unsplit row-major compressed-second-level: CSR for rank 2, and the natural
   generalization for other ranks.  Level order: tops in dim order (first U,
   rest C), then the size-1 bottoms. *)
let csr_like ~dims =
  let r = Array.length dims in
  let splits = Array.make r 1 in
  let order =
    Array.init (2 * r) (fun i -> if i < r then top_var i else bottom_var (i - r))
  in
  let formats =
    Array.init (2 * r) (fun i ->
        if i = 0 then Levelfmt.U else if i < r then Levelfmt.C else Levelfmt.U)
  in
  make ~dims ~splits ~order ~formats

(* Column-major CSC analogue (rank 2 only). *)
let csc ~dims =
  if Array.length dims <> 2 then invalid_arg "Spec.csc: rank must be 2";
  make ~dims ~splits:[| 1; 1 |]
    ~order:[| top_var 1; top_var 0; bottom_var 1; bottom_var 0 |]
    ~formats:[| Levelfmt.U; Levelfmt.C; Levelfmt.U; Levelfmt.U |]

(* Block-CSR: rows and columns split by (bi, bk); outer levels (i1 U, k1 C),
   inner dense block (i0 U, k0 U) — the UCUU layout of Fig. 3(b). *)
let bcsr ~dims ~bi ~bk =
  if Array.length dims <> 2 then invalid_arg "Spec.bcsr: rank must be 2";
  make ~dims ~splits:[| bi; bk |]
    ~order:[| top_var 0; top_var 1; bottom_var 0; bottom_var 1 |]
    ~formats:[| Levelfmt.U; Levelfmt.C; Levelfmt.U; Levelfmt.U |]

(* One-dimensional row blocking (UCU): split rows only.  Fig. 14's subject. *)
let ucu ~dims ~bi =
  if Array.length dims <> 2 then invalid_arg "Spec.ucu: rank must be 2";
  make ~dims ~splits:[| bi; 1 |]
    ~order:[| top_var 0; top_var 1; bottom_var 0; bottom_var 1 |]
    ~formats:[| Levelfmt.U; Levelfmt.C; Levelfmt.U; Levelfmt.U |]

(* Sparse-block format (UUC flavour from §5.2.1): split the column dimension
   with a large factor, keep the inner level Compressed. *)
let sparse_block ~dims ~bk =
  if Array.length dims <> 2 then invalid_arg "Spec.sparse_block: rank must be 2";
  make ~dims ~splits:[| 1; bk |]
    ~order:[| top_var 1; top_var 0; bottom_var 1; bottom_var 0 |]
    ~formats:[| Levelfmt.U; Levelfmt.U; Levelfmt.C; Levelfmt.U |]

(* CSF (compressed sparse fiber) for 3-D tensors: all top levels compressed. *)
let csf ~dims =
  if Array.length dims <> 3 then invalid_arg "Spec.csf: rank must be 3";
  make ~dims ~splits:[| 1; 1; 1 |]
    ~order:
      [| top_var 0; top_var 1; top_var 2; bottom_var 0; bottom_var 1; bottom_var 2 |]
    ~formats:[| Levelfmt.C; Levelfmt.C; Levelfmt.C; Levelfmt.U; Levelfmt.U; Levelfmt.U |]

(* --- Naming and concordance --- *)

let default_dim_names = [| "i"; "k"; "l"; "m" |]

let var_name ?(dim_names = default_dim_names) v =
  Printf.sprintf "%s%d" dim_names.(var_dim v) (if var_is_top v then 1 else 0)

(* Compact format name over the levels whose extent exceeds 1 (size-1 levels
   are degenerate), e.g. "UC" for CSR, "UCUU" for BCSR. *)
let name t =
  let buf = Buffer.create 8 in
  Array.iteri
    (fun lvl _ ->
      if level_size t lvl > 1 then Buffer.add_char buf (Levelfmt.to_char t.formats.(lvl)))
    t.order;
  if Buffer.length buf = 0 then "scalar" else Buffer.contents buf

let describe ?dim_names t =
  let parts =
    Array.to_list
      (Array.mapi
         (fun lvl v ->
           Printf.sprintf "%s(%c,%d)" (var_name ?dim_names v)
             (Levelfmt.to_char t.formats.(lvl))
             (level_size t lvl))
         t.order)
  in
  String.concat "->" parts

(* Number of discordant levels between this tensor's storage order and a
   compute loop order: positions where the compute order (restricted to this
   tensor's non-degenerate variables) disagrees with the storage order.
   Discordant traversal forces searching within Compressed levels (§3.1). *)
let discordant_levels t ~compute_order =
  let significant = Array.to_list t.order |> List.filter (fun v -> var_size t v > 1) in
  let storage_seq = Array.of_list significant in
  let in_tensor v = List.mem v significant in
  let compute_seq =
    Array.of_list (List.filter in_tensor (Array.to_list compute_order))
  in
  if Array.length compute_seq <> Array.length storage_seq then
    (* Compute order missing tensor vars: treat every level as discordant. *)
    Array.length storage_seq
  else begin
    let n = Array.length storage_seq in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if storage_seq.(i) <> compute_seq.(i) then incr count
    done;
    !count
  end

let equal a b =
  a.dims = b.dims && a.splits = b.splits && a.order = b.order && a.formats = b.formats

let pp ppf t = Fmt.string ppf (describe t)
