(* Analytic storage model: computes the pos/crd/value footprint of a format
   Spec over a pattern *without* materializing it, so the cost simulator can
   price formats whose zero-fill would be too large to pack physically (the
   paper's dataset likewise excludes schedules that run for over a minute, but
   the cost model must still rank them as bad).

   Derivation: walking levels root-to-leaf, the position count is
     p(-1) = 1
     p(l)  = p(l-1) * size(l)            if level l is U (dense expansion)
     p(l)  = #distinct nonzero prefixes  if level l is C
   and a C level's crd length equals its position count while its pos array
   has p(l-1) + 1 entries.  The value array has p(last) slots. *)

type t = {
  pos_ints : int;
  crd_ints : int;
  nvals : float; (* may exceed max_array_length for pathological formats *)
  bytes : float;
  fill_ratio : float;
  level_positions : float array; (* p(l) per level *)
  level_branching : float array; (* average children per parent, per level *)
}

(* Distinct-prefix counts per level depth, computed by exact prefix-id
   propagation: each entry carries the id of its depth-(l-1) prefix; the
   depth-l id is interned from (parent id, coordinate).  O(nnz * levels) with
   no sorting — this is on the dataset-generation hot path. *)
(* Generation-stamped interning scratch: a direct-mapped array avoids
   hashtable overhead for the (common) levels whose key space is small, and
   resets in O(1) via the generation counter.  Domain-local — the parallel
   measurement paths run [analyze] concurrently, and a shared scratch would
   let one domain's interning clobber another's. *)
let scratch_cap = 1 lsl 21

type scratch = { mutable ids : int array; mutable gens : int array; mutable g : int }

let scratch_key =
  Domain.DLS.new_key (fun () -> { ids = [||]; gens = [||]; g = 0 })

(* Allocated once per domain at full capacity; reset is O(1) via [g]. *)
let get_scratch () =
  let sc = Domain.DLS.get scratch_key in
  if Array.length sc.ids < scratch_cap then begin
    sc.ids <- Array.make scratch_cap 0;
    sc.gens <- Array.make scratch_cap 0
  end;
  sc

(* Upper bound on the number of distinct parent ids entering level [lvl]:
   ids are dense in [0, bound). *)
let counts_prev_bound prev_ids n lvl =
  if lvl = 0 then 1
  else begin
    let m = ref 0 in
    for e = 0 to n - 1 do
      if prev_ids.(e) > !m then m := prev_ids.(e)
    done;
    !m + 1
  end

let distinct_prefix_counts (spec : Spec.t) (entries : (int array * float) array) =
  let n = Array.length entries in
  let nlv = Spec.nlevels spec in
  let counts = Array.make nlv 0 in
  let prev_ids = Array.make n 0 in
  let lvl = ref 0 in
  let all_distinct = ref false in
  while !lvl < nlv && not !all_distinct do
    let size = Spec.level_size spec !lvl in
    let key_space = (counts_prev_bound prev_ids n !lvl * (size + 1)) + size + 1 in
    let next = ref 0 in
    if key_space > 0 && key_space <= scratch_cap then begin
      (* Direct-mapped interning. *)
      let sc = get_scratch () in
      sc.g <- sc.g + 1;
      let ids = sc.ids and gens = sc.gens and g = sc.g in
      for e = 0 to n - 1 do
        let coords, _ = entries.(e) in
        let c = Packed.derived_coord spec ~logical:() !lvl coords in
        let key = (prev_ids.(e) * (size + 1)) + c in
        let id =
          if gens.(key) = g then ids.(key)
          else begin
            let id = !next in
            incr next;
            gens.(key) <- g;
            ids.(key) <- id;
            id
          end
        in
        prev_ids.(e) <- id
      done
    end
    else begin
      let tbl : (int, int) Hashtbl.t = Hashtbl.create (2 * n) in
      for e = 0 to n - 1 do
        let coords, _ = entries.(e) in
        let c = Packed.derived_coord spec ~logical:() !lvl coords in
        let key = (prev_ids.(e) * (size + 1)) + c in
        let id =
          match Hashtbl.find_opt tbl key with
          | Some id -> id
          | None ->
              let id = !next in
              incr next;
              Hashtbl.add tbl key id;
              id
        in
        prev_ids.(e) <- id
      done
    end;
    counts.(!lvl) <- !next;
    (* Once every entry has a distinct prefix, all deeper levels do too. *)
    if !next = n then begin
      for l = !lvl + 1 to nlv - 1 do
        counts.(l) <- n
      done;
      all_distinct := true
    end;
    incr lvl
  done;
  counts

let analyze (spec : Spec.t) (entries : (int array * float) array) =
  Spec.validate spec;
  let nlv = Spec.nlevels spec in
  let nnz = Array.length entries in
  let prefix_counts = distinct_prefix_counts spec entries in
  let level_positions = Array.make nlv 0.0 in
  let level_branching = Array.make nlv 0.0 in
  let pos_ints = ref 0 and crd_ints = ref 0 in
  let prev = ref 1.0 in
  for lvl = 0 to nlv - 1 do
    let p =
      match spec.Spec.formats.(lvl) with
      | Levelfmt.U -> !prev *. float_of_int (Spec.level_size spec lvl)
      | Levelfmt.C ->
          let c = float_of_int prefix_counts.(lvl) in
          pos_ints := !pos_ints + int_of_float (Float.min !prev 1e9) + 1;
          crd_ints := !crd_ints + prefix_counts.(lvl);
          c
    in
    level_positions.(lvl) <- p;
    level_branching.(lvl) <- (if !prev > 0.0 then p /. !prev else 0.0);
    prev := p
  done;
  let nvals = !prev in
  {
    pos_ints = !pos_ints;
    crd_ints = !crd_ints;
    nvals;
    bytes = 4.0 *. (float_of_int (!pos_ints + !crd_ints) +. nvals);
    fill_ratio = (if nvals > 0.0 then float_of_int nnz /. nvals else 0.0);
    level_positions;
    level_branching;
  }

let analyze_coo (spec : Spec.t) (m : Sptensor.Coo.t) =
  let entries =
    Array.init (Sptensor.Coo.nnz m) (fun k ->
        ([| m.Sptensor.Coo.rows.(k); m.Sptensor.Coo.cols.(k) |], m.Sptensor.Coo.vals.(k)))
  in
  analyze spec entries

let analyze_tensor3 (spec : Spec.t) (t : Sptensor.Tensor3.t) =
  let open Sptensor.Tensor3 in
  let entries =
    Array.init (nnz t) (fun p -> ([| t.is.(p); t.ks.(p); t.ls.(p) |], t.vals.(p)))
  in
  analyze spec entries
