(* Physical packing of a sparse tensor into an arbitrary format Spec.

   The packed representation is a coordinate hierarchy (Fig. 3 of the paper):
   levels are materialized root-to-leaf; a [Dense] (U) level expands each
   parent position into [size] child slots (zero-filling absent ones), while a
   [Compressed] (C) level stores explicit pos/crd arrays.  Leaf positions hold
   the value array, including the padding zeros a dense-blocked format pays
   for — the executors and the cost simulator both see that padding. *)

type level =
  | Dense of int (* slot count per parent *)
  | Compressed of { pos : int array; crd : int array }

type t = {
  spec : Spec.t;
  levels : level array;
  vals : float array;
  nnz : int; (* logical (unpadded) nonzero count *)
}

(* Refuse to materialize more than this many leaf slots by default: formats
   that zero-fill most of the space are representable (the analytic storage
   model still prices them) but not physically packed. *)
let default_budget = 1 lsl 24

let derived_coord spec ~logical lvl entry_coords =
  let v = Spec.level_var spec lvl in
  let d = Spec.var_dim v in
  ignore logical;
  let c = entry_coords.(d) in
  if Spec.var_is_top v then c / spec.Spec.splits.(d) else c mod spec.Spec.splits.(d)

(* Pack [entries] (logical coordinates + value, duplicates forbidden) into the
   given spec.  Returns [Error] if the materialized size would exceed
   [budget] or if duplicate coordinates are present. *)
let pack ?(budget = default_budget) (spec : Spec.t) (entries : (int array * float) array) =
  Spec.validate spec;
  let n = Array.length entries in
  let nlv = Spec.nlevels spec in
  (* Precompute per-level derived coordinates, entry-major. *)
  let lvl_coords =
    Array.init nlv (fun lvl ->
        Array.map (fun (coords, _) -> derived_coord spec ~logical:() lvl coords) entries)
  in
  (* Sort entry indices lexicographically by level coordinates. *)
  let idx = Array.init n (fun e -> e) in
  let compare_entries a b =
    let rec go lvl =
      if lvl = nlv then 0
      else begin
        let ca = lvl_coords.(lvl).(a) and cb = lvl_coords.(lvl).(b) in
        if ca <> cb then Int.compare ca cb else go (lvl + 1)
      end
    in
    go 0
  in
  Array.sort compare_entries idx;
  (* Reject duplicates. *)
  let dup = ref false in
  for e = 1 to n - 1 do
    if compare_entries idx.(e - 1) idx.(e) = 0 then dup := true
  done;
  if !dup then Error "Packed.pack: duplicate coordinates"
  else begin
    (* Segments over the sorted entry array: one (lo, hi) range per position
       at the current level; empty ranges are padding slots. *)
    let seg_lo = ref [| 0 |] and seg_hi = ref [| n |] in
    let levels = Array.make nlv (Dense 0) in
    let exceeded = ref false in
    (try
       for lvl = 0 to nlv - 1 do
         let coords = lvl_coords.(lvl) in
         let nseg = Array.length !seg_lo in
         match spec.Spec.formats.(lvl) with
         | Levelfmt.U ->
             let size = Spec.level_size spec lvl in
             if nseg * size > budget then begin
               exceeded := true;
               raise Exit
             end;
             let nlo = Array.make (nseg * size) 0 in
             let nhi = Array.make (nseg * size) 0 in
             for s = 0 to nseg - 1 do
               let cur = ref !seg_lo.(s) in
               let hi = !seg_hi.(s) in
               for c = 0 to size - 1 do
                 let start = !cur in
                 while !cur < hi && coords.(idx.(!cur)) = c do
                   incr cur
                 done;
                 nlo.((s * size) + c) <- start;
                 nhi.((s * size) + c) <- !cur
               done
             done;
             levels.(lvl) <- Dense size;
             seg_lo := nlo;
             seg_hi := nhi
         | Levelfmt.C ->
             let pos = Array.make (nseg + 1) 0 in
             let crd_list = ref [] and crd_count = ref 0 in
             let nlo_list = ref [] and nhi_list = ref [] in
             for s = 0 to nseg - 1 do
               let cur = ref !seg_lo.(s) in
               let hi = !seg_hi.(s) in
               while !cur < hi do
                 let c = coords.(idx.(!cur)) in
                 let start = !cur in
                 while !cur < hi && coords.(idx.(!cur)) = c do
                   incr cur
                 done;
                 crd_list := c :: !crd_list;
                 incr crd_count;
                 nlo_list := start :: !nlo_list;
                 nhi_list := !cur :: !nhi_list
               done;
               pos.(s + 1) <- !crd_count
             done;
             let crd_arr = Array.of_list (List.rev !crd_list) in
             levels.(lvl) <- Compressed { pos; crd = crd_arr };
             seg_lo := Array.of_list (List.rev !nlo_list);
             seg_hi := Array.of_list (List.rev !nhi_list)
       done
     with Exit -> ());
    if !exceeded then Error "Packed.pack: materialized size exceeds budget"
    else begin
      let nleaf = Array.length !seg_lo in
      let vals = Array.make nleaf 0.0 in
      let ok = ref true in
      for s = 0 to nleaf - 1 do
        let lo = !seg_lo.(s) and hi = !seg_hi.(s) in
        if hi - lo > 1 then ok := false
        else if hi - lo = 1 then begin
          let _, v = entries.(idx.(lo)) in
          vals.(s) <- v
        end
      done;
      if not !ok then Error "Packed.pack: internal error (non-singleton leaf)"
      else Ok { spec; levels; vals; nnz = n }
    end
  end

let of_coo ?budget (spec : Spec.t) (m : Sptensor.Coo.t) =
  if Spec.rank spec <> 2 then invalid_arg "Packed.of_coo: spec rank must be 2";
  if spec.Spec.dims.(0) <> m.Sptensor.Coo.nrows || spec.Spec.dims.(1) <> m.Sptensor.Coo.ncols
  then invalid_arg "Packed.of_coo: spec dims do not match matrix";
  let entries =
    Array.init (Sptensor.Coo.nnz m) (fun k ->
        ([| m.Sptensor.Coo.rows.(k); m.Sptensor.Coo.cols.(k) |], m.Sptensor.Coo.vals.(k)))
  in
  pack ?budget spec entries

let of_tensor3 ?budget (spec : Spec.t) (t : Sptensor.Tensor3.t) =
  if Spec.rank spec <> 3 then invalid_arg "Packed.of_tensor3: spec rank must be 3";
  let open Sptensor.Tensor3 in
  if spec.Spec.dims.(0) <> t.dim_i || spec.Spec.dims.(1) <> t.dim_k
     || spec.Spec.dims.(2) <> t.dim_l
  then invalid_arg "Packed.of_tensor3: spec dims do not match tensor";
  let entries =
    Array.init (nnz t) (fun p -> ([| t.is.(p); t.ks.(p); t.ls.(p) |], t.vals.(p)))
  in
  pack ?budget spec entries

(* Iterate stored leaf slots in storage (concordant) order.  [f] receives the
   logical coordinates and value of each *in-bounds* slot, including stored
   padding zeros inside valid bounds; out-of-bounds padding slots (from
   non-divisible splits) are skipped. *)
let iter_leaves t f =
  let spec = t.spec in
  let r = Spec.rank spec in
  let nlv = Spec.nlevels spec in
  let tops = Array.make r 0 and bottoms = Array.make r 0 in
  let logical = Array.make r 0 in
  let rec walk lvl pos =
    if lvl = nlv then begin
      let in_bounds = ref true in
      for d = 0 to r - 1 do
        logical.(d) <- (tops.(d) * spec.Spec.splits.(d)) + bottoms.(d);
        if logical.(d) >= spec.Spec.dims.(d) then in_bounds := false
      done;
      if !in_bounds then f logical t.vals.(pos)
    end
    else begin
      let v = Spec.level_var spec lvl in
      let d = Spec.var_dim v in
      let is_top = Spec.var_is_top v in
      match t.levels.(lvl) with
      | Dense size ->
          for c = 0 to size - 1 do
            if is_top then tops.(d) <- c else bottoms.(d) <- c;
            walk (lvl + 1) ((pos * size) + c)
          done
      | Compressed { pos = pa; crd } ->
          for q = pa.(pos) to pa.(pos + 1) - 1 do
            let c = crd.(q) in
            if is_top then tops.(d) <- c else bottoms.(d) <- c;
            walk (lvl + 1) q
          done
    end
  in
  walk 0 0

(* Round-trip back to COO, dropping exact zeros (padding). *)
let to_coo t =
  if Spec.rank t.spec <> 2 then invalid_arg "Packed.to_coo: rank must be 2";
  let triplets = ref [] in
  iter_leaves t (fun coords v ->
      if v <> 0.0 then triplets := (coords.(0), coords.(1), v) :: !triplets);
  Sptensor.Coo.of_triplets ~nrows:t.spec.Spec.dims.(0) ~ncols:t.spec.Spec.dims.(1)
    !triplets

let to_quads t =
  if Spec.rank t.spec <> 3 then invalid_arg "Packed.to_quads: rank must be 3";
  let quads = ref [] in
  iter_leaves t (fun coords v ->
      if v <> 0.0 then quads := (coords.(0), coords.(1), coords.(2), v) :: !quads);
  !quads

(* Physical storage accounting (4-byte indices and values, as in the paper's
   single-precision evaluation). *)
type storage = {
  pos_ints : int;
  crd_ints : int;
  nvals : int;
  bytes : int;
  fill_ratio : float; (* logical nnz / materialized value slots *)
}

let storage_of t =
  let pos_ints = ref 0 and crd_ints = ref 0 in
  Array.iter
    (function
      | Dense _ -> ()
      | Compressed { pos; crd } ->
          pos_ints := !pos_ints + Array.length pos;
          crd_ints := !crd_ints + Array.length crd)
    t.levels;
  let nvals = Array.length t.vals in
  {
    pos_ints = !pos_ints;
    crd_ints = !crd_ints;
    nvals;
    bytes = 4 * (!pos_ints + !crd_ints + nvals);
    fill_ratio = (if nvals = 0 then 0.0 else float_of_int t.nnz /. float_of_int nvals);
  }

let pp ppf t =
  let s = storage_of t in
  Fmt.pf ppf "packed[%s] nnz=%d vals=%d bytes=%d" (Spec.name t.spec) t.nnz s.nvals
    s.bytes
