(** The four sparse tensor algebra algorithms of the paper's evaluation
    (§5.1), with the structural facts the SuperSchedule and the cost
    simulator need. *)

type t =
  | Spmv  (** [C\[i\] = A\[i,k\] * B\[k\]] *)
  | Spmm of int  (** [C\[i,j\] = A\[i,k\] * B\[k,j\]]; the argument is [|j|] *)
  | Sddmm of int  (** [D\[i,j\] = A\[i,j\] * B\[i,k\] * C\[k,j\]]; argument [|k|] *)
  | Mttkrp of int  (** [D\[i,j\] = A\[i,k,l\] * B\[k,j\] * C\[l,j\]]; argument [|j|] *)

val name : t -> string

val of_name : string -> t option
(** Inverse of [name], with the paper's dense sizes ([|j|]=256 for
    SpMM/SDDMM, 16 for MTTKRP). *)

val sparse_rank : t -> int
(** Rank of the sparse operand A. *)

val dim_names : t -> string array

val dense_inner : t -> int
(** Trip count of the dense loop outside A's index space (0 if none). *)

val reduction_dims : t -> int list
(** Logical dims of A the kernel reduces along: parallelizing those needs
    atomics, which is why SDDMM alone can parallelize columns (§5.2.1). *)

val parallel_candidates : t -> int list
(** Derived variables eligible for [parallelize] (Table 3). *)

val flops_per_entry : t -> float
(** FLOPs per materialized value slot of A. *)

val pp : Format.formatter -> t -> unit
