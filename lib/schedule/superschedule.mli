(** The SuperSchedule (§4.1.2): a unified template defining the format
    schedule and the compute schedule together.  Each logical index of the
    sparse operand is split exactly once (size 1 = no split).  Dense operands
    keep the fixed orientations of the paper's evaluation setup, so they are
    not part of the template. *)

type threads = Half | Full  (** physical cores only / all SMT threads *)

type t = {
  algo : Algorithm.t;
  splits : int array;  (** inner split size per sparse logical dim *)
  compute_order : int array;  (** permutation of the [2*rank] derived vars *)
  par_var : int;  (** derived variable that is parallelized *)
  threads : threads;
  chunk : int;  (** OpenMP dynamic chunk size *)
  a_order : int array;  (** A's level order *)
  a_formats : Format_abs.Levelfmt.t array;  (** per level of A *)
}

val threads_name : threads -> string

val to_spec : t -> dims:int array -> Format_abs.Spec.t
(** A's format spec for a concrete tensor shape; splits are capped by the
    dimensions. *)

val check : t -> Diag.t list
(** Non-throwing legality pass: every malformation (bad permutations,
    non-parallelizable [par_var], ...) as a [WACO-S01x] diagnostic.  Single
    source of truth for the invariants; [validate] delegates here. *)

val validate : t -> unit
(** Raises [Invalid_argument] on the first error-level diagnostic of
    [check]. *)

val key : t -> string
(** Unique identity string: deduplication in the KNN graph, runtime
    memoization. *)

val equal : t -> t -> bool

val describe : t -> string

val pp : Format.formatter -> t -> unit

val fixed_default : Algorithm.t -> t
(** The paper's FixedCSR baseline schedule: UC (CSR) format — CCC/CSF for
    MTTKRP — concordant default loop order, rows parallelized on all
    threads, the default chunk sizes of §5.1 (scaled with the corpus). *)

val concordant_with_format :
  Algorithm.t ->
  splits:int array ->
  a_order:int array ->
  a_formats:Format_abs.Levelfmt.t array ->
  t
(** A schedule storing A as specified with a concordant iteration order —
    what format-only tuning produces (§2.1's F. column). *)
