(* Encoding of a SuperSchedule into the program embedder's inputs (Fig. 11):
   categorical parameters become one-hot vectors (consumed by learnable lookup
   tables), permutation parameters become flattened permutation matrices
   (consumed by linear-ReLU stacks). *)

type t = {
  split_onehots : float array array; (* rank x |split_options| *)
  compute_perm : float array; (* (2r)^2 row-major permutation matrix *)
  a_perm : float array; (* (2r)^2 *)
  a_format_onehot : float array; (* 2r x 2, flattened *)
  par_onehot : float array; (* 2r *)
  threads_onehot : float array; (* 2 *)
  chunk_onehot : float array; (* |chunk_options| *)
}

let onehot n i =
  let v = Array.make n 0.0 in
  if i >= 0 && i < n then v.(i) <- 1.0;
  v

let perm_matrix order =
  let n = Array.length order in
  (match Format_abs.Spec.permutation_error ~n order with
  | Some why -> invalid_arg ("Encode.perm_matrix: " ^ why)
  | None -> ());
  let m = Array.make (n * n) 0.0 in
  Array.iteri (fun pos v -> m.((pos * n) + v) <- 1.0) order;
  m

let split_index s =
  match Space.log2_index Space.split_options s with
  | Some i -> i
  | None ->
      (* Non-menu sizes (possible after dim capping) map to the nearest
         power-of-two slot. *)
      let lg = int_of_float (Float.round (log (float_of_int (max 1 s)) /. log 2.0)) in
      min (Array.length Space.split_options - 1) (max 0 lg)

let chunk_index c =
  match Space.log2_index Space.chunk_options c with
  | Some i -> i
  | None ->
      let lg = int_of_float (Float.round (log (float_of_int (max 1 c)) /. log 2.0)) in
      min (Array.length Space.chunk_options - 1) (max 0 lg)

let encode (s : Superschedule.t) =
  let r = Algorithm.sparse_rank s.Superschedule.algo in
  let nsplit = Array.length Space.split_options in
  let fmt_onehot = Array.make (2 * r * 2) 0.0 in
  Array.iteri
    (fun lvl f ->
      let slot = match f with Format_abs.Levelfmt.U -> 0 | Format_abs.Levelfmt.C -> 1 in
      fmt_onehot.((lvl * 2) + slot) <- 1.0)
    s.a_formats;
  {
    split_onehots = Array.map (fun sz -> onehot nsplit (split_index sz)) s.splits;
    compute_perm = perm_matrix s.compute_order;
    a_perm = perm_matrix s.a_order;
    a_format_onehot = fmt_onehot;
    par_onehot = onehot (2 * r) s.par_var;
    threads_onehot =
      onehot 2 (match s.threads with Superschedule.Half -> 0 | Superschedule.Full -> 1);
    chunk_onehot = onehot (Array.length Space.chunk_options) (chunk_index s.chunk);
  }

(* Flat concatenation (for distance computations and simple models). *)
let to_flat e =
  Array.concat
    (Array.to_list e.split_onehots
    @ [
        e.compute_perm;
        e.a_perm;
        e.a_format_onehot;
        e.par_onehot;
        e.threads_onehot;
        e.chunk_onehot;
      ])

let flat_dim ~rank =
  let n = 2 * rank in
  (rank * Array.length Space.split_options)
  + (2 * n * n) + (n * 2) + n + 2
  + Array.length Space.chunk_options
