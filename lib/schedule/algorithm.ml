(* The four sparse tensor algebra algorithms of the paper's evaluation, with
   the structural facts the SuperSchedule and the cost simulator need: the
   sparse tensor's rank, which logical dims are reductions (parallelizing a
   reduction dim needs atomics), and the trip count of the dense inner loop
   that is not part of the sparse tensor's index space. *)

type t =
  | Spmv (* C[i] = A[i,k] * B[k] *)
  | Spmm of int (* C[i,j] = A[i,k] * B[k,j]; argument = |j| *)
  | Sddmm of int (* D[i,j] = A[i,j] * B[i,k] * C[k,j]; argument = |k| *)
  | Mttkrp of int (* D[i,j] = A[i,k,l] * B[k,j] * C[l,j]; argument = |j| *)

let name = function
  | Spmv -> "SpMV"
  | Spmm _ -> "SpMM"
  | Sddmm _ -> "SDDMM"
  | Mttkrp _ -> "MTTKRP"

(* Inverse of [name], instantiated with the paper's dense sizes (|j|=256 for
   SpMM/SDDMM, |j|=16 for MTTKRP). *)
let of_name = function
  | "SpMV" -> Some Spmv
  | "SpMM" -> Some (Spmm 256)
  | "SDDMM" -> Some (Sddmm 256)
  | "MTTKRP" -> Some (Mttkrp 16)
  | _ -> None

(* Rank of the sparse operand A. *)
let sparse_rank = function Spmv | Spmm _ | Sddmm _ -> 2 | Mttkrp _ -> 3

let dim_names = function
  | Spmv | Spmm _ -> [| "i"; "k" |]
  | Sddmm _ -> [| "i"; "j" |]
  | Mttkrp _ -> [| "i"; "k"; "l" |]

(* Trip count of the dense loop outside A's index space (0 = none). *)
let dense_inner = function
  | Spmv -> 0
  | Spmm jn -> jn
  | Sddmm kn -> kn
  | Mttkrp jn -> jn

(* Logical dims of A along which the kernel reduces: parallelizing these
   requires atomics / privatization (§5.2.1's reason SDDMM alone can
   parallelize over columns). *)
let reduction_dims = function
  | Spmv | Spmm _ -> [ 1 ] (* k *)
  | Sddmm _ -> [] (* the reduction is the dense k loop *)
  | Mttkrp _ -> [ 1; 2 ] (* k, l *)

(* Derived variables eligible for `parallelize` (Table 3 restricts MV to
   [i1; i0]; SDDMM additionally allows the column dimension). *)
let parallel_candidates algo =
  let r = sparse_rank algo in
  let reductions = reduction_dims algo in
  List.concat_map
    (fun d ->
      if List.mem d reductions then []
      else [ Format_abs.Spec.top_var d; Format_abs.Spec.bottom_var d ])
    (List.init r (fun d -> d))

(* FLOPs per stored (materialized) value slot of A. *)
let flops_per_entry = function
  | Spmv -> 2.0
  | Spmm jn -> 2.0 *. float_of_int jn
  | Sddmm kn -> (2.0 *. float_of_int kn) +. 1.0
  | Mttkrp jn -> 3.0 *. float_of_int jn

let pp ppf t = Fmt.string ppf (name t)
