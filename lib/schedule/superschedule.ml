(* The SuperSchedule (§4.1.2): a unified template defining the format schedule
   and the compute schedule together.  Each logical index of the sparse
   operand is split exactly once (size 1 = no split); the template fixes

     - compute schedule: loop order over the derived variables, which loop is
       parallelized, thread count, OpenMP dynamic chunk size;
     - format schedule: A's level order and per-level U/C formats.

   Dense operands keep the fixed orientations of the paper's evaluation setup
   (SpMM B/C row-major, SDDMM B row-major / C column-major, MTTKRP B/C
   row-major), so they are not part of the template. *)

type threads = Half | Full

type t = {
  algo : Algorithm.t;
  splits : int array; (* inner split size per sparse logical dim *)
  compute_order : int array; (* permutation of the 2*rank derived vars *)
  par_var : int; (* derived var that is parallelized *)
  threads : threads;
  chunk : int; (* OpenMP dynamic chunk size *)
  a_order : int array; (* A's level order (permutation of derived vars) *)
  a_formats : Format_abs.Levelfmt.t array; (* per level of A *)
}

let threads_name = function Half -> "half" | Full -> "full"

(* A's format Spec for a concrete tensor shape. *)
let to_spec t ~dims =
  Format_abs.Spec.make ~dims
    ~splits:(Array.map2 (fun s d -> min s (max 1 d)) t.splits dims)
    ~order:t.a_order ~formats:t.a_formats

(* Legality pass: every invariant as an accumulated diagnostic (codes
   WACO-S01x).  Messages are the historical [invalid_arg] payloads (sans the
   "Superschedule: " prefix) so [validate] keeps its exception contract by
   delegating here — single source of truth, no duplicated invariant logic. *)
let check t =
  let r = Algorithm.sparse_rank t.algo in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if Array.length t.splits <> r then
    add (Diag.error ~code:"WACO-S010" ~loc:"schedule.splits" "splits rank mismatch");
  Array.iteri
    (fun d s ->
      if s < 1 then
        add
          (Diag.error ~code:"WACO-S011"
             ~loc:(Printf.sprintf "schedule.splits[%d]" d)
             "split < 1"))
    t.splits;
  (match Format_abs.Spec.permutation_error ~n:(2 * r) t.compute_order with
  | Some why ->
      add
        (Diag.error ~code:"WACO-S012" ~loc:"schedule.compute_order"
           "compute_order not a permutation (%s)" why)
  | None -> ());
  (match Format_abs.Spec.permutation_error ~n:(2 * r) t.a_order with
  | Some why ->
      add
        (Diag.error ~code:"WACO-S013" ~loc:"schedule.a_order"
           "a_order not a permutation (%s)" why)
  | None -> ());
  if Array.length t.a_formats <> 2 * r then
    add
      (Diag.error ~code:"WACO-S014" ~loc:"schedule.a_formats" "a_formats length mismatch");
  if t.par_var < 0 || t.par_var >= 2 * r then
    add (Diag.error ~code:"WACO-S015" ~loc:"schedule.par_var" "par_var out of range")
  else if not (List.mem t.par_var (Algorithm.parallel_candidates t.algo)) then
    add
      (Diag.error ~code:"WACO-S016" ~loc:"schedule.par_var"
         "par_var not parallelizable for this algorithm");
  if t.chunk < 1 then
    add (Diag.error ~code:"WACO-S017" ~loc:"schedule.chunk" "chunk < 1");
  List.rev !ds

(* The historical exception messages truncate the diagnostic detail after the
   first parenthesis-free payload; strip the "(...)" suffix the permutation
   diagnostics append. *)
let legacy_message m =
  match String.index_opt m '(' with
  | Some i when i > 0 && m.[i - 1] = ' ' -> String.sub m 0 (i - 1)
  | _ -> m

let validate t =
  match Diag.first_error (check t) with
  | Some d -> invalid_arg ("Superschedule: " ^ legacy_message (Diag.message d))
  | None -> ()

(* Unique identity string; used for deduplication in the KNN graph and for
   memoizing ground-truth runtimes. *)
let key t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Algorithm.name t.algo);
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "|s%d" s)) t.splits;
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "|c%d" v)) t.compute_order;
  Buffer.add_string buf (Printf.sprintf "|p%d|t%s|k%d" t.par_var
                           (threads_name t.threads) t.chunk);
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "|o%d" v)) t.a_order;
  Array.iter
    (fun f -> Buffer.add_char buf (Format_abs.Levelfmt.to_char f))
    t.a_formats;
  Buffer.contents buf

let equal a b = key a = key b

let describe t =
  let names = Algorithm.dim_names t.algo in
  let var v = Format_abs.Spec.var_name ~dim_names:names v in
  Printf.sprintf "%s splits=[%s] loop=[%s] par=%s(%s,chunk=%d) A=[%s/%s]"
    (Algorithm.name t.algo)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.splits)))
    (String.concat ">" (Array.to_list (Array.map var t.compute_order)))
    (var t.par_var) (threads_name t.threads) t.chunk
    (String.concat ">" (Array.to_list (Array.map var t.a_order)))
    (String.concat ""
       (Array.to_list
          (Array.map
             (fun f -> String.make 1 (Format_abs.Levelfmt.to_char f))
             t.a_formats)))

let pp ppf t = Fmt.string ppf (describe t)

(* --- Canonical schedules --- *)

(* The paper's FixedCSR baseline: UC (CSR) / CCC (CSF for MTTKRP), default
   concordant loop order, parallel outer rows, all threads, OpenMP chunk 128
   for SpMV and 32 otherwise (§5.1). *)
let fixed_default algo =
  let r = Algorithm.sparse_rank algo in
  let splits = Array.make r 1 in
  let order =
    Array.init (2 * r) (fun i ->
        if i < r then Format_abs.Spec.top_var i else Format_abs.Spec.bottom_var (i - r))
  in
  let formats =
    match algo with
    | Algorithm.Mttkrp _ ->
        (* CSF: CCC on the top levels. *)
        Array.init (2 * r) (fun i -> if i < r then Format_abs.Levelfmt.C else Format_abs.Levelfmt.U)
    | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
        Array.init (2 * r) (fun i ->
            if i = 0 then Format_abs.Levelfmt.U
            else if i < r then Format_abs.Levelfmt.C
            else Format_abs.Levelfmt.U)
  in
  {
    algo;
    splits;
    compute_order = Array.copy order;
    par_var = Format_abs.Spec.top_var 0;
    threads = Full;
    (* Paper defaults are 128 (SpMV) / 32 (others); scaled by 8 with the
       corpus dimensions so the chunks-per-thread ratio matches. *)
    chunk = (match algo with Algorithm.Spmv -> 16 | _ -> 4);
    a_order = order;
    a_formats = formats;
  }

(* A schedule whose format is [spec]-shaped with a concordant loop order —
   used by format-only tuning (Table 1's "F." column keeps the iteration
   order concordant with the tuned format). *)
let concordant_with_format algo ~splits ~a_order ~a_formats =
  let base = fixed_default algo in
  { base with splits; a_order; a_formats; compute_order = Array.copy a_order }
