(* Field-by-field text serialization of a SuperSchedule, shared by the dataset
   persistence layer (`waco collect` / `waco train --data`) and the lint
   artifact passes.  [Superschedule.key] is an identity string, not designed
   to be parsed back; this encoding is.

   Wire format (one line):
     algo=SpMM;splits=1,4;order=0,2,1,3;par=0;threads=full;chunk=4;aorder=0,2,1,3;afmt=UCUU *)

let serialize (s : Superschedule.t) =
  let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  let fmts =
    String.concat ""
      (Array.to_list
         (Array.map
            (fun f -> String.make 1 (Format_abs.Levelfmt.to_char f))
            s.Superschedule.a_formats))
  in
  Printf.sprintf "algo=%s;splits=%s;order=%s;par=%d;threads=%s;chunk=%d;aorder=%s;afmt=%s"
    (Algorithm.name s.Superschedule.algo)
    (ints s.Superschedule.splits)
    (ints s.Superschedule.compute_order)
    s.Superschedule.par_var
    (Superschedule.threads_name s.Superschedule.threads)
    s.Superschedule.chunk
    (ints s.Superschedule.a_order)
    fmts

(* Structural parse only: reports malformed fields without judging legality —
   the caller decides whether to [Superschedule.validate] (throw) or
   [Superschedule.check] (accumulate diagnostics). *)
let parse ~(algo : Algorithm.t) (text : string) : (Superschedule.t, string) result =
  let fields =
    String.split_on_char ';' text
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> None)
  in
  let ( let* ) r f = Result.bind r f in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error ("missing field " ^ k)
  in
  let ints k =
    let* v = get k in
    try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' v)))
    with Failure _ -> Error (Printf.sprintf "field %s: not a comma-separated int list" k)
  in
  let int k =
    let* v = get k in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %s: not an integer" k)
  in
  let* a = get "algo" in
  if a <> Algorithm.name algo then Error "algorithm mismatch"
  else
    let* splits = ints "splits" in
    let* compute_order = ints "order" in
    let* par_var = int "par" in
    let* threads_s = get "threads" in
    let* threads =
      match threads_s with
      | "half" -> Ok Superschedule.Half
      | "full" -> Ok Superschedule.Full
      | s -> Error (Printf.sprintf "field threads: unknown value %s" s)
    in
    let* chunk = int "chunk" in
    let* a_order = ints "aorder" in
    let* afmt = get "afmt" in
    let* a_formats =
      try
        Ok (Array.init (String.length afmt) (fun i -> Format_abs.Levelfmt.of_char afmt.[i]))
      with Invalid_argument _ -> Error "field afmt: level formats must be U or C"
    in
    Ok
      {
        Superschedule.algo;
        splits;
        compute_order;
        par_var;
        threads;
        chunk;
        a_order;
        a_formats;
      }
