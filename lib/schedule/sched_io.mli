(** Parseable text serialization of a SuperSchedule, shared by the dataset
    persistence layer and the lint artifact passes
    (["algo=SpMM;splits=1,4;order=0,2,1,3;..."]). *)

val serialize : Superschedule.t -> string

val parse : algo:Algorithm.t -> string -> (Superschedule.t, string) result
(** Structural parse only — malformed fields become [Error]; legality is the
    caller's choice ([Superschedule.validate] to throw, [Superschedule.check]
    to accumulate diagnostics). *)
