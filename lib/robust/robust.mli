(** Durable artifact IO: atomic writes, a versioned + CRC32-checksummed
    envelope, typed load failures, recursive directory creation and a bounded
    retry wrapper.  The contract every adopter inherits: {e after a crash at
    any write point, loading yields either the previous complete artifact or
    a clean typed error — never garbage}.  [Faults] provides the deterministic
    injection hooks the test harness uses to prove it. *)

module Faults = Faults

(** {2 Clocks} *)

val mono_now : unit -> float
(** Monotonic seconds (CLOCK_MONOTONIC; arbitrary epoch).  {e Every}
    deadline and elapsed-time computation must use this clock: the wall
    clock steps under NTP or a manual change, and a step blows in-flight
    deadlines or silently disables timeout reapers (DESIGN.md §12).  Falls
    back to a never-backward-clamped wall clock where the monotonic source
    is unavailable. *)

val wall_now : unit -> float
(** The wall clock (Unix epoch seconds), for human-facing timestamps only —
    e.g. the serving daemon's [started] stat.  Routed through
    {!Faults.arm_clock_skew} so chaos tests can step it and prove nothing
    load-bearing depends on it. *)

(** {2 Typed load failures} *)

type load_error =
  | Missing of { file : string; reason : string }
      (** file absent or unreadable (maps to lint code WACO-A001) *)
  | Not_an_artifact of { file : string }
      (** no envelope header — possibly a legacy raw dump *)
  | Truncated of { file : string; expected_bytes : int; got_bytes : int }
  | Bad_checksum of { file : string; expected : string; actual : string }
      (** maps to lint code WACO-A006 *)
  | Version_mismatch of { file : string; found : int; expected : int }
      (** maps to lint code WACO-A007 *)
  | Wrong_kind of { file : string; found : string; expected : string }
      (** a valid artifact of the wrong kind (also WACO-A007) *)
  | Malformed of { file : string; reason : string }

exception Load_error of load_error

val load_error_file : load_error -> string

val load_error_to_string : load_error -> string

(** {2 Checksums} *)

val crc32 : string -> int
(** CRC32 (IEEE 802.3 / zlib convention) as a non-negative int. *)

val crc32_hex : string -> string
(** Zero-padded 8-digit lowercase hex of {!crc32}. *)

(** {2 Filesystem primitives} *)

val mkdir_p : ?perm:int -> string -> unit
(** Recursive [mkdir]; existing directories are fine. *)

val write_atomic_string : string -> string -> unit
(** [write_atomic_string path content]: temp file in [path]'s directory →
    flush/fsync → [Sys.rename].  Carries the {!Faults} write points. *)

val write_atomic : string -> (Buffer.t -> unit) -> unit
(** Same, with the content built in a buffer by the callback. *)

val read_file : string -> (string, load_error) result
(** Whole-file read; [Error (Missing _)] when absent or unreadable. *)

(** {2 The artifact envelope} *)

val magic : string
(** First bytes of every enveloped artifact. *)

val artifact_version : int
(** Envelope version this build writes and reads. *)

(** Artifact kind strings shared by writers and the lint passes. *)
module Kind : sig
  val model : string
  val index : string
  val checkpoint : string

  val cache : string
  (** The serving daemon's persistent schedule cache ([lib/serve]). *)
end

val write_artifact : kind:string -> ?version:int -> string -> string -> unit
(** [write_artifact ~kind path payload] writes
    ["%%WACO-ARTIFACT v1 kind=... bytes=... crc32=...\n" ^ payload]
    atomically. *)

val read_artifact :
  ?expected_kind:string -> ?expected_version:int -> string ->
  (string, load_error) result
(** Verifies envelope version, kind, byte count and checksum, returning the
    payload.  [Not_an_artifact] signals a pre-envelope legacy file the caller
    may fall back on. *)

val read_artifact_exn :
  ?expected_kind:string -> ?expected_version:int -> string -> string
(** Raising variant ({!Load_error}). *)

val lines : string -> string array
(** Payload split on newlines, without the empty fragment a trailing newline
    produces. *)

(** {2 Retry} *)

val backoff_delay :
  ?base_s:float -> ?max_s:float -> ?jitter:float -> ?seed:int ->
  attempt:int -> unit -> float
(** The delay before retry [attempt] (1-based): exponential from [base_s]
    (default 10 ms), capped at [max_s] (default 2 s), then shrunk by up to
    [jitter] (a fraction in [0,1], default 0.5) of itself using a
    deterministic hash of [(seed, attempt)] — seedable, clock-free jitter,
    so retry schedules are exactly reproducible yet different seeds never
    hammer a shared resource in lockstep.  Jitter only shortens the delay,
    so the cap and any wall-clock budget still hold. *)

val with_retry_backoff :
  ?attempts:int -> ?base_s:float -> ?max_s:float -> ?jitter:float ->
  ?seed:int -> ?budget_s:float -> ?on_retry:(int -> string -> unit) ->
  label:string -> (unit -> 'a) -> ('a, string) result
(** Run [f] up to [attempts] times (default 3), sleeping
    {!backoff_delay} between attempts, stopping early once [budget_s] wall
    seconds have elapsed.  [on_retry attempt msg] fires before each retry
    sleep (so callers — e.g. the serving daemon's metrics — can count
    absorbed transients).  {!Faults.Injected} (a simulated crash) is
    re-raised, never retried. *)

val with_retry :
  ?attempts:int -> ?backoff_s:float -> ?budget_s:float ->
  ?on_retry:(int -> string -> unit) -> label:string ->
  (unit -> 'a) -> ('a, string) result
(** {!with_retry_backoff} with its original signature: exponential from
    [backoff_s], the default 2 s cap, and a jitter seed derived from
    [label] — per-label deterministic, desynchronized across call sites. *)
