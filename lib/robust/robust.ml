(* Durable artifact IO for the WACO pipeline.

   Every artifact the pipeline stakes hours of work on (model dumps, dataset
   corpora, HNSW index snapshots, training checkpoints) goes through two
   defenses here:

   - *atomic writes*: content is materialized in full, written to a temp file
     in the destination directory, flushed (fsync when the OS grants it) and
     [Sys.rename]d over the target, so a crash at any point leaves either the
     previous complete file or no file — never a half-written one;
   - *a checksummed envelope*: a one-line versioned header carrying the
     artifact kind, payload byte count and CRC32, so silent corruption that
     bypasses atomicity (disk rot, concurrent writers, hand editing) is a
     typed [Load_error], never a garbage load.

   [Faults] hooks sit on the write path so the test harness can crash or
   corrupt every artifact deterministically. *)

module Faults = Faults

(* --- clocks --- *)

(* Every deadline and elapsed-time computation in this codebase must run on
   monotonic time: the wall clock steps (NTP, a manual `date`), and a step
   blows every in-flight deadline or silently disables timeout reapers.
   CLOCK_MONOTONIC comes from the bechamel C stub (clock_gettime, in
   nanoseconds); on a platform where the stub reports nothing we fall back
   to a monotonicized wall clock — gettimeofday clamped to never run
   backward, which survives a step with at worst a frozen interval. *)
let mono_now =
  let last = Atomic.make neg_infinity in
  let rec clamp t =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp t
  in
  fun () ->
    let ns = Monotonic_clock.now () in
    if Int64.compare ns 0L > 0 then Int64.to_float ns /. 1e9
    else clamp (Unix.gettimeofday ())

(* The wall clock, for human-facing timestamps only (e.g. the serving
   daemon's "started" stat).  Routed through a fault hook so the chaos
   harness can step it and prove nothing load-bearing reads it. *)
let wall_now () = Unix.gettimeofday () +. Faults.wall_skew ()

(* --- typed load failures --- *)

type load_error =
  | Missing of { file : string; reason : string }
  | Not_an_artifact of { file : string }
  | Truncated of { file : string; expected_bytes : int; got_bytes : int }
  | Bad_checksum of { file : string; expected : string; actual : string }
  | Version_mismatch of { file : string; found : int; expected : int }
  | Wrong_kind of { file : string; found : string; expected : string }
  | Malformed of { file : string; reason : string }

exception Load_error of load_error

let load_error_file = function
  | Missing { file; _ }
  | Not_an_artifact { file }
  | Truncated { file; _ }
  | Bad_checksum { file; _ }
  | Version_mismatch { file; _ }
  | Wrong_kind { file; _ }
  | Malformed { file; _ } -> file

let load_error_to_string = function
  | Missing { file; reason } -> Printf.sprintf "%s: %s" file reason
  | Not_an_artifact { file } ->
      Printf.sprintf "%s: not a WACO artifact (no envelope header)" file
  | Truncated { file; expected_bytes; got_bytes } ->
      Printf.sprintf "%s: truncated payload (%d of %d bytes)" file got_bytes
        expected_bytes
  | Bad_checksum { file; expected; actual } ->
      Printf.sprintf "%s: checksum mismatch (header %s, payload %s)" file expected
        actual
  | Version_mismatch { file; found; expected } ->
      Printf.sprintf "%s: envelope version %d (this build reads %d)" file found
        expected
  | Wrong_kind { file; found; expected } ->
      Printf.sprintf "%s: artifact kind %S (expected %S)" file found expected
  | Malformed { file; reason } -> Printf.sprintf "%s: %s" file reason

let () =
  Printexc.register_printer (function
    | Load_error e -> Some ("Robust.Load_error: " ^ load_error_to_string e)
    | _ -> None)

(* --- CRC32 (IEEE 802.3 polynomial, the zlib/cksum convention) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let crc32_hex s = Printf.sprintf "%08x" (crc32 s)

(* --- filesystem primitives --- *)

let rec mkdir_p ?(perm = 0o755) dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p ~perm (Filename.dirname dir);
    try Sys.mkdir dir perm
    with Sys_error _ when Sys.is_directory dir -> () (* lost a creation race *)
  end

let write_atomic_string path content =
  Faults.guard_write (path ^ ":open");
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Hashtbl.hash (path, Unix.gettimeofday ()) land 0xFFFFFF)
  in
  let oc = open_out_bin tmp in
  (try
     Faults.guard_write (path ^ ":write");
     output_string oc (Faults.mangle content);
     flush oc;
     (* fsync is the "ish" in fsync-ish: some filesystems refuse it on
        regular files; flushed-then-renamed is still the best we can do. *)
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Faults.guard_write (path ^ ":rename")
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_atomic path fill =
  let buf = Buffer.create 4096 in
  fill buf;
  write_atomic_string path (Buffer.contents buf)

let read_file path =
  match open_in_bin path with
  | exception Sys_error reason -> Error (Missing { file = path; reason })
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | contents -> Ok contents
      | exception Sys_error reason -> Error (Missing { file = path; reason })
      | exception End_of_file ->
          Error (Malformed { file = path; reason = "file shrank while reading" }))

(* --- the artifact envelope --- *)

let magic = "%%WACO-ARTIFACT"
let artifact_version = 1

module Kind = struct
  let model = "waco-model"
  let index = "waco-hnsw-index"
  let checkpoint = "waco-checkpoint"
  let cache = "waco-serve-cache"
end

let write_artifact ~kind ?(version = artifact_version) path payload =
  if String.contains kind ' ' then invalid_arg "Robust.write_artifact: kind with space";
  let header =
    Printf.sprintf "%s v%d kind=%s bytes=%d crc32=%s\n" magic version kind
      (String.length payload) (crc32_hex payload)
  in
  write_atomic_string path (header ^ payload)

let field ~prefix tok =
  if String.length tok > String.length prefix
     && String.sub tok 0 (String.length prefix) = prefix
  then Some (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
  else None

let read_artifact ?expected_kind ?(expected_version = artifact_version) path =
  match read_file path with
  | Error e -> Error e
  | Ok contents -> (
      if not (String.starts_with ~prefix:magic contents) then
        Error (Not_an_artifact { file = path })
      else
        match String.index_opt contents '\n' with
        | None ->
            Error (Malformed { file = path; reason = "unterminated envelope header" })
        | Some nl -> (
            let header = String.sub contents 0 nl in
            let payload =
              String.sub contents (nl + 1) (String.length contents - nl - 1)
            in
            match String.split_on_char ' ' header with
            | [ _magic; version_tok; kind_tok; bytes_tok; crc_tok ] -> (
                let version =
                  match field ~prefix:"v" version_tok with
                  | Some v -> int_of_string_opt v
                  | None -> None
                in
                let kind = field ~prefix:"kind=" kind_tok in
                let bytes =
                  match field ~prefix:"bytes=" bytes_tok with
                  | Some b -> int_of_string_opt b
                  | None -> None
                in
                let crc = field ~prefix:"crc32=" crc_tok in
                match (version, kind, bytes, crc) with
                | Some version, Some kind, Some bytes, Some crc ->
                    if version <> expected_version then
                      Error
                        (Version_mismatch
                           { file = path; found = version; expected = expected_version })
                    else if
                      match expected_kind with
                      | Some k -> k <> kind
                      | None -> false
                    then
                      Error
                        (Wrong_kind
                           {
                             file = path;
                             found = kind;
                             expected = Option.get expected_kind;
                           })
                    else if String.length payload < bytes then
                      Error
                        (Truncated
                           {
                             file = path;
                             expected_bytes = bytes;
                             got_bytes = String.length payload;
                           })
                    else if String.length payload > bytes then
                      Error
                        (Malformed
                           {
                             file = path;
                             reason =
                               Printf.sprintf
                                 "trailing garbage: %d bytes past the declared %d"
                                 (String.length payload - bytes)
                                 bytes;
                           })
                    else
                      let actual = crc32_hex payload in
                      if not (String.equal actual crc) then
                        Error
                          (Bad_checksum { file = path; expected = crc; actual })
                      else Ok payload
                | _ ->
                    Error
                      (Malformed
                         { file = path; reason = "unparseable envelope header fields" }))
            | _ ->
                Error
                  (Malformed
                     { file = path; reason = "malformed envelope header" })))

let read_artifact_exn ?expected_kind ?expected_version path =
  match read_artifact ?expected_kind ?expected_version path with
  | Ok payload -> payload
  | Error e -> raise (Load_error e)

(* Payload lines, without a trailing empty fragment from a final newline. *)
let lines payload =
  match String.split_on_char '\n' payload with
  | [] -> [||]
  | parts ->
      let arr = Array.of_list parts in
      let n = Array.length arr in
      if n > 0 && arr.(n - 1) = "" then Array.sub arr 0 (n - 1) else arr

(* --- bounded retry with capped exponential backoff and jitter --- *)

(* Deterministic jitter: a seed+attempt hash mapped to [0, 1).  Seedable and
   clock-free, so armed [Faults] sweeps replay exactly, yet two retry loops
   with different seeds desynchronize instead of hammering in lockstep. *)
let jitter_unit ~seed ~attempt =
  (* One round of splitmix-style integer mixing over (seed, attempt). *)
  let z = (seed * 0x9E3779B9) lxor (attempt * 0x85EBCA6B) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 in
  let z = z lxor (z lsr 13) in
  float_of_int (z land 0xFFFFFF) /. float_of_int 0x1000000

let backoff_delay ?(base_s = 0.01) ?(max_s = 2.0) ?(jitter = 0.5) ?(seed = 0)
    ~attempt () =
  if attempt < 1 then invalid_arg "Robust.backoff_delay: attempt must be >= 1";
  let exp = base_s *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min max_s exp in
  let jitter = Float.max 0.0 (Float.min 1.0 jitter) in
  (* Jitter shrinks the delay (never extends it), so a capped schedule still
     respects its cap and a budgeted loop never over-sleeps. *)
  capped *. (1.0 -. (jitter *. jitter_unit ~seed ~attempt))

let with_retry_backoff ?(attempts = 3) ?(base_s = 0.01) ?(max_s = 2.0)
    ?(jitter = 0.5) ?(seed = 0) ?budget_s ?on_retry ~label f =
  let attempts = max 1 attempts in
  (* Elapsed time, so monotonic: a wall-clock step must not void (or
     extend) the retry budget. *)
  let start = mono_now () in
  let over_budget () =
    match budget_s with
    | Some b -> mono_now () -. start >= b
    | None -> false
  in
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception (Faults.Injected _ as crash) -> raise crash
    | exception e ->
        let msg = Printexc.to_string e in
        if attempt >= attempts then
          Error (Printf.sprintf "%s: gave up after %d attempt(s): %s" label attempt msg)
        else if over_budget () then
          Error
            (Printf.sprintf "%s: retry budget exhausted after %d attempt(s): %s"
               label attempt msg)
        else begin
          (match on_retry with Some f -> f attempt msg | None -> ());
          let delay = backoff_delay ~base_s ~max_s ~jitter ~seed ~attempt () in
          if delay > 0.0 then Unix.sleepf delay;
          go (attempt + 1)
        end
  in
  go 1

(* The original entry point, now a wrapper: same signature and semantics,
   with the cap and a label-derived jitter seed on top — deterministic for a
   given label (the fault sweeps replay exactly), desynchronized across
   different call sites. *)
let with_retry ?attempts ?(backoff_s = 0.01) ?budget_s ?on_retry ~label f =
  with_retry_backoff ?attempts ~base_s:backoff_s ~seed:(Hashtbl.hash label)
    ?budget_s ?on_retry ~label f
