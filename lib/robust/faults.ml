(* Deterministic fault injection for the durability test harness.

   Production code calls the three hooks ([guard_write], [mangle],
   [measure_tick]) at its injection points; when nothing is armed each hook
   is a single mutable-bool check, so the pipeline pays nothing in normal
   operation.  Armed faults are counter-driven, never clock- or
   randomness-driven, so a crash-at-every-write-point sweep is exactly
   reproducible: arming [fail_nth_write n] for n = 1, 2, ... walks the crash
   through every write point the code path has. *)

exception Injected of string
(* A simulated crash: the process is assumed dead at this point, so this
   exception must never be retried or swallowed by recovery wrappers. *)

exception Transient of string
(* A recoverable environment hiccup (the moral equivalent of a measurement
   node dropping one run); retry wrappers may absorb it. *)

type state = {
  mutable active : bool; (* any fault armed — the only check on the fast path *)
  mutable fail_nth : int; (* raise [Injected] at the nth write point; 0 = off *)
  mutable writes_seen : int;
  mutable truncate_at : int; (* truncate the next written blob here; -1 = off *)
  mutable corrupt_at : int; (* flip a byte of the next written blob; -1 = off *)
  mutable transient_measures : int; (* next n measure ticks raise [Transient] *)
  (* Serving-layer fault points (counter-driven, like everything above). *)
  mutable stuck_measures : int; (* next n measure ticks stall... *)
  mutable stuck_seconds : float; (* ...for this long each *)
  mutable net_cap : int; (* byte cap applied to the next net ops; -1 = off *)
  mutable net_cap_ops : int; (* how many more net ops the cap covers *)
  mutable net_drop_at : int; (* nth net op from now signals peer death; 0 = off *)
  mutable net_ops_seen : int;
  mutable wall_skew_s : float; (* offset added to the wall clock; 0 = off *)
}

let st =
  {
    active = false;
    fail_nth = 0;
    writes_seen = 0;
    truncate_at = -1;
    corrupt_at = -1;
    transient_measures = 0;
    stuck_measures = 0;
    stuck_seconds = 0.0;
    net_cap = -1;
    net_cap_ops = 0;
    net_drop_at = 0;
    net_ops_seen = 0;
    wall_skew_s = 0.0;
  }

(* Counter updates are serialized so armed faults stay exactly counter-driven
   when hooks fire from several domains at once (parallel top-k measurement):
   n armed transients injure exactly n ticks, whichever domains take them.
   The disarmed fast path stays a single unlocked [active] read. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let refresh () =
  st.active <-
    st.fail_nth > 0 || st.truncate_at >= 0 || st.corrupt_at >= 0
    || st.transient_measures > 0 || st.stuck_measures > 0
    || (st.net_cap >= 0 && st.net_cap_ops > 0)
    || st.net_drop_at > 0 || st.wall_skew_s <> 0.0

let enabled () = st.active

let reset () =
  with_lock (fun () ->
      st.fail_nth <- 0;
      st.writes_seen <- 0;
      st.truncate_at <- -1;
      st.corrupt_at <- -1;
      st.transient_measures <- 0;
      st.stuck_measures <- 0;
      st.stuck_seconds <- 0.0;
      st.net_cap <- -1;
      st.net_cap_ops <- 0;
      st.net_drop_at <- 0;
      st.net_ops_seen <- 0;
      st.wall_skew_s <- 0.0;
      refresh ())

let arm_fail_nth_write n =
  if n < 1 then invalid_arg "Faults.arm_fail_nth_write: n must be >= 1";
  with_lock (fun () ->
      st.fail_nth <- n;
      st.writes_seen <- 0;
      refresh ())

let arm_truncate_at byte =
  if byte < 0 then invalid_arg "Faults.arm_truncate_at: negative offset";
  with_lock (fun () ->
      st.truncate_at <- byte;
      refresh ())

let arm_corrupt_byte byte =
  if byte < 0 then invalid_arg "Faults.arm_corrupt_byte: negative offset";
  with_lock (fun () ->
      st.corrupt_at <- byte;
      refresh ())

let arm_transient_measures n =
  if n < 0 then invalid_arg "Faults.arm_transient_measures: negative count";
  with_lock (fun () ->
      st.transient_measures <- n;
      refresh ())

let arm_stuck_measures ~seconds n =
  if n < 0 then invalid_arg "Faults.arm_stuck_measures: negative count";
  if seconds < 0.0 then invalid_arg "Faults.arm_stuck_measures: negative stall";
  with_lock (fun () ->
      st.stuck_measures <- n;
      st.stuck_seconds <- seconds;
      refresh ())

let arm_partial_net ~cap n =
  if cap < 1 then invalid_arg "Faults.arm_partial_net: cap must be >= 1";
  if n < 0 then invalid_arg "Faults.arm_partial_net: negative op count";
  with_lock (fun () ->
      st.net_cap <- cap;
      st.net_cap_ops <- n;
      refresh ())

let arm_net_drop_at n =
  if n < 1 then invalid_arg "Faults.arm_net_drop_at: n must be >= 1";
  with_lock (fun () ->
      st.net_drop_at <- n;
      st.net_ops_seen <- 0;
      refresh ())

(* Unlike the counter-driven faults above, a clock step is a lasting state
   change: once armed the skew stays until [reset], exactly like an NTP jump
   or a manual [date] on a real host. *)
let arm_clock_skew ~seconds =
  with_lock (fun () ->
      st.wall_skew_s <- seconds;
      refresh ())

let writes_seen () = with_lock (fun () -> st.writes_seen)

(* --- hooks --- *)

let guard_write point =
  if st.active then
    with_lock (fun () ->
        if st.fail_nth > 0 then begin
          st.writes_seen <- st.writes_seen + 1;
          if st.writes_seen >= st.fail_nth then begin
            st.fail_nth <- 0;
            refresh ();
            raise (Injected point)
          end
        end)

let mangle blob =
  if not st.active then blob
  else
    with_lock (fun () ->
        let blob =
          if st.truncate_at >= 0 then begin
            let cut = min st.truncate_at (String.length blob) in
            st.truncate_at <- -1;
            String.sub blob 0 cut
          end
          else blob
        in
        let blob =
          if st.corrupt_at >= 0 && st.corrupt_at < String.length blob then begin
            let b = Bytes.of_string blob in
            let i = st.corrupt_at in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
            st.corrupt_at <- -1;
            Bytes.to_string b
          end
          else begin
            if st.corrupt_at >= 0 then st.corrupt_at <- -1;
            blob
          end
        in
        refresh ();
        blob)

let measure_tick () =
  if st.active then begin
    (* The stall happens outside the lock so a stuck measurement on one
       domain cannot wedge the other fault hooks. *)
    let stall =
      with_lock (fun () ->
          if st.stuck_measures > 0 then begin
            st.stuck_measures <- st.stuck_measures - 1;
            let s = st.stuck_seconds in
            refresh ();
            s
          end
          else 0.0)
    in
    if stall > 0.0 then Unix.sleepf stall;
    with_lock (fun () ->
        if st.transient_measures > 0 then begin
          st.transient_measures <- st.transient_measures - 1;
          refresh ();
          raise (Transient "injected transient measurement failure")
        end)
  end

(* Both serving-IO hooks below answer from one counter sequence: reads and
   writes alike are "net ops", so a sweep armed with [arm_net_drop_at n] for
   n = 1, 2, ... walks the simulated peer death through every socket
   operation a scenario has. *)

let net_io_cap () =
  if not st.active then None
  else
    with_lock (fun () ->
        if st.net_cap >= 0 && st.net_cap_ops > 0 then begin
          st.net_cap_ops <- st.net_cap_ops - 1;
          let cap = st.net_cap in
          if st.net_cap_ops = 0 then st.net_cap <- -1;
          refresh ();
          Some cap
        end
        else None)

let wall_skew () = if not st.active then 0.0 else with_lock (fun () -> st.wall_skew_s)

let net_drop_tick () =
  if not st.active then false
  else
    with_lock (fun () ->
        if st.net_drop_at > 0 then begin
          st.net_ops_seen <- st.net_ops_seen + 1;
          if st.net_ops_seen >= st.net_drop_at then begin
            st.net_drop_at <- 0;
            refresh ();
            true
          end
          else false
        end
        else false)
