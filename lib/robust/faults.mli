(** Deterministic fault injection behind the durability layer's write and
    measurement paths.  Disabled (the default) the hooks cost one mutable
    check; armed, they drive crash-at-every-write-point sweeps and transient
    measurement failures from plain counters, so every failure scenario in
    [test_robust] is exactly reproducible.

    Counter updates are serialized behind a mutex, so the hooks may fire from
    several domains at once (the parallel top-k measurement path): [n] armed
    transients injure exactly [n] ticks regardless of which domains take
    them. *)

exception Injected of string
(** A simulated crash at a named write point.  Recovery wrappers (e.g.
    {!Robust.with_retry}) must re-raise it: the process is "dead". *)

exception Transient of string
(** A recoverable hiccup; retry wrappers may absorb it. *)

val enabled : unit -> bool
(** [true] while any fault is armed. *)

val reset : unit -> unit
(** Disarm everything and zero the write counter. *)

val arm_fail_nth_write : int -> unit
(** Raise {!Injected} at the [n]th (1-based) write point reached from now on,
    then disarm.  Write points are counted across all artifacts. *)

val arm_truncate_at : int -> unit
(** Truncate the next written blob at this byte offset (one-shot). *)

val arm_corrupt_byte : int -> unit
(** Flip one byte of the next written blob at this offset (one-shot). *)

val arm_transient_measures : int -> unit
(** Make the next [n] measurement ticks raise {!Transient}. *)

val arm_stuck_measures : seconds:float -> int -> unit
(** Make the next [n] measurement ticks stall for [seconds] each before
    proceeding — the deterministic "stuck measurement" the serving layer's
    deadline watchdog must survive. *)

val arm_partial_net : cap:int -> int -> unit
(** Cap the next [n] serving-layer socket reads/writes at [cap] bytes each,
    forcing the partial-IO paths a slow or trickling peer produces. *)

val arm_clock_skew : seconds:float -> unit
(** Step the {e wall} clock ({!Robust.wall_now}) by [seconds] from now on —
    the deterministic NTP jump the monotonic-clock rule (DESIGN.md §12) must
    make harmless.  Unlike the counter-driven faults, the skew persists until
    {!reset}.  Monotonic time ({!Robust.mono_now}) is never skewed: real
    monotonic clocks don't step, and every deadline/elapsed path must run on
    one. *)

val arm_net_drop_at : int -> unit
(** Make the [n]th (1-based) serving-layer socket operation from now report
    the peer as dead ({!net_drop_tick} returns [true]), simulating a
    connection dropped mid-frame. *)

val writes_seen : unit -> int
(** Write points counted since {!arm_fail_nth_write} (for sweep bounds). *)

(** {2 Hooks called by production code} *)

val guard_write : string -> unit
(** Crash point; [string] names it for the {!Injected} payload. *)

val mangle : string -> string
(** Apply any armed truncate/corrupt transformation to a blob about to hit
    disk; identity when disarmed. *)

val measure_tick : unit -> unit
(** Transient-failure (and stuck-measurement stall) point in front of each
    measurement run. *)

val net_io_cap : unit -> int option
(** Byte cap for the next socket read/write when {!arm_partial_net} is armed
    (consumes one armed op); [None] when disarmed. *)

val net_drop_tick : unit -> bool
(** [true] exactly once, at the socket operation {!arm_net_drop_at} armed:
    the caller must treat the connection as reset by the peer. *)

val wall_skew : unit -> float
(** The currently armed wall-clock offset (0 when disarmed).  Consumed by
    {!Robust.wall_now}; production code should call that, not this. *)
