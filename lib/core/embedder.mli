(** The program embedder (§4.1.2, Fig. 11): SuperSchedule parameters in,
    program embedding out.  Categorical parameters pass learnable lookup
    tables (a bias-free linear over a one-hot {e is} a lookup table);
    permutation parameters go through linear-ReLU stacks over their
    permutation matrices; a final MLP mixes the concatenation. *)

open Schedule

type t

val create : Sptensor.Rng.t -> rank:int -> t

val params : t -> Nn.Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches. *)

val out_dim : t -> int
(** = {!Config.embed_dim}. *)

val forward : t -> Superschedule.t array -> float array
(** Batched: one [Config.embed_dim] row per schedule.  Caches for
    {!backward}. *)

val backward : t -> float array -> unit
(** Accumulates parameter gradients from d(embeddings); one-hot inputs need
    no input gradient. *)

type compiled
(** Compile-once/execute-many predict path (DESIGN.md §14): table and
    permutation-MLP GEMMs write straight into strided column segments of
    the concat matrix, the mixer runs as a fused GEMM chain.  Prediction
    only — training keeps the eager layers. *)

val compile : t -> compiled

val forward_compiled : compiled -> Superschedule.t array -> float array
(** Batched compiled forward: borrowed plan buffer, row [b] at
    [b * Config.embed_dim], bitwise-equal to {!forward} (test/test_vm.ml).
    Copy rows that must outlive the next execution. *)
