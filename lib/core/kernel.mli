(** The kernel identity threaded end-to-end through the tuning pipeline:
    dataset records, the kernel-conditioned cost-model head, the serving
    cache namespaces and the wire protocol's [kernel=] field.
    {!Schedule.Algorithm.t} remains the structural description (rank,
    reductions, dense trip counts); this is its stable lowercase {e name} —
    whitespace-free, safe inside cache keys and protocol lines. *)

type t = Spmv | Spmm | Sddmm | Mttkrp

val all : t list
(** In {!index} order. *)

val count : int
(** [List.length all]; the width of {!one_hot}. *)

val default : t
(** [Spmv] — what a pre-[kernel=] client is served. *)

val name : t -> string
(** Lowercase wire/cache spelling: ["spmv"], ["spmm"], ["sddmm"],
    ["mttkrp"]. *)

val of_name : string -> t option
(** Inverse of {!name}; [None] for anything unrecognized (callers must
    reject, never default — see DESIGN.md §13). *)

val to_algo : t -> Schedule.Algorithm.t
(** The algorithm with the paper's canonical dense sizes (|j|=256 for
    SpMM/SDDMM, |j|=16 for MTTKRP), matching [Algorithm.of_name]. *)

val of_algo : Schedule.Algorithm.t -> t
(** Forgets the dense size. *)

val index : t -> int
(** Position in {!all} / the hot slot in {!one_hot}. *)

val one_hot : t -> float array
(** Length-{!count} indicator row concatenated into the cost-model head. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
