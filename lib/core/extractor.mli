(** Sparsity-pattern feature extractors: WACONet (§4.1.1, Fig. 9) and the
    three alternatives it is compared against in Fig. 15.  All variants map
    a pattern to a {!Config.feature_dim}-vector:

    - [Waconet]: 5x5 stride-1 sparse conv over the raw pattern, then stride-2
      3x3 sparse convs; global-average-pool after every layer, concatenate,
      final linear;
    - [Minkowski]: stride-1 sparse convs with a single final pooling — its
      receptive field cannot bridge distant nonzeros (Fig. 8a);
    - [Dense_conv]: the conventional-CNN approach over a downsampled grid
      (losing local structure, Fig. 5);
    - [Human]: the (rows, cols, nnz) statistics through an MLP. *)

type kind = Human | Dense_conv | Minkowski | Waconet

val kind_name : kind -> string

(** Pattern input: raw sparse map, lazily downsampled map and log-scaled hand
    statistics — built once per matrix and shared by all extractor kinds. *)
type input = {
  id : string;  (** cache key; unique per matrix *)
  smap : Nn.Smap.t;
  down : Nn.Smap.t Lazy.t;
  human : float array;
}

val input_of_coo : id:string -> Sptensor.Coo.t -> input

val input_of_tensor3 : id:string -> Sptensor.Tensor3.t -> input
(** Via the mode-0 flattening. *)

type t = { kind : kind; body : body; out_dim : int }
and body

val create : Sptensor.Rng.t -> kind -> t

val params : t -> Nn.Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh layer and
    pyramid caches. *)

val forward : t -> input -> float array
(** Feature vector of one pattern; layer caches are retained for an
    immediately following {!backward}.  Coordinate pyramids are cached per
    [input.id]. *)

val backward : t -> float array -> unit
(** Accumulates parameter gradients from d(feature). *)

type compiled
(** A compile-once/execute-many inference plan over this extractor's layers
    (DESIGN.md §14): fused conv+ReLU per layer, pooling straight into the
    batch concat matrix, one blocked head GEMM over all rows.  Shares the
    instance's parameters and pyramid cache; single-domain like its eager
    scratch — replicas must {!compile} their own. *)

val compile : t -> compiled

val forward_batch : compiled -> input array -> float array
(** Features for a batch of patterns in one plan execution; row [n] of the
    borrowed result is at [n * Config.feature_dim] and is bitwise-equal to
    [forward] on the same input.  Copy rows that must outlive the next
    execution; steady state allocates zero bytes (test/test_vm.ml). *)

val clear_cache : t -> unit
(** Drops cached coordinate pyramids. *)
