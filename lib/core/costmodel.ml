(* WACO's cost model (Fig. 6): feature extractor + program embedder + runtime
   predictor.  Trained with the pairwise ranking loss to order SuperSchedules
   per matrix; at inference the sparsity-pattern feature is computed once per
   matrix and reused across every schedule probed (§5.4's search-time
   breakdown depends on exactly this reuse). *)

open Schedule

(* Compiled inference plans over the three model stages (DESIGN.md §14):
   built lazily on first predict-path use, cached per instance.  Plans
   share the instance's parameter arrays (in-place optimizer updates stay
   visible) but own their arenas — single-domain, like eager scratch.

   [c_last_feature]/[c_last_kernel] memoize the static two-thirds of the
   tail's single input row (physical equality on the feature): an HNSW
   traversal calls the tail thousands of times per query with the feature
   fixed and only the embedding changing. *)
type compiled = {
  c_ext : Extractor.compiled;
  c_emb : Embedder.compiled;
  c_tail : Vm.Plan.t; (* predictor over built rows *)
  c_rows : int; (* the tail plan's input-row buffer *)
  c_one_hots : float array array; (* indexed by Kernel.index *)
  mutable c_last_feature : float array;
  mutable c_last_kernel : int;
}

type t = {
  algo : Algorithm.t;
  extractor : Extractor.t;
  embedder : Embedder.t;
  predictor : Nn.Mlp.t;
  feature_cache : (string, float array) Hashtbl.t;
  mutable vm : compiled option; (* lazily-compiled inference plans *)
}

(* Predictor input row: feature ++ program embedding ++ kernel one-hot.
   The kernel slot conditions the head on which of the four kernels the
   runtime belongs to, so one model can rank schedules for every kernel its
   embedder rank admits (SpMV/SpMM/SDDMM share rank 2; MTTKRP is rank 3). *)
let row_dim = Config.feature_dim + Config.embed_dim + Kernel.count

let create rng ?(kind = Extractor.Waconet) (algo : Algorithm.t) =
  let rank = Algorithm.sparse_rank algo in
  {
    algo;
    extractor = Extractor.create rng kind;
    embedder = Embedder.create rng ~rank;
    predictor =
      Nn.Mlp.create rng ~name:"predictor" ~dims:[| row_dim; 64; 32; 1 |]
        ~final_relu:false;
    feature_cache = Hashtbl.create 128;
    vm = None;
  }

let params t =
  Extractor.params t.extractor @ Embedder.params t.embedder @ Nn.Mlp.params t.predictor

(* Forward-only replica for a worker domain: every parameter array is shared
   (so replicas track weight updates made between — never during — parallel
   sections), every forward cache is private.  Replica forwards are the same
   float-op sequence as the original's, so results are bit-identical. *)
let replicate t =
  {
    algo = t.algo;
    extractor = Extractor.replicate t.extractor;
    embedder = Embedder.replicate t.embedder;
    predictor = Nn.Mlp.replicate t.predictor;
    feature_cache = Hashtbl.create 16;
    (* Plans hold private arenas: each replica compiles its own. *)
    vm = None;
  }

let param_count t = Nn.Param.total_size (params t)

(* The kernel the head conditions on when the caller doesn't say: the
   model's own algorithm. *)
let kernel_of t = Kernel.of_algo t.algo

(* Build predictor input rows: the (shared) feature concatenated with each
   program embedding and the kernel's one-hot indicator. *)
let rows_of ~kernel ~feature ~embs ~batch =
  let fd = Config.feature_dim and ed = Config.embed_dim in
  let hot = Kernel.one_hot kernel in
  let rows = Array.make (batch * row_dim) 0.0 in
  for b = 0 to batch - 1 do
    let base = b * row_dim in
    Array.blit feature 0 rows base fd;
    Array.blit embs (b * ed) rows (base + fd) ed;
    Array.blit hot 0 rows (base + fd + ed) Kernel.count
  done;
  rows

(* Training-mode forward: returns predictions and a backward closure that
   pushes d(predictions) through predictor, embedder and extractor.  The
   feature is computed once and its gradient accumulated over the batch. *)
let forward_train ?kernel t (input : Extractor.input)
    (schedules : Superschedule.t array) =
  let kernel = Option.value kernel ~default:(kernel_of t) in
  let batch = Array.length schedules in
  let feature = Extractor.forward t.extractor input in
  let embs = Embedder.forward t.embedder schedules in
  let rows = rows_of ~kernel ~feature ~embs ~batch in
  (* Fresh exact-size predictions: Loss.pairwise checks exact length, and
     callers retain them past the next forward. *)
  let pred = Array.sub (Nn.Mlp.forward t.predictor ~batch rows) 0 batch in
  let backward dpred =
    let drows = Nn.Mlp.backward t.predictor dpred in
    let fd = Config.feature_dim and ed = Config.embed_dim in
    (* The kernel one-hot is an input indicator, not a parameter: its slot
       of [drows] is dropped on the floor. *)
    let dfeat = Array.make fd 0.0 in
    let dembs = Array.make (batch * ed) 0.0 in
    for b = 0 to batch - 1 do
      for i = 0 to fd - 1 do
        dfeat.(i) <- dfeat.(i) +. drows.((b * row_dim) + i)
      done;
      Array.blit drows ((b * row_dim) + fd) dembs (b * ed) ed
    done;
    Embedder.backward t.embedder dembs;
    Extractor.backward t.extractor dfeat
  in
  (pred, backward)

(* --- Inference ---

   Every predict path below runs on the compiled VM plans; results are
   bitwise-equal to the eager layers (test/test_vm.ml), so artifacts, cache
   keys and index builds are unchanged.  Training stays on the eager path
   ([forward_train]) because backward needs the layers' forward caches. *)

let compile t =
  match t.vm with
  | Some c -> c
  | None ->
      let b = Vm.Plan.builder () in
      let rows = Vm.Plan.fresh b in
      let out = Vm.Plan.fresh b in
      let outv = { Vm.Plan.buf = out; off = 0; stride = 1 } in
      Vm.Plan.mlp b t.predictor
        ~src:{ Vm.Plan.buf = rows; off = 0; stride = row_dim }
        ~dst:outv;
      let c =
        {
          c_ext = Extractor.compile t.extractor;
          c_emb = Embedder.compile t.embedder;
          c_tail = Vm.Plan.finish b ~nlayers:0 ~out:outv;
          c_rows = rows;
          c_one_hots = Array.of_list (List.map Kernel.one_hot Kernel.all);
          (* Fresh sentinel: physically equal to no caller's feature. *)
          c_last_feature = Array.make 1 nan;
          c_last_kernel = -1;
        }
      in
      t.vm <- Some c;
      c

let feature t (input : Extractor.input) =
  match Hashtbl.find_opt t.feature_cache input.Extractor.id with
  | Some f -> f
  | None ->
      let c = compile t in
      (* Fresh exact-size copy off the plan's borrowed row; safe to retain. *)
      let f =
        Array.sub (Extractor.forward_batch c.c_ext [| input |]) 0 Config.feature_dim
      in
      Hashtbl.add t.feature_cache input.Extractor.id f;
      f

(* Uncached single-pattern feature for callers evaluating a model whose
   weights are still moving (the trainer's eval loop). *)
let feature_nocache t (input : Extractor.input) =
  let c = compile t in
  Array.sub (Extractor.forward_batch c.c_ext [| input |]) 0 Config.feature_dim

(* Warm the feature cache for a whole group of patterns with one plan
   execution — serve phase B's per-kernel-slot batch.  Cached (or repeated)
   ids are skipped; returns how many features were actually computed. *)
let feature_batch t (inputs : Extractor.input array) =
  let seen = Hashtbl.create (max 4 (Array.length inputs)) in
  let fresh =
    Array.to_list inputs
    |> List.filter (fun (i : Extractor.input) ->
           let id = i.Extractor.id in
           if Hashtbl.mem t.feature_cache id || Hashtbl.mem seen id then false
           else begin
             Hashtbl.add seen id ();
             true
           end)
    |> Array.of_list
  in
  let n = Array.length fresh in
  if n > 0 then begin
    let c = compile t in
    let feats = Extractor.forward_batch c.c_ext fresh in
    let fd = Config.feature_dim in
    Array.iteri
      (fun k (i : Extractor.input) ->
        Hashtbl.add t.feature_cache i.Extractor.id (Array.sub feats (k * fd) fd))
      fresh
  end;
  n

let clear_feature_cache t =
  Hashtbl.reset t.feature_cache;
  Extractor.clear_cache t.extractor

(* Program embeddings for a batch of schedules (the vectors the KNN graph is
   built on). *)
let embed t (schedules : Superschedule.t array) =
  let batch = Array.length schedules in
  let c = compile t in
  Array.sub (Embedder.forward_compiled c.c_emb schedules) 0 (batch * Config.embed_dim)

(* Predict from a precomputed feature and a precomputed embedding — the cheap
   "final part of the cost model" ANNS runs per graph hop (Fig. 1c).  Zero
   steady-state allocation: the row lives in the tail plan's arena, and the
   feature + one-hot thirds are re-blitted only when they change. *)
let predict_tail ?kernel t ~feature ~(embedding : float array) =
  let kernel = Option.value kernel ~default:(kernel_of t) in
  let c = compile t in
  let fd = Config.feature_dim and ed = Config.embed_dim in
  let rows = Vm.Plan.buffer c.c_tail c.c_rows ~len:row_dim in
  let ki = Kernel.index kernel in
  if not (feature == c.c_last_feature && ki = c.c_last_kernel) then begin
    Array.blit feature 0 rows 0 fd;
    Array.blit c.c_one_hots.(ki) 0 rows (fd + ed) Kernel.count;
    c.c_last_feature <- feature;
    c.c_last_kernel <- ki
  end;
  Array.blit embedding 0 rows fd ed;
  (Vm.Plan.run_batch c.c_tail ~batch:1).(0)

(* Compiled [rows_of] + predictor: one fused GEMM chain over [batch] rows.
   [embs] is read at stride [embed_dim] from offset 0 (what {!embed} and the
   compiled embedder produce). *)
let predict_tail_batch ?kernel t ~feature ~embs ~batch =
  let kernel = Option.value kernel ~default:(kernel_of t) in
  let c = compile t in
  let fd = Config.feature_dim and ed = Config.embed_dim in
  let rows = Vm.Plan.buffer c.c_tail c.c_rows ~len:(batch * row_dim) in
  let hot = c.c_one_hots.(Kernel.index kernel) in
  for b = 0 to batch - 1 do
    let base = b * row_dim in
    Array.blit feature 0 rows base fd;
    Array.blit embs (b * ed) rows (base + fd) ed;
    Array.blit hot 0 rows (base + fd + ed) Kernel.count
  done;
  (* The batch fill clobbered row 0; drop the single-row memo. *)
  c.c_last_kernel <- -1;
  Array.sub (Vm.Plan.run_batch c.c_tail ~batch) 0 batch

(* Full prediction for a batch of schedules against one matrix. *)
let predict_batch ?kernel t (input : Extractor.input) (schedules : Superschedule.t array)
    =
  let batch = Array.length schedules in
  let feature = feature t input in
  let c = compile t in
  let embs = Embedder.forward_compiled c.c_emb schedules in
  predict_tail_batch ?kernel t ~feature ~embs ~batch

let predict = predict_batch

(* --- Persistence: flat text dump of all parameters, matched by name, inside
   the checksummed [Robust] artifact envelope and written atomically.  A crash
   mid-save leaves the previous model; any corruption is a typed
   [Robust.Load_error], never silently wrong weights. --- *)

let dump_params t =
  let buf = Buffer.create (1 lsl 16) in
  List.iter (fun p -> Nn.Param.dump p buf) (params t);
  Buffer.contents buf

(* Identity of the current weights — the serving layer stamps its persistent
   schedule cache with it so answers computed under one model are never
   served under another. *)
let digest t = Robust.crc32_hex (dump_params t)

let embed_dim t = Embedder.out_dim t.embedder

(* [validate_compat]-style width check for the kernel-conditioned head: a
   predictor whose input width disagrees with the row builder (e.g. a model
   artifact from a pre-kernel-conditioning build restored into a doctored
   record) must fail with a typed error naming both widths, never mis-slice
   rows into plausible garbage. *)
let validate_head t ~file =
  let got = Nn.Mlp.in_dim t.predictor in
  if got <> row_dim then
    raise
      (Robust.Load_error
         (Robust.Malformed
            {
              file;
              reason =
                Printf.sprintf
                  "predictor input width %d, but rows are feature(%d) + \
                   embedding(%d) + kernel(%d) = %d"
                  got Config.feature_dim Config.embed_dim Kernel.count row_dim;
            }))

let save t path = Robust.write_artifact ~kind:Robust.Kind.model path (dump_params t)

(* Restore parameters from dump lines.  [lineno_base] anchors error messages
   to file lines (the envelope header is line 1, so payloads start at 2). *)
let restore_params t ~file ~lineno_base lines =
  let pos = ref 0 in
  let malformed reason =
    raise (Robust.Load_error (Robust.Malformed { file; reason }))
  in
  let next what =
    if !pos >= Array.length lines then
      malformed
        (Printf.sprintf "dump ends at line %d while reading %s"
           (lineno_base + !pos) what)
    else begin
      let line = lines.(!pos) in
      incr pos;
      line
    end
  in
  List.iter
    (fun p ->
      let header = next ("the header of parameter " ^ p.Nn.Param.name) in
      (match String.split_on_char ' ' header with
      | [ name; n ]
        when name = p.Nn.Param.name && int_of_string_opt n = Some (Nn.Param.size p)
        ->
          ()
      | _ ->
          malformed
            (Printf.sprintf "line %d: parameter mismatch: got %S, expected \"%s %d\""
               (lineno_base + !pos - 1)
               header p.Nn.Param.name (Nn.Param.size p)));
      for i = 0 to Nn.Param.size p - 1 do
        let line = next ("a value of parameter " ^ p.Nn.Param.name) in
        match float_of_string_opt line with
        | Some v -> p.Nn.Param.data.(i) <- v
        | None ->
            malformed
              (Printf.sprintf "line %d: parameter %s: unparseable value %S"
                 (lineno_base + !pos - 1)
                 p.Nn.Param.name line)
      done)
    (params t)

let load t path =
  validate_head t ~file:path;
  (match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok payload -> restore_params t ~file:path ~lineno_base:2 (Robust.lines payload)
  | Error (Robust.Not_an_artifact _) -> (
      (* Pre-envelope dump: accept it so old artifacts keep loading. *)
      match Robust.read_file path with
      | Ok contents ->
          restore_params t ~file:path ~lineno_base:1 (Robust.lines contents)
      | Error e -> raise (Robust.Load_error e))
  | Error e -> raise (Robust.Load_error e));
  clear_feature_cache t
