(** WACO's cost model (Fig. 6): feature extractor + program embedder +
    runtime predictor, trained with the pairwise ranking loss to {e order}
    SuperSchedules per matrix.  At inference the sparsity-pattern feature is
    computed once per matrix and reused across every schedule probed —
    §5.4's search-time breakdown depends on exactly this reuse. *)

open Schedule

type compiled
(** The model's compiled inference plans (DESIGN.md §14): extractor,
    embedder and predictor-tail VM plans sharing the instance's parameter
    arrays.  Built lazily by {!compile}; single-domain like eager scratch
    (replicas compile their own). *)

type t = {
  algo : Algorithm.t;
  extractor : Extractor.t;
  embedder : Embedder.t;
  predictor : Nn.Mlp.t;
  feature_cache : (string, float array) Hashtbl.t;
  mutable vm : compiled option;  (** lazily-compiled inference plans *)
}

val create : Sptensor.Rng.t -> ?kind:Extractor.kind -> Algorithm.t -> t
(** [kind] defaults to {!Extractor.Waconet}. *)

val params : t -> Nn.Param.t list

val replicate : t -> t
(** Forward-only replica for a worker domain: shares every parameter array
    (replicas track weight updates made between — never during — parallel
    sections), owns private forward caches.  Replica forwards run the same
    float-op sequence as the original's, so results are bit-identical. *)

val param_count : t -> int

val row_dim : int
(** Width of a predictor input row
    (feature ++ embedding ++ kernel one-hot). *)

val kernel_of : t -> Kernel.t
(** The kernel the head conditions on when a caller doesn't pass one: the
    model's own algorithm's. *)

val rows_of :
  kernel:Kernel.t -> feature:float array -> embs:float array -> batch:int ->
  float array
(** Builds predictor input rows: the shared feature concatenated with each
    program embedding and [kernel]'s one-hot indicator. *)

val forward_train :
  ?kernel:Kernel.t -> t -> Extractor.input -> Superschedule.t array ->
  float array * (float array -> unit)
(** Training-mode forward: predictions plus a backward closure pushing
    d(predictions) through predictor, embedder and extractor (the feature is
    computed once, its gradient summed over the batch).  The kernel one-hot
    is an input indicator, never a parameter — it takes no gradient.
    [kernel] defaults to {!kernel_of}. *)

val compile : t -> compiled
(** The instance's inference plans, compiling them on first use.  Every
    predict-path entry point below runs on these plans; results are
    bitwise-equal to the eager layers (test/test_vm.ml), so artifacts,
    cache keys and index builds are unchanged. *)

val feature : t -> Extractor.input -> float array
(** Cached per [input.id]; see {!clear_feature_cache}. *)

val feature_nocache : t -> Extractor.input -> float array
(** Uncached single-pattern feature — for evaluating a model whose weights
    are still moving (the trainer's eval loop). *)

val feature_batch : t -> Extractor.input array -> int
(** Warm the feature cache for a whole group of patterns with one batched
    plan execution (serve phase B's per-kernel-slot batch).  Cached or
    repeated ids are skipped; returns how many features were computed. *)

val clear_feature_cache : t -> unit
(** Required whenever extractor weights change (after training) or when the
    same model tunes against a different machine. *)

val embed : t -> Superschedule.t array -> float array
(** Program embeddings — the vectors the KNN graph is built on. *)

val predict_tail :
  ?kernel:Kernel.t -> t -> feature:float array -> embedding:float array -> float
(** The cheap "final part of the cost model" ANNS runs per graph hop
    (Fig. 1c): predictor only, over a stored embedding.  [kernel] defaults
    to {!kernel_of}. *)

val predict_tail_batch :
  ?kernel:Kernel.t -> t -> feature:float array -> embs:float array ->
  batch:int -> float array
(** Compiled {!rows_of} + predictor in one fused GEMM chain: fresh
    predictions for [batch] embeddings (rows of [embs] at stride
    [Config.embed_dim]) against one shared feature. *)

val predict_batch :
  ?kernel:Kernel.t -> t -> Extractor.input -> Superschedule.t array ->
  float array
(** Full prediction for a batch of schedules against one matrix, conditioned
    on [kernel] (default {!kernel_of}); one plan execution per model stage. *)

val predict :
  ?kernel:Kernel.t -> t -> Extractor.input -> Superschedule.t array ->
  float array
(** [predict_batch]. *)

val dump_params : t -> string
(** The flat text dump of all parameters that {!save} wraps in the artifact
    envelope — exposed so tests can digest a trained model without file IO
    (the byte-identity contract of test/test_perf.ml). *)

val digest : t -> string
(** CRC32 of {!dump_params} — a short identity of the current weights, used
    by the serving layer's cache-invalidation header. *)

val embed_dim : t -> int
(** The program-embedding width this model produces — must match the vector
    dimension of any HNSW index it queries ({!Tuner.validate_compat}). *)

val validate_head : t -> file:string -> unit
(** {!Tuner.validate_compat}-style width check: raises a typed
    [Robust.Load_error] naming both widths when the predictor's input width
    disagrees with {!row_dim} (e.g. a pre-kernel-conditioning artifact).
    Run by {!load} before any parameter is restored. *)

val save : t -> string -> unit
(** Flat text dump of all parameters inside the checksummed
    [Robust] artifact envelope, written atomically: a crash mid-save leaves
    the previous dump intact. *)

val load : t -> string -> unit
(** Restores parameters saved by {!save} into an identically-shaped model;
    raises [Robust.Load_error] on a missing file, checksum/version mismatch
    or parameter-shape mismatch.  Pre-envelope raw dumps are still accepted.
    Clears the feature cache. *)
