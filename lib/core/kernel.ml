(* The kernel identity threaded end-to-end through the tuning pipeline: a
   payload-free enum over the paper's four kernels, carried by [Dataset]
   records, concatenated (one-hot) into the cost-model head, keyed into the
   serving cache namespaces and spelled on the wire as the [kernel=] query
   field.  [Schedule.Algorithm.t] stays the structural source of truth
   (ranks, reductions, dense trip counts); this type is the stable {e name}
   of a kernel — lowercase, whitespace-free, safe inside cache keys and
   protocol lines. *)

type t = Spmv | Spmm | Sddmm | Mttkrp

let all = [ Spmv; Spmm; Sddmm; Mttkrp ]
let count = List.length all

(* The serving default for clients that predate the [kernel=] key. *)
let default = Spmv

let name = function
  | Spmv -> "spmv"
  | Spmm -> "spmm"
  | Sddmm -> "sddmm"
  | Mttkrp -> "mttkrp"

let of_name = function
  | "spmv" -> Some Spmv
  | "spmm" -> Some Spmm
  | "sddmm" -> Some Sddmm
  | "mttkrp" -> Some Mttkrp
  | _ -> None

(* Canonical dense sizes match [Algorithm.of_name] (the paper's |j|=256 for
   SpMM/SDDMM, |j|=16 for MTTKRP), so a kernel round-trips through its
   algorithm without drifting. *)
let to_algo = function
  | Spmv -> Schedule.Algorithm.Spmv
  | Spmm -> Schedule.Algorithm.Spmm 256
  | Sddmm -> Schedule.Algorithm.Sddmm 256
  | Mttkrp -> Schedule.Algorithm.Mttkrp 16

let of_algo = function
  | Schedule.Algorithm.Spmv -> Spmv
  | Schedule.Algorithm.Spmm _ -> Spmm
  | Schedule.Algorithm.Sddmm _ -> Sddmm
  | Schedule.Algorithm.Mttkrp _ -> Mttkrp

let index = function Spmv -> 0 | Spmm -> 1 | Sddmm -> 2 | Mttkrp -> 3

let one_hot k =
  let v = Array.make count 0.0 in
  v.(index k) <- 1.0;
  v

let equal (a : t) (b : t) = a = b
let pp ppf t = Fmt.string ppf (name t)
