(* Dataset persistence: (matrix id, SuperSchedule, log runtime) tuples in a
   line-oriented text format, plus the matrices themselves as MatrixMarket
   files in a sibling directory.

   The paper's data collection ran for two weeks on 10 nodes; persisting
   tuples decouples the expensive collection from training, and lets corpora
   be merged across runs (`waco_cli collect` / `waco_cli train --data`).

   Format, one record per line:
     MATRIX <name> <relative .mtx path>
     TUPLE <matrix name> <log10 runtime> <schedule key-value encoding>
   The schedule is serialized field by field (not via [Superschedule.key],
   which is not designed to be parsed back).

   Durability: [save] writes the matrices first and tuples.txt last, via
   [Robust]'s atomic temp-file + rename, so a crash at any write point leaves
   either the previous complete corpus or no tuples.txt (a typed error at
   load).  [append] journals records append-only with a flush per record, so
   a crash costs at most the record being written; [load] recovers such a
   truncated tail — and a missing or unreadable referenced .mtx — by keeping
   every complete record and reporting the cut instead of failing the whole
   corpus. *)

open Sptensor
open Schedule

let serialize_schedule = Sched_io.serialize

exception Corrupt of string

(* Structural parsing is shared with the lint passes ([Sched_io]); the
   persistence layer keeps its historical strictness: a structurally valid
   but illegal schedule is still a corrupt record. *)
let parse_schedule (algo : Algorithm.t) (text : string) : Superschedule.t =
  match Sched_io.parse ~algo text with
  | Error e -> raise (Corrupt e)
  | Ok s ->
      Superschedule.validate s;
      s

let header_line (data : Dataset.t) =
  Printf.sprintf "# WACO dataset: algo=%s machine=%s\n"
    (Algorithm.name data.Dataset.algo)
    data.Dataset.machine.Machine_model.Machine.name

(* Write one sample's records: the .mtx (atomically, 2-D only) plus its
   MATRIX/TUPLE lines through [emit]. *)
let write_sample ~dir ~emit (sample : Dataset.sample) =
  if Array.length sample.Dataset.wl.Machine_model.Workload.dims = 2 then begin
    let m =
      Coo.of_triplets
        ~nrows:sample.Dataset.wl.Machine_model.Workload.dims.(0)
        ~ncols:sample.Dataset.wl.Machine_model.Workload.dims.(1)
        (Array.to_list sample.Dataset.wl.Machine_model.Workload.entries
        |> List.map (fun (c, v) -> (c.(0), c.(1), v)))
    in
    let file = sample.Dataset.name ^ ".mtx" in
    Mmio.write_coo (Filename.concat dir file) m;
    emit (Printf.sprintf "MATRIX %s %s\n" sample.Dataset.name file)
  end;
  Array.iteri
    (fun i s ->
      emit
        (Printf.sprintf "TUPLE %s %.17g %s\n" sample.Dataset.name
           sample.Dataset.log_runtimes.(i) (serialize_schedule s)))
    sample.Dataset.schedules

(* Write a dataset's tuples (and matrices) under [dir].  The matrices land
   first; tuples.txt is renamed into place last, so it never names a matrix
   file that does not exist yet. *)
let save (data : Dataset.t) ~dir =
  Robust.mkdir_p dir;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header_line data);
  Array.iter
    (write_sample ~dir ~emit:(Buffer.add_string buf))
    (Array.append data.Dataset.train data.Dataset.valid);
  Robust.write_atomic_string (Filename.concat dir "tuples.txt") (Buffer.contents buf)

(* Append-only journaling for incremental collection (`waco collect
   --append`): each record is flushed as a whole line, so a crash leaves at
   worst one truncated final line, which [load] recovers. *)
let append (data : Dataset.t) ~dir =
  Robust.mkdir_p dir;
  let path = Filename.concat dir "tuples.txt" in
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      if fresh then output_string oc (header_line data);
      let emit line =
        Robust.Faults.guard_write (path ^ ":append");
        output_string oc (Robust.Faults.mangle line);
        flush oc
      in
      Array.iter
        (write_sample ~dir ~emit)
        (Array.append data.Dataset.train data.Dataset.valid))

(* Load tuples saved by [save]/[append] back into a dataset (2-D matrices
   only).  [report] receives one line per recovered problem: a truncated
   final record (kept corpus, cut reported) or a missing/unreadable matrix
   file (that matrix and its tuples are skipped).  Corruption that is not a
   tail truncation — a malformed record in the middle of the journal — still
   raises [Corrupt]: it means the file was damaged in place, not cut short,
   and silently skipping interior records would misrepresent the corpus. *)
let load ~dir ~algo ~machine ~valid_fraction ?(report = fun _ -> ()) rng =
  let path = Filename.concat dir "tuples.txt" in
  let contents =
    match Robust.read_file path with
    | Ok c -> c
    | Error e -> raise (Robust.Load_error e)
  in
  let all_lines = Array.of_list (String.split_on_char '\n' contents) in
  let n_all = Array.length all_lines in
  (* A well-formed journal ends with '\n', leaving one empty trailing
     fragment; without it, the final line is a truncation suspect. *)
  let complete_tail = n_all > 0 && all_lines.(n_all - 1) = "" in
  let n_records = if complete_tail then n_all - 1 else n_all in
  let matrices : (string, Coo.t) Hashtbl.t = Hashtbl.create 64 in
  let tuples : (string, (Superschedule.t * float) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let corrupt ~idx line reason =
    if (not complete_tail) && idx = n_records - 1 then
      report
        (Printf.sprintf "%s:%d: dropped truncated final record (%s): %S" path
           (idx + 1) reason line)
    else raise (Corrupt (Printf.sprintf "%s:%d: %s: %S" path (idx + 1) reason line))
  in
  for idx = 0 to n_records - 1 do
    let line = all_lines.(idx) in
    if String.length line > 0 && line.[0] <> '#' then begin
      match String.index_opt line ' ' with
      | None -> corrupt ~idx line "unrecognized record"
      | Some sp -> (
          let tag = String.sub line 0 sp in
          let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
          match tag with
          | "MATRIX" -> (
              match String.split_on_char ' ' rest with
              | [ name; file ] -> (
                  let mpath = Filename.concat dir file in
                  match Mmio.read_coo mpath with
                  | m -> Hashtbl.replace matrices name m
                  | exception Sys_error msg ->
                      report
                        (Printf.sprintf
                           "%s:%d: skipping matrix %s (file unreadable: %s)" path
                           (idx + 1) name msg)
                  | exception Mmio.Parse_error msg ->
                      report
                        (Printf.sprintf
                           "%s:%d: skipping matrix %s (corrupt .mtx: %s)" path
                           (idx + 1) name msg))
              | _ -> corrupt ~idx line "malformed MATRIX record")
          | "TUPLE" -> (
              match String.split_on_char ' ' rest with
              | name :: time :: sched -> (
                  match
                    ( float_of_string_opt time,
                      parse_schedule algo (String.concat " " sched) )
                  with
                  | Some time, s ->
                      let lst =
                        match Hashtbl.find_opt tuples name with
                        | Some l -> l
                        | None ->
                            let l = ref [] in
                            Hashtbl.add tuples name l;
                            l
                      in
                      lst := (s, time) :: !lst
                  | None, _ -> corrupt ~idx line "unparseable runtime"
                  | exception Corrupt reason ->
                      corrupt ~idx line ("unparseable schedule: " ^ reason)
                  | exception Invalid_argument reason ->
                      corrupt ~idx line ("illegal schedule: " ^ reason))
              | _ -> corrupt ~idx line "malformed TUPLE record")
          | _ -> corrupt ~idx line "unrecognized record tag")
    end
  done;
  let samples =
    Hashtbl.fold
      (fun name m acc ->
        match Hashtbl.find_opt tuples name with
        | None | Some { contents = [] } -> acc
        | Some { contents = pairs } ->
            let wl = Machine_model.Workload.of_coo ~id:name m in
            let input = Extractor.input_of_coo ~id:name m in
            let schedules = Array.of_list (List.map fst pairs) in
            let log_runtimes = Array.of_list (List.map snd pairs) in
            let n = Array.length schedules in
            let valid_pairs =
              Array.init
                (min 32 (max 1 (n / 2)))
                (fun _ ->
                  let a = Rng.int rng n and b = Rng.int rng n in
                  (a, if b = a then (b + 1) mod n else b))
            in
            { Dataset.name; wl; input; schedules; log_runtimes; valid_pairs } :: acc)
      matrices []
  in
  let train, valid = Dataset.split_train_valid rng samples ~valid_fraction in
  { Dataset.algo; kernel = Kernel.of_algo algo; machine; train; valid }
