(* Dataset persistence: (matrix id, SuperSchedule, log runtime) tuples in a
   line-oriented text format, plus the matrices themselves as MatrixMarket
   files in a sibling directory.

   The paper's data collection ran for two weeks on 10 nodes; persisting
   tuples decouples the expensive collection from training, and lets corpora
   be merged across runs (`waco_cli collect` / `waco_cli train --data`).

   Format, one record per line:
     MATRIX <name> <relative .mtx path>
     TUPLE <matrix name> <log10 runtime> <schedule key-value encoding>
   The schedule is serialized field by field (not via [Superschedule.key],
   which is not designed to be parsed back). *)

open Sptensor
open Schedule

let serialize_schedule = Sched_io.serialize

exception Corrupt of string

(* Structural parsing is shared with the lint passes ([Sched_io]); the
   persistence layer keeps its historical strictness: a structurally valid
   but illegal schedule is still a corrupt record. *)
let parse_schedule (algo : Algorithm.t) (text : string) : Superschedule.t =
  match Sched_io.parse ~algo text with
  | Error e -> raise (Corrupt e)
  | Ok s ->
      Superschedule.validate s;
      s

(* Write a dataset's tuples (and matrices) under [dir]. *)
let save (data : Dataset.t) ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "tuples.txt") in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# WACO dataset: algo=%s machine=%s\n"
        (Algorithm.name data.Dataset.algo)
        data.Dataset.machine.Machine_model.Machine.name;
      Array.iter
        (fun (sample : Dataset.sample) ->
          (* Persist 2-D matrices; 3-D tensors are saved via their entries. *)
          if Array.length sample.Dataset.wl.Machine_model.Workload.dims = 2 then begin
            let m =
              Coo.of_triplets
                ~nrows:sample.Dataset.wl.Machine_model.Workload.dims.(0)
                ~ncols:sample.Dataset.wl.Machine_model.Workload.dims.(1)
                (Array.to_list sample.Dataset.wl.Machine_model.Workload.entries
                |> List.map (fun (c, v) -> (c.(0), c.(1), v)))
            in
            let file = sample.Dataset.name ^ ".mtx" in
            Mmio.write_coo (Filename.concat dir file) m;
            Printf.fprintf oc "MATRIX %s %s\n" sample.Dataset.name file
          end;
          Array.iteri
            (fun i s ->
              Printf.fprintf oc "TUPLE %s %.17g %s\n" sample.Dataset.name
                sample.Dataset.log_runtimes.(i) (serialize_schedule s))
            sample.Dataset.schedules)
        (Array.append data.Dataset.train data.Dataset.valid))

(* Load tuples saved by [save] back into a dataset (2-D matrices only). *)
let load ~dir ~algo ~machine ~valid_fraction rng =
  let ic = open_in (Filename.concat dir "tuples.txt") in
  let matrices : (string, Coo.t) Hashtbl.t = Hashtbl.create 64 in
  let tuples : (string, (Superschedule.t * float) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.length line > 0 && line.[0] <> '#' then begin
            match String.index_opt line ' ' with
            | None -> ()
            | Some sp -> (
                let tag = String.sub line 0 sp in
                let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
                match tag with
                | "MATRIX" -> (
                    match String.split_on_char ' ' rest with
                    | [ name; file ] ->
                        Hashtbl.replace matrices name
                          (Mmio.read_coo (Filename.concat dir file))
                    | _ -> raise (Corrupt line))
                | "TUPLE" -> (
                    match String.split_on_char ' ' rest with
                    | name :: time :: sched ->
                        let s = parse_schedule algo (String.concat " " sched) in
                        let lst =
                          match Hashtbl.find_opt tuples name with
                          | Some l -> l
                          | None ->
                              let l = ref [] in
                              Hashtbl.add tuples name l;
                              l
                        in
                        lst := (s, float_of_string time) :: !lst
                    | _ -> raise (Corrupt line))
                | _ -> raise (Corrupt line))
          end
        done
      with End_of_file -> ());
  let samples =
    Hashtbl.fold
      (fun name m acc ->
        match Hashtbl.find_opt tuples name with
        | None | Some { contents = [] } -> acc
        | Some { contents = pairs } ->
            let wl = Machine_model.Workload.of_coo ~id:name m in
            let input = Extractor.input_of_coo ~id:name m in
            let schedules = Array.of_list (List.map fst pairs) in
            let log_runtimes = Array.of_list (List.map snd pairs) in
            let n = Array.length schedules in
            let valid_pairs =
              Array.init
                (min 32 (max 1 (n / 2)))
                (fun _ ->
                  let a = Rng.int rng n and b = Rng.int rng n in
                  (a, if b = a then (b + 1) mod n else b))
            in
            { Dataset.name; wl; input; schedules; log_runtimes; valid_pairs } :: acc)
      matrices []
  in
  let train, valid = Dataset.split_train_valid rng samples ~valid_fraction in
  { Dataset.algo; machine; train; valid }
