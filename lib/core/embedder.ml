(* The program embedder (§4.1.2, Fig. 11): SuperSchedule parameters in,
   program embedding out.  Categorical parameters pass learnable lookup tables
   (a bias-free linear over a one-hot is exactly a lookup table); permutation
   parameters are flattened permutation matrices through linear-ReLU stacks;
   everything is concatenated and mixed by a final MLP. *)

open Schedule

type t = {
  rank : int;
  split_tables : Nn.Linear.t array; (* one lookup per sparse dim *)
  compute_mlp : Nn.Mlp.t;
  a_order_mlp : Nn.Mlp.t;
  format_table : Nn.Linear.t;
  par_table : Nn.Linear.t;
  threads_table : Nn.Linear.t;
  chunk_table : Nn.Linear.t;
  mixer : Nn.Mlp.t;
  mutable cache_batch : int;
}

let split_embed = 8
let perm_embed = 16
let format_embed = 8
let par_embed = 4
let threads_embed = 2
let chunk_embed = 4

let concat_dim rank =
  (rank * split_embed) + (2 * perm_embed) + format_embed + par_embed + threads_embed
  + chunk_embed

let create rng ~rank =
  let n = 2 * rank in
  let nsplit = Array.length Space.split_options in
  {
    rank;
    split_tables =
      Array.init rank (fun d ->
          Nn.Linear.create rng
            ~name:(Printf.sprintf "emb.split%d" d)
            ~in_dim:nsplit ~out_dim:split_embed);
    compute_mlp =
      Nn.Mlp.create rng ~name:"emb.compute"
        ~dims:[| n * n; 32; perm_embed |]
        ~final_relu:true;
    a_order_mlp =
      Nn.Mlp.create rng ~name:"emb.aorder"
        ~dims:[| n * n; 32; perm_embed |]
        ~final_relu:true;
    format_table =
      Nn.Linear.create rng ~name:"emb.format" ~in_dim:(n * 2) ~out_dim:format_embed;
    par_table = Nn.Linear.create rng ~name:"emb.par" ~in_dim:n ~out_dim:par_embed;
    threads_table =
      Nn.Linear.create rng ~name:"emb.threads" ~in_dim:2 ~out_dim:threads_embed;
    chunk_table =
      Nn.Linear.create rng ~name:"emb.chunk"
        ~in_dim:(Array.length Space.chunk_options)
        ~out_dim:chunk_embed;
    mixer =
      Nn.Mlp.create rng ~name:"emb.mixer"
        ~dims:[| concat_dim rank; 48; Config.embed_dim |]
        ~final_relu:false;
    cache_batch = 0;
  }

let params t =
  List.concat
    [
      List.concat_map Nn.Linear.params (Array.to_list t.split_tables);
      Nn.Mlp.params t.compute_mlp;
      Nn.Mlp.params t.a_order_mlp;
      Nn.Linear.params t.format_table;
      Nn.Linear.params t.par_table;
      Nn.Linear.params t.threads_table;
      Nn.Linear.params t.chunk_table;
      Nn.Mlp.params t.mixer;
    ]

(* Forward-only copy for another domain: shared parameters, private caches. *)
let replicate t =
  {
    t with
    split_tables = Array.map Nn.Linear.replicate t.split_tables;
    compute_mlp = Nn.Mlp.replicate t.compute_mlp;
    a_order_mlp = Nn.Mlp.replicate t.a_order_mlp;
    format_table = Nn.Linear.replicate t.format_table;
    par_table = Nn.Linear.replicate t.par_table;
    threads_table = Nn.Linear.replicate t.threads_table;
    chunk_table = Nn.Linear.replicate t.chunk_table;
    mixer = Nn.Mlp.replicate t.mixer;
    cache_batch = 0;
  }

let out_dim _ = Config.embed_dim

(* Batched forward: one embedding row per schedule. *)
let forward t (schedules : Superschedule.t array) =
  let batch = Array.length schedules in
  t.cache_batch <- batch;
  let encs = Array.map Encode.encode schedules in
  let gather f width =
    let flat = Array.make (batch * width) 0.0 in
    Array.iteri (fun b enc -> Array.blit (f enc) 0 flat (b * width) width) encs;
    flat
  in
  let n = 2 * t.rank in
  let nsplit = Array.length Space.split_options in
  let split_embs =
    Array.mapi
      (fun d table ->
        Nn.Linear.forward table ~batch
          (gather (fun e -> e.Encode.split_onehots.(d)) nsplit))
      t.split_tables
  in
  let compute_emb =
    Nn.Mlp.forward t.compute_mlp ~batch (gather (fun e -> e.Encode.compute_perm) (n * n))
  in
  let a_emb =
    Nn.Mlp.forward t.a_order_mlp ~batch (gather (fun e -> e.Encode.a_perm) (n * n))
  in
  let fmt_emb =
    Nn.Linear.forward t.format_table ~batch
      (gather (fun e -> e.Encode.a_format_onehot) (n * 2))
  in
  let par_emb =
    Nn.Linear.forward t.par_table ~batch (gather (fun e -> e.Encode.par_onehot) n)
  in
  let thr_emb =
    Nn.Linear.forward t.threads_table ~batch
      (gather (fun e -> e.Encode.threads_onehot) 2)
  in
  let chk_emb =
    Nn.Linear.forward t.chunk_table ~batch
      (gather (fun e -> e.Encode.chunk_onehot) (Array.length Space.chunk_options))
  in
  (* Row-wise concatenation. *)
  let cd = concat_dim t.rank in
  let concat = Array.make (batch * cd) 0.0 in
  let copy_seg src width offset =
    for b = 0 to batch - 1 do
      Array.blit src (b * width) concat ((b * cd) + offset) width
    done
  in
  let off = ref 0 in
  Array.iter
    (fun se ->
      copy_seg se split_embed !off;
      off := !off + split_embed)
    split_embs;
  copy_seg compute_emb perm_embed !off;
  off := !off + perm_embed;
  copy_seg a_emb perm_embed !off;
  off := !off + perm_embed;
  copy_seg fmt_emb format_embed !off;
  off := !off + format_embed;
  copy_seg par_emb par_embed !off;
  off := !off + par_embed;
  copy_seg thr_emb threads_embed !off;
  off := !off + threads_embed;
  copy_seg chk_emb chunk_embed !off;
  (* Fresh exact-size result at the model boundary: callers (tuner index
     build, tests) retain embeddings across calls, so the mixer's scratch
     buffer must not leak out (DESIGN.md §9). *)
  Array.sub (Nn.Mlp.forward t.mixer ~batch concat) 0 (batch * Config.embed_dim)

(* Compiled predict-only forward (DESIGN.md §14): the lookup-table and
   permutation-MLP GEMMs write their output rows straight into strided
   column segments of the concat matrix — the view planner's replacement
   for [copy_seg] — and the mixer runs as a fused GEMM chain on top.
   Bitwise-equal to [forward].  Prediction paths only: training keeps the
   eager layers, whose forward caches feed [backward]. *)
type compiled = {
  emb : t;
  plan : Vm.Plan.t;
  split_in : int array;
  compute_in : int;
  a_in : int;
  fmt_in : int;
  par_in : int;
  thr_in : int;
  chk_in : int;
}

let compile (t : t) =
  let n = 2 * t.rank in
  let nsplit = Array.length Space.split_options in
  let nchunk = Array.length Space.chunk_options in
  let cd = concat_dim t.rank in
  let b = Vm.Plan.builder () in
  let concat = Vm.Plan.fresh b in
  let out = Vm.Plan.fresh b in
  let split_in = Array.map (fun _ -> Vm.Plan.fresh b) t.split_tables in
  let compute_in = Vm.Plan.fresh b in
  let a_in = Vm.Plan.fresh b in
  let fmt_in = Vm.Plan.fresh b in
  let par_in = Vm.Plan.fresh b in
  let thr_in = Vm.Plan.fresh b in
  let chk_in = Vm.Plan.fresh b in
  (* Column segments in [forward]'s concatenation order. *)
  let off = ref 0 in
  let seg width =
    let o = !off in
    off := o + width;
    { Vm.Plan.buf = concat; off = o; stride = cd }
  in
  Array.iteri
    (fun d table ->
      Vm.Plan.gemm b table
        ~src:{ Vm.Plan.buf = split_in.(d); off = 0; stride = nsplit }
        ~dst:(seg split_embed) ~relu:false)
    t.split_tables;
  Vm.Plan.mlp b t.compute_mlp
    ~src:{ Vm.Plan.buf = compute_in; off = 0; stride = n * n }
    ~dst:(seg perm_embed);
  Vm.Plan.mlp b t.a_order_mlp
    ~src:{ Vm.Plan.buf = a_in; off = 0; stride = n * n }
    ~dst:(seg perm_embed);
  Vm.Plan.gemm b t.format_table
    ~src:{ Vm.Plan.buf = fmt_in; off = 0; stride = n * 2 }
    ~dst:(seg format_embed) ~relu:false;
  Vm.Plan.gemm b t.par_table
    ~src:{ Vm.Plan.buf = par_in; off = 0; stride = n }
    ~dst:(seg par_embed) ~relu:false;
  Vm.Plan.gemm b t.threads_table
    ~src:{ Vm.Plan.buf = thr_in; off = 0; stride = 2 }
    ~dst:(seg threads_embed) ~relu:false;
  Vm.Plan.gemm b t.chunk_table
    ~src:{ Vm.Plan.buf = chk_in; off = 0; stride = nchunk }
    ~dst:(seg chunk_embed) ~relu:false;
  assert (!off = cd);
  let outv = { Vm.Plan.buf = out; off = 0; stride = Config.embed_dim } in
  Vm.Plan.mlp b t.mixer ~src:{ Vm.Plan.buf = concat; off = 0; stride = cd } ~dst:outv;
  {
    emb = t;
    plan = Vm.Plan.finish b ~nlayers:0 ~out:outv;
    split_in;
    compute_in;
    a_in;
    fmt_in;
    par_in;
    thr_in;
    chk_in;
  }

(* Batched compiled forward; borrowed result, row [b] at [b * embed_dim],
   bitwise-equal to [forward] (test/test_vm.ml). *)
let forward_compiled (c : compiled) (schedules : Superschedule.t array) =
  let t = c.emb in
  let batch = Array.length schedules in
  let encs = Array.map Encode.encode schedules in
  let n = 2 * t.rank in
  let fill buf width f =
    let dst = Vm.Plan.buffer c.plan buf ~len:(batch * width) in
    Array.iteri (fun bi enc -> Array.blit (f enc) 0 dst (bi * width) width) encs
  in
  let nsplit = Array.length Space.split_options in
  for d = 0 to Array.length c.split_in - 1 do
    fill c.split_in.(d) nsplit (fun e -> e.Encode.split_onehots.(d))
  done;
  fill c.compute_in (n * n) (fun e -> e.Encode.compute_perm);
  fill c.a_in (n * n) (fun e -> e.Encode.a_perm);
  fill c.fmt_in (n * 2) (fun e -> e.Encode.a_format_onehot);
  fill c.par_in n (fun e -> e.Encode.par_onehot);
  fill c.thr_in 2 (fun e -> e.Encode.threads_onehot);
  fill c.chk_in (Array.length Space.chunk_options) (fun e -> e.Encode.chunk_onehot);
  Vm.Plan.run_batch c.plan ~batch

(* Backward from d(embedding); one-hot inputs need no input gradient. *)
let backward t (dout : float array) =
  let batch = t.cache_batch in
  let cd = concat_dim t.rank in
  let dconcat = Nn.Mlp.backward t.mixer dout in
  let slice offset width =
    let s = Array.make (batch * width) 0.0 in
    for b = 0 to batch - 1 do
      Array.blit dconcat ((b * cd) + offset) s (b * width) width
    done;
    s
  in
  let off = ref 0 in
  Array.iter
    (fun table ->
      ignore (Nn.Linear.backward table (slice !off split_embed));
      off := !off + split_embed)
    t.split_tables;
  ignore (Nn.Mlp.backward t.compute_mlp (slice !off perm_embed));
  off := !off + perm_embed;
  ignore (Nn.Mlp.backward t.a_order_mlp (slice !off perm_embed));
  off := !off + perm_embed;
  ignore (Nn.Linear.backward t.format_table (slice !off format_embed));
  off := !off + format_embed;
  ignore (Nn.Linear.backward t.par_table (slice !off par_embed));
  off := !off + par_embed;
  ignore (Nn.Linear.backward t.threads_table (slice !off threads_embed));
  off := !off + threads_embed;
  ignore (Nn.Linear.backward t.chunk_table (slice !off chunk_embed))
