(* WACO's search (§4.2): a KNN graph (HNSW) is built once over the program
   embeddings of the training SuperSchedules under L2; a query matrix is
   answered by traversing that graph with the predicted runtime as the metric,
   then measuring the top-k survivors and returning the fastest (§5.2 reports
   the best of the top-10 measured on hardware; here "hardware" is the cost
   simulator). *)

open Schedule
open Machine_model

type index = {
  hnsw : Superschedule.t Anns.Hnsw.t;
  build_seconds : float;
  corpus_size : int;
  lint_rejected : int; (* corpus points dropped by the legality pre-filter *)
  asym_rejected : int; (* ... and by the asymptotic-dominance pre-filter *)
}

(* Embed every corpus schedule and insert it into the HNSW graph.  With
   [lint] (the default), corpus points carrying error-level legality
   diagnostics are dropped before any embedding forward pass: an illegal
   schedule can never be the search's answer, so indexing it only wastes
   embedder time and pollutes the graph's neighborhoods.  With [asym], the
   same treatment extends to points the symbolic analyzer proves
   asymptotically dominated by the fixed-CSR baseline — both filters run
   through the unified [Asym.Prefilter] plumbing and report per-reason
   counts.

   With [pool], the embedding forwards — the dominant cost — run batch-wise
   on per-domain model replicas; insertion stays sequential and in corpus
   order, and replica forwards are bit-identical to the original's, so the
   resulting graph is the same whatever the domain count. *)
let build_index ?pool ?(m = 12) ?(ef_construction = 60) ?(lint = true) ?asym
    rng model (corpus : Superschedule.t array) =
  let t0 = Robust.mono_now () in
  let filters =
    (if lint then [ Asym.Prefilter.lint ] else [])
    @ match asym with Some a -> [ Asym.Prefilter.asym a ] | None -> []
  in
  let counts = Asym.Prefilter.zero_counts () in
  let kept =
    Array.of_list
      (List.filter
         (fun s -> Asym.Prefilter.reject filters counts s = None)
         (Array.to_list corpus))
  in
  let hnsw = Anns.Hnsw.create ~m ~ef_construction ~dim:Config.embed_dim rng in
  let ed = Config.embed_dim in
  (* Embed in batches to amortize the batched forward. *)
  let bsz = 256 in
  let n = Array.length kept in
  let nbatches = (n + bsz - 1) / bsz in
  let bounds b =
    let lo = b * bsz in
    (lo, min bsz (n - lo))
  in
  let embed_batch model b =
    let lo, len = bounds b in
    Costmodel.embed model (Array.sub kept lo len)
  in
  let batch_embs =
    match pool with
    | Some p when Parallel.Pool.domains p > 1 && nbatches > 1 ->
        let replicas =
          Array.init (Parallel.Pool.domains p) (fun i ->
              if i = 0 then model else Costmodel.replicate model)
        in
        Parallel.Pool.map_workers p
          (fun ~worker b -> embed_batch replicas.(worker) b)
          (Array.init nbatches (fun b -> b))
    | _ -> Array.init nbatches (embed_batch model)
  in
  Array.iteri
    (fun b embs ->
      let lo, len = bounds b in
      for i = 0 to len - 1 do
        Anns.Hnsw.insert hnsw (Array.sub embs (i * ed) ed) kept.(lo + i)
      done)
    batch_embs;
  {
    hnsw;
    build_seconds = Robust.mono_now () -. t0;
    corpus_size = n;
    lint_rejected = counts.Asym.Prefilter.lint;
    asym_rejected = counts.Asym.Prefilter.asym;
  }

type result = {
  best : Superschedule.t;
  best_measured : float; (* simulator seconds of the chosen schedule *)
  best_predicted : float;
  topk : (Superschedule.t * float) list; (* (schedule, measured) *)
  feature_seconds : float;
  search_seconds : float;
  measure_seconds : float;
  cost_evals : int; (* predictor evaluations during graph traversal *)
  measured_runs : int;
  measure_failures : int; (* candidates dropped after exhausting retries *)
  measure_retries : int; (* transient measurement errors absorbed by retry *)
  asym_pruned : int; (* top-k candidates rejected symbolically, unmeasured *)
  degraded : bool;
  degraded_reason : string option;
}

(* The honest fallback when the learned pipeline is unusable (corrupt model
   artifact, empty/damaged index, every measurement failing): the asymptotic
   analyzer's guaranteed-not-terrible pick — the fixed-CSR baseline unless a
   canonical variant is both strictly asymptotically better and numerically
   better by the analyzer's margin on this workload — measured once and
   flagged so callers never mistake it for a tuned answer. *)
let degraded ?(measure = true) machine (wl : Workload.t) algo ~reason =
  let az = Asym.Analyzer.of_workload ~algo wl in
  let s = Asym.Analyzer.fallback az in
  (* With [measure = false] (a deadline already blown) even the single
     fallback measurement is skipped: the caller wants an answer *now*, and
     NaN is the honest "never measured" value. *)
  let m = if measure then Costsim.runtime machine wl s else Float.nan in
  {
    best = s;
    best_measured = m;
    best_predicted = m;
    topk = (if measure then [ (s, m) ] else []);
    feature_seconds = 0.0;
    search_seconds = 0.0;
    measure_seconds = 0.0;
    cost_evals = 0;
    measured_runs = (if measure then 1 else 0);
    measure_failures = 0;
    measure_retries = 0;
    asym_pruned = 0;
    degraded = true;
    degraded_reason = Some reason;
  }

(* Deadline support: [deadline_at] is an absolute [Robust.mono_now] instant
   (monotonic: a wall-clock step, e.g. NTP, can neither expire nor extend
   it).  The tuner checks it at every phase boundary and — the watchdog —
   in front of every top-k measurement run, so one stuck measurement can
   overshoot the budget by at most its own duration, never by the whole
   phase.  A deadline-truncated result is marked [degraded] with reason
   ["deadline"] even when it carries real measurements: the serving layer
   must never cache an answer the full pipeline did not stand behind. *)
let deadline_reason = "deadline"

let past deadline_at =
  match deadline_at with
  | None -> false
  | Some d -> Robust.mono_now () >= d

let tune ?pool ?(k = 10) ?(ef = 40) ?(measure = true) ?(measure_retries = 3)
    ?(measure_backoff_s = 0.01) ?measure_budget_s ?(asym = true) ?deadline_at
    model machine (wl : Workload.t) (input : Extractor.input) (index : index) =
  if Anns.Hnsw.size index.hnsw = 0 then
    degraded machine wl model.Costmodel.algo ~reason:"empty search index"
  else if past deadline_at then
    (* Expired before any work: the guaranteed-not-terrible pick, unmeasured
       (even one simulator run is budget we no longer have). *)
    degraded ~measure:false machine wl model.Costmodel.algo
      ~reason:deadline_reason
  else begin
    (* Phase 1: extract the sparsity-pattern feature once. *)
    let t0 = Robust.mono_now () in
    let feature = Costmodel.feature model input in
    let t1 = Robust.mono_now () in
    (* Phase 2: ANNS over the KNN graph; the score runs only the predictor
       tail against stored embeddings. *)
    let score i =
      Costmodel.predict_tail model ~feature
        ~embedding:(index.hnsw.Anns.Hnsw.nodes.(i)).Anns.Hnsw.vec
    in
    let found, evals = Anns.Hnsw.search_by index.hnsw ~score ~k ~ef () in
    (* Symbolic pre-filter over the ranked candidates, ahead of the
       expensive phase: with [asym] (the default), top-k points the analyzer
       proves asymptotically dominated by the fixed-CSR baseline on this
       workload are dropped before any "hardware" measurement.  Running the
       filter after the traversal keeps the graph walk byte-identical to the
       unfiltered one, so enabling it can only remove measurements of
       guaranteed-terrible candidates — the surviving ranking, and hence the
       chosen schedule, never shifts under it. *)
    let analyzer =
      if asym then
        Some (Asym.Analyzer.of_workload ~algo:model.Costmodel.algo wl)
      else None
    in
    let pruned_count = ref 0 in
    let found =
      match analyzer with
      | None -> found
      | Some az ->
          List.filter
            (fun (_, i) ->
              let p = Asym.Analyzer.prunes az (Anns.Hnsw.get_payload index.hnsw i) in
              if p then incr pruned_count;
              not p)
            found
    in
    let t2 = Robust.mono_now () in
    (* Predict-only answers: the serving daemon's cheap path ([measure =
       false]), and the deadline path when the budget ran out during the
       feature/traversal phases — the ranking is real, the simulator never
       ran.  [found] is sorted ascending by predicted runtime, so the head
       is the answer; [best_measured] is NaN to keep the honest "never
       measured" signal distinct from a measured 0. *)
    let predict_only ~mark_deadline =
      match found with
      | [] ->
          {
            (degraded machine wl model.Costmodel.algo
               ~reason:
                 (if mark_deadline then deadline_reason
                  else "traversal returned no candidates"))
            with
            cost_evals = evals;
            asym_pruned = !pruned_count;
          }
      | (pred_cost, id) :: _ ->
          {
            best = Anns.Hnsw.get_payload index.hnsw id;
            best_measured = Float.nan;
            best_predicted = pred_cost;
            topk = [];
            feature_seconds = t1 -. t0;
            search_seconds = t2 -. t1;
            measure_seconds = 0.0;
            cost_evals = evals;
            measured_runs = 0;
            measure_failures = 0;
            measure_retries = 0;
            asym_pruned = !pruned_count;
            degraded = mark_deadline;
            degraded_reason = (if mark_deadline then Some deadline_reason else None);
          }
    in
    if not measure then predict_only ~mark_deadline:false
    else if past deadline_at then predict_only ~mark_deadline:true
    else begin
    (* Phase 3: measure the top-k on the "hardware" and keep the fastest.
       Each run goes through a bounded retry-with-backoff (transient
       measurement errors are absorbed, within the per-run budget); a
       candidate whose runs keep failing is dropped and counted.  Candidates
       are independent, so with a pool they measure in parallel — each
       outcome lands in its candidate's slot and failures are folded in
       candidate order afterwards, keeping [measure_failures] and the
       top-k list deterministic (the fault-injection counters themselves
       are mutex-serialized; see [Robust.Faults]). *)
    let measure_one (pred_cost, id) =
      let s = Anns.Hnsw.get_payload index.hnsw id in
      (* The watchdog: every candidate run re-checks the deadline first, so
         a stuck measurement overshoots the budget by at most its own
         duration — the phase never runs to completion on borrowed time.
         Skipped candidates are not failures; they mark the result as
         deadline-truncated below. *)
      if past deadline_at then (None, 0, true)
      else begin
        (* Per-candidate retry count: summed in candidate order below, so
           the total matches the sequential run whatever the domain count. *)
        let retries = ref 0 in
        let budget_s =
          (* The per-run retry budget never exceeds the time the deadline
             has left. *)
          let remaining =
            Option.map (fun d -> Float.max 0.0 (d -. Robust.mono_now ())) deadline_at
          in
          match (measure_budget_s, remaining) with
          | Some b, Some r -> Some (Float.min b r)
          | Some b, None -> Some b
          | None, r -> r
        in
        match
          Robust.with_retry ~attempts:(max 1 measure_retries)
            ~backoff_s:measure_backoff_s ?budget_s
            ~on_retry:(fun _ _ -> incr retries)
            ~label:("measure " ^ Superschedule.key s)
            (fun () ->
              Robust.Faults.measure_tick ();
              Costsim.runtime machine wl s)
        with
        | Ok m -> (Some (s, m, pred_cost), !retries, false)
        | Error _ -> (None, !retries, false)
      end
    in
    let found_arr = Array.of_list found in
    let outcomes =
      match pool with
      | Some p when Parallel.Pool.domains p > 1 ->
          Parallel.Pool.parallel_map_array p measure_one found_arr
      | _ -> Array.map measure_one found_arr
    in
    let retries =
      Array.fold_left (fun acc (_, r, _) -> acc + r) 0 outcomes
    in
    let skipped =
      Array.fold_left (fun acc (_, _, sk) -> acc || sk) false outcomes
    in
    let failures =
      ref
        (Array.fold_left
           (fun acc (o, _, sk) -> if o = None && not sk then acc + 1 else acc)
           0 outcomes)
    in
    let measured = List.filter_map (fun (o, _, _) -> o) (Array.to_list outcomes) in
    let t3 = Robust.mono_now () in
    match measured with
    | [] when skipped ->
        (* The deadline fired before a single candidate was measured: the
           traversal ranking is still real, so answer its head unmeasured. *)
        predict_only ~mark_deadline:true
    | [] ->
        {
          (degraded machine wl model.Costmodel.algo
             ~reason:
               (Printf.sprintf "all %d measurement runs failed"
                  (List.length found)))
          with
          measure_failures = !failures;
          measure_retries = retries;
          cost_evals = evals;
          asym_pruned = !pruned_count;
        }
    | first :: _ ->
        let best_s, best_m, best_p =
          List.fold_left
            (fun (bs, bm, bp) (s, m, p) -> if m < bm then (s, m, p) else (bs, bm, bp))
            first measured
        in
        {
          best = best_s;
          best_measured = best_m;
          best_predicted = best_p;
          topk = List.map (fun (s, m, _) -> (s, m)) measured;
          feature_seconds = t1 -. t0;
          search_seconds = t2 -. t1;
          measure_seconds = t3 -. t2;
          cost_evals = evals;
          measured_runs = List.length measured;
          measure_failures = !failures;
          measure_retries = retries;
          asym_pruned = !pruned_count;
          (* A deadline-truncated top-k is a real-but-partial answer: marked
             degraded so the serving layer never caches it as authoritative. *)
          degraded = skipped;
          degraded_reason = (if skipped then Some deadline_reason else None);
        }
    end
  end

(* The reusable "answer one matrix" entry point the serving daemon (and any
   other embedder of the tuner) calls: builds the workload and extractor
   input from a raw COO and runs the three-phase search.  [id] keys the
   model's feature cache, so callers that identify matrices by content
   fingerprint get cross-request feature reuse for free. *)
let query ?pool ?k ?ef ?measure ?measure_retries ?measure_backoff_s
    ?measure_budget_s ?asym ?deadline_at model machine ~id (m : Sptensor.Coo.t)
    (index : index) =
  let wl = Workload.of_coo ~id m in
  let input = Extractor.input_of_coo ~id m in
  tune ?pool ?k ?ef ?measure ?measure_retries ?measure_backoff_s
    ?measure_budget_s ?asym ?deadline_at model machine wl input index

type batch_query = {
  bq_id : string;
  bq_coo : Sptensor.Coo.t;
  bq_measure : bool;
  bq_deadline_at : float option;
}

(* Answer a group of distinct matrices against one model: every uncached
   pattern's feature comes from a single batched extractor-plan execution
   (DESIGN.md §14) before the per-matrix searches run — serve phase B's
   "one run_batch per kernel slot".  Per-query deadlines are re-checked by
   [tune] as usual; a query already expired merely wastes its share of the
   (cheap, batched) feature work. *)
let query_batch ?pool ?k ?ef ?measure_retries ?measure_backoff_s
    ?measure_budget_s ?asym model machine (queries : batch_query array)
    (index : index) =
  let inputs =
    Array.map (fun q -> Extractor.input_of_coo ~id:q.bq_id q.bq_coo) queries
  in
  ignore (Costmodel.feature_batch model inputs : int);
  Array.mapi
    (fun i q ->
      let wl = Workload.of_coo ~id:q.bq_id q.bq_coo in
      tune ?pool ?k ?ef ~measure:q.bq_measure ?measure_retries
        ?measure_backoff_s ?measure_budget_s ?asym ?deadline_at:q.bq_deadline_at
        model machine wl inputs.(i) index)
    queries

(* A model whose embedding width differs from the index's vector dimension
   would fail deep inside the first traversal (predictor input-row mismatch)
   with a message pointing nowhere near the cause.  Check the pair at load
   time instead and fail with both numbers and the offending file. *)
let validate_compat (model : Costmodel.t) ~index_file (index : index) =
  let md = Costmodel.embed_dim model in
  let id = index.hnsw.Anns.Hnsw.dim in
  if md <> id then
    raise
      (Robust.Load_error
         (Robust.Malformed
            {
              file = index_file;
              reason =
                Printf.sprintf
                  "index vector dimension %d does not match the model's \
                   embedding dimension %d (mismatched model/index pair?)"
                  id md;
            }))

(* --- Index snapshots ---

   The KNN graph is the expensive half of the tuner's one-off cost (every
   corpus schedule is embedded, then inserted).  Snapshotting it inside the
   checksummed artifact envelope lets one `waco tune` invocation reuse the
   index the previous one built, instead of rebuilding per query. *)

let save_index (index : index) path =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "INDEX %d %d %d\n" index.corpus_size index.lint_rejected
    index.asym_rejected;
  Buffer.add_string buf (Anns.Hnsw.dump index.hnsw ~payload:Sched_io.serialize);
  Robust.write_artifact ~kind:Robust.Kind.index path (Buffer.contents buf)

let load_index rng ~(algo : Algorithm.t) path =
  let payload = Robust.read_artifact_exn ~expected_kind:Robust.Kind.index path in
  let malformed reason =
    raise (Robust.Load_error (Robust.Malformed { file = path; reason }))
  in
  match String.index_opt payload '\n' with
  | None -> malformed "empty index snapshot"
  | Some nl -> (
      let first = String.sub payload 0 nl in
      let rest = String.sub payload (nl + 1) (String.length payload - nl - 1) in
      (* Pre-asym snapshots have a two-field INDEX line; read them with an
         asym count of zero rather than invalidating every existing index. *)
      let counts =
        match String.split_on_char ' ' first with
        | [ "INDEX"; cs; lr ] ->
            Some (int_of_string_opt cs, int_of_string_opt lr, Some 0)
        | [ "INDEX"; cs; lr; ar ] ->
            Some (int_of_string_opt cs, int_of_string_opt lr, int_of_string_opt ar)
        | _ -> None
      in
      match counts with
      | Some (Some corpus_size, Some lint_rejected, Some asym_rejected) -> (
          let parse_payload text =
            match Sched_io.parse ~algo text with
            | Ok s -> s
            | Error e ->
                raise (Anns.Hnsw.Restore_error ("stored schedule: " ^ e))
          in
          match Anns.Hnsw.restore rng ~payload:parse_payload rest with
          | hnsw ->
              if hnsw.Anns.Hnsw.dim <> Config.embed_dim then
                malformed
                  (Printf.sprintf
                     "index embedding dim %d does not match this build's %d"
                     hnsw.Anns.Hnsw.dim Config.embed_dim)
              else
                {
                  hnsw;
                  build_seconds = 0.0;
                  corpus_size;
                  lint_rejected;
                  asym_rejected;
                }
          | exception Anns.Hnsw.Restore_error reason -> malformed reason)
      | Some _ -> malformed ("malformed INDEX line: " ^ first)
      | None -> malformed ("missing INDEX line, got: " ^ first))

(* The tuner's one-off cost charged in end-to-end comparisons (Fig. 17,
   Table 8): feature extraction + graph search in real seconds, plus the
   simulated cost of the k measurement runs and of converting to the chosen
   format. *)
let tuning_overhead machine wl (r : result) =
  let measure_sim =
    List.fold_left (fun acc (_, m) -> acc +. m) 0.0 r.topk
  in
  r.feature_seconds +. r.search_seconds +. measure_sim
  +. Costsim.convert_time machine wl r.best
