(* WACO's search (§4.2): a KNN graph (HNSW) is built once over the program
   embeddings of the training SuperSchedules under L2; a query matrix is
   answered by traversing that graph with the predicted runtime as the metric,
   then measuring the top-k survivors and returning the fastest (§5.2 reports
   the best of the top-10 measured on hardware; here "hardware" is the cost
   simulator). *)

open Schedule
open Machine_model

type index = {
  hnsw : Superschedule.t Anns.Hnsw.t;
  build_seconds : float;
  corpus_size : int;
  lint_rejected : int; (* corpus points dropped by the legality pre-filter *)
}

(* Embed every corpus schedule and insert it into the HNSW graph.  With
   [lint] (the default), corpus points carrying error-level legality
   diagnostics are dropped before any embedding forward pass: an illegal
   schedule can never be the search's answer, so indexing it only wastes
   embedder time and pollutes the graph's neighborhoods. *)
let build_index ?(m = 12) ?(ef_construction = 60) ?(lint = true) rng model
    (corpus : Superschedule.t array) =
  let t0 = Unix.gettimeofday () in
  let kept =
    if lint then
      Array.of_list (List.filter Analysis.Lint.accepts (Array.to_list corpus))
    else corpus
  in
  let rejected = Array.length corpus - Array.length kept in
  let hnsw = Anns.Hnsw.create ~m ~ef_construction ~dim:Config.embed_dim rng in
  let ed = Config.embed_dim in
  (* Embed in batches to amortize the batched forward. *)
  let bsz = 256 in
  let n = Array.length kept in
  let i = ref 0 in
  while !i < n do
    let len = min bsz (n - !i) in
    let batch = Array.sub kept !i len in
    let embs = Costmodel.embed model batch in
    for b = 0 to len - 1 do
      Anns.Hnsw.insert hnsw (Array.sub embs (b * ed) ed) batch.(b)
    done;
    i := !i + len
  done;
  {
    hnsw;
    build_seconds = Unix.gettimeofday () -. t0;
    corpus_size = n;
    lint_rejected = rejected;
  }

type result = {
  best : Superschedule.t;
  best_measured : float; (* simulator seconds of the chosen schedule *)
  best_predicted : float;
  topk : (Superschedule.t * float) list; (* (schedule, measured) *)
  feature_seconds : float;
  search_seconds : float;
  measure_seconds : float;
  cost_evals : int; (* predictor evaluations during graph traversal *)
  measured_runs : int;
}

let tune ?(k = 10) ?(ef = 40) model machine (wl : Workload.t)
    (input : Extractor.input) (index : index) =
  (* Phase 1: extract the sparsity-pattern feature once. *)
  let t0 = Unix.gettimeofday () in
  let feature = Costmodel.feature model input in
  let t1 = Unix.gettimeofday () in
  (* Phase 2: ANNS over the KNN graph; the score runs only the predictor tail
     against stored embeddings. *)
  let score i =
    Costmodel.predict_tail model ~feature
      ~embedding:(index.hnsw.Anns.Hnsw.nodes.(i)).Anns.Hnsw.vec
  in
  let found, evals = Anns.Hnsw.search_by index.hnsw ~score ~k ~ef () in
  let t2 = Unix.gettimeofday () in
  (* Phase 3: measure the top-k on the "hardware" and keep the fastest. *)
  let measured =
    List.map
      (fun (pred_cost, id) ->
        let s = Anns.Hnsw.get_payload index.hnsw id in
        (s, Costsim.runtime machine wl s, pred_cost))
      found
  in
  let t3 = Unix.gettimeofday () in
  match measured with
  | [] -> invalid_arg "Tuner.tune: empty index"
  | first :: _ ->
      let best_s, best_m, best_p =
        List.fold_left
          (fun (bs, bm, bp) (s, m, p) -> if m < bm then (s, m, p) else (bs, bm, bp))
          first measured
      in
      {
        best = best_s;
        best_measured = best_m;
        best_predicted = best_p;
        topk = List.map (fun (s, m, _) -> (s, m)) measured;
        feature_seconds = t1 -. t0;
        search_seconds = t2 -. t1;
        measure_seconds = t3 -. t2;
        cost_evals = evals;
        measured_runs = List.length measured;
      }

(* The tuner's one-off cost charged in end-to-end comparisons (Fig. 17,
   Table 8): feature extraction + graph search in real seconds, plus the
   simulated cost of the k measurement runs and of converting to the chosen
   format. *)
let tuning_overhead machine wl (r : result) =
  let measure_sim =
    List.fold_left (fun acc (_, m) -> acc +. m) 0.0 r.topk
  in
  r.feature_seconds +. r.search_seconds +. measure_sim
  +. Costsim.convert_time machine wl r.best
