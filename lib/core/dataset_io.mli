(** Dataset persistence: decouples the expensive runtime collection from
    training (the paper's collection ran for two weeks on 10 nodes) and lets
    corpora be merged across runs.  Tuples live in a line-oriented
    [tuples.txt]; 2-D matrices are stored alongside as MatrixMarket files. *)

open Schedule

exception Corrupt of string

val serialize_schedule : Superschedule.t -> string

val parse_schedule : Algorithm.t -> string -> Superschedule.t
(** Raises [Corrupt] on malformed input or algorithm mismatch. *)

val save : Dataset.t -> dir:string -> unit
(** Writes [dir/tuples.txt] plus one [.mtx] per 2-D matrix (creating [dir]
    recursively).  Matrices land first and [tuples.txt] is renamed into place
    last (atomic, [Robust]), so a crash leaves either the previous complete
    corpus or no [tuples.txt]. *)

val append : Dataset.t -> dir:string -> unit
(** Append-only journaling for incremental collection: records are flushed
    line by line onto an existing [tuples.txt] (created, with header, if
    absent), so a crash costs at most the record being written. *)

val load :
  dir:string ->
  algo:Algorithm.t ->
  machine:Machine_model.Machine.t ->
  valid_fraction:float ->
  ?report:(string -> unit) ->
  Sptensor.Rng.t ->
  Dataset.t
(** Rebuilds a dataset saved by {!save}/{!append} (2-D matrices only).
    Recoverable damage — a truncated final record, a missing or unreadable
    referenced [.mtx] — keeps every complete record and is described through
    [report] (default: silent).  Raises [Robust.Load_error] when
    [tuples.txt] itself is missing, and [Corrupt] on in-place damage (a
    malformed record that is not the journal tail). *)
