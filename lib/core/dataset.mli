(** Training data generation (§4.1.3): (sparse matrix, SuperSchedule,
    ground-truth runtime) tuples, with runtimes from the cost simulator
    standing in for hardware measurement.  Runtimes are stored as log10
    seconds — the ranking loss only needs order. *)

open Sptensor
open Schedule
open Machine_model

type sample = {
  name : string;
  wl : Workload.t;
  input : Extractor.input;
  schedules : Superschedule.t array;
  log_runtimes : float array;
  valid_pairs : (int * int) array;
      (** fixed pairs so validation losses are comparable across epochs *)
}

type t = {
  algo : Algorithm.t;
  kernel : Kernel.t;
      (** [Kernel.of_algo algo] — carried explicitly so consumers (trainer,
          serving) condition the cost-model head without re-deriving it *)
  machine : Machine.t;
  train : sample array;
  valid : sample array;
}

val split_train_valid :
  Rng.t -> sample list -> valid_fraction:float -> sample array * sample array
(** Shuffled split with at least one validation sample. *)

val of_matrices :
  ?pool:Parallel.Pool.t ->
  Rng.t -> Machine.t -> Algorithm.t -> (string * Coo.t) list ->
  schedules_per_matrix:int -> valid_fraction:float -> t
(** With [pool], the cost-simulator measurements fan out across domains.
    Schedules and validation pairs are still drawn sequentially first
    (the simulator consumes no randomness), and each measurement lands in
    its tuple's own slot, so the dataset — and any [tuples.txt] written from
    it — is byte-identical to the sequential run. *)

val of_tensors :
  ?pool:Parallel.Pool.t ->
  Rng.t -> Machine.t -> Algorithm.t -> (string * Tensor3.t) list ->
  schedules_per_matrix:int -> valid_fraction:float -> t
(** MTTKRP datasets over 3-D tensors; same parallelism contract as
    {!of_matrices}. *)

val all_schedules : t -> Superschedule.t array
(** All distinct schedules in the training split — the KNN-graph corpus
    ("we built the graph with the SuperSchedules which appeared in our
    training dataset", §4.2.2). *)

val total_tuples : t -> int
