(* Training data generation (§4.1.3): tuples of
   (sparse matrix, SuperSchedule, ground-truth runtime), with the runtime
   produced by the cost simulator standing in for hardware measurement.
   Runtimes are stored as log10 seconds — the ranking loss only needs order,
   and logs keep magnitudes comparable across matrices. *)

open Sptensor
open Schedule
open Machine_model

type sample = {
  name : string;
  wl : Workload.t;
  input : Extractor.input;
  schedules : Superschedule.t array;
  log_runtimes : float array;
  valid_pairs : (int * int) array; (* fixed pairs for comparable val loss *)
}

type t = {
  algo : Algorithm.t;
  kernel : Kernel.t; (* = Kernel.of_algo algo; carried for downstream use *)
  machine : Machine.t;
  train : sample array;
  valid : sample array;
}

let log10 x = log x /. log 10.0

let split_train_valid rng samples ~valid_fraction =
  let arr = Array.of_list samples in
  Rng.shuffle rng arr;
  let nvalid = max 1 (int_of_float (valid_fraction *. float_of_int (Array.length arr))) in
  let valid = Array.sub arr 0 nvalid in
  let train = Array.sub arr nvalid (Array.length arr - nvalid) in
  (train, valid)

(* Collection runs in three phases so the measurement loop — the expensive
   part — can fan out across domains without touching the RNG:

   A. sequentially draw every matrix's schedules and fixed validation pairs
      ([Costsim.runtime] consumes no randomness, so this draw order is
      exactly the one the all-sequential code produced);
   B. measure the flattened (workload, schedule) tuples, in parallel when a
      pool is given — each tuple's runtime lands in its own slot, in order;
   C. slice the measurements back into per-matrix samples and split.

   The emitted dataset (and hence tuples.txt) is byte-identical whatever the
   domain count. *)
let collect ?pool rng machine algo
    ~(items : (string * Workload.t * Extractor.input) list)
    ~schedules_per_matrix ~valid_fraction =
  let drawn =
    List.map
      (fun (name, wl, input) ->
        let schedules =
          Array.of_list
            (Space.sample_distinct rng algo ~dims:wl.Workload.dims
               ~count:schedules_per_matrix)
        in
        let n = Array.length schedules in
        let npairs = min 32 (max 1 (n / 2)) in
        let valid_pairs =
          Array.init npairs (fun _ ->
              let a = Rng.int rng n in
              let b = Rng.int rng n in
              (a, if b = a then (b + 1) mod n else b))
        in
        (name, wl, input, schedules, valid_pairs))
      items
  in
  let tuples =
    Array.of_list
      (List.concat_map
         (fun (_, wl, _, schedules, _) ->
           Array.to_list (Array.map (fun s -> (wl, s)) schedules))
         drawn)
  in
  let measure (wl, s) = log10 (Costsim.runtime machine wl s) in
  let measured =
    match pool with
    | Some p when Parallel.Pool.domains p > 1 ->
        Parallel.Pool.parallel_map_array p measure tuples
    | _ -> Array.map measure tuples
  in
  let off = ref 0 in
  let samples =
    List.map
      (fun (name, wl, input, schedules, valid_pairs) ->
        let n = Array.length schedules in
        let log_runtimes = Array.sub measured !off n in
        off := !off + n;
        { name; wl; input; schedules; log_runtimes; valid_pairs })
      drawn
  in
  let train, valid = split_train_valid rng samples ~valid_fraction in
  { algo; kernel = Kernel.of_algo algo; machine; train; valid }

(* Dataset over 2-D matrices (SpMV / SpMM / SDDMM). *)
let of_matrices ?pool rng machine algo (matrices : (string * Coo.t) list)
    ~schedules_per_matrix ~valid_fraction =
  let items =
    List.map
      (fun (name, m) ->
        (name, Workload.of_coo ~id:name m, Extractor.input_of_coo ~id:name m))
      matrices
  in
  collect ?pool rng machine algo ~items ~schedules_per_matrix ~valid_fraction

(* Dataset over 3-D tensors (MTTKRP). *)
let of_tensors ?pool rng machine algo (tensors : (string * Tensor3.t) list)
    ~schedules_per_matrix ~valid_fraction =
  let items =
    List.map
      (fun (name, t) ->
        (name, Workload.of_tensor3 ~id:name t, Extractor.input_of_tensor3 ~id:name t))
      tensors
  in
  collect ?pool rng machine algo ~items ~schedules_per_matrix ~valid_fraction

(* All distinct schedules appearing in the dataset — the KNN-graph corpus
   (§4.2.2: "we built the graph with the SuperSchedules which appeared in our
   training dataset"). *)
let all_schedules t =
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  Array.iter
    (fun s ->
      Array.iter
        (fun sched ->
          let k = Superschedule.key sched in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            out := sched :: !out
          end)
        s.schedules)
    t.train;
  Array.of_list !out

let total_tuples t =
  Array.fold_left (fun acc s -> acc + Array.length s.schedules) 0
    (Array.append t.train t.valid)
