(** WACO's search (§4.2): a KNN graph (HNSW) over the program embeddings of
    the training SuperSchedules (L2), queried per matrix by graph traversal
    with the predicted runtime as the metric, then measuring the top-k
    survivors on the "hardware" (the cost simulator) and returning the
    fastest — the paper reports the best of the measured top-10 (§5.2). *)

open Schedule
open Machine_model

type index = {
  hnsw : Superschedule.t Anns.Hnsw.t;
  build_seconds : float;
  corpus_size : int;  (** points actually indexed (after the pre-filters) *)
  lint_rejected : int;  (** corpus points dropped by the legality pre-filter *)
  asym_rejected : int;
      (** ... and by the asymptotic-dominance pre-filter *)
}

val build_index :
  ?pool:Parallel.Pool.t -> ?m:int -> ?ef_construction:int -> ?lint:bool ->
  ?asym:Asym.Analyzer.t ->
  Sptensor.Rng.t -> Costmodel.t -> Superschedule.t array -> index
(** With [lint] (default [true]), corpus schedules carrying error-level
    legality diagnostics ([Analysis.Lint.accepts]) are dropped before any
    embedding forward pass.  With [asym], schedules the symbolic analyzer
    proves asymptotically dominated by the fixed-CSR baseline are likewise
    dropped; both filters run through {!Asym.Prefilter} and report
    per-reason counts in [lint_rejected] / [asym_rejected].

    With [pool], the embedding forwards run batch-wise on per-domain model
    replicas; HNSW insertion stays sequential in corpus order, so the graph
    is identical whatever the domain count. *)

type result = {
  best : Superschedule.t;
  best_measured : float;  (** simulator seconds of the chosen schedule *)
  best_predicted : float;
  topk : (Superschedule.t * float) list;  (** (schedule, measured) *)
  feature_seconds : float;  (** phase 1: one WACONet forward *)
  search_seconds : float;  (** phase 2: ANNS with the predictor tail *)
  measure_seconds : float;
  cost_evals : int;  (** predictor evaluations during traversal *)
  measured_runs : int;
  measure_failures : int;  (** candidates dropped after exhausting retries *)
  measure_retries : int;
      (** transient measurement errors absorbed by the retry loop *)
  asym_pruned : int;
      (** top-k candidates the symbolic pre-filter dropped unmeasured *)
  degraded : bool;  (** [true] when the result is the degraded fallback *)
  degraded_reason : string option;
}

val degraded :
  ?measure:bool ->
  Machine.t -> Workload.t -> Schedule.Algorithm.t -> reason:string -> result
(** The graceful-degradation fallback: the asymptotic analyzer's
    guaranteed-not-terrible pick ({!Asym.Analyzer.fallback} — the fixed-CSR
    baseline unless a canonical variant is strictly asymptotically better on
    this workload), measured once, with [degraded = true].  Callers reach
    for this when the learned pipeline is unusable (e.g. the model or index
    artifact fails to load).  With [measure = false] (a blown deadline —
    there is no time left for even one simulator run) the pick is returned
    unmeasured ([best_measured = NaN], [measured_runs = 0]). *)

val tune :
  ?pool:Parallel.Pool.t -> ?k:int -> ?ef:int -> ?measure:bool ->
  ?measure_retries:int -> ?measure_backoff_s:float -> ?measure_budget_s:float ->
  ?asym:bool -> ?deadline_at:float ->
  Costmodel.t -> Machine.t -> Workload.t -> Extractor.input -> index -> result
(** [k] defaults to the paper's 10 measured candidates.

    With [asym] (default [true]), the ranked top-k passes the symbolic
    pre-filter before phase 3: schedules {!Asym.Analyzer.prunes} proves
    asymptotically dominated by the fixed-CSR baseline on this workload are
    dropped without a measurement run, counted in [asym_pruned].  The filter
    runs after the graph walk, so the traversal — and with it the surviving
    candidates' ranking and the chosen schedule — is identical to the
    unfiltered search; pruning only removes simulator runs spent on
    guaranteed-terrible candidates.

    With [measure = false] (the serving daemon's cheap path) phase 3 is
    skipped entirely: the traversal's best-predicted candidate is returned
    with [best_measured = NaN], [topk = []] and [measured_runs = 0].

    Each top-k measurement run goes through a bounded retry-with-backoff
    ([measure_retries] attempts, exponential from [measure_backoff_s],
    optionally capped by the per-run wall-clock budget [measure_budget_s]);
    candidates whose runs keep failing are dropped and counted in
    [measure_failures].  With [pool], the top-k candidates measure in
    parallel; outcomes are folded in candidate order, so [topk] and
    [measure_failures] match the sequential run.  If the index is empty or
    every measurement fails, the result degrades to the fixed-CSR baseline
    with [degraded = true] instead of raising.

    [deadline_at] (an absolute [Robust.mono_now] instant — monotonic, so a
    wall-clock step can neither expire nor extend it) arms a
    best-effort watchdog: the deadline is re-checked at every phase boundary
    and before every individual candidate measurement.  Expired before the
    traversal → the unmeasured asymptotic fallback; expired after it → the
    traversal's best-predicted candidate unmeasured; expired mid-phase-3 →
    the best of the candidates already measured.  Every deadline-truncated
    result carries [degraded = true] and [degraded_reason = Some "deadline"]
    so callers (the serving cache in particular) never treat it as
    authoritative.  A single in-flight measurement is never interrupted, so
    expiry can overshoot by at most one run. *)

val query :
  ?pool:Parallel.Pool.t -> ?k:int -> ?ef:int -> ?measure:bool ->
  ?measure_retries:int -> ?measure_backoff_s:float -> ?measure_budget_s:float ->
  ?asym:bool -> ?deadline_at:float ->
  Costmodel.t -> Machine.t -> id:string -> Sptensor.Coo.t -> index -> result
(** The reusable "answer one matrix" entry point ({!tune} over a raw COO):
    builds the workload and extractor input, then runs the three-phase
    search.  [id] keys the model's feature cache — callers identifying
    matrices by content fingerprint get cross-request feature reuse. *)

type batch_query = {
  bq_id : string;
  bq_coo : Sptensor.Coo.t;
  bq_measure : bool;
  bq_deadline_at : float option;
}
(** One member of a {!query_batch} group: per-query measure flag and
    deadline, shared model/machine/index. *)

val query_batch :
  ?pool:Parallel.Pool.t -> ?k:int -> ?ef:int -> ?measure_retries:int ->
  ?measure_backoff_s:float -> ?measure_budget_s:float -> ?asym:bool ->
  Costmodel.t -> Machine.t -> batch_query array -> index -> result array
(** {!query} over a group of distinct matrices: all uncached features come
    from one batched extractor-plan execution (DESIGN.md §14) before the
    per-matrix searches run — serve phase B's one [run_batch] per kernel
    slot.  Results align with the input order. *)

val validate_compat : Costmodel.t -> index_file:string -> index -> unit
(** Raises [Robust.Load_error (Malformed _)] (citing [index_file] and both
    dimensions) when the model's embedding width differs from the index's
    vector dimension — at load time, instead of the confusing traversal-time
    failure a mismatched pair produces otherwise.  Lint code WACO-A008 makes
    the same check from the artifacts alone. *)

val save_index : index -> string -> unit
(** Snapshots the built KNN graph (structure, embeddings, schedules) into a
    checksummed artifact so later [waco tune] invocations skip the rebuild. *)

val load_index : Sptensor.Rng.t -> algo:Algorithm.t -> string -> index
(** Reloads a {!save_index} snapshot; validates the embedding dimension
    against this build's [Config.embed_dim].  Raises [Robust.Load_error] on
    any damage ([build_seconds] is 0 on the reloaded index). *)

val tuning_overhead : Machine.t -> Workload.t -> result -> float
(** The one-off cost charged in end-to-end comparisons (Fig. 17, Table 8):
    real feature+search seconds plus the simulated measurement runs and the
    conversion to the chosen format. *)
