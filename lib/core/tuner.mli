(** WACO's search (§4.2): a KNN graph (HNSW) over the program embeddings of
    the training SuperSchedules (L2), queried per matrix by graph traversal
    with the predicted runtime as the metric, then measuring the top-k
    survivors on the "hardware" (the cost simulator) and returning the
    fastest — the paper reports the best of the measured top-10 (§5.2). *)

open Schedule
open Machine_model

type index = {
  hnsw : Superschedule.t Anns.Hnsw.t;
  build_seconds : float;
  corpus_size : int;  (** points actually indexed (after the pre-filter) *)
  lint_rejected : int;  (** corpus points dropped by the legality pre-filter *)
}

val build_index :
  ?m:int -> ?ef_construction:int -> ?lint:bool ->
  Sptensor.Rng.t -> Costmodel.t -> Superschedule.t array -> index
(** With [lint] (default [true]), corpus schedules carrying error-level
    legality diagnostics ([Analysis.Lint.accepts]) are dropped before any
    embedding forward pass. *)

type result = {
  best : Superschedule.t;
  best_measured : float;  (** simulator seconds of the chosen schedule *)
  best_predicted : float;
  topk : (Superschedule.t * float) list;  (** (schedule, measured) *)
  feature_seconds : float;  (** phase 1: one WACONet forward *)
  search_seconds : float;  (** phase 2: ANNS with the predictor tail *)
  measure_seconds : float;
  cost_evals : int;  (** predictor evaluations during traversal *)
  measured_runs : int;
}

val tune :
  ?k:int -> ?ef:int ->
  Costmodel.t -> Machine.t -> Workload.t -> Extractor.input -> index -> result
(** [k] defaults to the paper's 10 measured candidates. *)

val tuning_overhead : Machine.t -> Workload.t -> result -> float
(** The one-off cost charged in end-to-end comparisons (Fig. 17, Table 8):
    real feature+search seconds plus the simulated measurement runs and the
    conversion to the chosen format. *)
