(* Cost-model training loop (§4.1.3): per step, one matrix's feature forward
   is shared by a batch of SuperSchedule pairs scored with the pairwise hinge
   ranking loss; Adam at lr 1e-4. *)

open Sptensor

type curve = {
  extractor : string;
  epochs : int array;
  train_loss : float array;
  valid_loss : float array;
  valid_acc : float array;
}

(* Assemble a pair-major batch (schedules and truths) from a sample, oriented
   slower-first so every pair carries a ranking constraint.  A sample with no
   schedules (or no pairs) yields an empty batch instead of an out-of-bounds
   placeholder read. *)
let batch_of_pairs (sample : Dataset.sample) (pairs : (int * int) array) =
  let n = Array.length pairs in
  if n = 0 || Array.length sample.Dataset.schedules = 0 then ([||], [||])
  else begin
  let schedules = Array.make (2 * n) sample.Dataset.schedules.(0) in
  let truth = Array.make (2 * n) 0.0 in
  Array.iteri
    (fun p (a, b) ->
      let a, b =
        if sample.Dataset.log_runtimes.(a) >= sample.Dataset.log_runtimes.(b) then (a, b)
        else (b, a)
      in
      schedules.(2 * p) <- sample.Dataset.schedules.(a);
      truth.(2 * p) <- sample.Dataset.log_runtimes.(a);
      schedules.((2 * p) + 1) <- sample.Dataset.schedules.(b);
      truth.((2 * p) + 1) <- sample.Dataset.log_runtimes.(b))
    pairs;
  (schedules, truth)
  end

(* A pair needs two distinct schedules: a sample with fewer than two has no
   ranking constraint to offer (the old [(b + 1) mod n] fallback crashed on
   zero schedules and emitted degenerate [(a, a)] self-pairs on one), so it
   yields no pairs and the training loop skips it.  For n >= 2 a collision
   [b = a] falls back to [(b + 1) mod n], which is never [a]; the fallback
   slightly over-weights [a + 1] (2/n instead of 1/n), accepted deliberately:
   it keeps the draw stream identical to prior releases, so seeded training
   runs stay reproducible across versions. *)
let random_pairs rng (sample : Dataset.sample) ~count =
  let n = Array.length sample.Dataset.schedules in
  if n < 2 then [||]
  else
    Array.init count (fun _ ->
        let a = Rng.int rng n in
        let b = Rng.int rng n in
        (a, if b = a then (b + 1) mod n else b))

(* Ranking loss of the model on a sample's fixed validation pairs
   (forward only). *)
let eval_sample ?kernel model (sample : Dataset.sample) =
  let kernel = Option.value kernel ~default:(Costmodel.kernel_of model) in
  let schedules, truth = batch_of_pairs sample sample.Dataset.valid_pairs in
  let batch = Array.length schedules in
  (* Compiled forward-only path (DESIGN.md §14), bitwise-equal to the eager
     layers.  The feature is recomputed, not cached: eval runs between
     epochs, while the weights are still moving. *)
  let feature = Costmodel.feature_nocache model sample.Dataset.input in
  let embs = Costmodel.embed model schedules in
  let pred = Costmodel.predict_tail_batch ~kernel model ~feature ~embs ~batch in
  let loss, _ = Nn.Loss.pairwise ~min_gap:0.02 ~truth ~pred () in
  let acc = Nn.Loss.pair_accuracy ~truth ~pred in
  (loss, acc)

(* Forward-only, so samples are independent: with a pool of [d] domains,
   worker [i] evaluates its samples on replica [i] (shared parameters,
   private caches — see [Costmodel.replicate]).  Per-sample results land in
   sample order and the means are folded sequentially, so the parallel run
   returns bit-identical floats to the sequential one. *)
let eval_set ?pool ?kernel model (samples : Dataset.sample array) =
  let kernel = Option.value kernel ~default:(Costmodel.kernel_of model) in
  if Array.length samples = 0 then (0.0, 1.0)
  else begin
    let per_sample =
      match pool with
      | Some p when Parallel.Pool.domains p > 1 ->
          let replicas =
            Array.init (Parallel.Pool.domains p) (fun i ->
                if i = 0 then model else Costmodel.replicate model)
          in
          Parallel.Pool.map_workers p
            (fun ~worker s -> eval_sample ~kernel replicas.(worker) s)
            samples
      | _ -> Array.map (eval_sample ~kernel model) samples
    in
    let tl = ref 0.0 and ta = ref 0.0 in
    Array.iter
      (fun (l, a) ->
        tl := !tl +. l;
        ta := !ta +. a)
      per_sample;
    let n = float_of_int (Array.length samples) in
    (!tl /. n, !ta /. n)
  end

(* --- Checkpointing (crash-safe long runs) ---

   One checkpoint file per epoch inside [spec.dir], written through the
   [Robust] envelope (atomic + checksummed), capturing everything a resumed
   run needs to continue the uninterrupted run bit-for-bit: the epoch
   counter, the RNG state (so the resumed draw stream matches), all model
   parameters, the Adam moments and step count, and the per-epoch curve rows
   so the returned curve covers the whole run. *)

type checkpoint_spec = { dir : string; every : int }

let checkpoint_file dir epoch =
  Filename.concat dir (Printf.sprintf "ckpt-%04d.ckpt" epoch)

let dump_floats buf arr =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.17g" v))
    arr;
  Buffer.add_char buf '\n'

let write_checkpoint spec model adam rng ~epoch ~trl ~vll ~vla =
  Robust.mkdir_p spec.dir;
  let buf = Buffer.create (1 lsl 16) in
  Printf.bprintf buf "epoch %d\n" epoch;
  Printf.bprintf buf "rng %Ld\n" (Sptensor.Rng.state rng);
  let ms, vs, step_count = Nn.Adam.export_state adam in
  Printf.bprintf buf "adam_step %d\n" step_count;
  for e = 0 to epoch - 1 do
    Printf.bprintf buf "hist %d %.17g %.17g %.17g\n" (e + 1) trl.(e) vll.(e) vla.(e)
  done;
  List.iter2
    (fun p (m, v) ->
      Printf.bprintf buf "param %s %d\n" p.Nn.Param.name (Nn.Param.size p);
      dump_floats buf p.Nn.Param.data;
      Printf.bprintf buf "m %d\n" (Array.length m);
      dump_floats buf m;
      Printf.bprintf buf "v %d\n" (Array.length v);
      dump_floats buf v)
    (Costmodel.params model)
    (List.combine ms vs);
  Robust.write_artifact ~kind:Robust.Kind.checkpoint
    (checkpoint_file spec.dir epoch) (Buffer.contents buf)

(* Restore a checkpoint into [model]/[adam]/[rng]; returns the completed
   epoch count and the curve history rows.  Every malformation is a typed
   [Robust.Load_error], so the resume scan can skip damaged checkpoints. *)
let load_checkpoint path model adam rng =
  let payload = Robust.read_artifact_exn ~expected_kind:Robust.Kind.checkpoint path in
  let lines = Robust.lines payload in
  let pos = ref 0 in
  let malformed fmt =
    Printf.ksprintf
      (fun reason -> raise (Robust.Load_error (Robust.Malformed { file = path; reason })))
      fmt
  in
  let next what =
    if !pos >= Array.length lines then malformed "checkpoint ends while reading %s" what
    else begin
      let line = lines.(!pos) in
      incr pos;
      line
    end
  in
  let keyed key what =
    match String.split_on_char ' ' (next what) with
    | k :: rest when k = key -> rest
    | _ -> malformed "expected a %S line (reading %s)" key what
  in
  let int_field key =
    match keyed key key with
    | [ v ] -> (
        match int_of_string_opt v with
        | Some v -> v
        | None -> malformed "unparseable %s %S" key v)
    | _ -> malformed "malformed %s line" key
  in
  let floats_into what dst =
    let line = next what in
    let parts = String.split_on_char ' ' line in
    if List.length parts <> Array.length dst then
      malformed "%s: expected %d values, got %d" what (Array.length dst)
        (List.length parts);
    List.iteri
      (fun i v ->
        match float_of_string_opt v with
        | Some v -> dst.(i) <- v
        | None -> malformed "%s: unparseable value %S" what v)
      parts
  in
  let epoch = int_field "epoch" in
  let rng_state =
    match keyed "rng" "rng state" with
    | [ v ] -> (
        match Int64.of_string_opt v with
        | Some s -> s
        | None -> malformed "unparseable rng state %S" v)
    | _ -> malformed "malformed rng line"
  in
  let adam_step = int_field "adam_step" in
  let history = ref [] in
  while
    !pos < Array.length lines
    && String.starts_with ~prefix:"hist " lines.(!pos)
  do
    (match String.split_on_char ' ' lines.(!pos) with
    | [ _; e; a; b; c ] -> (
        match
          (int_of_string_opt e, float_of_string_opt a, float_of_string_opt b,
           float_of_string_opt c)
        with
        | Some e, Some a, Some b, Some c -> history := (e, a, b, c) :: !history
        | _ -> malformed "unparseable hist line %S" lines.(!pos))
    | _ -> malformed "malformed hist line %S" lines.(!pos));
    incr pos
  done;
  let params = Costmodel.params model in
  let ms = List.map (fun p -> Array.make (Nn.Param.size p) 0.0) params in
  let vs = List.map (fun p -> Array.make (Nn.Param.size p) 0.0) params in
  List.iter2
    (fun p (m, v) ->
      (match keyed "param" ("parameter " ^ p.Nn.Param.name) with
      | [ name; n ]
        when name = p.Nn.Param.name && int_of_string_opt n = Some (Nn.Param.size p)
        ->
          ()
      | _ -> malformed "parameter mismatch (expected %s %d)" p.Nn.Param.name
               (Nn.Param.size p));
      floats_into ("parameter " ^ p.Nn.Param.name) p.Nn.Param.data;
      (match keyed "m" "first moment header" with
      | [ n ] when int_of_string_opt n = Some (Array.length m) -> ()
      | _ -> malformed "first-moment mismatch for %s" p.Nn.Param.name);
      floats_into ("first moment of " ^ p.Nn.Param.name) m;
      (match keyed "v" "second moment header" with
      | [ n ] when int_of_string_opt n = Some (Array.length v) -> ()
      | _ -> malformed "second-moment mismatch for %s" p.Nn.Param.name);
      floats_into ("second moment of " ^ p.Nn.Param.name) v)
    params
    (List.combine ms vs);
  Nn.Adam.import_state adam ~m:ms ~v:vs ~step_count:adam_step;
  Sptensor.Rng.set_state rng rng_state;
  Costmodel.clear_feature_cache model;
  (epoch, List.rev !history)

(* Newest checkpoint that validates; damaged or partial ones are reported
   through [log] and skipped — never a crash. *)
let resume_from_dir ~dir ~log model adam rng =
  if not (Sys.file_exists dir) then None
  else begin
    (* Order by the parsed epoch number, newest first.  A descending string
       sort agrees with this only while every epoch has the same digit count:
       past epoch 9999 the zero-padded "%04d" widens and "ckpt-9999" sorts
       after "ckpt-10000", resuming from a stale checkpoint. *)
    let epoch_of f =
      let stem = Filename.chop_suffix f ".ckpt" in
      let digits = String.sub stem 5 (String.length stem - 5) in
      int_of_string_opt digits
    in
    let candidates =
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun f ->
             if
               String.starts_with ~prefix:"ckpt-" f
               && Filename.check_suffix f ".ckpt"
             then Option.map (fun e -> (e, f)) (epoch_of f)
             else None)
      |> List.sort (fun (ea, a) (eb, b) -> compare (eb, b) (ea, a))
      |> List.map snd
    in
    let rec try_next = function
      | [] -> None
      | f :: rest -> (
          let path = Filename.concat dir f in
          match load_checkpoint path model adam rng with
          | result -> Some (path, result)
          | exception Robust.Load_error e ->
              log
                (Printf.sprintf "warning: skipping invalid checkpoint: %s"
                   (Robust.load_error_to_string e));
              try_next rest)
    in
    try_next candidates
  end

let train ?pool ?(pairs_per_step = 16) ?(lr = 1e-3) ?(log = fun _ -> ())
    ?checkpoint ?(resume = false) rng model (data : Dataset.t) ~epochs =
  let adam = Nn.Adam.create ~lr (Costmodel.params model) in
  let nepochs = max 1 epochs in
  let ep = Array.make nepochs 0 in
  let trl = Array.make nepochs 0.0 in
  let vll = Array.make nepochs 0.0 in
  let vla = Array.make nepochs 0.0 in
  let start_epoch =
    match (resume, checkpoint) with
    | true, Some spec -> (
        match resume_from_dir ~dir:spec.dir ~log model adam rng with
        | None ->
            log "no valid checkpoint found; starting from scratch";
            0
        | Some (path, (epoch, history)) ->
            List.iter
              (fun (e, a, b, c) ->
                if e >= 1 && e <= nepochs then begin
                  ep.(e - 1) <- e;
                  trl.(e - 1) <- a;
                  vll.(e - 1) <- b;
                  vla.(e - 1) <- c
                end)
              history;
            log (Printf.sprintf "resumed from %s at epoch %d" path epoch);
            min epoch nepochs)
    | _ -> 0
  in
  let order = Array.init (Array.length data.Dataset.train) (fun i -> i) in
  for epoch = start_epoch to nepochs - 1 do
    Rng.shuffle rng order;
    let epoch_loss = ref 0.0 in
    Array.iter
      (fun idx ->
        let sample = data.Dataset.train.(idx) in
        let pairs = random_pairs rng sample ~count:pairs_per_step in
        if Array.length pairs = 0 then begin
          (* Fewer than two schedules: no ranking constraint, no step. *)
          if epoch = start_epoch then
            log
              (Printf.sprintf "skipping sample %s: fewer than two schedules"
                 sample.Dataset.input.Extractor.id)
        end
        else begin
          let schedules, truth = batch_of_pairs sample pairs in
          let pred, backward =
            Costmodel.forward_train ~kernel:data.Dataset.kernel model
              sample.Dataset.input schedules
          in
          let loss, dpred = Nn.Loss.pairwise ~min_gap:0.02 ~truth ~pred () in
          epoch_loss := !epoch_loss +. loss;
          backward dpred;
          Nn.Adam.step adam
        end)
      order;
    let vl, va = eval_set ?pool ~kernel:data.Dataset.kernel model data.Dataset.valid in
    ep.(epoch) <- epoch + 1;
    trl.(epoch) <- !epoch_loss /. float_of_int (max 1 (Array.length order));
    vll.(epoch) <- vl;
    vla.(epoch) <- va;
    log
      (Printf.sprintf "epoch %2d  train_loss=%.4f  val_loss=%.4f  val_acc=%.3f"
         (epoch + 1) trl.(epoch) vl va);
    match checkpoint with
    | Some spec when (epoch + 1) mod max 1 spec.every = 0 || epoch = nepochs - 1 ->
        write_checkpoint spec model adam rng ~epoch:(epoch + 1) ~trl ~vll ~vla
    | _ -> ()
  done;
  (* Features were evolving during training; drop any cached ones. *)
  Costmodel.clear_feature_cache model;
  {
    extractor = Extractor.kind_name model.Costmodel.extractor.Extractor.kind;
    epochs = ep;
    train_loss = trl;
    valid_loss = vll;
    valid_acc = vla;
  }
