(* Sparsity-pattern feature extractors — WACONet and the three alternatives it
   is compared against in Fig. 15.  All variants map a pattern to a
   [Config.feature_dim]-vector:

   - [Waconet]   (§4.1.1, Fig. 9): 5x5 stride-1 sparse conv over the *raw*
     pattern, then stride-2 3x3 sparse convs; global-average-pool after every
     layer, concatenate all pooled vectors, final linear.
   - [Minkowski] : stride-1 sparse convs with one final pooling — receptive
     field cannot bridge distant nonzeros (Fig. 8a).
   - [Dense_conv]: the conventional-CNN approach — the pattern is downsampled
     onto a 64x64 grid first (losing local structure, Fig. 5), then convolved;
     submanifold convolution over an all-sites map is exactly dense
     convolution.
   - [Human]     : the (rows, cols, nnz) hand-crafted statistics through an
     MLP. *)

open Sptensor

type kind = Human | Dense_conv | Minkowski | Waconet

let kind_name = function
  | Human -> "HumanFeature"
  | Dense_conv -> "DenseConv"
  | Minkowski -> "MinkowskiNet"
  | Waconet -> "WACONet"

(* Pattern input: raw sparse map, lazily-downsampled map, and hand statistics
   (log-scaled).  Built once per matrix. *)
type input = {
  id : string;
  smap : Nn.Smap.t;
  down : Nn.Smap.t Lazy.t;
  human : float array;
}

let input_of_coo ~id (m : Coo.t) =
  let s = Stats.compute m in
  {
    id;
    smap = Nn.Smap.of_coo m;
    down = lazy (Nn.Smap.downsample m ~target:Config.dense_conv_target);
    human =
      Array.map (fun x -> log (1.0 +. x)) (Stats.human_features ~rich:false s);
  }

let input_of_tensor3 ~id (t : Tensor3.t) = input_of_coo ~id (Tensor3.flatten t)

type conv_stack = {
  convs : Nn.Sparse_conv.t array;
  relus : Nn.Act.relu array;
  pools : Nn.Pool.t array; (* length = nconvs if pool_all, else 1 *)
  pool_all : bool;
  head : Nn.Linear.t; (* pooled concat -> feature *)
  arch : (int * int) list; (* (ksize, stride) per conv *)
  use_down : bool;
  pyramids : (string, Nn.Pyramid.t) Hashtbl.t;
}

type body = Conv of conv_stack | Mlp of Nn.Mlp.t

type t = { kind : kind; body : body; out_dim : int }

let conv_arch = function
  | Waconet -> ((5, 1) :: List.init Config.waconet_strided_layers (fun _ -> (3, 2)), true, false)
  | Minkowski -> ([ (5, 1); (3, 1); (3, 1); (3, 1) ], false, false)
  | Dense_conv -> ((5, 1) :: List.init 6 (fun _ -> (3, 2)), false, true)
  | Human -> ([], false, false)

let create rng kind =
  let out_dim = Config.feature_dim in
  match kind with
  | Human ->
      {
        kind;
        body = Mlp (Nn.Mlp.create rng ~name:"human" ~dims:[| 3; 32; out_dim |] ~final_relu:true);
        out_dim;
      }
  | _ ->
      let arch, pool_all, use_down = conv_arch kind in
      let c = Config.channels in
      let nconv = List.length arch in
      let convs =
        Array.of_list
          (List.mapi
             (fun i (ksize, stride) ->
               Nn.Sparse_conv.create rng
                 ~name:(Printf.sprintf "%s.conv%d" (kind_name kind) i)
                 ~in_ch:(if i = 0 then 1 else c)
                 ~out_ch:c ~ksize ~stride)
             arch)
      in
      let npools = if pool_all then nconv else 1 in
      let head =
        Nn.Linear.create rng
          ~name:(kind_name kind ^ ".head")
          ~in_dim:(npools * c) ~out_dim
      in
      {
        kind;
        body =
          Conv
            {
              convs;
              relus = Array.init nconv (fun _ -> Nn.Act.relu_create ());
              pools = Array.init npools (fun _ -> Nn.Pool.create ());
              pool_all;
              head;
              arch;
              use_down;
              pyramids = Hashtbl.create 64;
            };
        out_dim;
      }

let params t =
  match t.body with
  | Mlp m -> Nn.Mlp.params m
  | Conv c ->
      List.concat_map Nn.Sparse_conv.params (Array.to_list c.convs)
      @ Nn.Linear.params c.head

(* Forward-only copy for another domain: parameters are shared (reads only),
   layer caches and the pyramid cache are private.  Pyramids are coordinate-
   only, so a replica rebuilding them changes no numerics. *)
let replicate t =
  match t.body with
  | Mlp m -> { t with body = Mlp (Nn.Mlp.replicate m) }
  | Conv c ->
      {
        t with
        body =
          Conv
            {
              c with
              convs = Array.map Nn.Sparse_conv.replicate c.convs;
              relus = Array.map (fun _ -> Nn.Act.relu_create ()) c.relus;
              pools = Array.map (fun _ -> Nn.Pool.create ()) c.pools;
              head = Nn.Linear.replicate c.head;
              pyramids = Hashtbl.create 64;
            };
      }

let pyramid_of (c : conv_stack) (input : input) =
  (* [find] not [find_opt]: the hit path is inside the VM's steady-state
     zero-allocation budget, and a [Some] per lookup would be the only
     allocation left in a warm batched forward. *)
  match Hashtbl.find c.pyramids input.id with
  | p -> p
  | exception Not_found ->
      let base = if c.use_down then Lazy.force input.down else input.smap in
      let p = Nn.Pyramid.build base ~layers:c.arch in
      Hashtbl.add c.pyramids input.id p;
      p

(* Forward one pattern to its feature vector.  Layer caches are retained for
   an immediately following [backward].

   Internally the layers hand each other grow-only scratch buffers (only the
   valid prefix is meaningful — DESIGN.md §9); the result crossing the model
   boundary is a fresh exact-size array, because callers retain features
   across calls. *)
let forward t (input : input) =
  match t.body with
  | Mlp m -> Array.sub (Nn.Mlp.forward m ~batch:1 input.human) 0 t.out_dim
  | Conv c ->
      let pyr = pyramid_of c input in
      let nconv = Array.length c.convs in
      let pooled = ref [] in
      let cur = ref pyr.Nn.Pyramid.base in
      for i = 0 to nconv - 1 do
        let m = Nn.Sparse_conv.forward_with_map c.convs.(i) pyr.Nn.Pyramid.maps.(i) !cur in
        let activated =
          {
            m with
            Nn.Smap.feats =
              Nn.Act.relu_forward
                ~n:(Nn.Smap.nsites m * m.Nn.Smap.channels)
                c.relus.(i) m.Nn.Smap.feats;
          }
        in
        if c.pool_all then pooled := Nn.Pool.forward c.pools.(i) activated :: !pooled
        else if i = nconv - 1 then pooled := [ Nn.Pool.forward c.pools.(0) activated ];
        cur := activated
      done;
      (* Pool scratch buffers are exactly [Config.channels] long (the pooled
         width never varies per instance), so concatenating them whole is the
         valid data. *)
      let concat = Array.concat (List.rev !pooled) in
      Array.sub (Nn.Linear.forward c.head ~batch:1 concat) 0 t.out_dim

(* Accumulate parameter gradients from d(feature). *)
let backward t (dfeat : float array) =
  match t.body with
  | Mlp m -> ignore (Nn.Mlp.backward m dfeat)
  | Conv c ->
      let nconv = Array.length c.convs in
      let dconcat = Nn.Linear.backward c.head dfeat in
      let ch = Config.channels in
      let dpool i =
        if c.pool_all then Array.sub dconcat (i * ch) ch
        else Array.sub dconcat 0 ch
      in
      (* Walk layers deepest-first, merging pooled gradients with the gradient
         arriving from the next conv in place.  Buffers may be longer than
         their valid prefix; the valid extent at layer [i]'s output is what
         its conv cached. *)
      let dnext = ref [||] in
      for i = nconv - 1 downto 0 do
        let conv = c.convs.(i) in
        let n_valid =
          conv.Nn.Sparse_conv.cache_nsites_out * conv.Nn.Sparse_conv.out_ch
        in
        let dact =
          if i = nconv - 1 then Nn.Pool.backward c.pools.(if c.pool_all then i else 0) (dpool i)
          else if c.pool_all then begin
            let dpooled = Nn.Pool.backward c.pools.(i) (dpool i) in
            let d = !dnext in
            for k = 0 to n_valid - 1 do
              d.(k) <- d.(k) +. dpooled.(k)
            done;
            d
          end
          else !dnext
        in
        let dpre = Nn.Act.relu_backward c.relus.(i) dact in
        dnext := Nn.Sparse_conv.backward conv dpre
      done

let clear_cache t =
  match t.body with Conv c -> Hashtbl.reset c.pyramids | Mlp _ -> ()

(* Compile-once/execute-many forward (DESIGN.md §14): one VM plan per
   extractor instance.  Conv kinds compile to a per-item tape — one fused
   conv+ReLU per layer plus a pool writing straight into the current item's
   row of the pooled-concat matrix — and a batched tape holding the single
   head GEMM over all rows.  The plan shares the instance's parameters and
   pyramid cache; like eager scratch, it is single-domain (replicas compile
   their own). *)
type compiled = {
  ext : t;
  plan : Vm.Plan.t;
  input_buf : int; (* Mlp kind: human-feature rows; -1 for conv kinds *)
  in_width : int;
}

let compile (t : t) =
  match t.body with
  | Mlp m ->
      let b = Vm.Plan.builder () in
      let ib = Vm.Plan.fresh b in
      let ob = Vm.Plan.fresh b in
      let w = Nn.Mlp.in_dim m in
      let dst = { Vm.Plan.buf = ob; off = 0; stride = t.out_dim } in
      Vm.Plan.mlp b m ~src:{ Vm.Plan.buf = ib; off = 0; stride = w } ~dst;
      { ext = t; plan = Vm.Plan.finish b ~nlayers:0 ~out:dst; input_buf = ib; in_width = w }
  | Conv c ->
      let ch = Config.channels in
      let nconv = Array.length c.convs in
      let npools = if c.pool_all then nconv else 1 in
      if c.head.Nn.Linear.in_dim <> npools * ch then
        invalid_arg "Extractor.compile: head width mismatch";
      let b = Vm.Plan.builder () in
      let concat = Vm.Plan.fresh b in
      let feat = Vm.Plan.fresh b in
      let fbufs = Array.init nconv (fun _ -> Vm.Plan.fresh b) in
      let cstride = npools * ch in
      for i = 0 to nconv - 1 do
        Vm.Plan.conv b c.convs.(i) ~layer:i
          ~src:(if i = 0 then -1 else fbufs.(i - 1))
          ~dst:fbufs.(i) ~relu:true;
        if c.pool_all then
          Vm.Plan.pool b ~src:fbufs.(i) ~channels:ch ~layer:i
            ~dst:{ Vm.Plan.buf = concat; off = i * ch; stride = cstride }
      done;
      if not c.pool_all then
        Vm.Plan.pool b ~src:fbufs.(nconv - 1) ~channels:ch ~layer:(nconv - 1)
          ~dst:{ Vm.Plan.buf = concat; off = 0; stride = cstride };
      let featv = { Vm.Plan.buf = feat; off = 0; stride = t.out_dim } in
      Vm.Plan.gemm b c.head
        ~src:{ Vm.Plan.buf = concat; off = 0; stride = cstride }
        ~dst:featv ~relu:false;
      { ext = t; plan = Vm.Plan.finish b ~nlayers:nconv ~out:featv; input_buf = -1; in_width = 0 }

(* Batched compiled forward: the result is a borrowed plan buffer with row
   [n] at [n * out_dim], bitwise-equal per row to [forward] (pinned by
   test/test_vm.ml).  Copy rows that must outlive the next execution. *)
let forward_batch (cp : compiled) (inputs : input array) =
  let batch = Array.length inputs in
  match cp.ext.body with
  | Mlp _ ->
      let buf = Vm.Plan.buffer cp.plan cp.input_buf ~len:(batch * cp.in_width) in
      for n = 0 to batch - 1 do
        let hv = (Array.unsafe_get inputs n).human in
        if Array.length hv < cp.in_width then
          invalid_arg "Extractor.forward_batch: human feature width";
        Array.blit hv 0 buf (n * cp.in_width) cp.in_width
      done;
      Vm.Plan.run_batch cp.plan ~batch
  | Conv c ->
      Vm.Plan.begin_batch cp.plan ~batch;
      let nconv = Array.length c.convs in
      for n = 0 to batch - 1 do
        let pyr = pyramid_of c (Array.unsafe_get inputs n) in
        Vm.Plan.start_item cp.plan n;
        Vm.Plan.set_input_feats cp.plan pyr.Nn.Pyramid.base.Nn.Smap.feats;
        for i = 0 to nconv - 1 do
          Vm.Plan.bind_map cp.plan i pyr.Nn.Pyramid.maps.(i)
        done;
        Vm.Plan.run_item cp.plan
      done;
      Vm.Plan.run_batch cp.plan ~batch
