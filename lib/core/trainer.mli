(** Cost-model training loop (§4.1.3): per step, one matrix's feature forward
    is shared by a batch of SuperSchedule pairs scored with the pairwise
    hinge ranking loss; optimized by Adam. *)

open Sptensor

type curve = {
  extractor : string;
  epochs : int array;
  train_loss : float array;
  valid_loss : float array;
  valid_acc : float array;  (** pair-ranking accuracy on fixed pairs *)
}

val batch_of_pairs :
  Dataset.sample -> (int * int) array -> Schedule.Superschedule.t array * float array
(** Pair-major batch, oriented slower-first. *)

val random_pairs : Rng.t -> Dataset.sample -> count:int -> (int * int) array
(** [count] index pairs with distinct members, uniform over them.  Empty when
    the sample has fewer than two schedules (no ranking constraint exists). *)

val eval_set :
  ?pool:Parallel.Pool.t -> ?kernel:Kernel.t ->
  Costmodel.t -> Dataset.sample array -> float * float
(** (mean loss, mean pair accuracy) on fixed validation pairs, conditioned on
    [kernel] (default {!Costmodel.kernel_of}).  With [pool], samples are
    evaluated in parallel on per-domain forward-only replicas of the model;
    results are reduced in sample order, so the floats are bit-identical to
    the sequential run. *)

type checkpoint_spec = {
  dir : string;  (** checkpoint directory (created recursively) *)
  every : int;  (** write a checkpoint every [every] epochs (min 1) *)
}

val checkpoint_file : string -> int -> string
(** [checkpoint_file dir epoch] — the path an epoch checkpoint lands at. *)

val load_checkpoint :
  string -> Costmodel.t -> Nn.Adam.t -> Rng.t -> int * (int * float * float * float) list
(** Restores one checkpoint into the model, optimizer and RNG; returns the
    completed epoch count and per-epoch curve rows.  Raises
    [Robust.Load_error] on any damage. *)

val train :
  ?pool:Parallel.Pool.t ->
  ?pairs_per_step:int ->
  ?lr:float ->
  ?log:(string -> unit) ->
  ?checkpoint:checkpoint_spec ->
  ?resume:bool ->
  Rng.t -> Costmodel.t -> Dataset.t -> epochs:int -> curve
(** Trains in place; clears the model's feature cache on exit (features
    evolved during training).  Gradient steps are inherently sequential and
    stay so; [pool] parallelizes only the per-epoch validation pass
    (see {!eval_set}).  Samples with fewer than two schedules contribute no
    pairs and are skipped (logged once, on the first trained epoch).

    With [checkpoint], an atomic checksummed checkpoint (model parameters,
    Adam moments, RNG state, epoch counter, curve history) is written after
    every [every]-th epoch and after the last.  With [resume] (requires
    [checkpoint]), training restarts from the newest {e valid} checkpoint in
    [checkpoint.dir] — damaged or partial ones are reported through [log]
    and skipped — and, because the RNG state is restored, continues the
    exact run the interrupted training would have produced. *)
