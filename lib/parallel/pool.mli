(** A hand-rolled domain worker pool (OCaml 5 [Domain] + [Mutex]/[Condition],
    stdlib only) for the toolchain's embarrassingly-parallel hot loops:
    per-tuple cost-simulator measurements, per-batch embedding forwards,
    per-sample evaluation, per-candidate top-k measurement.

    {b Determinism contract}: every combinator writes item [i]'s result into
    slot [i] and leaves reduction to the sequential caller, so a parallel run
    produces byte-identical artifacts to [domains = 1].  An exception raised
    by any item cancels the unclaimed remainder and is re-raised (with its
    backtrace) on the submitting domain. *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] worker domains; the submitter participates as
    worker 0.  The size is clamped to
    [Domain.recommended_domain_count ()] — oversubscribing the hardware
    only adds mutex and scheduler contention (an 8-domain collect on one
    core ran ~4x slower than sequential).  [domains = 1] (requested or
    clamped) spawns nothing and runs everything inline.  Raises
    [Invalid_argument] when [domains < 1]. *)

val domains : t -> int

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent; the pool must be idle. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for [i] in [0, n), chunked across
    the pool's domains.  [chunk] overrides the chunk length (default
    [n / (domains * 8)], at least 1). *)

val parallel_map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Ordered parallel map: result [i] is [f arr.(i)]. *)

val map_workers : t -> ?chunk:int -> (worker:int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map_array} with the executing worker's index
    ([0 .. domains-1]) exposed, so each domain can be handed its own replica
    of otherwise-shared mutable state (worker 0 is the submitting domain). *)

val reduce_ordered :
  t -> ?chunk:int -> n:int -> map:(int -> 'b) -> fold:('a -> 'b -> 'a) ->
  init:'a -> unit -> 'a
(** Maps every index in parallel, then folds left-to-right sequentially —
    float accumulations match the sequential run bit for bit. *)

val env_domains : unit -> int
(** The default pool's size: [WACO_DOMAINS] when set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The global pool, created lazily at {!env_domains} size on first use.
    Never shut down; programs that stay sequential never spawn a domain. *)
