(* A hand-rolled domain worker pool: OCaml 5 [Domain]s coordinated with one
   [Mutex]/[Condition] pair, no dependencies beyond the stdlib.

   The pool exists for the toolchain's embarrassingly-parallel hot loops —
   per-tuple cost-simulator measurements during dataset collection, per-batch
   embedding forwards during index construction, per-sample forward-only
   evaluation, per-candidate top-k measurement — all of which share one shape:
   N independent work items whose results must be merged *in index order* so
   that the parallel run is byte-identical to the sequential one.  Every
   combinator here therefore writes item [i]'s result into slot [i] and leaves
   reduction order to the (sequential) caller.

   Scheduling is chunked work stealing off a shared counter: the submitting
   domain participates as worker 0, the pool's spawned domains claim chunks as
   they free up, and an exception in any item wins the race to [failed],
   cancels the unclaimed remainder and is re-raised (with its backtrace) on
   the submitting domain.

   A pool of [domains = 1] spawns nothing and runs every combinator inline —
   the exact sequential path — which is also the degraded mode for nested or
   re-entrant submissions (a body that calls back into its own pool). *)

type job = {
  body : worker:int -> int -> unit; (* chunk body, given the worker's index *)
  nchunks : int;
  mutable next : int; (* next unclaimed chunk; forced to nchunks on failure *)
  mutable running : int; (* chunks currently executing *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t; (* wakes workers: a job arrived (or shutdown) *)
  idle : Condition.t; (* wakes the submitter: the job completed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.domains

(* Claim-and-run loop shared by workers and the submitting domain.  Entered
   and left with [t.mutex] held; the mutex is released around each body call,
   so its lock/unlock pairs are also what publishes worker writes (result
   slots) to the submitter. *)
let drain t ~worker (j : job) =
  while j.next < j.nchunks do
    let chunk = j.next in
    j.next <- j.next + 1;
    j.running <- j.running + 1;
    Mutex.unlock t.mutex;
    (match j.body ~worker chunk with
    | () -> Mutex.lock t.mutex
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        if j.failed = None then j.failed <- Some (e, bt);
        (* Fail fast: cancel chunks nobody has claimed yet. *)
        j.next <- j.nchunks);
    j.running <- j.running - 1
  done;
  if j.running = 0 then begin
    t.job <- None;
    Condition.broadcast t.idle
  end

let worker_loop t ~worker =
  Mutex.lock t.mutex;
  while not t.stop do
    match t.job with
    | Some j when j.next < j.nchunks -> drain t ~worker j
    | _ -> Condition.wait t.work t.mutex
  done;
  Mutex.unlock t.mutex

let create ~domains:n =
  if n < 1 then invalid_arg "Pool.create: need at least one domain";
  (* Never spawn more domains than the hardware can run: on a box with
     fewer cores than the requested size, the extra domains only contend on
     the shared-counter mutex and the OS scheduler (an 8-domain collect on
     one core measured ~4x slower than sequential).  Clamped to 1 the pool
     spawns nothing and every combinator runs inline-sequential. *)
  let n = min n (max 1 (Domain.recommended_domain_count ())) in
  let t =
    {
      domains = n;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
  t

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Run [nchunks] chunks of [body], the submitter included as worker 0.  Falls
   back to inline sequential execution when the pool is sequential, the job is
   trivially small, or a job is already in flight (re-entrant submission from
   a worker body must not deadlock on the shared counter). *)
let run_chunks t ~nchunks body =
  if nchunks > 0 then begin
    let sequential () =
      for c = 0 to nchunks - 1 do
        body ~worker:0 c
      done
    in
    if t.domains = 1 || nchunks = 1 then sequential ()
    else begin
      Mutex.lock t.mutex;
      if t.stop || t.job <> None then begin
        Mutex.unlock t.mutex;
        sequential ()
      end
      else begin
        let j = { body; nchunks; next = 0; running = 0; failed = None } in
        t.job <- Some j;
        Condition.broadcast t.work;
        drain t ~worker:0 j;
        while t.job <> None do
          Condition.wait t.idle t.mutex
        done;
        Mutex.unlock t.mutex;
        match j.failed with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

(* Default chunking: 4 chunks per domain balances stealing granularity
   against per-chunk handoff cost (a mutex round-trip each).  The previous
   8-per-domain default doubled handoffs for no balance gain on the pool's
   workloads, which hurts most when domains outnumber hardware threads and
   every handoff is also a context switch (DESIGN.md §8).

   Small batches are the exception: the serving shard's micro-batches
   (≤ max_batch = 32 distinct cache misses) mix items whose costs differ
   by orders of magnitude — an HNSW predict probe next to a measured
   cost-simulator run — so a 4-per-domain split routinely strands one
   domain behind a chunk of stragglers while the rest idle.  There the
   handoff cost is noise against per-item cost, so hand out single items
   and let stealing level the variance.  Chunk size never affects
   results: every item writes its own slot, reduction stays
   sequential. *)
let default_chunk t n =
  if n <= t.domains * 8 then 1 else max 1 (n / (t.domains * 4))

let parallel_for t ?chunk ~n body =
  if n > 0 then begin
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk t n in
    let nchunks = (n + chunk - 1) / chunk in
    run_chunks t ~nchunks (fun ~worker:_ c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          body i
        done)
  end

(* Ordered map with the worker index exposed, so callers can hand each domain
   its own replica of otherwise-shared mutable state (e.g. a cost model with
   private forward caches).  Results land in input order; [None] slots are
   impossible once [run_chunks] returns without raising. *)
let map_workers t ?chunk f (arr : 'a array) =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk t n in
    let nchunks = (n + chunk - 1) / chunk in
    run_chunks t ~nchunks (fun ~worker c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          out.(i) <- Some (f ~worker arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_array t ?chunk f arr = map_workers t ?chunk (fun ~worker:_ x -> f x) arr

(* Ordered chunked reduction: map every index in parallel, fold the results
   left-to-right sequentially — associativity-free, so float accumulations
   match the sequential run bit for bit. *)
let reduce_ordered t ?chunk ~n ~map ~fold ~init () =
  let mapped = map_workers t ?chunk (fun ~worker:_ i -> map i) (Array.init n (fun i -> i)) in
  Array.fold_left fold init mapped

(* --- The default pool ---

   Sized from [Domain.recommended_domain_count], overridden by WACO_DOMAINS
   (so CI can force the multi-domain path with 2 or the sequential path with
   1).  Created lazily on first use: programs that never touch a parallel
   path never spawn a domain. *)

let env_domains () =
  let hw = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "WACO_DOMAINS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> min n 128
      | _ -> hw)
  | None -> hw

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~domains:(env_domains ()) in
      default_pool := Some p;
      p
