(* Binary min-heap over (priority, value) pairs; max-heap behaviour by
   negating priorities.  Backbone of HNSW's candidate/result queues. *)

type 'a t = {
  mutable arr : (float * 'a) array;
  mutable size : int;
}

(* The backing array starts empty and is allocated at the first push, using
   that first element as the fill value — no [Obj.magic] placeholder, so the
   representation is sound for every ['a] (including [float], where a forged
   immediate in a would-be-unboxed slot is undefined behaviour) and values
   are safe to hand across domains. *)
let create () = { arr = [||]; size = 0 }

let size t = t.size

let is_empty t = t.size = 0

let grow t fill =
  if Array.length t.arr = 0 then t.arr <- Array.make 16 fill
  else if t.size = Array.length t.arr then begin
    let bigger = Array.make (2 * Array.length t.arr) t.arr.(0) in
    Array.blit t.arr 0 bigger 0 t.size;
    t.arr <- bigger
  end

let push t prio v =
  grow t (prio, v);
  t.arr.(t.size) <- (prio, v);
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pp, _ = t.arr.(parent) and cp, _ = t.arr.(!i) in
    if cp < pp then begin
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.size = 0 then None else Some t.arr.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    t.arr.(0) <- t.arr.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && fst t.arr.(l) < fst t.arr.(!smallest) then smallest := l;
      if r < t.size && fst t.arr.(r) < fst t.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let to_list t = Array.to_list (Array.sub t.arr 0 t.size)
