(* Hierarchical Navigable Small World graphs (Malkov & Yashunin [31]), the
   graph-based approximate nearest neighbour index WACO searches over.

   Build phase: vertices are inserted with geometrically-sampled levels; each
   level keeps up to M links chosen with the neighbour-selection heuristic
   under the *L2* metric over program embeddings (§4.2.2: the KNN graph is
   built on embedding distance).

   Search phase: [search_by] traverses the same graph greedily under an
   arbitrary scoring function — in WACO's case the predicted runtime
   y(m, s) — exploiting the property that an L2-built KNN graph supports
   retrieval under generic measures (Tan et al. [44]). *)

open Sptensor

type 'a node = {
  vec : float array;
  payload : 'a;
  level : int;
  neighbors : int list array; (* per level 0..level *)
}

type 'a t = {
  dim : int;
  m : int; (* target out-degree on upper levels *)
  m0 : int; (* out-degree on level 0 *)
  ef_construction : int;
  ml : float;
  rng : Rng.t;
  mutable nodes : 'a node array;
  mutable count : int;
  mutable entry : int;
  mutable max_level : int;
}

let create ?(m = 12) ?(ef_construction = 80) ~dim rng =
  {
    dim;
    m;
    m0 = 2 * m;
    ef_construction;
    ml = 1.0 /. log (float_of_int m);
    rng;
    nodes = [||];
    count = 0;
    entry = -1;
    max_level = -1;
  }

let size t = t.count

let get_payload t i = t.nodes.(i).payload

let l2 a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist t i q = l2 t.nodes.(i).vec q

(* Greedy beam search restricted to one level; returns up to [ef] closest
   (dist, id) pairs.  [distance] abstracts the metric so the same routine
   serves both the L2 build and the generic-score query. *)
let search_layer t ~distance ~entry_points ~ef ~level =
  let visited = Hashtbl.create 64 in
  let candidates = Heap.create () in (* min-heap by distance *)
  let results = Heap.create () in (* min-heap by -distance = max-heap *)
  List.iter
    (fun ep ->
      if not (Hashtbl.mem visited ep) then begin
        Hashtbl.add visited ep ();
        let d = distance ep in
        Heap.push candidates d ep;
        Heap.push results (-.d) ep
      end)
    entry_points;
  let continue = ref true in
  while !continue do
    match Heap.pop candidates with
    | None -> continue := false
    | Some (dc, c) ->
        let worst = match Heap.peek results with Some (nd, _) -> -.nd | None -> infinity in
        if dc > worst && Heap.size results >= ef then continue := false
        else
          List.iter
            (fun nb ->
              if not (Hashtbl.mem visited nb) then begin
                Hashtbl.add visited nb ();
                let d = distance nb in
                let worst =
                  match Heap.peek results with Some (nd, _) -> -.nd | None -> infinity
                in
                if Heap.size results < ef || d < worst then begin
                  Heap.push candidates d nb;
                  Heap.push results (-.d) nb;
                  if Heap.size results > ef then ignore (Heap.pop results)
                end
              end)
            (if level <= t.nodes.(c).level then t.nodes.(c).neighbors.(level) else [])
  done;
  Heap.to_list results |> List.map (fun (nd, id) -> (-.nd, id))
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

(* Neighbour-selection heuristic from the HNSW paper: accept a candidate only
   if it is closer to the query than to every already-accepted neighbour,
   which keeps links spread across directions. *)
let select_heuristic t ~candidates ~m =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) candidates in
  let chosen = ref [] and n = ref 0 in
  List.iter
    (fun (d, id) ->
      if !n < m then begin
        let ok =
          List.for_all (fun (_, c) -> l2 t.nodes.(id).vec t.nodes.(c).vec >= d) !chosen
        in
        if ok then begin
          chosen := (d, id) :: !chosen;
          incr n
        end
      end)
    sorted;
  (* Backfill with nearest skipped candidates if the heuristic was too picky. *)
  if !n < m then begin
    List.iter
      (fun (d, id) ->
        if !n < m && not (List.exists (fun (_, c) -> c = id) !chosen) then begin
          chosen := (d, id) :: !chosen;
          incr n
        end)
      sorted
  end;
  List.map snd !chosen

let max_degree t level = if level = 0 then t.m0 else t.m

(* Re-prune a node's adjacency after gaining a link. *)
let shrink_links t id level =
  let node = t.nodes.(id) in
  let links = node.neighbors.(level) in
  let cap = max_degree t level in
  if List.length links > cap then begin
    let cands = List.map (fun nb -> (l2 node.vec t.nodes.(nb).vec, nb)) links in
    node.neighbors.(level) <- select_heuristic t ~candidates:cands ~m:cap
  end

let insert t vec payload =
  if Array.length vec <> t.dim then invalid_arg "Hnsw.insert: dimension mismatch";
  let level =
    int_of_float (Float.of_int 0 -. (log (Float.max 1e-12 (Rng.float t.rng)) *. t.ml))
  in
  let node = { vec; payload; level; neighbors = Array.make (level + 1) [] } in
  (* Append node. *)
  if t.count = Array.length t.nodes then begin
    let cap = max 16 (2 * Array.length t.nodes) in
    let bigger = Array.make cap node in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end;
  let id = t.count in
  t.nodes.(id) <- node;
  t.count <- t.count + 1;
  if id = 0 then begin
    t.entry <- 0;
    t.max_level <- level
  end
  else begin
    let distance i = dist t i vec in
    (* Greedy descent through levels above the node's level.  The current
       best's distance is cached and each neighbour evaluated once — the old
       [distance nb < distance !ep] comparison re-evaluated both sides per
       neighbour, doubling distance work on the descent. *)
    let ep = ref t.entry in
    let ep_d = ref (distance !ep) in
    for l = t.max_level downto level + 1 do
      let improved = ref true in
      while !improved do
        improved := false;
        List.iter
          (fun nb ->
            let nd = distance nb in
            if nd < !ep_d then begin
              ep := nb;
              ep_d := nd;
              improved := true
            end)
          (if l <= t.nodes.(!ep).level then t.nodes.(!ep).neighbors.(l) else [])
      done
    done;
    (* Connect on each level from min(level, max_level) down to 0. *)
    let eps = ref [ !ep ] in
    for l = min level t.max_level downto 0 do
      let found =
        search_layer t ~distance ~entry_points:!eps ~ef:t.ef_construction ~level:l
      in
      let selected = select_heuristic t ~candidates:found ~m:(max_degree t l) in
      node.neighbors.(l) <- selected;
      List.iter
        (fun nb ->
          t.nodes.(nb).neighbors.(l) <- id :: t.nodes.(nb).neighbors.(l);
          shrink_links t nb l)
        selected;
      eps := List.map snd found
    done;
    if level > t.max_level then begin
      t.max_level <- level;
      t.entry <- id
    end
  end

(* Exact k-NN under L2 against a query vector. *)
let search t ~query ~k ?(ef = 50) () =
  if t.count = 0 then []
  else begin
    let distance i = dist t i query in
    (* Greedy descent with the current best's distance cached (one distance
       evaluation per neighbour instead of two). *)
    let ep = ref t.entry in
    let ep_d = ref (distance !ep) in
    for l = t.max_level downto 1 do
      let improved = ref true in
      while !improved do
        improved := false;
        List.iter
          (fun nb ->
            let nd = distance nb in
            if nd < !ep_d then begin
              ep := nb;
              ep_d := nd;
              improved := true
            end)
          (if l <= t.nodes.(!ep).level then t.nodes.(!ep).neighbors.(l) else [])
      done
    done;
    let found =
      search_layer t ~distance ~entry_points:[ !ep ] ~ef:(max ef k) ~level:0
    in
    List.filteri (fun i _ -> i < k) found
  end

(* Generic-measure search: traverse the L2-built graph minimizing an arbitrary
   [score] over payload ids — WACO's ANNS over the predicted runtime.  Returns
   the top-k (score, id) pairs and the number of score evaluations spent. *)
let search_by t ~score ~k ?(ef = 50) () =
  if t.count = 0 then ([], 0)
  else begin
    let evals = ref 0 in
    let cache = Hashtbl.create 256 in
    let distance i =
      match Hashtbl.find_opt cache i with
      | Some d -> d
      | None ->
          incr evals;
          let d = score i in
          Hashtbl.add cache i d;
          d
    in
    let ep = ref t.entry in
    let ep_d = ref (distance !ep) in
    for l = t.max_level downto 1 do
      let improved = ref true in
      while !improved do
        improved := false;
        List.iter
          (fun nb ->
            let nd = distance nb in
            if nd < !ep_d then begin
              ep := nb;
              ep_d := nd;
              improved := true
            end)
          (if l <= t.nodes.(!ep).level then t.nodes.(!ep).neighbors.(l) else [])
      done
    done;
    let found =
      search_layer t ~distance ~entry_points:[ !ep ] ~ef:(max ef k) ~level:0
    in
    (List.filteri (fun i _ -> i < k) found, !evals)
  end

(* --- Snapshots ---

   Text serialization of the whole graph (structure + vectors + payloads) so
   an index built once can be reused across processes instead of rebuilt per
   query — the build is the expensive half of the tuner's one-off cost.  The
   payload serializer must be single-line; the caller owns payload syntax
   (WACO stores SuperSchedules via their dataset encoding). *)

let dump t ~payload =
  let buf = Buffer.create (4096 + (t.count * 64)) in
  Printf.bprintf buf "HNSW %d %d %d %d %d %d\n" t.dim t.m t.ef_construction t.count
    t.entry t.max_level;
  for i = 0 to t.count - 1 do
    let n = t.nodes.(i) in
    let p = payload n.payload in
    if String.contains p '\n' then
      invalid_arg "Hnsw.dump: payload serialization must be single-line";
    Printf.bprintf buf "N %d %s\n" n.level p;
    Buffer.add_char buf 'V';
    Array.iter (fun v -> Printf.bprintf buf " %.17g" v) n.vec;
    Buffer.add_char buf '\n';
    for l = 0 to n.level do
      Buffer.add_char buf 'A';
      List.iter (fun id -> Printf.bprintf buf " %d" id) n.neighbors.(l);
      Buffer.add_char buf '\n'
    done
  done;
  Buffer.contents buf

(* A short stable identity of the whole graph (structure + vectors +
   payloads), so cached answers derived from one index are never served
   against another.  FNV-1a over the dump text: [dump] is already the
   canonical byte representation, and a 64-bit hash keeps the serving
   layer's cache header free of megabyte-scale digest inputs. *)
let fingerprint t ~payload =
  let text = dump t ~payload in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

exception Restore_error of string

let restore rng ~payload text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Restore_error m)) fmt in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let pos = ref 0 in
  let next what =
    if !pos >= Array.length lines then fail "snapshot ends while reading %s" what
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let ints_of what parts =
    List.map
      (fun s ->
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail "%s: unparseable integer %S" what s)
      parts
  in
  let dim, m, ef_construction, count, entry, max_level =
    match String.split_on_char ' ' (next "the header") with
    | "HNSW" :: rest -> (
        match ints_of "header" rest with
        | [ dim; m; efc; count; entry; max_level ] ->
            (dim, m, efc, count, entry, max_level)
        | _ -> fail "malformed HNSW header")
    | _ -> fail "missing HNSW header"
  in
  if dim < 1 || m < 1 || count < 0 then fail "nonsensical HNSW header";
  let t = create ~m ~ef_construction ~dim rng in
  if count > 0 then begin
    let nodes =
      Array.init count (fun i ->
          let level, pay =
            let line = next (Printf.sprintf "node %d" i) in
            match String.index_opt line ' ' with
            | Some sp when String.length line > 2 && String.sub line 0 2 = "N " -> (
                let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
                match String.index_opt rest ' ' with
                | Some sp2 -> (
                    let lvl = String.sub rest 0 sp2 in
                    let p = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
                    match int_of_string_opt lvl with
                    | Some l when l >= 0 -> (l, p)
                    | _ -> fail "node %d: bad level %S" i lvl)
                | None -> fail "node %d: malformed N record" i)
            | _ -> fail "node %d: expected an N record" i
          in
          let vec =
            match String.split_on_char ' ' (next (Printf.sprintf "vector %d" i)) with
            | "V" :: vals ->
                let arr =
                  Array.of_list
                    (List.map
                       (fun s ->
                         match float_of_string_opt s with
                         | Some v -> v
                         | None -> fail "node %d: unparseable vector value %S" i s)
                       vals)
                in
                if Array.length arr <> dim then
                  fail "node %d: vector has %d components, index dim is %d" i
                    (Array.length arr) dim;
                arr
            | _ -> fail "node %d: expected a V record" i
          in
          let neighbors =
            Array.init (level + 1) (fun l ->
                match
                  String.split_on_char ' '
                    (next (Printf.sprintf "adjacency %d of node %d" l i))
                with
                | "A" :: ids ->
                    List.map
                      (fun id ->
                        if id < 0 || id >= count then
                          fail "node %d: neighbor id %d out of range" i id
                        else id)
                      (ints_of "adjacency" ids)
                | _ -> fail "node %d: expected an A record" i)
          in
          { vec; payload = payload pay; level; neighbors })
    in
    if entry < 0 || entry >= count then fail "entry point %d out of range" entry;
    (* The build maintains two invariants the descent loops rely on: the
       header's [max_level] is the maximum node level, and the entry point
       sits at that level.  A snapshot violating either (tampering, a buggy
       writer) would make every search silently start mid-graph, so reject
       it here rather than return wrong neighbours forever. *)
    let table_max = Array.fold_left (fun acc n -> max acc n.level) 0 nodes in
    if max_level <> table_max then
      fail "header max_level %d disagrees with the node table's maximum %d"
        max_level table_max;
    if nodes.(entry).level <> max_level then
      fail "entry node %d has level %d, not the graph's max_level %d" entry
        nodes.(entry).level max_level;
    t.nodes <- nodes;
    t.count <- count;
    t.entry <- entry;
    t.max_level <- max_level
  end;
  t

(* Brute-force exact search, for recall measurements in tests. *)
let brute_force t ~query ~k =
  let all = List.init t.count (fun i -> (dist t i query, i)) in
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) all in
  List.filteri (fun i _ -> i < k) sorted
