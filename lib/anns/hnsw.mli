(** Hierarchical Navigable Small World graphs (Malkov & Yashunin) — the
    graph-based approximate nearest-neighbour index WACO's search runs on
    (§4.2.2).

    The graph is built under the L2 metric over program embeddings;
    [search_by] then traverses the same graph under an arbitrary scoring
    function — WACO's predicted runtime — exploiting the property that an
    L2-built KNN graph supports retrieval under generic measures. *)

type 'a node = {
  vec : float array;
  payload : 'a;
  level : int;
  neighbors : int list array;  (** adjacency per level, 0..level *)
}

type 'a t = {
  dim : int;
  m : int;
  m0 : int;
  ef_construction : int;
  ml : float;
  rng : Sptensor.Rng.t;
  mutable nodes : 'a node array;
  mutable count : int;
  mutable entry : int;
  mutable max_level : int;
}

val create : ?m:int -> ?ef_construction:int -> dim:int -> Sptensor.Rng.t -> 'a t
(** [m] is the target out-degree on upper levels (level 0 gets [2m]). *)

val size : 'a t -> int

val get_payload : 'a t -> int -> 'a

val l2 : float array -> float array -> float
(** Squared Euclidean distance. *)

val insert : 'a t -> float array -> 'a -> unit
(** Raises [Invalid_argument] on dimension mismatch. *)

val search : 'a t -> query:float array -> k:int -> ?ef:int -> unit -> (float * int) list
(** Approximate k-NN under L2: [(distance, node id)] pairs sorted ascending. *)

val search_by :
  'a t -> score:(int -> float) -> k:int -> ?ef:int -> unit ->
  (float * int) list * int
(** Generic-measure search: greedy traversal minimizing [score] over node
    ids.  Returns the top-k [(score, id)] pairs and the number of score
    evaluations spent (scores are cached per query). *)

val brute_force : 'a t -> query:float array -> k:int -> (float * int) list
(** Exact k-NN by linear scan — for recall measurements in tests. *)

(** {2 Snapshots} *)

val dump : 'a t -> payload:('a -> string) -> string
(** Text serialization of the whole graph (structure, vectors, payloads) so a
    built index can be reused across processes.  [payload] must be
    single-line; raises [Invalid_argument] otherwise. *)

val fingerprint : 'a t -> payload:('a -> string) -> string
(** A short stable identity of the graph (16 hex chars, FNV-1a over
    {!dump}) — the serving layer stamps its persistent schedule cache with
    it so cached answers are invalidated when the index changes. *)

exception Restore_error of string

val restore : Sptensor.Rng.t -> payload:(string -> 'a) -> string -> 'a t
(** Rebuilds a graph serialized by {!dump}.  [rng] seeds future level draws
    (further inserts remain possible).  Raises {!Restore_error} on any
    structural damage — callers wrap it into their typed load errors. *)
