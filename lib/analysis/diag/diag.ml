(* The diagnostics engine behind `waco lint` and the static analysis passes.

   A diagnostic is a stable machine-readable code (WACO-S012, WACO-P001, ...),
   a severity, a structured location string ("schedule.compute_order",
   "tuples.txt:14", "packed.level[1].crd[3]") and a human message.  Passes
   accumulate diagnostics instead of throwing, so one lint run reports every
   problem; the legacy [validate] entry points raise the first error-level
   diagnostic to keep their exception contract.

   Severity maps to the CLI exit code: errors -> 2, warnings -> 1, hints and
   clean runs -> 0. *)

type severity = Error | Warning | Hint

type t = {
  code : string; (* stable identifier, e.g. "WACO-S012" *)
  severity : severity;
  loc : string; (* structured location path *)
  message : string;
}

let severity_rank = function Error -> 2 | Warning -> 1 | Hint -> 0

let severity_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let make severity ~code ~loc fmt =
  Printf.ksprintf (fun message -> { code; severity; loc; message }) fmt

let error ~code ~loc fmt = make Error ~code ~loc fmt

let warning ~code ~loc fmt = make Warning ~code ~loc fmt

let hint ~code ~loc fmt = make Hint ~code ~loc fmt

let code d = d.code

let severity d = d.severity

let loc d = d.loc

let message d = d.message

let is_error d = d.severity = Error

(* Re-home a diagnostic under an outer location (e.g. the dataset pass
   re-emits schedule legality diagnostics prefixed with their file line). *)
let relocate ~prefix d = { d with loc = prefix ^ ":" ^ d.loc }

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let first_error ds = List.find_opt is_error ds

let max_severity = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
           Hint ds)

(* CLI contract: 0 clean (or hints only) / 1 warnings / 2 errors. *)
let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Hint | None -> 0

(* Stable presentation order: errors first, then by code, then by location;
   emission order breaks the remaining ties. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank b.severity) (severity_rank a.severity) in
      if c <> 0 then c
      else
        let c = compare a.code b.code in
        if c <> 0 then c else compare a.loc b.loc)
    ds

(* --- Text rendering --- *)

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.code d.loc d.message

let pp ppf d = Fmt.string ppf (to_string d)

let summary ds =
  Printf.sprintf "%d error(s), %d warning(s), %d hint(s)" (count Error ds)
    (count Warning ds) (count Hint ds)

let render_text ds =
  match ds with
  | [] -> "no diagnostics\n"
  | ds ->
      let lines = List.map to_string (sort ds) in
      String.concat "\n" lines ^ "\n" ^ summary ds ^ "\n"

(* --- JSON rendering (hand-rolled; no JSON dependency in the container) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"loc\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.code) (severity_name d.severity) (json_escape d.loc)
    (json_escape d.message)

let render_json ds =
  let sorted = sort ds in
  Printf.sprintf
    "{\"errors\":%d,\"warnings\":%d,\"hints\":%d,\"exit_code\":%d,\"diagnostics\":[%s]}\n"
    (count Error ds) (count Warning ds) (count Hint ds) (exit_code ds)
    (String.concat "," (List.map to_json sorted))
