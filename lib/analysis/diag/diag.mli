(** The diagnostics engine behind [waco lint] and the static analysis passes:
    stable codes ([WACO-S012], [WACO-P001], ...), severities, structured
    locations, and text/JSON renderers.  Passes accumulate diagnostics instead
    of throwing so one run reports every problem; severity maps to the CLI
    exit code (errors 2, warnings 1, hints/clean 0). *)

type severity = Error | Warning | Hint

type t = {
  code : string;  (** stable identifier, e.g. ["WACO-S012"] *)
  severity : severity;
  loc : string;  (** structured location, e.g. ["schedule.compute_order"] *)
  message : string;
}

val make :
  severity -> code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val error : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val warning : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val hint : code:string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val code : t -> string

val severity : t -> severity

val loc : t -> string

val message : t -> string

val is_error : t -> bool

val relocate : prefix:string -> t -> t
(** Prefix the location with an outer context (e.g. ["tuples.txt:14"]). *)

val severity_name : severity -> string

val count : severity -> t list -> int

val first_error : t list -> t option

val max_severity : t list -> severity option

val exit_code : t list -> int
(** 0 clean or hints only / 1 warnings / 2 errors. *)

val sort : t list -> t list
(** Errors first, then by code, then by location (stable). *)

val to_string : t -> string
(** ["error[WACO-S012] schedule.compute_order: ..."]. *)

val pp : Format.formatter -> t -> unit

val summary : t list -> string

val render_text : t list -> string

val to_json : t -> string

val render_json : t list -> string
