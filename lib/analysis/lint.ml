(* Lint orchestration: the one entry point the CLI, the tuner pre-filter and
   the tests share.  Legality lives in [Superschedule.check] /
   [Format_abs.Spec.check] (this module only aggregates); performance smells
   come from [Perf_check]. *)

open Schedule

let check_schedule ?dims (s : Superschedule.t) : Diag.t list =
  let legality = Superschedule.check s in
  let perf = match dims with None -> [] | Some dims -> Perf_check.check ~dims s in
  legality @ perf

(* Pre-filter predicate for search strategies: a point with an error-level
   legality diagnostic can never execute, so spending a cost-model forward
   pass on it is pure waste. *)
let accepts (s : Superschedule.t) : bool =
  Diag.first_error (Superschedule.check s) = None

let count_rejected (schedules : Superschedule.t array) : int =
  Array.fold_left (fun acc s -> if accepts s then acc else acc + 1) 0 schedules
