(* Performance-smell passes over a SuperSchedule (codes WACO-P00x).

   These encode the paper's own motivation — most SuperSchedule points are
   *statically* bad before any cost-model evaluation (§3.1's discordant
   traversal, degenerate splits, dead levels), echoing the asymptotic cost
   model of Ahrens & Kjolstad.  All are warnings or hints: the tuner
   pre-filter rejects only error-level (legality) diagnostics, while these
   explain *why* a point will price badly.

   Every pass is individually defensive: a schedule that fails legality in
   one field still gets the smells its well-formed fields support, so one
   lint run reports everything. *)

open Schedule
module Spec = Format_abs.Spec
module Levelfmt = Format_abs.Levelfmt

let check ~(dims : int array) (s : Superschedule.t) : Diag.t list =
  let r = Algorithm.sparse_rank s.Superschedule.algo in
  let n = 2 * r in
  let names = Algorithm.dim_names s.Superschedule.algo in
  let var v = Spec.var_name ~dim_names:names v in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let splits = s.Superschedule.splits in
  let dims_ok = Array.length dims = r && Array.for_all (fun d -> d >= 1) dims in
  (* --- degenerate splits: exceed the dimension / silently clamped --- *)
  if dims_ok then
    for d = 0 to min r (Array.length splits) - 1 do
      if splits.(d) > dims.(d) then
        add
          (Diag.warning ~code:"WACO-P002"
             ~loc:(Printf.sprintf "schedule.splits[%d]" d)
             "split %d exceeds dimension %d (%s's top level collapses to a single block)"
             splits.(d) dims.(d) names.(d));
      (* [Superschedule.to_spec] clamps with [min s (max 1 d)]; surface the
         clamp so it is visible rather than silent. *)
      let clamped = min splits.(d) (max 1 dims.(d)) in
      if clamped <> splits.(d) && splits.(d) >= 1 then
        add
          (Diag.hint ~code:"WACO-P003"
             ~loc:(Printf.sprintf "schedule.splits[%d]" d)
             "to_spec clamps split %d to %d for dimension %s=%d" splits.(d) clamped
             names.(d) dims.(d))
    done;
  (* A concrete spec is available only when the format-side fields are
     well-formed; passes that need level extents are gated on it. *)
  let spec_ok =
    dims_ok
    && Array.length splits = r
    && Array.for_all (fun x -> x >= 1) splits
    && Spec.is_permutation n s.Superschedule.a_order
    && Array.length s.Superschedule.a_formats = n
  in
  let spec = if spec_ok then Some (Superschedule.to_spec s ~dims) else None in
  (match spec with
  | None -> ()
  | Some spec ->
      let ext lvl = Spec.level_size spec lvl in
      let nlv = Spec.nlevels spec in
      (* --- dead levels: extent-1 levels ordered above non-degenerate ones --- *)
      let last_sig = ref (-1) in
      for lvl = 0 to nlv - 1 do
        if ext lvl > 1 then last_sig := lvl
      done;
      for lvl = 0 to !last_sig - 1 do
        if ext lvl = 1 then
          add
            (Diag.hint ~code:"WACO-P004"
               ~loc:(Printf.sprintf "schedule.a_order[%d]" lvl)
               "level %s has extent 1 but is ordered above non-degenerate levels (dead loop)"
               (var (Spec.level_var spec lvl)))
      done;
      (* --- compressed levels with nothing to compress --- *)
      for lvl = 0 to nlv - 1 do
        if ext lvl = 1 && Spec.level_format spec lvl = Levelfmt.C then
          add
            (Diag.warning ~code:"WACO-P005"
               ~loc:(Printf.sprintf "schedule.a_formats[%d]" lvl)
               "compressed level %s has extent 1 (pos/crd overhead with no selectivity)"
               (var (Spec.level_var spec lvl)))
      done;
      (* --- discordant iteration over compressed levels (§3.1) --- *)
      let significant =
        Array.to_list spec.Spec.order
        |> List.mapi (fun lvl v -> (lvl, v))
        |> List.filter (fun (lvl, _) -> ext lvl > 1)
      in
      let storage_seq = Array.of_list (List.map snd significant) in
      let fmt_seq =
        Array.of_list (List.map (fun (lvl, _) -> Spec.level_format spec lvl) significant)
      in
      let in_tensor v = Array.exists (fun w -> w = v) storage_seq in
      let compute_seq =
        Array.of_list
          (List.filter in_tensor (Array.to_list s.Superschedule.compute_order))
      in
      let discordant_compressed =
        if Array.length compute_seq <> Array.length storage_seq then
          (* compute order is missing (or repeating) tensor variables: every
             compressed level counts as discordant *)
          Array.fold_left
            (fun acc f -> if f = Levelfmt.C then acc + 1 else acc)
            0 fmt_seq
        else begin
          let c = ref 0 in
          Array.iteri
            (fun i v ->
              if v <> compute_seq.(i) && fmt_seq.(i) = Levelfmt.C then incr c)
            storage_seq;
          !c
        end
      in
      if discordant_compressed > 0 then
        add
          (Diag.warning ~code:"WACO-P001" ~loc:"schedule.compute_order"
             "compute order iterates %d compressed level(s) of A discordantly (a binary search per access, paper §3.1)"
             discordant_compressed);
      (* --- parallel variable under a compressed loop --- *)
      let par = s.Superschedule.par_var in
      if par >= 0 && par < n then begin
        (if Spec.is_permutation n s.Superschedule.compute_order then begin
           let vf = Array.make n Levelfmt.U in
           Array.iteri
             (fun lvl v -> vf.(v) <- spec.Spec.formats.(lvl))
             spec.Spec.order;
           let par_pos = ref 0 in
           Array.iteri
             (fun i v -> if v = par then par_pos := i)
             s.Superschedule.compute_order;
           let offender = ref None in
           for q = 0 to !par_pos - 1 do
             let v = s.Superschedule.compute_order.(q) in
             if !offender = None && vf.(v) = Levelfmt.C && Spec.var_size spec v > 1 then
               offender := Some v
           done;
           match !offender with
           | Some v ->
               add
                 (Diag.warning ~code:"WACO-P006" ~loc:"schedule.par_var"
                    "parallel variable %s is nested under compressed loop %s (irregular per-thread work, region re-entered per outer iteration)"
                    (var par) (var v))
           | None -> ()
         end);
        (* --- chunk larger than the parallel loop --- *)
        let extent = Spec.var_size spec par in
        if s.Superschedule.chunk > extent then
          add
            (Diag.warning ~code:"WACO-P007" ~loc:"schedule.chunk"
               "chunk %d exceeds the parallel loop's %d iteration(s) of %s (at most one thread stays busy)"
               s.Superschedule.chunk extent (var par))
      end);
  List.rev !ds
