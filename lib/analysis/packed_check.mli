(** Verifier for physically packed tensors (codes [WACO-F0xx]): level kinds
    match the spec, pos arrays are zero-based and monotone, crd entries are
    in-bounds and strictly sorted per segment, the value array is leaf-sized
    and finite, and (optionally) a COO round-trip reproduces a reference
    matrix.  Structural errors stop the walk — everything below a broken
    level is meaningless. *)

val check : ?reference:Sptensor.Coo.t -> Format_abs.Packed.t -> Diag.t list

val pack_and_check :
  ?budget:int ->
  Format_abs.Spec.t ->
  (int array * float) array ->
  (Format_abs.Packed.t, Diag.t list) result
(** [Packed.pack] with its [Error] strings mapped to diagnostics:
    duplicate coordinates become [WACO-F013] (error), budget overflows
    [WACO-F014] (warning — the format is representable, just not
    materializable). *)
