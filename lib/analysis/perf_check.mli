(** Performance-smell passes over a SuperSchedule (codes [WACO-P00x]):
    discordant iteration over compressed levels (paper §3.1), splits
    exceeding the dimension (and the silent [to_spec] clamp), dead
    extent-1 levels, compressed levels with nothing to compress, a parallel
    variable nested under a compressed loop, and chunk sizes larger than the
    parallel loop.  All warnings/hints — legality lives in
    [Superschedule.check].  Defensive: fields that fail legality simply
    skip the passes that need them. *)

val check : dims:int array -> Schedule.Superschedule.t -> Diag.t list
