(** Collected-dataset artifact pass (codes [WACO-D00x]) over the
    [Dataset_io] on-disk layout ([tuples.txt] + MatrixMarket files):
    missing or unreadable matrices, non-finite runtimes, unparseable
    schedule encodings, duplicate (matrix, schedule) tuples, and
    unrecognized records.  Schedule legality ([WACO-S01x]) and — when the
    matrix loads — performance smells ([WACO-P00x]) are re-emitted anchored
    to the offending line.  [deep:false] skips reading the matrix files. *)

val check : ?deep:bool -> string -> Diag.t list
