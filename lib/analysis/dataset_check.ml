(* Collected-dataset artifact pass (codes WACO-D00x).

   The paper's training corpus took two weeks of cluster time to collect;
   vetting tuples.txt before a multi-hour training run is much cheaper than
   discovering mid-epoch that a line is corrupt.  The pass re-reads the
   line format of [Dataset_io.save] leniently — one bad record is one
   diagnostic, not an aborted load — and re-emits schedule legality (and,
   when the matrix is loadable, performance) diagnostics anchored to the
   offending line. *)

open Schedule

let check ?(deep = true) (dir : string) : Diag.t list =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let tuples_path = Filename.concat dir "tuples.txt" in
  (match open_in tuples_path with
  | exception Sys_error msg ->
      add (Diag.error ~code:"WACO-D001" ~loc:tuples_path "%s" msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (* matrix name -> dims (None when the file failed to load) *)
          let matrices : (string, int array option) Hashtbl.t = Hashtbl.create 16 in
          let seen_tuples : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
          let algo = ref None in
          let header_seen = ref false in
          let lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               let loc = Printf.sprintf "%s:%d" tuples_path !lineno in
               if String.length line = 0 then ()
               else if line.[0] = '#' then begin
                 if not !header_seen then begin
                   header_seen := true;
                   let tokens = String.split_on_char ' ' line in
                   let algo_tok =
                     List.find_opt
                       (fun t ->
                         String.length t > 5 && String.sub t 0 5 = "algo=")
                       tokens
                   in
                   match algo_tok with
                   | None ->
                       add
                         (Diag.warning ~code:"WACO-D002" ~loc
                            "dataset header does not declare an algorithm")
                   | Some tok -> (
                       let name = String.sub tok 5 (String.length tok - 5) in
                       match Algorithm.of_name name with
                       | Some a -> algo := Some a
                       | None ->
                           add
                             (Diag.warning ~code:"WACO-D002" ~loc
                                "unknown algorithm %S in dataset header" name))
                 end
               end
               else begin
                 match String.index_opt line ' ' with
                 | None ->
                     add
                       (Diag.error ~code:"WACO-D009" ~loc "unrecognized record %S" line)
                 | Some sp -> (
                     let tag = String.sub line 0 sp in
                     let rest =
                       String.sub line (sp + 1) (String.length line - sp - 1)
                     in
                     match tag with
                     | "MATRIX" -> (
                         match String.split_on_char ' ' rest with
                         | [ name; file ] -> (
                             let path = Filename.concat dir file in
                             if not (Sys.file_exists path) then begin
                               add
                                 (Diag.error ~code:"WACO-D003" ~loc
                                    "matrix file %s does not exist" file);
                               Hashtbl.replace matrices name None
                             end
                             else if deep then
                               match Sptensor.Mmio.read_coo path with
                               | m ->
                                   Hashtbl.replace matrices name
                                     (Some
                                        [|
                                          m.Sptensor.Coo.nrows; m.Sptensor.Coo.ncols;
                                        |])
                               | exception Sptensor.Mmio.Parse_error msg ->
                                   add
                                     (Diag.error ~code:"WACO-D004" ~loc
                                        "matrix %s unreadable: %s" file msg);
                                   Hashtbl.replace matrices name None
                               | exception Sys_error msg ->
                                   add
                                     (Diag.error ~code:"WACO-D004" ~loc
                                        "matrix %s unreadable: %s" file msg);
                                   Hashtbl.replace matrices name None
                             else Hashtbl.replace matrices name None)
                         | _ ->
                             add
                               (Diag.error ~code:"WACO-D009" ~loc
                                  "malformed MATRIX record %S" line))
                     | "TUPLE" -> (
                         match String.split_on_char ' ' rest with
                         | name :: time :: sched_parts -> (
                             (match float_of_string_opt time with
                             | Some t when Float.is_finite t -> ()
                             | _ ->
                                 add
                                   (Diag.error ~code:"WACO-D005" ~loc
                                      "bad runtime %S (want a finite log10 seconds)"
                                      time));
                             if (not (Hashtbl.mem matrices name))
                                && (match !algo with
                                   | Some a -> Algorithm.sparse_rank a = 2
                                   | None -> true)
                             then
                               add
                                 (Diag.hint ~code:"WACO-D008" ~loc
                                    "tuple references matrix %s with no MATRIX record above it"
                                    name);
                             let sched_text = String.concat " " sched_parts in
                             match !algo with
                             | None -> ()
                             | Some a -> (
                                 match Sched_io.parse ~algo:a sched_text with
                                 | Error e ->
                                     add
                                       (Diag.error ~code:"WACO-D006" ~loc
                                          "unparseable schedule: %s" e)
                                 | Ok s ->
                                     let key = Superschedule.key s in
                                     (match
                                        Hashtbl.find_opt seen_tuples (name, key)
                                      with
                                     | Some prev ->
                                         add
                                           (Diag.warning ~code:"WACO-D007" ~loc
                                              "duplicate tuple for matrix %s (same schedule at line %d)"
                                              name prev)
                                     | None ->
                                         Hashtbl.add seen_tuples (name, key) !lineno);
                                     let prefix = Printf.sprintf "%s:%d" tuples_path !lineno in
                                     List.iter
                                       (fun d -> add (Diag.relocate ~prefix d))
                                       (Superschedule.check s);
                                     (match Hashtbl.find_opt matrices name with
                                     | Some (Some dims) ->
                                         List.iter
                                           (fun d -> add (Diag.relocate ~prefix d))
                                           (Perf_check.check ~dims s)
                                     | _ -> ())))
                         | _ ->
                             add
                               (Diag.error ~code:"WACO-D009" ~loc
                                  "malformed TUPLE record %S" line))
                     | _ ->
                         add
                           (Diag.error ~code:"WACO-D009" ~loc
                              "unrecognized record tag %S" tag))
               end
             done
           with
          | End_of_file -> ()
          (* [open_in] on a directory only fails at the first read on some
             systems; fold that into the unreadable-dataset diagnostic. *)
          | Sys_error msg ->
              add (Diag.error ~code:"WACO-D001" ~loc:tuples_path "%s" msg))));
  List.rev !ds
