(** Symbolic asymptotic cost expressions (after Ahrens & Kjolstad's
    asymptotic cost model for sparse tensor programs): normalized sums of
    monomials over

    - [N_d] — the size of logical dimension [d];
    - [F_d] — the nonempty fraction of dimension [d] (fill statistic from
      the workload's per-dimension histograms, always <= 1);
    - [nnz] — the sparse operand's nonzero count;
    - [J]   — the algorithm's dense inner trip count;
    - [log] — the log(nnz/row) search factor discordant traversal pays.

    The partial dominance order compares two expressions as asymptotic
    complexity classes using the sound relations [nnz <= prod N_d],
    [nnz >= 1], [F_d <= 1], [J >= 1] and [log >= 1]; coefficients are
    ignored (callers combine the symbolic verdict with a numeric
    magnitude margin from {!eval}). *)

type mono = {
  coeff : float;  (** > 0 *)
  ns : int array;  (** exponent of [N_d] per logical dim *)
  fs : int array;  (** exponent of [F_d] per logical dim *)
  nnz : int;
  j : int;
  logn : int;
}

type t = {
  rank : int;
  terms : mono list;  (** normalized: merged, absorbed, canonically sorted *)
}

(** {2 Construction} *)

val const : int -> float -> t
(** [const rank c]: the constant monomial [c] (must be > 0). *)

val dim : ?coeff:float -> int -> int -> t
(** [dim rank d]: [coeff * N_d]. *)

val fill_dim : int -> int -> t
(** [fill_dim rank d]: [F_d * N_d] — the nonempty-coordinate count of
    dimension [d]. *)

val nnz_sym : int -> t

val j_sym : int -> t

val log_sym : int -> t

val add : t -> t -> t

val mul : t -> t -> t

val scale : float -> t -> t

val normalize : t -> t
(** Merge monomials with identical exponent vectors, absorb terms
    asymptotically dominated by another term of the same sum, and sort
    canonically (descending total degree, then exponents).  All public
    constructors and operators return normalized expressions already;
    [normalize] is idempotent. *)

(** {2 Dominance} *)

val mono_le : int -> mono -> mono -> bool
(** [mono_le rank a b]: [a] is in [O(b)].  Excess [nnz] powers of [a] are
    converted to [prod_d N_d] (sound: [nnz <= prod N_d]) before the
    pointwise exponent comparison; excess [nnz] powers of [b] are free
    ([nnz >= 1]), and [F_d] exponents compare reversed ([F_d <= 1]). *)

val le : t -> t -> bool
(** [le e1 e2]: every monomial of [e1] is dominated by some monomial of
    [e2], i.e. [e1] is in [O(e2)]. *)

type verdict =
  | Equal  (** same asymptotic class *)
  | Dominates  (** the left cost grows strictly faster (worse) *)
  | Dominated  (** the left cost grows strictly slower (better) *)
  | Incomparable

val compare : t -> t -> verdict
(** [compare e1 e2] reads from [e1]'s perspective as a cost: [Dominates]
    means [e1] is asymptotically worse than [e2]. *)

val verdict_name : verdict -> string

(** {2 Evaluation and rendering} *)

type env = {
  sizes : float array;  (** value of [N_d] *)
  fills : float array;  (** value of [F_d], in (0, 1] *)
  nnz_v : float;
  j_v : float;  (** >= 1 *)
  logn_v : float;  (** >= 1 *)
}

val eval : env -> t -> float

val eval_mono : env -> mono -> float

val to_string : ?dim_names:string array -> t -> string
(** Deterministic rendering of the normalized sum, e.g. ["nnz*J + Ni"];
    [dim_names] (e.g. [[|"i";"k"|]]) names the [N]/[F] symbols. *)

val pp : Format.formatter -> t -> unit
