(* One rejection-reason type for every schedule pre-filter slot, so the
   legality filter (PR 1) and the asymptotic filter report through the same
   counters wherever they run. *)

open Schedule

type reason = Lint | Asym

let reason_name = function Lint -> "lint" | Asym -> "asym"

type counts = { mutable lint : int; mutable asym : int }

let zero_counts () = { lint = 0; asym = 0 }

let total c = c.lint + c.asym

let tally c = function
  | Lint -> c.lint <- c.lint + 1
  | Asym -> c.asym <- c.asym + 1

type t = { reason : reason; accepts : Superschedule.t -> bool }

let lint = { reason = Lint; accepts = Analysis.Lint.accepts }

let asym analyzer =
  { reason = Asym; accepts = (fun s -> not (Analyzer.prunes analyzer s)) }

let rec reject filters counts s =
  match filters with
  | [] -> None
  | f :: tl ->
      if f.accepts s then reject tl counts s
      else begin
        tally counts f.reason;
        Some f.reason
      end
