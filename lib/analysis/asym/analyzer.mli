(** Maps a [Superschedule.t] to its symbolic asymptotic cost ({!Expr.t}) and
    judges it against the fixed-CSR baseline — the static pre-filter that
    rejects asymptotically dominated schedules before any cost-model forward
    pass.

    The iteration-space bounds come from the schedule's split / reorder /
    parallelize directives the same way the cost simulator derives its loop
    nest: the compute-order hierarchy where each derived variable keeps its
    level's U/C format.  An Uncompressed level multiplies the position count
    by its extent; a Compressed level is capped by [nnz] (each nonzero lies
    under exactly one position path) and, at the root, by the dimension's
    nonempty-coordinate count [F_d * N_d].  Caps are picked numerically from
    the workload statistics (workload-aware), but the chosen bound stays
    symbolic.  Parallelization only divides by a constant thread count, so
    it does not change the asymptotic class. *)

open Schedule

type stats = {
  dims : int array;
  fills : float array;  (** nonempty fraction per dim, from the histograms *)
  nnz : float;
  avg_row : float;  (** nnz / dims.(0), floored at 2 (the Costsim factor) *)
}

type t

val stats_of_workload : Machine_model.Workload.t -> stats

val default_stats : algo:Algorithm.t -> ?dims:int array -> unit -> stats
(** Synthetic statistics for contexts without a concrete operand (schedule
    linting, [waco explain] without [--matrix]): every dimension full
    ([F_d = 1]), [nnz = 8 * max_d N_d] — a typical sparse regime where
    [nnz << prod N_d]. *)

val create : ?margin:float -> algo:Algorithm.t -> stats -> t
(** [margin] (default 32.0) is the numeric magnitude ratio a symbolically
    dominated schedule must also exceed before {!prunes} rejects it — the
    guard that keeps borderline candidates in the search.  The default is
    sized against the simulator's largest constant factor (dense-loop
    vectorization, [simd_width] = 8 on the default machine) with a 4x
    cushion, so pruning never removes a schedule that constants alone could
    rescue. *)

val of_workload :
  ?margin:float -> algo:Algorithm.t -> Machine_model.Workload.t -> t

val algo : t -> Algorithm.t

val env : t -> Expr.env

val cost : t -> Superschedule.t -> Expr.t
(** The schedule's normalized asymptotic cost expression (memoized by
    schedule key).  Raises [Invalid_argument] on schedules that fail
    structural legality (run the lint pass first). *)

val baseline : t -> Expr.t
(** [cost] of [Superschedule.fixed_default]. *)

val verdict : t -> Superschedule.t -> Expr.verdict
(** The schedule's cost compared against the fixed-CSR baseline;
    [Dominates] means asymptotically worse than the baseline. *)

val prunes : t -> Superschedule.t -> bool
(** [true] when the schedule's cost strictly dominates the baseline's AND
    its numeric magnitude at the workload statistics exceeds the baseline by
    more than [margin] — the safe criterion under which the point can never
    be the search's answer.  Never [true] for a structurally illegal
    schedule (that is the lint filter's job). *)

val check : t -> Superschedule.t -> Diag.t list
(** Asymptotic smells as stable diagnostics (empty for structurally illegal
    schedules — legality is WACO-S01x):
    - [WACO-S020] (warning): an uncompressed level materializes far more
      positions than there are nonzeros (dense loop over a sparse residue,
      e.g. an inner dense loop over a hypersparse dimension);
    - [WACO-S021] (warning): the cost expression strictly dominates the
      fixed-CSR baseline beyond the numeric margin;
    - [WACO-S022] (hint): the cost carries a dense product term of degree
      >= 2 in the dimension sizes;
    - [WACO-S023] (hint): discordant traversal puts a [log] factor on the
      cost. *)

val explain : t -> Superschedule.t -> string
(** The normalized cost expression rendered with the algorithm's dimension
    names, e.g. ["nnz*J + Ni"]. *)

val fallback : t -> Superschedule.t
(** The degraded-mode schedule: the fixed-CSR baseline unless a canonical
    variant (root-compressed rows, column-major) is both strictly
    asymptotically better and numerically better by the margin — a
    guaranteed-not-asymptotically-terrible answer that needs no model, no
    index and no measurements. *)
