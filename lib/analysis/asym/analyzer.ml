(* Schedule -> symbolic cost, and the workload-aware judgments built on it.

   The recurrence mirrors the cost simulator's loop nest: walk the derived
   variables in compute order, each keeping the U/C format of its level in
   A's storage (Costsim's "virtual spec").  Position counts:

     U level:  c_l = c_{l-1} * extent_l          (dense materialization)
     C level:  c_l = min(c_{l-1} * extent_l,     (structural product)
                         nnz,                    (one path per nonzero)
                         F_d * N_d when at root) (nonempty coordinates)

   The min is resolved *numerically* from the workload statistics — that is
   what makes the analysis workload-aware — but the chosen branch stays a
   symbolic monomial.  The total cost is the sum of per-level position
   counts, plus the leaf body (times the dense inner trip J), plus a
   log-factor term per discordant level (Costsim's binary-search penalty). *)

open Schedule

type stats = {
  dims : int array;
  fills : float array;
  nnz : float;
  avg_row : float;
}

type t = {
  algo : Algorithm.t;
  stats : stats;
  margin : float;
  env : Expr.env;
  baseline : Expr.t;
  memo : (string, Expr.t) Hashtbl.t;
  lock : Mutex.t;
}

let stats_of_workload (wl : Machine_model.Workload.t) =
  let nnz = float_of_int wl.Machine_model.Workload.nnz in
  let dims = wl.Machine_model.Workload.dims in
  let fills =
    Array.mapi
      (fun d n ->
        let nonempty =
          Array.fold_left
            (fun acc c -> if c > 0 then acc + 1 else acc)
            0
            wl.Machine_model.Workload.counts.(d)
        in
        Float.max (1.0 /. float_of_int (max 1 n)) (float_of_int nonempty /. float_of_int (max 1 n)))
      dims
  in
  {
    dims = Array.copy dims;
    fills;
    nnz = Float.max 1.0 nnz;
    avg_row = Float.max 2.0 (nnz /. float_of_int (max 1 dims.(0)));
  }

let default_stats ~algo ?dims () =
  let rank = Algorithm.sparse_rank algo in
  let dims =
    match dims with Some d -> Array.copy d | None -> Array.make rank 4096
  in
  let maxd = Array.fold_left max 1 dims in
  let nnz = 8.0 *. float_of_int maxd in
  {
    dims;
    fills = Array.make rank 1.0;
    nnz;
    avg_row = Float.max 2.0 (nnz /. float_of_int (max 1 dims.(0)));
  }

let env_of_stats algo stats =
  {
    Expr.sizes = Array.map float_of_int stats.dims;
    fills = stats.fills;
    nnz_v = stats.nnz;
    j_v = Float.max 1.0 (float_of_int (Algorithm.dense_inner algo));
    logn_v = Float.max 1.0 (log stats.avg_row /. log 2.0);
  }

(* Format of each derived var under A's format schedule (as in Costsim). *)
let var_formats (spec : Format_abs.Spec.t) =
  let n = Format_abs.Spec.nlevels spec in
  let fmts = Array.make n Format_abs.Levelfmt.U in
  Array.iteri
    (fun lvl v -> fmts.(v) <- spec.Format_abs.Spec.formats.(lvl))
    spec.Format_abs.Spec.order;
  fmts

let extent_expr rank (spec : Format_abs.Spec.t) v =
  let d = Format_abs.Spec.var_dim v in
  let split = spec.Format_abs.Spec.splits.(d) in
  if Format_abs.Spec.var_is_top v then
    Expr.dim ~coeff:(1.0 /. float_of_int split) rank d
  else Expr.const rank (float_of_int split)

let cost_of env stats (s : Superschedule.t) =
  let rank = Array.length stats.dims in
  let spec = Superschedule.to_spec s ~dims:stats.dims in
  let vf = var_formats spec in
  let pick bounds =
    (* Numeric argmin with a strict comparison: ties keep the earlier,
       more structural bound. *)
    List.fold_left
      (fun best e -> if Expr.eval env e < Expr.eval env best then e else best)
      (List.hd bounds) (List.tl bounds)
  in
  let c = ref (Expr.const rank 1.0) in
  let terms = ref [] in
  Array.iteri
    (fun pos v ->
      let cand = Expr.mul !c (extent_expr rank spec v) in
      let next =
        if vf.(v) = Format_abs.Levelfmt.C then
          pick
            ([ cand; Expr.nnz_sym rank ]
            @
            if pos = 0 && Format_abs.Spec.var_is_top v then
              [ Expr.fill_dim rank (Format_abs.Spec.var_dim v) ]
            else [])
        else cand
      in
      c := next;
      terms := next :: !terms)
    s.Superschedule.compute_order;
  let body =
    if Algorithm.dense_inner s.Superschedule.algo > 0 then
      Expr.mul !c (Expr.j_sym rank)
    else !c
  in
  let discordant =
    Format_abs.Spec.discordant_levels spec
      ~compute_order:s.Superschedule.compute_order
  in
  let disc =
    if discordant > 0 then
      [
        Expr.scale (float_of_int discordant)
          (Expr.mul !c (Expr.log_sym rank));
      ]
    else []
  in
  List.fold_left Expr.add body (!terms @ disc)

(* The default margin must exceed every constant factor the simulator can
   award a schedule that the symbolic model calls worse: vectorization of a
   dense inner loop (simd_width, 8 on the default machine) is the largest,
   with memory/parallel effects contributing small multiples on top.  32
   leaves a 4x cushion over the SIMD edge, so a pruned schedule — at least
   margin-times the baseline's symbolic work — cannot win on the simulated
   hardware. *)
let create ?(margin = 32.0) ~algo stats =
  let env = env_of_stats algo stats in
  {
    algo;
    stats;
    margin;
    env;
    baseline = cost_of env stats (Superschedule.fixed_default algo);
    memo = Hashtbl.create 256;
    lock = Mutex.create ();
  }

let of_workload ?margin ~algo wl = create ?margin ~algo (stats_of_workload wl)

let algo t = t.algo

let env t = t.env

let cost t s =
  let key = Superschedule.key s in
  let cached =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.memo key)
  in
  match cached with
  | Some e -> e
  | None ->
      (* Enforce the documented contract: a structurally illegal schedule
         has no meaningful cost (to_spec tolerates some illegalities). *)
      (match Diag.first_error (Superschedule.check s) with
      | Some d ->
          invalid_arg ("asymptotic cost of an illegal schedule: " ^ Diag.message d)
      | None -> ());
      let e = cost_of t.env t.stats s in
      Mutex.protect t.lock (fun () ->
          if not (Hashtbl.mem t.memo key) then Hashtbl.add t.memo key e);
      e

let baseline t = t.baseline

let verdict t s = Expr.compare (cost t s) t.baseline

let prunes t s =
  match verdict t s with
  | Expr.Dominates ->
      Expr.eval t.env (cost t s) > t.margin *. Expr.eval t.env t.baseline
  | Expr.Equal | Expr.Dominated | Expr.Incomparable -> false
  | exception Invalid_argument _ -> false (* illegal: the lint filter's job *)

(* --- asymptotic smells ------------------------------------------------- *)

let check t s =
  match Diag.first_error (Superschedule.check s) with
  | Some _ -> [] (* structurally illegal: legality diagnostics cover it *)
  | None ->
      let ds = ref [] in
      let add d = ds := d :: !ds in
      let dim_names = Algorithm.dim_names t.algo in
      let spec = Superschedule.to_spec s ~dims:t.stats.dims in
      (* S020: walk A's storage order numerically; an Uncompressed level
         that pushes the stored-position count far beyond nnz materializes
         dense fill over a sparse residue (the hypersparse-inner-dense
         smell). *)
      let p = ref 1.0 in
      Array.iteri
        (fun lvl v ->
          let d = Format_abs.Spec.var_dim v in
          let split = spec.Format_abs.Spec.splits.(d) in
          let ext =
            if Format_abs.Spec.var_is_top v then
              float_of_int
                ((t.stats.dims.(d) + split - 1) / split)
            else float_of_int split
          in
          match Format_abs.Spec.level_format spec lvl with
          | Format_abs.Levelfmt.C -> p := Float.min (!p *. ext) t.stats.nnz
          | Format_abs.Levelfmt.U ->
              let grown = !p *. ext in
              if ext > 1.0 && grown > 4.0 *. t.stats.nnz then
                add
                  (Diag.warning ~code:"WACO-S020"
                     ~loc:(Printf.sprintf "schedule.a_formats[%d]" lvl)
                     "uncompressed level %s materializes ~%.3g positions \
                      against %.3g nonzeros: dense loop over a sparse residue"
                     (Format_abs.Spec.var_name ~dim_names v)
                     grown t.stats.nnz);
              p := grown)
        spec.Format_abs.Spec.order;
      let e = cost t s in
      let b = t.baseline in
      (* S021: strictly worse than the fixed-CSR baseline, beyond margin. *)
      if prunes t s then
        add
          (Diag.warning ~code:"WACO-S021" ~loc:"schedule"
             "asymptotically dominated by the fixed-CSR baseline: O(%s) vs \
              O(%s)"
             (Expr.to_string ~dim_names e)
             (Expr.to_string ~dim_names b));
      (* S022: a dense product term of degree >= 2 in the dimension sizes. *)
      List.iter
        (fun (m : Expr.mono) ->
          let deg =
            Array.fold_left ( + ) 0 m.Expr.ns - Array.fold_left ( + ) 0 m.Expr.fs
          in
          if deg >= 2 then
            add
              (Diag.hint ~code:"WACO-S022" ~loc:"schedule.a_formats"
                 "cost carries the dense product term %s"
                 (Expr.to_string ~dim_names { e with Expr.terms = [ m ] })))
        e.Expr.terms;
      (* S023: discordant traversal's log factor reached the cost. *)
      if List.exists (fun (m : Expr.mono) -> m.Expr.logn > 0) e.Expr.terms
      then
        add
          (Diag.hint ~code:"WACO-S023" ~loc:"schedule.compute_order"
             "discordant traversal adds a log(nnz/row) search factor: O(%s)"
             (Expr.to_string ~dim_names e));
      List.rev !ds

let explain t s =
  Expr.to_string ~dim_names:(Algorithm.dim_names t.algo) (cost t s)

(* --- degraded-mode fallback ------------------------------------------- *)

let fallback_candidates algo =
  let fixed = Superschedule.fixed_default algo in
  let root_compressed =
    let f = Array.copy fixed.Superschedule.a_formats in
    f.(0) <- Format_abs.Levelfmt.C;
    { fixed with Superschedule.a_formats = f }
  in
  let col_major =
    if Algorithm.sparse_rank algo <> 2 then []
    else begin
      let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
      let a_order = [| top 1; top 0; bot 1; bot 0 |] in
      let a_formats =
        [|
          Format_abs.Levelfmt.U; Format_abs.Levelfmt.C;
          Format_abs.Levelfmt.U; Format_abs.Levelfmt.U;
        |]
      in
      [
        Superschedule.concordant_with_format algo
          ~splits:(Array.copy fixed.Superschedule.splits)
          ~a_order ~a_formats;
      ]
    end
  in
  (fixed, root_compressed :: col_major)

let fallback t =
  let fixed, variants = fallback_candidates t.algo in
  List.fold_left
    (fun best c ->
      (* Displace the incumbent only on a strict asymptotic win that is
         also a clear numeric win — fixed CSR stays the answer whenever
         the workload does not decisively favour a variant. *)
      match Expr.compare (cost t c) (cost t best) with
      | Expr.Dominated
        when Expr.eval t.env (cost t c) *. t.margin
             <= Expr.eval t.env (cost t best) ->
          c
      | _ -> best)
    fixed variants
