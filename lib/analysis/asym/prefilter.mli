(** Unified pre-filter plumbing shared by the lint (legality) and asymptotic
    pre-filters: one rejection-reason type and per-reason counters, so every
    slot that filters schedules — index build, tune-time candidate ranking,
    the black-box strategies, the serving daemon — reports rejections the
    same way. *)

open Schedule

type reason = Lint | Asym

val reason_name : reason -> string

type counts = { mutable lint : int; mutable asym : int }

val zero_counts : unit -> counts

val total : counts -> int

val tally : counts -> reason -> unit

type t = { reason : reason; accepts : Superschedule.t -> bool }

val lint : t
(** Rejects schedules carrying an error-level legality diagnostic
    ([Analysis.Lint.accepts]). *)

val asym : Analyzer.t -> t
(** Rejects schedules the analyzer {!Analyzer.prunes}: symbolically
    dominated by the fixed-CSR baseline beyond the numeric margin. *)

val reject : t list -> counts -> Superschedule.t -> reason option
(** Runs the filters in order; the first rejection is tallied into [counts]
    and returned.  [None] means every filter accepted. *)
