(* Symbolic asymptotic cost expressions: normalized sums of monomials over
   dimension sizes N_d, per-dimension fill fractions F_d (<= 1), nnz, the
   dense inner trip count J, and the discordance log factor.

   The dominance order treats expressions as complexity classes.  Soundness
   rests on five relations that hold for every workload:

     nnz <= prod_d N_d     nnz >= 1     F_d <= 1     J >= 1     log >= 1

   so a monomial's excess nnz powers may be promoted to prod_d N_d before
   the pointwise exponent comparison, excess nnz powers on the dominating
   side cost nothing, and F_d exponents compare reversed (more fill factors
   mean a *smaller* term).  Coefficients are ignored — big-O — which is why
   the pre-filter pairs the symbolic verdict with a numeric margin. *)

type mono = {
  coeff : float;
  ns : int array;
  fs : int array;
  nnz : int;
  j : int;
  logn : int;
}

type t = { rank : int; terms : mono list }

let mono_one rank =
  {
    coeff = 1.0;
    ns = Array.make rank 0;
    fs = Array.make rank 0;
    nnz = 0;
    j = 0;
    logn = 0;
  }

let total_degree m =
  Array.fold_left ( + ) 0 m.ns + m.nnz + m.j + m.logn

(* Canonical term order: descending total degree, then descending exponent
   vectors — deterministic, so rendered golden strings are stable. *)
let mono_compare a b =
  let c = Stdlib.compare (total_degree b) (total_degree a) in
  if c <> 0 then c
  else
    let c = Stdlib.compare b.ns a.ns in
    if c <> 0 then c
    else
      let c = Stdlib.compare b.nnz a.nnz in
      if c <> 0 then c
      else
        let c = Stdlib.compare b.j a.j in
        if c <> 0 then c
        else
          let c = Stdlib.compare b.logn a.logn in
          if c <> 0 then c
          else
            let c = Stdlib.compare a.fs b.fs in
            if c <> 0 then c else Stdlib.compare a.coeff b.coeff

let same_exponents a b =
  a.ns = b.ns && a.fs = b.fs && a.nnz = b.nnz && a.j = b.j && a.logn = b.logn

let mono_le rank a b =
  (* Promote a's excess nnz powers to prod_d N_d (nnz <= prod N_d). *)
  let d = max 0 (a.nnz - b.nnz) in
  let ok = ref (a.j <= b.j && a.logn <= b.logn) in
  for i = 0 to rank - 1 do
    if a.ns.(i) + d > b.ns.(i) then ok := false;
    (* F_i <= 1: the smaller term needs at least as many fill factors. *)
    if a.fs.(i) < b.fs.(i) then ok := false
  done;
  !ok

let normalize (e : t) =
  (* 1. Merge terms with identical exponent vectors. *)
  let merged =
    List.fold_left
      (fun acc m ->
        let rec go = function
          | [] -> [ m ]
          | h :: tl when same_exponents h m ->
              { h with coeff = h.coeff +. m.coeff } :: tl
          | h :: tl -> h :: go tl
        in
        go acc)
      [] e.terms
  in
  let merged = List.filter (fun m -> m.coeff > 0.0) merged in
  (* 2. Absorb terms strictly dominated by another term of the sum (big-O);
     strictness keeps mutually-dominating pairs from annihilating. *)
  let absorbed =
    List.filter
      (fun m ->
        not
          (List.exists
             (fun m' ->
               (not (same_exponents m m'))
               && mono_le e.rank m m'
               && not (mono_le e.rank m' m))
             merged))
      merged
  in
  { e with terms = List.sort mono_compare absorbed }

let const rank c =
  if c <= 0.0 then invalid_arg "Expr.const: coefficient must be > 0";
  { rank; terms = [ { (mono_one rank) with coeff = c } ] }

let dim ?(coeff = 1.0) rank d =
  let m = mono_one rank in
  m.ns.(d) <- 1;
  { rank; terms = [ { m with coeff } ] }

let fill_dim rank d =
  let m = mono_one rank in
  m.ns.(d) <- 1;
  m.fs.(d) <- 1;
  { rank; terms = [ m ] }

let nnz_sym rank = { rank; terms = [ { (mono_one rank) with nnz = 1 } ] }

let j_sym rank = { rank; terms = [ { (mono_one rank) with j = 1 } ] }

let log_sym rank = { rank; terms = [ { (mono_one rank) with logn = 1 } ] }

let add e1 e2 =
  if e1.rank <> e2.rank then invalid_arg "Expr.add: rank mismatch";
  normalize { rank = e1.rank; terms = e1.terms @ e2.terms }

let mul_mono a b =
  {
    coeff = a.coeff *. b.coeff;
    ns = Array.map2 ( + ) a.ns b.ns;
    fs = Array.map2 ( + ) a.fs b.fs;
    nnz = a.nnz + b.nnz;
    j = a.j + b.j;
    logn = a.logn + b.logn;
  }

let mul e1 e2 =
  if e1.rank <> e2.rank then invalid_arg "Expr.mul: rank mismatch";
  normalize
    {
      rank = e1.rank;
      terms =
        List.concat_map (fun a -> List.map (mul_mono a) e2.terms) e1.terms;
    }

let scale c e =
  if c <= 0.0 then invalid_arg "Expr.scale: factor must be > 0";
  { e with terms = List.map (fun m -> { m with coeff = c *. m.coeff }) e.terms }

let le e1 e2 =
  List.for_all
    (fun m -> List.exists (mono_le e1.rank m) e2.terms)
    e1.terms

type verdict = Equal | Dominates | Dominated | Incomparable

let compare e1 e2 =
  match (le e1 e2, le e2 e1) with
  | true, true -> Equal
  | true, false -> Dominated
  | false, true -> Dominates
  | false, false -> Incomparable

let verdict_name = function
  | Equal -> "equal"
  | Dominates -> "dominates"
  | Dominated -> "dominated"
  | Incomparable -> "incomparable"

type env = {
  sizes : float array;
  fills : float array;
  nnz_v : float;
  j_v : float;
  logn_v : float;
}

let powi x n =
  let rec go acc n = if n <= 0 then acc else go (acc *. x) (n - 1) in
  go 1.0 n

let eval_mono env m =
  let acc = ref m.coeff in
  Array.iteri (fun d e -> acc := !acc *. powi env.sizes.(d) e) m.ns;
  Array.iteri (fun d e -> acc := !acc *. powi env.fills.(d) e) m.fs;
  !acc *. powi env.nnz_v m.nnz *. powi env.j_v m.j *. powi env.logn_v m.logn

let eval env e = List.fold_left (fun acc m -> acc +. eval_mono env m) 0.0 e.terms

(* --- rendering --- *)

let sym_name prefix dim_names d =
  match dim_names with
  | Some names when d < Array.length names -> prefix ^ names.(d)
  | _ -> Printf.sprintf "%s%d" prefix d

let mono_to_string ?dim_names m =
  let parts = ref [] in
  let push s = parts := s :: !parts in
  let pow s n = if n = 1 then s else Printf.sprintf "%s^%d" s n in
  if m.nnz > 0 then push (pow "nnz" m.nnz);
  Array.iteri
    (fun d e -> if e > 0 then push (pow (sym_name "N" dim_names d) e))
    m.ns;
  Array.iteri
    (fun d e -> if e > 0 then push (pow (sym_name "F" dim_names d) e))
    m.fs;
  if m.j > 0 then push (pow "J" m.j);
  if m.logn > 0 then push (pow "log" m.logn);
  let syms = String.concat "*" (List.rev !parts) in
  if syms = "" then Printf.sprintf "%g" m.coeff
  else if Float.abs (m.coeff -. 1.0) < 1e-9 then syms
  else if
    (* Split reciprocals read better as divisions: Ni/16, not 0.0625*Ni. *)
    m.coeff < 1.0
    && Float.abs (Float.rem (1.0 /. m.coeff) 1.0) < 1e-6
  then Printf.sprintf "%s/%g" syms (Float.round (1.0 /. m.coeff))
  else Printf.sprintf "%g*%s" m.coeff syms

let to_string ?dim_names e =
  match e.terms with
  | [] -> "0"
  | terms -> String.concat " + " (List.map (mono_to_string ?dim_names) terms)

let pp ppf e = Fmt.string ppf (to_string e)
