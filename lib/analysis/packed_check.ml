(* Verifier for physically packed tensors (codes WACO-F0xx).

   Walks the coordinate hierarchy root->leaf checking the TACO-style
   structural invariants: level kinds match the spec, pos arrays are
   zero-based and monotone, crd entries are in-bounds and strictly sorted
   within each segment, and the leaf value array has exactly one slot per
   leaf position.  Structural errors invalidate every derived quantity
   below them, so the walk stops at the first broken level; value-array and
   round-trip checks run only on structurally sound storage. *)

module Spec = Format_abs.Spec
module Levelfmt = Format_abs.Levelfmt
module Packed = Format_abs.Packed

let check ?(reference : Sptensor.Coo.t option) (t : Packed.t) : Diag.t list =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let spec = t.Packed.spec in
  let spec_errors = Spec.check spec in
  List.iter (fun d -> add (Diag.relocate ~prefix:"packed" d)) spec_errors;
  if Diag.first_error spec_errors <> None then List.rev !ds
  else begin
    let nlv = Spec.nlevels spec in
    let structural_ok = ref true in
    (if Array.length t.Packed.levels <> nlv then begin
       structural_ok := false;
       add
         (Diag.error ~code:"WACO-F001" ~loc:"packed.levels"
            "%d stored levels, spec has %d" (Array.length t.Packed.levels) nlv)
     end
     else begin
       (* nseg = number of positions (segments) feeding the current level;
          meaningless past a broken level, hence the early stop. *)
       let nseg = ref 1 in
       (try
          for lvl = 0 to nlv - 1 do
            let loc = Printf.sprintf "packed.levels[%d]" lvl in
            let fmt = Spec.level_format spec lvl in
            let size = Spec.level_size spec lvl in
            match (t.Packed.levels.(lvl), fmt) with
            | Packed.Dense _, Levelfmt.C | Packed.Compressed _, Levelfmt.U ->
                structural_ok := false;
                add
                  (Diag.error ~code:"WACO-F001" ~loc
                     "level kind %s does not match spec format %s"
                     (match t.Packed.levels.(lvl) with
                     | Packed.Dense _ -> "Dense"
                     | Packed.Compressed _ -> "Compressed")
                     (String.make 1 (Levelfmt.to_char fmt)));
                raise Exit
            | Packed.Dense n, Levelfmt.U ->
                if n <> size then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F002" ~loc
                       "dense extent %d, spec level size %d" n size);
                  raise Exit
                end;
                nseg := !nseg * n
            | Packed.Compressed { pos; crd }, Levelfmt.C ->
                let np = Array.length pos in
                if np <> !nseg + 1 then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F003" ~loc
                       "pos has %d entries, expected %d (parent positions + 1)" np
                       (!nseg + 1));
                  raise Exit
                end;
                if pos.(0) <> 0 then begin
                  structural_ok := false;
                  add (Diag.error ~code:"WACO-F004" ~loc "pos[0] = %d, must be 0" pos.(0));
                  raise Exit
                end;
                let mono = ref true in
                for s = 1 to np - 1 do
                  if pos.(s) < pos.(s - 1) then mono := false
                done;
                if not !mono then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F005" ~loc
                       "pos is not monotonically non-decreasing");
                  raise Exit
                end;
                if Array.length crd <> pos.(np - 1) then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F006" ~loc
                       "crd has %d entries, pos ends at %d" (Array.length crd)
                       pos.(np - 1));
                  raise Exit
                end;
                let oob = ref 0 and unsorted = ref 0 in
                for s = 0 to np - 2 do
                  for q = pos.(s) to pos.(s + 1) - 1 do
                    if crd.(q) < 0 || crd.(q) >= size then incr oob;
                    if q > pos.(s) && crd.(q) <= crd.(q - 1) then incr unsorted
                  done
                done;
                if !oob > 0 then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F007" ~loc
                       "%d crd entr%s outside [0, %d)" !oob
                       (if !oob = 1 then "y" else "ies")
                       size)
                end;
                if !unsorted > 0 then begin
                  structural_ok := false;
                  add
                    (Diag.error ~code:"WACO-F008" ~loc
                       "%d crd entr%s not strictly increasing within a segment"
                       !unsorted
                       (if !unsorted = 1 then "y is" else "ies are"))
                end;
                if not !structural_ok then raise Exit;
                nseg := Array.length crd
          done;
          if Array.length t.Packed.vals <> !nseg then begin
            structural_ok := false;
            add
              (Diag.error ~code:"WACO-F009" ~loc:"packed.vals"
                 "%d values, %d leaf positions" (Array.length t.Packed.vals) !nseg)
          end
        with Exit -> ())
     end);
    let bad_vals = ref 0 in
    Array.iter (fun v -> if not (Float.is_finite v) then incr bad_vals) t.Packed.vals;
    if !bad_vals > 0 then
      add
        (Diag.error ~code:"WACO-F010" ~loc:"packed.vals"
           "%d non-finite value(s) in the leaf array" !bad_vals);
    if !structural_ok && !bad_vals = 0 then begin
      (match reference with
      | Some m when Spec.rank spec = 2 ->
          let rt = Packed.to_coo t in
          if not (Sptensor.Coo.approx_equal rt m) then
            add
              (Diag.error ~code:"WACO-F011" ~loc:"packed"
                 "COO round-trip does not reproduce the reference matrix (%d vs %d nonzeros)"
                 (Sptensor.Coo.nnz rt) (Sptensor.Coo.nnz m))
      | _ -> ());
      let st = Packed.storage_of t in
      if st.Packed.fill_ratio > 0.0 && st.Packed.fill_ratio < 0.05 then
        add
          (Diag.hint ~code:"WACO-F012" ~loc:"packed"
             "fill ratio %.4f: over 95%% of materialized slots are zero padding"
             st.Packed.fill_ratio)
    end;
    List.rev !ds
  end

let pack_and_check ?budget (spec : Spec.t) (entries : (int array * float) array) :
    (Packed.t, Diag.t list) result =
  match Packed.pack ?budget spec entries with
  | Ok t -> Ok t
  | Error msg ->
      let contains sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      if contains "duplicate" then
        Error [ Diag.error ~code:"WACO-F013" ~loc:"packed" "%s" msg ]
      else if contains "budget" then
        Error [ Diag.warning ~code:"WACO-F014" ~loc:"packed" "%s" msg ]
      else Error [ Diag.error ~code:"WACO-F013" ~loc:"packed" "%s" msg ]
