(* Trained-model artifact pass (codes WACO-A00x).

   [Costmodel.save] writes a flat text dump — repeating blocks of
   "<name> <size>" header lines followed by [size] value lines — wrapped in
   the checksummed [Robust] artifact envelope.  This pass re-reads such a
   file without needing a live model, so a checkpoint can be vetted before a
   tuning run stakes hours of search on it: envelope damage (bad checksum,
   wrong version/kind), NaN/Inf parameters (a diverged training run),
   all-zero tensors (a never-updated parameter), and duplicate names (a
   merge gone wrong) are all visible from the dump alone.  Pre-envelope raw
   dumps are still accepted and linted as before. *)

(* Lint the parameter blocks themselves.  [first_lineno] is the 1-based file
   line the first payload line sits on (2 under the envelope, 1 raw), so
   diagnostics point at real file lines either way. *)
let check_lines ~path ~first_lineno (lines : string array) : Diag.t list =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let seen = Hashtbl.create 16 in
  let n = Array.length lines in
  let pos = ref 0 in
  let lineno () = first_lineno + !pos - 1 in
  let next () =
    if !pos >= n then raise End_of_file
    else begin
      incr pos;
      lines.(!pos - 1)
    end
  in
  (try
     let stop = ref false in
     while not !stop do
       match next () with
       | exception End_of_file -> stop := true
       | header -> (
           let loc = Printf.sprintf "%s:%d" path (lineno ()) in
           match String.split_on_char ' ' header with
           | [ name; size_s ] when name <> "" -> (
               match int_of_string_opt size_s with
               | Some size when size >= 0 ->
                   if Hashtbl.mem seen name then
                     add
                       (Diag.warning ~code:"WACO-A005" ~loc
                          "duplicate parameter %s (previous at line %d)" name
                          (Hashtbl.find seen name))
                   else Hashtbl.add seen name (lineno ());
                   let non_finite = ref 0 and nonzero = ref 0 in
                   let first_bad = ref 0 in
                   (try
                      for _ = 1 to size do
                        let line = next () in
                        match float_of_string_opt line with
                        | None ->
                            add
                              (Diag.error ~code:"WACO-A002"
                                 ~loc:(Printf.sprintf "%s:%d" path (lineno ()))
                                 "parameter %s: unparseable value %S" name line);
                            raise Exit
                        | Some v ->
                            if Float.is_finite v then begin
                              if v <> 0.0 then incr nonzero
                            end
                            else begin
                              if !non_finite = 0 then first_bad := lineno ();
                              incr non_finite
                            end
                      done;
                      if !non_finite > 0 then
                        add
                          (Diag.error ~code:"WACO-A003"
                             ~loc:(Printf.sprintf "%s:%d" path !first_bad)
                             "parameter %s: %d non-finite value(s)" name
                             !non_finite);
                      (* A hint, not a warning: zero biases are a legitimate
                         trained state (they start at zero and healthy runs
                         can keep them there). *)
                      if size > 0 && !nonzero = 0 && !non_finite = 0 then
                        add
                          (Diag.hint ~code:"WACO-A004" ~loc
                             "parameter %s is entirely zero (%d values)" name
                             size)
                    with
                   | Exit -> stop := true
                   | End_of_file ->
                       add
                         (Diag.error ~code:"WACO-A002"
                            ~loc:(Printf.sprintf "%s:%d" path (lineno ()))
                            "parameter %s: file truncated mid-parameter" name);
                       stop := true)
               | _ ->
                   add
                     (Diag.error ~code:"WACO-A001" ~loc
                        "malformed header %S (expected \"<name> <size>\")"
                        header);
                   stop := true)
           | _ ->
               add
                 (Diag.error ~code:"WACO-A001" ~loc
                    "malformed header %S (expected \"<name> <size>\")" header);
               stop := true)
     done
   with End_of_file -> ());
  List.rev !ds

let check (path : string) : Diag.t list =
  match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok payload ->
      (* Envelope verified: payload starts on file line 2. *)
      check_lines ~path ~first_lineno:2 (Robust.lines payload)
  | Error (Robust.Not_an_artifact _) -> (
      (* Pre-envelope raw dump — lint it as before. *)
      match Robust.read_file path with
      | Ok content -> check_lines ~path ~first_lineno:1 (Robust.lines content)
      | Error e ->
          [
            Diag.error ~code:"WACO-A001" ~loc:path "%s"
              (Robust.load_error_to_string e);
          ])
  | Error (Robust.Bad_checksum _ as e) ->
      [
        Diag.error ~code:"WACO-A006" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error ((Robust.Version_mismatch _ | Robust.Wrong_kind _) as e) ->
      [
        Diag.error ~code:"WACO-A007" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error (Robust.Truncated _ as e) ->
      [
        Diag.error ~code:"WACO-A002" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error e ->
      [
        Diag.error ~code:"WACO-A001" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
