(* Trained-model artifact pass (codes WACO-A00x).

   [Costmodel.save] writes a flat text dump — repeating blocks of
   "<name> <size>" header lines followed by [size] value lines — wrapped in
   the checksummed [Robust] artifact envelope.  This pass re-reads such a
   file without needing a live model, so a checkpoint can be vetted before a
   tuning run stakes hours of search on it: envelope damage (bad checksum,
   wrong version/kind), NaN/Inf parameters (a diverged training run),
   all-zero tensors (a never-updated parameter), and duplicate names (a
   merge gone wrong) are all visible from the dump alone.  Pre-envelope raw
   dumps are still accepted and linted as before. *)

(* Lint the parameter blocks themselves.  [first_lineno] is the 1-based file
   line the first payload line sits on (2 under the envelope, 1 raw), so
   diagnostics point at real file lines either way. *)
let check_lines ~path ~first_lineno (lines : string array) : Diag.t list =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let seen = Hashtbl.create 16 in
  let n = Array.length lines in
  let pos = ref 0 in
  let lineno () = first_lineno + !pos - 1 in
  let next () =
    if !pos >= n then raise End_of_file
    else begin
      incr pos;
      lines.(!pos - 1)
    end
  in
  (try
     let stop = ref false in
     while not !stop do
       match next () with
       | exception End_of_file -> stop := true
       | header -> (
           let loc = Printf.sprintf "%s:%d" path (lineno ()) in
           match String.split_on_char ' ' header with
           | [ name; size_s ] when name <> "" -> (
               match int_of_string_opt size_s with
               | Some size when size >= 0 ->
                   if Hashtbl.mem seen name then
                     add
                       (Diag.warning ~code:"WACO-A005" ~loc
                          "duplicate parameter %s (previous at line %d)" name
                          (Hashtbl.find seen name))
                   else Hashtbl.add seen name (lineno ());
                   let non_finite = ref 0 and nonzero = ref 0 in
                   let first_bad = ref 0 in
                   (try
                      for _ = 1 to size do
                        let line = next () in
                        match float_of_string_opt line with
                        | None ->
                            add
                              (Diag.error ~code:"WACO-A002"
                                 ~loc:(Printf.sprintf "%s:%d" path (lineno ()))
                                 "parameter %s: unparseable value %S" name line);
                            raise Exit
                        | Some v ->
                            if Float.is_finite v then begin
                              if v <> 0.0 then incr nonzero
                            end
                            else begin
                              if !non_finite = 0 then first_bad := lineno ();
                              incr non_finite
                            end
                      done;
                      if !non_finite > 0 then
                        add
                          (Diag.error ~code:"WACO-A003"
                             ~loc:(Printf.sprintf "%s:%d" path !first_bad)
                             "parameter %s: %d non-finite value(s)" name
                             !non_finite);
                      (* A hint, not a warning: zero biases are a legitimate
                         trained state (they start at zero and healthy runs
                         can keep them there). *)
                      if size > 0 && !nonzero = 0 && !non_finite = 0 then
                        add
                          (Diag.hint ~code:"WACO-A004" ~loc
                             "parameter %s is entirely zero (%d values)" name
                             size)
                    with
                   | Exit -> stop := true
                   | End_of_file ->
                       add
                         (Diag.error ~code:"WACO-A002"
                            ~loc:(Printf.sprintf "%s:%d" path (lineno ()))
                            "parameter %s: file truncated mid-parameter" name);
                       stop := true)
               | _ ->
                   add
                     (Diag.error ~code:"WACO-A001" ~loc
                        "malformed header %S (expected \"<name> <size>\")"
                        header);
                   stop := true)
           | _ ->
               add
                 (Diag.error ~code:"WACO-A001" ~loc
                    "malformed header %S (expected \"<name> <size>\")" header);
               stop := true)
     done
   with End_of_file -> ());
  List.rev !ds

(* --- WACO-A008: model/index embedding-dimension compatibility ---

   A cost model and an HNSW index snapshot only work as a pair when the
   model's embedding width equals the index's vector dimension; a mismatched
   pair otherwise fails deep inside the traversal.  [Tuner.validate_compat]
   enforces this on live values at load time; this pass makes the same
   check from the artifacts alone, so `waco lint --model m --index i` can
   vet a deployment pair before a daemon stakes its start-up on it. *)

(* The model dump's embedding width: the bias length of the mixer MLP's
   last layer (parameters are named "emb.mixer.<layer>.{w,b}").  [None] when
   the dump is malformed or carries no mixer — other codes flag those. *)
let model_embed_dim (lines : string array) : int option =
  let best = ref None in
  let n = Array.length lines in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.split_on_char ' ' lines.(!pos) with
       | [ name; size_s ] -> (
           match int_of_string_opt size_s with
           | Some size when size >= 0 ->
               (match Scanf.sscanf_opt name "emb.mixer.%d.b%!" (fun l -> l) with
               | Some layer -> (
                   match !best with
                   | Some (l0, _) when l0 >= layer -> ()
                   | _ -> best := Some (layer, size))
               | None -> ());
               pos := !pos + 1 + size
           | _ -> raise Exit)
       | _ -> raise Exit
     done
   with Exit -> ());
  Option.map snd !best

(* The index snapshot's vector dimension, from its two header payload lines
   ("INDEX <corpus> <rejected>" then "HNSW <dim> ..."). *)
let index_dim (lines : string array) : int option =
  if Array.length lines < 2 then None
  else
    match String.split_on_char ' ' lines.(1) with
    | "HNSW" :: dim :: _ -> int_of_string_opt dim
    | _ -> None

(* Envelope-level mapping shared by the artifact passes. *)
let envelope_diag (e : Robust.load_error) : Diag.t =
  let path = Robust.load_error_file e in
  let code =
    match e with
    | Robust.Bad_checksum _ -> "WACO-A006"
    | Robust.Version_mismatch _ | Robust.Wrong_kind _ -> "WACO-A007"
    | Robust.Truncated _ -> "WACO-A002"
    | _ -> "WACO-A001"
  in
  Diag.error ~code ~loc:path "%s" (Robust.load_error_to_string e)

let check_index (path : string) : Diag.t list =
  match Robust.read_artifact ~expected_kind:Robust.Kind.index path with
  | Error e -> [ envelope_diag e ]
  | Ok payload -> (
      let lines = Robust.lines payload in
      match index_dim lines with
      | Some d when d >= 1 -> []
      | Some d ->
          [
            Diag.error ~code:"WACO-A002" ~loc:(path ^ ":3")
              "index snapshot declares nonsensical vector dimension %d" d;
          ]
      | None ->
          [
            Diag.error ~code:"WACO-A001" ~loc:(path ^ ":2")
              "index snapshot payload is missing its INDEX/HNSW header lines";
          ])

let check_index_compat ~model:(mpath : string) ~index:(ipath : string) :
    Diag.t list =
  let model_lines =
    match Robust.read_artifact ~expected_kind:Robust.Kind.model mpath with
    | Ok payload -> Some (Robust.lines payload)
    | Error (Robust.Not_an_artifact _) -> (
        match Robust.read_file mpath with
        | Ok content -> Some (Robust.lines content)
        | Error _ -> None)
    | Error _ -> None
  in
  let idx_lines =
    match Robust.read_artifact ~expected_kind:Robust.Kind.index ipath with
    | Ok payload -> Some (Robust.lines payload)
    | Error _ -> None
  in
  match (model_lines, idx_lines) with
  | Some ml, Some il -> (
      (* Unreadable artifacts are flagged by [check]/[check_index]; this
         pass only speaks when both dimensions are determinable. *)
      match (model_embed_dim ml, index_dim il) with
      | Some md, Some id when md <> id ->
          [
            Diag.error ~code:"WACO-A008" ~loc:ipath
              "index vector dimension %d does not match the embedding \
               dimension %d of model %s (mismatched model/index pair?)"
              id md mpath;
          ]
      | _ -> [])
  | _ -> []

let check (path : string) : Diag.t list =
  match Robust.read_artifact ~expected_kind:Robust.Kind.model path with
  | Ok payload ->
      (* Envelope verified: payload starts on file line 2. *)
      check_lines ~path ~first_lineno:2 (Robust.lines payload)
  | Error (Robust.Not_an_artifact _) -> (
      (* Pre-envelope raw dump — lint it as before. *)
      match Robust.read_file path with
      | Ok content -> check_lines ~path ~first_lineno:1 (Robust.lines content)
      | Error e ->
          [
            Diag.error ~code:"WACO-A001" ~loc:path "%s"
              (Robust.load_error_to_string e);
          ])
  | Error (Robust.Bad_checksum _ as e) ->
      [
        Diag.error ~code:"WACO-A006" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error ((Robust.Version_mismatch _ | Robust.Wrong_kind _) as e) ->
      [
        Diag.error ~code:"WACO-A007" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error (Robust.Truncated _ as e) ->
      [
        Diag.error ~code:"WACO-A002" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
  | Error e ->
      [
        Diag.error ~code:"WACO-A001" ~loc:path "%s"
          (Robust.load_error_to_string e);
      ]
