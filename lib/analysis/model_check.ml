(* Trained-model artifact pass (codes WACO-A00x).

   [Costmodel.save] writes a flat text dump: repeating blocks of
   "<name> <size>" header lines followed by [size] value lines.  This pass
   re-reads such a file without needing a live model, so a checkpoint can be
   vetted before a tuning run stakes hours of search on it: NaN/Inf
   parameters (a diverged training run), all-zero tensors (a never-updated
   parameter), and duplicate names (a merge gone wrong) are all visible
   from the dump alone. *)

let check (path : string) : Diag.t list =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match open_in path with
  | exception Sys_error msg -> add (Diag.error ~code:"WACO-A001" ~loc:path "%s" msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
          let seen = Hashtbl.create 16 in
          let lineno = ref 0 in
          let next () =
            incr lineno;
            input_line ic
          in
          (try
             let stop = ref false in
             while not !stop do
               match next () with
               | exception End_of_file -> stop := true
               | header -> (
                   let loc = Printf.sprintf "%s:%d" path !lineno in
                   match String.split_on_char ' ' header with
                   | [ name; size_s ] when name <> "" -> (
                       match int_of_string_opt size_s with
                       | Some size when size >= 0 ->
                           if Hashtbl.mem seen name then
                             add
                               (Diag.warning ~code:"WACO-A005" ~loc
                                  "duplicate parameter %s (previous at line %d)" name
                                  (Hashtbl.find seen name))
                           else Hashtbl.add seen name !lineno;
                           let non_finite = ref 0 and nonzero = ref 0 in
                           let first_bad = ref 0 in
                           (try
                              for _ = 1 to size do
                                let line = next () in
                                match float_of_string_opt line with
                                | None ->
                                    add
                                      (Diag.error ~code:"WACO-A002"
                                         ~loc:(Printf.sprintf "%s:%d" path !lineno)
                                         "parameter %s: unparseable value %S" name line);
                                    raise Exit
                                | Some v ->
                                    if Float.is_finite v then begin
                                      if v <> 0.0 then incr nonzero
                                    end
                                    else begin
                                      if !non_finite = 0 then first_bad := !lineno;
                                      incr non_finite
                                    end
                              done;
                              if !non_finite > 0 then
                                add
                                  (Diag.error ~code:"WACO-A003"
                                     ~loc:(Printf.sprintf "%s:%d" path !first_bad)
                                     "parameter %s: %d non-finite value(s)" name
                                     !non_finite);
                              (* A hint, not a warning: zero biases are a
                                 legitimate trained state (they start at zero
                                 and healthy runs can keep them there). *)
                              if size > 0 && !nonzero = 0 && !non_finite = 0 then
                                add
                                  (Diag.hint ~code:"WACO-A004" ~loc
                                     "parameter %s is entirely zero (%d values)" name
                                     size)
                            with
                           | Exit -> stop := true
                           | End_of_file ->
                               add
                                 (Diag.error ~code:"WACO-A002"
                                    ~loc:(Printf.sprintf "%s:%d" path !lineno)
                                    "parameter %s: file truncated mid-parameter" name);
                               stop := true)
                       | _ ->
                           add
                             (Diag.error ~code:"WACO-A001" ~loc
                                "malformed header %S (expected \"<name> <size>\")"
                                header);
                           stop := true)
                   | _ ->
                       add
                         (Diag.error ~code:"WACO-A001" ~loc
                            "malformed header %S (expected \"<name> <size>\")" header);
                       stop := true)
             done
           with End_of_file -> ())
          with
          (* [open_in] on a directory only fails at the first read on some
             systems; fold that into the unreadable-file diagnostic. *)
          | Sys_error msg -> add (Diag.error ~code:"WACO-A001" ~loc:path "%s" msg)));
  List.rev !ds
