(** Lint orchestration shared by [waco lint], the tuner pre-filter and the
    test suite. *)

val check_schedule :
  ?dims:int array -> Schedule.Superschedule.t -> Diag.t list
(** Legality diagnostics ([Superschedule.check]) plus, when the sparse
    operand's dimensions are known, performance smells
    ([Perf_check.check]). *)

val accepts : Schedule.Superschedule.t -> bool
(** [true] when the schedule has no error-level legality diagnostic — the
    predicate the search pre-filter applies before any cost-model call. *)

val count_rejected : Schedule.Superschedule.t array -> int
