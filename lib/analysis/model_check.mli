(** Trained-model artifact pass (codes [WACO-A00x]) over the flat text
    format of [Costmodel.save]: malformed or truncated blocks, non-finite
    parameter values (a diverged run), all-zero parameters (possibly never
    updated — a hint, since zero biases are a legitimate trained state),
    and duplicate parameter names.  Works from the dump alone — no live
    model required. *)

val check : string -> Diag.t list

val check_index : string -> Diag.t list
(** Envelope + header sanity of an HNSW index snapshot written by
    [Tuner.save_index]: damaged envelopes map to the usual artifact codes
    ([WACO-A006] checksum, [WACO-A007] version/kind, [WACO-A002] truncation,
    [WACO-A001] otherwise). *)

val check_index_compat : model:string -> index:string -> Diag.t list
(** [WACO-A008]: the model's embedding width (the last [emb.mixer] layer's
    bias length) must equal the index snapshot's vector dimension — a
    mismatched pair otherwise fails deep inside the traversal.  Silent when
    either artifact is unreadable (the per-artifact passes flag that). *)
