(** Trained-model artifact pass (codes [WACO-A00x]) over the flat text
    format of [Costmodel.save]: malformed or truncated blocks, non-finite
    parameter values (a diverged run), all-zero parameters (possibly never
    updated — a hint, since zero biases are a legitimate trained state),
    and duplicate parameter names.  Works from the dump alone — no live
    model required. *)

val check : string -> Diag.t list
