(* Coordinate-list sparse matrices: the canonical interchange representation.

   All generators produce COO; the format-abstraction layer packs COO into
   arbitrary hierarchical formats; executors unpack back to COO in tests to
   verify packing is lossless.  Entries are kept sorted row-major and
   duplicate-free (duplicates are summed at construction). *)

type t = {
  nrows : int;
  ncols : int;
  rows : int array; (* length nnz, sorted lexicographically by (row, col) *)
  cols : int array;
  vals : float array;
}

let nnz t = Array.length t.rows

let density t =
  if t.nrows = 0 || t.ncols = 0 then 0.0
  else float_of_int (nnz t) /. (float_of_int t.nrows *. float_of_int t.ncols)

(* Build from unordered triplets; sorts and sums duplicates.  Entries whose
   value is exactly 0.0 are kept (a stored zero is still part of the pattern,
   matching Matrix-Market semantics). *)
let of_triplets ~nrows ~ncols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= nrows || j < 0 || j >= ncols then
        invalid_arg
          (Printf.sprintf "Coo.of_triplets: (%d,%d) out of %dx%d" i j nrows ncols))
    triplets;
  let arr = Array.of_list triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then Int.compare i1 i2 else Int.compare j1 j2)
    arr;
  let n = Array.length arr in
  (* Count unique coordinates. *)
  let uniq = ref 0 in
  Array.iteri
    (fun k (i, j, _) ->
      if k = 0 then incr uniq
      else begin
        let pi, pj, _ = arr.(k - 1) in
        if i <> pi || j <> pj then incr uniq
      end)
    arr;
  let rows = Array.make !uniq 0 in
  let cols = Array.make !uniq 0 in
  let vals = Array.make !uniq 0.0 in
  let w = ref (-1) in
  for k = 0 to n - 1 do
    let i, j, v = arr.(k) in
    if !w >= 0 && rows.(!w) = i && cols.(!w) = j then vals.(!w) <- vals.(!w) +. v
    else begin
      incr w;
      rows.(!w) <- i;
      cols.(!w) <- j;
      vals.(!w) <- v
    end
  done;
  { nrows; ncols; rows; cols; vals }

(* [of_triplets] over an array, without the list round-trip.  The serving
   hot path hands over wire-decoded entries that are almost always already
   row-major sorted and duplicate-free (encoders emit canonical COO); one
   ordering scan makes that case three column copies with no sort, no
   triplet-array clone and no dedup pass.  Out-of-order input falls back to
   the sort-and-sum construction on a private copy ([a] is never mutated). *)
let of_triplet_array ~nrows ~ncols (a : (int * int * float) array) =
  let n = Array.length a in
  for k = 0 to n - 1 do
    let i, j, _ = Array.unsafe_get a k in
    if i < 0 || i >= nrows || j < 0 || j >= ncols then
      invalid_arg
        (Printf.sprintf "Coo.of_triplets: (%d,%d) out of %dx%d" i j nrows ncols)
  done;
  let sorted_unique = ref true in
  (for k = 1 to n - 1 do
     let i1, j1, _ = Array.unsafe_get a (k - 1) in
     let i2, j2, _ = Array.unsafe_get a k in
     if i1 > i2 || (i1 = i2 && j1 >= j2) then sorted_unique := false
   done);
  if !sorted_unique then begin
    let rows = Array.make n 0 in
    let cols = Array.make n 0 in
    let vals = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let i, j, v = Array.unsafe_get a k in
      Array.unsafe_set rows k i;
      Array.unsafe_set cols k j;
      Array.unsafe_set vals k v
    done;
    { nrows; ncols; rows; cols; vals }
  end
  else begin
    let arr = Array.copy a in
    Array.sort
      (fun (i1, j1, _) (i2, j2, _) ->
        if i1 <> i2 then Int.compare i1 i2 else Int.compare j1 j2)
      arr;
    let uniq = ref 0 in
    Array.iteri
      (fun k (i, j, _) ->
        if k = 0 then incr uniq
        else begin
          let pi, pj, _ = arr.(k - 1) in
          if i <> pi || j <> pj then incr uniq
        end)
      arr;
    let rows = Array.make !uniq 0 in
    let cols = Array.make !uniq 0 in
    let vals = Array.make !uniq 0.0 in
    let w = ref (-1) in
    for k = 0 to n - 1 do
      let i, j, v = arr.(k) in
      if !w >= 0 && rows.(!w) = i && cols.(!w) = j then vals.(!w) <- vals.(!w) +. v
      else begin
        incr w;
        rows.(!w) <- i;
        cols.(!w) <- j;
        vals.(!w) <- v
      end
    done;
    { nrows; ncols; rows; cols; vals }
  end

let to_triplets t =
  let out = ref [] in
  for k = nnz t - 1 downto 0 do
    out := (t.rows.(k), t.cols.(k), t.vals.(k)) :: !out
  done;
  !out

let iter f t =
  for k = 0 to nnz t - 1 do
    f t.rows.(k) t.cols.(k) t.vals.(k)
  done

(* Row-start offsets (CSR-style pointer array of length nrows+1). *)
let row_ptr t =
  let ptr = Array.make (t.nrows + 1) 0 in
  iter (fun i _ _ -> ptr.(i + 1) <- ptr.(i + 1) + 1) t;
  for i = 0 to t.nrows - 1 do
    ptr.(i + 1) <- ptr.(i + 1) + ptr.(i)
  done;
  ptr

let nnz_per_row t =
  let counts = Array.make t.nrows 0 in
  iter (fun i _ _ -> counts.(i) <- counts.(i) + 1) t;
  counts

let nnz_per_col t =
  let counts = Array.make t.ncols 0 in
  iter (fun _ j _ -> counts.(j) <- counts.(j) + 1) t;
  counts

let transpose t =
  of_triplets ~nrows:t.ncols ~ncols:t.nrows
    (List.map (fun (i, j, v) -> (j, i, v)) (to_triplets t))

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols && a.rows = b.rows && a.cols = b.cols
  && a.vals = b.vals

(* Pattern equality plus elementwise value tolerance. *)
let approx_equal ?(eps = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && nnz a = nnz b
  && begin
       let ok = ref true in
       for k = 0 to nnz a - 1 do
         if
           a.rows.(k) <> b.rows.(k)
           || a.cols.(k) <> b.cols.(k)
           || Float.abs (a.vals.(k) -. b.vals.(k)) > eps
         then ok := false
       done;
       !ok
     end

let to_dense t =
  let m = Dense.mat_create t.nrows t.ncols in
  iter (fun i j v -> Dense.add_to m i j v) t;
  m

let of_dense ?(threshold = 0.0) (m : Dense.mat) =
  let triplets = ref [] in
  for i = m.Dense.rows - 1 downto 0 do
    for j = m.Dense.cols - 1 downto 0 do
      let v = Dense.get m i j in
      if Float.abs v > threshold then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~nrows:m.Dense.rows ~ncols:m.Dense.cols !triplets

let pp ppf t =
  Fmt.pf ppf "coo %dx%d nnz=%d" t.nrows t.ncols (nnz t)
