(* Sparsity-pattern statistics.

   These feed (a) the HumanFeature baseline extractor (Fig. 15), (b) the
   analytic cost simulator (block fill ratios, per-chunk work histograms), and
   (c) the BestFormat baseline's candidate ranking. *)

type t = {
  nrows : int;
  ncols : int;
  nnz : int;
  density : float;
  row_nnz_mean : float;
  row_nnz_std : float;
  row_nnz_max : int;
  row_nnz_cv : float; (* coefficient of variation: skew indicator *)
  col_nnz_mean : float;
  col_nnz_std : float;
  avg_diag_distance : float; (* mean |i - j|: DIA-format affinity *)
  empty_rows : int;
}

let mean_std counts =
  let n = Array.length counts in
  if n = 0 then (0.0, 0.0)
  else begin
    let sum = Array.fold_left ( + ) 0 counts in
    let mean = float_of_int sum /. float_of_int n in
    let var =
      Array.fold_left
        (fun acc c ->
          let d = float_of_int c -. mean in
          acc +. (d *. d))
        0.0 counts
      /. float_of_int n
    in
    (mean, sqrt var)
  end

let compute (m : Coo.t) =
  let row_counts = Coo.nnz_per_row m in
  let col_counts = Coo.nnz_per_col m in
  let row_mean, row_std = mean_std row_counts in
  let col_mean, col_std = mean_std col_counts in
  let nnz = Coo.nnz m in
  let diag_sum = ref 0.0 in
  Coo.iter (fun i j _ -> diag_sum := !diag_sum +. Float.abs (float_of_int (i - j))) m;
  {
    nrows = m.Coo.nrows;
    ncols = m.Coo.ncols;
    nnz;
    density = Coo.density m;
    row_nnz_mean = row_mean;
    row_nnz_std = row_std;
    row_nnz_max = Array.fold_left max 0 row_counts;
    row_nnz_cv = (if row_mean > 0.0 then row_std /. row_mean else 0.0);
    col_nnz_mean = col_mean;
    col_nnz_std = col_std;
    avg_diag_distance = (if nnz > 0 then !diag_sum /. float_of_int nnz else 0.0);
    empty_rows = Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 row_counts;
  }

(* Statistics of the bi x bk blocking of the pattern: how many blocks are
   non-empty and how full they are.  Determines the zero-fill cost of dense
   blocked (UCU/UCUU) formats and the locality benefit of sparse blocking. *)
type block_stats = {
  bi : int;
  bk : int;
  nonempty_blocks : int;
  avg_fill : float; (* nnz / (nonempty_blocks * bi * bk) *)
  max_block_nnz : int;
}

let block_stats (m : Coo.t) ~bi ~bk =
  if bi <= 0 || bk <= 0 then invalid_arg "Stats.block_stats: block dims must be positive";
  let tbl = Hashtbl.create 1024 in
  let ncols_blocks = ((m.Coo.ncols + bk - 1) / bk) + 1 in
  Coo.iter
    (fun i j _ ->
      let key = ((i / bi) * ncols_blocks) + (j / bk) in
      match Hashtbl.find_opt tbl key with
      | Some c -> Hashtbl.replace tbl key (c + 1)
      | None -> Hashtbl.add tbl key 1)
    m;
  let nonempty = Hashtbl.length tbl in
  let max_nnz = Hashtbl.fold (fun _ c acc -> max c acc) tbl 0 in
  let nnz = Coo.nnz m in
  {
    bi;
    bk;
    nonempty_blocks = nonempty;
    avg_fill =
      (if nonempty = 0 then 0.0
       else float_of_int nnz /. (float_of_int nonempty *. float_of_int (bi * bk)));
    max_block_nnz = max_nnz;
  }

(* Work per contiguous group of [chunk] rows — the unit the dynamic-scheduling
   simulator hands to threads.  Work is nnz-proportional. *)
let chunk_work (row_counts : int array) ~chunk =
  if chunk <= 0 then invalid_arg "Stats.chunk_work: chunk must be positive";
  let nrows = Array.length row_counts in
  let nchunks = (nrows + chunk - 1) / chunk in
  let work = Array.make (max nchunks 1) 0 in
  Array.iteri (fun i c -> work.(i / chunk) <- work.(i / chunk) + c) row_counts;
  work

(* Float variant for weighted (per-kernel) work distributions, where a row's
   work is flops-proportional rather than nnz-proportional. *)
let chunk_work_f (row_work : float array) ~chunk =
  if chunk <= 0 then invalid_arg "Stats.chunk_work_f: chunk must be positive";
  let nrows = Array.length row_work in
  let nchunks = (nrows + chunk - 1) / chunk in
  let work = Array.make (max nchunks 1) 0.0 in
  Array.iteri (fun i c -> work.(i / chunk) <- work.(i / chunk) +. c) row_work;
  work

(* Number of distinct column indices touched, per row-block of size [bi].
   Upper-bounds the dense-operand footprint of one outer-loop iteration. *)
let distinct_cols_per_rowblock (m : Coo.t) ~bi =
  let nblocks = (m.Coo.nrows + bi - 1) / bi in
  let sets = Array.init (max nblocks 1) (fun _ -> Hashtbl.create 16) in
  Coo.iter (fun i j _ -> Hashtbl.replace sets.(i / bi) j ()) m;
  Array.map Hashtbl.length sets

(* Fixed-length feature vector for the HumanFeature extractor baseline.
   The paper's HumanFeature uses (#rows, #cols, #nnz); we expose the richer
   classic hand-crafted set too so the ablation can use either. *)
let human_features ?(rich = false) (s : t) =
  let base = [| float_of_int s.nrows; float_of_int s.ncols; float_of_int s.nnz |] in
  if not rich then base
  else
    Array.append base
      [|
        s.density;
        s.row_nnz_mean;
        s.row_nnz_std;
        float_of_int s.row_nnz_max;
        s.row_nnz_cv;
        s.col_nnz_mean;
        s.col_nnz_std;
        s.avg_diag_distance;
        float_of_int s.empty_rows;
      |]

let pp ppf s =
  Fmt.pf ppf "%dx%d nnz=%d density=%.4f%% row_cv=%.2f" s.nrows s.ncols s.nnz
    (100.0 *. s.density) s.row_nnz_cv
