(* Minimal MatrixMarket-coordinate reader/writer.

   Lets users feed real matrices (e.g. actual SuiteSparse downloads) into the
   pipeline and lets the dataset generator persist corpora to disk.  Supports
   the `matrix coordinate real general` header plus `pattern` (values default
   to 1.0) and `%`-comments; 1-based indices per the format. *)

(* Atomic write (temp file + rename, [Robust.write_atomic]): a crash mid-write
   can no longer leave a half-written .mtx behind, and no file descriptor is
   held across the formatting work. *)
let write_coo path (m : Coo.t) =
  Robust.write_atomic path (fun buf ->
      Printf.bprintf buf "%%%%MatrixMarket matrix coordinate real general\n";
      Printf.bprintf buf "%d %d %d\n" m.Coo.nrows m.Coo.ncols (Coo.nnz m);
      Coo.iter (fun i j v -> Printf.bprintf buf "%d %d %.17g\n" (i + 1) (j + 1) v) m)

exception Parse_error of string

let split_ws line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let read_coo path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      let lower = String.lowercase_ascii header in
      let pattern_mode, symmetric =
        match split_ws lower with
        | _ :: "matrix" :: "coordinate" :: field :: rest ->
            let sym =
              match rest with
              | [ "symmetric" ] | [ "skew-symmetric" ] -> true
              | [] | [ "general" ] -> false
              | _ -> raise (Parse_error "unsupported MatrixMarket symmetry")
            in
            (field = "pattern", sym)
        | _ -> raise (Parse_error "unsupported MatrixMarket header")
      in
      (* Skip comments. *)
      let rec next_data () =
        let line = input_line ic in
        if String.length line > 0 && line.[0] = '%' then next_data () else line
      in
      let nrows, ncols, nnz =
        match split_ws (next_data ()) with
        | [ r; c; n ] -> (int_of_string r, int_of_string c, int_of_string n)
        | _ -> raise (Parse_error "bad size line")
      in
      let triplets = ref [] in
      let add i j v =
        triplets := (i, j, v) :: !triplets;
        (* Symmetric files store the lower triangle only; mirror it. *)
        if symmetric && i <> j then triplets := (j, i, v) :: !triplets
      in
      for _ = 1 to nnz do
        match split_ws (next_data ()) with
        | [ i; j ] when pattern_mode -> add (int_of_string i - 1) (int_of_string j - 1) 1.0
        | [ i; j; v ] ->
            add (int_of_string i - 1) (int_of_string j - 1) (float_of_string v)
        | _ -> raise (Parse_error "bad entry line")
      done;
      Coo.of_triplets ~nrows ~ncols !triplets)
