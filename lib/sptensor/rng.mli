(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the reproduction draws from an explicit
    [Rng.t], so experiments are bit-reproducible from a single seed and
    independent streams can be split off without consumers coupling to each
    other's draw counts. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator deterministically seeded by [seed]. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val state : t -> int64
(** Raw state, for checkpoints. *)

val set_state : t -> int64 -> unit
(** Restore a state captured with {!state}: the generator continues the exact
    draw stream it would have produced. *)

val split : t -> t
(** [split t] advances [t] and returns a decorrelated child stream.  Splitting
    the same parent state twice yields the same child. *)

val next_int64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int
(** 62 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val categorical : t -> float array -> int
(** [categorical t weights] samples an index with probability proportional to
    the (unnormalized, non-negative) [weights]; uniform if all are zero. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val zipf : t -> alpha:float -> int -> int
(** Power-law integer in [\[0, n)]: [P(k)] proportional to [(k+1)^-alpha]. *)
