(* 3-D sparse tensors in coordinate form, for MTTKRP
   (D[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j]). *)

type t = {
  dim_i : int;
  dim_k : int;
  dim_l : int;
  is : int array; (* sorted lexicographically by (i,k,l) *)
  ks : int array;
  ls : int array;
  vals : float array;
}

let nnz t = Array.length t.is

let of_quads ~dim_i ~dim_k ~dim_l quads =
  List.iter
    (fun (i, k, l, _) ->
      if i < 0 || i >= dim_i || k < 0 || k >= dim_k || l < 0 || l >= dim_l then
        invalid_arg "Tensor3.of_quads: coordinate out of bounds")
    quads;
  let arr = Array.of_list quads in
  Array.sort
    (fun (a, b, c, _) (d, e, f, _) ->
      if a <> d then Int.compare a d
      else if b <> e then Int.compare b e
      else Int.compare c f)
    arr;
  (* Sum duplicates. *)
  let out = ref [] in
  Array.iter
    (fun (i, k, l, v) ->
      match !out with
      | (pi, pk, pl, pv) :: rest when pi = i && pk = k && pl = l ->
          out := (i, k, l, pv +. v) :: rest
      | _ -> out := (i, k, l, v) :: !out)
    arr;
  let arr = Array.of_list (List.rev !out) in
  {
    dim_i;
    dim_k;
    dim_l;
    is = Array.map (fun (i, _, _, _) -> i) arr;
    ks = Array.map (fun (_, k, _, _) -> k) arr;
    ls = Array.map (fun (_, _, l, _) -> l) arr;
    vals = Array.map (fun (_, _, _, v) -> v) arr;
  }

let to_quads t =
  let out = ref [] in
  for p = nnz t - 1 downto 0 do
    out := (t.is.(p), t.ks.(p), t.ls.(p), t.vals.(p)) :: !out
  done;
  !out

let iter f t =
  for p = 0 to nnz t - 1 do
    f t.is.(p) t.ks.(p) t.ls.(p) t.vals.(p)
  done

(* Reference MTTKRP: D[i,j] = sum A[i,k,l] * B[k,j] * C[l,j]. *)
let mttkrp t (b : Dense.mat) (c : Dense.mat) =
  if b.Dense.rows <> t.dim_k || c.Dense.rows <> t.dim_l || b.Dense.cols <> c.Dense.cols
  then invalid_arg "Tensor3.mttkrp: dimension mismatch";
  let jn = b.Dense.cols in
  let d = Dense.mat_create t.dim_i jn in
  iter
    (fun i k l v ->
      for j = 0 to jn - 1 do
        Dense.add_to d i j (v *. Dense.get b k j *. Dense.get c l j)
      done)
    t;
  d

(* Mode-(0) flattening used by statistics: collapse (k,l) to a single column
   index, giving a 2-D view of the 3-D pattern (paper follows SpTFS's approach
   of treating 3-D tensors with the same machinery). *)
let flatten t =
  Coo.of_triplets ~nrows:t.dim_i ~ncols:(t.dim_k * t.dim_l)
    (List.map (fun (i, k, l, v) -> (i, (k * t.dim_l) + l, v)) (to_quads t))

let pp ppf t =
  Fmt.pf ppf "tensor3 %dx%dx%d nnz=%d" t.dim_i t.dim_k t.dim_l (nnz t)
