(* Deterministic splittable pseudo-random number generator (SplitMix64).

   Every stochastic component of the reproduction (pattern generators, dataset
   sampling, network initialization, HNSW level draws, black-box optimizers)
   draws from an explicit [Rng.t] so that all experiments are reproducible
   from a single seed and independent streams can be split off without
   coupling consumers to each other's draw counts. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Raw state capture/restore, for training checkpoints: a resumed run must
   continue the exact draw stream the interrupted run would have produced. *)
let state t = t.state

let set_state t s = t.state <- s

(* Core SplitMix64 step: advance by the golden gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Split off an independent stream.  The child is seeded from the parent's
   output so sibling streams are decorrelated. *)
let split t = { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform integer in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(* Uniform integer in [lo, hi] inclusive. *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(* Uniform float in [0, 1). *)
let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let float_in t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Sample an index from unnormalized non-negative weights. *)
let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then int t (Array.length weights)
  else begin
    let x = float t *. total in
    let acc = ref 0.0 and chosen = ref (Array.length weights - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if x < !acc then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  end

(* Pick a uniform element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(* In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* A uniformly random permutation of [0, n). *)
let permutation t n =
  let p = Array.init n (fun i -> i) in
  shuffle t p;
  p

(* Power-law (Zipf-like) integer in [0, n) with exponent [alpha]:
   P(k) proportional to (k+1)^-alpha.  Used for skewed row-degree patterns. *)
let zipf t ~alpha n =
  let w = Array.init n (fun k -> Float.pow (float_of_int (k + 1)) (-.alpha)) in
  categorical t w
