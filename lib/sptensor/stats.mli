(** Sparsity-pattern statistics: inputs to the HumanFeature baseline
    extractor (Fig. 15), the cost simulator's work histograms, and the
    BestFormat baseline. *)

type t = {
  nrows : int;
  ncols : int;
  nnz : int;
  density : float;
  row_nnz_mean : float;
  row_nnz_std : float;
  row_nnz_max : int;
  row_nnz_cv : float;  (** coefficient of variation — skew indicator *)
  col_nnz_mean : float;
  col_nnz_std : float;
  avg_diag_distance : float;  (** mean [|i - j|]: DIA-format affinity *)
  empty_rows : int;
}

val compute : Coo.t -> t

(** Statistics of the [bi x bk] blocking of a pattern: decides the zero-fill
    of dense-blocked formats and the locality of sparse blocking. *)
type block_stats = {
  bi : int;
  bk : int;
  nonempty_blocks : int;
  avg_fill : float;  (** nnz / (nonempty_blocks * bi * bk) *)
  max_block_nnz : int;
}

val block_stats : Coo.t -> bi:int -> bk:int -> block_stats
(** Raises [Invalid_argument] if a block dimension is non-positive. *)

val chunk_work : int array -> chunk:int -> int array
(** [chunk_work row_counts ~chunk] sums counts over consecutive groups of
    [chunk] rows — the work units the dynamic-scheduling simulation
    dispatches. *)

val chunk_work_f : float array -> chunk:int -> float array
(** {!chunk_work} over float (weighted) per-row work — used by the
    per-kernel work distributions, where a row's work is flops-proportional
    rather than nnz-proportional. *)

val distinct_cols_per_rowblock : Coo.t -> bi:int -> int array
(** Distinct column indices touched per row-block of size [bi]. *)

val human_features : ?rich:bool -> t -> float array
(** The hand-crafted feature vector: the paper's (rows, cols, nnz) triple, or
    the richer classic set when [rich] is true. *)

val pp : Format.formatter -> t -> unit

val mean_std : int array -> float * float
(** Sample mean and population standard deviation of integer counts. *)
