(** Coordinate-list sparse matrices: the canonical interchange representation.

    Entries are kept sorted row-major and duplicate-free (duplicates are
    summed at construction). *)

type t = private {
  nrows : int;
  ncols : int;
  rows : int array;  (** length nnz, sorted lexicographically by (row, col) *)
  cols : int array;
  vals : float array;
}

val nnz : t -> int

val density : t -> float
(** Fraction of positions that are nonzero. *)

val of_triplets : nrows:int -> ncols:int -> (int * int * float) list -> t
(** Builds from unordered triplets; sorts and sums duplicates.  Raises
    [Invalid_argument] on out-of-bounds coordinates. *)

val of_triplet_array : nrows:int -> ncols:int -> (int * int * float) array -> t
(** {!of_triplets} over an array (the input is never mutated): same
    validation, sorting and duplicate-summing semantics, but input that is
    already row-major sorted and duplicate-free — the serving daemon's
    wire-decoded entries — builds with three column copies and no sort. *)

val to_triplets : t -> (int * int * float) list
(** Triplets in storage (row-major) order. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** [iter f m] applies [f row col value] in storage order. *)

val row_ptr : t -> int array
(** CSR-style row-start offsets, length [nrows + 1]. *)

val nnz_per_row : t -> int array

val nnz_per_col : t -> int array

val transpose : t -> t

val equal : t -> t -> bool
(** Structural equality (exact values). *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Same pattern, values within [eps] (default [1e-9]). *)

val to_dense : t -> Dense.mat

val of_dense : ?threshold:float -> Dense.mat -> t
(** Entries with [|v| > threshold] (default 0) become nonzeros. *)

val pp : Format.formatter -> t -> unit
