(** The black-box optimizers WACO's ANNS is compared against in Fig. 16.
    All of them pay per-trial metadata time that ANNS does not: observation
    bookkeeping, distribution refits, bandit statistics. *)

open Sptensor
open Schedule

val random_search :
  ?lint:bool -> ?asym:Asym.Analyzer.t ->
  Rng.t -> Algorithm.t -> dims:int array ->
  eval:(Superschedule.t -> float) -> budget:int -> Blackbox_common.result

val tpe :
  ?gamma:float -> ?explore:float -> ?lint:bool -> ?asym:Asym.Analyzer.t ->
  Rng.t -> Algorithm.t -> dims:int array ->
  eval:(Superschedule.t -> float) -> budget:int -> Blackbox_common.result
(** HyperOpt-style estimator of distributions: each parameter is resampled
    from the best-[gamma]-quantile trials (with an [explore] fraction of
    uniform restarts). *)

val bandit :
  ?window:int -> ?lint:bool -> ?asym:Asym.Analyzer.t ->
  Rng.t -> Algorithm.t -> dims:int array ->
  eval:(Superschedule.t -> float) -> budget:int -> Blackbox_common.result
(** OpenTuner-style ensemble: random / mutate-best / mutate-good / crossover
    operators picked by a UCB1 bandit over a sliding improvement window.

    All strategies take [?lint] (default [true]): schedules with error-level
    legality diagnostics ([Analysis.Lint.accepts]) score [infinity] without
    a cost evaluation.  With [?asym], schedules the analyzer proves
    asymptotically dominated by the fixed-CSR baseline are likewise rejected
    before evaluation.  Totals land in [result.rejected], per-reason counts
    in [result.rejected_lint] / [result.rejected_asym]. *)
