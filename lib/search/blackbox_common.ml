(* Shared scaffolding for budgeted black-box schedule search: every strategy
   reports the same result record, with wall time split into evaluation time
   vs optimizer metadata time (the Fig. 16 breakdown). *)

open Schedule

type result = {
  name : string;
  best : Superschedule.t;
  best_cost : float;
  trials : int;
  eval_seconds : float; (* time spent inside the cost evaluations *)
  total_seconds : float; (* wall time of the whole search *)
  history : (int * float) array; (* (trial, best-so-far cost) *)
  rejected : int; (* proposals a pre-filter refused to evaluate *)
  rejected_lint : int; (* ... because of an error-level legality finding *)
  rejected_asym : int; (* ... because of asymptotic dominance *)
}

type budgeted_eval = {
  eval : Superschedule.t -> float;
  prefilter : (Superschedule.t -> bool) option;
      (* legacy single legality filter; counted as a lint rejection *)
  filters : Asym.Prefilter.t list;
  counts : Asym.Prefilter.counts;
  mutable eval_time : float;
  mutable eval_count : int;
  mutable rejected : int;
  cache : (string, float) Hashtbl.t;
}

let make_eval ?prefilter ?(filters = []) eval =
  { eval; prefilter; filters; counts = Asym.Prefilter.zero_counts ();
    eval_time = 0.0; eval_count = 0; rejected = 0;
    cache = Hashtbl.create 256 }

(* Cached + timed evaluation; repeated queries of the same schedule are free
   (all strategies benefit equally).  Proposals a pre-filter rejects cost
   no evaluation at all: they score [infinity], so best-tracking and the
   estimator refits push away from them for free. *)
let run_eval be s =
  let rejected =
    match be.prefilter with
    | Some ok when not (ok s) ->
        Asym.Prefilter.tally be.counts Asym.Prefilter.Lint;
        true
    | _ -> Asym.Prefilter.reject be.filters be.counts s <> None
  in
  if rejected then begin
    be.rejected <- be.rejected + 1;
    infinity
  end
  else
    let key = Superschedule.key s in
    match Hashtbl.find_opt be.cache key with
    | Some c -> c
    | None ->
        let t0 = Unix.gettimeofday () in
        let c = be.eval s in
        be.eval_time <- be.eval_time +. (Unix.gettimeofday () -. t0);
        be.eval_count <- be.eval_count + 1;
        Hashtbl.add be.cache key c;
        c

(* Drive a strategy: [propose] yields the next schedule given the observation
   history; the driver owns timing, best tracking and the history curve. *)
let drive ~name ~budget be ~propose =
  let t_start = Unix.gettimeofday () in
  let observations = ref [] in
  let best = ref None in
  let history = ref [] in
  for trial = 1 to budget do
    let s = propose !observations in
    let c = run_eval be s in
    observations := (s, c) :: !observations;
    (match !best with
    | Some (_, bc) when bc <= c -> ()
    | _ -> best := Some (s, c));
    let _, bc = Option.get !best in
    history := (trial, bc) :: !history
  done;
  let best_s, best_c = Option.get !best in
  {
    name;
    best = best_s;
    best_cost = best_c;
    trials = budget;
    eval_seconds = be.eval_time;
    total_seconds = Unix.gettimeofday () -. t_start;
    history = Array.of_list (List.rev !history);
    rejected = be.rejected;
    rejected_lint = be.counts.Asym.Prefilter.lint;
    rejected_asym = be.counts.Asym.Prefilter.asym;
  }
