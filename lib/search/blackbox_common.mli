(** Shared scaffolding for budgeted black-box schedule search: every strategy
    reports the same result record, with wall time split into evaluation time
    vs optimizer metadata time — the quantity Fig. 16 breaks down. *)

open Schedule

type result = {
  name : string;
  best : Superschedule.t;
  best_cost : float;
  trials : int;
  eval_seconds : float;  (** time spent inside cost evaluations *)
  total_seconds : float;  (** wall time of the whole search *)
  history : (int * float) array;  (** (trial, best-so-far cost) *)
  rejected : int;  (** proposals a pre-filter refused to evaluate *)
  rejected_lint : int;  (** ... because of an error-level legality finding *)
  rejected_asym : int;  (** ... because of asymptotic dominance *)
}

type budgeted_eval = {
  eval : Superschedule.t -> float;
  prefilter : (Superschedule.t -> bool) option;
      (** legacy single legality filter; rejections count as lint *)
  filters : Asym.Prefilter.t list;
  counts : Asym.Prefilter.counts;
  mutable eval_time : float;
  mutable eval_count : int;
  mutable rejected : int;
  cache : (string, float) Hashtbl.t;
}

val make_eval :
  ?prefilter:(Superschedule.t -> bool) ->
  ?filters:Asym.Prefilter.t list ->
  (Superschedule.t -> float) ->
  budgeted_eval
(** [filters] run in order through the unified pre-filter plumbing
    ({!Asym.Prefilter}); the first rejection wins and is tallied per
    reason.  [prefilter] is the legacy single-predicate form, counted as a
    lint rejection. *)

val run_eval : budgeted_eval -> Superschedule.t -> float
(** Cached and timed; repeated queries of the same schedule are free.
    Schedules a pre-filter rejects score [infinity] without any call to
    the underlying evaluation. *)

val drive :
  name:string ->
  budget:int ->
  budgeted_eval ->
  propose:((Superschedule.t * float) list -> Superschedule.t) ->
  result
(** Runs [budget] trials; [propose] receives the observation history
    (newest first). *)
