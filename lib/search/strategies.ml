(* The black-box optimizers WACO is compared against in Fig. 16:

   - [random_search]: the floor every optimizer must beat;
   - [tpe]: a HyperOpt-style estimator-of-distributions — each parameter is
     resampled from the empirical distribution of the best-quantile trials
     (a categorical-parameter TPE; the paper's HyperOpt uses TPE);
   - [bandit]: an OpenTuner-style ensemble — mutation / crossover / random
     operators selected by a UCB1 bandit on recent improvement rate.

   All three pay per-trial "metadata" time that ANNS does not: maintaining the
   observation sets, refitting distributions, bandit bookkeeping. *)

open Sptensor
open Schedule

(* All strategies share the same pre-filter stack (unified plumbing in
   [Asym.Prefilter]): the lint filter (on by default) rejects schedules
   whose error-level legality diagnostics mean they can never execute, and
   an optional asymptotic analyzer rejects schedules symbolically dominated
   by the fixed-CSR baseline — either way the proposal scores [infinity]
   without touching the cost evaluation. *)
let filters_of lint asym =
  (if lint then [ Asym.Prefilter.lint ] else [])
  @ match asym with Some a -> [ Asym.Prefilter.asym a ] | None -> []

let random_search ?(lint = true) ?asym rng algo ~dims ~eval ~budget =
  let be = Blackbox_common.make_eval ~filters:(filters_of lint asym) eval in
  Blackbox_common.drive ~name:"Random" ~budget be ~propose:(fun _ ->
      Space.sample rng algo ~dims)

(* --- TPE-like --- *)

let quantile_split observations ~gamma =
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) observations in
  let n = List.length sorted in
  let ngood = max 1 (int_of_float (gamma *. float_of_int n)) in
  List.filteri (fun i _ -> i < ngood) sorted |> List.map fst

let tpe ?(gamma = 0.25) ?(explore = 0.15) ?(lint = true) ?asym rng algo ~dims
    ~eval ~budget =
  let be = Blackbox_common.make_eval ~filters:(filters_of lint asym) eval in
  let propose observations =
    if List.length observations < 8 || Rng.float rng < explore then
      Space.sample rng algo ~dims
    else begin
      let goods = Array.of_list (quantile_split observations ~gamma) in
      (* Draw each parameter from the good-trial empirical distribution,
         smoothed with a uniform-random fallback. *)
      let draw f fallback =
        if Rng.float rng < 0.2 then fallback () else f (Rng.choose rng goods)
      in
      let fresh = Space.sample rng algo ~dims in
      {
        Superschedule.algo;
        splits =
          Array.init (Array.length fresh.Superschedule.splits) (fun d ->
              draw
                (fun g -> g.Superschedule.splits.(d))
                (fun () -> fresh.Superschedule.splits.(d)));
        compute_order =
          Array.copy
            (draw
               (fun g -> g.Superschedule.compute_order)
               (fun () -> fresh.Superschedule.compute_order));
        par_var =
          draw (fun g -> g.Superschedule.par_var) (fun () -> fresh.Superschedule.par_var);
        threads =
          draw (fun g -> g.Superschedule.threads) (fun () -> fresh.Superschedule.threads);
        chunk = draw (fun g -> g.Superschedule.chunk) (fun () -> fresh.Superschedule.chunk);
        a_order =
          Array.copy
            (draw (fun g -> g.Superschedule.a_order) (fun () -> fresh.Superschedule.a_order));
        a_formats =
          Array.copy
            (draw
               (fun g -> g.Superschedule.a_formats)
               (fun () -> fresh.Superschedule.a_formats));
      }
    end
  in
  Blackbox_common.drive ~name:"HyperOpt-like" ~budget be ~propose

(* --- OpenTuner-like bandit ensemble --- *)

let bandit ?(window = 50) ?(lint = true) ?asym rng algo ~dims ~eval ~budget =
  let be = Blackbox_common.make_eval ~filters:(filters_of lint asym) eval in
  let n_ops = 4 in
  let uses = Array.make n_ops 0 and wins = Array.make n_ops 0 in
  let recent : (int * bool) Queue.t = Queue.create () in
  let trial_no = ref 0 in
  let last_op = ref 0 in
  let best_cost = ref infinity in
  let pick_op () =
    if !trial_no <= n_ops then (!trial_no - 1) mod n_ops
    else begin
      (* UCB1 over improvement rates within the sliding window. *)
      let total = float_of_int (max 1 (Queue.length recent)) in
      let best = ref 0 and best_score = ref neg_infinity in
      for o = 0 to n_ops - 1 do
        let u = float_of_int (max 1 uses.(o)) in
        let score = (float_of_int wins.(o) /. u) +. sqrt (2.0 *. log total /. u) in
        if score > !best_score then begin
          best_score := score;
          best := o
        end
      done;
      !best
    end
  in
  let apply_op o observations =
    let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) observations in
    match (o, sorted) with
    | 0, _ | _, [] -> Space.sample rng algo ~dims
    | 1, (s, _) :: _ -> Space.mutate rng ~dims s (* mutate best *)
    | 2, good ->
        (* mutate a random top-8 trial *)
        let top = List.filteri (fun i _ -> i < 8) good in
        let s, _ = List.nth top (Rng.int rng (List.length top)) in
        Space.mutate rng ~dims s
    | _, [ (s, _) ] -> Space.mutate rng ~dims s
    | _, (s1, _) :: (s2, _) :: _ -> Space.crossover rng s1 s2
  in
  let propose observations =
    (* Credit the previous operator if the newest observation improved. *)
    (match observations with
    | (_, c) :: _ ->
        let improved = c < !best_cost in
        if improved then best_cost := c;
        Queue.add (!last_op, improved) recent;
        if improved then wins.(!last_op) <- wins.(!last_op) + 1;
        if Queue.length recent > window then begin
          let o, w = Queue.take recent in
          if w then wins.(o) <- max 0 (wins.(o) - 1)
        end
    | [] -> ());
    incr trial_no;
    let o = pick_op () in
    uses.(o) <- uses.(o) + 1;
    last_op := o;
    apply_op o observations
  in
  Blackbox_common.drive ~name:"OpenTuner-like" ~budget be ~propose
