(** Fully-connected layer over a batch of row vectors, with a hand-written
    backward pass.  Forward caches its input; call [backward] at most once
    per forward. *)

type t = {
  in_dim : int;
  out_dim : int;
  w : Param.t;  (** out_dim x in_dim, row-major *)
  b : Param.t;
  mutable cache_input : float array;
  mutable cache_batch : int;
}

val create : Sptensor.Rng.t -> name:string -> in_dim:int -> out_dim:int -> t

val params : t -> Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches. *)

val forward : t -> batch:int -> float array -> float array
(** Input length must be [batch * in_dim]; output is [batch * out_dim]. *)

val backward : t -> float array -> float array
(** Accumulates dW, db; returns d(input). *)
