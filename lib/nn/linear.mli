(** Fully-connected layer over a batch of row vectors, with a hand-written
    backward pass.  Forward caches its input; call [backward] at most once
    per forward.

    Results live in grow-only per-instance scratch buffers: valid until the
    next call on the same instance, possibly longer than the valid batch
    extent (DESIGN.md §9). *)

type t = {
  in_dim : int;
  out_dim : int;
  w : Param.t;  (** out_dim x in_dim, row-major *)
  b : Param.t;
  mutable cache_input : float array;
  mutable cache_batch : int;
  mutable scratch_out : float array;  (** grow-only forward output *)
  mutable scratch_din : float array;  (** grow-only backward d(input) *)
}

val create : Sptensor.Rng.t -> name:string -> in_dim:int -> out_dim:int -> t

val params : t -> Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches and
    scratch buffers. *)

val forward : t -> batch:int -> float array -> float array
(** Input length must be at least [batch * in_dim]; the result is this
    instance's scratch buffer (valid prefix [batch * out_dim]). *)

val forward_into :
  t ->
  batch:int ->
  src:float array ->
  src_off:int ->
  src_stride:int ->
  dst:float array ->
  dst_off:int ->
  dst_stride:int ->
  relu:bool ->
  unit
(** Blocked batched GEMM over strided row views, bias and an optional
    trailing ReLU fused in — the inference VM's batched entry point
    (DESIGN.md §14).  Row [n] of the input occupies
    [src_off + n*src_stride ..+ in_dim]; outputs land at
    [dst_off + n*dst_stride ..+ out_dim].  Bitwise-equal to
    [forward](-then-ReLU); forward-only (no caching), zero allocation. *)

val backward : t -> float array -> float array
(** Accumulates dW, db; returns d(input) in this instance's scratch buffer
    (valid prefix [batch * in_dim]). *)
