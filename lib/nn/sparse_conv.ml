(* Submanifold sparse convolution (Graham & van der Maaten [17]), the layer
   WACONet is built from.

   Semantics: out[o] = bias + sum_d W_d * in[stride * o + d], where d ranges
   over the kernel window and only sites present in the input contribute.
   For stride 1 the output sites equal the input sites (submanifold: the
   activation pattern never dilates); for stride 2 the output sites are the
   distinct halved coordinates, which is what lets stacked strided layers grow
   the receptive field across distant nonzeros (Fig. 8). *)

type kernel_map = {
  out_coords : (int * int) array;
  out_h : int;
  out_w : int;
  (* pairs.(offset_index) = [(in_site, out_site); ...] *)
  pairs : (int * int) array array;
}

type t = {
  in_ch : int;
  out_ch : int;
  ksize : int;
  stride : int;
  w : Param.t; (* [ksize*ksize] x out_ch x in_ch *)
  b : Param.t;
  mutable cache_map : kernel_map option;
  mutable cache_in : float array;
  mutable cache_nsites_out : int;
}

let create rng ~name ~in_ch ~out_ch ~ksize ~stride =
  if ksize mod 2 = 0 then invalid_arg "Sparse_conv.create: kernel size must be odd";
  {
    in_ch;
    out_ch;
    ksize;
    stride;
    w =
      Param.xavier rng ~name:(name ^ ".w")
        ~fan_in:(in_ch * ksize * ksize)
        ~fan_out:out_ch
        (ksize * ksize * out_ch * in_ch);
    b =
      (* Small positive bias keeps deep layers of narrow nets from going dead
         once the strided pyramid shrinks to a handful of sites. *)
      (let p = Param.create ~name:(name ^ ".b") out_ch in
       Array.fill p.Param.data 0 out_ch 0.01;
       p);
    cache_map = None;
    cache_in = [||];
    cache_nsites_out = 0;
  }

let params t = [ t.w; t.b ]

(* Forward-only replica for a worker domain: shares the weight/bias arrays,
   owns private forward caches. *)
let replicate t = { t with cache_map = None; cache_in = [||]; cache_nsites_out = 0 }

(* Kernel maps depend only on the coordinate set; they are built once per
   input pattern and reused across epochs via [Pyramid] caching. *)
let build_map ~ksize ~stride (coords : (int * int) array) ~h ~w =
  let half = ksize / 2 in
  let nk = ksize * ksize in
  let out_h = (h + stride - 1) / stride and out_w = (w + stride - 1) / stride in
  (* Output site set. *)
  let out_tbl : (int * int, int) Hashtbl.t = Hashtbl.create (Array.length coords) in
  let out_list = ref [] and out_count = ref 0 in
  if stride = 1 then
    Array.iteri
      (fun idx (r, c) ->
        Hashtbl.add out_tbl (r, c) idx;
        out_list := (r, c) :: !out_list;
        incr out_count)
      coords
  else
    Array.iter
      (fun (r, c) ->
        let o = (r / stride, c / stride) in
        if not (Hashtbl.mem out_tbl o) then begin
          Hashtbl.add out_tbl o !out_count;
          out_list := o :: !out_list;
          incr out_count
        end)
      coords;
  let out_coords = Array.of_list (List.rev !out_list) in
  (* For every input site and offset, find the output site it feeds. *)
  let pairs = Array.make nk [] in
  Array.iteri
    (fun in_idx (r, c) ->
      for dy = -half to half do
        for dx = -half to half do
          let tr = r - dy and tc = c - dx in
          if tr >= 0 && tc >= 0 && tr mod stride = 0 && tc mod stride = 0 then begin
            match Hashtbl.find_opt out_tbl (tr / stride, tc / stride) with
            | Some out_idx ->
                let off = ((dy + half) * ksize) + dx + half in
                pairs.(off) <- (in_idx, out_idx) :: pairs.(off)
            | None -> ()
          end
        done
      done)
    coords;
  { out_coords; out_h; out_w; pairs = Array.map Array.of_list pairs }

(* Forward over an explicit kernel map (the cached-pyramid path). *)
let forward_with_map t (map : kernel_map) (input : Smap.t) : Smap.t =
  if input.Smap.channels <> t.in_ch then invalid_arg "Sparse_conv.forward: channel mismatch";
  let n_out = Array.length map.out_coords in
  let out = Array.make (n_out * t.out_ch) 0.0 in
  (* bias *)
  for s = 0 to n_out - 1 do
    for o = 0 to t.out_ch - 1 do
      out.((s * t.out_ch) + o) <- t.b.Param.data.(o)
    done
  done;
  let ci = t.in_ch and co = t.out_ch in
  Array.iteri
    (fun off pair_list ->
      let wbase = off * co * ci in
      Array.iter
        (fun (in_idx, out_idx) ->
          let ib = in_idx * ci and ob = out_idx * co in
          for o = 0 to co - 1 do
            let wrow = wbase + (o * ci) in
            let acc = ref 0.0 in
            for i = 0 to ci - 1 do
              acc := !acc +. (t.w.Param.data.(wrow + i) *. input.Smap.feats.(ib + i))
            done;
            out.(ob + o) <- out.(ob + o) +. !acc
          done)
        pair_list)
    map.pairs;
  t.cache_map <- Some map;
  (* Copy, don't alias: a caller mutating its feature buffer between forward
     and backward must not corrupt dW. *)
  t.cache_in <- Array.copy input.Smap.feats;
  t.cache_nsites_out <- n_out;
  {
    Smap.h = map.out_h;
    w = map.out_w;
    coords = map.out_coords;
    channels = t.out_ch;
    feats = out;
  }

let forward t (input : Smap.t) : Smap.t =
  let map =
    build_map ~ksize:t.ksize ~stride:t.stride input.Smap.coords ~h:input.Smap.h
      ~w:input.Smap.w
  in
  forward_with_map t map input

(* Returns d(input feats); accumulates dW and db. *)
let backward t (dout : float array) =
  let map =
    match t.cache_map with
    | Some m -> m
    | None -> invalid_arg "Sparse_conv.backward: no cached forward"
  in
  if Array.length dout <> t.cache_nsites_out * t.out_ch then
    invalid_arg "Sparse_conv.backward: dout size mismatch";
  let ci = t.in_ch and co = t.out_ch in
  let din = Array.make (Array.length t.cache_in) 0.0 in
  (* bias grads *)
  for s = 0 to t.cache_nsites_out - 1 do
    for o = 0 to co - 1 do
      t.b.Param.grad.(o) <- t.b.Param.grad.(o) +. dout.((s * co) + o)
    done
  done;
  Array.iteri
    (fun off pair_list ->
      let wbase = off * co * ci in
      Array.iter
        (fun (in_idx, out_idx) ->
          let ib = in_idx * ci and ob = out_idx * co in
          for o = 0 to co - 1 do
            let g = dout.(ob + o) in
            if g <> 0.0 then begin
              let wrow = wbase + (o * ci) in
              for i = 0 to ci - 1 do
                t.w.Param.grad.(wrow + i) <-
                  t.w.Param.grad.(wrow + i) +. (g *. t.cache_in.(ib + i));
                din.(ib + i) <- din.(ib + i) +. (g *. t.w.Param.data.(wrow + i))
              done
            end
          done)
        pair_list)
    map.pairs;
  din
