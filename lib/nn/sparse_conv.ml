(* Submanifold sparse convolution (Graham & van der Maaten [17]), the layer
   WACONet is built from.

   Semantics: out[o] = bias + sum_d W_d * in[stride * o + d], where d ranges
   over the kernel window and only sites present in the input contribute.
   For stride 1 the output sites equal the input sites (submanifold: the
   activation pattern never dilates); for stride 2 the output sites are the
   distinct halved coordinates, which is what lets stacked strided layers grow
   the receptive field across distant nonzeros (Fig. 8).

   Data layout (DESIGN.md §9): the kernel map is a flat structure-of-arrays —
   CSR-style [off_start] offsets into two parallel int arrays [pairs_in] /
   [pairs_out], one segment per kernel offset — replacing the old boxed
   [(int * int) array array].  The per-offset pair order is exactly the order
   the old list-consing builder produced (descending input-site index), so
   float accumulation order, and therefore trained model artifacts, are
   byte-identical to the pre-flat layout (pinned by test/test_perf.ml). *)

type kernel_map = {
  out_coords : int array; (* encoded row * out_w + col *)
  out_h : int;
  out_w : int;
  off_start : int array; (* length ksize^2 + 1: CSR segment bounds *)
  pairs_in : int array; (* input site index per pair *)
  pairs_out : int array; (* output site index per pair *)
}

let map_npairs map = Array.length map.pairs_in

type t = {
  in_ch : int;
  out_ch : int;
  ksize : int;
  stride : int;
  w : Param.t; (* [ksize*ksize] x out_ch x in_ch *)
  b : Param.t;
  mutable cache_map : kernel_map option;
  mutable cache_in : float array; (* grow-only scratch; valid prefix below *)
  mutable cache_in_valid : int;
  mutable cache_nsites_out : int;
  mutable scratch_out : float array; (* grow-only forward output buffer *)
  mutable scratch_din : float array; (* grow-only backward d(input) buffer *)
}

let create rng ~name ~in_ch ~out_ch ~ksize ~stride =
  if ksize mod 2 = 0 then invalid_arg "Sparse_conv.create: kernel size must be odd";
  {
    in_ch;
    out_ch;
    ksize;
    stride;
    w =
      Param.xavier rng ~name:(name ^ ".w")
        ~fan_in:(in_ch * ksize * ksize)
        ~fan_out:out_ch
        (ksize * ksize * out_ch * in_ch);
    b =
      (* Small positive bias keeps deep layers of narrow nets from going dead
         once the strided pyramid shrinks to a handful of sites. *)
      (let p = Param.create ~name:(name ^ ".b") out_ch in
       Array.fill p.Param.data 0 out_ch 0.01;
       p);
    cache_map = None;
    cache_in = [||];
    cache_in_valid = 0;
    cache_nsites_out = 0;
    scratch_out = [||];
    scratch_din = [||];
  }

let params t = [ t.w; t.b ]

(* Forward-only replica for a worker domain: shares the weight/bias arrays,
   owns private forward caches and scratch buffers (replica-privacy: two
   domains must never write through the same scratch). *)
let replicate t =
  {
    t with
    cache_map = None;
    cache_in = [||];
    cache_in_valid = 0;
    cache_nsites_out = 0;
    scratch_out = [||];
    scratch_din = [||];
  }

(* Kernel maps depend only on the coordinate set; they are built once per
   input pattern and reused across epochs via [Pyramid] caching.

   Construction is two passes over an int-keyed coordinate table — no boxed
   keys, no list consing.  The probe key width is [out_w + half + 1], not
   [out_w]: a window cell just right of the grid ([tc in w .. w-1+half]) can
   legitimately halve onto an existing output column, and a plain [out_w]
   encoding would alias such probes onto the next row's cells. *)
let build_map ~ksize ~stride (coords : int array) ~h ~w =
  let half = ksize / 2 in
  let nk = ksize * ksize in
  let n = Array.length coords in
  let out_h = (h + stride - 1) / stride and out_w = (w + stride - 1) / stride in
  let tw = out_w + half + 1 in
  let tbl = Int_tbl.create (2 * n) in
  (* Output site set, in first-occurrence order (stride > 1) or input order
     (stride 1, where output indices equal input indices). *)
  let out_coords =
    if stride = 1 then begin
      for idx = 0 to n - 1 do
        let k = coords.(idx) in
        Int_tbl.set tbl (((k / w) * tw) + (k mod w)) idx
      done;
      (* out_w = w, so the encoded output coordinates are the inputs. *)
      coords
    end
    else begin
      let out = Array.make n 0 in
      let count = ref 0 in
      for idx = 0 to n - 1 do
        let k = coords.(idx) in
        let orow = k / w / stride and ocol = k mod w / stride in
        let key = (orow * tw) + ocol in
        if not (Int_tbl.mem tbl key) then begin
          Int_tbl.set tbl key !count;
          out.(!count) <- (orow * out_w) + ocol;
          incr count
        end
      done;
      Array.sub out 0 !count
    end
  in
  (* Pass 1: probe every window candidate once, remembering the matched
     output index per (site, offset) so pass 2 is a pure array walk with no
     re-probing; count pairs per kernel offset as we go. *)
  let counts = Array.make nk 0 in
  let hits = Array.make (n * nk) (-1) in
  for i = 0 to n - 1 do
    let k = coords.(i) in
    let r = k / w and c = k mod w in
    let hbase = i * nk in
    for dy = -half to half do
      for dx = -half to half do
        let tr = r - dy and tc = c - dx in
        if tr >= 0 && tc >= 0 && tr mod stride = 0 && tc mod stride = 0 then begin
          let key = ((tr / stride) * tw) + (tc / stride) in
          let out_idx = Int_tbl.find tbl key ~default:(-1) in
          if out_idx >= 0 then begin
            let off = ((dy + half) * ksize) + dx + half in
            hits.(hbase + off) <- out_idx;
            counts.(off) <- counts.(off) + 1
          end
        end
      done
    done
  done;
  let off_start = Array.make (nk + 1) 0 in
  for o = 0 to nk - 1 do
    off_start.(o + 1) <- off_start.(o) + counts.(o)
  done;
  let total = off_start.(nk) in
  let pairs_in = Array.make total 0 and pairs_out = Array.make total 0 in
  (* Pass 2: fill each segment back to front while walking input sites in
     ascending order, reproducing the old list-consing order (descending
     input index) exactly.  [counts] is reused as the per-offset cursor. *)
  Array.blit off_start 1 counts 0 nk;
  for i = 0 to n - 1 do
    let hbase = i * nk in
    for off = 0 to nk - 1 do
      let out_idx = hits.(hbase + off) in
      if out_idx >= 0 then begin
        let pos = counts.(off) - 1 in
        counts.(off) <- pos;
        pairs_in.(pos) <- i;
        pairs_out.(pos) <- out_idx
      end
    done
  done;
  { out_coords; out_h; out_w; off_start; pairs_in; pairs_out }

let[@inline] grown buf need = if Array.length buf < need then Array.make need 0.0 else buf

(* Forward over an explicit kernel map (the cached-pyramid path).  The
   returned map's [feats] is this layer's scratch buffer: it is valid until
   the next [forward] on the same instance, and callers that retain it must
   copy (see DESIGN.md §9 for the ownership rules). *)
let forward_with_map t (map : kernel_map) (input : Smap.t) : Smap.t =
  if input.Smap.channels <> t.in_ch then invalid_arg "Sparse_conv.forward: channel mismatch";
  let n_out = Array.length map.out_coords in
  let ci = t.in_ch and co = t.out_ch in
  t.scratch_out <- grown t.scratch_out (n_out * co);
  let out = t.scratch_out in
  let wdata = t.w.Param.data and input_feats = input.Smap.feats in
  (* bias *)
  for s = 0 to n_out - 1 do
    for o = 0 to co - 1 do
      out.((s * co) + o) <- t.b.Param.data.(o)
    done
  done;
  let nk = Array.length map.off_start - 1 in
  for off = 0 to nk - 1 do
    let wbase = off * co * ci in
    for p = map.off_start.(off) to map.off_start.(off + 1) - 1 do
      let ib = map.pairs_in.(p) * ci and ob = map.pairs_out.(p) * co in
      for o = 0 to co - 1 do
        let wrow = wbase + (o * ci) in
        let acc = ref 0.0 in
        for i = 0 to ci - 1 do
          acc := !acc +. (wdata.(wrow + i) *. input_feats.(ib + i))
        done;
        out.(ob + o) <- out.(ob + o) +. !acc
      done
    done
  done;
  t.cache_map <- Some map;
  (* Copy into the reused input cache, don't alias: a caller mutating its
     feature buffer between forward and backward must not corrupt dW. *)
  let in_valid = Smap.nsites input * ci in
  t.cache_in <- grown t.cache_in in_valid;
  Array.blit input_feats 0 t.cache_in 0 in_valid;
  t.cache_in_valid <- in_valid;
  t.cache_nsites_out <- n_out;
  {
    Smap.h = map.out_h;
    w = map.out_w;
    coords = map.out_coords;
    channels = co;
    feats = out;
  }

let forward t (input : Smap.t) : Smap.t =
  let map =
    build_map ~ksize:t.ksize ~stride:t.stride input.Smap.coords ~h:input.Smap.h
      ~w:input.Smap.w
  in
  forward_with_map t map input

(* Returns d(input feats) in this layer's scratch buffer (valid prefix =
   cached input size; valid until the next backward on this instance);
   accumulates dW and db. *)
let backward t (dout : float array) =
  let map =
    match t.cache_map with
    | Some m -> m
    | None -> invalid_arg "Sparse_conv.backward: no cached forward"
  in
  if Array.length dout < t.cache_nsites_out * t.out_ch then
    invalid_arg "Sparse_conv.backward: dout size mismatch";
  let ci = t.in_ch and co = t.out_ch in
  t.scratch_din <- grown t.scratch_din t.cache_in_valid;
  let din = t.scratch_din in
  Array.fill din 0 t.cache_in_valid 0.0;
  (* bias grads *)
  for s = 0 to t.cache_nsites_out - 1 do
    for o = 0 to co - 1 do
      t.b.Param.grad.(o) <- t.b.Param.grad.(o) +. dout.((s * co) + o)
    done
  done;
  let wdata = t.w.Param.data and wgrad = t.w.Param.grad and cache_in = t.cache_in in
  let nk = Array.length map.off_start - 1 in
  for off = 0 to nk - 1 do
    let wbase = off * co * ci in
    for p = map.off_start.(off) to map.off_start.(off + 1) - 1 do
      let ib = map.pairs_in.(p) * ci and ob = map.pairs_out.(p) * co in
      for o = 0 to co - 1 do
        let g = dout.(ob + o) in
        if g <> 0.0 then begin
          let wrow = wbase + (o * ci) in
          for i = 0 to ci - 1 do
            wgrad.(wrow + i) <- wgrad.(wrow + i) +. (g *. cache_in.(ib + i));
            din.(ib + i) <- din.(ib + i) +. (g *. wdata.(wrow + i))
          done
        end
      done
    done
  done;
  din
