(** A sparse 2-D feature map: the activation type flowing through WACONet.
    Sites are nonzero coordinates, each carrying a [channels]-vector stored
    site-major in [feats].

    Coordinates are flat-encoded ints ([row * w + col]) — one unboxed word
    per site instead of a boxed pair, so coordinate walks and kernel-map
    construction stay cache-friendly and allocation-free (DESIGN.md §9).
    [feats] may be longer than [nsites * channels] when it is a layer's
    reused scratch buffer; only that prefix is meaningful. *)

type t = {
  h : int;
  w : int;
  coords : int array;  (** encoded [row * w + col] *)
  channels : int;
  feats : float array;  (** valid prefix = [nsites * channels] *)
}

val nsites : t -> int

val encode : w:int -> int -> int -> int
(** [encode ~w r c = r * w + c]. *)

val decode : w:int -> int -> int * int
(** Inverse of {!encode}; requires [w > 0]. *)

val row : t -> int -> int
(** Row of site [i]. *)

val col : t -> int -> int
(** Column of site [i]. *)

val coord : t -> int -> int * int
(** [(row, col)] of site [i] — compat accessor for pair-minded call sites. *)

val of_pairs :
  h:int -> w:int -> channels:int -> (int * int) array -> float array -> t
(** Compat constructor from coordinate pairs (used by tests). *)

val coords_pairs : t -> (int * int) array
(** All coordinates, decoded — allocates; for tests and diagnostics only. *)

val default_max_sites : int
(** Site cap for the raw input map ([8192]): the CPU-budget stand-in for the
    paper's 10M-nnz GPU capacity. *)

val of_coo : ?max_sites:int -> Sptensor.Coo.t -> t
(** Single-channel input map of a pattern: one site per nonzero, feature 1.0.
    Patterns above [max_sites] are deterministically subsampled — unlike grid
    downsampling this keeps exact coordinates, so global structure and block
    alignment survive. *)

val downsample : Sptensor.Coo.t -> target:int -> t
(** The DenseConv baseline's input (§3.2.1): the pattern binned onto a
    [target x target] grid, every cell a site with feature [log1p count].
    Submanifold convolution over an all-sites map is exactly dense
    convolution. *)

val of_tensor3 : Sptensor.Tensor3.t -> t
(** 3-D tensors enter through their mode-0 flattening (SpTFS's approach). *)
