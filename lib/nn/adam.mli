(** Adam optimizer (Kingma & Ba) — the paper trains its cost model with Adam
    at learning rate 1e-4 (§4.1.3). *)

type t

val create :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> Param.t list -> t

val step : t -> unit
(** Applies one update from the accumulated gradients, then clears them. *)

val export_state : t -> float array list * float array list * int
(** [(first moments, second moments, step count)] — the live arrays, not
    copies; serialize them before taking further steps.  For checkpoints. *)

val import_state :
  t -> m:float array list -> v:float array list -> step_count:int -> unit
(** Restores state captured by {!export_state} into an optimizer over
    identically-shaped parameters; raises [Invalid_argument] on mismatch. *)
