(** Global average pooling over a sparse feature map: per-channel mean across
    sites.  WACONet pools after every layer and concatenates (Fig. 9).

    Results live in grow-only per-instance scratch buffers: valid until the
    next call on the same instance (DESIGN.md §9). *)

type t

val create : unit -> t

val forward : t -> Smap.t -> float array
(** Valid prefix = channels; the result is this instance's scratch buffer. *)

val backward : t -> float array -> float array
(** d(feats) from d(pooled); requires a preceding forward.  The result is
    this instance's scratch buffer (valid prefix = nsites * channels). *)
