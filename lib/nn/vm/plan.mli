(** Compile-once/execute-many inference plans (DESIGN.md §14).

    A plan is a topologically ordered instruction tape compiled once from a
    model's layers and executed many times over batches of inputs.  Three
    instruction kinds cover the extractor→embedder→MLP hot path:

    - [Gemm]: one blocked (row-tiled) batched GEMM per {!Nn.Linear} layer,
      with the bias add and an optional trailing ReLU fused in.  Source and
      destination are strided row views, so producers write straight into a
      consumer's input matrix (e.g. embedder tables into columns of the
      concat buffer) instead of copying.
    - [Conv]: one {!Nn.Sparse_conv} layer over a per-item kernel-map
      binding, ReLU fused, executed once per batch element.
    - [Pool]: global average pooling of a conv output into one row slice of
      a batch matrix (the fused pool+concat of WACONet).

    Fusion legality: ReLU commutes with nothing inside a reduction, so it is
    fused only {e after} an instruction's accumulation completes, and GEMM
    tiling never splits the reduction dimension — each output cell is still
    one ascending-order accumulation chain starting from the bias.  Forward
    results are therefore bitwise-equal to the eager layers (pinned by
    test/test_vm.ml).

    All intermediate values live in a grow-only {!Arena}; steady-state
    execution allocates zero bytes.  Plans are forward-only and, like eager
    scratch buffers, single-domain: replicas must compile their own plan.

    Execution protocol:
    - batched tape only (MLP-shaped plans):
      fill {!buffer}, then {!run_batch}.
    - with a per-item tape (sparse-conv plans): {!begin_batch}, then per
      item [n]: {!start_item}[ n], {!bind_map}/{!set_input_feats},
      {!run_item}; finally {!run_batch}. *)

type view = { buf : int; off : int; stride : int }
(** A strided row view into arena buffer [buf]: row [n] occupies
    [off + n * stride .. off + n * stride + width - 1]. *)

type t

(** {1 Compilation} *)

type builder

val builder : unit -> builder

val fresh : builder -> int
(** Allocate an arena buffer slot for a planned value. *)

val gemm : builder -> Nn.Linear.t -> src:view -> dst:view -> relu:bool -> unit
(** Append a batched fused GEMM to the batched tape.  Parameters are shared
    with the eager layer (in-place optimizer updates stay visible). *)

val mlp : builder -> Nn.Mlp.t -> src:view -> dst:view -> unit
(** Append one fused GEMM per layer of the MLP, threading internal views;
    ReLU placement (including [final_relu]) mirrors {!Nn.Mlp.forward}.  The
    final layer writes into [dst]. *)

val conv : builder -> Nn.Sparse_conv.t -> layer:int -> src:int -> dst:int -> relu:bool -> unit
(** Append a sparse conv to the per-item tape.  [layer] names the kernel-map
    binding slot ({!bind_map}); [src = -1] reads the per-item input features
    ({!set_input_feats}), otherwise a site-major arena buffer. *)

val pool : builder -> src:int -> channels:int -> layer:int -> dst:view -> unit
(** Append a global average pool to the per-item tape: mean over the sites
    of binding slot [layer]'s map, written into [dst]'s current-item row. *)

val finish : builder -> nlayers:int -> out:view -> t
(** Seal the tape.  [nlayers] is the number of kernel-map binding slots;
    [out] is the view {!run_batch} returns the backing buffer of. *)

(** {1 Execution} *)

val buffer : t -> int -> len:int -> float array
(** Grow arena slot to at least [len] and borrow it — how callers fill input
    buffers before {!run_batch}. *)

val begin_batch : t -> batch:int -> unit
(** Pre-size every cross-item view destination (pooled-concat rows, GEMM
    outputs) for [batch] rows.  Must precede the first {!run_item} of a
    batch; {!run_batch} re-runs it (a no-op once sized). *)

val start_item : t -> int -> unit
(** Select the batch row the per-item tape writes into. *)

val bind_map : t -> int -> Nn.Sparse_conv.kernel_map -> unit
(** Bind layer slot [i]'s kernel map for the current item. *)

val set_input_feats : t -> float array -> unit
(** Bind the current item's input feature array (read by [src = -1] convs;
    borrowed, never written). *)

val run_item : t -> unit
(** Execute the per-item tape for the current item and bindings. *)

val run_batch : t -> batch:int -> float array
(** Execute the batched tape over [batch] rows and return the output view's
    backing buffer (borrowed: valid until the next execution or growth).
    Steady state allocates zero bytes. *)

val out_view : t -> view
