(** The inference VM's grow-only buffer arena (DESIGN.md §14).

    A plan owns one arena with a fixed number of slots, one per planned
    value.  Buffers grow monotonically and are never freed, extending §9's
    per-layer scratch contract to whole plans: every instruction writes into
    a borrowed slice of an arena buffer, so steady-state execution allocates
    zero bytes.

    Growth discards previous contents (the replacement array is zeroed), so
    any buffer whose contents must survive across per-item executions — e.g.
    the pooled-concat matrix filled one row per item — must be sized for the
    whole batch up front ({!Plan.run_batch} does this before touching any
    instruction). *)

type t

val create : n:int -> t
(** An arena with [n] empty buffer slots. *)

val slots : t -> int

val ensure : t -> int -> int -> unit
(** [ensure a i need] grows slot [i] to at least [need] floats (zero-filled
    on growth; a no-op once large enough). *)

val get : t -> int -> float array
(** Borrow slot [i]'s current backing array.  Valid until the next [ensure]
    that actually grows it. *)
