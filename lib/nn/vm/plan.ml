(* Instruction tape + view planner for the inference VM (DESIGN.md §14).

   Compilation walks a model's layers once and emits fused instructions over
   arena buffer views; execution replays the tape with zero steady-state
   allocation.  Bitwise identity with the eager layers is load-bearing (the
   serve cache and golden artifacts depend on it) and rests on two rules:

   - a fused ReLU runs only after an instruction's accumulation is complete
     (max commutes with nothing inside a reduction);
   - GEMM tiling covers batch rows only — every output cell remains a single
     ascending-order accumulation chain seeded with the bias, exactly
     [Linear.forward]'s; the reduction dimension is never split.

   Conv execution reproduces [Sparse_conv.forward_with_map]'s order exactly:
   bias init over all sites first, then kernel offsets ascending, pairs
   ascending within each offset segment, and per pair one ascending
   inner-channel accumulation added to the output site. *)

type view = { buf : int; off : int; stride : int }

type instr =
  | Gemm of { lin : Nn.Linear.t; src : view; dst : view; relu : bool }
  | Conv of {
      conv : Nn.Sparse_conv.t;
      layer : int;
      src : int; (* -1 = the bound per-item input features *)
      dst : int;
      relu : bool;
    }
  | Pool of { src : int; channels : int; layer : int; dst : view }

type t = {
  arena : Arena.t;
  per_item : instr array;
  batched : instr array;
  maps : Nn.Sparse_conv.kernel_map array; (* per-item bindings, one per layer slot *)
  mutable input_feats : float array; (* per-item binding for [src = -1] convs *)
  mutable item : int;
  out : view;
}

(* Compilation ------------------------------------------------------------ *)

type builder = {
  mutable nbufs : int;
  mutable rev_item : instr list;
  mutable rev_batched : instr list;
}

let builder () = { nbufs = 0; rev_item = []; rev_batched = [] }

let fresh b =
  let id = b.nbufs in
  b.nbufs <- id + 1;
  id

let gemm b lin ~src ~dst ~relu = b.rev_batched <- Gemm { lin; src; dst; relu } :: b.rev_batched

let mlp b (m : Nn.Mlp.t) ~src ~dst =
  let layers = Nn.Mlp.layers m in
  let n = Array.length layers in
  let cur = ref src in
  for l = 0 to n - 1 do
    let lin = layers.(l) in
    let d =
      if l = n - 1 then dst
      else { buf = fresh b; off = 0; stride = lin.Nn.Linear.out_dim }
    in
    gemm b lin ~src:!cur ~dst:d ~relu:(Nn.Mlp.relu_after m l);
    cur := d
  done

let conv b c ~layer ~src ~dst ~relu =
  b.rev_item <- Conv { conv = c; layer; src; dst; relu } :: b.rev_item

let pool b ~src ~channels ~layer ~dst =
  b.rev_item <- Pool { src; channels; layer; dst } :: b.rev_item

(* Kernel maps are bound per item; slots start on a shared empty map so an
   unbound slot reads as zero sites rather than tripping unsafe accesses. *)
let empty_map =
  {
    Nn.Sparse_conv.out_coords = [||];
    out_h = 0;
    out_w = 0;
    off_start = [| 0 |];
    pairs_in = [||];
    pairs_out = [||];
  }

let finish b ~nlayers ~out =
  {
    arena = Arena.create ~n:b.nbufs;
    per_item = Array.of_list (List.rev b.rev_item);
    batched = Array.of_list (List.rev b.rev_batched);
    maps = Array.make nlayers empty_map;
    input_feats = [||];
    item = 0;
    out;
  }

(* Execution -------------------------------------------------------------- *)

let buffer t id ~len =
  Arena.ensure t.arena id len;
  Arena.get t.arena id

let start_item t n = t.item <- n

let bind_map t i map = t.maps.(i) <- map

let set_input_feats t feats = t.input_feats <- feats

(* Pre-size every cross-item view destination before any instruction runs:
   arena growth zeroes, so a buffer filled one row per item (the pooled
   concat) must never grow mid-batch. *)
let ensure_views t ~batch instrs =
  for k = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs k with
    | Gemm g ->
        Arena.ensure t.arena g.dst.buf
          (g.dst.off + ((batch - 1) * g.dst.stride) + g.lin.Nn.Linear.out_dim)
    | Pool p ->
        Arena.ensure t.arena p.dst.buf (p.dst.off + ((batch - 1) * p.dst.stride) + p.channels)
    | Conv _ -> () (* sized per item at exec (site-count dependent) *)
  done

let begin_batch t ~batch =
  if batch > 0 then begin
    ensure_views t ~batch t.per_item;
    ensure_views t ~batch t.batched
  end

let exec_gemm t ~batch (lin : Nn.Linear.t) ~(src : view) ~(dst : view) ~relu =
  Nn.Linear.forward_into lin ~batch
    ~src:(Arena.get t.arena src.buf)
    ~src_off:src.off ~src_stride:src.stride
    ~dst:(Arena.get t.arena dst.buf)
    ~dst_off:dst.off ~dst_stride:dst.stride ~relu

let exec_conv t (c : Nn.Sparse_conv.t) ~layer ~src ~dst ~relu =
  let map = t.maps.(layer) in
  let n_out = Array.length map.Nn.Sparse_conv.out_coords in
  let ci = c.Nn.Sparse_conv.in_ch and co = c.Nn.Sparse_conv.out_ch in
  Arena.ensure t.arena dst (n_out * co);
  let out = Arena.get t.arena dst in
  let inf = if src < 0 then t.input_feats else Arena.get t.arena src in
  let w = c.Nn.Sparse_conv.w.Nn.Param.data and bias = c.Nn.Sparse_conv.b.Nn.Param.data in
  (* Bind-time trust boundary: the pyramid builder guarantees pair indices
     are in range; one explicit check keeps the unsafe loops honest. *)
  let np = Nn.Sparse_conv.map_npairs map in
  if np > 0 then begin
    let max_in = ref 0 and max_out = ref 0 in
    for p = 0 to np - 1 do
      let i = Array.unsafe_get map.Nn.Sparse_conv.pairs_in p
      and o = Array.unsafe_get map.Nn.Sparse_conv.pairs_out p in
      if i > !max_in then max_in := i;
      if o > !max_out then max_out := o
    done;
    if ((!max_in + 1) * ci) > Array.length inf || !max_out >= n_out then
      invalid_arg "Vm.Plan: conv binding out of range"
  end;
  for s = 0 to n_out - 1 do
    let sb = s * co in
    for o = 0 to co - 1 do
      Array.unsafe_set out (sb + o) (Array.unsafe_get bias o)
    done
  done;
  let ostart = map.Nn.Sparse_conv.off_start in
  let pin = map.Nn.Sparse_conv.pairs_in and pout = map.Nn.Sparse_conv.pairs_out in
  let nk = Array.length ostart - 1 in
  if ci = 1 then
    (* Single input channel (WACONet's first conv): the per-pair reduction is
       one product.  [0.0 +.] preserves the eager accumulator's first step
       bit-for-bit (sign of zero included). *)
    for off = 0 to nk - 1 do
      let wb = off * co in
      for p = Array.unsafe_get ostart off to Array.unsafe_get ostart (off + 1) - 1 do
        let x = Array.unsafe_get inf (Array.unsafe_get pin p) in
        let ob = Array.unsafe_get pout p * co in
        for o = 0 to co - 1 do
          Array.unsafe_set out (ob + o)
            (Array.unsafe_get out (ob + o) +. (0.0 +. (Array.unsafe_get w (wb + o) *. x)))
        done
      done
    done
  else if ci = 6 then
    (* Six input channels (WACONet's stacked convs): hoist the input loads
       out of the output-channel loop — the generic path reloads all [ci]
       inputs per output channel — and unroll the reduction.  The explicit
       left-to-right chain seeded with [0.0 +.] is the eager accumulator's
       exact float-op sequence. *)
    for off = 0 to nk - 1 do
      let wbase = off * co * 6 in
      for p = Array.unsafe_get ostart off to Array.unsafe_get ostart (off + 1) - 1 do
        let ib = Array.unsafe_get pin p * 6 in
        let ob = Array.unsafe_get pout p * co in
        let x0 = Array.unsafe_get inf ib
        and x1 = Array.unsafe_get inf (ib + 1)
        and x2 = Array.unsafe_get inf (ib + 2)
        and x3 = Array.unsafe_get inf (ib + 3)
        and x4 = Array.unsafe_get inf (ib + 4)
        and x5 = Array.unsafe_get inf (ib + 5) in
        for o = 0 to co - 1 do
          let wrow = wbase + (o * 6) in
          let acc =
            0.0
            +. (Array.unsafe_get w wrow *. x0)
            +. (Array.unsafe_get w (wrow + 1) *. x1)
            +. (Array.unsafe_get w (wrow + 2) *. x2)
            +. (Array.unsafe_get w (wrow + 3) *. x3)
            +. (Array.unsafe_get w (wrow + 4) *. x4)
            +. (Array.unsafe_get w (wrow + 5) *. x5)
          in
          Array.unsafe_set out (ob + o) (Array.unsafe_get out (ob + o) +. acc)
        done
      done
    done
  else
    for off = 0 to nk - 1 do
      let wbase = off * co * ci in
      for p = Array.unsafe_get ostart off to Array.unsafe_get ostart (off + 1) - 1 do
        let ib = Array.unsafe_get pin p * ci in
        let ob = Array.unsafe_get pout p * co in
        for o = 0 to co - 1 do
          let wrow = wbase + (o * ci) in
          let acc = ref 0.0 in
          for i = 0 to ci - 1 do
            acc := !acc +. (Array.unsafe_get w (wrow + i) *. Array.unsafe_get inf (ib + i))
          done;
          Array.unsafe_set out (ob + o) (Array.unsafe_get out (ob + o) +. !acc)
        done
      done
    done;
  if relu then
    for k = 0 to (n_out * co) - 1 do
      if not (Array.unsafe_get out k > 0.0) then Array.unsafe_set out k 0.0
    done

let exec_pool t ~src ~channels ~layer ~(dst : view) =
  let n = Array.length t.maps.(layer).Nn.Sparse_conv.out_coords in
  let feats = Arena.get t.arena src in
  let out = Arena.get t.arena dst.buf in
  let base = dst.off + (t.item * dst.stride) in
  if base + channels > Array.length out then
    invalid_arg "Vm.Plan: pool row out of bounds (begin_batch missing?)";
  if n * channels > Array.length feats then invalid_arg "Vm.Plan: pool source too short";
  for ch = 0 to channels - 1 do
    Array.unsafe_set out (base + ch) 0.0
  done;
  if n > 0 then begin
    for s = 0 to n - 1 do
      let sb = s * channels in
      for ch = 0 to channels - 1 do
        Array.unsafe_set out (base + ch)
          (Array.unsafe_get out (base + ch) +. Array.unsafe_get feats (sb + ch))
      done
    done;
    let scale = 1.0 /. float_of_int n in
    for ch = 0 to channels - 1 do
      Array.unsafe_set out (base + ch) (Array.unsafe_get out (base + ch) *. scale)
    done
  end

let exec t ~batch instrs =
  for k = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs k with
    | Gemm { lin; src; dst; relu } -> exec_gemm t ~batch lin ~src ~dst ~relu
    | Conv { conv; layer; src; dst; relu } -> exec_conv t conv ~layer ~src ~dst ~relu
    | Pool { src; channels; layer; dst } -> exec_pool t ~src ~channels ~layer ~dst
  done

let run_item t = exec t ~batch:1 t.per_item

let run_batch t ~batch =
  begin_batch t ~batch;
  if batch > 0 then exec t ~batch t.batched;
  Arena.get t.arena t.out.buf

let out_view t = t.out
