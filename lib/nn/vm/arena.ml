(* Grow-only buffer arena backing a compiled plan: one slot per planned
   value, monotone growth, borrowed slices (DESIGN.md §14).  Growth zeroes —
   cross-item buffers must be pre-sized for the whole batch before any
   instruction runs. *)

type t = { bufs : float array array }

let create ~n = { bufs = Array.make n [||] }

let slots t = Array.length t.bufs

let ensure t i need =
  if Array.length t.bufs.(i) < need then t.bufs.(i) <- Array.make need 0.0

let get t i = t.bufs.(i)
