(* Fully-connected layer over a batch of row vectors, with a hand-written
   backward pass.  Forward caches its input; call backward at most once per
   forward (the trainer's pattern).

   Forward/backward write into grow-only per-instance scratch buffers; the
   returned arrays are valid until the next call on the same instance and may
   be longer than the valid batch extent (DESIGN.md §9). *)

type t = {
  in_dim : int;
  out_dim : int;
  w : Param.t; (* out_dim x in_dim, row-major *)
  b : Param.t; (* out_dim *)
  mutable cache_input : float array;
  mutable cache_batch : int;
  mutable scratch_out : float array; (* grow-only forward output *)
  mutable scratch_din : float array; (* grow-only backward d(input) *)
}

let create rng ~name ~in_dim ~out_dim =
  {
    in_dim;
    out_dim;
    w =
      Param.xavier rng ~name:(name ^ ".w") ~fan_in:in_dim ~fan_out:out_dim
        (in_dim * out_dim);
    b = Param.create ~name:(name ^ ".b") out_dim;
    cache_input = [||];
    cache_batch = 0;
    scratch_out = [||];
    scratch_din = [||];
  }

let params t = [ t.w; t.b ]

(* Forward-only copy for another domain: parameters are shared (reads only),
   the per-forward caches and scratch buffers are private. *)
let replicate t =
  { t with cache_input = [||]; cache_batch = 0; scratch_out = [||]; scratch_din = [||] }

let[@inline] grown buf need = if Array.length buf < need then Array.make need 0.0 else buf

let forward t ~batch (input : float array) =
  if Array.length input < batch * t.in_dim then
    invalid_arg "Linear.forward: input size mismatch";
  t.cache_input <- input;
  t.cache_batch <- batch;
  t.scratch_out <- grown t.scratch_out (batch * t.out_dim);
  let out = t.scratch_out in
  for n = 0 to batch - 1 do
    let ib = n * t.in_dim and ob = n * t.out_dim in
    for o = 0 to t.out_dim - 1 do
      let acc = ref t.b.Param.data.(o) in
      let wb = o * t.in_dim in
      for i = 0 to t.in_dim - 1 do
        acc := !acc +. (t.w.Param.data.(wb + i) *. input.(ib + i))
      done;
      out.(ob + o) <- !acc
    done
  done;
  out

(* Blocked batched GEMM over strided row views with the bias add and an
   optional trailing ReLU fused in — the inference VM's Gemm instruction
   (DESIGN.md §14).  Per-cell accumulation is exactly [forward]'s: seeded
   with the bias, then the full input extent in ascending order into one
   accumulator, so results are bitwise-equal to forward(-then-relu) on the
   eager path.  Tiling covers batch rows only (four row accumulators share
   one streamed weight row); the reduction dimension is never split, which
   is what keeps the identity exact.  Forward-only: no caching, and zero
   allocation. *)
let forward_into t ~batch ~src ~src_off ~src_stride ~dst ~dst_off ~dst_stride ~relu =
  if batch > 0 then begin
    let id = t.in_dim and od = t.out_dim in
    if
      src_off < 0 || dst_off < 0
      || Array.length src < src_off + ((batch - 1) * src_stride) + id
      || Array.length dst < dst_off + ((batch - 1) * dst_stride) + od
    then invalid_arg "Linear.forward_into: view out of bounds";
    let w = t.w.Param.data and bias = t.b.Param.data in
    let n = ref 0 in
    while !n + 4 <= batch do
      let s0 = src_off + (!n * src_stride) in
      let s1 = s0 + src_stride in
      let s2 = s1 + src_stride in
      let s3 = s2 + src_stride in
      let d0 = dst_off + (!n * dst_stride) in
      let d1 = d0 + dst_stride in
      let d2 = d1 + dst_stride in
      let d3 = d2 + dst_stride in
      for o = 0 to od - 1 do
        let wb = o * id in
        let b0 = Array.unsafe_get bias o in
        let a0 = ref b0 and a1 = ref b0 and a2 = ref b0 and a3 = ref b0 in
        for i = 0 to id - 1 do
          let wv = Array.unsafe_get w (wb + i) in
          a0 := !a0 +. (wv *. Array.unsafe_get src (s0 + i));
          a1 := !a1 +. (wv *. Array.unsafe_get src (s1 + i));
          a2 := !a2 +. (wv *. Array.unsafe_get src (s2 + i));
          a3 := !a3 +. (wv *. Array.unsafe_get src (s3 + i))
        done;
        if relu then begin
          Array.unsafe_set dst (d0 + o) (if !a0 > 0.0 then !a0 else 0.0);
          Array.unsafe_set dst (d1 + o) (if !a1 > 0.0 then !a1 else 0.0);
          Array.unsafe_set dst (d2 + o) (if !a2 > 0.0 then !a2 else 0.0);
          Array.unsafe_set dst (d3 + o) (if !a3 > 0.0 then !a3 else 0.0)
        end
        else begin
          Array.unsafe_set dst (d0 + o) !a0;
          Array.unsafe_set dst (d1 + o) !a1;
          Array.unsafe_set dst (d2 + o) !a2;
          Array.unsafe_set dst (d3 + o) !a3
        end
      done;
      n := !n + 4
    done;
    while !n < batch do
      let sb = src_off + (!n * src_stride) in
      let db = dst_off + (!n * dst_stride) in
      for o = 0 to od - 1 do
        let wb = o * id in
        let acc = ref (Array.unsafe_get bias o) in
        for i = 0 to id - 1 do
          acc := !acc +. (Array.unsafe_get w (wb + i) *. Array.unsafe_get src (sb + i))
        done;
        Array.unsafe_set dst (db + o) (if relu && not (!acc > 0.0) then 0.0 else !acc)
      done;
      incr n
    done
  end

(* Accumulates dW, db; returns d(input) in this instance's scratch buffer
   (valid prefix = batch * in_dim, valid until the next backward). *)
let backward t (dout : float array) =
  let batch = t.cache_batch in
  if Array.length dout < batch * t.out_dim then
    invalid_arg "Linear.backward: dout size mismatch";
  let input = t.cache_input in
  t.scratch_din <- grown t.scratch_din (batch * t.in_dim);
  let din = t.scratch_din in
  Array.fill din 0 (batch * t.in_dim) 0.0;
  for n = 0 to batch - 1 do
    let ib = n * t.in_dim and ob = n * t.out_dim in
    for o = 0 to t.out_dim - 1 do
      let g = dout.(ob + o) in
      if g <> 0.0 then begin
        let wb = o * t.in_dim in
        t.b.Param.grad.(o) <- t.b.Param.grad.(o) +. g;
        for i = 0 to t.in_dim - 1 do
          t.w.Param.grad.(wb + i) <- t.w.Param.grad.(wb + i) +. (g *. input.(ib + i));
          din.(ib + i) <- din.(ib + i) +. (g *. t.w.Param.data.(wb + i))
        done
      end
    done
  done;
  din
