(* Fully-connected layer over a batch of row vectors, with a hand-written
   backward pass.  Forward caches its input; call backward at most once per
   forward (the trainer's pattern).

   Forward/backward write into grow-only per-instance scratch buffers; the
   returned arrays are valid until the next call on the same instance and may
   be longer than the valid batch extent (DESIGN.md §9). *)

type t = {
  in_dim : int;
  out_dim : int;
  w : Param.t; (* out_dim x in_dim, row-major *)
  b : Param.t; (* out_dim *)
  mutable cache_input : float array;
  mutable cache_batch : int;
  mutable scratch_out : float array; (* grow-only forward output *)
  mutable scratch_din : float array; (* grow-only backward d(input) *)
}

let create rng ~name ~in_dim ~out_dim =
  {
    in_dim;
    out_dim;
    w =
      Param.xavier rng ~name:(name ^ ".w") ~fan_in:in_dim ~fan_out:out_dim
        (in_dim * out_dim);
    b = Param.create ~name:(name ^ ".b") out_dim;
    cache_input = [||];
    cache_batch = 0;
    scratch_out = [||];
    scratch_din = [||];
  }

let params t = [ t.w; t.b ]

(* Forward-only copy for another domain: parameters are shared (reads only),
   the per-forward caches and scratch buffers are private. *)
let replicate t =
  { t with cache_input = [||]; cache_batch = 0; scratch_out = [||]; scratch_din = [||] }

let[@inline] grown buf need = if Array.length buf < need then Array.make need 0.0 else buf

let forward t ~batch (input : float array) =
  if Array.length input < batch * t.in_dim then
    invalid_arg "Linear.forward: input size mismatch";
  t.cache_input <- input;
  t.cache_batch <- batch;
  t.scratch_out <- grown t.scratch_out (batch * t.out_dim);
  let out = t.scratch_out in
  for n = 0 to batch - 1 do
    let ib = n * t.in_dim and ob = n * t.out_dim in
    for o = 0 to t.out_dim - 1 do
      let acc = ref t.b.Param.data.(o) in
      let wb = o * t.in_dim in
      for i = 0 to t.in_dim - 1 do
        acc := !acc +. (t.w.Param.data.(wb + i) *. input.(ib + i))
      done;
      out.(ob + o) <- !acc
    done
  done;
  out

(* Accumulates dW, db; returns d(input) in this instance's scratch buffer
   (valid prefix = batch * in_dim, valid until the next backward). *)
let backward t (dout : float array) =
  let batch = t.cache_batch in
  if Array.length dout < batch * t.out_dim then
    invalid_arg "Linear.backward: dout size mismatch";
  let input = t.cache_input in
  t.scratch_din <- grown t.scratch_din (batch * t.in_dim);
  let din = t.scratch_din in
  Array.fill din 0 (batch * t.in_dim) 0.0;
  for n = 0 to batch - 1 do
    let ib = n * t.in_dim and ob = n * t.out_dim in
    for o = 0 to t.out_dim - 1 do
      let g = dout.(ob + o) in
      if g <> 0.0 then begin
        let wb = o * t.in_dim in
        t.b.Param.grad.(o) <- t.b.Param.grad.(o) +. g;
        for i = 0 to t.in_dim - 1 do
          t.w.Param.grad.(wb + i) <- t.w.Param.grad.(wb + i) +. (g *. input.(ib + i));
          din.(ib + i) <- din.(ib + i) +. (g *. t.w.Param.data.(wb + i))
        done
      end
    done
  done;
  din
