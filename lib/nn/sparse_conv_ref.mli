(** Reference (pre-flat-layout) sparse-conv kernel-map builder and allocating
    forward/backward: boxed coordinate pairs, polymorphic-keyed [Hashtbl],
    list consing.  Retained verbatim as the parity oracle for
    [test/test_perf.ml] and the baseline side of [bench kernels]; the
    pipeline itself uses {!Sparse_conv}. *)

type kernel_map = {
  out_coords : (int * int) array;
  out_h : int;
  out_w : int;
  pairs : (int * int) array array;
      (** per kernel offset: [(in_idx, out_idx)], descending [in_idx] *)
}

val build_map :
  ksize:int -> stride:int -> (int * int) array -> h:int -> w:int -> kernel_map

val forward_feats :
  kernel_map -> in_ch:int -> out_ch:int -> w:float array -> b:float array ->
  float array -> float array
(** Fresh output array per call (the pre-scratch behavior). *)

val backward_feats :
  kernel_map -> in_ch:int -> out_ch:int -> w:float array -> wgrad:float array ->
  bgrad:float array -> input_feats:float array -> nsites_in:int ->
  float array -> float array
(** Accumulates into [wgrad]/[bgrad]; returns fresh d(input feats). *)
