(** Elementwise activations with cached masks.

    Results live in grow-only per-instance scratch buffers: valid until the
    next call on the same instance, possibly longer than the valid length
    (DESIGN.md §9). *)

type relu

val relu_create : unit -> relu

val relu_forward : ?n:int -> relu -> float array -> float array
(** ReLU over the first [n] elements (default: the whole input).  The result
    is this instance's scratch buffer. *)

val relu_backward : relu -> float array -> float array
(** Requires a preceding [relu_forward]; masks [dout] by it.  The result is
    this instance's scratch buffer (valid prefix = the forward's [n]). *)
