(* A stack of Linear layers with ReLU between them (and optionally after the
   last one) — the "multiple linear-ReLU layers" building block the paper's
   cost model uses everywhere (Figs. 6, 9, 11). *)

type t = {
  linears : Linear.t array;
  relus : Act.relu array; (* one per activated layer *)
  final_relu : bool;
}

let create rng ~name ~dims ~final_relu =
  let n = Array.length dims - 1 in
  if n < 1 then invalid_arg "Mlp.create: need at least one layer";
  let linears =
    Array.init n (fun l ->
        Linear.create rng
          ~name:(Printf.sprintf "%s.%d" name l)
          ~in_dim:dims.(l) ~out_dim:dims.(l + 1))
  in
  let n_act = if final_relu then n else n - 1 in
  { linears; relus = Array.init n_act (fun _ -> Act.relu_create ()); final_relu }

let params t =
  Array.to_list t.linears |> List.concat_map Linear.params

(* Forward-only copy for another domain: shared parameters, private caches. *)
let replicate t =
  {
    linears = Array.map Linear.replicate t.linears;
    relus = Array.map (fun _ -> Act.relu_create ()) t.relus;
    final_relu = t.final_relu;
  }

let out_dim t = t.linears.(Array.length t.linears - 1).Linear.out_dim

let in_dim t = t.linears.(0).Linear.in_dim

let layers t = t.linears

let relu_after t l = l < Array.length t.relus

let forward t ~batch x =
  (* Width guard: a caller whose row builder disagrees with the stack's
     input width (e.g. rows missing a kernel-conditioning slot) must fail
     here, loudly, not mis-slice its way to plausible garbage.  Longer is
     fine — callers may hand over grow-only scratch buffers. *)
  if Array.length x < batch * in_dim t then
    invalid_arg
      (Printf.sprintf "Mlp.forward: %d floats for batch %d of width %d"
         (Array.length x) batch (in_dim t));
  let n = Array.length t.linears in
  let cur = ref x in
  for l = 0 to n - 1 do
    cur := Linear.forward t.linears.(l) ~batch !cur;
    if l < Array.length t.relus then
      (* Linear returns a grow-only scratch buffer; only the batch prefix is
         meaningful. *)
      cur :=
        Act.relu_forward ~n:(batch * t.linears.(l).Linear.out_dim) t.relus.(l) !cur
  done;
  !cur

let backward t dout =
  let n = Array.length t.linears in
  let cur = ref dout in
  for l = n - 1 downto 0 do
    if l < Array.length t.relus then cur := Act.relu_backward t.relus.(l) !cur;
    cur := Linear.backward t.linears.(l) !cur
  done;
  !cur
