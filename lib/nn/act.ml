(* Elementwise activations with cached masks.

   Forward/backward write into grow-only per-instance scratch buffers: the
   returned arrays are valid until the next call on the same instance and may
   be longer than the valid length [n] (DESIGN.md §9). *)

type relu = {
  mutable mask : bool array; (* grow-only; valid prefix = n *)
  mutable n : int;
  mutable out : float array; (* grow-only forward scratch *)
  mutable din : float array; (* grow-only backward scratch *)
}

let relu_create () = { mask = [||]; n = 0; out = [||]; din = [||] }

let relu_forward ?n t (x : float array) =
  let n = match n with Some n -> n | None -> Array.length x in
  if Array.length x < n then invalid_arg "Act.relu_forward: input too short";
  if Array.length t.mask < n then begin
    t.mask <- Array.make n false;
    t.out <- Array.make n 0.0
  end;
  let mask = t.mask and out = t.out in
  for i = 0 to n - 1 do
    if x.(i) > 0.0 then begin
      mask.(i) <- true;
      out.(i) <- x.(i)
    end
    else begin
      mask.(i) <- false;
      out.(i) <- 0.0
    end
  done;
  t.n <- n;
  out

let relu_backward t (dout : float array) =
  if Array.length dout < t.n then invalid_arg "Act.relu_backward: size mismatch";
  if Array.length t.din < t.n then t.din <- Array.make t.n 0.0;
  let din = t.din and mask = t.mask in
  for i = 0 to t.n - 1 do
    din.(i) <- (if mask.(i) then dout.(i) else 0.0)
  done;
  din
