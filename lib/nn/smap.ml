(* A sparse 2-D feature map: the activation type flowing through WACONet.
   Sites are the nonzero coordinates; each carries a [channels]-vector of
   features stored site-major in [feats].

   Coordinates are stored flat: site [i] lives at row [coords.(i) / w],
   column [coords.(i) mod w].  One unboxed int per site instead of a boxed
   (int * int) pair keeps the conv kernel-map builder and every coordinate
   walk cache-friendly and allocation-free (see DESIGN.md §9). *)

type t = {
  h : int;
  w : int;
  coords : int array; (* encoded row * w + col *)
  channels : int;
  feats : float array; (* valid prefix = nsites * channels *)
}

let nsites t = Array.length t.coords

let encode ~w r c = (r * w) + c

let decode ~w k = (k / w, k mod w)

let row t i = t.coords.(i) / t.w

let col t i = t.coords.(i) mod t.w

let coord t i = (row t i, col t i)

(* Compat constructor for call sites (tests, mostly) that think in pairs. *)
let of_pairs ~h ~w ~channels (pairs : (int * int) array) feats =
  { h; w; coords = Array.map (fun (r, c) -> encode ~w r c) pairs; channels; feats }

let coords_pairs t = Array.init (nsites t) (coord t)

(* Build the single-channel input map of a sparsity pattern: one site per
   nonzero, feature 1.0 (the paper feeds the raw pattern; values don't affect
   the format/schedule choice).

   [max_sites] caps the site count by deterministic uniform subsampling of
   the *raw coordinates* — unlike grid downsampling this keeps exact
   positions, so global structure and block alignment survive; it is the
   CPU-budget stand-in for the paper's GPU capacity (they cap at 10M nnz). *)
let default_max_sites = 8192

let of_coo ?(max_sites = default_max_sites) (m : Sptensor.Coo.t) =
  let n = Sptensor.Coo.nnz m in
  let keep =
    if n <= max_sites then Array.init n (fun k -> k)
    else begin
      let rng = Sptensor.Rng.create (n lxor 0x5eed) in
      let idx = Sptensor.Rng.permutation rng n in
      let sub = Array.sub idx 0 max_sites in
      Array.sort Int.compare sub;
      sub
    end
  in
  let w = m.Sptensor.Coo.ncols in
  let coords =
    Array.map
      (fun k -> encode ~w m.Sptensor.Coo.rows.(k) m.Sptensor.Coo.cols.(k))
      keep
  in
  {
    h = m.Sptensor.Coo.nrows;
    w;
    coords;
    channels = 1;
    feats = Array.make (Array.length coords) 1.0;
  }

(* Downsample a pattern onto a target x target dense grid, every cell a site
   with feature log1p(count) — the DenseConv baseline's input (§3.2.1: the
   conventional-CNN approach downsamples to a fixed shape and loses local
   pattern information).  All grid cells are sites, so the submanifold
   convolution over this map *is* a dense convolution. *)
let downsample (m : Sptensor.Coo.t) ~target =
  let counts = Array.make (target * target) 0 in
  let si = float_of_int target /. float_of_int (max 1 m.Sptensor.Coo.nrows) in
  let sj = float_of_int target /. float_of_int (max 1 m.Sptensor.Coo.ncols) in
  Sptensor.Coo.iter
    (fun i j _ ->
      let di = min (target - 1) (int_of_float (float_of_int i *. si)) in
      let dj = min (target - 1) (int_of_float (float_of_int j *. sj)) in
      counts.((di * target) + dj) <- counts.((di * target) + dj) + 1)
    m;
  {
    h = target;
    w = target;
    (* Cell (k / target, k mod target) encodes to exactly k. *)
    coords = Array.init (target * target) (fun k -> k);
    channels = 1;
    feats = Array.map (fun c -> log (1.0 +. float_of_int c)) counts;
  }

(* A 3-D tensor enters the 2-D pipeline through its mode-0 flattening, the
   same simplification SpTFS applies for MTTKRP workloads. *)
let of_tensor3 (t : Sptensor.Tensor3.t) = of_coo (Sptensor.Tensor3.flatten t)
