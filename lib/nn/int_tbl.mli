(** Open-addressing int -> int hash table over nonnegative keys (two flat int
    arrays, linear probing): zero allocation on the lookup path and fully
    deterministic — the coordinate table behind {!Sparse_conv.build_map}. *)

type t

val create : int -> t
(** [create hint] sizes the table for about [hint] entries (it grows as
    needed).  Keys must be [>= 0]; values may be any int, but [find]'s
    conventional [-1] default is only unambiguous for nonnegative values. *)

val find : t -> int -> default:int -> int
(** The value bound to the key, or [default].  Allocates nothing. *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Insert or replace: the newest binding wins (like [Hashtbl.add] followed by
    [Hashtbl.find_opt]). *)
