(* Open-addressing int -> int hash table over nonnegative keys: the
   allocation-lean replacement for the polymorphic [(int * int, int) Hashtbl]
   that [Sparse_conv.build_map] used to key by coordinate pairs.  Two flat int
   arrays, linear probing, no boxing anywhere on the lookup path, and fully
   deterministic (no seeding), so table users keep byte-identical iteration
   behaviour across runs. *)

type t = {
  mutable keys : int array; (* -1 = empty slot *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create hint =
  let cap = pow2_at_least (max 16 (2 * hint)) 16 in
  { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; count = 0 }

(* Multiply-shift mixing: the multiply pushes entropy high, the xor-shift
   folds it back into the masked low bits.  Quality matters little under
   linear probing; determinism and zero allocation do. *)
let[@inline] slot t k =
  let h = k * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 21)) land t.mask

let find t k ~default =
  let i = ref (slot t k) in
  let res = ref default in
  let continue = ref true in
  while !continue do
    let kk = t.keys.(!i) in
    if kk = k then begin
      res := t.vals.(!i);
      continue := false
    end
    else if kk = -1 then continue := false
    else i := (!i + 1) land t.mask
  done;
  !res

let mem t k = find t k ~default:(-1) >= 0

let rec set t k v =
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let i = ref (slot t k) in
  let continue = ref true in
  while !continue do
    let kk = t.keys.(!i) in
    if kk = k then begin
      (* Replace: the newest binding wins, matching Hashtbl.add+find_opt. *)
      t.vals.(!i) <- v;
      continue := false
    end
    else if kk = -1 then begin
      t.keys.(!i) <- k;
      t.vals.(!i) <- v;
      t.count <- t.count + 1;
      continue := false
    end
    else i := (!i + 1) land t.mask
  done

and grow t =
  let okeys = t.keys and ovals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.count <- 0;
  Array.iteri (fun i k -> if k >= 0 then set t k ovals.(i)) okeys
