(* Adam optimizer (Kingma & Ba) over a flat list of parameters — the paper
   trains its cost model with Adam at learning rate 1e-4 (§4.1.3). *)

type t = {
  params : Param.t list;
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  m : float array list;
  v : float array list;
  mutable step_count : int;
}

let create ?(lr = 1e-4) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) params =
  {
    params;
    lr;
    beta1;
    beta2;
    eps;
    m = List.map (fun p -> Array.make (Param.size p) 0.0) params;
    v = List.map (fun p -> Array.make (Param.size p) 0.0) params;
    step_count = 0;
  }

(* Optimizer-state capture/restore, for training checkpoints: resuming Adam
   without its moments would restart the bias-corrected warmup and diverge
   from the uninterrupted run. *)
let export_state t = (t.m, t.v, t.step_count)

let import_state t ~m ~v ~step_count =
  let blit_all src dst =
    try
      List.iter2
        (fun s d ->
          if Array.length s <> Array.length d then
            invalid_arg "Adam.import_state: moment size mismatch";
          Array.blit s 0 d 0 (Array.length s))
        src dst
    with Invalid_argument _ -> invalid_arg "Adam.import_state: moment shape mismatch"
  in
  blit_all m t.m;
  blit_all v t.v;
  if step_count < 0 then invalid_arg "Adam.import_state: negative step count";
  t.step_count <- step_count

(* Apply one update from the accumulated gradients, then clear them. *)
let step t =
  t.step_count <- t.step_count + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step_count) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step_count) in
  List.iter2
    (fun p (m, v) ->
      let g = p.Param.grad and d = p.Param.data in
      for i = 0 to Array.length d - 1 do
        m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. g.(i));
        v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. g.(i) *. g.(i));
        let mh = m.(i) /. bc1 and vh = v.(i) /. bc2 in
        d.(i) <- d.(i) -. (t.lr *. mh /. (sqrt vh +. t.eps))
      done)
    t.params
    (List.combine t.m t.v);
  Param.zero_grads t.params
