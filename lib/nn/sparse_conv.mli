(** Submanifold sparse convolution (Graham & van der Maaten), the layer
    WACONet is built from: [out\[o\] = bias + sum_d W_d * in\[stride*o + d\]]
    with only present sites contributing.  Stride 1 keeps the site set
    (submanifold — activations never dilate); stride 2 halves coordinates,
    which is what lets stacked strided layers bridge distant nonzeros
    (Fig. 8).

    The kernel map is a flat structure-of-arrays: CSR-style [off_start]
    segment bounds over two parallel int arrays, one segment per kernel
    offset.  Per-offset pair order matches the historical boxed-pair builder
    exactly (descending input index), so float accumulation order — and
    trained model artifacts — are byte-identical (test/test_perf.ml). *)

type kernel_map = {
  out_coords : int array;  (** encoded [row * out_w + col] *)
  out_h : int;
  out_w : int;
  off_start : int array;
      (** length [ksize^2 + 1]: pairs of kernel offset [o] occupy
          [off_start.(o) .. off_start.(o+1) - 1] of the pair arrays *)
  pairs_in : int array;  (** input site index per pair *)
  pairs_out : int array;  (** output site index per pair *)
}

val map_npairs : kernel_map -> int
(** Total (input site, output site) pairs across all kernel offsets. *)

type t = {
  in_ch : int;
  out_ch : int;
  ksize : int;
  stride : int;
  w : Param.t;  (** [ksize^2] x out_ch x in_ch *)
  b : Param.t;
  mutable cache_map : kernel_map option;
  mutable cache_in : float array;  (** grow-only; valid prefix below *)
  mutable cache_in_valid : int;
  mutable cache_nsites_out : int;
  mutable scratch_out : float array;  (** grow-only forward output *)
  mutable scratch_din : float array;  (** grow-only backward d(input) *)
}

val create :
  Sptensor.Rng.t -> name:string -> in_ch:int -> out_ch:int -> ksize:int ->
  stride:int -> t
(** Kernel size must be odd.  Biases start slightly positive so narrow deep
    layers don't go dead once the pyramid shrinks to a few sites. *)

val params : t -> Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches and
    scratch buffers. *)

val build_map : ksize:int -> stride:int -> int array -> h:int -> w:int -> kernel_map
(** Kernel maps depend only on coordinates (flat-encoded, {!Smap.encode});
    build once per pattern and reuse across epochs (see {!Pyramid}). *)

val forward_with_map : t -> kernel_map -> Smap.t -> Smap.t
(** Forward over a prebuilt kernel map (the cached-pyramid fast path).  The
    result's [feats] is this instance's scratch buffer: valid until the next
    forward on the same instance; copy to retain. *)

val forward : t -> Smap.t -> Smap.t
(** Convenience: builds the map, then [forward_with_map]. *)

val backward : t -> float array -> float array
(** Accumulates dW, db from d(output feats); returns d(input feats) in this
    instance's scratch buffer (valid prefix = cached input size, valid until
    the next backward on the same instance).  Requires a preceding forward. *)
