(** Submanifold sparse convolution (Graham & van der Maaten), the layer
    WACONet is built from: [out\[o\] = bias + sum_d W_d * in\[stride*o + d\]]
    with only present sites contributing.  Stride 1 keeps the site set
    (submanifold — activations never dilate); stride 2 halves coordinates,
    which is what lets stacked strided layers bridge distant nonzeros
    (Fig. 8). *)

type kernel_map = {
  out_coords : (int * int) array;
  out_h : int;
  out_w : int;
  pairs : (int * int) array array;
      (** per kernel offset: (input site, output site) pairs *)
}

type t = {
  in_ch : int;
  out_ch : int;
  ksize : int;
  stride : int;
  w : Param.t;  (** [ksize^2] x out_ch x in_ch *)
  b : Param.t;
  mutable cache_map : kernel_map option;
  mutable cache_in : float array;
  mutable cache_nsites_out : int;
}

val create :
  Sptensor.Rng.t -> name:string -> in_ch:int -> out_ch:int -> ksize:int ->
  stride:int -> t
(** Kernel size must be odd.  Biases start slightly positive so narrow deep
    layers don't go dead once the pyramid shrinks to a few sites. *)

val params : t -> Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches. *)

val build_map :
  ksize:int -> stride:int -> (int * int) array -> h:int -> w:int -> kernel_map
(** Kernel maps depend only on coordinates; build once per pattern and reuse
    across epochs (see {!Pyramid}). *)

val forward_with_map : t -> kernel_map -> Smap.t -> Smap.t
(** Forward over a prebuilt kernel map (the cached-pyramid fast path). *)

val forward : t -> Smap.t -> Smap.t
(** Convenience: builds the map, then [forward_with_map]. *)

val backward : t -> float array -> float array
(** Accumulates dW, db from d(output feats); returns d(input feats).
    Requires a preceding forward. *)
