(** A stack of Linear layers with ReLU between them (and optionally after the
    last) — the "multiple linear-ReLU layers" building block used throughout
    the paper's cost model (Figs. 6, 9, 11). *)

type t

val create :
  Sptensor.Rng.t -> name:string -> dims:int array -> final_relu:bool -> t
(** [dims] are layer widths, e.g. [\[|in; hidden; out|\]]. *)

val params : t -> Param.t list

val replicate : t -> t
(** Forward-only copy for concurrent use on another domain: shares the
    parameters (which must not be updated meanwhile), owns fresh caches. *)

val out_dim : t -> int

val in_dim : t -> int

val layers : t -> Linear.t array
(** The underlying linear layers in forward order — read-only structural
    access for the inference VM's plan compiler (DESIGN.md §14). *)

val relu_after : t -> int -> bool
(** Whether the forward path applies a ReLU after layer [l] (always true for
    hidden layers; [final_relu] for the last). *)

val forward : t -> batch:int -> float array -> float array

val backward : t -> float array -> float array
(** Returns d(input); call once per forward. *)
