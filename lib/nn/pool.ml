(* Global average pooling over a sparse feature map: mean per channel across
   sites.  WACONet pools after *every* layer and concatenates the results to
   compensate for its narrow channel width (Fig. 9).

   Results live in grow-only per-instance scratch buffers, valid until the
   next call on the same instance (DESIGN.md §9). *)

type t = {
  mutable nsites : int;
  mutable channels : int;
  mutable out : float array; (* grow-only forward scratch *)
  mutable din : float array; (* grow-only backward scratch *)
}

let create () = { nsites = 0; channels = 0; out = [||]; din = [||] }

let[@inline] grown buf need = if Array.length buf < need then Array.make need 0.0 else buf

let forward t (m : Smap.t) =
  let n = Smap.nsites m and c = m.Smap.channels in
  t.nsites <- n;
  t.channels <- c;
  t.out <- grown t.out c;
  let out = t.out in
  Array.fill out 0 c 0.0;
  if n > 0 then begin
    for s = 0 to n - 1 do
      for ch = 0 to c - 1 do
        out.(ch) <- out.(ch) +. m.Smap.feats.((s * c) + ch)
      done
    done;
    let scale = 1.0 /. float_of_int n in
    for ch = 0 to c - 1 do
      out.(ch) <- out.(ch) *. scale
    done
  end;
  out

(* d(feats) from d(pooled); pure assignment over the valid prefix, so no
   zero-fill of the scratch is needed. *)
let backward t (dout : float array) =
  if Array.length dout < t.channels then invalid_arg "Pool.backward: size mismatch";
  let n = t.nsites and c = t.channels in
  t.din <- grown t.din (n * c);
  let din = t.din in
  if n > 0 then begin
    let scale = 1.0 /. float_of_int n in
    for s = 0 to n - 1 do
      for ch = 0 to c - 1 do
        din.((s * c) + ch) <- dout.(ch) *. scale
      done
    done
  end;
  din
