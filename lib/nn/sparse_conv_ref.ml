(* Reference implementation of the sparse-conv kernel map and forward/backward
   — the pre-flat-layout boxed-pair builder, retained verbatim as the oracle
   for the parity tests (test/test_perf.ml) and the baseline side of
   `bench kernels`.  Not used by the pipeline. *)

type kernel_map = {
  out_coords : (int * int) array;
  out_h : int;
  out_w : int;
  pairs : (int * int) array array; (* per kernel offset: (in_idx, out_idx) *)
}

(* The historical builder: polymorphic-keyed Hashtbl, list consing per offset
   (hence descending input-index order within each offset). *)
let build_map ~ksize ~stride (coords : (int * int) array) ~h ~w =
  let half = ksize / 2 in
  let n = Array.length coords in
  let out_h = (h + stride - 1) / stride and out_w = (w + stride - 1) / stride in
  let tbl = Hashtbl.create (2 * n) in
  let out_coords =
    if stride = 1 then begin
      Array.iteri (fun idx (r, c) -> Hashtbl.add tbl (r, c) idx) coords;
      coords
    end
    else begin
      let out = ref [] in
      let count = ref 0 in
      Array.iter
        (fun (r, c) ->
          let key = (r / stride, c / stride) in
          if not (Hashtbl.mem tbl key) then begin
            Hashtbl.add tbl key !count;
            out := key :: !out;
            incr count
          end)
        coords;
      Array.of_list (List.rev !out)
    end
  in
  let nk = ksize * ksize in
  let buckets = Array.make nk [] in
  Array.iteri
    (fun i (r, c) ->
      for dy = -half to half do
        for dx = -half to half do
          let tr = r - dy and tc = c - dx in
          if tr >= 0 && tc >= 0 && tr mod stride = 0 && tc mod stride = 0 then
            match Hashtbl.find_opt tbl (tr / stride, tc / stride) with
            | Some out_idx ->
                let off = ((dy + half) * ksize) + dx + half in
                buckets.(off) <- (i, out_idx) :: buckets.(off)
            | None -> ()
        done
      done)
    coords;
  { out_coords; out_h; out_w; pairs = Array.map Array.of_list buckets }

(* Allocating forward over explicit weights: out[ob..] = b + sum W*in, fresh
   output array per call — the pre-scratch behavior. *)
let forward_feats (map : kernel_map) ~in_ch ~out_ch ~(w : float array)
    ~(b : float array) (input_feats : float array) =
  let n_out = Array.length map.out_coords in
  let out = Array.make (n_out * out_ch) 0.0 in
  for s = 0 to n_out - 1 do
    for o = 0 to out_ch - 1 do
      out.((s * out_ch) + o) <- b.(o)
    done
  done;
  Array.iteri
    (fun off bucket ->
      let wbase = off * out_ch * in_ch in
      Array.iter
        (fun (in_idx, out_idx) ->
          let ib = in_idx * in_ch and ob = out_idx * out_ch in
          for o = 0 to out_ch - 1 do
            let wrow = wbase + (o * in_ch) in
            let acc = ref 0.0 in
            for i = 0 to in_ch - 1 do
              acc := !acc +. (w.(wrow + i) *. input_feats.(ib + i))
            done;
            out.(ob + o) <- out.(ob + o) +. !acc
          done)
        bucket)
    map.pairs;
  out

(* Allocating backward: accumulates into wgrad/bgrad, returns fresh din. *)
let backward_feats (map : kernel_map) ~in_ch ~out_ch ~(w : float array)
    ~(wgrad : float array) ~(bgrad : float array) ~(input_feats : float array)
    ~(nsites_in : int) (dout : float array) =
  let n_out = Array.length map.out_coords in
  let din = Array.make (nsites_in * in_ch) 0.0 in
  for s = 0 to n_out - 1 do
    for o = 0 to out_ch - 1 do
      bgrad.(o) <- bgrad.(o) +. dout.((s * out_ch) + o)
    done
  done;
  Array.iteri
    (fun off bucket ->
      let wbase = off * out_ch * in_ch in
      Array.iter
        (fun (in_idx, out_idx) ->
          let ib = in_idx * in_ch and ob = out_idx * out_ch in
          for o = 0 to out_ch - 1 do
            let g = dout.(ob + o) in
            if g <> 0.0 then begin
              let wrow = wbase + (o * in_ch) in
              for i = 0 to in_ch - 1 do
                wgrad.(wrow + i) <- wgrad.(wrow + i) +. (g *. input_feats.(ib + i));
                din.(ib + i) <- din.(ib + i) +. (g *. w.(wrow + i))
              done
            end
          done)
        bucket)
    map.pairs;
  din
