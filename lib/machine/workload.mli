(** A workload: one sparse operand plus memoized derived statistics.  The
    simulator evaluates many SuperSchedules against the same operand, so
    per-format storage analyses and per-dimension histograms are cached. *)

open Sptensor

type t = {
  id : string;
  dims : int array;
  nnz : int;
  entries : (int array * float) array;
  counts : int array array;
      (** [counts.(d).(x)] = nonzeros with logical coordinate [x] on dim [d] *)
  storage_cache : (string, Format_abs.Storage_model.t) Hashtbl.t;
  kernel_work_cache : (string, float array) Hashtbl.t;
      (** per-(kernel, parallel-variable) weighted work distributions,
          see {!kernel_work} *)
  cache_lock : Mutex.t;
      (** guards [storage_cache]: the parallel measurement paths share one
          workload across domains *)
}

val build : id:string -> dims:int array -> entries:(int array * float) array -> t

val of_coo : ?id:string -> Coo.t -> t

val of_tensor3 : ?id:string -> Tensor3.t -> t

val spec_key : Format_abs.Spec.t -> string
(** Memoization key of the format part of a spec. *)

val storage : t -> Format_abs.Spec.t -> Format_abs.Storage_model.t
(** Cached analytic storage of this workload under a format. *)

val work_per_var_value : t -> dim:int -> split:int -> is_top:bool -> int array
(** Nonzero count per value of a derived variable — the distribution the
    dynamic-scheduling simulation chunks up.  Top variables group [split]
    consecutive logical indices; bottoms stride across them. *)

val kernel_work :
  t ->
  algo:Schedule.Algorithm.t ->
  dim:int -> split:int -> is_top:bool ->
  float array
(** Per-kernel weighted work per value of the parallelized variable,
    memoized per (kernel, variable): nonzeros are weighted by the kernel's
    flops-per-entry, and when [dim] is the dense-output dimension (dim 0;
    not SDDMM, whose output is sparse) each owned logical index adds its
    output-write cost.  For [dim <> 0] this is a pure scaling of
    {!work_per_var_value}, so the chunk {e shares} — and hence the simulated
    makespan — coincide with the unweighted model there. *)
