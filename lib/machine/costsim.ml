(* Analytic cost simulator: the reproduction's stand-in for running
   TACO-generated code on real hardware.

   Given a machine, a workload and a SuperSchedule it derives the loop nest the
   schedule describes and prices it with:

   - a *work* model: FLOPs and per-slot overhead over the materialized value
     slots (so dense-blocked formats pay for their zero fill);
   - a *SIMD* model: vectorization kicks in when the innermost loop has a dense
     contiguous extent of at least [simd_threshold] (Fig. 14's icc heuristic);
   - a *memory* model: per-array reuse-distance analysis — for each dense
     operand, the innermost loop that does not index it carries its temporal
     reuse, and the total footprint of one iteration of that loop decides
     which cache level serves the reuse (this is what makes UUC sparse-block
     formats profitable on scattered matrices, §5.2.1);
   - a *discordance* model: traversal orders that disagree with the storage
     order pay a binary-search probe per access (§3.1);
   - a *parallelism* model: OpenMP dynamic scheduling is simulated chunk by
     chunk over the nonzero distribution of the parallelized variable, so
     skewed matrices need fine chunks while uniform matrices prefer coarse
     ones (Table 6's dominant factor).

   The absolute seconds are a model; the *ordering* of schedules — who wins,
   where the crossovers are — is what the experiments depend on. *)

open Schedule

type loop = {
  var : int; (* derived var id, or -1 for the dense inner loop *)
  trip : float; (* average trip count per enclosing iteration *)
  is_compressed : bool;
  dense_extent : int; (* static extent if dense (U or inner dense loop), else 0 *)
}

type breakdown = {
  seconds : float;
  serial_seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  search_seconds : float;
  makespan_seconds : float;
  dram_bytes : float;
  flops : float;
  vec_factor : float;
  nvals : float; (* materialized slots (incl. zero fill) *)
  discordant : int;
  threads_used : int;
}

(* Dense operand descriptor for the reuse model. *)
type darray = {
  aname : string;
  vars : int list; (* derived vars (and -1 for the dense loop) indexing it *)
  total_bytes : float;
  contiguous_var : int; (* var whose unit step is stride-1 in memory; -2 none *)
  is_output : bool;
}

let dense_arrays (algo : Algorithm.t) (dims : int array) =
  let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
  let fi = float_of_int in
  match algo with
  | Algorithm.Spmv ->
      [
        { aname = "x"; vars = [ top 1; bot 1 ]; total_bytes = 4.0 *. fi dims.(1);
          contiguous_var = bot 1; is_output = false };
        { aname = "y"; vars = [ top 0; bot 0 ]; total_bytes = 4.0 *. fi dims.(0);
          contiguous_var = bot 0; is_output = true };
      ]
  | Algorithm.Spmm jn ->
      [
        { aname = "B"; vars = [ top 1; bot 1; -1 ]; total_bytes = 4.0 *. fi dims.(1) *. fi jn;
          contiguous_var = -1; is_output = false };
        { aname = "C"; vars = [ top 0; bot 0; -1 ]; total_bytes = 4.0 *. fi dims.(0) *. fi jn;
          contiguous_var = -1; is_output = true };
      ]
  | Algorithm.Sddmm kn ->
      (* B row-major (contiguous in dense k), C column-major (contiguous in
         dense k): both stream their dense dimension innermost. *)
      [
        { aname = "B"; vars = [ top 0; bot 0; -1 ]; total_bytes = 4.0 *. fi dims.(0) *. fi kn;
          contiguous_var = -1; is_output = false };
        { aname = "C"; vars = [ top 1; bot 1; -1 ]; total_bytes = 4.0 *. fi dims.(1) *. fi kn;
          contiguous_var = -1; is_output = false };
      ]
  | Algorithm.Mttkrp jn ->
      [
        { aname = "B"; vars = [ top 1; bot 1; -1 ]; total_bytes = 4.0 *. fi dims.(1) *. fi jn;
          contiguous_var = -1; is_output = false };
        { aname = "C"; vars = [ top 2; bot 2; -1 ]; total_bytes = 4.0 *. fi dims.(2) *. fi jn;
          contiguous_var = -1; is_output = false };
        { aname = "D"; vars = [ top 0; bot 0; -1 ]; total_bytes = 4.0 *. fi dims.(0) *. fi jn;
          contiguous_var = -1; is_output = true };
      ]

(* Format of each derived var under A's format schedule. *)
let var_formats (spec : Format_abs.Spec.t) =
  let n = Format_abs.Spec.nlevels spec in
  let fmts = Array.make n Format_abs.Levelfmt.U in
  Array.iteri (fun lvl v -> fmts.(v) <- spec.Format_abs.Spec.formats.(lvl)) spec.Format_abs.Spec.order;
  fmts

(* The loop nest in compute order, with trip counts taken from a "virtual"
   storage analysis of the hierarchy reordered by the compute order (each
   variable keeps the U/C format its level has in A). *)
let loop_nest (wl : Workload.t) (s : Superschedule.t) (spec : Format_abs.Spec.t) =
  let vf = var_formats spec in
  let virt_spec =
    Format_abs.Spec.make ~dims:spec.Format_abs.Spec.dims
      ~splits:spec.Format_abs.Spec.splits ~order:s.Superschedule.compute_order
      ~formats:(Array.map (fun v -> vf.(v)) s.Superschedule.compute_order)
  in
  let virt = Workload.storage wl virt_spec in
  let loops =
    Array.mapi
      (fun lvl v ->
        let fmt = vf.(v) in
        let size = Format_abs.Spec.var_size virt_spec v in
        {
          var = v;
          trip = Float.max 1.0 virt.Format_abs.Storage_model.level_branching.(lvl);
          is_compressed = (fmt = Format_abs.Levelfmt.C);
          dense_extent = (if fmt = Format_abs.Levelfmt.U then size else 0);
        })
      s.Superschedule.compute_order
  in
  let dense = Algorithm.dense_inner s.Superschedule.algo in
  let loops =
    if dense > 0 then
      Array.append loops
        [| { var = -1; trip = float_of_int dense; is_compressed = false; dense_extent = dense } |]
    else loops
  in
  (loops, virt)

(* Spatial-locality multiplier on traffic: contiguous accesses move useful
   bytes only; scattered gathers drag whole cache lines. *)
let gather_factor (machine : Machine.t) (loops : loop array) (x : darray) =
  let line = float_of_int machine.Machine.cache_line in
  (* Innermost loop that indexes X. *)
  let rec innermost i =
    if i < 0 then None
    else if List.mem loops.(i).var x.vars then Some loops.(i)
    else innermost (i - 1)
  in
  match innermost (Array.length loops - 1) with
  | None -> 1.0
  | Some l ->
      if l.var = x.contiguous_var then
        if l.is_compressed then Float.min (line /. 4.0) 4.0 (* sorted gather *)
        else 1.0
      else line /. 4.0 (* full scatter *)

(* Hierarchical reuse-distance memory model (simplified Timeloop-style
   analysis).  For each array and each cache level:

   - [footprint x p] is the data of [x] touched by one full iteration of the
     loop at position [p] (product of the trips of inner loops indexing x);
   - the level's *fit position* is the outermost loop whose per-iteration
     total footprint (all arrays + A's streamed share) fits in the level;
   - misses into the level = that footprint, refetched once per iteration of
     every outer loop — but only when the accessed subset actually changes
     across those iterations: it does if an outer loop indexes x directly, or
     if an inner *compressed* loop indexes x (sparse gathers visit different
     coordinates under each outer iteration).

   This is what prices the paper's sparse-block (UUC) story: splitting the
   column dimension shrinks the dense operand's per-panel footprint below the
   LLC so its misses collapse from per-access to per-panel (§5.2.1, the
   sparsine 36%%->7%% LLC-miss example). *)
let memory_model (machine : Machine.t) (loops : loop array) ~(a_bytes : float)
    ~(body_count : float) (arrays : darray list) =
  let n = Array.length loops in
  let trip q = loops.(q).trip in
  (* Product of trips of loops strictly inside position p (p in [-1, n-1]). *)
  let inside p pred =
    let acc = ref 1.0 in
    for q = p + 1 to n - 1 do
      if pred q then acc := !acc *. trip q
    done;
    !acc
  in
  let in_x x q = List.mem loops.(q).var x.vars in
  let footprint x p = Float.min x.total_bytes (4.0 *. inside p (in_x x)) in
  let a_footprint p =
    if body_count <= 0.0 then 0.0 else a_bytes *. inside p (fun _ -> true) /. body_count
  in
  let total_footprint p =
    a_footprint p +. List.fold_left (fun acc x -> acc +. footprint x p) 0.0 arrays
  in
  (* Outermost position whose iteration footprint fits in [size]; [n] when
     even the innermost body does not fit (no temporal reuse captured). *)
  let fit_pos size =
    let rec go p = if p > n - 1 then n else if total_footprint p <= size then p else go (p + 1) in
    go (-1)
  in
  let iters_outside p =
    let acc = ref 1.0 in
    for q = 0 to min (n - 1) p do
      acc := !acc *. trip q
    done;
    !acc
  in
  let subset_varies x p =
    let outer_indexes = ref false and inner_sparse = ref false in
    for q = 0 to min (n - 1) p do
      if in_x x q then outer_indexes := true
    done;
    for q = p + 1 to n - 1 do
      if in_x x q && loops.(q).is_compressed then inner_sparse := true
    done;
    !outer_indexes || (!inner_sparse && p >= 0)
  in
  (* Misses of [x] at a cache of [size]: bytes fetched into it. *)
  let misses x size =
    let p = fit_pos size in
    let g = gather_factor machine loops x in
    (* Cold misses: everything the nest touches comes in at least once.
       Product-of-branchings underestimates the global footprint of gathered
       operands (unions across outer iterations), so floor it with the
       access-count bound instead. *)
    let cold = Float.min x.total_bytes (body_count *. 4.0) in
    let bytes =
      if p >= n then
        (* No reuse captured at this level: every access is a line fetch. *)
        body_count *. 4.0 *. g
      else begin
        let f = footprint x p in
        if subset_varies x p then f *. g *. iters_outside p else f *. g
      end
    in
    let bytes = Float.max bytes cold in
    let bytes = Float.min bytes (body_count *. float_of_int machine.Machine.cache_line) in
    (* An array that wholly fits in this level stays resident after the cold
       pass (optimistic LRU: its reuse frequency protects it from streaming
       traffic), so it can never miss more than cold. *)
    let bytes = if x.total_bytes <= size then cold else bytes in
    if x.is_output then 2.0 *. bytes else bytes
  in
  let level_bytes size =
    List.fold_left (fun acc x -> acc +. misses x size) 0.0 arrays
  in
  let l1m = level_bytes machine.Machine.l1.Machine.size_bytes in
  let l2m = Float.min l1m (level_bytes machine.Machine.l2.Machine.size_bytes) in
  let llcm = Float.min l2m (level_bytes machine.Machine.llc.Machine.size_bytes) in
  (* Register-level accesses (served by L1) and A streaming through all
     levels. *)
  let accesses = (body_count *. 4.0) +. a_bytes in
  (accesses, l1m +. a_bytes, l2m +. a_bytes, llcm +. a_bytes)

(* Vectorization factor from the innermost loop's contiguous dense extent.
   Degenerate size-1 levels (unsplit bottoms) do not constitute a loop in the
   generated code, so they are skipped when locating the innermost loop. *)
let simd_factor (machine : Machine.t) (loops : loop array) =
  let rec innermost i =
    if i < 0 then None
    else begin
      let l = loops.(i) in
      if l.dense_extent > 1 || l.is_compressed || l.trip > 1.5 then Some l
      else innermost (i - 1)
    end
  in
  match innermost (Array.length loops - 1) with
  | None -> 1.0
  | Some inner ->
      let extent = inner.dense_extent in
      if extent >= machine.Machine.simd_threshold then
        float_of_int machine.Machine.simd_width
      else if extent >= 4 then 2.0
      else 1.0

(* Simulated OpenMP dynamic scheduling: chunks of the parallel variable are
   dispatched to the earliest-free thread. *)
let dynamic_makespan ~threads ~chunk_cost (chunk_shares : float array) =
  let finish = Array.make threads 0.0 in
  Array.iter
    (fun share ->
      (* earliest-free thread *)
      let best = ref 0 in
      for t = 1 to threads - 1 do
        if finish.(t) < finish.(!best) then best := t
      done;
      finish.(!best) <- finish.(!best) +. chunk_cost share)
    chunk_shares;
  Array.fold_left Float.max 0.0 finish

let estimate (machine : Machine.t) (wl : Workload.t) (s : Superschedule.t) =
  Superschedule.validate s;
  let spec = Superschedule.to_spec s ~dims:wl.Workload.dims in
  let storage = Workload.storage wl spec in
  let loops, virt = loop_nest wl s spec in
  let dense = Algorithm.dense_inner s.Superschedule.algo in
  let dense_trip = if dense > 0 then float_of_int dense else 1.0 in
  let nvals = virt.Format_abs.Storage_model.nvals in
  let body_count = nvals *. dense_trip in
  let flops = Algorithm.flops_per_entry s.Superschedule.algo *. nvals in
  (* --- compute time --- *)
  let vec = simd_factor machine loops in
  let level_iters =
    Array.fold_left ( +. ) 0.0 virt.Format_abs.Storage_model.level_positions
  in
  let compute_cycles =
    (flops /. (machine.Machine.flops_per_cycle *. vec))
    +. (nvals *. machine.Machine.leaf_overhead_cycles)
    +. (level_iters *. machine.Machine.level_iter_cycles)
  in
  let compute_sec = compute_cycles /. machine.Machine.freq_hz in
  (* --- memory time --- *)
  let a_bytes =
    let extra_out =
      (* SDDMM writes a sparse output with A's value footprint. *)
      match s.Superschedule.algo with
      | Algorithm.Sddmm _ -> 4.0 *. storage.Format_abs.Storage_model.nvals
      | _ -> 0.0
    in
    storage.Format_abs.Storage_model.bytes +. extra_out
  in
  let arrays = dense_arrays s.Superschedule.algo wl.Workload.dims in
  let accesses, l1_misses, l2_misses, llc_misses =
    memory_model machine loops ~a_bytes ~body_count arrays
  in
  let dramb = llc_misses in
  let mem_sec =
    (accesses /. machine.Machine.l1.Machine.bandwidth)
    +. (l1_misses /. machine.Machine.l2.Machine.bandwidth)
    +. (l2_misses /. machine.Machine.llc.Machine.bandwidth)
    +. (llc_misses /. machine.Machine.mem_bandwidth)
  in
  (* --- discordant traversal penalty --- *)
  let discordant =
    Format_abs.Spec.discordant_levels spec ~compute_order:s.Superschedule.compute_order
  in
  let avg_row = Float.max 2.0 (float_of_int wl.Workload.nnz /. float_of_int wl.Workload.dims.(0)) in
  let search_sec =
    float_of_int discordant *. nvals
    *. (log avg_row /. log 2.0)
    *. machine.Machine.search_cost_cycles /. machine.Machine.freq_hz
  in
  let serial_sec = compute_sec +. mem_sec +. search_sec in
  (* --- parallel execution --- *)
  let par = s.Superschedule.par_var in
  let dim = Format_abs.Spec.var_dim par in
  let split = spec.Format_abs.Spec.splits.(dim) in
  let work =
    Workload.kernel_work wl ~algo:s.Superschedule.algo ~dim ~split
      ~is_top:(Format_abs.Spec.var_is_top par)
  in
  let total_work = Float.max 1e-9 (Array.fold_left ( +. ) 0.0 work) in
  let nthreads, throughput = Machine.thread_config machine s.Superschedule.threads in
  let speed_per_thread = throughput /. float_of_int nthreads in
  (* Parallel loop nested under outer loops re-enters the region each time. *)
  let par_pos =
    let p = ref 0 in
    Array.iteri (fun i l -> if l.var = par then p := i) loops;
    !p
  in
  let outer_iters =
    let p = ref 1.0 in
    for k = 0 to par_pos - 1 do
      p := !p *. loops.(k).trip
    done;
    Float.min 1e6 !p
  in
  let chunks = Sptensor.Stats.chunk_work_f work ~chunk:s.Superschedule.chunk in
  let chunk_cost share =
    (share *. serial_sec /. speed_per_thread) +. machine.Machine.chunk_overhead_sec
  in
  let shares = Array.map (fun w -> w /. total_work) chunks in
  let makespan =
    if Array.length work <= 1 then serial_sec (* size-1 parallel var: no parallelism *)
    else
      dynamic_makespan ~threads:nthreads ~chunk_cost shares
      +. (machine.Machine.parallel_region_sec *. outer_iters)
  in
  let dram_floor = dramb /. machine.Machine.mem_bandwidth in
  let seconds = Float.max makespan dram_floor in
  {
    seconds;
    serial_seconds = serial_sec;
    compute_seconds = compute_sec;
    memory_seconds = mem_sec;
    search_seconds = search_sec;
    makespan_seconds = makespan;
    dram_bytes = dramb;
    flops;
    vec_factor = vec;
    nvals;
    discordant;
    threads_used = nthreads;
  }

let runtime machine wl s = (estimate machine wl s).seconds

(* Format-conversion time model: packing COO into the target format is a sort
   plus a streaming write of the materialized slots (used by Fig. 17 and
   Table 8's end-to-end accounting). *)
let convert_time (machine : Machine.t) (wl : Workload.t) (s : Superschedule.t) =
  let spec = Superschedule.to_spec s ~dims:wl.Workload.dims in
  let storage = Workload.storage wl spec in
  let n = float_of_int wl.Workload.nnz in
  let sort_cycles = 8.0 *. n *. (log (Float.max 2.0 n) /. log 2.0) in
  let write_cycles = 2.0 *. storage.Format_abs.Storage_model.nvals in
  (sort_cycles +. write_cycles) /. machine.Machine.freq_hz
