(* A workload = one sparse operand plus memoized derived statistics.

   The cost simulator evaluates many SuperSchedules against the same operand
   (dataset generation samples ~tens per matrix; the tuner measures a top-k),
   so per-format storage analyses and per-dimension slice histograms are
   cached here. *)

open Sptensor

type t = {
  id : string;
  dims : int array;
  nnz : int;
  entries : (int array * float) array;
  counts : int array array; (* counts.(d).(x) = nonzeros with logical coord x on dim d *)
  storage_cache : (string, Format_abs.Storage_model.t) Hashtbl.t;
  kernel_work_cache : (string, float array) Hashtbl.t;
      (* keyed on (algo, dim, split, is_top): the weighted distributions the
         per-kernel dynamic-scheduling simulation chunks up *)
  cache_lock : Mutex.t;
      (* The parallel measurement paths share one workload across domains;
         Hashtbl is not safe under concurrent mutation. *)
}

let build ~id ~dims ~entries =
  let r = Array.length dims in
  let counts = Array.init r (fun d -> Array.make dims.(d) 0) in
  Array.iter
    (fun (coords, _) ->
      for d = 0 to r - 1 do
        counts.(d).(coords.(d)) <- counts.(d).(coords.(d)) + 1
      done)
    entries;
  {
    id;
    dims;
    nnz = Array.length entries;
    entries;
    counts;
    storage_cache = Hashtbl.create 64;
    kernel_work_cache = Hashtbl.create 16;
    cache_lock = Mutex.create ();
  }

let of_coo ?(id = "coo") (m : Coo.t) =
  let entries =
    Array.init (Coo.nnz m) (fun k ->
        ([| m.Coo.rows.(k); m.Coo.cols.(k) |], m.Coo.vals.(k)))
  in
  build ~id ~dims:[| m.Coo.nrows; m.Coo.ncols |] ~entries

let of_tensor3 ?(id = "tensor3") (t : Tensor3.t) =
  let open Tensor3 in
  let entries =
    Array.init (nnz t) (fun p -> ([| t.is.(p); t.ks.(p); t.ls.(p) |], t.vals.(p)))
  in
  build ~id ~dims:[| t.dim_i; t.dim_k; t.dim_l |] ~entries

let spec_key (spec : Format_abs.Spec.t) =
  let buf = Buffer.create 32 in
  Array.iter (fun s -> Buffer.add_string buf (string_of_int s); Buffer.add_char buf ',')
    spec.Format_abs.Spec.splits;
  Array.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ';')
    spec.Format_abs.Spec.order;
  Array.iter
    (fun f -> Buffer.add_char buf (Format_abs.Levelfmt.to_char f))
    spec.Format_abs.Spec.formats;
  Buffer.contents buf

let storage t (spec : Format_abs.Spec.t) =
  let key = spec_key spec in
  let cached =
    Mutex.protect t.cache_lock (fun () -> Hashtbl.find_opt t.storage_cache key)
  in
  match cached with
  | Some s -> s
  | None ->
      (* Analyze outside the lock: it is pure, and a duplicate computation on a
         concurrent miss is cheaper than serializing every analysis. *)
      let s = Format_abs.Storage_model.analyze spec t.entries in
      Mutex.protect t.cache_lock (fun () ->
          if not (Hashtbl.mem t.storage_cache key) then
            Hashtbl.add t.storage_cache key s);
      s

(* Work (nonzero count) per value of derived variable [v] under split [split]
   of logical dim [d]: the distribution the dynamic-scheduling simulation
   chunks up.  Top vars group [split] consecutive logical indices; bottom
   vars stride across them. *)
let work_per_var_value t ~dim ~split ~is_top =
  let counts = t.counts.(dim) in
  let n = Array.length counts in
  if is_top then begin
    let nblocks = (n + split - 1) / split in
    let work = Array.make (max 1 nblocks) 0 in
    Array.iteri (fun x c -> work.(x / split) <- work.(x / split) + c) counts;
    work
  end
  else begin
    let work = Array.make (max 1 split) 0 in
    Array.iteri (fun x c -> work.(x mod split) <- work.(x mod split) + c) counts;
    work
  end

(* Logical indices of dim [dim] each derived-variable value owns — the count
   of output elements the value writes when [dim] is the output dimension. *)
let indices_per_var_value t ~dim ~split ~is_top =
  let n = Array.length t.counts.(dim) in
  if is_top then begin
    let nblocks = (n + split - 1) / split in
    Array.init (max 1 nblocks) (fun v -> max 0 (min split (n - (v * split))))
  end
  else
    Array.init (max 1 split) (fun v ->
        if v >= n then 0 else ((n - 1 - v) / split) + 1)

(* Per-kernel weighted work per value of the parallelized variable: each
   nonzero costs its kernel's flops, and — when the parallelized dimension is
   the output dimension (dim 0 of a dense output) — each owned logical index
   pays its row of output writes.  SDDMM's output is sparse (written per
   nonzero, already priced by the flop term), so it carries no write term;
   when dim <> 0 the term vanishes and the distribution is a pure scaling of
   the nonzero histogram. *)
let kernel_work t ~(algo : Schedule.Algorithm.t) ~dim ~split ~is_top =
  let key =
    Printf.sprintf "%s/%d/%d/%b" (Schedule.Algorithm.name algo) dim split is_top
  in
  let cached =
    Mutex.protect t.cache_lock (fun () -> Hashtbl.find_opt t.kernel_work_cache key)
  in
  match cached with
  | Some w -> w
  | None ->
      let counts = work_per_var_value t ~dim ~split ~is_top in
      let flops = Schedule.Algorithm.flops_per_entry algo in
      let writes_per_idx =
        if dim <> 0 then 0.0
        else
          match algo with
          | Schedule.Algorithm.Spmv -> 1.0
          | Schedule.Algorithm.Spmm jn | Schedule.Algorithm.Mttkrp jn ->
              float_of_int jn
          | Schedule.Algorithm.Sddmm _ -> 0.0
      in
      let w =
        if writes_per_idx = 0.0 then
          Array.map (fun c -> flops *. float_of_int c) counts
        else begin
          let idxs = indices_per_var_value t ~dim ~split ~is_top in
          Array.mapi
            (fun v c ->
              (flops *. float_of_int c)
              +. (writes_per_idx *. float_of_int idxs.(v)))
            counts
        end
      in
      Mutex.protect t.cache_lock (fun () ->
          if not (Hashtbl.mem t.kernel_work_cache key) then
            Hashtbl.add t.kernel_work_cache key w);
      w
