(* The `waco route` daemon: a consistent-hash front tier over N shard
   daemons.

   One select loop owns all IO, the same discipline as [Server]: client
   connections accumulate bytes and peel frames off with the total
   [Protocol] decoder; each query's fingerprint routing key picks a shard
   on the ring; the query's frame bytes are relayed {e verbatim} over that
   shard's one persistent connection, and the shard's response frame is
   relayed verbatim back.  No re-encoding anywhere on the data path: what a
   shard answers — an [Answer], an [Error], a [Busy] with its
   [retry_after_ms] hint — is byte-for-byte what the client receives, so
   every client-side contract (retry hints, degraded markers, span fields)
   holds through the router by construction.

   FIFO per client connection is preserved the way the shards preserve it
   per connection: each client request occupies a slot in its connection's
   response queue, shard responses fill slots as they arrive (shards answer
   their own connection in FIFO order, so responses pair with the oldest
   unanswered relay on that shard link), and a slot is written out only
   when it reaches the head — a fast shard's answer waits behind a slow
   one's for the same client, never reorders past it.

   Shard death is a routing event, not an error avalanche: the link drops,
   the shard leaves the ring (remapping only its own arcs — consistent
   hashing's point), and its in-flight queries settle per the failover
   rule: predict-only queries are re-relayed to their new ring owner
   (bounded by [failover_hops]); measured ones answer an honest [error],
   because a half-run measurement re-run elsewhere would silently double
   simulator spend and hide the loss.  The dead shard is redialed with
   capped backoff and rejoins the ring warm from its own persistent cache.

   Clocks: [Robust.mono_now] only, like every deadline/elapsed path in the
   serve layer (DESIGN.md §12; lint-enforced for this file by name). *)

(* --- the ring ---------------------------------------------------------- *)

module Ring = struct
  type t = { points : (int * int) array; names : string array }
  (* [points] is (hash of "name#v", member index), sorted by hash. *)

  let vnodes = 64

  (* 64-bit FNV-1a with an avalanche finalizer, folded to a non-negative
     OCaml int.  Bare FNV-1a is a poor ring hash: two inputs differing
     only near the end (vnode suffixes [#0]..[#63]; two sketches that
     disagree in a few trailing cells) hash to values a small multiple of
     the FNV prime apart, so their ring points cluster instead of
     spreading.  The splitmix64 finalizer diffuses every input bit across
     the word; the fold to 62 bits only drops sign. *)
  let fnv1a s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    let m = !h in
    let m = Int64.logxor m (Int64.shift_right_logical m 30) in
    let m = Int64.mul m 0xbf58476d1ce4e5b9L in
    let m = Int64.logxor m (Int64.shift_right_logical m 27) in
    let m = Int64.mul m 0x94d049bb133111ebL in
    let m = Int64.logxor m (Int64.shift_right_logical m 31) in
    Int64.to_int (Int64.logand m 0x3fffffffffffffffL)

  let create names =
    if names = [] then invalid_arg "Ring.create: no members";
    let names = Array.of_list names in
    let points =
      Array.init
        (Array.length names * vnodes)
        (fun i ->
          let m = i / vnodes and v = i mod vnodes in
          (fnv1a (Printf.sprintf "%s#%d" names.(m) v), m))
    in
    Array.sort compare points;
    { points; names }

  let members t = Array.to_list t.names

  (* Successor point of the key's hash, wrapping past the top of the ring. *)
  let lookup t key =
    let h = fnv1a key in
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    (* First index with point hash >= h; [n] when none. *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) >= h then hi := mid else lo := mid + 1
    done;
    let i = if !lo = n then 0 else !lo in
    t.names.(snd t.points.(i))

  let routing_key key =
    if String.length key >= 4 && String.sub key 0 4 = "fp1:" then
      match String.rindex_opt key ':' with
      | Some i -> String.sub key (i + 1) (String.length key - i - 1)
      | None -> key
    else key
end

(* --- state ------------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable alive : bool;
  mutable last_byte : float;
  mutable partial_since : float;
  outq : slot Queue.t;  (* this connection's response slots, FIFO *)
}

(* One request's place in its connection's response order.  [reply] is the
   raw response frame once known; [stop_after] marks the [Bye] whose write
   stops the router. *)
and slot = {
  owner : conn;
  mutable reply : string option;
  is_query : bool;  (* counts against [max_pending] until settled *)
  raw : string;  (* the query's original frame bytes, for (re-)relay *)
  skey : string;  (* routing key *)
  measure : bool;
  mutable hops : int;  (* shards this query has been relayed to *)
  stop_after : bool;
}

type shard = {
  name : string;  (* the endpoint spec; also the ring member name *)
  addr : Addr.t;
  mutable sfd : Unix.file_descr option;  (* [None] = down *)
  sinbuf : Buffer.t;
  mutable spartial_since : float;
  inflight : inflight Queue.t;  (* requests relayed, awaiting responses *)
  mutable routed : int;  (* queries ever routed here (balance counter) *)
  mutable attempt : int;  (* consecutive failed dials, for backoff *)
  mutable next_try : float;
}

and inflight = Iquery of slot | Istat of statfan * int

and statfan = {
  fan_slot : slot;
  mutable waiting : int;
  results : (string, string) result option array;  (* per shard index *)
}

type t = {
  listen : string;
  mutable bound : string option;
  shards : shard array;
  mutable ring : Ring.t option;  (* over live shards; [None] = all down *)
  max_pending : int;
  failover_hops : int;
  idle_timeout_s : float;
  frame_timeout_s : float;
  write_timeout_s : float;
  connect_timeout_s : float;
  reconnect_base_s : float;
  reconnect_max_s : float;
  log : string -> unit;
  mutable outstanding : int;  (* query slots awaiting a settle *)
  mutable stopping : bool;
  (* counters (single-threaded loop: plain ints) *)
  mutable c_requests : int;
  mutable c_routed : int;
  mutable c_relayed : int;
  mutable c_relayed_busy : int;
  mutable c_failovers : int;
  mutable c_failed_over_errors : int;
  mutable c_shed : int;
  mutable c_no_shard_errors : int;
  mutable c_shard_deaths : int;
  mutable c_reconnects : int;
  mutable c_protocol_errors : int;
  mutable c_request_errors : int;
  mutable c_write_stalls : int;
  mutable c_reaped_idle : int;
  mutable c_reaped_trickle : int;
}

let bound_endpoint t = t.bound

let create ?(max_pending = 1024) ?(failover_hops = 1) ?(idle_timeout_s = 60.0)
    ?(frame_timeout_s = 10.0) ?(write_timeout_s = 5.0)
    ?(connect_timeout_s = 2.0) ?(reconnect_base_s = 0.05)
    ?(reconnect_max_s = 2.0) ?(log = ignore) ~listen ~shards () =
  if shards = [] then invalid_arg "Router.create: no shards";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg ("Router.create: duplicate shard " ^ s);
      Hashtbl.add seen s ())
    shards;
  ignore (Addr.of_string listen);
  let shards =
    Array.of_list
      (List.map
         (fun name ->
           {
             name;
             addr = Addr.of_string name;
             sfd = None;
             sinbuf = Buffer.create 1024;
             spartial_since = 0.0;
             inflight = Queue.create ();
             routed = 0;
             attempt = 0;
             next_try = 0.0;
           })
         shards)
  in
  {
    listen;
    bound = None;
    shards;
    ring = None;
    max_pending = max 1 max_pending;
    failover_hops = max 0 failover_hops;
    idle_timeout_s;
    frame_timeout_s;
    write_timeout_s;
    connect_timeout_s;
    reconnect_base_s;
    reconnect_max_s;
    log;
    outstanding = 0;
    stopping = false;
    c_requests = 0;
    c_routed = 0;
    c_relayed = 0;
    c_relayed_busy = 0;
    c_failovers = 0;
    c_failed_over_errors = 0;
    c_shed = 0;
    c_no_shard_errors = 0;
    c_shard_deaths = 0;
    c_reconnects = 0;
    c_protocol_errors = 0;
    c_request_errors = 0;
    c_write_stalls = 0;
    c_reaped_idle = 0;
    c_reaped_trickle = 0;
  }

let live_count t =
  Array.fold_left
    (fun acc sh -> if sh.sfd <> None then acc + 1 else acc)
    0 t.shards

let rebuild_ring t =
  let live =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun sh -> if sh.sfd <> None then Some sh.name else None)
            (Array.to_seq t.shards)))
  in
  t.ring <- (if live = [] then None else Some (Ring.create live))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stats_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_string b ", ";
    first := false;
    Printf.bprintf b "%S: %s" k v
  in
  let int k v = field k (string_of_int v) in
  field "listen"
    (Printf.sprintf "\"%s\""
       (json_escape (match t.bound with Some s -> s | None -> t.listen)));
  int "shards" (Array.length t.shards);
  int "shards_up" (live_count t);
  int "requests" t.c_requests;
  int "routed" t.c_routed;
  int "relayed" t.c_relayed;
  int "relayed_busy" t.c_relayed_busy;
  int "failovers" t.c_failovers;
  int "failover_errors" t.c_failed_over_errors;
  int "shed" t.c_shed;
  int "no_shard_errors" t.c_no_shard_errors;
  int "shard_deaths" t.c_shard_deaths;
  int "reconnects" t.c_reconnects;
  int "protocol_errors" t.c_protocol_errors;
  int "request_errors" t.c_request_errors;
  int "write_stalls" t.c_write_stalls;
  int "reaped_idle" t.c_reaped_idle;
  int "reaped_trickle" t.c_reaped_trickle;
  int "outstanding" t.outstanding;
  int "max_pending" t.max_pending;
  int "failover_hops" t.failover_hops;
  int "protocol_version" Protocol.version;
  Buffer.add_string b "}";
  Buffer.contents b

(* Aggregate [stats] answer: the router section, one entry per shard (its
   own stats JSON embedded verbatim when it answered), and totals summed
   from the shard counters the capacity story rests on. *)
let compose_stats t (fan : statfan) =
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\"router\": %s, \"per_shard\": [" (stats_json t);
  Array.iteri
    (fun i sh ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "{\"name\": \"%s\", \"up\": %b, \"routed\": %d"
        (json_escape sh.name) (sh.sfd <> None) sh.routed;
      (match fan.results.(i) with
      | Some (Ok json) -> Printf.bprintf b ", \"stats\": %s" json
      | Some (Error e) ->
          Printf.bprintf b ", \"error\": \"%s\"" (json_escape e)
      | None -> ());
      Buffer.add_string b "}")
    t.shards;
  Buffer.add_string b "], \"totals\": {";
  let keys =
    [
      "requests"; "answers"; "cache_hits"; "cache_misses"; "shed";
      "degraded"; "deadline_misses"; "measured_runs";
    ]
  in
  List.iteri
    (fun i key ->
      let total =
        Array.fold_left
          (fun acc r ->
            match r with
            | Some (Ok json) -> (
                match Metrics.json_counter json key with
                | Some n -> acc + n
                | None -> acc)
            | _ -> acc)
          0 fan.results
      in
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S: %d" key total)
    keys;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- IO helpers --------------------------------------------------------- *)

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

exception Write_stall

(* Same bounded non-blocking writer as [Server]: the whole frame goes out
   within [write_timeout_s] or the peer is declared stalled.  Carries the
   [Faults] network hooks so chaos tests exercise the router's write path
   the way they exercise the daemon's. *)
let write_bounded t fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let deadline = Robust.mono_now () +. t.write_timeout_s in
  let rec go off =
    if off < n then begin
      if Robust.Faults.net_drop_tick () then
        raise (Unix.Unix_error (Unix.EPIPE, "write", "injected drop"));
      let len = n - off in
      let len =
        match Robust.Faults.net_io_cap () with
        | Some cap -> min cap len
        | None -> len
      in
      match Unix.write fd b off len with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          let remaining = deadline -. Robust.mono_now () in
          if remaining <= 0.0 then raise Write_stall;
          (match Unix.select [] [ fd ] [] remaining with
          | _, [], _ -> raise Write_stall
          | _ -> ());
          go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

(* Write every settled slot at the head of [conn]'s response queue.  Dead
   connections still drain their queue (drop the frames) so settled slots
   never pile up behind a gone client. *)
let flush_client t conn =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt conn.outq with
    | Some slot when slot.reply <> None ->
        ignore (Queue.pop conn.outq);
        let frame = Option.get slot.reply in
        if conn.alive then begin
          (match write_bounded t conn.fd frame with
          | () -> ()
          | exception Write_stall ->
              t.c_write_stalls <- t.c_write_stalls + 1;
              t.log "client not draining responses; dropping connection";
              close_conn conn
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
              t.log "client went away mid-response";
              close_conn conn);
          if slot.stop_after then t.stopping <- true
        end
    | _ -> continue := false
  done

(* Fill a slot's response exactly once and flush whatever that unblocks. *)
let settle t slot frame =
  if slot.reply = None then begin
    slot.reply <- Some frame;
    if slot.is_query then t.outstanding <- t.outstanding - 1;
    flush_client t slot.owner
  end

let settle_resp t slot resp = settle t slot (Protocol.response_to_frame resp)

(* --- shard links -------------------------------------------------------- *)

let shard_by_name t name =
  let found = ref None in
  Array.iter (fun sh -> if sh.name = name then found := Some sh) t.shards;
  match !found with Some sh -> sh | None -> assert false

let retry_hint t = min 2000 (50 * (1 + (t.outstanding / 32)))

(* Relay a query slot to the shard owning its key.  On a relay failure the
   shard goes down, which re-settles or re-routes this very slot along with
   the rest of that shard's in-flight queue. *)
let rec forward t slot =
  match t.ring with
  | None ->
      t.c_no_shard_errors <- t.c_no_shard_errors + 1;
      settle_resp t slot (Protocol.Error_msg "router: no shards available")
  | Some ring -> (
      let sh = shard_by_name t (Ring.lookup ring slot.skey) in
      match sh.sfd with
      | None ->
          (* The ring only holds live shards; a raced-down link settles as
             a death would. *)
          failover t sh slot
      | Some fd -> (
          slot.hops <- slot.hops + 1;
          Queue.add (Iquery slot) sh.inflight;
          sh.routed <- sh.routed + 1;
          t.c_routed <- t.c_routed + 1;
          match write_bounded t fd slot.raw with
          | () -> ()
          | exception _ -> shard_down t sh))

(* The failover rule for one in-flight query on a dead shard: predict-only
   queries hop to their new ring owner while budget remains; measured ones
   (and exhausted budgets) answer honestly. *)
and failover t sh slot =
  if slot.measure then begin
    t.c_failed_over_errors <- t.c_failed_over_errors + 1;
    settle_resp t slot
      (Protocol.Error_msg
         (Printf.sprintf
            "router: shard %s died mid-query; measured query not retried"
            sh.name))
  end
  else if slot.hops > t.failover_hops then begin
    t.c_failed_over_errors <- t.c_failed_over_errors + 1;
    settle_resp t slot
      (Protocol.Error_msg
         (Printf.sprintf "router: gave up after %d shard(s) died" slot.hops))
  end
  else begin
    t.c_failovers <- t.c_failovers + 1;
    forward t slot
  end

(* A shard link died (EOF, reset, stalled write, torn frame, unsolicited
   response).  Drop the link, remove the shard from the ring (remapping
   only its arcs), then settle its whole in-flight queue under the
   failover rule — re-relays target the rebuilt ring, so a cascade of
   deaths terminates on the hop budget. *)
and shard_down t sh =
  (match sh.sfd with
  | Some fd -> (
      sh.sfd <- None;
      try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Buffer.clear sh.sinbuf;
  sh.spartial_since <- 0.0;
  sh.attempt <- sh.attempt + 1;
  sh.next_try <-
    Robust.mono_now ()
    +. Robust.backoff_delay ~base_s:t.reconnect_base_s
         ~max_s:t.reconnect_max_s ~seed:(Hashtbl.hash sh.name)
         ~attempt:sh.attempt ();
  t.c_shard_deaths <- t.c_shard_deaths + 1;
  rebuild_ring t;
  t.log (Printf.sprintf "shard %s down (%d in flight)" sh.name
           (Queue.length sh.inflight));
  let orphans = List.of_seq (Queue.to_seq sh.inflight) in
  Queue.clear sh.inflight;
  List.iter
    (fun item ->
      match item with
      | Iquery slot -> failover t sh slot
      | Istat (fan, i) ->
          fan.results.(i) <- Some (Error "shard down");
          fan.waiting <- fan.waiting - 1;
          if fan.waiting = 0 then
            settle_resp t fan.fan_slot
              (Protocol.Stats_json (compose_stats t fan)))
    orphans

let try_connect t sh =
  match Addr.connect ~timeout_s:t.connect_timeout_s sh.addr with
  | fd ->
      Unix.set_nonblock fd;
      sh.sfd <- Some fd;
      sh.attempt <- 0;
      rebuild_ring t;
      if t.c_reconnects > 0 || t.bound <> None then
        t.log (Printf.sprintf "shard %s admitted to the ring" sh.name);
      t.c_reconnects <- t.c_reconnects + 1;
      true
  | exception _ ->
      sh.attempt <- sh.attempt + 1;
      sh.next_try <-
        Robust.mono_now ()
        +. Robust.backoff_delay ~base_s:t.reconnect_base_s
             ~max_s:t.reconnect_max_s ~seed:(Hashtbl.hash sh.name)
             ~attempt:sh.attempt ();
      false

let reconnect_pass t =
  let now = Robust.mono_now () in
  Array.iter
    (fun sh -> if sh.sfd = None && now >= sh.next_try then ignore (try_connect t sh))
    t.shards

(* --- request handling --------------------------------------------------- *)

let push_slot ?(is_query = false) ?(raw = "") ?(skey = "") ?(measure = false)
    ?(stop_after = false) conn =
  let slot =
    { owner = conn; reply = None; is_query; raw; skey; measure; hops = 0;
      stop_after }
  in
  Queue.add slot conn.outq;
  slot

(* The routing key: the fingerprint's sketch hex for an inline matrix —
   computed with the {e same} [Fingerprint] the shards key their caches
   by, so tests and operators can predict placement from a key — and the
   path string for a path source (the file lives shard-side; reading it
   here would double the IO and put the router in the parse business).  A
   matrix the router cannot fingerprint (the shard will answer the
   authoritative error) routes by its qid — any stable key works for a
   query whose answer is an error. *)
let routing_key_of (q : Protocol.query) =
  match q.Protocol.source with
  | Protocol.Path p -> p
  | Protocol.Inline { nrows; ncols; entries } -> (
      match Sptensor.Coo.of_triplet_array ~nrows ~ncols entries with
      | m -> Ring.routing_key (Fingerprint.key (Fingerprint.of_coo m))
      | exception Invalid_argument _ -> q.Protocol.qid)

let handle_query t conn (q : Protocol.query) raw =
  if t.outstanding >= t.max_pending then begin
    t.c_shed <- t.c_shed + 1;
    let slot = push_slot conn in
    settle_resp t slot (Protocol.Busy { retry_after_ms = retry_hint t })
  end
  else begin
    let slot =
      push_slot ~is_query:true ~raw ~skey:(routing_key_of q)
        ~measure:q.Protocol.measure conn
    in
    t.outstanding <- t.outstanding + 1;
    forward t slot
  end

let handle_stats t conn =
  let slot = push_slot conn in
  let fan =
    { fan_slot = slot; waiting = 0; results = Array.make (Array.length t.shards) None }
  in
  Array.iteri
    (fun i sh ->
      match sh.sfd with
      | None -> ()
      | Some _ ->
          fan.waiting <- fan.waiting + 1;
          Queue.add (Istat (fan, i)) sh.inflight)
    t.shards;
  if fan.waiting = 0 then
    settle_resp t slot (Protocol.Stats_json (compose_stats t fan))
  else
    (* Relay the stats frame on each live link only after every queue entry
       exists: a send failure mid-iteration tears that shard down, which
       must find the fan entries of the shards already enqueued. *)
    Array.iter
      (fun sh ->
        match sh.sfd with
        | None -> ()
        | Some fd -> (
            let has_fan =
              Queue.fold
                (fun acc item ->
                  acc || match item with Istat (f, _) -> f == fan | _ -> false)
                false sh.inflight
            in
            if has_fan then
              match
                write_bounded t fd (Protocol.request_to_frame Protocol.Stats)
              with
              | () -> ()
              | exception _ -> shard_down t sh))
      t.shards

let drain_client_frames t conn =
  let continue = ref true in
  while !continue do
    let s = Buffer.contents conn.inbuf in
    match Protocol.decode_frame s with
    | `Need _ -> continue := false
    | `Bad reason ->
        t.c_protocol_errors <- t.c_protocol_errors + 1;
        (try
           write_bounded t conn.fd
             (Protocol.response_to_frame
                (Protocol.Error_msg ("protocol: " ^ reason)))
         with _ -> ());
        close_conn conn;
        continue := false
    | `Frame (msg, body, consumed) -> (
        let raw = String.sub s 0 consumed in
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s consumed (String.length s - consumed);
        match Protocol.request_of_frame ~msg body with
        | Ok req -> (
            t.c_requests <- t.c_requests + 1;
            match req with
            | Protocol.Query q -> handle_query t conn q raw
            | Protocol.Ping ->
                let slot = push_slot conn in
                settle_resp t slot Protocol.Pong
            | Protocol.Stats -> handle_stats t conn
            | Protocol.Shutdown ->
                let slot = push_slot ~stop_after:true conn in
                settle_resp t slot Protocol.Bye)
        | Error e ->
            t.c_request_errors <- t.c_request_errors + 1;
            let slot = push_slot conn in
            settle_resp t slot (Protocol.Error_msg ("request: " ^ e)))
  done

(* Responses off one shard link.  The link is FIFO on both sides, so each
   complete frame pairs with the oldest in-flight relay. *)
let drain_shard_frames t sh =
  let continue = ref true in
  while !continue && sh.sfd <> None do
    let s = Buffer.contents sh.sinbuf in
    match Protocol.decode_frame s with
    | `Need _ -> continue := false
    | `Bad _ ->
        shard_down t sh;
        continue := false
    | `Frame (msg, body, consumed) -> (
        let frame = String.sub s 0 consumed in
        Buffer.clear sh.sinbuf;
        Buffer.add_substring sh.sinbuf s consumed (String.length s - consumed);
        match Queue.take_opt sh.inflight with
        | None ->
            (* An unsolicited frame: the link is out of sync; resync by
               redial. *)
            shard_down t sh;
            continue := false
        | Some (Iquery slot) ->
            t.c_relayed <- t.c_relayed + 1;
            if msg = Protocol.msg_busy then
              t.c_relayed_busy <- t.c_relayed_busy + 1;
            settle t slot frame
        | Some (Istat (fan, i)) ->
            (match Protocol.response_of_frame ~msg body with
            | Ok (Protocol.Stats_json j) -> fan.results.(i) <- Some (Ok j)
            | Ok (Protocol.Error_msg e) -> fan.results.(i) <- Some (Error e)
            | _ -> fan.results.(i) <- Some (Error "unexpected response"));
            fan.waiting <- fan.waiting - 1;
            if fan.waiting = 0 then
              settle_resp t fan.fan_slot
                (Protocol.Stats_json (compose_stats t fan)))
  done

let reap t conns =
  let now = Robust.mono_now () in
  List.iter
    (fun conn ->
      if conn.alive then
        if
          conn.partial_since > 0.0
          && now -. conn.partial_since > t.frame_timeout_s
        then begin
          t.c_reaped_trickle <- t.c_reaped_trickle + 1;
          t.log "reaped client stalled mid-frame";
          close_conn conn
        end
        else if now -. conn.last_byte > t.idle_timeout_s then begin
          t.c_reaped_idle <- t.c_reaped_idle + 1;
          t.log "reaped idle client";
          close_conn conn
        end)
    conns;
  (* A shard stalled mid-frame is a dead shard: its frame will never
     complete, and every response behind it is stuck.  (An idle shard link
     is just a quiet shard — never reaped.) *)
  Array.iter
    (fun sh ->
      if
        sh.sfd <> None && sh.spartial_since > 0.0
        && now -. sh.spartial_since > t.frame_timeout_s
      then begin
        t.log (Printf.sprintf "shard %s stalled mid-frame" sh.name);
        shard_down t sh
      end)
    t.shards

(* --- the loop ----------------------------------------------------------- *)

let run ?(on_ready = ignore) t =
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let addr = Addr.of_string t.listen in
  let listen_fd = Addr.listen addr in
  let addr = Addr.resolve_bound addr listen_fd in
  Array.iter (fun sh -> ignore (try_connect t sh)) t.shards;
  t.bound <- Some (Addr.to_string addr);
  t.log
    (Printf.sprintf "routing on %s over %d shard(s), %d up"
       (Addr.to_string addr) (Array.length t.shards) (live_count t));
  on_ready ();
  let conns : conn list ref = ref [] in
  let finally () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Addr.cleanup addr;
    List.iter close_conn !conns;
    Array.iter
      (fun sh ->
        match sh.sfd with
        | Some fd -> (
            sh.sfd <- None;
            try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ())
      t.shards;
    match prev_sigpipe with
    | Some h -> (
        try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  let tick =
    Float.max 0.02
      (Float.min 1.0 (Float.min t.idle_timeout_s t.frame_timeout_s /. 4.0))
  in
  Fun.protect ~finally (fun () ->
      let chunk = Bytes.create 65536 in
      while not t.stopping do
        conns := List.filter (fun c -> c.alive) !conns;
        let client_fds = List.map (fun c -> c.fd) !conns in
        let shard_fds =
          Array.fold_left
            (fun acc sh ->
              match sh.sfd with Some fd -> fd :: acc | None -> acc)
            [] t.shards
        in
        match
          Unix.select ((listen_fd :: client_fds) @ shard_fds) [] [] tick
        with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            if List.mem listen_fd readable then begin
              let accepting = ref true in
              while !accepting do
                match Unix.accept listen_fd with
                | fd, _ ->
                    Unix.set_nonblock fd;
                    Addr.nodelay fd;
                    conns :=
                      {
                        fd;
                        inbuf = Buffer.create 1024;
                        alive = true;
                        last_byte = Robust.mono_now ();
                        partial_since = 0.0;
                        outq = Queue.create ();
                      }
                      :: !conns
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                  ->
                    accepting := false
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              done
            end;
            (* Shard responses first: they settle slots and free pending
               budget before new client queries are considered. *)
            Array.iter
              (fun sh ->
                match sh.sfd with
                | Some fd when List.mem fd readable -> (
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | 0 -> shard_down t sh
                    | n ->
                        Buffer.add_subbytes sh.sinbuf chunk 0 n;
                        drain_shard_frames t sh;
                        if Buffer.length sh.sinbuf = 0 then
                          sh.spartial_since <- 0.0
                        else if sh.spartial_since = 0.0 then
                          sh.spartial_since <- Robust.mono_now ()
                    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                        shard_down t sh
                    | exception
                        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                      ->
                        ()
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
                | _ -> ())
              t.shards;
            List.iter
              (fun conn ->
                if conn.alive && List.mem conn.fd readable then begin
                  if Robust.Faults.net_drop_tick () then close_conn conn
                  else
                    let len = Bytes.length chunk in
                    let len =
                      match Robust.Faults.net_io_cap () with
                      | Some cap -> min cap len
                      | None -> len
                    in
                    match Unix.read conn.fd chunk 0 len with
                    | 0 -> close_conn conn
                    | n ->
                        conn.last_byte <- Robust.mono_now ();
                        Buffer.add_subbytes conn.inbuf chunk 0 n;
                        drain_client_frames t conn;
                        if Buffer.length conn.inbuf = 0 then
                          conn.partial_since <- 0.0
                        else if conn.partial_since = 0.0 then
                          conn.partial_since <- Robust.mono_now ()
                    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                        close_conn conn
                    | exception
                        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                      ->
                        ()
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                end)
              !conns;
            reconnect_pass t;
            reap t !conns
      done)
