(** The daemon's schedule cache: {!Fingerprint.key} -> chosen schedule, LRU
    bounded in memory, persisted through the [Robust] artifact envelope
    (kind [waco-serve-cache]) so a restarted daemon is warm.

    Consistency: the snapshot header is stamped with the model-weight
    digest, index fingerprint and machine name it was computed under; a
    snapshot whose stamps disagree with the loading daemon's is discarded
    wholesale ([`Invalidated]), never partially reused.  Structural damage
    is a typed [Robust.load_error] — the crash-at-every-write sweep in
    [test/test_serve.ml] proves a mid-save crash leaves the previous
    snapshot or a clean error. *)

type entry = {
  schedule : string;  (** dataset-encoded SuperSchedule *)
  predicted : float;
  measured : float;
  degraded : bool;
}

type t

val create :
  ?capacity:int -> model_digest:string -> index_digest:string ->
  machine:string -> unit -> t
(** [capacity] defaults to 512 entries.  Digests and machine name must be
    whitespace-free (they live in the snapshot's header line). *)

val size : t -> int

val capacity : t -> int

val evictions : t -> int
(** Entries dropped by the LRU bound since creation (or since load). *)

val find : t -> string -> entry option
(** Bumps the entry's recency. *)

val add : t -> string -> entry -> unit
(** Inserts (or replaces) the entry as most-recent, evicting the
    least-recently-used entry when the cache is full. *)

val save : t -> string -> unit
(** Atomic checksummed snapshot (entries in recency order). *)

type loaded = { cache : t; status : [ `Warm of int | `Invalidated of string ] }

val load :
  ?capacity:int -> ?namespaces:string list -> model_digest:string ->
  index_digest:string -> machine:string -> string ->
  (loaded, Robust.load_error) result
(** [`Warm n] restores [n] entries with their recency order intact;
    [`Invalidated reason] returns an empty cache because the snapshot was
    computed under different model/index/machine identities.  [Error] is
    envelope or record damage — the caller starts cold.

    With [namespaces] (the kernel-partitioned daemon passes its served
    kernel names), every persisted key must start with [<ns>/] for some
    listed namespace; a key without one comes from a pre-kernel snapshot
    and invalidates the {e whole} snapshot — the same wholesale policy as a
    digest-stamp mismatch, so an SpMV-era entry can never be served to an
    SDDMM query. *)
