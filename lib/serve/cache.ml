(* The daemon's schedule cache: fingerprint key -> chosen schedule, LRU
   bounded in memory, persisted through the [Robust] artifact envelope so a
   restarted daemon is warm.

   Consistency: a cached answer is only valid under the exact model weights,
   search index and machine model it was computed with, so the artifact
   header carries all three identities; a snapshot whose stamps disagree
   with the loading daemon's is discarded wholesale (reported as
   [`Invalidated]), never partially reused.

   Recency is a monotonic tick per entry.  Persisted snapshots keep the
   ticks, so a warm restart resumes with the same eviction order.  Eviction
   scans for the minimum tick — O(capacity), which at the bounded capacities
   the daemon uses (hundreds) is noise next to one model forward. *)

type entry = {
  schedule : string;  (* dataset-encoded SuperSchedule *)
  predicted : float;
  measured : float;
  degraded : bool;
}

type slot = { entry : entry; mutable tick : int }

type t = {
  capacity : int;
  model_digest : string;
  index_digest : string;
  machine : string;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  mutable evictions : int;
}

let create ?(capacity = 512) ~model_digest ~index_digest ~machine () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  List.iter
    (fun (what, s) ->
      if String.exists (fun c -> c = ' ' || c = '\n') s then
        invalid_arg ("Cache.create: " ^ what ^ " with whitespace"))
    [ ("model_digest", model_digest); ("index_digest", index_digest);
      ("machine", machine) ];
  {
    capacity;
    model_digest;
    index_digest;
    machine;
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    evictions = 0;
  }

let size t = Hashtbl.length t.table
let capacity t = t.capacity
let evictions t = t.evictions

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      slot.tick <- tick t;
      Some slot.entry
  | None -> None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k slot ->
      match !victim with
      | Some (_, best) when slot.tick >= best -> ()
      | _ -> victim := Some (k, slot.tick))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key entry =
  if String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') key then
    invalid_arg "Cache.add: key with whitespace";
  if String.contains entry.schedule '\n' || String.contains entry.schedule ' '
  then invalid_arg "Cache.add: schedule with whitespace";
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_lru t);
  Hashtbl.add t.table key { entry; tick = tick t }

(* Entries in ascending tick order: the canonical serialization (load+save
   roundtrips bytes) and the replay order that rebuilds identical recency. *)
let sorted_slots t =
  let all = Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.table [] in
  List.sort (fun (_, a) (_, b) -> Int.compare a.tick b.tick) all

(* --- persistence --- *)

let save t path =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "CACHE model=%s index=%s machine=%s entries=%d\n"
    t.model_digest t.index_digest t.machine (Hashtbl.length t.table);
  List.iter
    (fun (k, slot) ->
      Printf.bprintf buf "E %d %s %.17g %.17g %d %s\n" slot.tick k
        slot.entry.predicted slot.entry.measured
        (if slot.entry.degraded then 1 else 0)
        slot.entry.schedule)
    (sorted_slots t);
  Robust.write_artifact ~kind:Robust.Kind.cache path (Buffer.contents buf)

type loaded = { cache : t; status : [ `Warm of int | `Invalidated of string ] }

(* Namespace check for kernel-partitioned caches: with [namespaces], every
   persisted key must carry a [<ns>/] prefix from the list.  A key without
   one comes from a pre-kernel snapshot whose entries cannot be attributed
   to any kernel, so the snapshot is discarded wholesale — same policy as a
   digest-stamp mismatch, never a partial reuse. *)
let missing_namespace ~namespaces key =
  match namespaces with
  | None -> false
  | Some nss ->
      not
        (List.exists
           (fun ns -> String.starts_with ~prefix:(ns ^ "/") key)
           nss)

let load ?(capacity = 512) ?namespaces ~model_digest ~index_digest ~machine path :
    (loaded, Robust.load_error) result =
  match Robust.read_artifact ~expected_kind:Robust.Kind.cache path with
  | Error e -> Error e
  | Ok payload -> (
      let malformed reason = Error (Robust.Malformed { file = path; reason }) in
      let lines = Robust.lines payload in
      if Array.length lines = 0 then malformed "empty cache snapshot"
      else
        let fields = String.split_on_char ' ' lines.(0) in
        match fields with
        | "CACHE" :: kvs -> (
            let get prefix =
              List.find_map
                (fun tok ->
                  if String.starts_with ~prefix:(prefix ^ "=") tok then
                    Some
                      (String.sub tok
                         (String.length prefix + 1)
                         (String.length tok - String.length prefix - 1))
                  else None)
                kvs
            in
            match (get "model", get "index", get "machine", get "entries") with
            | Some m, Some i, Some mc, Some n_s -> (
                match int_of_string_opt n_s with
                | None -> malformed ("bad entry count " ^ n_s)
                | Some n when n < 0 || n <> Array.length lines - 1 ->
                    malformed
                      (Printf.sprintf "header declares %s entries, snapshot has %d"
                         n_s
                         (Array.length lines - 1))
                | Some _ ->
                    let fresh =
                      create ~capacity ~model_digest ~index_digest ~machine ()
                    in
                    if m <> model_digest || i <> index_digest || mc <> machine
                    then
                      Ok
                        {
                          cache = fresh;
                          status =
                            `Invalidated
                              (Printf.sprintf
                                 "snapshot stamped model=%s index=%s machine=%s, \
                                  daemon runs model=%s index=%s machine=%s"
                                 m i mc model_digest index_digest machine);
                        }
                    else begin
                      (* Replay entries in stored (tick) order so recency
                         survives the restart; any structural damage aborts
                         the whole load with a typed error — a half-trusted
                         cache is worse than a cold one. *)
                      let err = ref None in
                      let orphan = ref None in
                      (try
                         Array.iteri
                           (fun li line ->
                             if li > 0 then
                               match String.split_on_char ' ' line with
                               | [ "E"; tick_s; key; pred_s; meas_s; deg_s; sched ]
                                 -> (
                                   if missing_namespace ~namespaces key then begin
                                     orphan := Some key;
                                     raise Exit
                                   end;
                                   match
                                     ( int_of_string_opt tick_s,
                                       float_of_string_opt pred_s,
                                       float_of_string_opt meas_s )
                                   with
                                   | Some tk, Some predicted, Some measured
                                     when deg_s = "0" || deg_s = "1" ->
                                       add fresh key
                                         {
                                           schedule = sched;
                                           predicted;
                                           measured;
                                           degraded = deg_s = "1";
                                         };
                                       (* Preserve the stored recency exactly. *)
                                       (Hashtbl.find fresh.table key).tick <- tk;
                                       fresh.clock <- max fresh.clock tk
                                   | _ ->
                                       err :=
                                         Some
                                           (Printf.sprintf
                                              "unparseable cache entry at payload \
                                               line %d" (li + 1));
                                       raise Exit)
                               | _ ->
                                   err :=
                                     Some
                                       (Printf.sprintf
                                          "malformed cache record at payload line %d"
                                          (li + 1));
                                   raise Exit)
                           lines
                       with Exit -> ());
                      match (!err, !orphan) with
                      | Some reason, _ -> malformed reason
                      | None, Some key ->
                          (* Partially replayed entries are discarded with
                             the snapshot: hand back an empty cache. *)
                          Ok
                            {
                              cache =
                                create ~capacity ~model_digest ~index_digest
                                  ~machine ();
                              status =
                                `Invalidated
                                  (Printf.sprintf
                                     "entry %S carries no kernel namespace \
                                      (pre-kernel snapshot)" key);
                            }
                      | None, None ->
                          fresh.evictions <- 0;
                          Ok { cache = fresh; status = `Warm (size fresh) }
                    end)
            | _ -> malformed "cache header missing model/index/machine/entries")
        | _ -> malformed ("missing CACHE header, got: " ^ lines.(0)))
