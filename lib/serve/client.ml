(* The `waco query` side of the wire: a blocking client over the same framed
   protocol.  Deliberately dumb — frame out, frame in — so tests can also
   drive it in pipelined mode ([send] N times, [recv] N times) to exercise
   the daemon's micro-batching. *)

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; inbuf = Buffer.create 1024; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let send t (req : Protocol.request) =
  if t.closed then failwith "Client.send: connection closed";
  write_all t.fd (Protocol.request_to_frame req)

(* Blocking read of exactly one response frame.  Raises [Failure] when the
   server hangs up mid-frame or sends damaged framing — client code treats
   either as a dead daemon. *)
let recv t =
  if t.closed then failwith "Client.recv: connection closed";
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents t.inbuf in
    match Protocol.decode_frame s with
    | `Frame (msg, body, consumed) -> (
        Buffer.clear t.inbuf;
        Buffer.add_substring t.inbuf s consumed (String.length s - consumed);
        match Protocol.response_of_frame ~msg body with
        | Ok resp -> resp
        | Error e -> failwith ("Client.recv: undecodable response: " ^ e))
    | `Bad reason -> failwith ("Client.recv: damaged frame: " ^ reason)
    | `Need _ -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "Client.recv: server closed the connection"
        | n ->
            Buffer.add_subbytes t.inbuf chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let request t req =
  send t req;
  recv t

let query ?(measure = true) ?(qid = "q") t source =
  match request t (Protocol.Query { Protocol.qid; source; measure }) with
  | Protocol.Answer a -> Ok a
  | Protocol.Error_msg e -> Error e
  | Protocol.Stats_json _ | Protocol.Pong | Protocol.Bye ->
      Error "unexpected response type to query"

let stats t =
  match request t Protocol.Stats with
  | Protocol.Stats_json j -> Ok j
  | Protocol.Error_msg e -> Error e
  | _ -> Error "unexpected response type to stats"

let ping t =
  match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

let shutdown t =
  match request t Protocol.Shutdown with Protocol.Bye -> true | _ -> false
