(* The `waco query` side of the wire: a blocking client over the same framed
   protocol.  Deliberately dumb — frame out, frame in — so tests can also
   drive it in pipelined mode ([send] N times, [recv] N times) to exercise
   the daemon's micro-batching.

   The failure surface is bounded: [connect] is a non-blocking connect with
   a select wait instead of an unbounded hang, [recv] takes an optional
   wall-clock timeout, and [query_with_retry] wraps the whole
   connect/query/close round trip in capped exponential backoff with
   deterministic jitter seeded by the request's [qid] — the same qid on
   every attempt, so a retried request that lands after a half-processed
   first attempt re-answers from the daemon's fingerprint cache instead of
   recomputing (idempotent by construction). *)

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable closed : bool;
}

(* [path] is an [Addr] spec: a bare Unix-socket path (every pre-TCP
   caller), [unix:PATH], or [tcp:HOST:PORT].  The bounded non-blocking
   connect lives in [Addr.connect] so the router's shard links share it. *)
let connect ?(timeout_s = 5.0) path =
  let fd = Addr.connect ~timeout_s (Addr.of_string path) in
  { fd; inbuf = Buffer.create 1024; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let send t (req : Protocol.request) =
  if t.closed then failwith "Client.send: connection closed";
  write_all t.fd (Protocol.request_to_frame req)

(* Blocking read of exactly one response frame, optionally bounded by
   [timeout_s] of total wall clock.  Raises [Failure] when the server hangs
   up mid-frame, sends damaged framing, or the timeout expires — client
   code treats any of these as a dead daemon. *)
let recv ?timeout_s t =
  if t.closed then failwith "Client.recv: connection closed";
  let deadline = Option.map (fun s -> Robust.mono_now () +. s) timeout_s in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents t.inbuf in
    match Protocol.decode_frame s with
    | `Frame (msg, body, consumed) -> (
        Buffer.clear t.inbuf;
        Buffer.add_substring t.inbuf s consumed (String.length s - consumed);
        match Protocol.response_of_frame ~msg body with
        | Ok resp -> resp
        | Error e -> failwith ("Client.recv: undecodable response: " ^ e))
    | `Bad reason -> failwith ("Client.recv: damaged frame: " ^ reason)
    | `Need _ ->
        (match deadline with
        | Some d -> (
            let remaining = d -. Robust.mono_now () in
            if remaining <= 0.0 then
              failwith "Client.recv: timed out waiting for response";
            match Unix.select [ t.fd ] [] [] remaining with
            | [], _, _ -> failwith "Client.recv: timed out waiting for response"
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        | None -> ());
        (match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "Client.recv: server closed the connection"
        | n -> Buffer.add_subbytes t.inbuf chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
  in
  go ()

let request ?timeout_s t req =
  send t req;
  recv ?timeout_s t

let query ?(measure = true) ?(deadline_ms = 0) ?kernel ?(qid = "q") ?timeout_s
    t source =
  match
    request ?timeout_s t
      (Protocol.Query { Protocol.qid; source; measure; deadline_ms; kernel })
  with
  | Protocol.Answer a -> Ok a
  | Protocol.Busy { retry_after_ms } ->
      Error (Printf.sprintf "busy: retry after %d ms" retry_after_ms)
  | Protocol.Error_msg e -> Error e
  | Protocol.Stats_json _ | Protocol.Pong | Protocol.Bye ->
      Error "unexpected response type to query"

let stats t =
  match request t Protocol.Stats with
  | Protocol.Stats_json j -> Ok j
  | Protocol.Error_msg e -> Error e
  | _ -> Error "unexpected response type to stats"

let ping t =
  match request t Protocol.Ping with Protocol.Pong -> true | _ -> false

let shutdown t =
  match request t Protocol.Shutdown with Protocol.Bye -> true | _ -> false

(* One fresh connection per attempt: a connection that saw a timeout or a
   torn frame is in an unknown state and is never reused.  [Busy] answers
   honor the daemon's retry hint in full — [max_s] caps only the client's
   own backoff, never the hint, which arrives identically whether the shed
   came from the daemon or was relayed verbatim by a router (the router
   never synthesizes a replacement hint for a shard's shed).  A hard 30 s
   ceiling bounds a hostile or broken hint.  Transport failures back off on
   the qid-seeded deterministic schedule.  A daemon [Error_msg] is a real
   answer about this request (damaged matrix, bad path) — retrying cannot
   fix it, so it returns immediately. *)
let query_with_retry ?(attempts = 3) ?(base_s = 0.05) ?(max_s = 1.0)
    ?(connect_timeout_s = 5.0) ?timeout_s ?(measure = true) ?(deadline_ms = 0)
    ?kernel ?(qid = "q") ~socket source =
  let seed = Hashtbl.hash qid in
  let attempts = max 1 attempts in
  let rec go attempt =
    let outcome =
      match connect ~timeout_s:connect_timeout_s socket with
      | exception e -> `Transport (Printexc.to_string e)
      | c -> (
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () ->
              match
                request ?timeout_s c
                  (Protocol.Query
                     { Protocol.qid; source; measure; deadline_ms; kernel })
              with
              | Protocol.Answer a -> `Done (Ok a)
              | Protocol.Busy { retry_after_ms } -> `Busy retry_after_ms
              | Protocol.Error_msg e -> `Done (Error e)
              | Protocol.Stats_json _ | Protocol.Pong | Protocol.Bye ->
                  `Done (Error "unexpected response type to query")
              | exception Failure msg -> `Transport msg
              | exception Unix.Unix_error (err, fn, _) ->
                  `Transport (fn ^ ": " ^ Unix.error_message err)))
    in
    match outcome with
    | `Done r -> r
    | `Busy hint_ms when attempt < attempts ->
        let backoff =
          Robust.backoff_delay ~base_s ~max_s ~seed ~attempt ()
        in
        let hint_s = Float.min 30.0 (float_of_int hint_ms /. 1000.0) in
        Unix.sleepf (Float.max backoff hint_s);
        go (attempt + 1)
    | `Busy hint_ms ->
        Error
          (Printf.sprintf "%s: still busy after %d attempt(s) (retry hint %d ms)"
             qid attempts hint_ms)
    | `Transport _ when attempt < attempts ->
        Unix.sleepf (Robust.backoff_delay ~base_s ~max_s ~seed ~attempt ());
        go (attempt + 1)
    | `Transport msg ->
        Error (Printf.sprintf "%s: gave up after %d attempt(s): %s" qid attempts msg)
  in
  go 1
