(** The `waco serve` daemon: model + index loaded once, tuning requests
    answered over a Unix-domain socket until shutdown.

    A single [select] loop owns all IO; between IO rounds the request
    scheduler drains decoded queries in micro-batches — per-batch the
    distinct cache misses (deduplicated by sparsity fingerprint) run
    concurrently on the worker pool's per-domain model replicas, then fresh
    answers enter the LRU cache and are persisted write-through inside the
    {!Robust} envelope.  FIFO order is preserved per connection. *)

type t

val create :
  ?pool:Parallel.Pool.t ->
  ?cache_capacity:int ->
  ?cache_file:string ->
  ?max_batch:int ->
  ?k:int ->
  ?ef:int ->
  ?log:(string -> unit) ->
  model:Waco.Costmodel.t ->
  index:Waco.Tuner.index ->
  index_file:string ->
  machine:Machine_model.Machine.t ->
  socket:string ->
  unit ->
  t
(** Validates model/index compatibility ({!Waco.Tuner.validate_compat} —
    raises [Robust.Load_error] on an embedding-dimension mismatch, citing
    [index_file]), builds one forward-only model replica per pool domain,
    and loads [cache_file] when it exists: a snapshot whose model digest,
    index fingerprint and machine name all match comes back warm; anything
    else (stale stamp, damaged envelope) starts cold — never garbage.

    [max_batch] (default 32) bounds one micro-batch; [k]/[ef] are the
    tuner's search knobs, fixed at daemon start so cached and fresh answers
    are comparable. *)

val process_batch : t -> Protocol.query list -> Protocol.response list
(** One micro-batch through the request scheduler, bypassing the socket —
    exactly what {!run} does for a contiguous run of queued queries
    (parse, fingerprint, dedup, cache probe, concurrent compute of the
    distinct misses, write-through persist).  Responses come back in input
    order.  Exposed so tests and the bench harness can drive batches
    deterministically. *)

val run : ?on_ready:(unit -> unit) -> t -> unit
(** Bind the socket (removing a stale file first), call [on_ready], and
    serve until a [Shutdown] request arrives.  On exit: cache persisted,
    connections closed, socket unlinked — also on exceptional exit.
    SIGPIPE is ignored for the duration (dying clients surface as [EPIPE]
    on their own connection, not a daemon kill). *)

val metrics : t -> Metrics.t
val cache : t -> Cache.t

val cache_status : t -> string
(** ["cold"], ["warm(<n>)"], ["invalidated"] or ["damaged"] — how the
    persistent cache came up at daemon start. *)

val stats_json : t -> string
(** The same JSON object a [Stats] request returns. *)
