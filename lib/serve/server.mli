(** The `waco serve` daemon: model + index loaded once, tuning requests
    answered over a Unix-domain or TCP socket ({!Addr} spec) until
    shutdown.  The transport choice is invisible above the fd: framing,
    micro-batching, deadlines, shedding and the reapers behave identically
    on both.

    A single [select] loop owns all IO; between IO rounds the request
    scheduler drains decoded queries in micro-batches — per-batch the
    distinct cache misses (deduplicated by sparsity fingerprint) run
    concurrently on the worker pool's per-domain model replicas, then fresh
    answers enter the LRU cache and are persisted write-through inside the
    {!Robust} envelope.  FIFO order is preserved per connection.

    The daemon degrades under overload and hostile clients instead of
    hanging: per-query [deadline_ms] budgets (expired queries answer from
    the cache or the unmeasured asymptotic fallback, marked degraded and
    never cached), a pending-queue high-water mark past which new queries
    answer [Busy] with a retry hint, timeouts that reap silent and
    mid-frame-stalled (trickle) connections, and a bounded non-blocking
    writer that drops clients who never drain their responses.  Every shed,
    deadline miss, reap and write stall is a {!Metrics} counter. *)

type t

val create :
  ?pool:Parallel.Pool.t ->
  ?cache_capacity:int ->
  ?cache_file:string ->
  ?max_batch:int ->
  ?k:int ->
  ?ef:int ->
  ?max_pending:int ->
  ?idle_timeout_s:float ->
  ?frame_timeout_s:float ->
  ?write_timeout_s:float ->
  ?log:(string -> unit) ->
  ?extra:(Waco.Costmodel.t * Waco.Tuner.index * string) list ->
  model:Waco.Costmodel.t ->
  index:Waco.Tuner.index ->
  index_file:string ->
  machine:Machine_model.Machine.t ->
  socket:string ->
  unit ->
  t
(** Validates model/index compatibility ({!Waco.Tuner.validate_compat} —
    raises [Robust.Load_error] on an embedding-dimension mismatch, citing
    [index_file]), builds one forward-only model replica per pool domain,
    and loads [cache_file] when it exists: a snapshot whose model digest,
    index fingerprint and machine name all match comes back warm; anything
    else (stale stamp, damaged envelope, a pre-kernel un-namespaced entry)
    starts cold — never garbage.

    [extra] adds one serving slot per additional [(model, index,
    index_file)] triple: the daemon then answers [kernel=] queries from the
    matching slot, with cache keys namespaced by kernel name so answers can
    never cross kernels.  Each model serves the kernel of its own algorithm;
    serving the same kernel twice, or MTTKRP (whose operand is a 3-D tensor
    the wire protocol cannot carry), raises [Invalid_argument].  A query
    naming no kernel is served by the SpMV slot when present, else the
    primary [model] slot — so a single-kernel daemon behaves exactly as
    before this field existed.

    [max_batch] (default 32) bounds one micro-batch; [k]/[ef] are the
    tuner's search knobs, fixed at daemon start so cached and fresh answers
    are comparable.

    [max_pending] (default 256) is the queued-query high-water mark: past
    it, new queries answer [Busy {retry_after_ms}] instead of queueing
    (control requests always get through, so an overloaded daemon stays
    observable and stoppable).  [idle_timeout_s] (default 60) reaps a
    connection that has sent nothing at all; [frame_timeout_s] (default 10)
    reaps one stalled in the middle of a frame — a trickler feeding a byte
    per tick never completes a frame and dies here; [write_timeout_s]
    (default 5) bounds how long one response write may wait for the client
    to drain before the connection is dropped. *)

val process_batch : t -> Protocol.query list -> Protocol.response list
(** One micro-batch through the request scheduler, bypassing the socket —
    exactly what {!run} does for a contiguous run of queued queries
    (parse, fingerprint, dedup, cache probe, concurrent compute of the
    distinct misses, write-through persist).  Responses come back in input
    order.  Exposed so tests and the bench harness can drive batches
    deterministically.  Every query is stamped as arriving now, so a
    [deadline_ms] budget starts at this call; the socket path stamps
    arrival at frame decode instead, charging queue wait to the budget. *)

val run : ?on_ready:(unit -> unit) -> t -> unit
(** Bind the endpoint (removing a stale socket file first for Unix paths),
    call [on_ready], and serve until a [Shutdown] request arrives.  On
    exit: cache persisted, connections closed, Unix socket unlinked — also
    on exceptional exit.  SIGPIPE is ignored for the duration (dying
    clients surface as [EPIPE] on their own connection, not a daemon
    kill). *)

val bound_endpoint : t -> string option
(** The endpoint {!run} actually bound — [Some] once listening.  Differs
    from the [~socket] spec only for [tcp:HOST:0], where it carries the
    kernel-chosen port; in-process tests poll it instead of racing on a
    fixed port. *)

val metrics : t -> Metrics.t
val cache : t -> Cache.t

val cache_status : t -> string
(** ["cold"], ["warm(<n>)"], ["invalidated"] or ["damaged"] — how the
    persistent cache came up at daemon start. *)

val stats_json : t -> string
(** The same JSON object a [Stats] request returns. *)
