(* The `waco serve --supervise` crash supervisor: a small parent process
   that forks the serving worker and restarts it when it dies abnormally.

   The division of labor is deliberate: the parent does nothing but fork,
   wait and sleep — it loads no model, spawns no domains (OCaml 5 forbids
   [Unix.fork] once any domain has ever run, so the worker builds its pool
   only after the fork) and holds no state the worker could corrupt.  All
   durable state lives in the worker's digest-stamped cache artifact, which
   the envelope checksum re-verifies on every load — a worker killed at any
   instant leaves either the previous complete snapshot or none, so the
   next incarnation comes up warm or cold, never wrong.

   Restart policy: crashes back off exponentially with deterministic
   seeded jitter ([Robust.backoff_delay] — reproducible in tests, no
   thundering herd across supervised fleets), a worker that survived
   [healthy_s] resets the consecutive-crash counter, and [max_restarts]
   consecutive crashes make the supervisor give up rather than flap
   forever.  SIGTERM/SIGINT forward to the worker and stop the loop. *)

type exit_reason =
  | Clean  (* the worker exited 0 on its own (Shutdown request) *)
  | Stopped  (* the supervisor was told to stop and took the worker down *)
  | Gave_up of int  (* consecutive-crash budget exhausted *)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let run ?(max_restarts = 10) ?(base_s = 0.1) ?(max_s = 5.0) ?(seed = 0)
    ?(healthy_s = 5.0) ?(on_spawn = ignore) ?(log = ignore) worker =
  let stopping = ref false in
  let child = ref (-1) in
  let forward signal =
    stopping := true;
    if !child > 0 then
      try Unix.kill !child signal with Unix.Unix_error _ -> ()
  in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun _ -> forward Sys.sigterm)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_term = install Sys.sigterm in
  let prev_int = install Sys.sigint in
  let restore s prev =
    match prev with
    | Some h -> ( try Sys.set_signal s h with Invalid_argument _ -> ())
    | None -> ()
  in
  let rec wait pid =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait pid
  in
  let rec loop consecutive =
    if !stopping then Stopped
    else begin
      match Unix.fork () with
      | 0 ->
          (* Worker: inherit nothing from the supervision machinery. *)
          (try Sys.set_signal Sys.sigterm Sys.Signal_default
           with Invalid_argument _ -> ());
          (try Sys.set_signal Sys.sigint Sys.Signal_default
           with Invalid_argument _ -> ());
          let code =
            try
              worker ();
              0
            with e ->
              prerr_endline ("waco serve worker: " ^ Printexc.to_string e);
              1
          in
          (* _exit, not exit: the parent's at_exit handlers and channel
             buffers are not this process's to run or flush. *)
          Unix._exit code
      | pid -> (
          child := pid;
          on_spawn pid;
          log (Printf.sprintf "worker started (pid %d)" pid);
          let born = Robust.mono_now () in
          let status = wait pid in
          child := -1;
          let lived = Robust.mono_now () -. born in
          if !stopping then begin
            log
              (Printf.sprintf "worker stopped on request (%s)"
                 (status_to_string status));
            Stopped
          end
          else
            match status with
            | Unix.WEXITED 0 ->
                log "worker exited cleanly";
                Clean
            | status ->
                (* A worker that ran healthy for a while earns a fresh
                   crash budget; a crash loop burns through it. *)
                let consecutive =
                  if lived >= healthy_s then 1 else consecutive + 1
                in
                if consecutive > max_restarts then begin
                  log
                    (Printf.sprintf
                       "worker died (%s) after %.1fs; giving up after %d \
                        consecutive crashes"
                       (status_to_string status) lived max_restarts);
                  Gave_up consecutive
                end
                else begin
                  let delay =
                    Robust.backoff_delay ~base_s ~max_s ~seed
                      ~attempt:consecutive ()
                  in
                  log
                    (Printf.sprintf
                       "worker died (%s) after %.1fs; restart %d in %.2fs"
                       (status_to_string status) lived consecutive delay);
                  if delay > 0.0 then Unix.sleepf delay;
                  loop consecutive
                end)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigterm prev_term;
      restore Sys.sigint prev_int)
    (fun () -> loop 0)
