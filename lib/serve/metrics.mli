(** The daemon's observability surface: monotonic counters plus cumulative
    per-phase seconds, mutex-serialized (the request scheduler updates them
    from pool workers); per-request trace spans; a JSON dump answering the
    [stats] request. *)

(** One request's trace, owned by that request (no locking); folded into
    the cumulative phase counters via {!record_span} on completion. *)
type span = {
  mutable parse_s : float;
  mutable extract_s : float;
  mutable traverse_s : float;
  mutable measure_s : float;
}

val span_create : unit -> span

val span_fields : span -> (string * float) list
(** Phase name -> seconds, in phase order (the wire format of an answer's
    trace). *)

type t = {
  mu : Mutex.t;
  started : float;
  mutable requests : int;
  mutable answers : int;
  mutable protocol_errors : int;
  mutable request_errors : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable degraded : int;
  mutable retries_absorbed : int;
  mutable measure_failures : int;
  mutable extractor_forwards : int;
  mutable traversals : int;
  mutable measured_runs : int;
  mutable asym_pruned : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable max_batch : int;
  mutable phase_b_batches : int;
      (** phase-B dispatches that carried at least one distinct miss *)
  mutable phase_b_misses : int;  (** distinct misses those dispatches carried *)
  mutable phase_b_max : int;  (** largest distinct-miss group so far *)
  phase_b_hist : int array;
      (** distinct-miss-count histogram, buckets 1 / 2-3 / 4-7 / 8-15 / 16+ *)
  mutable vm_batched_runs : int;
      (** per-kernel-slot batched plan executions (DESIGN.md §14) *)
  mutable cache_persist_failures : int;
  mutable shed : int;  (** queries answered [Busy] past the high-water mark *)
  mutable deadline_misses : int;
      (** answers that blew their [deadline_ms] (degraded reason "deadline") *)
  mutable reaped_idle : int;  (** connections closed for total silence *)
  mutable reaped_trickle : int;
      (** connections closed for stalling mid-frame (trickle/byte-at-a-time) *)
  mutable write_stalls : int;
      (** connections dropped because the client never drained its responses *)
  mutable parse_s : float;
  mutable extract_s : float;
  mutable traverse_s : float;
  mutable measure_s : float;
}

val create : unit -> t

val bump : t -> (t -> unit) -> unit
(** Run a counter update under the mutex:
    [bump m (fun m -> m.cache_hits <- m.cache_hits + 1)]. *)

val record_batch : t -> int -> unit
(** Note a dispatched micro-batch of [n] queries. *)

val record_phase_b : t -> int -> unit
(** Note a phase-B dispatch of [n] distinct cache misses (no-op when
    [n = 0]): bumps the batch/miss counters, the running maximum and the
    miss-count histogram bucket. *)

val record_span : t -> span -> unit

val counters : t -> (string * int) list
(** Snapshot of every integer counter, fixed order. *)

val counter : t -> string -> int option

val to_json :
  ?extra_ints:(string * int) list -> ?extra:(string * string) list -> t -> string
(** The [stats] response body: counters plus any [extra_ints] gauges
    (cache size, index size...), cumulative phase seconds, uptime, any
    [extra] string fields (cache identity, socket path...), and the
    protocol version. *)

val json_counter : string -> string -> int option
(** [json_counter json name] pulls an integer counter back out of a
    {!to_json} dump — the client-side half of the loop. *)
