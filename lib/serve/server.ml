(* The `waco serve` daemon: loads a model + HNSW index once, then answers
   tuning requests over a Unix-domain socket for as long as it lives.

   One thread of control owns all IO: a [select] loop accepts connections,
   accumulates bytes per connection and peels complete frames off with the
   total [Protocol] decoder.  Decoded queries land on a FIFO; between IO
   rounds the request scheduler drains it in micro-batches:

   - queries are parsed and fingerprinted, then deduplicated per batch —
     N clients asking about the same pattern cost one computation;
   - cache hits are answered immediately;
   - the distinct misses run [Tuner.query] concurrently on the worker pool,
     one forward-only [Costmodel.replicate] per domain (the same replica
     discipline as the index build), so independent requests overlap;
   - fresh non-degraded answers enter the LRU cache, which is persisted
     write-through inside the [Robust] envelope so a restarted daemon is
     warm.

   Degradation over failure, everywhere: a damaged request body answers
   [Error_msg] on its own connection; a failing measurement degrades to the
   fixed-CSR fallback inside [Tuner.tune]; a failing cache persist bumps a
   counter and keeps serving. *)

open Machine_model

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable alive : bool;
}

type t = {
  socket_path : string;
  machine : Machine.t;
  replicas : Waco.Costmodel.t array;  (* slot 0 is the loaded model itself *)
  index : Waco.Tuner.index;
  pool : Parallel.Pool.t option;
  cache : Cache.t;
  cache_file : string option;
  cache_status : string;
  metrics : Metrics.t;
  max_batch : int;
  k : int;
  ef : int;
  log : string -> unit;
  mutable stopping : bool;
}

let metrics t = t.metrics
let cache t = t.cache
let cache_status t = t.cache_status

let index_digest (index : Waco.Tuner.index) =
  Anns.Hnsw.fingerprint index.Waco.Tuner.hnsw ~payload:Schedule.Sched_io.serialize

let create ?pool ?(cache_capacity = 512) ?cache_file ?(max_batch = 32) ?(k = 10)
    ?(ef = 40) ?(log = ignore) ~model ~index ~index_file ~machine ~socket () =
  Waco.Tuner.validate_compat model ~index_file index;
  let domains = match pool with Some p -> Parallel.Pool.domains p | None -> 1 in
  let replicas =
    Array.init (max 1 domains) (fun i ->
        if i = 0 then model else Waco.Costmodel.replicate model)
  in
  let model_digest = Waco.Costmodel.digest model in
  let idx_digest = index_digest index in
  let machine_name = machine.Machine.name in
  let cache, cache_status =
    match cache_file with
    | Some file when Sys.file_exists file -> (
        match
          Cache.load ~capacity:cache_capacity ~model_digest
            ~index_digest:idx_digest ~machine:machine_name file
        with
        | Ok { cache; status = `Warm n } ->
            log (Printf.sprintf "cache: warm with %d entries from %s" n file);
            (cache, Printf.sprintf "warm(%d)" n)
        | Ok { cache; status = `Invalidated reason } ->
            log ("cache: snapshot invalidated: " ^ reason);
            (cache, "invalidated")
        | Error e ->
            log
              ("cache: snapshot unusable, starting cold: "
              ^ Robust.load_error_to_string e);
            ( Cache.create ~capacity:cache_capacity ~model_digest
                ~index_digest:idx_digest ~machine:machine_name (),
              "damaged" ))
    | _ ->
        ( Cache.create ~capacity:cache_capacity ~model_digest
            ~index_digest:idx_digest ~machine:machine_name (),
          "cold" )
  in
  {
    socket_path = socket;
    machine;
    replicas;
    index;
    pool;
    cache;
    cache_file;
    cache_status;
    metrics = Metrics.create ();
    max_batch = max 1 max_batch;
    k;
    ef;
    log;
    stopping = false;
  }

(* --- query processing ------------------------------------------------- *)

let coo_of_source = function
  | Protocol.Path p -> (
      match Sptensor.Mmio.read_coo p with
      | m -> Ok m
      | exception Sptensor.Mmio.Parse_error e ->
          Error (Printf.sprintf "%s: %s" p e)
      | exception Sys_error e -> Error e)
  | Protocol.Inline { nrows; ncols; entries } -> (
      match
        Sptensor.Coo.of_triplets ~nrows ~ncols
          (Array.to_list (Array.map (fun (r, c, v) -> (r, c, v)) entries))
      with
      | m -> Ok m
      | exception Invalid_argument e -> Error e)

(* Cache keys separate the measured and predict-only answer spaces: the two
   modes legitimately choose different schedules for the same pattern. *)
let cache_key_of ~measure fp =
  Fingerprint.key fp ^ if measure then "" else "#p"

let answer_of_result ~cache_hit ~span (r : Waco.Tuner.result) : Protocol.answer =
  {
    Protocol.schedule = Schedule.Sched_io.serialize r.Waco.Tuner.best;
    predicted = r.Waco.Tuner.best_predicted;
    measured = r.Waco.Tuner.best_measured;
    cache_hit;
    degraded = r.Waco.Tuner.degraded;
    degraded_reason = r.Waco.Tuner.degraded_reason;
    spans = Metrics.span_fields span;
  }

let answer_of_entry ~span (e : Cache.entry) : Protocol.answer =
  {
    Protocol.schedule = e.Cache.schedule;
    predicted = e.Cache.predicted;
    measured = e.Cache.measured;
    cache_hit = true;
    degraded = e.Cache.degraded;
    degraded_reason = None;
    spans = Metrics.span_fields span;
  }

(* One computed miss: run the factored tuner entry point on this worker's
   replica and record what it spent. *)
let compute_one t replica ~key ~measure m =
  let mt = t.metrics in
  Metrics.bump mt (fun m -> m.extractor_forwards <- m.extractor_forwards + 1);
  Metrics.bump mt (fun m -> m.traversals <- m.traversals + 1);
  let r =
    Waco.Tuner.query replica t.machine ~k:t.k ~ef:t.ef ~measure ~id:key m
      t.index
  in
  Metrics.bump mt (fun m ->
      m.measured_runs <- m.measured_runs + r.Waco.Tuner.measured_runs;
      m.measure_failures <- m.measure_failures + r.Waco.Tuner.measure_failures;
      m.retries_absorbed <- m.retries_absorbed + r.Waco.Tuner.measure_retries;
      m.asym_pruned <- m.asym_pruned + r.Waco.Tuner.asym_pruned);
  if r.Waco.Tuner.degraded then
    Metrics.bump mt (fun m -> m.degraded <- m.degraded + 1);
  r

(* Process one micro-batch of decoded queries.  Returns each query's
   response in input order. *)
let process_batch t (batch : Protocol.query list) : Protocol.response list =
  Metrics.record_batch t.metrics (List.length batch);
  (* Phase A (sequential, cheap): parse + fingerprint + cache probe. *)
  let parsed =
    List.map
      (fun (q : Protocol.query) ->
        let span = Metrics.span_create () in
        let t0 = Unix.gettimeofday () in
        let outcome =
          match coo_of_source q.Protocol.source with
          | Error e -> `Err e
          | Ok m -> `Parsed (cache_key_of ~measure:q.Protocol.measure (Fingerprint.of_coo m), m)
        in
        span.Metrics.parse_s <- Unix.gettimeofday () -. t0;
        (q, span, outcome))
      batch
  in
  (* Distinct cache misses, in first-appearance order (kept stable so pool
     and sequential runs compute the same work list). *)
  let miss_order = ref [] in
  let misses = Hashtbl.create 8 in
  List.iter
    (fun (q, _, outcome) ->
      match outcome with
      | `Err _ -> ()
      | `Parsed (key, m) ->
          if Cache.find t.cache key = None && not (Hashtbl.mem misses key)
          then begin
            Hashtbl.add misses key (m, q.Protocol.measure);
            miss_order := key :: !miss_order
          end)
    parsed;
  let miss_keys = Array.of_list (List.rev !miss_order) in
  (* Phase B: compute the distinct misses, concurrently when the pool and
     the batch depth allow it. *)
  let computed = Hashtbl.create 8 in
  let work key ~worker =
    let m, measure = Hashtbl.find misses key in
    let t0 = Unix.gettimeofday () in
    let r = compute_one t t.replicas.(worker) ~key ~measure m in
    (key, r, Unix.gettimeofday () -. t0)
  in
  let results =
    match t.pool with
    | Some p when Parallel.Pool.domains p > 1 && Array.length miss_keys > 1 ->
        Parallel.Pool.map_workers p (fun ~worker key -> work key ~worker) miss_keys
    | _ -> Array.map (fun key -> work key ~worker:0) miss_keys
  in
  Array.iter (fun (key, r, secs) -> Hashtbl.replace computed key (r, secs)) results;
  (* Phase C (sequential): cache insertion in deterministic order, one
     write-through persist per batch, answers in input order. *)
  let fresh = ref false in
  Array.iter
    (fun key ->
      let r, _ = Hashtbl.find computed key in
      if not r.Waco.Tuner.degraded then begin
        Cache.add t.cache key
          {
            Cache.schedule = Schedule.Sched_io.serialize r.Waco.Tuner.best;
            predicted = r.Waco.Tuner.best_predicted;
            measured = r.Waco.Tuner.best_measured;
            degraded = false;
          };
        fresh := true
      end)
    miss_keys;
  (if !fresh then
     match t.cache_file with
     | Some file -> (
         try Cache.save t.cache file
         with e ->
           Metrics.bump t.metrics (fun m ->
               m.cache_persist_failures <- m.cache_persist_failures + 1);
           t.log
             (Printf.sprintf "cache: persist to %s failed: %s" file
                (Printexc.to_string e)))
     | None -> ());
  List.map
    (fun ((_q : Protocol.query), span, outcome) ->
      match outcome with
      | `Err e ->
          Metrics.bump t.metrics (fun m ->
              m.request_errors <- m.request_errors + 1);
          Metrics.record_span t.metrics span;
          Protocol.Error_msg e
      | `Parsed (key, _) -> (
          match Hashtbl.find_opt computed key with
          | Some (r, _secs) ->
              span.Metrics.extract_s <- r.Waco.Tuner.feature_seconds;
              span.Metrics.traverse_s <- r.Waco.Tuner.search_seconds;
              span.Metrics.measure_s <- r.Waco.Tuner.measure_seconds;
              Metrics.bump t.metrics (fun m ->
                  m.cache_misses <- m.cache_misses + 1;
                  m.answers <- m.answers + 1);
              Metrics.record_span t.metrics span;
              Protocol.Answer (answer_of_result ~cache_hit:false ~span r)
          | None -> (
              (* Not computed this batch: it was a cache hit at probe time. *)
              match Cache.find t.cache key with
              | Some entry ->
                  Metrics.bump t.metrics (fun m ->
                      m.cache_hits <- m.cache_hits + 1;
                      m.answers <- m.answers + 1);
                  Metrics.record_span t.metrics span;
                  Protocol.Answer (answer_of_entry ~span entry)
              | None ->
                  (* Computed but degraded and uncached: replay the compute
                     result is gone — answer degraded honestly. *)
                  Metrics.bump t.metrics (fun m ->
                      m.request_errors <- m.request_errors + 1);
                  Protocol.Error_msg "internal: answer neither cached nor computed")))
    parsed

(* --- the IO loop ------------------------------------------------------- *)

let stats_json t =
  Metrics.to_json
    ~extra_ints:
      [
        ("cache_size", Cache.size t.cache);
        ("cache_capacity", Cache.capacity t.cache);
        ("cache_evictions", Cache.evictions t.cache);
        ("index_size", Anns.Hnsw.size t.index.Waco.Tuner.hnsw);
        ("index_lint_rejected", t.index.Waco.Tuner.lint_rejected);
        ("index_asym_rejected", t.index.Waco.Tuner.asym_rejected);
        ("domains", Array.length t.replicas);
      ]
    ~extra:
      [
        ("socket", t.socket_path);
        ("machine", t.machine.Machine.name);
        ("cache_status", t.cache_status);
      ]
    t.metrics

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let send t conn (resp : Protocol.response) =
  if conn.alive then
    try write_all conn.fd (Protocol.response_to_frame resp)
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false;
      t.log "client went away mid-response"

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Drain complete frames out of a connection's buffer; enqueue well-formed
   requests, answer undecodable bodies, kill the connection on framing
   damage. *)
let drain_frames t conn queue =
  let rec go () =
    let s = Buffer.contents conn.inbuf in
    match Protocol.decode_frame s with
    | `Need _ -> ()
    | `Bad reason ->
        Metrics.bump t.metrics (fun m ->
            m.protocol_errors <- m.protocol_errors + 1);
        send t conn (Protocol.Error_msg ("protocol: " ^ reason));
        close_conn conn
    | `Frame (msg, body, consumed) -> (
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s consumed (String.length s - consumed);
        match Protocol.request_of_frame ~msg body with
        | Ok req ->
            Metrics.bump t.metrics (fun m -> m.requests <- m.requests + 1);
            Queue.add (conn, req) queue;
            go ()
        | Error e ->
            Metrics.bump t.metrics (fun m ->
                m.protocol_errors <- m.protocol_errors + 1);
            send t conn (Protocol.Error_msg ("request: " ^ e));
            go ())
  in
  go ()

(* Drain the request FIFO: control requests answer inline, runs of queries
   dispatch as micro-batches of at most [max_batch].  FIFO order per
   connection is preserved — a client that pipelines query;stats sees the
   stats taken after its query. *)
let drain_queue t queue =
  while not (Queue.is_empty queue) do
    match Queue.peek queue with
    | _, Protocol.Stats ->
        let conn, _ = Queue.pop queue in
        send t conn (Protocol.Stats_json (stats_json t))
    | _, Protocol.Ping ->
        let conn, _ = Queue.pop queue in
        send t conn Protocol.Pong
    | _, Protocol.Shutdown ->
        let conn, _ = Queue.pop queue in
        t.stopping <- true;
        send t conn Protocol.Bye
    | _, Protocol.Query _ ->
        (* Collect the contiguous run of queries at the head. *)
        let conns = ref [] and queries = ref [] in
        let continue = ref true in
        while
          !continue
          && (not (Queue.is_empty queue))
          && List.length !queries < t.max_batch
        do
          match Queue.peek queue with
          | conn, Protocol.Query q ->
              ignore (Queue.pop queue);
              conns := conn :: !conns;
              queries := q :: !queries
          | _ -> continue := false
        done;
        let conns = List.rev !conns and queries = List.rev !queries in
        let responses = process_batch t queries in
        List.iter2 (fun conn resp -> send t conn resp) conns responses
  done

let run ?(on_ready = ignore) t =
  (* A dying client must not kill the daemon with SIGPIPE; writes surface
     EPIPE instead, handled per connection. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  (try if Sys.file_exists t.socket_path then Sys.remove t.socket_path
   with Sys_error _ -> ());
  Robust.mkdir_p (Filename.dirname t.socket_path);
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX t.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  t.log (Printf.sprintf "listening on %s" t.socket_path);
  on_ready ();
  let conns : conn list ref = ref [] in
  let queue : (conn * Protocol.request) Queue.t = Queue.create () in
  let finally () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove t.socket_path with Sys_error _ -> ());
    List.iter close_conn !conns;
    (match t.cache_file with
    | Some file -> (
        try Cache.save t.cache file
        with e ->
          t.log
            (Printf.sprintf "cache: final persist failed: %s"
               (Printexc.to_string e)))
    | None -> ());
    match prev_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  Fun.protect ~finally (fun () ->
      let chunk = Bytes.create 65536 in
      while not t.stopping do
        conns := List.filter (fun c -> c.alive) !conns;
        let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
        match Unix.select fds [] [] 1.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            (* New connections. *)
            if List.mem listen_fd readable then begin
              let accepting = ref true in
              while !accepting do
                match Unix.accept listen_fd with
                | fd, _ ->
                    Unix.clear_nonblock fd;
                    conns :=
                      { fd; inbuf = Buffer.create 1024; alive = true } :: !conns
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    accepting := false
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              done
            end;
            (* Bytes from existing connections. *)
            List.iter
              (fun conn ->
                if conn.alive && List.mem conn.fd readable then
                  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
                  | 0 -> close_conn conn
                  | n ->
                      Buffer.add_subbytes conn.inbuf chunk 0 n;
                      drain_frames t conn queue
                  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                      close_conn conn
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
              !conns;
            (* The request scheduler. *)
            drain_queue t queue
      done)
