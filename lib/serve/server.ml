(* The `waco serve` daemon: loads a model + HNSW index once, then answers
   tuning requests over a Unix-domain or TCP socket ([Addr] spec) for as
   long as it lives.

   One thread of control owns all IO: a [select] loop accepts connections,
   accumulates bytes per connection and peels complete frames off with the
   total [Protocol] decoder.  Decoded queries land on a FIFO; between IO
   rounds the request scheduler drains it in micro-batches:

   - queries are parsed and fingerprinted, then deduplicated per batch —
     N clients asking about the same pattern cost one computation;
   - cache hits are answered immediately;
   - the distinct misses run [Tuner.query] concurrently on the worker pool,
     one forward-only [Costmodel.replicate] per domain (the same replica
     discipline as the index build), so independent requests overlap;
   - fresh non-degraded answers enter the LRU cache, which is persisted
     write-through inside the [Robust] envelope so a restarted daemon is
     warm.

   Degradation over failure, everywhere: a damaged request body answers
   [Error_msg] on its own connection; a failing measurement degrades to the
   fixed-CSR fallback inside [Tuner.tune]; a failing cache persist bumps a
   counter and keeps serving.

   Overload and hostile clients degrade the same way.  Each query's
   [deadline_ms] becomes an absolute instant at frame-decode time and rides
   through the scheduler: an expired query answers from the cache or the
   unmeasured asymptotic fallback (degraded, never cached) instead of
   computing.  Past the pending-queue high-water mark new queries answer
   [Busy] with a retry hint instead of queueing without bound.  A client
   that stalls mid-frame (trickle) or goes silent is reaped on a timeout;
   one that never drains its responses is dropped when the bounded
   non-blocking write gives up.  Every such event is a [Metrics] counter. *)

open Machine_model

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable alive : bool;
  mutable last_byte : float;  (* when the last byte arrived (or accept time) *)
  mutable partial_since : float;
      (* when the current incomplete frame started accumulating; 0.0 at a
         frame boundary (empty input buffer) *)
}

(* One served kernel: its trained model (replicated per worker domain, slot 0
   the loaded model itself) and its HNSW index.  The daemon owns one slot per
   kernel it serves; every query resolves to exactly one slot, and cache keys
   are namespaced by the slot's kernel name so answers can never cross. *)
type slot = {
  kernel : Waco.Kernel.t;
  replicas : Waco.Costmodel.t array;
  index : Waco.Tuner.index;
}

type t = {
  socket_path : string;  (* the listen endpoint spec ([Addr] syntax) *)
  mutable bound : string option;
      (* the endpoint actually bound once [run] is listening — differs from
         [socket_path] only for [tcp:HOST:0], where the kernel picks the
         port; tests read it back instead of racing on a fixed port *)
  machine : Machine.t;
  slots : slot array;  (* slot 0 is the primary (the ~model/~index pair) *)
  default_slot : int;
      (* what a kernel-less (pre-kernel client) query gets: the spmv slot
         when served, else the primary *)
  pool : Parallel.Pool.t option;
  cache : Cache.t;
  cache_file : string option;
  cache_status : string;
  metrics : Metrics.t;
  max_batch : int;
  k : int;
  ef : int;
  max_pending : int;  (* queued-query high-water mark; past it, shed *)
  idle_timeout_s : float;
  frame_timeout_s : float;
  write_timeout_s : float;
  log : string -> unit;
  queue : (conn * Protocol.request * float) Queue.t;  (* req + arrival time *)
  mutable pending_queries : int;  (* queries currently in [queue] *)
  mutable stopping : bool;
}

let metrics t = t.metrics
let cache t = t.cache
let cache_status t = t.cache_status
let bound_endpoint t = t.bound

let index_digest (index : Waco.Tuner.index) =
  Anns.Hnsw.fingerprint index.Waco.Tuner.hnsw ~payload:Schedule.Sched_io.serialize

let create ?pool ?(cache_capacity = 512) ?cache_file ?(max_batch = 32) ?(k = 10)
    ?(ef = 40) ?(max_pending = 256) ?(idle_timeout_s = 60.0)
    ?(frame_timeout_s = 10.0) ?(write_timeout_s = 5.0) ?(log = ignore)
    ?(extra = []) ~model ~index ~index_file ~machine ~socket () =
  let domains = match pool with Some p -> Parallel.Pool.domains p | None -> 1 in
  let mk_slot (m, idx, idx_file) =
    Waco.Tuner.validate_compat m ~index_file:idx_file idx;
    let kernel = Waco.Costmodel.kernel_of m in
    if Waco.Kernel.equal kernel Waco.Kernel.Mttkrp then
      invalid_arg
        "Server.create: mttkrp needs a 3-D tensor; the wire protocol carries \
         2-D matrices";
    {
      kernel;
      replicas =
        Array.init (max 1 domains) (fun i ->
            if i = 0 then m else Waco.Costmodel.replicate m);
      index = idx;
    }
  in
  let slots =
    Array.of_list (List.map mk_slot ((model, index, index_file) :: extra))
  in
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun j s' ->
          if i < j && Waco.Kernel.equal s.kernel s'.kernel then
            invalid_arg
              (Printf.sprintf "Server.create: kernel %s served twice"
                 (Waco.Kernel.name s.kernel)))
        slots)
    slots;
  let default_slot =
    let spmv = ref 0 in
    Array.iteri
      (fun i s -> if Waco.Kernel.equal s.kernel Waco.Kernel.default then spmv := i)
      slots;
    !spmv
  in
  let join f = String.concat "+" (Array.to_list (Array.map f slots)) in
  let model_digest = join (fun s -> Waco.Costmodel.digest s.replicas.(0)) in
  let idx_digest = join (fun s -> index_digest s.index) in
  let namespaces =
    Array.to_list (Array.map (fun s -> Waco.Kernel.name s.kernel) slots)
  in
  let machine_name = machine.Machine.name in
  let cache, cache_status =
    match cache_file with
    | Some file when Sys.file_exists file -> (
        match
          Cache.load ~capacity:cache_capacity ~namespaces ~model_digest
            ~index_digest:idx_digest ~machine:machine_name file
        with
        | Ok { cache; status = `Warm n } ->
            log (Printf.sprintf "cache: warm with %d entries from %s" n file);
            (cache, Printf.sprintf "warm(%d)" n)
        | Ok { cache; status = `Invalidated reason } ->
            log ("cache: snapshot invalidated: " ^ reason);
            (cache, "invalidated")
        | Error e ->
            log
              ("cache: snapshot unusable, starting cold: "
              ^ Robust.load_error_to_string e);
            ( Cache.create ~capacity:cache_capacity ~model_digest
                ~index_digest:idx_digest ~machine:machine_name (),
              "damaged" ))
    | _ ->
        ( Cache.create ~capacity:cache_capacity ~model_digest
            ~index_digest:idx_digest ~machine:machine_name (),
          "cold" )
  in
  (* Fail fast on a malformed listen spec: a daemon that parses its
     endpoint only at [run] time dies after the expensive model load. *)
  ignore (Addr.of_string socket);
  {
    socket_path = socket;
    bound = None;
    machine;
    slots;
    default_slot;
    pool;
    cache;
    cache_file;
    cache_status;
    metrics = Metrics.create ();
    max_batch = max 1 max_batch;
    k;
    ef;
    max_pending = max 1 max_pending;
    idle_timeout_s;
    frame_timeout_s;
    write_timeout_s;
    log;
    queue = Queue.create ();
    pending_queries = 0;
    stopping = false;
  }

(* --- query processing ------------------------------------------------- *)

let coo_of_source = function
  | Protocol.Path p -> (
      match Sptensor.Mmio.read_coo p with
      | m -> Ok m
      | exception Sptensor.Mmio.Parse_error e ->
          Error (Printf.sprintf "%s: %s" p e)
      | exception Sys_error e -> Error e)
  | Protocol.Inline { nrows; ncols; entries } -> (
      match Sptensor.Coo.of_triplet_array ~nrows ~ncols entries with
      | m -> Ok m
      | exception Invalid_argument e -> Error e)

(* Cache keys separate the measured and predict-only answer spaces: the two
   modes legitimately choose different schedules for the same pattern.  The
   kernel-name prefix partitions the key space per served kernel, so the
   same sparsity fingerprint can never hand one kernel's schedule to
   another's query. *)
let cache_key_of ~kernel ~measure fp =
  Waco.Kernel.name kernel ^ "/" ^ Fingerprint.key fp
  ^ if measure then "" else "#p"

(* Which slot answers a query: its named kernel's, or — kernel omitted, a
   pre-kernel client — the daemon's default slot.  A recognized kernel the
   daemon does not serve is a per-query error, never a silent substitute. *)
let slot_for t (kernel : Waco.Kernel.t option) =
  match kernel with
  | None -> Ok t.default_slot
  | Some k -> (
      let found = ref None in
      Array.iteri
        (fun i s -> if Waco.Kernel.equal s.kernel k then found := Some i)
        t.slots;
      match !found with
      | Some i -> Ok i
      | None ->
          Error
            (Printf.sprintf "kernel %s not served (this daemon serves %s)"
               (Waco.Kernel.name k)
               (String.concat ", "
                  (Array.to_list
                     (Array.map
                        (fun s -> Waco.Kernel.name s.kernel)
                        t.slots)))))

let answer_of_result ~cache_hit ~span (r : Waco.Tuner.result) : Protocol.answer =
  {
    Protocol.schedule = Schedule.Sched_io.serialize r.Waco.Tuner.best;
    predicted = r.Waco.Tuner.best_predicted;
    measured = r.Waco.Tuner.best_measured;
    cache_hit;
    degraded = r.Waco.Tuner.degraded;
    degraded_reason = r.Waco.Tuner.degraded_reason;
    spans = Metrics.span_fields span;
  }

let answer_of_entry ~span (e : Cache.entry) : Protocol.answer =
  {
    Protocol.schedule = e.Cache.schedule;
    predicted = e.Cache.predicted;
    measured = e.Cache.measured;
    cache_hit = true;
    degraded = e.Cache.degraded;
    degraded_reason = None;
    spans = Metrics.span_fields span;
  }

(* [deadline_ms] on the wire -> an absolute expiry instant, from the moment
   the daemon first saw the request (frame decode), not batch dispatch — the
   budget covers queue wait too. *)
let deadline_at_of (q : Protocol.query) ~arrival =
  if q.Protocol.deadline_ms > 0 then
    Some (arrival +. (float_of_int q.Protocol.deadline_ms /. 1000.0))
  else None

let expired = function
  | None -> false
  | Some d -> Robust.mono_now () >= d

(* Merge two members' deadlines for one deduplicated computation: the group
   runs under the laxest member (None = no deadline at all), so a tight
   straggler can never degrade a relaxed client's answer. *)
let merge_deadline a b =
  match (a, b) with Some x, Some y -> Some (Float.max x y) | _ -> None

(* Fold one computed result's spend into the cumulative counters — shared
   by the per-miss (pool) and batched (single-domain) phase-B paths. *)
let note_result t (r : Waco.Tuner.result) =
  Metrics.bump t.metrics (fun m ->
      m.measured_runs <- m.measured_runs + r.Waco.Tuner.measured_runs;
      m.measure_failures <- m.measure_failures + r.Waco.Tuner.measure_failures;
      m.retries_absorbed <- m.retries_absorbed + r.Waco.Tuner.measure_retries;
      m.asym_pruned <- m.asym_pruned + r.Waco.Tuner.asym_pruned);
  if r.Waco.Tuner.degraded then
    Metrics.bump t.metrics (fun m -> m.degraded <- m.degraded + 1)

(* One computed miss: run the factored tuner entry point on the resolved
   slot's worker replica and record what it spent. *)
let compute_one t slot ~worker ~key ~measure ?deadline_at m =
  let mt = t.metrics in
  Metrics.bump mt (fun m -> m.extractor_forwards <- m.extractor_forwards + 1);
  Metrics.bump mt (fun m -> m.traversals <- m.traversals + 1);
  let r =
    Waco.Tuner.query slot.replicas.(worker) t.machine ~k:t.k ~ef:t.ef ~measure
      ?deadline_at ~id:key m slot.index
  in
  note_result t r;
  r

(* The single-domain phase B: group the distinct misses by kernel slot (in
   first-appearance order, so the cache-insertion order of phase C is
   unchanged) and run each group through [Tuner.query_batch] — all of a
   group's uncached features come from one batched extractor-plan execution
   (DESIGN.md §14) instead of one eager forward per miss. *)
let compute_batched t miss_keys misses computed =
  let group_order = ref [] in
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun i key ->
      let si, _, _, _ = Hashtbl.find misses key in
      match Hashtbl.find_opt groups si with
      | Some members -> members := i :: !members
      | None ->
          Hashtbl.add groups si (ref [ i ]);
          group_order := si :: !group_order)
    miss_keys;
  List.iter
    (fun si ->
      let idxs = Array.of_list (List.rev !(Hashtbl.find groups si)) in
      let slot = t.slots.(si) in
      let queries =
        Array.map
          (fun i ->
            let key = miss_keys.(i) in
            let _, m, measure, deadline_at = Hashtbl.find misses key in
            {
              Waco.Tuner.bq_id = key;
              bq_coo = m;
              bq_measure = measure;
              bq_deadline_at = deadline_at;
            })
          idxs
      in
      Metrics.bump t.metrics (fun m ->
          m.extractor_forwards <- m.extractor_forwards + Array.length idxs;
          m.traversals <- m.traversals + Array.length idxs;
          m.vm_batched_runs <- m.vm_batched_runs + 1);
      let t0 = Robust.mono_now () in
      let results =
        Waco.Tuner.query_batch slot.replicas.(0) t.machine ~k:t.k ~ef:t.ef
          queries slot.index
      in
      let secs =
        (Robust.mono_now () -. t0) /. float_of_int (max 1 (Array.length idxs))
      in
      Array.iteri
        (fun j i ->
          let r = results.(j) in
          note_result t r;
          Hashtbl.replace computed miss_keys.(i) (r, secs))
        idxs)
    (List.rev !group_order)

(* The expired-before-compute answer: the asymptotic analyzer's
   guaranteed-not-terrible pick, unmeasured — there is no time left for a
   traversal, let alone a simulator run.  Degraded, so never cached. *)
let deadline_fallback t slot ~key ~span m =
  let wl = Workload.of_coo ~id:key m in
  let algo = slot.replicas.(0).Waco.Costmodel.algo in
  let r =
    Waco.Tuner.degraded ~measure:false t.machine wl algo ~reason:"deadline"
  in
  Metrics.bump t.metrics (fun m ->
      m.cache_misses <- m.cache_misses + 1;
      m.degraded <- m.degraded + 1;
      m.answers <- m.answers + 1);
  Metrics.record_span t.metrics span;
  Protocol.Answer (answer_of_result ~cache_hit:false ~span r)

(* Process one micro-batch of arrival-stamped queries.  Returns each query's
   response in input order. *)
let process_stamped t (batch : (Protocol.query * float) list) :
    Protocol.response list =
  Metrics.record_batch t.metrics (List.length batch);
  (* Phase A (sequential, cheap): parse + fingerprint + cache probe. *)
  let parsed =
    List.map
      (fun ((q : Protocol.query), arrival) ->
        let span = Metrics.span_create () in
        let t0 = Robust.mono_now () in
        let outcome =
          match slot_for t q.Protocol.kernel with
          | Error e -> `Err e
          | Ok si -> (
              match coo_of_source q.Protocol.source with
              | Error e -> `Err e
              | Ok m ->
                  `Parsed
                    ( si,
                      cache_key_of ~kernel:t.slots.(si).kernel
                        ~measure:q.Protocol.measure (Fingerprint.of_coo m),
                      m ))
        in
        span.Metrics.parse_s <- Robust.mono_now () -. t0;
        (q, deadline_at_of q ~arrival, span, outcome))
      batch
  in
  (* Distinct cache misses, in first-appearance order (kept stable so pool
     and sequential runs compute the same work list).  A miss whose deadline
     has already expired is not computed at all — it answers from the
     fallback below. *)
  let miss_order = ref [] in
  let misses = Hashtbl.create 8 in
  List.iter
    (fun (q, dl, _, outcome) ->
      match outcome with
      | `Err _ -> ()
      | `Parsed (si, key, m) ->
          if Cache.find t.cache key = None then begin
            match Hashtbl.find_opt misses key with
            | Some (si0, m0, measure0, dl0) ->
                (* Another member already claims this key: relax the group
                   deadline to the laxest member. *)
                Hashtbl.replace misses key
                  (si0, m0, measure0, merge_deadline dl0 dl)
            | None ->
                if not (expired dl) then begin
                  Hashtbl.add misses key (si, m, q.Protocol.measure, dl);
                  miss_order := key :: !miss_order
                end
          end)
    parsed;
  let miss_keys = Array.of_list (List.rev !miss_order) in
  (* Phase B: compute the distinct misses — concurrently when the pool and
     the batch depth allow it, else slot-grouped through the batched
     compiled plans.  Either way, one observability record per dispatch. *)
  Metrics.record_phase_b t.metrics (Array.length miss_keys);
  let computed = Hashtbl.create 8 in
  (match t.pool with
  | Some p when Parallel.Pool.domains p > 1 && Array.length miss_keys > 1 ->
      let work key ~worker =
        let si, m, measure, deadline_at = Hashtbl.find misses key in
        let t0 = Robust.mono_now () in
        let r =
          compute_one t t.slots.(si) ~worker ~key ~measure ?deadline_at m
        in
        (key, r, Robust.mono_now () -. t0)
      in
      let results =
        Parallel.Pool.map_workers p (fun ~worker key -> work key ~worker)
          miss_keys
      in
      Array.iter
        (fun (key, r, secs) -> Hashtbl.replace computed key (r, secs))
        results
  | _ -> compute_batched t miss_keys misses computed);
  (* Phase C (sequential): cache insertion in deterministic order, one
     write-through persist per batch, answers in input order.  Degraded
     answers — including every deadline-truncated one — never enter the
     cache. *)
  let fresh = ref false in
  Array.iter
    (fun key ->
      let r, _ = Hashtbl.find computed key in
      if not r.Waco.Tuner.degraded then begin
        Cache.add t.cache key
          {
            Cache.schedule = Schedule.Sched_io.serialize r.Waco.Tuner.best;
            predicted = r.Waco.Tuner.best_predicted;
            measured = r.Waco.Tuner.best_measured;
            degraded = false;
          };
        fresh := true
      end)
    miss_keys;
  (if !fresh then
     match t.cache_file with
     | Some file -> (
         try Cache.save t.cache file
         with e ->
           Metrics.bump t.metrics (fun m ->
               m.cache_persist_failures <- m.cache_persist_failures + 1);
           t.log
             (Printf.sprintf "cache: persist to %s failed: %s" file
                (Printexc.to_string e)))
     | None -> ());
  let note_deadline_miss dl (resp : Protocol.response) =
    let reason_is_deadline =
      match resp with
      | Protocol.Answer a -> a.Protocol.degraded_reason = Some "deadline"
      | _ -> false
    in
    if reason_is_deadline || expired dl then
      Metrics.bump t.metrics (fun m ->
          m.deadline_misses <- m.deadline_misses + 1);
    resp
  in
  List.map
    (fun ((_q : Protocol.query), dl, span, outcome) ->
      match outcome with
      | `Err e ->
          Metrics.bump t.metrics (fun m ->
              m.request_errors <- m.request_errors + 1);
          Metrics.record_span t.metrics span;
          Protocol.Error_msg e
      | `Parsed (si, key, m) -> (
          match Hashtbl.find_opt computed key with
          | Some (r, _secs) ->
              span.Metrics.extract_s <- r.Waco.Tuner.feature_seconds;
              span.Metrics.traverse_s <- r.Waco.Tuner.search_seconds;
              span.Metrics.measure_s <- r.Waco.Tuner.measure_seconds;
              Metrics.bump t.metrics (fun m ->
                  m.cache_misses <- m.cache_misses + 1;
                  m.answers <- m.answers + 1);
              Metrics.record_span t.metrics span;
              note_deadline_miss dl
                (Protocol.Answer (answer_of_result ~cache_hit:false ~span r))
          | None -> (
              (* Not computed this batch: a cache hit at probe time, or a
                 miss whose deadline expired before compute. *)
              match Cache.find t.cache key with
              | Some entry ->
                  Metrics.bump t.metrics (fun m ->
                      m.cache_hits <- m.cache_hits + 1;
                      m.answers <- m.answers + 1);
                  Metrics.record_span t.metrics span;
                  note_deadline_miss dl
                    (Protocol.Answer (answer_of_entry ~span entry))
              | None ->
                  if expired dl then
                    note_deadline_miss dl
                      (deadline_fallback t t.slots.(si) ~key ~span m)
                  else begin
                    Metrics.bump t.metrics (fun m ->
                        m.request_errors <- m.request_errors + 1);
                    Protocol.Error_msg
                      "internal: answer neither cached nor computed"
                  end)))
    parsed

(* Process one micro-batch of decoded queries, all stamped as arriving now.
   The socket path stamps arrival at frame decode instead, so a queued
   query's deadline budget includes its queue wait. *)
let process_batch t (batch : Protocol.query list) : Protocol.response list =
  let now = Robust.mono_now () in
  process_stamped t (List.map (fun q -> (q, now)) batch)

(* --- the IO loop ------------------------------------------------------- *)

let stats_json t =
  Metrics.to_json
    ~extra_ints:
      [
        ("cache_size", Cache.size t.cache);
        ("cache_capacity", Cache.capacity t.cache);
        ("cache_evictions", Cache.evictions t.cache);
        ( "index_size",
          Array.fold_left
            (fun acc s -> acc + Anns.Hnsw.size s.index.Waco.Tuner.hnsw)
            0 t.slots );
        ( "index_lint_rejected",
          Array.fold_left
            (fun acc s -> acc + s.index.Waco.Tuner.lint_rejected)
            0 t.slots );
        ( "index_asym_rejected",
          Array.fold_left
            (fun acc s -> acc + s.index.Waco.Tuner.asym_rejected)
            0 t.slots );
        ("domains", Array.length t.slots.(0).replicas);
        ("pending", t.pending_queries);
        ("max_pending", t.max_pending);
      ]
    ~extra:
      [
        ("socket", t.socket_path);
        ("listen", (match t.bound with Some b -> b | None -> t.socket_path));
        ("machine", t.machine.Machine.name);
        ("cache_status", t.cache_status);
        ( "kernels",
          String.concat "+"
            (Array.to_list
               (Array.map (fun s -> Waco.Kernel.name s.kernel) t.slots)) );
        ("default_kernel", Waco.Kernel.name t.slots.(t.default_slot).kernel);
      ]
    t.metrics

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

exception Write_stall

(* Bounded non-blocking write: the whole frame goes out, or the connection
   is declared stalled after [write_timeout_s] of the client not draining.
   Connection fds are permanently non-blocking, so a full socket buffer
   surfaces as EAGAIN and we wait for writability with the remaining
   budget — never for longer.  The [Faults] hooks simulate a hostile
   network here: capped partial writes and a drop mid-frame. *)
let write_bounded t conn s =
  let fd = conn.fd in
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let deadline = Robust.mono_now () +. t.write_timeout_s in
  let rec go off =
    if off < n then begin
      if Robust.Faults.net_drop_tick () then
        raise (Unix.Unix_error (Unix.EPIPE, "write", "injected drop"));
      let len = n - off in
      let len =
        match Robust.Faults.net_io_cap () with
        | Some cap -> min cap len
        | None -> len
      in
      match Unix.write fd b off len with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          let remaining = deadline -. Robust.mono_now () in
          if remaining <= 0.0 then raise Write_stall;
          (match Unix.select [] [ fd ] [] remaining with
          | _, [], _ -> raise Write_stall
          | _ -> ());
          go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let send t conn (resp : Protocol.response) =
  if conn.alive then
    match write_bounded t conn (Protocol.response_to_frame resp) with
    | () -> ()
    | exception Write_stall ->
        Metrics.bump t.metrics (fun m -> m.write_stalls <- m.write_stalls + 1);
        t.log "client not draining responses; dropping connection";
        close_conn conn
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        t.log "client went away mid-response";
        close_conn conn

(* The [Busy] hint scales with how deep the backlog already is: a client
   told to come back later should not come back into the same wall. *)
let retry_hint t =
  min 2000 (50 * (1 + (t.pending_queries / t.max_batch)))

(* Drain complete frames out of a connection's buffer; enqueue well-formed
   requests, answer undecodable bodies, kill the connection on framing
   damage.  Past the pending high-water mark a new query answers [Busy]
   instead of queueing — control requests (stats/ping/shutdown) always get
   through, so an overloaded daemon stays observable and stoppable. *)
let drain_frames t conn =
  let rec go () =
    let s = Buffer.contents conn.inbuf in
    match Protocol.decode_frame s with
    | `Need _ -> ()
    | `Bad reason ->
        Metrics.bump t.metrics (fun m ->
            m.protocol_errors <- m.protocol_errors + 1);
        send t conn (Protocol.Error_msg ("protocol: " ^ reason));
        close_conn conn
    | `Frame (msg, body, consumed) -> (
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s consumed (String.length s - consumed);
        match Protocol.request_of_frame ~msg body with
        | Ok req ->
            Metrics.bump t.metrics (fun m -> m.requests <- m.requests + 1);
            (match req with
            | Protocol.Query _ when t.pending_queries >= t.max_pending ->
                Metrics.bump t.metrics (fun m -> m.shed <- m.shed + 1);
                send t conn (Protocol.Busy { retry_after_ms = retry_hint t })
            | Protocol.Query _ ->
                t.pending_queries <- t.pending_queries + 1;
                Queue.add (conn, req, Robust.mono_now ()) t.queue
            | _ -> Queue.add (conn, req, Robust.mono_now ()) t.queue);
            go ()
        | Error e ->
            Metrics.bump t.metrics (fun m ->
                m.protocol_errors <- m.protocol_errors + 1);
            send t conn (Protocol.Error_msg ("request: " ^ e));
            go ())
  in
  go ()

(* Drain the request FIFO: control requests answer inline, runs of queries
   dispatch as micro-batches of at most [max_batch].  FIFO order per
   connection is preserved — a client that pipelines query;stats sees the
   stats taken after its query. *)
let drain_queue t =
  while not (Queue.is_empty t.queue) do
    match Queue.peek t.queue with
    | _, Protocol.Stats, _ ->
        let conn, _, _ = Queue.pop t.queue in
        send t conn (Protocol.Stats_json (stats_json t))
    | _, Protocol.Ping, _ ->
        let conn, _, _ = Queue.pop t.queue in
        send t conn Protocol.Pong
    | _, Protocol.Shutdown, _ ->
        let conn, _, _ = Queue.pop t.queue in
        t.stopping <- true;
        send t conn Protocol.Bye
    | _, Protocol.Query _, _ ->
        (* Collect the contiguous run of queries at the head. *)
        let conns = ref [] and queries = ref [] in
        let continue = ref true in
        while
          !continue
          && (not (Queue.is_empty t.queue))
          && List.length !queries < t.max_batch
        do
          match Queue.peek t.queue with
          | conn, Protocol.Query q, arrival ->
              ignore (Queue.pop t.queue);
              t.pending_queries <- t.pending_queries - 1;
              conns := conn :: !conns;
              queries := (q, arrival) :: !queries
          | _ -> continue := false
        done;
        let conns = List.rev !conns and queries = List.rev !queries in
        let responses = process_stamped t queries in
        List.iter2 (fun conn resp -> send t conn resp) conns responses
  done

(* Connection reaper: a connection stalled mid-frame (a trickler feeding a
   byte per tick, or a drop that left half a header) dies after
   [frame_timeout_s]; one that has sent nothing at all for [idle_timeout_s]
   dies too.  Both free their fd — neither can pin the select loop's fd set
   forever. *)
let reap t conns =
  let now = Robust.mono_now () in
  List.iter
    (fun conn ->
      if conn.alive then
        if
          conn.partial_since > 0.0
          && now -. conn.partial_since > t.frame_timeout_s
        then begin
          Metrics.bump t.metrics (fun m ->
              m.reaped_trickle <- m.reaped_trickle + 1);
          t.log "reaped connection stalled mid-frame";
          close_conn conn
        end
        else if now -. conn.last_byte > t.idle_timeout_s then begin
          Metrics.bump t.metrics (fun m -> m.reaped_idle <- m.reaped_idle + 1);
          t.log "reaped idle connection";
          close_conn conn
        end)
    conns

let run ?(on_ready = ignore) t =
  (* A dying client must not kill the daemon with SIGPIPE; writes surface
     EPIPE instead, handled per connection. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let addr = Addr.of_string t.socket_path in
  let listen_fd = Addr.listen addr in
  let addr = Addr.resolve_bound addr listen_fd in
  t.bound <- Some (Addr.to_string addr);
  t.log (Printf.sprintf "listening on %s" (Addr.to_string addr));
  on_ready ();
  let conns : conn list ref = ref [] in
  let finally () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Addr.cleanup addr;
    List.iter close_conn !conns;
    (match t.cache_file with
    | Some file -> (
        try Cache.save t.cache file
        with e ->
          t.log
            (Printf.sprintf "cache: final persist failed: %s"
               (Printexc.to_string e)))
    | None -> ());
    match prev_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  (* The select timeout doubles as the reaper tick: fine-grained enough to
     honor short test timeouts, never busier than once per 20 ms. *)
  let tick =
    Float.max 0.02
      (Float.min 1.0 (Float.min t.idle_timeout_s t.frame_timeout_s /. 4.0))
  in
  Fun.protect ~finally (fun () ->
      let chunk = Bytes.create 65536 in
      while not t.stopping do
        conns := List.filter (fun c -> c.alive) !conns;
        let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
        match Unix.select fds [] [] tick with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            (* New connections. *)
            if List.mem listen_fd readable then begin
              let accepting = ref true in
              while !accepting do
                match Unix.accept listen_fd with
                | fd, _ ->
                    (* Connection fds stay non-blocking for their whole
                       life: reads can spuriously EAGAIN (handled below)
                       and writes go through the bounded writer. *)
                    Unix.set_nonblock fd;
                    Addr.nodelay fd;
                    conns :=
                      {
                        fd;
                        inbuf = Buffer.create 1024;
                        alive = true;
                        last_byte = Robust.mono_now ();
                        partial_since = 0.0;
                      }
                      :: !conns
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    accepting := false
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              done
            end;
            (* Bytes from existing connections. *)
            List.iter
              (fun conn ->
                if conn.alive && List.mem conn.fd readable then begin
                  if Robust.Faults.net_drop_tick () then close_conn conn
                  else
                    let len = Bytes.length chunk in
                    let len =
                      (* Injected partial read: a hostile peer (or kernel)
                         handing over a few bytes at a time. *)
                      match Robust.Faults.net_io_cap () with
                      | Some cap -> min cap len
                      | None -> len
                    in
                    match Unix.read conn.fd chunk 0 len with
                    | 0 -> close_conn conn
                    | n ->
                        conn.last_byte <- Robust.mono_now ();
                        Buffer.add_subbytes conn.inbuf chunk 0 n;
                        drain_frames t conn;
                        (* Track how long the current partial frame (if
                           any) has been accumulating, for the reaper. *)
                        if Buffer.length conn.inbuf = 0 then
                          conn.partial_since <- 0.0
                        else if conn.partial_since = 0.0 then
                          conn.partial_since <- Robust.mono_now ()
                    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                        close_conn conn
                    | exception
                        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                      ->
                        ()
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                end)
              !conns;
            (* The request scheduler, then the reaper. *)
            drain_queue t;
            reap t !conns
      done)
