(** The `waco serve` wire protocol: length-prefixed, versioned frames over a
    Unix-domain socket.  Every frame is a 10-byte header — magic ["WSRV"],
    one version byte, one message-type byte, big-endian 32-bit payload
    length — followed by the payload, a line-oriented key=value body.

    The decoder is {e total}: any byte sequence yields [`Frame]/[`Need]/
    [`Bad], never an exception (the fuzz suite in [test/test_serve.ml]
    enforces this), so damaged or hostile input can at worst get its own
    connection dropped. *)

val magic : string

val version : int

val max_payload : int
(** Hard bound on a frame's declared payload length, checked before any
    allocation. *)

val header_bytes : int

(** {2 Message type bytes} *)

val msg_query : int
val msg_stats : int
val msg_ping : int
val msg_shutdown : int
val msg_answer : int
val msg_stats_json : int
val msg_pong : int
val msg_bye : int
val msg_busy : int
val msg_error : int

(** {2 Framing} *)

val encode_frame : msg:int -> string -> string
(** Raises [Invalid_argument] when the body exceeds {!max_payload}. *)

type progress =
  [ `Frame of int * string * int  (** (msg type, body, bytes consumed) *)
  | `Need of int  (** incomplete; at least this many more bytes *)
  | `Bad of string  (** unrecoverable framing damage; drop the connection *)
  ]

val decode_frame : string -> progress
(** Examines the accumulated bytes of one connection.  A wrong magic or
    version, an unknown length field or an over-limit payload is [`Bad]
    as soon as it is detectable. *)

(** {2 Requests} *)

type source =
  | Path of string  (** a MatrixMarket file the daemon can read *)
  | Inline of { nrows : int; ncols : int; entries : (int * int * float) array }

type query = {
  qid : string;  (** client-chosen label, echoed in traces; not a cache key *)
  source : source;
  measure : bool;  (** run the top-k simulator measurements (default) *)
  deadline_ms : int;
      (** answer budget in milliseconds from the daemon's first sight of the
          request; 0 (the default, omitted on the wire) means no deadline.
          On expiry the daemon answers immediately from the cache or the
          asymptotic fallback, marked [degraded_reason = "deadline"]. *)
  kernel : Waco.Kernel.t option;
      (** which kernel's model/index/cache-namespace answers this query;
          [None] (omitted on the wire — every pre-kernel client) is served
          the daemon's default slot.  An {e unrecognized} kernel name on the
          wire is a decode [Error], never a silent default. *)
}

type request = Query of query | Stats | Ping | Shutdown

val max_inline_nnz : int

val max_deadline_ms : int
(** Hard bound on a declared [deadline_ms] (one hour). *)

val request_to_frame : request -> string

val request_of_frame : msg:int -> string -> (request, string) result
(** Total: structural damage (bad dims, out-of-range coordinates,
    non-finite values, entry-count mismatch) is an [Error], never an
    exception. *)

(** {2 Responses} *)

type answer = {
  schedule : string;  (** dataset-encoded SuperSchedule ([Sched_io]) *)
  predicted : float;
  measured : float;  (** simulator seconds; NaN when measurement was off *)
  cache_hit : bool;
  degraded : bool;
  degraded_reason : string option;
  spans : (string * float) list;
      (** per-request trace: phase name -> seconds, in phase order *)
}

type response =
  | Answer of answer
  | Stats_json of string
  | Pong
  | Bye
  | Busy of { retry_after_ms : int }
      (** load shed: the daemon's pending queue is past its high-water mark;
          retry after the hinted delay instead of hanging *)
  | Error_msg of string

val response_to_frame : response -> string

val response_of_frame : msg:int -> string -> (response, string) result
