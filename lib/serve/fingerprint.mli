(** The sparsity-pattern fingerprint the serving cache is keyed by: shape +
    nonzero count + a fixed-size pooled density sketch (nonzeros pooled onto
    a {!cells} x {!cells} grid, normalized and quantized to bytes).  Pure
    integer arithmetic from the COO coordinates, so the key is exactly
    reproducible across processes and restarts. *)

open Sptensor

val cells : int
(** Sketch grid side (8: 64 cells). *)

type t = {
  nrows : int;
  ncols : int;
  nnz : int;
  sketch : int array;  (** [cells * cells] bytes, row-major, each 0..255 *)
}

val of_coo : Coo.t -> t

val key : t -> string
(** The cache key: ["fp1:<rows>x<cols>:<nnz>:<128 hex chars>"] — single
    line, no spaces, safe inside the cache artifact's record lines. *)

val of_key : string -> t option
(** Inverse of {!key}; [None] on any structural damage. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
