(** Endpoint specs shared by every serving-tier flag: a bare path or
    [unix:PATH] is a Unix-domain socket, [tcp:HOST:PORT] a TCP endpoint
    ([PORT] 0 = kernel-chosen ephemeral port).  The wire protocol and every
    robustness property above the fd are transport-blind. *)

type t = Unix_path of string | Tcp of { host : string; port : int }

val parse : string -> (t, string) result
(** Total.  A bare string with no [unix:]/[tcp:] prefix is a Unix path —
    every pre-TCP spec keeps its meaning. *)

val of_string : string -> t
(** Raises [Invalid_argument] where {!parse} errors. *)

val to_string : t -> string
(** Canonical spec: the bare path for [Unix_path], [tcp:HOST:PORT] else. *)

val sockaddr : t -> Unix.sockaddr
(** Resolves [Tcp] hosts (dotted quad first, then [gethostbyname]); raises
    [Failure] on an unknown host. *)

val family : t -> Unix.socket_domain

val nodelay : Unix.file_descr -> unit
(** [TCP_NODELAY] where the transport has it; a no-op on Unix sockets. *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bound, listening, non-blocking.  A [Unix_path] removes a stale socket
    file and creates parent directories first; [Tcp] sets [SO_REUSEADDR]. *)

val resolve_bound : t -> Unix.file_descr -> t
(** The endpoint actually bound: substitutes the kernel-chosen port when a
    [Tcp] spec asked for port 0.  Identity otherwise. *)

val cleanup : t -> unit
(** Unlink a [Unix_path] socket file; nothing for [Tcp]. *)

val connect : ?timeout_s:float -> t -> Unix.file_descr
(** Bounded non-blocking connect (default 5 s) with [TCP_NODELAY] applied;
    raises [Unix.Unix_error] when nobody listens, [Failure] on timeout. *)
