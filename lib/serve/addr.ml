(* Listen/connect endpoint specs for the serving tier.  One string syntax is
   shared by every daemon-facing flag: a bare path or [unix:PATH] is a
   Unix-domain socket (the default, and the only transport before the shard
   tier existed); [tcp:HOST:PORT] is a TCP endpoint, with [PORT] 0 asking
   the kernel for an ephemeral port (tests read the bound port back with
   {!resolve_bound}).  Everything above the fd — framing, reapers,
   backpressure, deadlines — is transport-blind, so both transports share
   every robustness property. *)

type t = Unix_path of string | Tcp of { host : string; port : int }

let parse spec =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S: want tcp:HOST:PORT" rest)
    | Some i -> (
        let host = String.sub rest 0 i in
        let host = if host = "" then "0.0.0.0" else host in
        match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
        | Some p when p >= 0 && p <= 65535 -> Ok (Tcp { host; port = p })
        | _ -> Error (Printf.sprintf "tcp endpoint %S: bad port" rest))
  in
  if spec = "" then Error "empty endpoint spec"
  else if String.length spec >= 4 && String.sub spec 0 4 = "tcp:" then
    tcp (String.sub spec 4 (String.length spec - 4))
  else if String.length spec >= 5 && String.sub spec 0 5 = "unix:" then
    Ok (Unix_path (String.sub spec 5 (String.length spec - 5)))
  else Ok (Unix_path spec)

let of_string spec =
  match parse spec with
  | Ok a -> a
  | Error e -> invalid_arg ("Addr.of_string: " ^ e)

let to_string = function
  | Unix_path p -> p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let inet_addr_of host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "Addr: host %s resolves to nothing" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "Addr: unknown host %s" host))

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp { host; port } -> Unix.ADDR_INET (inet_addr_of host, port)

let family = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(* Nagle off where it applies: the protocol is small request/response frames
   and the router pipelines them, so coalescing delay is pure added latency.
   A Unix-domain socket has no such option; the EOPNOTSUPP is expected. *)
let nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let listen ?(backlog = 64) t =
  (match t with
  | Unix_path p ->
      (try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ());
      Robust.mkdir_p (Filename.dirname p)
  | Tcp _ -> ());
  let fd = Unix.socket (family t) Unix.SOCK_STREAM 0 in
  try
    (match t with
    | Unix_path _ -> ()
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
    Unix.bind fd (sockaddr t);
    Unix.listen fd backlog;
    Unix.set_nonblock fd;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let resolve_bound t fd =
  match t with
  | Unix_path _ -> t
  | Tcp { host; port } -> (
      if port <> 0 then t
      else
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp { host; port = p }
        | _ -> t)

let cleanup = function
  | Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ()

(* Bounded non-blocking connect, shared by the query client and the router's
   shard links: never an unbounded hang on a dead or unreachable peer. *)
let connect ?(timeout_s = 5.0) t =
  let fd = Unix.socket (family t) Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (match Unix.connect fd (sockaddr t) with
    | () -> ()
    | exception
        Unix.Unix_error
          ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ fd ] [] (Float.max 0.0 timeout_s) with
        | _, [ _ ], _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some err -> raise (Unix.Unix_error (err, "connect", to_string t)))
        | _ ->
            failwith
              (Printf.sprintf "Addr.connect: %s: no answer in %.1fs"
                 (to_string t) timeout_s)));
    Unix.clear_nonblock fd;
    nodelay fd;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
