(* The daemon's observability surface: monotonic counters plus cumulative
   per-phase seconds, mutex-serialized because the request scheduler updates
   them from pool workers.  A [stats] request dumps everything as JSON
   (hand-rolled like the bench files — no JSON dependency in the image).

   Per-request trace spans are collected in a [span] record owned by one
   request (no locking) and folded into the cumulative counters once the
   request completes. *)

type span = {
  mutable parse_s : float;
  mutable extract_s : float;
  mutable traverse_s : float;
  mutable measure_s : float;
}

let span_create () =
  { parse_s = 0.0; extract_s = 0.0; traverse_s = 0.0; measure_s = 0.0 }

let span_fields s =
  [
    ("parse", s.parse_s);
    ("extract", s.extract_s);
    ("traverse", s.traverse_s);
    ("measure", s.measure_s);
  ]

type t = {
  mu : Mutex.t;
  started : float;
  mutable requests : int;  (* frames decoded into a well-formed request *)
  mutable answers : int;
  mutable protocol_errors : int;  (* bad frames / undecodable bodies *)
  mutable request_errors : int;  (* well-formed requests that failed *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable degraded : int;  (* answers served by the fixed-CSR fallback *)
  mutable retries_absorbed : int;  (* measurement retries that recovered *)
  mutable measure_failures : int;
  mutable extractor_forwards : int;  (* feature extractions actually run *)
  mutable traversals : int;  (* HNSW searches actually run *)
  mutable measured_runs : int;
  mutable asym_pruned : int;  (* traversal candidates rejected symbolically *)
  mutable batches : int;  (* micro-batches dispatched *)
  mutable batched_requests : int;  (* queries carried by those batches *)
  mutable max_batch : int;
  mutable phase_b_batches : int;  (* phase-B dispatches with >= 1 miss *)
  mutable phase_b_misses : int;  (* distinct misses those dispatches carried *)
  mutable phase_b_max : int;  (* largest distinct-miss group so far *)
  phase_b_hist : int array;  (* miss-count histogram: 1 / 2-3 / 4-7 / 8-15 / 16+ *)
  mutable vm_batched_runs : int;  (* per-kernel-slot batched plan executions *)
  mutable cache_persist_failures : int;
  mutable shed : int;  (* queries answered [Busy] past the high-water mark *)
  mutable deadline_misses : int;  (* answers marked degraded_reason=deadline *)
  mutable reaped_idle : int;  (* connections closed for total silence *)
  mutable reaped_trickle : int;  (* connections closed mid-frame for stalling *)
  mutable write_stalls : int;  (* connections dropped for not draining writes *)
  mutable parse_s : float;
  mutable extract_s : float;
  mutable traverse_s : float;
  mutable measure_s : float;
}

let create () =
  {
    mu = Mutex.create ();
    started = Robust.wall_now ();
    requests = 0;
    answers = 0;
    protocol_errors = 0;
    request_errors = 0;
    cache_hits = 0;
    cache_misses = 0;
    degraded = 0;
    retries_absorbed = 0;
    measure_failures = 0;
    extractor_forwards = 0;
    traversals = 0;
    measured_runs = 0;
    asym_pruned = 0;
    batches = 0;
    batched_requests = 0;
    max_batch = 0;
    phase_b_batches = 0;
    phase_b_misses = 0;
    phase_b_max = 0;
    phase_b_hist = Array.make 5 0;
    vm_batched_runs = 0;
    cache_persist_failures = 0;
    shed = 0;
    deadline_misses = 0;
    reaped_idle = 0;
    reaped_trickle = 0;
    write_stalls = 0;
    parse_s = 0.0;
    extract_s = 0.0;
    traverse_s = 0.0;
    measure_s = 0.0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bump t field = locked t (fun () -> field t)

let record_batch t n =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_requests <- t.batched_requests + n;
      t.max_batch <- max t.max_batch n)

(* Histogram bucket for a phase-B distinct-miss count (n >= 1):
   1 / 2-3 / 4-7 / 8-15 / 16+. *)
let phase_b_bucket n =
  if n <= 1 then 0
  else if n <= 3 then 1
  else if n <= 7 then 2
  else if n <= 15 then 3
  else 4

let record_phase_b t n =
  if n > 0 then
    locked t (fun () ->
        t.phase_b_batches <- t.phase_b_batches + 1;
        t.phase_b_misses <- t.phase_b_misses + n;
        t.phase_b_max <- max t.phase_b_max n;
        let b = phase_b_bucket n in
        t.phase_b_hist.(b) <- t.phase_b_hist.(b) + 1)

let record_span t (s : span) =
  locked t (fun () ->
      t.parse_s <- t.parse_s +. s.parse_s;
      t.extract_s <- t.extract_s +. s.extract_s;
      t.traverse_s <- t.traverse_s +. s.traverse_s;
      t.measure_s <- t.measure_s +. s.measure_s)

(* Counter snapshot for assertions and JSON: name -> value, fixed order. *)
let counters t =
  locked t (fun () ->
      [
        ("requests", t.requests);
        ("answers", t.answers);
        ("protocol_errors", t.protocol_errors);
        ("request_errors", t.request_errors);
        ("cache_hits", t.cache_hits);
        ("cache_misses", t.cache_misses);
        ("degraded", t.degraded);
        ("retries_absorbed", t.retries_absorbed);
        ("measure_failures", t.measure_failures);
        ("extractor_forwards", t.extractor_forwards);
        ("traversals", t.traversals);
        ("measured_runs", t.measured_runs);
        ("asym_pruned", t.asym_pruned);
        ("batches", t.batches);
        ("batched_requests", t.batched_requests);
        ("max_batch", t.max_batch);
        ("phase_b_batches", t.phase_b_batches);
        ("phase_b_misses", t.phase_b_misses);
        ("phase_b_max", t.phase_b_max);
        ("phase_b_hist_1", t.phase_b_hist.(0));
        ("phase_b_hist_2_3", t.phase_b_hist.(1));
        ("phase_b_hist_4_7", t.phase_b_hist.(2));
        ("phase_b_hist_8_15", t.phase_b_hist.(3));
        ("phase_b_hist_16_plus", t.phase_b_hist.(4));
        ("vm_batched_runs", t.vm_batched_runs);
        ("cache_persist_failures", t.cache_persist_failures);
        ("shed", t.shed);
        ("deadline_misses", t.deadline_misses);
        ("reaped_idle", t.reaped_idle);
        ("reaped_trickle", t.reaped_trickle);
        ("write_stalls", t.write_stalls);
      ])

let counter t name = List.assoc_opt name (counters t)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(extra_ints = []) ?(extra = []) t =
  let ints = counters t @ extra_ints in
  let floats =
    locked t (fun () ->
        [
          ("uptime_s", Robust.wall_now () -. t.started);
          ("parse_s", t.parse_s);
          ("extract_s", t.extract_s);
          ("traverse_s", t.traverse_s);
          ("measure_s", t.measure_s);
        ])
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  List.iter (fun (k, v) -> Printf.bprintf buf "  \"%s\": %d,\n" k v) ints;
  List.iter (fun (k, v) -> Printf.bprintf buf "  \"%s\": %.6f,\n" k v) floats;
  List.iter
    (fun (k, v) ->
      Printf.bprintf buf "  \"%s\": \"%s\",\n" (json_escape k) (json_escape v))
    extra;
  Printf.bprintf buf "  \"protocol_version\": %d\n" Protocol.version;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Pull an integer counter back out of a stats JSON dump — the client-side
   half of the observability loop (tests and `waco query --stats`). *)
let json_counter text name =
  let needle = "\"" ^ name ^ "\":" in
  let tlen = String.length text and nlen = String.length needle in
  let rec find i =
    if i + nlen > tlen then None
    else if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < tlen && text.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < tlen
        && (match text.[!k] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr k
      done;
      int_of_string_opt (String.sub text !j (!k - !j))
    end
    else find (i + 1)
  in
  find 0
