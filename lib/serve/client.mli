(** Blocking client for the serving daemon's Unix-socket protocol.

    One {!t} is one connection.  The convenience wrappers ({!query}, {!stats},
    {!ping}, {!shutdown}) are strict request/response; the lower-level
    {!send}/{!recv} pair lets tests pipeline many requests on one connection
    before reading any responses — the shape that exercises the daemon's
    micro-batching.  Not thread-safe; use one [t] per domain. *)

type t

val connect : string -> t
(** Connect to the daemon's socket path.  Raises [Unix.Unix_error] (e.g.
    [ENOENT]/[ECONNREFUSED]) when no daemon is listening. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Protocol.request -> unit
(** Write one request frame.  Does not wait for the response. *)

val recv : t -> Protocol.response
(** Block until one complete response frame arrives.  Responses come back in
    request order (the daemon preserves FIFO order per connection).  Raises
    [Failure] if the daemon hangs up mid-frame or sends damaged framing. *)

val request : t -> Protocol.request -> Protocol.response
(** [send] then [recv]. *)

val query :
  ?measure:bool -> ?qid:string -> t -> Protocol.source ->
  (Protocol.answer, string) result
(** One tuning request.  [measure] (default [true]) [false] asks for the
    predict-only fast path.  [Error _] carries the daemon's error message for
    this request (the connection stays usable). *)

val stats : t -> (string, string) result
(** The daemon's metrics as a JSON object string. *)

val ping : t -> bool

val shutdown : t -> bool
(** Ask the daemon to exit after persisting its cache.  [true] on [Bye]. *)
