(** Blocking client for the serving daemon's framed protocol, over a Unix
    or TCP socket ({!Addr} spec strings everywhere a socket path was).

    One {!t} is one connection.  The convenience wrappers ({!query}, {!stats},
    {!ping}, {!shutdown}) are strict request/response; the lower-level
    {!send}/{!recv} pair lets tests pipeline many requests on one connection
    before reading any responses — the shape that exercises the daemon's
    micro-batching.  Not thread-safe; use one [t] per domain.

    Failure is bounded everywhere: {!connect} waits at most its timeout,
    {!recv} can take one, and {!query_with_retry} adds capped exponential
    backoff with deterministic qid-seeded jitter over fresh connections. *)

type t

val connect : ?timeout_s:float -> string -> t
(** Connect to the daemon's endpoint — a bare Unix-socket path,
    [unix:PATH], or [tcp:HOST:PORT] — waiting at most [timeout_s]
    (default 5 s) via a non-blocking connect + select — never an unbounded
    hang.  Raises [Unix.Unix_error] (e.g. [ENOENT]/[ECONNREFUSED]) when no
    daemon is listening, [Failure] on timeout. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Protocol.request -> unit
(** Write one request frame.  Does not wait for the response. *)

val recv : ?timeout_s:float -> t -> Protocol.response
(** Block until one complete response frame arrives, or [timeout_s] of wall
    clock passes (no timeout by default).  Responses come back in request
    order (the daemon preserves FIFO order per connection).  Raises
    [Failure] if the daemon hangs up mid-frame, sends damaged framing, or
    the timeout expires — after a timeout the connection is in an unknown
    state and must not be reused. *)

val request : ?timeout_s:float -> t -> Protocol.request -> Protocol.response
(** [send] then [recv]. *)

val query :
  ?measure:bool -> ?deadline_ms:int -> ?kernel:Waco.Kernel.t -> ?qid:string ->
  ?timeout_s:float ->
  t -> Protocol.source ->
  (Protocol.answer, string) result
(** One tuning request.  [measure] (default [true]) [false] asks for the
    predict-only fast path.  [deadline_ms] > 0 gives the daemon an answer
    budget; a blown budget comes back as a degraded answer with reason
    ["deadline"], not an error.  [kernel] names the daemon slot (and cache
    namespace) that answers; omitted, the daemon's default slot does — a
    kernel the daemon does not serve is an [Error _].  [Error _] carries the
    daemon's error message for this request — including a [Busy] shed,
    rendered as ["busy: retry after <n> ms"] (the connection stays
    usable). *)

val query_with_retry :
  ?attempts:int -> ?base_s:float -> ?max_s:float -> ?connect_timeout_s:float ->
  ?timeout_s:float -> ?measure:bool -> ?deadline_ms:int ->
  ?kernel:Waco.Kernel.t -> ?qid:string ->
  socket:string -> Protocol.source ->
  (Protocol.answer, string) result
(** The resilient round trip: connect, query, close — retried up to
    [attempts] (default 3) times on transport failure (connect/receive
    timeout, torn frame, daemon restart mid-request) or a [Busy] shed,
    sleeping {!Robust.backoff_delay} between attempts (exponential from
    [base_s] = 50 ms, capped at [max_s] = 1 s) with jitter seeded by [qid];
    a [Busy] retry honors the daemon's [retry_after_ms] hint in full even
    past [max_s] (bounded only by a 30 s ceiling against a broken hint),
    and identically whether the shed was answered directly or relayed
    verbatim through a {!Router}.  Each
    attempt uses a fresh connection (a torn one is never reused) and the
    same [qid]: answers are keyed by sparsity fingerprint in the daemon's
    cache, so a retry after a half-processed attempt re-answers idempotently
    instead of recomputing.  A daemon [Error_msg] is a definitive answer
    about the request and returns immediately, never retried. *)

val stats : t -> (string, string) result
(** The daemon's metrics as a JSON object string. *)

val ping : t -> bool

val shutdown : t -> bool
(** Ask the daemon to exit after persisting its cache.  [true] on [Bye]. *)
