(** Crash supervision for the serving daemon (`waco serve --supervise`).

    {!run} forks a worker process, runs [worker] inside it, and restarts it
    whenever it dies abnormally — with capped exponential backoff and
    deterministic seeded jitter ({!Robust.backoff_delay}), a consecutive-
    crash budget, and a health window that forgives crashes separated by
    long uptime.  Durable state (the digest-stamped schedule cache) lives
    in {!Robust}-enveloped artifacts the worker re-verifies on load, so a
    restarted worker comes up warm or cold, never corrupted.

    OCaml 5 constraint: [Unix.fork] is only legal while no domain has ever
    been spawned in the process.  Call {!run} {e before} creating any
    worker pool — the worker builds its pool after the fork. *)

type exit_reason =
  | Clean  (** the worker exited 0 on its own (e.g. a [Shutdown] request) *)
  | Stopped  (** SIGTERM/SIGINT: the worker was taken down deliberately *)
  | Gave_up of int
      (** the consecutive-crash budget was exhausted; carries the crash
          count *)

val run :
  ?max_restarts:int ->
  ?base_s:float ->
  ?max_s:float ->
  ?seed:int ->
  ?healthy_s:float ->
  ?on_spawn:(int -> unit) ->
  ?log:(string -> unit) ->
  (unit -> unit) ->
  exit_reason
(** [run worker] supervises [worker] until it exits cleanly, the
    supervisor is signalled, or [max_restarts] (default 10) {e consecutive}
    crashes accumulate — a worker that lived at least [healthy_s] (default
    5 s) resets the counter.  Crash [n] restarts after
    [backoff_delay ~base_s ~max_s ~seed ~attempt:n] (defaults: 100 ms
    doubling to a 5 s cap, jitter seeded by [seed]).  [on_spawn pid] fires
    after every fork — the CLI writes a pidfile there, and the chaos
    harness uses it to aim its kills.  In the worker, [worker ()] returning
    is exit 0; an escaped exception prints and exits 1 (a crash).
    SIGTERM/SIGINT to the supervisor forward to the worker and end the
    loop with {!Stopped}. *)
